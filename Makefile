# Developer workflow for the ParaStack reproduction. Pure stdlib Go;
# no tools beyond the toolchain are required.

GO ?= go

.PHONY: all build test vet race fmt-check bench bench-json bench-smoke ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race detector matters here: campaigns run engines in parallel and
# share trace sinks / counter totals across workers.
race:
	$(GO) test -race ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Regenerate the checked-in performance artifact: ns/op, allocs/op and
# events/sec for the engine/monitor/campaign hot paths. See the
# "Benchmarks" section of README.md for the schema.
bench-json:
	$(GO) run ./cmd/psbench -bench-json BENCH_engine.json

# One-iteration pass over every benchmark: catches bit-rot in bench
# code without spending time on measurement.
bench-smoke:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

# The gate PRs must pass.
ci: fmt-check vet build race bench-smoke
