# Developer workflow for the ParaStack reproduction. Pure stdlib Go;
# no tools beyond the toolchain are required.

GO ?= go

.PHONY: all build test vet race fmt-check bench bench-json bench-smoke bench-scale-smoke sweep-smoke fuzz-smoke chaos-smoke diagnose-smoke service-smoke recover-smoke ledger-smoke ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race detector matters here: campaigns run engines in parallel and
# share trace sinks / counter totals across workers.
race:
	$(GO) test -race ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Regenerate the checked-in performance artifacts: ns/op, allocs/op and
# events/sec for the engine/monitor/campaign hot paths
# (BENCH_engine.json), for the rank-count scaling sweep — serial and
# windowed parallel rows, 256 → 131072 ranks, every events/sec figure
# averaged over at least three full runs (BENCH_scale.json) — and for
# the parastackd daemon pipeline — jobs/sec, p99 ingest latency, stream
# samples/sec (BENCH_service.json). The big scale rows take minutes
# each; expect a ~15 minute wall time. See the "Benchmarks" section of
# README.md for the schema.
bench-json:
	$(GO) run ./cmd/psbench -bench-json BENCH_engine.json -bench-scale-json BENCH_scale.json -bench-service-json BENCH_service.json

# One-iteration pass over every benchmark: catches bit-rot in bench
# code without spending time on measurement.
bench-smoke:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

# Scaling-pass gate: a reduced rank sweep asserting events/sec does not
# collapse with world size, the steady-state allocation ceilings on the
# campaign reuse path (see internal/bench/scale_test.go and
# internal/experiment/runner_test.go), and — under the race detector —
# the serial-vs-parallel bit-identity smoke at a rank-grouped world
# size (clean + faulty runs must match the serial engine bit for bit
# across Parallel=1 and Parallel=4; see parallel_smoke_test.go).
bench-scale-smoke:
	$(GO) test -run 'TestScaleSmoke$$|TestFaultyRunAllocCeiling$$' -count=1 -v ./internal/bench
	$(GO) test -run 'TestRunnerSteadyStateAllocs$$' -count=1 -v ./internal/experiment
	$(GO) test -race -run 'TestScaleParallelBitIdentitySmoke$$' -count=1 -v ./internal/bench

# Kill-and-resume check on the tiny built-in grid: run half the sweep
# (-halt-after is the deterministic crash stand-in), then resume and
# finish. Exercises the durable log, the resume index, and the CLI.
SWEEP_SMOKE_LOG := /tmp/parastack-sweep-smoke.jsonl
sweep-smoke:
	@rm -f $(SWEEP_SMOKE_LOG)
	$(GO) run ./cmd/pssweep -grid smoke -out $(SWEEP_SMOKE_LOG) -halt-after 2
	$(GO) run ./cmd/pssweep -grid smoke -out $(SWEEP_SMOKE_LOG) -resume
	@rm -f $(SWEEP_SMOKE_LOG)

# Short fuzz of the results-log reader (corrupted/torn JSONL must never
# panic Load or sneak past its schema check), of the hang classifier
# (arbitrary serialized snapshots must never panic Analyze or accuse an
# unobserved rank), and of the admission-journal replay (corrupted or
# torn journals must never panic ReplayJournal or double-admit a job).
# Fixed seed corpus + 5s of mutation each.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzLoad -fuzztime=5s ./internal/sweep
	$(GO) test -run='^$$' -fuzz=FuzzAnalyze -fuzztime=5s ./internal/diagnose/waitfor
	$(GO) test -run='^$$' -fuzz=FuzzProof -fuzztime=5s ./internal/ledger
	$(GO) test -run='^$$' -fuzz=FuzzJournalReplay -fuzztime=5s ./internal/service

# Chaos smoke: a short clean campaign under the aggressive "heavy"
# chaos profile, under the race detector, asserting zero false
# positives — the detector's own failures must never read as hangs.
chaos-smoke:
	$(GO) test -race -run 'TestChaosSmoke$$' -count=1 -v ./internal/chaos

# Diagnosis smoke: the root-cause property grid under the race detector
# — fault kinds × workloads × seeds through the real harness, requiring
# the diagnosed cause to equal the injected one (100% under clean
# chaos) — plus the chaos-degradation property (under "heavy" chaos the
# classifier may say "unknown" but never a wrong named cause).
diagnose-smoke:
	$(GO) test -race -run 'TestCausePropertyGrid$$|TestCauseDegradesUnderChaos$$' -count=1 -v ./internal/diagnose/waitfor

# Daemon smoke: build the real parastackd binary with the race
# detector, start it on a unix socket, drive three jobs through the
# wire protocol (an injected hang, a clean run, a silent Scrout
# stream), assert all three verdicts, and require a graceful zero-exit
# SIGTERM drain (see cmd/parastackd/main_test.go).
service-smoke:
	$(GO) test -race -run 'TestDaemonSmoke$$' -count=1 -v ./cmd/parastackd

# Crash-recovery smoke: build parastackd with the race detector, run a
# burst of jobs with an admission journal and a verdict ledger, SIGKILL
# the daemon after the first verdict, restart it on the same journal,
# and require exactly one verdict per job — bit-identical to
# uninterrupted in-process runs — with the verdict ledger auditing
# clean (see cmd/parastackd/recover_test.go).
recover-smoke:
	$(GO) test -race -run 'TestKillAndRecoverDaemon$$' -count=1 -v ./cmd/parastackd

# Ledger smoke: the tamper-evidence contract end to end on disk. A
# sweep runs through the Merkle ledger sink, is killed mid-grid and
# resumed; psverify must pass the intact ledger; a third resume must be
# pure cache hits (0 executed — the ledger as shared-results cache);
# then one byte of one committed record blob is corrupted with dd and
# psverify must fail, naming the damaged record's cell key.
LEDGER_SMOKE_DIR := /tmp/parastack-ledger-smoke
ledger-smoke:
	@rm -rf $(LEDGER_SMOKE_DIR)
	$(GO) run ./cmd/pssweep -grid smoke -ledger $(LEDGER_SMOKE_DIR) -halt-after 2
	$(GO) run ./cmd/pssweep -grid smoke -ledger $(LEDGER_SMOKE_DIR) -resume
	$(GO) run ./cmd/psverify -out $(LEDGER_SMOKE_DIR)
	@$(GO) run ./cmd/pssweep -grid smoke -ledger $(LEDGER_SMOKE_DIR) -resume > /tmp/parastack-ledger-smoke.out \
		&& grep -q '(0 executed' /tmp/parastack-ledger-smoke.out \
		|| { echo "ledger-smoke: third pass was not pure cache hits:"; cat /tmp/parastack-ledger-smoke.out; exit 1; }
	@f=$$(ls $(LEDGER_SMOKE_DIR)/records/* | head -1); \
	key=$$(sed -n 's/.*"key":"\([^"]*\)".*/\1/p' $$f | head -1); \
	printf '\377' | dd of=$$f bs=1 seek=5 count=1 conv=notrunc status=none; \
	if $(GO) run ./cmd/psverify -out $(LEDGER_SMOKE_DIR) >/tmp/parastack-ledger-smoke.out 2>&1; then \
		echo "ledger-smoke: psverify passed a corrupted ledger"; exit 1; fi; \
	grep -qF "$$key" /tmp/parastack-ledger-smoke.out || { \
		echo "ledger-smoke: psverify did not name the damaged key $$key:"; \
		cat /tmp/parastack-ledger-smoke.out; exit 1; }
	@rm -rf $(LEDGER_SMOKE_DIR) /tmp/parastack-ledger-smoke.out
	@echo "ledger-smoke: OK"

# The gate PRs must pass.
ci: fmt-check vet build race bench-smoke bench-scale-smoke sweep-smoke fuzz-smoke chaos-smoke diagnose-smoke service-smoke recover-smoke ledger-smoke
