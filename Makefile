# Developer workflow for the ParaStack reproduction. Pure stdlib Go;
# no tools beyond the toolchain are required.

GO ?= go

.PHONY: all build test vet race fmt-check bench ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race detector matters here: campaigns run engines in parallel and
# share trace sinks / counter totals across workers.
race:
	$(GO) test -race ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -bench=. -benchmem -run=^$$

# The gate PRs must pass.
ci: fmt-check vet build race
