// Package parastack is a Go reproduction of "ParaStack: Efficient Hang
// Detection for MPI Programs at Large Scale" (SC '17): statistical,
// timeout-free hang detection for bulk-synchronous parallel programs,
// together with the full simulation substrate the reproduction runs on.
//
// Real ParaStack samples the call stacks of a handful of MPI processes
// and verifies a hang when the fraction of processes executing outside
// MPI (Scrout) stays abnormally low for a statistically significant
// streak. This package reproduces the complete system on a
// deterministic discrete-event simulation: a virtual-time engine
// (Engine), a simulated MPI runtime (World, Rank), cluster topology
// (Cluster), platform noise profiles (Profile), fault injection
// (Plan, Injector), the NPB/HPL/HPCG workload skeletons
// (WorkloadParams), the ParaStack monitor itself (Monitor), baseline
// timeout detectors, a mini batch scheduler (Scheduler, Job), and an
// experiment harness (Run, Campaign, Aggregate) that regenerates every
// table and figure of the paper's evaluation.
//
// # Quickstart
//
//	eng := parastack.NewEngine(42)
//	w := parastack.NewWorld(eng, 256, parastack.Tardis().Latency())
//	cluster := parastack.NewCluster(8, 32, 42)
//	mon := parastack.NewMonitor(w, cluster, parastack.MonitorConfig{})
//	mon.Start()
//	w.Launch(myRankBody) // any func(*parastack.Rank)
//	eng.Run(time.Hour)
//	if rep := mon.Report(); rep != nil {
//	    fmt.Println("hang:", rep.Type, "faulty ranks:", rep.FaultyRanks)
//	}
//
// Or drive a calibrated paper workload through the one-call harness:
//
//	res := parastack.Run(parastack.RunConfig{
//	    Params:    parastack.MustLookupWorkload("LU", "D", 256),
//	    Platform:  parastack.Tardis(),
//	    Seed:      1,
//	    FaultKind: parastack.ComputationHang,
//	    Monitor:   &parastack.MonitorConfig{},
//	})
package parastack

import (
	"context"
	"io"
	"math/rand"
	"time"

	"parastack/internal/chaos"
	"parastack/internal/core"
	"parastack/internal/detect"
	"parastack/internal/experiment"
	"parastack/internal/fault"
	"parastack/internal/ledger"
	"parastack/internal/mpi"
	"parastack/internal/noise"
	"parastack/internal/obs"
	"parastack/internal/results"
	"parastack/internal/sched"
	"parastack/internal/sim"
	"parastack/internal/stack"
	"parastack/internal/sweep"
	"parastack/internal/timeout"
	"parastack/internal/topology"
	"parastack/internal/workload"
)

// Simulation substrate.
type (
	// Engine is the deterministic discrete-event simulation engine.
	Engine = sim.Engine
	// Proc is a simulated process on an Engine.
	Proc = sim.Proc
	// World is a simulated MPI job (MPI_COMM_WORLD).
	World = mpi.World
	// Rank is one simulated MPI process; workload bodies receive one.
	Rank = mpi.Rank
	// Request is a non-blocking communication handle.
	Request = mpi.Request
	// Latency is the interconnect timing model.
	Latency = mpi.Latency
	// Cluster is the node/ppn layout with rank↔process-id mapping.
	Cluster = topology.Cluster
	// Stack is a simulated call stack.
	Stack = stack.Stack
)

// ParaStack itself.
type (
	// Monitor is the ParaStack hang detector.
	Monitor = core.Monitor
	// MonitorConfig tunes the monitor; the zero value is the paper's
	// default configuration (C=10, I=400ms, alpha=0.1%).
	MonitorConfig = core.Config
	// Report is a verified hang report.
	Report = core.Report
	// Sample is one recorded Scrout observation.
	Sample = core.Sample
	// HangType classifies a hang as computation- or communication-error.
	HangType = core.HangType
	// SoutPoint is one full-population Sout probe observation.
	SoutPoint = core.SoutPoint
)

// Hang classifications.
const (
	HangComputation   = core.HangComputation
	HangCommunication = core.HangCommunication
)

// Detector interface: the contract every hang detector — the ParaStack
// Monitor and both baselines — satisfies.
type (
	// Detector is the unifying detector interface: Start begins
	// monitoring, Report returns the verified hang report (nil while
	// none), Name identifies the detector in results.
	Detector = detect.Detector
	// DetectorEnv is what a DetectorFactory gets to build against: the
	// run's world, cluster topology, and recorder.
	DetectorEnv = experiment.DetectorEnv
	// DetectorFactory builds one Detector per run; attach via
	// RunConfig.ExtraDetectors.
	DetectorFactory = experiment.DetectorFactory
	// NamedReport pairs a detector's Name with its final Report in
	// RunResult.Extra.
	NamedReport = experiment.NamedReport
)

// Fault injection.
type (
	// FaultKind selects the injected error type.
	FaultKind = fault.Kind
	// FaultPlan pins a fault to a rank and iteration.
	FaultPlan = fault.Plan
	// Injector executes a FaultPlan during a run.
	Injector = fault.Injector
)

// Fault kinds.
const (
	NoFault               = fault.None
	ComputationHang       = fault.ComputationHang
	NodeFreeze            = fault.NodeFreeze
	CommunicationDeadlock = fault.CommunicationDeadlock
)

// Platforms and workloads.
type (
	// Profile is a platform timing model (Tardis, Tianhe2, Stampede).
	Profile = noise.Profile
	// WorkloadSpec identifies a benchmark configuration.
	WorkloadSpec = workload.Spec
	// WorkloadParams is a calibrated benchmark ready to run.
	WorkloadParams = workload.Params
)

// Baselines, scheduler, harness.
type (
	// TimeoutConfig tunes the fixed-(I,K) baseline detector.
	TimeoutConfig = timeout.Config
	// TimeoutDetector is the fixed-(I,K) baseline.
	TimeoutDetector = timeout.FixedIK
	// Watchdog is the IO-Watchdog-style activity baseline.
	Watchdog = timeout.Watchdog
	// Scheduler is the mini Slurm/Torque batch system.
	Scheduler = sched.Scheduler
	// Job is one batch submission.
	Job = sched.Job
	// RunConfig describes one harness run.
	RunConfig = experiment.RunConfig
	// RunResult is the outcome of one harness run.
	RunResult = experiment.RunResult
	// Metrics aggregates a campaign (ACh, FP rate, delays, ACf, PRf).
	Metrics = experiment.Metrics
)

// Job states.
const (
	JobPending        = sched.Pending
	JobRunning        = sched.Running
	JobCompleted      = sched.Completed
	JobTimedOut       = sched.TimedOut
	JobHangTerminated = sched.HangTerminated
)

// Observability: structured tracing and metrics (package internal/obs).
type (
	// Recorder is the instrumentation seam shared by the engine, the
	// monitor, and the experiment harness.
	Recorder = obs.Recorder
	// BasicRecorder is the standard Recorder: counters always on,
	// events forwarded to an attached sink.
	BasicRecorder = obs.Basic
	// TraceEvent is one structured event on the virtual clock.
	TraceEvent = obs.Event
	// TraceField is one key/value of a TraceEvent (obs.Str/Int/F64/Bool).
	TraceField = obs.Field
	// TraceSink consumes trace events (MemSink, JSONLSink, or custom).
	TraceSink = obs.Sink
	// MemSink retains events in memory — the test assertion seam.
	MemSink = obs.MemSink
	// JSONLSink writes events as one JSON object per line.
	JSONLSink = obs.JSONLSink
	// MetricSnapshot is a point-in-time copy of counters and gauges.
	MetricSnapshot = obs.Snapshot
	// MetricTotals aggregates snapshots across a campaign's runs.
	MetricTotals = obs.Totals
)

// DisabledRecorder is the zero-cost Recorder that drops everything.
var DisabledRecorder = obs.Disabled

// NewEngine returns a deterministic simulation engine seeded with seed.
func NewEngine(seed int64) *Engine { return sim.NewEngine(seed) }

// NewWorld creates an MPI world of size ranks on eng.
func NewWorld(eng *Engine, size int, lat Latency) *World { return mpi.NewWorld(eng, size, lat) }

// NewCluster lays out nodes×ppn ranks.
func NewCluster(nodes, ppn int, seed int64) *Cluster { return topology.New(nodes, ppn, seed) }

// NewMonitor attaches a ParaStack monitor to w; call Start to begin.
func NewMonitor(w *World, cluster *Cluster, cfg MonitorConfig) *Monitor {
	return core.New(w, cluster, cfg)
}

// NewTimeoutDetector attaches the fixed-(I,K) baseline to w.
func NewTimeoutDetector(w *World, cluster *Cluster, cfg TimeoutConfig) *TimeoutDetector {
	return timeout.NewFixedIK(w, cluster, cfg)
}

// NewWatchdog attaches an activity watchdog with the given timeout.
func NewWatchdog(w *World, timeoutDur time.Duration) *Watchdog {
	return timeout.NewWatchdog(w, timeoutDur)
}

// NewScheduler creates a batch scheduler managing totalNodes on eng.
func NewScheduler(eng *Engine, totalNodes int) *Scheduler { return sched.New(eng, totalNodes) }

// Tardis returns the 16-node cluster platform profile.
func Tardis() Profile { return noise.Tardis() }

// Tianhe2 returns the Tianhe-2 platform profile.
func Tianhe2() Profile { return noise.Tianhe2() }

// Stampede returns the Stampede platform profile.
func Stampede() Profile { return noise.Stampede() }

// LookupPlatform returns a named profile ("tardis", "tianhe2",
// "stampede"), or an error naming the known platforms.
func LookupPlatform(name string) (Profile, error) { return noise.Lookup(name) }

// PlatformNames lists the known platform profiles.
func PlatformNames() []string { return noise.Names() }

// PlatformByName returns a named profile.
//
// Deprecated: use LookupPlatform, which returns an error instead of
// panicking on unknown names.
func PlatformByName(name string) Profile { return noise.ByName(name) }

// ParseFaultKind parses a fault-kind name ("none", "computation",
// "node", "deadlock").
func ParseFaultKind(name string) (FaultKind, error) { return fault.Parse(name) }

// LookupWorkload returns a calibrated benchmark configuration.
func LookupWorkload(name, class string, procs int) (WorkloadParams, error) {
	return workload.Lookup(name, class, procs)
}

// MustLookupWorkload is LookupWorkload that panics on error.
func MustLookupWorkload(name, class string, procs int) WorkloadParams {
	return workload.MustLookup(name, class, procs)
}

// WorkloadNames lists the supported benchmarks.
func WorkloadNames() []string { return workload.Names() }

// NewRandomFaultPlan draws a fault plan like the paper's injection
// methodology: uniformly random victim rank and trigger iteration.
func NewRandomFaultPlan(rng *rand.Rand, kind FaultKind, size, iters, minIter, ppn int) FaultPlan {
	return fault.NewRandomPlan(rng, kind, size, iters, minIter, ppn)
}

// NewInjector wraps a plan for one run.
func NewInjector(p FaultPlan) *Injector { return fault.NewInjector(p) }

// FaultKindNames lists every accepted fault-kind spelling.
func FaultKindNames() []string { return fault.Names() }

// Detector chaos: fault injection against ParaStack itself (package
// internal/chaos) and the monitor's failover checkpoint.
type (
	// ChaosProfile declares how a run perturbs its own detector: probe
	// loss/staleness, rank deaths, clock jitter, monitor crash.
	ChaosProfile = chaos.Profile
	// ChaosInjector drives one run's detector chaos deterministically
	// from the run seed.
	ChaosInjector = chaos.Injector
	// ProbeFate is the outcome chaos assigns one probe RPC.
	ProbeFate = chaos.Fate
	// MonitorSnapshot is a restartable checkpoint of a monitor's learned
	// state (Monitor.Snapshot / RestoreMonitor).
	MonitorSnapshot = core.Snapshot
)

// Probe fates.
const (
	ProbeOK    = chaos.FateOK
	ProbeLost  = chaos.FateLost
	ProbeStale = chaos.FateStale
)

// ParseChaosProfile resolves a chaos profile name ("none", "light",
// "probe-loss", "heavy", …); "none" yields nil (chaos disabled) and
// unknown names an error enumerating every accepted one.
func ParseChaosProfile(name string) (*ChaosProfile, error) { return chaos.Parse(name) }

// ChaosProfileNames lists the named chaos profiles.
func ChaosProfileNames() []string { return chaos.Names() }

// NewChaosInjector materializes a chaos profile for one run of size
// ranks, deriving all randomness from seed.
func NewChaosInjector(p ChaosProfile, seed int64, size int) *ChaosInjector {
	return chaos.NewInjector(p, seed, size)
}

// RestoreMonitor builds a monitor resuming from a checkpoint — the
// failover path after a monitor crash. Call Start on the result.
func RestoreMonitor(w *World, cluster *Cluster, cfg MonitorConfig, snap MonitorSnapshot) *Monitor {
	return core.RestoreMonitor(w, cluster, cfg, snap)
}

// ProbeSout attaches a zero-cost Sout probe to w (Figures 2/3).
func ProbeSout(w *World, interval, stop time.Duration) *[]SoutPoint {
	return core.ProbeSout(w, interval, stop)
}

// Run executes one harness run (workload + platform + fault + detector).
func Run(rc RunConfig) RunResult { return experiment.Run(rc) }

// Campaign runs n seeds of base in parallel and returns results in seed
// order.
func Campaign(base RunConfig, n int, seed0 int64) []RunResult {
	return experiment.Campaign(base, n, seed0)
}

// Aggregate computes the paper's campaign metrics.
func Aggregate(rs []RunResult) Metrics { return experiment.Aggregate(rs) }

// NewRecorder returns a recorder forwarding events to sink; a nil sink
// yields a metrics-only recorder (counters on, events off).
func NewRecorder(sink TraceSink) *BasicRecorder { return obs.New(sink) }

// NewMemSink returns an empty in-memory trace sink.
func NewMemSink() *MemSink { return obs.NewMemSink() }

// NewJSONLSink wraps w as a JSONL trace sink.
func NewJSONLSink(w io.Writer) *JSONLSink { return obs.NewJSONLSink(w) }

// OpenJSONLTrace creates (truncating) a JSONL trace file at path.
func OpenJSONLTrace(path string) (*JSONLSink, error) { return obs.OpenJSONL(path) }

// NewMetricTotals returns an empty cross-run counter aggregator.
func NewMetricTotals() *MetricTotals { return obs.NewTotals() }

// MonitorDetectorFactory returns a factory attaching ParaStack with
// cfg through RunConfig.ExtraDetectors.
func MonitorDetectorFactory(cfg MonitorConfig) DetectorFactory {
	return experiment.MonitorDetector(cfg)
}

// TimeoutDetectorFactory returns a factory attaching the fixed-(I,K)
// baseline with cfg through RunConfig.ExtraDetectors.
func TimeoutDetectorFactory(cfg TimeoutConfig) DetectorFactory {
	return experiment.TimeoutDetector(cfg)
}

// WatchdogDetectorFactory returns a factory attaching the activity
// watchdog through RunConfig.ExtraDetectors.
func WatchdogDetectorFactory(timeoutDur time.Duration) DetectorFactory {
	return experiment.WatchdogDetector(timeoutDur)
}

// Sweeps: the resumable campaign orchestrator (package internal/sweep,
// command cmd/pssweep).
type (
	// SweepSpec declares a sweep grid (workloads × platforms × faults ×
	// seeds); JSON-serializable for cmd/pssweep -grid FILE.
	SweepSpec = sweep.Spec
	// SweepDetectorSpec selects the detector(s) a sweep attaches.
	SweepDetectorSpec = sweep.DetectorSpec
	// SweepCell is one fully determined point of an expanded grid.
	SweepCell = sweep.Cell
	// SweepRecord is one line of the durable JSONL results log.
	SweepRecord = sweep.Record
	// SweepOptions tunes a sweep (workers, retries, log, resume).
	SweepOptions = sweep.Options
	// SweepOutcome is what a sweep leaves behind in memory.
	SweepOutcome = sweep.Outcome
	// SweepProgress is a point-in-time progress view.
	SweepProgress = sweep.Progress
	// SweepOrchestrator drives ad-hoc campaigns through the sweep
	// machinery (resume, durability, bounded workers).
	SweepOrchestrator = sweep.Orchestrator
)

// RunSweep executes a sweep over spec's grid; cancelling ctx stops it
// cleanly and resumably.
func RunSweep(ctx context.Context, spec SweepSpec, opts SweepOptions) (*SweepOutcome, error) {
	return sweep.Run(ctx, spec, opts)
}

// ResumeSweep re-runs spec against the results log at path, skipping
// every cell the log already holds.
func ResumeSweep(ctx context.Context, path string, spec SweepSpec, opts SweepOptions) (*SweepOutcome, error) {
	return sweep.Resume(ctx, path, spec, opts)
}

// LoadSweepLog reads every record of a sweep results log.
func LoadSweepLog(path string) ([]SweepRecord, error) { return sweep.Load(path) }

// LoadSweepSpec reads a JSON SweepSpec from path.
func LoadSweepSpec(path string) (SweepSpec, error) { return sweep.LoadSpec(path) }

// SmokeSweepSpec is the tiny grid behind `make sweep-smoke`.
func SmokeSweepSpec() SweepSpec { return sweep.SmokeSpec() }

// NewSweepOrchestrator opens (or resumes) a results log and returns an
// orchestrator whose Campaign method is a durable, resumable drop-in
// for Campaign.
func NewSweepOrchestrator(ctx context.Context, opts SweepOptions) (*SweepOrchestrator, error) {
	return sweep.NewOrchestrator(ctx, opts)
}

// Results plumbing: the unified sink/reader contract every results
// destination — JSONL sweep logs and the Merkle ledger — satisfies
// (package internal/results).
type (
	// ResultsRecord is one keyed result payload.
	ResultsRecord = results.Record
	// ResultsSink accepts records; SweepOptions.Sink and the daemon's
	// Config.Sink take one.
	ResultsSink = results.Sink
	// ResultsReader replays previously appended records (resume).
	ResultsReader = results.Reader
)

// ErrResultsClosed is returned by any results sink appended to after
// Close.
var ErrResultsClosed = results.ErrClosed

// Tamper-evident results ledger (package internal/ledger, commands
// cmd/pssweep -ledger and cmd/psverify).
type (
	// Ledger is the append-only Merkle results ledger: batched appends,
	// one root per batch chained to HEAD, per-record inclusion proofs,
	// content-addressed dedup by record key.
	Ledger = ledger.Ledger
	// LedgerStore is the raw blob store a Ledger runs on (in-memory or
	// local-disk; implement it to add a backend).
	LedgerStore = ledger.Store
	// LedgerOptions tunes batching (size, flush deadline).
	LedgerOptions = ledger.Options
	// LedgerStats counts appends, dedup hits, and committed batches.
	LedgerStats = ledger.Stats
	// LedgerVerifyReport is a full audit's outcome (VerifyLedger).
	LedgerVerifyReport = ledger.VerifyReport
	// LedgerProblem is one localized verification failure.
	LedgerProblem = ledger.Problem
	// LedgerProofStep is one step of a Merkle inclusion proof.
	LedgerProofStep = ledger.ProofStep
)

// OpenLedger opens (or recovers) a ledger on store.
func OpenLedger(store LedgerStore, opts LedgerOptions) (*Ledger, error) {
	return ledger.Open(store, opts)
}

// VerifyLedger audits a ledger store: roots replayed, chain walked,
// every record re-hashed, every inclusion proof checked. workers
// bounds parallel record hashing (0 = GOMAXPROCS).
func VerifyLedger(store LedgerStore, workers int) (*LedgerVerifyReport, error) {
	return ledger.Verify(store, workers)
}

// NewLedgerMemStore returns an empty in-memory ledger store.
func NewLedgerMemStore() *ledger.MemStore { return ledger.NewMemStore() }

// OpenLedgerDirStore opens (creating if needed) a local-disk ledger
// store rooted at dir — the layout pssweep -ledger and psverify use.
func OpenLedgerDirStore(dir string) (*ledger.DirStore, error) { return ledger.OpenDirStore(dir) }
