// Command pssweep runs resumable experiment sweeps: it expands a grid
// (workloads × platforms × fault kinds × seeds) into a deterministic
// work-list, executes it on a bounded worker pool with per-run panic
// recovery, and streams every result to a durable JSONL log. Killing a
// sweep (Ctrl-C, SIGTERM, -halt-after, a crash) loses at most one
// fsync batch of work; rerunning with -resume skips completed cells
// and — because every run is seed-deterministic — yields bit-identical
// aggregate metrics to an uninterrupted sweep.
//
// Usage:
//
//	pssweep -grid smoke -out smoke.jsonl            # tiny built-in grid
//	pssweep -grid grid.json -out results.jsonl      # grid from a JSON Spec
//	pssweep -grid grid.json -out results.jsonl -resume   # pick up where it stopped
//	pssweep -grid paper -out paper.jsonl            # regenerate every paper table, resumably
//
// -workers bounds the pool (default GOMAXPROCS); -ctx-timeout bounds
// wall time (the sweep stops cleanly and is resumable); -halt-after N
// stops after N executed runs (the deterministic crash stand-in used
// by `make sweep-smoke`); -retries bounds re-execution of panicking
// runs. In -grid paper mode, -runs/-seed/-maxscale scale the campaigns
// exactly as psbench does.
//
// See the "Running sweeps" section of README.md and the sweep
// results-log entry of EXPERIMENTS.md for the grid and log schemas.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"parastack/internal/ledger"
	"parastack/internal/obs"
	"parastack/internal/paper"
	"parastack/internal/results"
	"parastack/internal/sweep"
)

// sinkOrNil keeps a nil *ledger.Ledger from becoming a non-nil
// results.Sink interface value.
func sinkOrNil(led *ledger.Ledger) results.Sink {
	if led == nil {
		return nil
	}
	return led
}

func main() { os.Exit(run()) }

// run is main behind an exit code: os.Exit lives only in main, so every
// deferred cleanup (signal teardown, the paper orchestrator's results
// log) executes on every exit path — an early error can never skip a
// pending log flush.
func run() int {
	grid := flag.String("grid", "", `grid to run: "smoke", "paper", or a path to a JSON sweep spec`)
	out := flag.String("out", "", "durable JSONL results-log path")
	ledgerDir := flag.String("ledger", "", "write results through a tamper-evident Merkle ledger at this directory instead of a JSONL log (verify with psverify -out DIR)")
	resume := flag.Bool("resume", false, "resume: skip cells whose results the log/ledger already holds")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	ctxTimeout := flag.Duration("ctx-timeout", 0, "overall wall-time bound (0 = none); the sweep stops cleanly and is resumable")
	retries := flag.Int("retries", sweep.DefaultRetries, "retries for a panicking run (0 = none)")
	haltAfter := flag.Int("halt-after", 0, "stop after N executed runs (crash stand-in for resume testing; 0 = unbounded)")
	chaosAxis := flag.String("chaos", "", `comma-separated detector-chaos axis overriding the grid's (e.g. "none,heavy")`)
	runs := flag.Int("runs", 0, "paper mode: runs per configuration (0 = small default)")
	seed := flag.Int64("seed", 1, "paper mode: base random seed")
	maxScale := flag.Int("maxscale", 4096, "paper mode: largest rank count for the scale study")
	metrics := flag.Bool("metrics", false, "print sweep counter totals at the end")
	flag.Parse()

	if *grid == "" || (*out == "") == (*ledgerDir == "") {
		if *out != "" && *ledgerDir != "" {
			fmt.Fprintln(os.Stderr, "pssweep: -out and -ledger are alternative result destinations; pass exactly one")
		}
		flag.Usage()
		return 2
	}

	// dest names the results destination in messages: the JSONL log
	// path or the ledger directory, whichever was chosen.
	dest := *out
	if *ledgerDir != "" {
		dest = *ledgerDir
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *ctxTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *ctxTimeout)
		defer cancel()
	}

	rec := obs.New(nil) // metrics-only; the pool serializes access

	// The ledger sink is opened (and closed) here, not inside the
	// sweep: the deferred Close is what commits the final partial
	// batch, and it must run on every exit path.
	var led *ledger.Ledger
	if *ledgerDir != "" {
		store, err := ledger.OpenDirStore(*ledgerDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pssweep:", err)
			return 1
		}
		defer store.Close()
		if led, err = ledger.Open(store, ledger.Options{}); err != nil {
			fmt.Fprintln(os.Stderr, "pssweep:", err)
			return 1
		}
		defer led.Close()
	}

	opts := sweep.Options{
		Workers: *workers,
		// The flag is literal — "-retries 0" really means zero — and is
		// mapped here onto the Options encoding, whose zero value must
		// keep meaning "default" for config-file and zero-struct callers.
		Retries:  sweep.LiteralRetries(*retries),
		Out:      *out,
		Resume:   *resume,
		Sink:     sinkOrNil(led),
		MaxRuns:  *haltAfter,
		Recorder: rec,
		OnProgress: func(p sweep.Progress) {
			fmt.Fprintf(os.Stderr, "pssweep: %d/%d done (%d executed, %d skipped, %d failed, %d retried)",
				p.Done, p.Total, p.Executed, p.Skipped, p.Failed, p.Retried)
			if p.ETA > 0 {
				fmt.Fprintf(os.Stderr, " eta %v", p.ETA.Round(time.Second))
			}
			fmt.Fprintln(os.Stderr)
		},
	}

	var err error
	if *grid == "paper" {
		if *chaosAxis != "" {
			fmt.Fprintln(os.Stderr, "pssweep: -chaos applies to grid sweeps, not -grid paper")
			return 2
		}
		err = runPaper(ctx, opts, paper.Options{Runs: *runs, Seed: *seed, MaxScale: *maxScale}, dest)
	} else {
		err = runGrid(ctx, *grid, *chaosAxis, opts, dest)
	}
	if led != nil && err == nil {
		// Commit the final batch before reporting, so the printed head
		// root covers everything this sweep wrote.
		if cerr := led.Close(); cerr != nil {
			err = cerr
		} else {
			st := led.LedgerStats()
			fmt.Printf("ledger: %d record(s) appended, %d dedup hit(s), %d batch(es) — head root %s\n",
				st.Appends, st.DedupHits, st.Batches, led.HeadRoot())
		}
	}
	if *metrics {
		totals := obs.NewTotals()
		totals.Add(rec.Snapshot())
		fmt.Printf("sweep counters:\n")
		for _, name := range totals.Names() {
			fmt.Printf("  %-24s %d\n", name, totals.Counter(name))
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pssweep:", err)
		return 1
	}
	return 0
}

// runGrid executes a declared grid sweep and prints its summary.
// chaosAxis, when non-empty, replaces the spec's chaos axis (validation
// happens in Cells, up front).
func runGrid(ctx context.Context, grid, chaosAxis string, opts sweep.Options, dest string) error {
	var spec sweep.Spec
	var err error
	switch grid {
	case "smoke":
		spec = sweep.SmokeSpec()
	default:
		if spec, err = sweep.LoadSpec(grid); err != nil {
			return err
		}
	}
	if chaosAxis != "" {
		spec.Chaos = strings.Split(chaosAxis, ",")
	}

	out, err := sweep.Run(ctx, spec, opts)
	if err != nil && err != context.Canceled && err != context.DeadlineExceeded {
		return err
	}
	interrupted := err != nil

	fmt.Printf("sweep: %d/%d cells done (%d executed, %d skipped, %d failed, %d retried) in %v\n",
		len(out.Records), out.Total, out.Executed, out.Skipped, out.Failed, out.Retried,
		out.Elapsed.Round(time.Millisecond))
	if out.Complete() {
		m := out.Aggregate()
		fmt.Printf("aggregate: runs=%d injected=%d detected=%d fp=%d accuracy=%.2f fprate=%.3f",
			m.Runs, m.Injected, m.Detected, m.FalsePositives, m.Accuracy, m.FPRate)
		if m.Delay.N > 0 {
			fmt.Printf(" delay=%.2fs", m.Delay.Mean)
		}
		fmt.Println()
	}
	if interrupted || out.Halted {
		fmt.Printf("sweep interrupted — rerun with -resume to finish (results: %s)\n", dest)
	}
	return nil
}

// runPaper regenerates the full paper evaluation through a resumable
// campaign orchestrator: every campaign run is streamed to the results
// log and replayed from it on -resume, so one long regeneration can be
// killed and picked up any number of times.
func runPaper(ctx context.Context, opts sweep.Options, popt paper.Options, dest string) error {
	orch, err := sweep.NewOrchestrator(ctx, opts)
	if err != nil {
		return err
	}
	// The deferred Close covers panic and early-return paths so the
	// results log is always flushed; the explicit Close below surfaces
	// its error on the happy path (Close is idempotent).
	defer orch.Close()
	popt.Campaign = orch.Campaign
	paper.GenerateAll(os.Stdout, popt)
	if err := orch.Close(); err != nil {
		return err
	}
	if err := orch.Err(); err != nil {
		return err
	}
	st := orch.Stats()
	fmt.Printf("paper sweep: %d campaign runs (%d executed, %d replayed from log, %d failed)\n",
		st.Total, st.Executed, st.Skipped, st.Failed)
	if orch.Interrupted() {
		fmt.Printf("regeneration interrupted — rerun with -resume to finish (results: %s)\n", dest)
	}
	return nil
}
