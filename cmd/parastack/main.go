// Command parastack runs one calibrated benchmark under the ParaStack
// monitor on a simulated platform, optionally injecting a hang, and
// prints the monitor's verdict — the simulated equivalent of submitting
// a monitored batch job.
//
// Usage:
//
//	parastack -bench LU -class D -procs 256 -platform tardis -fault computation
//	parastack -bench FT -class E -procs 1024 -platform tianhe2 -fault none
//	parastack -bench HPL -class 8e4 -procs 256 -fault deadlock -seed 7
//	parastack -bench LU -class D -trace run.jsonl -metrics
//
// -trace writes a JSONL event stream (samples, interval doublings, set
// rotations, slowdown filtering, verification, process lifecycle) and
// -metrics prints the run's observability counters; see the
// "Observability" section of README.md for the schema.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"parastack"
)

func main() { os.Exit(run()) }

// run is main behind an exit code: os.Exit lives only in main, so the
// deferred trace-sink Close executes on every exit path and a buffered
// trace can never be lost to an early exit.
func run() int {
	bench := flag.String("bench", "LU", "benchmark: BT CG FT LU MG SP HPL HPCG")
	class := flag.String("class", "D", "input class (NPB D/E, HPL 8e4/2e5/…, HPCG 64)")
	procs := flag.Int("procs", 256, "number of MPI ranks")
	platform := flag.String("platform", "tardis", "platform: tardis tianhe2 stampede")
	faultKind := flag.String("fault", "computation", "fault: none computation node deadlock lost mismatch")
	chaosName := flag.String("chaos", "none", "detector-chaos profile: none light probe-loss stale rank-death jitter monitor-crash heavy blackout")
	seed := flag.Int64("seed", 1, "random seed")
	alpha := flag.Float64("alpha", 0.001, "hang-test significance level (the one user-tunable)")
	initialI := flag.Duration("interval", 400*time.Millisecond, "initial sampling interval I0")
	traceFile := flag.String("trace", "", "write a JSONL event trace to this file")
	metrics := flag.Bool("metrics", false, "print observability counters after the run")
	flag.Parse()

	params, err := parastack.LookupWorkload(*bench, *class, *procs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parastack:", err)
		return 2
	}

	kind, err := parastack.ParseFaultKind(*faultKind)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parastack:", err)
		return 2
	}

	prof, err := parastack.LookupPlatform(*platform)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parastack:", err)
		return 2
	}

	chProf, err := parastack.ParseChaosProfile(*chaosName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parastack:", err)
		return 2
	}

	var trace *parastack.JSONLSink
	if *traceFile != "" {
		trace, err = parastack.OpenJSONLTrace(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "parastack:", err)
			return 2
		}
		// Deferred so the trace is flushed and reported on every exit
		// path, including the wall-limit failure exit below.
		defer func() {
			if err := trace.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "parastack: trace:", err)
			} else {
				fmt.Printf("trace written to %s\n", *traceFile)
			}
		}()
	}

	fmt.Printf("running %s on %s with %d ranks (fault: %s, seed %d)\n",
		params.Spec, *platform, *procs, *faultKind, *seed)
	start := time.Now()
	rc := parastack.RunConfig{
		Params:    params,
		Platform:  prof,
		Seed:      *seed,
		FaultKind: kind,
		Chaos:     chProf,
		Monitor:   &parastack.MonitorConfig{Alpha: *alpha, InitialInterval: *initialI},
	}
	if chProf != nil {
		fmt.Printf("detector chaos: %s profile\n", chProf.Name)
	}
	if trace != nil {
		rc.Trace = trace
	}
	res := parastack.Run(rc)

	fmt.Printf("simulated %v of virtual time in %v (%.1fM events)\n",
		maxDur(res.FinishedAt, res.InjectedAt+res.Delay).Round(time.Millisecond),
		time.Since(start).Round(time.Millisecond), float64(res.Events)/1e6)
	if res.Injected {
		fmt.Printf("fault injected at %v into ranks %v\n", res.InjectedAt.Round(time.Millisecond), res.PlannedFail)
	}
	if *metrics {
		printMetrics(res.Metrics)
	}
	switch {
	case res.Completed:
		fmt.Printf("application completed at %v; no hang reported\n", res.FinishedAt.Round(time.Millisecond))
	case res.Report != nil:
		rep := res.Report
		fmt.Printf("HANG VERIFIED at %v (%s)\n", rep.DetectedAt.Round(time.Millisecond), rep.Type)
		if len(rep.FaultyRanks) > 0 {
			fmt.Printf("faulty ranks: %v\n", rep.FaultyRanks)
		}
		if d := res.Diagnosis; d != nil {
			fmt.Printf("root cause: %s\n", d)
			for _, e := range d.Cycle {
				fmt.Printf("  cycle: rank %d waits on rank %d (%s)\n", e.From, e.To, e.Why)
			}
			for _, e := range d.Chain {
				fmt.Printf("  chain: rank %d waits on rank %d (%s)\n", e.From, e.To, e.Why)
			}
			if d.Lost != nil {
				fmt.Printf("  lost message: rank %d still waits for tag %d from rank %d\n",
					d.Lost.Receiver, d.Lost.Tag, d.Lost.Sender)
			}
			for _, g := range d.Groups {
				fmt.Printf("  collective group: comm %d seq %d %s ranks %v\n", g.Comm, g.Seq, g.Op, g.Ranks)
			}
		}
		if res.Detected {
			fmt.Printf("response delay: %v\n", res.Delay.Round(time.Millisecond))
		} else {
			fmt.Println("WARNING: report precedes the injected fault (false positive)")
		}
	default:
		fmt.Println("run neither completed nor produced a report (wall limit reached)")
		return 1
	}
	return 0
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// printMetrics renders a run's counter/gauge snapshot, sorted by name.
func printMetrics(m parastack.MetricSnapshot) {
	fmt.Println("metrics:")
	names := make([]string, 0, len(m.Counters))
	for n := range m.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-28s %d\n", n, m.Counters[n])
	}
	names = names[:0]
	for n := range m.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-28s %g\n", n, m.Gauges[n])
	}
}
