package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"parastack/internal/service"
)

// TestDaemonSmoke is the end-to-end service smoke behind
// `make service-smoke`: it builds the real parastackd binary with the
// race detector, starts it on a unix socket, drives three jobs through
// the wire protocol — an injected computation hang, a clean run, and an
// external Scrout stream that goes silent — asserts all three verdicts,
// and checks that SIGTERM produces a graceful zero-exit drain.
func TestDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real daemon")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "parastackd")
	build := exec.Command("go", "build", "-race", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building parastackd: %v", err)
	}

	sock := filepath.Join(dir, "psd.sock")
	daemon := exec.Command(bin, "-socket", sock, "-workers", "2", "-drain-timeout", "60s")
	daemon.Stdout = os.Stdout
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		t.Fatalf("starting parastackd: %v", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- daemon.Wait() }()
	defer daemon.Process.Kill() // no-op after a clean exit

	// The daemon is up when the socket accepts; DialRetry rides out the
	// startup window.
	cl, err := service.DialRetry("unix", sock, dialPolicy)
	if err != nil {
		t.Fatalf("daemon never came up: %v", err)
	}
	defer cl.Close()

	must := func(req service.Request) service.Response {
		t.Helper()
		resp, err := cl.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", req.Op, err)
		}
		if !resp.OK {
			t.Fatalf("%s: %s", req.Op, resp.Error)
		}
		return resp
	}

	must(service.Request{Op: service.OpPing})

	// Job 1: an injected computation hang — must be detected, with a
	// root cause attached.
	hang := service.JobSpec{ID: "hang", Bench: "CG", Class: "D", Procs: 64,
		Platform: "tardis", Fault: "computation", Seed: 3}
	must(service.Request{Op: service.OpSubmit, Job: &hang})

	// Job 2: a clean run — must complete with no report.
	clean := service.JobSpec{ID: "clean", Bench: "CG", Class: "D", Procs: 64,
		Platform: "tardis", Fault: "none", Seed: 4}
	must(service.Request{Op: service.OpSubmit, Job: &clean})

	// Job 3: an external Scrout stream that goes silent.
	stream := service.JobSpec{ID: "stream", Stream: true}
	must(service.Request{Op: service.OpSubmit, Job: &stream})
	var samples []service.StreamSample
	for i := 0; i < 200; i++ {
		samples = append(samples, service.StreamSample{TUS: int64(i) * 400_000, Scrout: float64(1+i%5) / 6})
	}
	for i := 0; i < 100; i++ {
		samples = append(samples, service.StreamSample{TUS: int64(200+i) * 400_000, Scrout: 0})
	}
	must(service.Request{Op: service.OpFeed, ID: "stream", Samples: samples})

	v := must(service.Request{Op: service.OpWait, ID: "hang", TimeoutMS: 120_000}).Verdict
	if v == nil || v.Report == nil || !v.Detected {
		t.Fatalf("hang job verdict = %+v, want a detected report", v)
	}
	if v.Cause == "" {
		t.Errorf("hang verdict carries no root cause")
	}
	v = must(service.Request{Op: service.OpWait, ID: "clean", TimeoutMS: 120_000}).Verdict
	if v == nil || !v.Completed || v.Report != nil {
		t.Fatalf("clean job verdict = %+v, want completed with no report", v)
	}
	v = must(service.Request{Op: service.OpWait, ID: "stream", TimeoutMS: 120_000}).Verdict
	if v == nil || v.Report == nil {
		t.Fatalf("stream job verdict = %+v, want a report for the silent stream", v)
	}

	resp := must(service.Request{Op: service.OpVerdicts})
	if len(resp.Verdicts) != 3 {
		t.Fatalf("verdicts = %d, want 3", len(resp.Verdicts))
	}

	// Graceful shutdown: SIGTERM must drain and exit zero.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("daemon exit after SIGTERM: %v", err)
		}
	case <-time.After(90 * time.Second):
		t.Fatal("daemon never exited after SIGTERM")
	}
	if _, err := os.Stat(sock); !os.IsNotExist(err) {
		t.Errorf("socket file %s not removed on exit (err=%v)", sock, err)
	}
}
