package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"

	"parastack/internal/core"
	"parastack/internal/experiment"
	"parastack/internal/fault"
	"parastack/internal/ledger"
	"parastack/internal/noise"
	"parastack/internal/service"
	"parastack/internal/workload"
)

// dialPolicy paces client dial/retry loops in the daemon tests.
var dialPolicy = service.RetryPolicy{MaxAttempts: 200, BaseDelay: 25 * time.Millisecond, MaxDelay: 250 * time.Millisecond, Seed: 1}

// TestKillAndRecoverDaemon is the crash-recovery smoke behind
// `make recover-smoke`: build the real daemon with the race detector,
// submit a burst of jobs with an admission journal and a verdict
// ledger, SIGKILL the daemon after the first verdict lands, restart it
// on the same journal — and require exactly one verdict per job,
// bit-identical to uninterrupted in-process runs, with the ledger
// auditing clean.
func TestKillAndRecoverDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs (and kills) the real daemon")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "parastackd")
	build := exec.Command("go", "build", "-race", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building parastackd: %v", err)
	}
	sock := filepath.Join(dir, "psd.sock")
	journal := filepath.Join(dir, "journal.jsonl")
	ledgerDir := filepath.Join(dir, "ledger")
	args := []string{"-socket", sock, "-journal", journal, "-ledger", ledgerDir,
		"-workers", "2", "-drain-timeout", "120s"}

	start := func() (*exec.Cmd, chan error) {
		t.Helper()
		daemon := exec.Command(bin, args...)
		daemon.Stdout = os.Stdout
		daemon.Stderr = os.Stderr
		if err := daemon.Start(); err != nil {
			t.Fatalf("starting parastackd: %v", err)
		}
		exited := make(chan error, 1)
		go func() { exited <- daemon.Wait() }()
		return daemon, exited
	}

	jobs := []service.JobSpec{
		{ID: "hang3", Bench: "CG", Class: "D", Procs: 64, Platform: "tardis", Fault: "computation", Seed: 3},
		{ID: "clean4", Bench: "CG", Class: "D", Procs: 64, Platform: "tardis", Fault: "none", Seed: 4},
		{ID: "hang5", Bench: "CG", Class: "D", Procs: 64, Platform: "tardis", Fault: "computation", Seed: 5},
	}

	daemon, exited := start()
	defer daemon.Process.Kill()
	cl, err := service.DialRetry("unix", sock, dialPolicy)
	if err != nil {
		t.Fatalf("dialing daemon: %v", err)
	}
	for i := range jobs {
		resp, err := cl.Do(service.Request{Op: service.OpSubmit, Job: &jobs[i]})
		if err != nil || !resp.OK {
			t.Fatalf("submit %s: %v %s", jobs[i].ID, err, resp.Error)
		}
	}
	// Mid-burst: wait for the first verdict, then pull the plug.
	resp, err := cl.Do(service.Request{Op: service.OpWait, ID: jobs[0].ID, TimeoutMS: 300_000})
	if err != nil || !resp.OK || resp.Verdict == nil {
		t.Fatalf("first verdict: %v %s", err, resp.Error)
	}
	cl.Close()
	if err := daemon.Process.Kill(); err != nil { // SIGKILL: no drain, no goodbye
		t.Fatal(err)
	}
	<-exited

	// Restart on the same journal: recovery must re-install the decided
	// verdict and re-run the open jobs.
	daemon, exited = start()
	defer daemon.Process.Kill()
	cl, err = service.DialRetry("unix", sock, dialPolicy)
	if err != nil {
		t.Fatalf("redialing daemon: %v", err)
	}
	defer cl.Close()
	got := make(map[string]service.Verdict)
	for _, js := range jobs {
		resp, err := cl.Do(service.Request{Op: service.OpWait, ID: js.ID, TimeoutMS: 300_000})
		if err != nil || !resp.OK || resp.Verdict == nil {
			t.Fatalf("post-recovery wait %s: %v %s", js.ID, err, resp.Error)
		}
		got[js.ID] = *resp.Verdict
	}
	resp, err = cl.Do(service.Request{Op: service.OpVerdicts})
	if err != nil || !resp.OK {
		t.Fatalf("verdicts: %v %s", err, resp.Error)
	}
	if len(resp.Verdicts) != len(jobs) {
		t.Fatalf("verdicts after recovery = %d, want exactly %d (one per job)", len(resp.Verdicts), len(jobs))
	}
	seen := map[string]bool{}
	for _, v := range resp.Verdicts {
		if seen[v.JobID] {
			t.Fatalf("duplicate verdict for %s", v.JobID)
		}
		seen[v.JobID] = true
	}

	// Graceful exit this time.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-exited; err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v", err)
	}

	// Every verdict must be bit-identical to an uninterrupted
	// in-process run of the same configuration.
	for _, js := range jobs {
		v := got[js.ID]
		params := workload.MustLookup(js.Bench, js.Class, js.Procs)
		prof, err := noise.Lookup(js.Platform)
		if err != nil {
			t.Fatal(err)
		}
		fk, err := fault.Parse(js.Fault)
		if err != nil {
			t.Fatal(err)
		}
		direct := experiment.Run(experiment.RunConfig{
			Params: params, Platform: prof, Seed: js.Seed,
			FaultKind: fk, Monitor: &core.Config{},
		})
		if !reflect.DeepEqual(v.Report, direct.Report) {
			t.Errorf("%s report diverges after recovery:\ndaemon %+v\ndirect %+v", js.ID, v.Report, direct.Report)
		}
		if v.Cause != direct.Cause || !reflect.DeepEqual(v.Diagnosis, direct.Diagnosis) {
			t.Errorf("%s diagnosis diverges: daemon (%q, %+v) direct (%q, %+v)",
				js.ID, v.Cause, v.Diagnosis, direct.Cause, direct.Diagnosis)
		}
		if v.Completed != direct.Completed || v.Detected != direct.Detected {
			t.Errorf("%s judgement diverges: daemon (%v,%v) direct (%v,%v)",
				js.ID, v.Completed, v.Detected, direct.Completed, direct.Detected)
		}
	}

	// The verdict ledger survived the SIGKILL and audits clean, holding
	// exactly one verdict record per job.
	store, err := ledger.OpenDirStore(ledgerDir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	audit, err := ledger.Verify(store, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !audit.OK() {
		t.Fatalf("ledger audit after kill+recover: %v", audit.Problems)
	}
	led, err := ledger.Open(store, ledger.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	recs, err := led.Records()
	if err != nil {
		t.Fatal(err)
	}
	ledgerKeys := map[string]int{}
	for _, r := range recs {
		ledgerKeys[r.Key]++
	}
	for _, js := range jobs {
		if n := ledgerKeys["verdict|"+js.ID]; n != 1 {
			t.Errorf("ledger holds %d records for %s, want exactly 1", n, js.ID)
		}
	}
}
