// Command parastackd is the multi-tenant hang-detection daemon: a
// long-running service multiplexing per-job ParaStack monitors over a
// sharded worker pool. Jobs — (workload, platform, fault, seed)
// simulations or external Scrout sample feeders — arrive over a
// framed-JSONL socket; verdicts (detect.Report plus the wait-for
// root-cause diagnosis) are served back over the same socket and over
// an optional HTTP query surface.
//
// Usage:
//
//	parastackd -socket /run/parastackd.sock
//	parastackd -listen 127.0.0.1:7117 -http 127.0.0.1:7118
//	parastackd -socket /tmp/psd.sock -workers 8 -max-jobs 4096 -retries 0
//	parastackd -socket /tmp/psd.sock -journal /var/lib/psd/journal.jsonl -retry-max 3
//
// Submit with any line-oriented client:
//
//	{"op":"submit","job":{"id":"j1","bench":"CG","class":"D","procs":64,"platform":"tardis","fault":"computation","seed":3}}
//	{"op":"wait","id":"j1","timeout_ms":60000}
//	{"op":"verdicts"}
//
// With -journal the daemon is crash-safe: every accepted job is
// appended (fsynced) to the journal before the client sees success,
// and a restart with the same journal re-installs decided verdicts and
// re-runs open jobs — exactly one verdict per job, bit-identical to an
// uninterrupted run. -retry-max/-retry-base, -job-deadline, and
// -breaker-threshold/-breaker-cooldown tune the supervisor: transient
// failures (panicked workers, open shard circuits, plausibly-transient
// hang causes) are requeued with deterministic backoff; structural
// hangs (deadlock, collective mismatch) are never retried.
//
// On SIGTERM/SIGINT the daemon drains gracefully: intake is rejected,
// the ingest batcher flushes, every in-flight run completes, pending
// stream jobs are closed out, and only then do the listeners shut down
// — so a client that submitted before the signal can still collect its
// verdict. -drain-timeout is a hard deadline: on expiry the
// still-undecided jobs are flushed to the journal as open entries
// (recoverable on restart) and the daemon exits nonzero, naming them.
//
// See the "Running the daemon" section of README.md for the protocol
// and an end-to-end example.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"parastack/internal/ledger"
	"parastack/internal/obs"
	"parastack/internal/results"
	"parastack/internal/service"
	"parastack/internal/sweep"
)

// sinkOrNil keeps a nil *ledger.Ledger from becoming a non-nil
// results.Sink interface value.
func sinkOrNil(led *ledger.Ledger) results.Sink {
	if led == nil {
		return nil
	}
	return led
}

// journalOrNil does the same for the JSONL admission journal.
func journalOrNil(j *results.JSONL) results.Sink {
	if j == nil {
		return nil
	}
	return j
}

func main() { os.Exit(run()) }

// run is the whole daemon; keeping main a bare os.Exit(run()) means
// every deferred cleanup (listeners, socket file, drain) executes on
// every exit path — os.Exit never skips a pending flush.
func run() int {
	socket := flag.String("socket", "", "unix socket path for the framed-JSONL surface")
	listen := flag.String("listen", "", "TCP address for the framed-JSONL surface (e.g. 127.0.0.1:7117)")
	httpAddr := flag.String("http", "", "optional TCP address for the HTTP query surface (/verdicts, /jobs, /metrics)")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "ingest routing shards (0 = min(workers, 4))")
	maxJobs := flag.Int("max-jobs", 0, "residency quota: max undecided jobs (0 = 1024)")
	batch := flag.Int("batch", 0, "ingest batch size (0 = 16)")
	batchDelay := flag.Duration("batch-delay", 0, "ingest batch flush deadline (0 = 2ms)")
	retries := flag.Int("retries", 1, "retries for a panicking run (0 = none)")
	ledgerDir := flag.String("ledger", "", "append every verdict to a tamper-evident Merkle ledger at this directory (verify with psverify -out DIR)")
	journalPath := flag.String("journal", "", "durable admission journal (JSONL file): admits are journaled before the client sees success, and a restart with the same journal recovers open jobs exactly-once")
	retryMax := flag.Int("retry-max", 1, "max executions per job, initial dispatch included (1 = never requeue)")
	retryBase := flag.Duration("retry-base", 0, "base requeue backoff, doubling per attempt (0 = 50ms)")
	jobDeadline := flag.Duration("job-deadline", 0, "per-job admission-to-verdict deadline for simulation jobs (0 = unbounded)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive run failures that trip a shard's circuit breaker (0 = 5, negative = disabled)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (0 = 5s)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound on SIGTERM; on expiry stragglers are journaled as open and the daemon exits nonzero")
	metrics := flag.Bool("metrics", false, "print service counters on exit")
	flag.Parse()

	if (*socket == "") == (*listen == "") {
		fmt.Fprintln(os.Stderr, "parastackd: exactly one of -socket or -listen is required")
		flag.Usage()
		return 2
	}

	// The verdict ledger outlives the service: it is closed only after
	// Drain, so the final partial batch of verdicts is committed before
	// the head root is reported.
	var led *ledger.Ledger
	if *ledgerDir != "" {
		store, err := ledger.OpenDirStore(*ledgerDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "parastackd:", err)
			return 1
		}
		defer store.Close()
		if led, err = ledger.Open(store, ledger.Options{}); err != nil {
			fmt.Fprintln(os.Stderr, "parastackd:", err)
			return 1
		}
		defer led.Close()
	}

	// The admission journal is opened (and replayed, below) before the
	// listeners come up, so recovery never races fresh traffic. Every
	// append is fsynced: journal-before-ack is only worth its name if
	// "journaled" means "on disk".
	var jnl *results.JSONL
	if *journalPath != "" {
		var err error
		if jnl, err = results.OpenJSONL(*journalPath, 1); err != nil {
			fmt.Fprintln(os.Stderr, "parastackd:", err)
			return 1
		}
		defer jnl.Close()
	}

	rec := obs.New(nil)
	svc := service.New(service.Config{
		Workers:          *workers,
		Shards:           *shards,
		MaxJobs:          *maxJobs,
		BatchSize:        *batch,
		BatchDelay:       *batchDelay,
		Retries:          sweep.LiteralRetries(*retries),
		Recorder:         rec,
		Sink:             sinkOrNil(led),
		Journal:          journalOrNil(jnl),
		Retry:            service.RetryPolicy{MaxAttempts: *retryMax, BaseDelay: *retryBase},
		JobDeadline:      *jobDeadline,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
	})

	if jnl != nil {
		rep, err := svc.Recover(jnl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "parastackd: recover:", err)
			return 1
		}
		if len(rep.Decided) > 0 || len(rep.Open) > 0 || rep.Skipped > 0 {
			fmt.Printf("parastackd: journal %s replayed: %s\n", *journalPath, rep)
		}
	}

	var ln net.Listener
	var err error
	if *socket != "" {
		os.Remove(*socket) // stale socket from an unclean previous exit
		ln, err = net.Listen("unix", *socket)
		if err == nil {
			defer os.Remove(*socket)
		}
	} else {
		ln, err = net.Listen("tcp", *listen)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "parastackd:", err)
		return 1
	}
	srv := service.Serve(svc, ln)
	fmt.Printf("parastackd: serving framed JSONL on %s\n", ln.Addr())

	var httpSrv *http.Server
	if *httpAddr != "" {
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "parastackd:", err)
			srv.Shutdown()
			svc.Close()
			return 1
		}
		httpSrv = &http.Server{Handler: service.Handler(svc)}
		go httpSrv.Serve(hln)
		fmt.Printf("parastackd: serving HTTP queries on %s\n", hln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	fmt.Println("parastackd: draining...")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	code := 0
	if err := svc.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "parastackd: drain:", err)
		var dte *service.DrainTimeoutError
		if errors.As(err, &dte) {
			for _, id := range dte.Stragglers {
				fmt.Fprintln(os.Stderr, "parastackd: drain straggler:", id)
			}
		}
		code = 1
	}
	cancel()
	// Listeners come down after the drain, so clients submitted before
	// the signal can still collect their verdicts during it.
	srv.Shutdown()
	if httpSrv != nil {
		httpSrv.Close()
	}
	if led != nil {
		// Commit the final verdict batch now so the printed head root
		// covers everything this daemon decided (Close is idempotent —
		// the deferred Close becomes a no-op).
		if err := led.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "parastackd: ledger:", err)
			code = 1
		} else {
			st := led.LedgerStats()
			fmt.Printf("parastackd: ledger %s — %d verdict(s) appended, %d batch(es), head root %s\n",
				*ledgerDir, st.Appends, st.Batches, led.HeadRoot())
		}
	}
	if *metrics {
		snap := svc.Counters()
		names := make([]string, 0, len(snap.Counters))
		for n := range snap.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println("service counters:")
		for _, n := range names {
			fmt.Printf("  %-28s %d\n", n, snap.Counters[n])
		}
	}
	fmt.Println("parastackd: drained, bye")
	return code
}
