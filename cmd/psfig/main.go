// Command psfig emits the data series behind the ParaStack paper's
// figures as CSV (or annotated text) on stdout.
//
// Usage:
//
//	psfig -fig 2    # healthy Sout variation of LU/SP/FT (Figure 2)
//	psfig -fig 3    # Sout of a faulty LU run (Figure 3)
//	psfig -fig 4    # Scrout model ECDF panels (Figure 4)
//	psfig -fig 5    # sample size vs suspicion probability (Figure 5)
//	psfig -fig 7    # per-run runtimes on stampede @1024 (Figure 7)
//	psfig -fig 9    # response-delay histograms @256 (Figure 9)
//	psfig -fig 10   # batch time savings (Figure 10)
package main

import (
	"flag"
	"fmt"
	"os"

	"parastack/internal/paper"
)

func main() {
	fig := flag.Int("fig", 0, "figure number (2,3,4,5,7,9,10)")
	runs := flag.Int("runs", 0, "runs per configuration where applicable")
	seed := flag.Int64("seed", 1, "base random seed")
	flag.Parse()

	opt := paper.Options{Runs: *runs, Seed: *seed}
	w := os.Stdout
	switch *fig {
	case 2:
		paper.Figure2(w, opt)
	case 3:
		paper.Figure3(w, opt)
	case 4:
		paper.Figure4(w, opt)
	case 5:
		paper.Figure5(w, opt)
	case 7:
		paper.Figure7(w, opt)
	case 9:
		campaigns := map[string][]paper.AccuracyCell{
			"tardis": paper.AccuracyCampaign("tardis", 256, opt),
		}
		paper.Figure9(w, campaigns, opt)
	case 10:
		paper.Figure10(w, opt)
	default:
		fmt.Fprintln(os.Stderr, "psfig: -fig must be one of 2,3,4,5,7,9,10")
		flag.Usage()
		os.Exit(2)
	}
}
