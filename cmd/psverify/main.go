// Command psverify audits a parastack results ledger: it replays every
// batch's Merkle root from its manifest, walks the root chain up to
// HEAD, re-hashes every committed record blob against its content
// address, and checks every stored inclusion proof — so any torn
// write, truncation, or single-bit flip anywhere in the ledger is
// reported, localized to the damaged record's cell key when the damage
// is record-level.
//
// Usage:
//
//	psverify -out /path/to/ledger             # audit, print head root
//	psverify -out /path/to/ledger -workers 8  # parallel record hashing
//	psverify -out /path/to/ledger -v          # also list per-batch roots
//
// Flag conventions match pssweep: -out names the artifact directory (a
// ledger written by `pssweep -ledger DIR` or `parastackd -ledger
// DIR`), -workers bounds parallelism (default GOMAXPROCS). Exit codes:
// 0 = ledger verifies clean, 1 = verification problems or an audit
// error, 2 = usage.
//
// A clean run prints the head root; note it somewhere the ledger's
// writer cannot touch and later runs prove the tail was never
// rewritten. See the "Verifying and deduplicating results" section of
// README.md and the ledger schema entry of EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"parastack/internal/ledger"
)

func main() { os.Exit(run()) }

// run is main behind an exit code so deferred cleanups (the store
// handle) execute on every exit path.
func run() int {
	out := flag.String("out", "", "ledger directory to verify (as written by pssweep -ledger / parastackd -ledger; required)")
	workers := flag.Int("workers", 0, "parallel record-verification workers (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "print per-batch detail")
	flag.Parse()

	if *out == "" {
		flag.Usage()
		return 2
	}
	if fi, err := os.Stat(*out); err != nil || !fi.IsDir() {
		fmt.Fprintf(os.Stderr, "psverify: %s is not a ledger directory\n", *out)
		return 1
	}

	store, err := ledger.OpenDirStore(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psverify:", err)
		return 1
	}
	defer store.Close()

	rep, err := ledger.Verify(store, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psverify:", err)
		return 1
	}

	if *verbose {
		fmt.Printf("psverify: head seq=%d root=%s\n", rep.HeadSeq, rep.HeadRoot)
		if rep.Orphans > 0 {
			fmt.Printf("psverify: %d orphan blob(s) past the committed tip (torn tail, tolerated)\n", rep.Orphans)
		}
	}
	for _, p := range rep.Problems {
		fmt.Fprintf(os.Stderr, "psverify: %s\n", p)
	}
	if !rep.OK() {
		fmt.Fprintf(os.Stderr, "psverify: FAILED — %d problem(s) across %d batch(es), %d record(s), %d proof(s)\n",
			len(rep.Problems), rep.Batches, rep.Records, rep.Proofs)
		return 1
	}
	fmt.Printf("psverify: OK — %d batch(es), %d record(s), %d proof(s) verified (head root %s)\n",
		rep.Batches, rep.Records, rep.Proofs, rep.HeadRoot)
	return 0
}
