// Command psbench regenerates the tables of the ParaStack paper's
// evaluation on the simulated substrate.
//
// Usage:
//
//	psbench -table 1           # Table 1 (fixed-timeout baseline)
//	psbench -table 3           # Table 3 (stack-trace overhead)
//	psbench -table 4           # Table 4 (overhead @256 tardis)
//	psbench -table 5           # Table 5 / Fig 8 (overhead @1024 tianhe2)
//	psbench -table 6           # Table 6 (+7, 8, 10 share campaigns)
//	psbench -table 7|8|10      # delay / identification tables
//	psbench -table 9           # Table 9 (P vs P*)
//	psbench -fp                # false-positive study (§7.1-II)
//	psbench -scale             # large-scale study (§7.1-III)
//	psbench -cause             # root-cause diagnosis accuracy table
//	psbench -all               # everything
//
// -runs N scales every campaign (default: small shape-preserving
// counts; the paper's full counts are noted in each header and take
// hours of CPU). -maxscale caps the scale study (default 4096).
//
// -trace FILE writes every campaign run's structured events as JSONL
// (runs are tagged with their seed via the "run" key); -metrics prints
// counter totals aggregated across all runs at the end. See the
// "Observability" section of README.md for the schema.
//
// -bench-json FILE runs the fixed engine/monitor/campaign
// microbenchmark suite and writes the measurements (ns/op, allocs/op,
// events/sec) to FILE; -bench-scale-json FILE does the same for the
// rank-count scaling sweep (256 → 131072 ranks, each size measured on
// the serial engine and in windowed parallel-DES mode, every figure
// averaged over at least three full runs); -bench-service-json
// FILE does the same for the parastackd service suite (jobs/sec, p99
// ingest latency, stream samples/sec). See the "Benchmarks" section of
// README.md for the schema. `make bench-json` regenerates the
// checked-in BENCH_engine.json, BENCH_scale.json, and
// BENCH_service.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"parastack/internal/bench"
	"parastack/internal/obs"
	"parastack/internal/paper"
)

func main() { os.Exit(run()) }

// run is main behind an exit code: os.Exit lives only in main, so the
// deferred trace-sink Close runs on every exit path — before this
// restructure, the "nothing selected" usage exit skipped it and could
// lose buffered trace events.
func run() int {
	table := flag.Int("table", 0, "table number to regenerate (1,3,4,5,6,7,8,9,10)")
	fp := flag.Bool("fp", false, "run the false-positive study")
	scale := flag.Bool("scale", false, "run the large-scale study")
	cause := flag.Bool("cause", false, "run the root-cause diagnosis accuracy table")
	all := flag.Bool("all", false, "regenerate every table")
	runs := flag.Int("runs", 0, "runs per configuration (0 = small default)")
	seed := flag.Int64("seed", 1, "base random seed")
	maxScale := flag.Int("maxscale", 4096, "largest rank count for -scale")
	traceFile := flag.String("trace", "", "write a JSONL event trace of every run to this file")
	metrics := flag.Bool("metrics", false, "print counter totals over all runs at the end")
	benchJSON := flag.String("bench-json", "", "run the microbenchmark suite and write results to this file")
	benchScaleJSON := flag.String("bench-scale-json", "", "run the rank-count scaling suite and write results to this file")
	benchServiceJSON := flag.String("bench-service-json", "", "run the daemon throughput suite and write results to this file")
	flag.Parse()

	if *benchJSON != "" || *benchScaleJSON != "" || *benchServiceJSON != "" {
		if *benchJSON != "" {
			if err := runBenchJSON(*benchJSON); err != nil {
				fmt.Fprintln(os.Stderr, "psbench:", err)
				return 1
			}
		}
		if *benchScaleJSON != "" {
			if err := runBenchScaleJSON(*benchScaleJSON); err != nil {
				fmt.Fprintln(os.Stderr, "psbench:", err)
				return 1
			}
		}
		if *benchServiceJSON != "" {
			if err := runBenchServiceJSON(*benchServiceJSON); err != nil {
				fmt.Fprintln(os.Stderr, "psbench:", err)
				return 1
			}
		}
		return 0
	}

	opt := paper.Options{Runs: *runs, Seed: *seed, MaxScale: *maxScale}
	if *traceFile != "" {
		sink, err := obs.OpenJSONL(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psbench:", err)
			return 2
		}
		defer sink.Close()
		opt.Trace = sink
	}
	if *metrics {
		opt.Stats = obs.NewTotals()
	}
	w := os.Stdout
	start := time.Now()

	need := func(n int) bool {
		if *table == 678 && (n == 7 || n == 8 || n == 10) {
			return true
		}
		return *all || *table == n
	}

	// Tables 6/7/8/10 and Figure 9 share the accuracy campaigns; asking
	// for any of them prints all four.
	var campaigns map[string][]paper.AccuracyCell
	needsCampaigns := *all || *table == 6 || *table == 7 || *table == 8 || *table == 10
	if needsCampaigns && !*all {
		*table = 678 // sentinel: print 7, 8, 10 too
	}

	switch {
	case *table == 0 && !*fp && !*scale && !*cause && !*all:
		flag.Usage()
		return 2
	}

	if need(1) {
		paper.Table1(w, opt)
		fmt.Fprintln(w)
	}
	if need(3) {
		paper.Table3(w, opt)
		fmt.Fprintln(w)
	}
	if need(4) {
		paper.Table4(w, opt)
		fmt.Fprintln(w)
	}
	if need(5) {
		paper.Table5(w, opt)
		fmt.Fprintln(w)
	}
	if needsCampaigns {
		campaigns = paper.Table6(w, opt)
		fmt.Fprintln(w)
	}
	if need(7) {
		paper.Table7(w, campaigns, opt)
		fmt.Fprintln(w)
	}
	if need(8) {
		paper.Table8(w, campaigns, opt)
		fmt.Fprintln(w)
	}
	if need(9) {
		paper.Table9(w, opt)
		fmt.Fprintln(w)
	}
	if need(10) {
		paper.Table10(w, campaigns, opt)
		fmt.Fprintln(w)
	}
	if *cause || *all {
		paper.CauseTable(w, opt)
		fmt.Fprintln(w)
	}
	if *fp || *all {
		paper.FalsePositiveStudy(w, opt)
		fmt.Fprintln(w)
	}
	if *scale || *all {
		paper.ScaleStudy(w, opt)
		fmt.Fprintln(w)
	}
	if opt.Stats != nil {
		fmt.Fprintf(w, "counter totals over %d runs:\n", opt.Stats.Runs())
		for _, name := range opt.Stats.Names() {
			fmt.Fprintf(w, "  %-28s %d\n", name, opt.Stats.Counter(name))
		}
	}
	fmt.Fprintf(w, "(wall time %v)\n", time.Since(start).Round(time.Millisecond))
	return 0
}

// runBenchJSON runs the fixed microbenchmark suite, writes the JSON
// artifact, and echoes a human-readable summary to stdout.
func runBenchJSON(path string) error {
	start := time.Now()
	fmt.Printf("running microbenchmark suite (this takes a minute)...\n")
	rep := bench.RunSuite()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	bench.WriteSummary(os.Stdout, rep)
	fmt.Printf("wrote %s (wall time %v)\n", path, time.Since(start).Round(time.Millisecond))
	return nil
}

// runBenchServiceJSON runs the daemon throughput suite, writes the JSON
// artifact, and echoes a human-readable summary to stdout.
func runBenchServiceJSON(path string) error {
	start := time.Now()
	fmt.Printf("running service throughput suite (bursts of real CG runs through the daemon)...\n")
	rep := bench.RunServiceSuite()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	bench.WriteSummary(os.Stdout, rep)
	fmt.Printf("wrote %s (wall time %v)\n", path, time.Since(start).Round(time.Millisecond))
	return nil
}

// runBenchScaleJSON runs the rank-count scaling sweep, writes the JSON
// artifact, and echoes a human-readable summary to stdout.
func runBenchScaleJSON(path string) error {
	start := time.Now()
	fmt.Printf("running rank-count scaling suite (serial + parallel rows to 131072 ranks; the biggest points take minutes per row)...\n")
	rep := bench.RunScaleSuite()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	bench.WriteSummary(os.Stdout, rep)
	fmt.Printf("wrote %s (wall time %v)\n", path, time.Since(start).Round(time.Millisecond))
	return nil
}
