package parastack

import (
	"parastack/internal/diagnose"
	"parastack/internal/diagnose/waitfor"
	"parastack/internal/mpi"
)

// Post-hang diagnosis (the complementary tools of the paper's Figure 1
// workflow) and the extensions of §6.

type (
	// Comm is a sub-communicator (MPI_Comm_split) with its own
	// collective space.
	Comm = mpi.Comm
	// Thread is a worker thread of a hybrid (MPI+OpenMP) rank.
	Thread = mpi.Thread
	// BlockInfo describes what a rank is blocked on.
	BlockInfo = mpi.BlockInfo
	// StackGroup is a STAT-style behavioral equivalence class.
	StackGroup = diagnose.StackGroup
	// ProgressGraph is the wait-for graph among ranks.
	ProgressGraph = diagnose.ProgressGraph
	// WaitEdge is one wait-for dependency.
	WaitEdge = diagnose.WaitEdge
	// HangCause is a named hang root cause ("deadlock",
	// "straggler-chain", "lost-message", "collective-mismatch",
	// "unknown").
	HangCause = waitfor.Cause
	// HangDiagnosis is a classified hang with its evidence, attached to
	// a detector Report (and RunResult) after the verdict.
	HangDiagnosis = waitfor.Diagnosis
	// WaitForSnapshot is the serialized blocking state the classifier
	// consumes.
	WaitForSnapshot = waitfor.Snapshot
)

// The named root causes.
const (
	CauseUnknown            = waitfor.CauseUnknown
	CauseDeadlock           = waitfor.CauseDeadlock
	CauseStragglerChain     = waitfor.CauseStragglerChain
	CauseLostMessage        = waitfor.CauseLostMessage
	CauseCollectiveMismatch = waitfor.CauseCollectiveMismatch
)

// Blocking kinds (see Rank.BlockInfo).
const (
	NotBlocked        = mpi.NotBlocked
	BlockedRecv       = mpi.BlockedRecv
	BlockedCollective = mpi.BlockedCollective
	RankTerminated    = mpi.Terminated
)

// GroupByStack partitions all ranks into stack-trace equivalence
// classes (mini-STAT), largest first.
func GroupByStack(w *World) []StackGroup { return diagnose.GroupByStack(w) }

// BuildProgressGraph captures the instantaneous wait-for structure of
// the world and the least-progressed (faulty-candidate) ranks.
func BuildProgressGraph(w *World) *ProgressGraph { return diagnose.BuildProgressGraph(w) }

// DiagnoseReport renders a human-readable post-hang diagnosis: stack
// groups plus least-progressed ranks.
func DiagnoseReport(w *World) string { return diagnose.Report(w) }

// CaptureWaitFor snapshots every observable rank's blocked MPI
// operation from a paused world (observed == nil sees everything).
func CaptureWaitFor(w *World, observed func(rank int) bool) *WaitForSnapshot {
	return waitfor.Capture(w, observed)
}

// AnalyzeWaitFor classifies a hang snapshot into a named root cause
// with machine-checkable evidence.
func AnalyzeWaitFor(s *WaitForSnapshot) *HangDiagnosis { return waitfor.Analyze(s) }

// ExpectedHangCause maps an injected fault kind to the cause a correct
// diagnosis should name ("" for kinds with no defined signature).
func ExpectedHangCause(k FaultKind) HangCause { return waitfor.ExpectedCause(k) }
