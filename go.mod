module parastack

go 1.22
