package paper

import (
	"fmt"
	"io"

	"parastack/internal/core"
	"parastack/internal/experiment"
	"parastack/internal/fault"
	"parastack/internal/workload"
)

// CauseCell is one (benchmark, fault kind) diagnosis campaign: how
// often the wait-for analysis named the injected root cause.
type CauseCell struct {
	Platform string
	Bench    string
	Class    string
	Scale    int
	Kind     fault.Kind
	Metrics  experiment.Metrics
}

// causeKinds are the injected root causes the diagnosis layer can name
// (fault.ComputationHang and fault.NodeFreeze share the
// straggler-chain signature but exercise different graph shapes).
var causeKinds = []fault.Kind{
	fault.ComputationHang,
	fault.NodeFreeze,
	fault.CommunicationDeadlock,
	fault.LostMessage,
	fault.CollectiveMismatch,
}

// causeBenches are the benchmarks the cause table covers — one per
// communication pattern (ring halo, 2D wavefront, all-to-all,
// V-cycle), all with a global collective every iteration so every
// signature, including collective mismatch, is observable.
var causeBenches = []struct{ name, class string }{
	{"CG", "D"}, {"LU", "D"}, {"FT", "D"}, {"MG", "E"},
}

// CauseCampaign runs the diagnosis campaigns behind the cause table
// for one platform at one scale: for every benchmark × fault kind it
// injects the fault, lets ParaStack detect the hang, and scores the
// wait-for diagnosis against the injected ground truth
// (Metrics.CauseAccuracy).
func CauseCampaign(platform string, scale int, opt Options) []CauseCell {
	opt = opt.withDefaults(3)
	prof, ppn := platformWorld(platform, scale)
	var cells []CauseCell
	for bi, b := range causeBenches {
		params := workload.MustLookup(b.name, b.class, scale)
		for ki, kind := range causeKinds {
			rs := opt.campaign(experiment.RunConfig{
				Params:    params,
				Platform:  prof,
				PPN:       ppn,
				FaultKind: kind,
				Monitor:   &core.Config{},
			}, opt.Runs, opt.Seed+int64(bi*10000+ki*1000)+333)
			cells = append(cells, CauseCell{
				Platform: platform, Bench: b.name, Class: b.class, Scale: scale,
				Kind: kind, Metrics: experiment.Aggregate(rs),
			})
		}
	}
	return cells
}

// CauseTable generates the root-cause diagnosis accuracy table (no
// paper counterpart — the paper stops at faulty-process
// identification; this scores the wait-for graph layer on top of it):
// ACc is the fraction of diagnosed runs whose named cause matches the
// injected fault kind, per benchmark and kind, with honest "unknown"
// verdicts counted separately from wrong answers.
func CauseTable(w io.Writer, opt Options) []CauseCell {
	opt = opt.withDefaults(3)
	cells := CauseCampaign("tardis", 256, opt)
	fmt.Fprintf(w, "Cause table: root-cause diagnosis accuracy on tardis@256 (%d erroneous runs per cell)\n", opt.Runs)
	fmt.Fprintf(w, "%-8s", "bench")
	for _, k := range causeKinds {
		fmt.Fprintf(w, " | %-22s", k)
	}
	fmt.Fprintln(w)
	for _, b := range causeBenches {
		fmt.Fprintf(w, "%-8s", b.name)
		for _, k := range causeKinds {
			cell := findCauseCell(cells, b.name, k)
			if cell == nil || cell.Metrics.CauseChecked == 0 {
				fmt.Fprintf(w, " | %-22s", "—")
				continue
			}
			m := cell.Metrics
			fmt.Fprintf(w, " | ACc %s (%d/%d, %d unk)", fmtAC(m.CauseAccuracy), m.CauseCorrect, m.CauseChecked, m.CauseUnknown)
		}
		fmt.Fprintln(w)
	}
	checked, correct, unknown := 0, 0, 0
	for _, c := range cells {
		checked += c.Metrics.CauseChecked
		correct += c.Metrics.CauseCorrect
		unknown += c.Metrics.CauseUnknown
	}
	if checked > 0 {
		fmt.Fprintf(w, "overall ACc %s over %d diagnosed runs (%d unknown)\n",
			fmtAC(float64(correct)/float64(checked)), checked, unknown)
	}
	return cells
}

func findCauseCell(cells []CauseCell, bench string, kind fault.Kind) *CauseCell {
	for i := range cells {
		if cells[i].Bench == bench && cells[i].Kind == kind {
			return &cells[i]
		}
	}
	return nil
}
