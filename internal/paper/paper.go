// Package paper regenerates every table and figure of the ParaStack
// paper's evaluation (§3 Table 1, §7 Tables 3-10, Figures 2-5 and
// 7-10) on the simulated substrate. It is shared by cmd/psbench,
// cmd/psfig, and the repository's benchmark suite.
//
// Each generator writes a human-readable table (or CSV series for
// figures) to an io.Writer and returns the underlying numbers so tests
// and benchmarks can assert on shapes. Options.Runs scales campaign
// sizes: the paper's full run counts take hours of CPU; the defaults
// reproduce the same shapes in minutes.
package paper

import (
	"fmt"
	"io"
	"sort"
	"time"

	"parastack/internal/core"
	"parastack/internal/experiment"
	"parastack/internal/fault"
	"parastack/internal/mpi"
	"parastack/internal/noise"
	"parastack/internal/obs"
	"parastack/internal/sim"
	"parastack/internal/stats"
	"parastack/internal/timeout"
	"parastack/internal/workload"
)

// Options scales the experiment campaigns.
type Options struct {
	// Runs is the number of erroneous/clean runs per configuration
	// (0 = a small default per table; the paper's counts are noted in
	// each generator).
	Runs int
	// Seed is the base random seed (default 1).
	Seed int64
	// MaxScale caps the largest rank count exercised by the scale
	// experiments (default 4096; the paper goes to 16384).
	MaxScale int
	// Trace, when non-nil, receives every campaign run's structured
	// events (psbench -trace).
	Trace obs.Sink
	// Stats, when non-nil, accumulates counter totals across every run
	// of every campaign (psbench -metrics).
	Stats *obs.Totals
	// Campaign, when non-nil, replaces experiment.Campaign as the
	// engine behind every generator — the seam through which
	// sweep.Orchestrator.Campaign makes paper regeneration resumable
	// (cmd/pssweep -grid paper). The contract matches
	// experiment.Campaign: n seeds of base, results in seed order.
	Campaign func(base experiment.RunConfig, n int, seed0 int64) []experiment.RunResult
}

// campaign routes one campaign through Options.Campaign (or the
// default in-memory experiment.Campaign), threading the observability
// options in.
func (o Options) campaign(rc experiment.RunConfig, n int, seed0 int64) []experiment.RunResult {
	rc = o.attach(rc)
	if o.Campaign != nil {
		return o.Campaign(rc, n, seed0)
	}
	return experiment.Campaign(rc, n, seed0)
}

// attach threads the observability options into one run configuration.
func (o Options) attach(rc experiment.RunConfig) experiment.RunConfig {
	rc.Trace = o.Trace
	rc.Stats = o.Stats
	return rc
}

func (o Options) withDefaults(defRuns int) Options {
	if o.Runs == 0 {
		o.Runs = defRuns
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxScale == 0 {
		o.MaxScale = 4096
	}
	return o
}

// platformScale returns the rank count and noise profile for a named
// platform the way the paper allocates them.
func platformWorld(name string, procs int) (noise.Profile, int) {
	prof := noise.ByName(name)
	return prof, prof.DefaultPPN
}

// fmtAC renders an accuracy/rate as the paper does (1.0, 0.9, 0.0).
func fmtAC(v float64) string { return fmt.Sprintf("%.2f", v) }

// Table1Row is one (I, K) configuration's metrics across benchmarks.
type Table1Row struct {
	I       time.Duration
	K       int
	Metrics []experiment.Metrics // one per Table1Configs entry
}

// Table1Config is one platform/benchmark column of Table 1.
type Table1Config struct {
	Platform string
	Bench    string
	Class    string
}

// Table1Configs are the paper's five columns.
var Table1Configs = []Table1Config{
	{"tianhe2", "FT", "D"},
	{"tianhe2", "FT", "E"},
	{"tardis", "FT", "D"},
	{"tardis", "LU", "D"},
	{"tardis", "SP", "D"},
}

// Table1 reproduces Table 1: the fixed-(I,K) timeout baseline's
// accuracy, false-positive rate, and response delay across platforms,
// benchmarks, and input sizes at scale 256. The paper uses 10 erroneous
// runs per configuration.
func Table1(w io.Writer, opt Options) []Table1Row {
	opt = opt.withDefaults(4)
	iks := []struct {
		I time.Duration
		K int
	}{
		{400 * time.Millisecond, 5},
		{400 * time.Millisecond, 10},
		{800 * time.Millisecond, 5},
		{800 * time.Millisecond, 10},
	}
	rows := make([]Table1Row, 0, len(iks))
	fmt.Fprintf(w, "Table 1: fixed-timeout baseline at scale 256 (%d erroneous runs per cell)\n", opt.Runs)
	fmt.Fprintf(w, "%-22s", "config")
	for _, c := range Table1Configs {
		fmt.Fprintf(w, " | %-8s %-5s", c.Platform, c.Bench+"("+c.Class+")")
	}
	fmt.Fprintln(w)
	for _, ik := range iks {
		row := Table1Row{I: ik.I, K: ik.K}
		for ci, c := range Table1Configs {
			prof, ppn := platformWorld(c.Platform, 256)
			params := workload.MustLookup(c.Bench, c.Class, 256)
			rs := opt.campaign(experiment.RunConfig{
				Params:    params,
				Platform:  prof,
				PPN:       ppn,
				FaultKind: fault.ComputationHang,
				Timeout:   &timeout.Config{C: 10, Interval: ik.I, K: ik.K},
			}, opt.Runs, opt.Seed+int64(ci*1000))
			row.Metrics = append(row.Metrics, experiment.Aggregate(rs))
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "I=%-6v K=%-10d", ik.I, ik.K)
		for _, m := range row.Metrics {
			fmt.Fprintf(w, " | AC %s FP %s D %4.1fs", fmtAC(m.Accuracy), fmtAC(m.FPRate), m.Delay.Mean)
		}
		fmt.Fprintln(w)
	}
	return rows
}

// Table3Result is the single-process stack-trace overhead measurement.
type Table3Result struct {
	Interval  time.Duration
	CleanSecs float64
	Ot        float64 // total overhead seconds
	N         int     // number of stack traces
}

// Table3 reproduces Table 3: total ptrace+unwind overhead Ot and trace
// count n for a single-process HPL run traced at 10ms and 100ms fixed
// intervals (paper: clean 185.05s; Ot 50.88s/7.52s; n 18220/1870).
func Table3(w io.Writer, opt Options) []Table3Result {
	opt = opt.withDefaults(1)
	params := workload.MustLookup("HPL", "8e4", 256)
	params.Spec = workload.Spec{Name: "HPL", Class: "15000", Procs: 1}
	// Single-process HPL on a 15000² matrix: ≈185s clean.
	params.Compute = time.Duration(3 * 185.0 / float64(params.Iters) * float64(time.Second))
	params.HaloBytes = 4096

	run := func(traceEvery time.Duration) (float64, int) {
		res := experiment.Run(opt.attach(experiment.RunConfig{
			Params:   params,
			Platform: noise.Tardis(),
			PPN:      1,
			Seed:     opt.Seed,
		}))
		if traceEvery == 0 {
			return res.FinishedAt.Seconds(), 0
		}
		// Raw fixed-interval tracer (Table 3 measures stack-trace cost
		// alone, without the model).
		resT := runTraced(params, traceEvery, opt.Seed)
		return resT.secs, resT.n
	}

	clean, _ := run(0)
	var out []Table3Result
	fmt.Fprintf(w, "Table 3: single-process HPL stack-trace overhead (clean %.2fs; paper: 185.05s)\n", clean)
	for _, iv := range []time.Duration{10 * time.Millisecond, 100 * time.Millisecond} {
		secs, n := run(iv)
		r := Table3Result{Interval: iv, CleanSecs: clean, Ot: secs - clean, N: n}
		out = append(out, r)
		fmt.Fprintf(w, "  interval %-6v  Ot %6.2fs  n %6d   (paper: %s)\n",
			iv, r.Ot, r.N, map[time.Duration]string{
				10 * time.Millisecond:  "Ot 50.88s n 18220",
				100 * time.Millisecond: "Ot 7.52s n 1870",
			}[iv])
	}
	return out
}

// PerfResult is one benchmark's runtime under a monitor setting.
type PerfResult struct {
	Bench   string
	Setting string // "clean", "I=100", "I=400"
	Mean    float64
	Std     float64
	Runs    []float64
}

// perfBenches lists Table 4's benchmarks (all eight at 256) and Table
// 5/Figures 7-8's subset at 1024.
var perfBenches256 = []struct{ name, class string }{
	{"BT", "D"}, {"CG", "D"}, {"FT", "D"}, {"LU", "D"},
	{"MG", "E"}, {"SP", "D"}, {"HPL", "8e4"}, {"HPCG", "64"},
}

var perfBenches1024 = []struct{ name, class string }{
	{"BT", "E"}, {"CG", "E"}, {"LU", "E"}, {"SP", "E"},
	{"HPL", "2e5"}, {"HPCG", "64"},
}

// perfTable runs the clean / I=100ms / I=400ms comparison on one
// platform and scale. The paper disables interval adaptation here.
func perfTable(w io.Writer, title, platform string, scale int, benches []struct{ name, class string }, opt Options) []PerfResult {
	prof, ppn := platformWorld(platform, scale)
	prof.SlowdownProb = 0 // overhead study: keep runs clean
	settings := []struct {
		label string
		mon   *core.Config
	}{
		{"clean", nil},
		{"I=100", &core.Config{InitialInterval: 100 * time.Millisecond, DisableAdaptation: true}},
		{"I=400", &core.Config{InitialInterval: 400 * time.Millisecond, DisableAdaptation: true}},
	}
	fmt.Fprintf(w, "%s (%d runs each; runtime seconds, HPCG as pseudo-GFLOPS)\n", title, opt.Runs)
	fmt.Fprintf(w, "%-8s", "bench")
	for _, s := range settings {
		fmt.Fprintf(w, " | %-7s mean ± std", s.label)
	}
	fmt.Fprintln(w)
	var out []PerfResult
	for bi, b := range benches {
		params := workload.MustLookup(b.name, b.class, scale)
		fmt.Fprintf(w, "%-8s", b.name)
		for si, s := range settings {
			rs := opt.campaign(experiment.RunConfig{
				Params:   params,
				Platform: prof,
				PPN:      ppn,
				Monitor:  s.mon,
			}, opt.Runs, opt.Seed+int64(bi*100+si*10))
			var secs []float64
			for _, r := range rs {
				if r.Completed {
					v := r.FinishedAt.Seconds()
					if b.name == "HPCG" {
						v = hpcgGFLOPS(v)
					}
					secs = append(secs, v)
				}
			}
			sum := stats.Summarize(secs)
			out = append(out, PerfResult{Bench: b.name, Setting: s.label, Mean: sum.Mean, Std: sum.Std, Runs: secs})
			fmt.Fprintf(w, " | %8.1f ± %5.2f  ", sum.Mean, sum.Std)
		}
		fmt.Fprintln(w)
	}
	return out
}

// hpcgGFLOPS converts an HPCG runtime into the paper's delivered-GFLOPS
// metric, calibrated so the Table 4 reference point (≈280s ↔ 29.1
// GFLOPS at 256 ranks on Tardis) holds.
func hpcgGFLOPS(seconds float64) float64 { return 8148.0 / seconds }

// Table4 reproduces Table 4: runtimes with ParaStack at I=100ms/400ms
// vs clean on Tardis at scale 256 (paper: 5 runs per setting; overhead
// statistically indistinguishable from zero).
func Table4(w io.Writer, opt Options) []PerfResult {
	opt = opt.withDefaults(3)
	return perfTable(w, "Table 4: overhead on tardis @256", "tardis", 256, perfBenches256, opt)
}

// PerfCampaign runs the clean / I=100 / I=400 overhead comparison for
// one platform at an arbitrary scale — the building block of Tables 4-5
// and Figures 7-8, also used by the benchmark suite at reduced scale.
func PerfCampaign(w io.Writer, platform string, scale int, opt Options) []PerfResult {
	opt = opt.withDefaults(2)
	benches := perfBenches256
	if scale > 512 {
		benches = perfBenches1024
	}
	title := fmt.Sprintf("overhead on %s @%d", platform, scale)
	return perfTable(w, title, platform, scale, benches, opt)
}

// Table5 reproduces Table 5 / Figure 8: overhead percentages on
// Tianhe-2 at scale 1024, plus the per-run series of Figure 7
// (Stampede) when full is requested via Runs >= 5.
func Table5(w io.Writer, opt Options) []PerfResult {
	opt = opt.withDefaults(2)
	res := perfTable(w, "Table 5 / Fig 8: overhead on tianhe2 @1024", "tianhe2", 1024, perfBenches1024, opt)
	// Overhead percentages (paper: I=400 at most 1.14%).
	fmt.Fprintln(w, "overhead vs clean:")
	byBench := map[string]map[string]float64{}
	for _, r := range res {
		if byBench[r.Bench] == nil {
			byBench[r.Bench] = map[string]float64{}
		}
		byBench[r.Bench][r.Setting] = r.Mean
	}
	var names []string
	for n := range byBench {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c := byBench[n]["clean"]
		if c == 0 {
			continue
		}
		o100 := (byBench[n]["I=100"] - c) / c * 100
		o400 := (byBench[n]["I=400"] - c) / c * 100
		if n == "HPCG" { // GFLOPS: higher is better, flip sign
			o100, o400 = -o100, -o400
		}
		fmt.Fprintf(w, "  %-6s I=100 %+6.2f%%   I=400 %+6.2f%%\n", n, o100, o400)
	}
	return res
}

// Figure7 reproduces Figure 7's per-run runtime series on Stampede at
// scale 1024 (5 runs per setting, sorted by performance).
func Figure7(w io.Writer, opt Options) []PerfResult {
	opt = opt.withDefaults(3)
	res := perfTable(w, "Figure 7: per-run runtimes on stampede @1024", "stampede", 1024, perfBenches1024, opt)
	fmt.Fprintln(w, "per-run series (sorted):")
	for _, r := range res {
		s := append([]float64(nil), r.Runs...)
		sort.Float64s(s)
		fmt.Fprintf(w, "  %-6s %-6s %v\n", r.Bench, r.Setting, s)
	}
	return res
}

// tracedResult is a raw fixed-interval stack-trace run (Table 3).
type tracedResult struct {
	secs float64
	n    int
}

// runTraced executes params on a single simulated node while a raw
// tracer (no model, no detection) stack-traces rank 0 every traceEvery,
// charging the calibrated ptrace+unwind cost to the traced process.
func runTraced(params workload.Params, traceEvery time.Duration, seed int64) tracedResult {
	eng := sim.NewEngine(seed)
	prof := noise.Tardis()
	w := mpi.NewWorld(eng, params.Procs, prof.Latency())
	prof.Apply(w, eng.Rand(), params.Procs, params.EstimatedDuration())
	n := 0
	// One ptrace attach + unwind costs ~3ms (Table 3: 50.88s/18220).
	// The victim is suspended for that long, and the tracer itself
	// spends it doing the unwind, so the effective period is
	// traceEvery + traceCost — which is exactly what makes the paper's
	// n=18220 at a 10ms interval over a ~236s run.
	const traceCost = 3 * time.Millisecond
	eng.SpawnNow("raw-tracer", func(p *sim.Proc) {
		for !w.Done() {
			p.Sleep(traceEvery)
			if w.Done() {
				return
			}
			w.Rank(0).Proc().ChargePenalty(traceCost)
			_ = w.Rank(0).Stack().Observe()
			p.Sleep(traceCost)
			n++
		}
	})
	w.Launch(params.Body(nil))
	eng.Run(0)
	return tracedResult{secs: time.Duration(w.FinishedAt()).Seconds(), n: n}
}

// GenerateAll regenerates every table and study — the psbench -all
// superset — through one Options value, so a single resumable command
// (cmd/pssweep -grid paper) can rebuild the whole evaluation: routed
// through Options.Campaign, every campaign run lands in the sweep's
// durable log and an interrupted regeneration picks up where it
// stopped.
func GenerateAll(w io.Writer, opt Options) {
	Table1(w, opt)
	fmt.Fprintln(w)
	Table3(w, opt)
	fmt.Fprintln(w)
	Table4(w, opt)
	fmt.Fprintln(w)
	Table5(w, opt)
	fmt.Fprintln(w)
	campaigns := Table6(w, opt)
	fmt.Fprintln(w)
	Table7(w, campaigns, opt)
	fmt.Fprintln(w)
	Table8(w, campaigns, opt)
	fmt.Fprintln(w)
	Table9(w, opt)
	fmt.Fprintln(w)
	Table10(w, campaigns, opt)
	fmt.Fprintln(w)
	CauseTable(w, opt)
	fmt.Fprintln(w)
	FalsePositiveStudy(w, opt)
	fmt.Fprintln(w)
	ScaleStudy(w, opt)
}
