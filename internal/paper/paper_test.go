package paper

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"
)

// These tests run each generator at minimum scale and assert the
// qualitative shapes the paper reports. Full-scale regeneration lives
// in cmd/psbench / cmd/psfig and bench_test.go.

func TestTable3Shape(t *testing.T) {
	var buf bytes.Buffer
	rows := Table3(&buf, Options{Seed: 3})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	r10, r100 := rows[0], rows[1]
	// Clean run ≈ 185s.
	if r10.CleanSecs < 160 || r10.CleanSecs > 215 {
		t.Fatalf("clean = %.1fs, want ≈185s", r10.CleanSecs)
	}
	// Trace counts ≈ duration/interval.
	if r10.N < 15000 || r10.N > 25000 {
		t.Fatalf("n@10ms = %d, paper reports 18220", r10.N)
	}
	if r100.N < 1500 || r100.N > 2500 {
		t.Fatalf("n@100ms = %d, paper reports 1870", r100.N)
	}
	// Overhead at 10ms is heavy, at 100ms light — and roughly 3ms per
	// trace on a compute-bound single process.
	if r10.Ot < 30 || r10.Ot > 80 {
		t.Fatalf("Ot@10ms = %.2fs, paper reports 50.88s", r10.Ot)
	}
	if r100.Ot < 3 || r100.Ot > 12 {
		t.Fatalf("Ot@100ms = %.2fs, paper reports 7.52s", r100.Ot)
	}
	if r10.Ot < 4*r100.Ot {
		t.Fatalf("10ms tracing (%.1fs) should cost several times 100ms tracing (%.1fs)", r10.Ot, r100.Ot)
	}
}

func TestFigure5Anchors(t *testing.T) {
	anchors := Figure5(io.Discard, Options{})
	want := map[float64][2]float64{
		0.3:  {0.47, 11},
		0.2:  {0.27, 19},
		0.1:  {0.12, 42},
		0.05: {0.06, 87},
	}
	for e, exp := range want {
		got, ok := anchors[e]
		if !ok {
			t.Fatalf("missing anchor for e=%v", e)
		}
		if got[0] < exp[0]-0.03 || got[0] > exp[0]+0.03 {
			t.Errorf("e=%v: pm = %v, want ≈%v", e, got[0], exp[0])
		}
		if got[1] < exp[1]-2 || got[1] > exp[1]+2 {
			t.Errorf("e=%v: nm = %v, want ≈%v", e, got[1], exp[1])
		}
	}
}

func TestFigure2HealthyVariation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	var buf bytes.Buffer
	series := Figure2(&buf, Options{Seed: 2})
	for _, name := range []string{"LU", "SP", "FT"} {
		pts := series[name]
		if len(pts) < 1000 {
			t.Fatalf("%s: only %d points", name, len(pts))
		}
		lo, hi := 0, 0
		for _, p := range pts {
			if p.Sout < 0.2 {
				lo++
			}
			if p.Sout > 0.8 {
				hi++
			}
		}
		if lo == 0 || hi == 0 {
			t.Fatalf("%s: Sout never visits both extremes (lo=%d hi=%d)", name, lo, hi)
		}
	}
	// FT must spend much more of its time at Sout≈0 than LU (the long
	// transposes).
	ftLow, luLow := 0, 0
	for _, p := range series["FT"] {
		if p.Sout < 0.05 {
			ftLow++
		}
	}
	for _, p := range series["LU"] {
		if p.Sout < 0.05 {
			luLow++
		}
	}
	ftFrac := float64(ftLow) / float64(len(series["FT"]))
	luFrac := float64(luLow) / float64(len(series["LU"]))
	if ftFrac < 2*luFrac {
		t.Fatalf("FT low-Sout fraction (%.3f) should far exceed LU's (%.3f)", ftFrac, luFrac)
	}
}

func TestFigure3Flatline(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	var buf bytes.Buffer
	pts, faultAt := Figure3(&buf, Options{Seed: 4})
	if faultAt < 30*time.Second {
		t.Fatalf("fault at %v", faultAt)
	}
	var after []float64
	for _, p := range pts {
		if p.T > faultAt+3*time.Second {
			after = append(after, p.Sout)
		}
	}
	if len(after) < 100 {
		t.Fatalf("too few post-fault points: %d", len(after))
	}
	for _, v := range after {
		if v > 1.0/256+1e-9 {
			t.Fatalf("post-fault Sout = %v, want <= 1/256", v)
		}
	}
	if !strings.Contains(buf.String(), "# fault injected") {
		t.Fatal("missing fault annotation")
	}
}

func TestFigure4Panels(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	panels := Figure4(io.Discard, Options{Seed: 5})
	if len(panels) != 3 {
		t.Fatalf("panels = %d", len(panels))
	}
	for _, p := range panels {
		if p.N < 12 {
			t.Fatalf("panel with %d samples", p.N)
		}
		if p.Q <= 0 || p.Q > 0.77 {
			t.Fatalf("panel q = %v", p.Q)
		}
	}
	if panels[0].N >= panels[2].N {
		t.Fatal("panels must grow in sample size")
	}
}

func TestFigure10Savings(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	var buf bytes.Buffer
	res := Figure10(&buf, Options{Runs: 4, Seed: 6})
	if len(res.Savings) != 4 {
		t.Fatalf("savings = %v", res.Savings)
	}
	// With faults uniform over a ~518s run in a 600s slot, savings per
	// run land in roughly (0, 95%) and the mean should be substantial.
	m := 0.0
	for _, s := range res.Savings {
		if s <= 0 || s >= 100 {
			t.Fatalf("saving %v%% out of range", s)
		}
		m += s
	}
	m /= float64(len(res.Savings))
	if m < 10 {
		t.Fatalf("mean savings %.1f%%, paper reports 35.5%%", m)
	}
}

func TestCauseTableAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Small-scale configuration of the same campaign the full table
	// runs at 256: every benchmark × diagnosable fault kind, scored
	// against injected ground truth.
	cells := CauseCampaign("tardis", 64, Options{Runs: 2, Seed: 2})
	if len(cells) == 0 {
		t.Fatal("no cells")
	}
	checked, correct, unknown := 0, 0, 0
	for _, c := range cells {
		m := c.Metrics
		checked += m.CauseChecked
		correct += m.CauseCorrect
		unknown += m.CauseUnknown
		if wrong := m.CauseChecked - m.CauseCorrect - m.CauseUnknown; wrong != 0 {
			t.Errorf("%s × %s: %d wrong named cause(s) under clean chaos", c.Bench, c.Kind, wrong)
		}
	}
	if checked == 0 {
		t.Fatal("no run was diagnosed: table is vacuous")
	}
	if acc := float64(correct) / float64(checked); acc < 0.95 {
		t.Fatalf("overall cause agreement %.2f (%d/%d, %d unknown), want >= 0.95",
			acc, correct, checked, unknown)
	}
}
