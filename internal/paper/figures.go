package paper

import (
	"fmt"
	"io"
	"time"

	"parastack/internal/core"
	"parastack/internal/experiment"
	"parastack/internal/fault"
	"parastack/internal/model"
	"parastack/internal/noise"
	"parastack/internal/sched"
	"parastack/internal/sim"
	"parastack/internal/stats"
	"parastack/internal/workload"
)

// Figure2 reproduces Figure 2: the dynamic variation of Sout in healthy
// runs of LU, SP and FT at 256 ranks (probed every millisecond in the
// paper; we default to 5ms over the first window seconds to keep the
// series compact). Output is CSV: series,t_seconds,sout.
func Figure2(w io.Writer, opt Options) map[string][]core.SoutPoint {
	opt = opt.withDefaults(1)
	out := map[string][]core.SoutPoint{}
	window := 60 * time.Second
	for _, b := range []struct{ name, class string }{{"LU", "D"}, {"SP", "D"}, {"FT", "D"}} {
		params := workload.MustLookup(b.name, b.class, 256)
		res := experiment.Run(opt.attach(experiment.RunConfig{
			Params:    params,
			Platform:  noise.Tardis(),
			Seed:      opt.Seed,
			ProbeSout: 5 * time.Millisecond,
			WallLimit: window, // only the plotted window is needed
		}))
		out[b.name] = res.Sout
		for _, pt := range res.Sout {
			fmt.Fprintf(w, "%s,%.3f,%.4f\n", b.name, pt.T.Seconds(), pt.Sout)
		}
	}
	return out
}

// Figure3 reproduces Figure 3: Sout of a faulty LU run — periodic
// variation until the injected fault, then a persistently tiny value.
// Output is CSV: t_seconds,sout plus a comment line with the fault time.
func Figure3(w io.Writer, opt Options) (pts []core.SoutPoint, faultAt time.Duration) {
	opt = opt.withDefaults(1)
	params := workload.MustLookup("LU", "D", 256)
	params.Iters = 100 // a ~100s slice of the run is enough for the plot
	res := experiment.Run(opt.attach(experiment.RunConfig{
		Params:    params,
		Platform:  noise.Tardis(),
		Seed:      opt.Seed,
		FaultKind: fault.ComputationHang,
		ProbeSout: 5 * time.Millisecond,
		// No monitor: let the hang persist so the flatline is visible,
		// and cut the run shortly after the fault.
		WallLimit: 130 * time.Second,
	}))
	cut := res.InjectedAt + 20*time.Second
	fmt.Fprintf(w, "# fault injected at %.2fs\n", res.InjectedAt.Seconds())
	for _, pt := range res.Sout {
		if pt.T > cut {
			break
		}
		fmt.Fprintf(w, "%.3f,%.4f\n", pt.T.Seconds(), pt.Sout)
		pts = append(pts, pt)
	}
	return pts, res.InjectedAt
}

// Figure4Panel is one empirical-distribution snapshot of the Scrout
// model at a given sample size.
type Figure4Panel struct {
	N         int
	Threshold float64
	Q         float64
	CDF       map[float64]float64 // value → Fn(value)
}

// Figure4 reproduces Figure 4: the empirical distribution of randomly
// sampled Scrout for LU with the suspicion region at three sample
// sizes. It runs a healthy LU under a history-keeping monitor and
// snapshots the model at three points.
func Figure4(w io.Writer, opt Options) []Figure4Panel {
	opt = opt.withDefaults(1)
	params := workload.MustLookup("LU", "D", 256)
	res := experiment.Run(opt.attach(experiment.RunConfig{
		Params:      params,
		Platform:    noise.Tardis(),
		Seed:        opt.Seed,
		Monitor:     &core.Config{},
		KeepHistory: true,
	}))
	hist := res.History
	var panels []Figure4Panel
	for _, frac := range []float64{0.2, 0.5, 1.0} {
		n := int(frac * float64(len(hist)))
		if n < 12 {
			n = min(12, len(hist))
		}
		m := model.New(0)
		for _, s := range hist[:n] {
			m.Add(s.Scrout)
		}
		fit, ok := m.Fit()
		panel := Figure4Panel{N: n, CDF: map[float64]float64{}}
		if ok {
			panel.Threshold = fit.Threshold
			panel.Q = fit.Q
		}
		ecdf := stats.NewECDF(m.Samples())
		for _, v := range ecdf.Values() {
			panel.CDF[v] = ecdf.F(v)
		}
		panels = append(panels, panel)
		fmt.Fprintf(w, "# panel n=%d threshold=%.2f q=%.2f\n", panel.N, panel.Threshold, panel.Q)
		for _, v := range ecdf.Values() {
			fmt.Fprintf(w, "%d,%.4f,%.4f\n", n, v, ecdf.F(v))
		}
	}
	return panels
}

// Figure5 reproduces Figure 5: the analytic relation among sample size,
// suspicion probability and tolerance error — n(p) = 3.8416·p(1-p)/e²
// against the validity bound 5/p, with the minimizing (pm, nm) per
// tolerance level. Output is CSV: e,p,n_ci,n_validity.
func Figure5(w io.Writer, opt Options) map[float64][2]float64 {
	anchors := map[float64][2]float64{}
	for _, e := range model.ToleranceLevels {
		for p := 0.02; p <= 0.5+1e-9; p += 0.02 {
			ci := stats.Z95Sq * p * (1 - p) / (e * e)
			fmt.Fprintf(w, "%.2f,%.2f,%.1f,%.1f\n", e, p, ci, 5/p)
		}
		// Minimizing point for this tolerance level.
		bestP, bestN := 0.0, 1e18
		for p := 0.005; p <= 0.5; p += 0.005 {
			n := float64(stats.RequiredSampleSize(p, e))
			if n < bestN {
				bestP, bestN = p, n
			}
		}
		anchors[e] = [2]float64{bestP, bestN}
		fmt.Fprintf(w, "# e=%.2f pm=%.3f nm=%.0f\n", e, bestP, bestN)
	}
	return anchors
}

// Figure9 reproduces Figure 9: response-delay histograms over the
// Tardis@256 erroneous campaigns (bins of 2s, as in the paper's x-axis).
func Figure9(w io.Writer, campaigns map[string][]AccuracyCell, opt Options) map[string][]int {
	out := map[string][]int{}
	fmt.Fprintln(w, "Figure 9: response delay distribution, tardis @256 (2s bins)")
	for _, cell := range campaigns["tardis"] {
		var delays []float64
		for _, r := range cell.Results {
			if r.Detected {
				delays = append(delays, r.Delay.Seconds())
			}
		}
		h := stats.Histogram(delays, 0, 2, 15)
		out[cell.Bench] = h
		fmt.Fprintf(w, "  %-6s %v\n", cell.Bench, h)
	}
	return out
}

// Figure10Result is one batch job's saving.
type Figure10Result struct {
	Savings  []float64
	MeanPct  float64
	Walltime time.Duration
}

// Figure10 reproduces Figure 10: the percentage of allocated batch time
// ParaStack saves by terminating hung HPL jobs early. The paper runs 10
// HPL jobs (≈518s correct runtime) with uniform-random faults in a
// 10-minute slot and reports 35.5% mean savings, approaching 50% with
// more runs.
func Figure10(w io.Writer, opt Options) Figure10Result {
	opt = opt.withDefaults(10)
	// HPL sized so a correct run takes ≈518s on Tardis.
	params := workload.MustLookup("HPL", "8e4", 256)
	params.Compute = time.Duration(float64(params.Compute) * 518.0 / 277.0)
	walltime := 10 * time.Minute
	prof := noise.Tardis()

	var savings []float64
	for i := 0; i < opt.Runs; i++ {
		eng := sim.NewEngine(opt.Seed + int64(i))
		s := sched.New(eng, 8)
		perIter := params.Compute
		minIter := int(30*time.Second/perIter) + 1
		plan := fault.NewRandomPlan(eng.Rand(), fault.ComputationHang, params.Procs, params.Iters, minIter, 32)
		inj := fault.NewInjector(plan)
		job := &sched.Job{
			Name: fmt.Sprintf("hpl-%d", i), Nodes: 8, PPN: 32, Walltime: walltime,
			Latency:           prof.Latency(),
			Profile:           &prof,
			EstimatedDuration: params.EstimatedDuration(),
			Body:              params.Body(inj),
			Monitor:           &core.Config{},
			OnFinish:          func(*sched.Job) { eng.Stop() },
		}
		s.Submit(job)
		eng.Run(2 * time.Hour)
		savings = append(savings, job.Savings()*100)
		fmt.Fprintf(w, "  run %2d: state %-16v saved %5.1f%%\n", i, job.State, job.Savings()*100)
	}
	m := stats.Summarize(savings)
	fmt.Fprintf(w, "Figure 10: mean batch-time savings %.1f%% over %d runs (paper: 35.5%%, →50%% asymptotically)\n",
		m.Mean, opt.Runs)
	return Figure10Result{Savings: savings, MeanPct: m.Mean, Walltime: walltime}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
