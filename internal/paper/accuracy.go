package paper

import (
	"fmt"
	"io"
	"time"

	"parastack/internal/core"
	"parastack/internal/experiment"
	"parastack/internal/fault"
	"parastack/internal/workload"
)

// AccuracyCell is one (platform, benchmark) campaign of erroneous runs
// under the default ParaStack configuration. Tables 6, 7, 8, 10 and
// Figure 9 all read off these campaigns.
type AccuracyCell struct {
	Platform string
	Bench    string
	Class    string
	Scale    int
	// Estimated is the calibrated clean-run duration on the platform
	// (erroneous campaigns never complete, so it stands in for the
	// paper's "rough time cost of a correct run" column).
	Estimated time.Duration
	Metrics   experiment.Metrics
	Results   []experiment.RunResult
}

// accuracyBenches lists the benchmarks each platform's accuracy
// campaign covers (paper Table 6: MG only on Tardis, FT not on
// Stampede, HPCG only on Tardis).
func accuracyBenches(platform string, scale int) []struct{ name, class string } {
	switch platform {
	case "tardis":
		return []struct{ name, class string }{
			{"BT", "D"}, {"CG", "D"}, {"FT", "D"}, {"LU", "D"},
			{"MG", "E"}, {"SP", "D"}, {"HPCG", "64"}, {"HPL", "8e4"},
		}
	case "tianhe2":
		return []struct{ name, class string }{
			{"BT", "E"}, {"CG", "E"}, {"FT", "E"}, {"LU", "E"},
			{"SP", "E"}, {"HPL", "2e5"},
		}
	default: // stampede
		return []struct{ name, class string }{
			{"BT", "E"}, {"CG", "E"}, {"LU", "E"}, {"SP", "E"}, {"HPL", "2e5"},
		}
	}
}

// AccuracyCampaign runs the erroneous-run campaigns behind Tables 6-8
// and 10 for one platform at one scale. The paper's run counts: 100 at
// 256 (Tardis), 50 at 1024 (Tianhe-2), 20 at 1024 (Stampede).
func AccuracyCampaign(platform string, scale int, opt Options) []AccuracyCell {
	opt = opt.withDefaults(5)
	prof, ppn := platformWorld(platform, scale)
	var cells []AccuracyCell
	for bi, b := range accuracyBenches(platform, scale) {
		params := workload.MustLookup(b.name, b.class, scale)
		rs := opt.campaign(experiment.RunConfig{
			Params:    params,
			Platform:  prof,
			PPN:       ppn,
			FaultKind: fault.ComputationHang,
			Monitor:   &core.Config{},
		}, opt.Runs, opt.Seed+int64(bi*10000))
		est := params.EstimatedDuration()
		if prof.Speed > 0 {
			est = time.Duration(float64(est) / prof.Speed)
		}
		cells = append(cells, AccuracyCell{
			Platform: platform, Bench: b.name, Class: b.class, Scale: scale,
			Estimated: est,
			Metrics:   experiment.Aggregate(rs), Results: rs,
		})
	}
	return cells
}

// Table6 reproduces Table 6 (hang-detection accuracy ACh) across the
// three platforms; it returns the campaigns so Tables 7/8/10 and
// Figure 9 can reuse them without re-running.
func Table6(w io.Writer, opt Options) map[string][]AccuracyCell {
	opt = opt.withDefaults(5)
	campaigns := map[string][]AccuracyCell{
		"tardis":   AccuracyCampaign("tardis", 256, opt),
		"tianhe2":  AccuracyCampaign("tianhe2", 1024, opt),
		"stampede": AccuracyCampaign("stampede", 1024, opt),
	}
	fmt.Fprintf(w, "Table 6: hang detection accuracy (%d erroneous runs per cell; paper: 100/50/20)\n", opt.Runs)
	fmt.Fprintf(w, "%-8s | %-22s | %-22s | %-22s\n", "bench", "tardis@256", "tianhe2@1024", "stampede@1024")
	for _, b := range []string{"BT", "CG", "FT", "LU", "MG", "SP", "HPCG", "HPL"} {
		fmt.Fprintf(w, "%-8s", b)
		for _, pl := range []string{"tardis", "tianhe2", "stampede"} {
			cell := findCell(campaigns[pl], b)
			if cell == nil {
				fmt.Fprintf(w, " | %-22s", "—")
				continue
			}
			fmt.Fprintf(w, " | ACh %s (time %5.0fs)", fmtAC(cell.Metrics.Accuracy), cell.Estimated.Seconds())
		}
		fmt.Fprintln(w)
	}
	return campaigns
}

func findCell(cells []AccuracyCell, bench string) *AccuracyCell {
	for i := range cells {
		if cells[i].Bench == bench {
			return &cells[i]
		}
	}
	return nil
}

// Table7 reproduces Table 7 (response delays on Tianhe-2 at 1024):
// mean and standard deviation in seconds per benchmark.
func Table7(w io.Writer, campaigns map[string][]AccuracyCell, opt Options) {
	fmt.Fprintln(w, "Table 7: response delay on tianhe2 @1024 (seconds)")
	printDelays(w, campaigns["tianhe2"])
}

// Table8 reproduces Table 8 (response delays on Stampede at 1024; the
// 4096 row comes from the scale study).
func Table8(w io.Writer, campaigns map[string][]AccuracyCell, opt Options) {
	fmt.Fprintln(w, "Table 8: response delay on stampede @1024 (seconds)")
	printDelays(w, campaigns["stampede"])
}

func printDelays(w io.Writer, cells []AccuracyCell) {
	fmt.Fprintf(w, "%-8s | %-8s | %-8s\n", "bench", "D mean", "std")
	for _, c := range cells {
		fmt.Fprintf(w, "%-8s | %8.1f | %8.1f\n", c.Bench, c.Metrics.Delay.Mean, c.Metrics.Delay.Std)
	}
}

// Table10 reproduces Table 10 (faulty-process identification): ACf and
// PRf per platform and benchmark, over the Table 6 campaigns.
func Table10(w io.Writer, campaigns map[string][]AccuracyCell, opt Options) {
	fmt.Fprintln(w, "Table 10: faulty process identification (ACf, PRf)")
	fmt.Fprintf(w, "%-8s | %-18s | %-18s | %-18s\n", "bench", "tardis@256", "tianhe2@1024", "stampede@1024")
	for _, b := range []string{"BT", "CG", "FT", "LU", "MG", "SP", "HPCG", "HPL"} {
		fmt.Fprintf(w, "%-8s", b)
		for _, pl := range []string{"tardis", "tianhe2", "stampede"} {
			cell := findCell(campaigns[pl], b)
			if cell == nil {
				fmt.Fprintf(w, " | %-18s", "—")
				continue
			}
			fmt.Fprintf(w, " | ACf %s PRf %s", fmtAC(cell.Metrics.ACf), fmtAC(cell.Metrics.PRf))
		}
		fmt.Fprintln(w)
	}
}

// FalsePositiveStudy reproduces §7.1-II: clean runs under the default
// monitor on all three platforms; the paper observed zero false
// positives in ~66+39.7 hours of runs at α = 0.1%.
func FalsePositiveStudy(w io.Writer, opt Options) (totalRuns, falsePositives int, simulated time.Duration) {
	opt = opt.withDefaults(3)
	type cfg struct {
		platform string
		scale    int
	}
	for _, c := range []cfg{{"tardis", 256}, {"tianhe2", 1024}, {"stampede", 1024}} {
		if c.scale > opt.MaxScale {
			fmt.Fprintf(w, "  %s@%d skipped (MaxScale %d)\n", c.platform, c.scale, opt.MaxScale)
			continue
		}
		prof, ppn := platformWorld(c.platform, c.scale)
		for bi, b := range accuracyBenches(c.platform, c.scale) {
			params := workload.MustLookup(b.name, b.class, c.scale)
			rs := opt.campaign(experiment.RunConfig{
				Params:   params,
				Platform: prof,
				PPN:      ppn,
				Monitor:  &core.Config{},
			}, opt.Runs, opt.Seed+int64(bi*1000)+777)
			for _, r := range rs {
				totalRuns++
				simulated += r.FinishedAt
				if r.FalsePositive {
					falsePositives++
					fmt.Fprintf(w, "  FALSE POSITIVE: %s on %s seed %d at %v\n",
						r.Spec, r.Platform, r.Seed, r.Report.DetectedAt)
				}
			}
		}
	}
	fmt.Fprintf(w, "False-positive study: %d clean runs, %.1f simulated hours, %d false positives (paper: 0 in 105.7h)\n",
		totalRuns, simulated.Hours(), falsePositives)
	return totalRuns, falsePositives, simulated
}

// Table9Row is one configuration of the P vs P* comparison.
type Table9Row struct {
	Platform string
	Bench    string
	Class    string
	P        experiment.Metrics // default ParaStack, I0 = 400ms
	PStar    experiment.Metrics // I0 = 10ms, adaptation must rescue it
}

// Table9 reproduces Table 9: ParaStack with the default I0=400ms (P)
// versus a deliberately terrible I0=10ms (P*) — interval adaptation
// must keep accuracy high either way. Paper: 10 erroneous runs each.
func Table9(w io.Writer, opt Options) []Table9Row {
	opt = opt.withDefaults(4)
	configs := []Table1Config{
		{"tianhe2", "FT", "D"},
		{"tianhe2", "FT", "E"},
		{"tardis", "FT", "D"},
		{"tardis", "LU", "D"},
		{"tardis", "SP", "D"},
	}
	var rows []Table9Row
	fmt.Fprintf(w, "Table 9: default P (I0=400ms) vs P* (I0=10ms), scale 256, %d runs each\n", opt.Runs)
	fmt.Fprintf(w, "%-20s | %-26s | %-26s\n", "config", "P: AC FP D", "P*: AC FP D")
	for ci, c := range configs {
		prof, ppn := platformWorld(c.Platform, 256)
		params := workload.MustLookup(c.Bench, c.Class, 256)
		run := func(initial time.Duration, off int64) experiment.Metrics {
			rs := opt.campaign(experiment.RunConfig{
				Params:    params,
				Platform:  prof,
				PPN:       ppn,
				FaultKind: fault.ComputationHang,
				Monitor:   &core.Config{InitialInterval: initial},
			}, opt.Runs, opt.Seed+int64(ci*1000)+off)
			return experiment.Aggregate(rs)
		}
		row := Table9Row{Platform: c.Platform, Bench: c.Bench, Class: c.Class,
			P:     run(400*time.Millisecond, 0),
			PStar: run(10*time.Millisecond, 500),
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-8s %s(%s)%-6s | AC %s FP %s D %5.1fs     | AC %s FP %s D %5.1fs\n",
			c.Platform, c.Bench, c.Class, "",
			fmtAC(row.P.Accuracy), fmtAC(row.P.FPRate), row.P.Delay.Mean,
			fmtAC(row.PStar.Accuracy), fmtAC(row.PStar.FPRate), row.PStar.Delay.Mean)
	}
	return rows
}

// ScaleStudy reproduces §7.1-III's large-scale accuracy runs: BT, CG,
// LU, SP, HPL at 4096 and HPL at 8192 and 16384 (bounded by
// Options.MaxScale), with ACh, delays, ACf and PRf.
func ScaleStudy(w io.Writer, opt Options) []AccuracyCell {
	opt = opt.withDefaults(2)
	var cells []AccuracyCell
	fmt.Fprintf(w, "Scale study (%d runs per cell; paper: 10 @4096, 5 @8192, 3 @16384)\n", opt.Runs)
	add := func(platform, bench, class string, scale, runs int, seedOff int64) {
		if scale > opt.MaxScale {
			fmt.Fprintf(w, "  %s@%d skipped (MaxScale %d)\n", bench, scale, opt.MaxScale)
			return
		}
		prof, ppn := platformWorld(platform, scale)
		params := workload.MustLookup(bench, class, scale)
		rs := opt.campaign(experiment.RunConfig{
			Params:    params,
			Platform:  prof,
			PPN:       ppn,
			FaultKind: fault.ComputationHang,
			Monitor:   &core.Config{},
		}, runs, opt.Seed+seedOff)
		m := experiment.Aggregate(rs)
		cells = append(cells, AccuracyCell{Platform: platform, Bench: bench, Class: class, Scale: scale, Metrics: m, Results: rs})
		fmt.Fprintf(w, "  %-4s@%-6d ACh %s  D %5.1f±%4.1fs  ACf %s PRf %s\n",
			bench, scale, fmtAC(m.Accuracy), m.Delay.Mean, m.Delay.Std, fmtAC(m.ACf), fmtAC(m.PRf))
	}
	for bi, b := range []struct{ name, class string }{
		{"BT", "E"}, {"CG", "E"}, {"LU", "E"}, {"SP", "E"}, {"HPL", "2.5e5"},
	} {
		add("stampede", b.name, b.class, 4096, opt.Runs, int64(bi*1000))
	}
	add("stampede", "HPL", "3e5", 8192, (opt.Runs+1)/2, 50000)
	add("stampede", "HPL", "3.5e5", 16384, (opt.Runs+2)/3, 60000)
	return cells
}
