package sched

import (
	"math"
	"testing"
	"time"

	"parastack/internal/core"
	"parastack/internal/fault"
	"parastack/internal/mpi"
	"parastack/internal/sim"
)

// loopBody returns a compute+allreduce application body.
func loopBody(iters int, step time.Duration, inj *fault.Injector) func(*mpi.Rank) {
	return func(r *mpi.Rank) {
		eng := r.World().Engine()
		for it := 0; it < iters; it++ {
			r.Call("step", func() {
				r.Compute(step + time.Duration(eng.Rand().Int63n(int64(step))))
				inj.Check(r, it)
			})
			r.Allreduce(8)
		}
	}
}

func TestJobCompletes(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, 4)
	j := &Job{
		Name: "ok", Nodes: 2, PPN: 4, Walltime: 10 * time.Minute,
		Body: loopBody(50, 20*time.Millisecond, nil),
	}
	s.Submit(j)
	eng.Run(time.Hour)
	if j.State != Completed {
		t.Fatalf("state = %v", j.State)
	}
	if j.EndedAt <= j.StartedAt {
		t.Fatal("no elapsed time recorded")
	}
	if s.FreeNodes() != 4 {
		t.Fatalf("nodes not released: %d free", s.FreeNodes())
	}
	if j.SUs() <= 0 {
		t.Fatal("no SUs charged")
	}
}

func TestWalltimeKill(t *testing.T) {
	eng := sim.NewEngine(2)
	s := New(eng, 2)
	j := &Job{
		Name: "long", Nodes: 1, PPN: 4, Walltime: 2 * time.Second,
		Body: loopBody(10000, 50*time.Millisecond, nil),
	}
	s.Submit(j)
	eng.Run(time.Hour)
	if j.State != TimedOut {
		t.Fatalf("state = %v, want timed-out", j.State)
	}
	if got := j.EndedAt - j.StartedAt; got != 2*time.Second {
		t.Fatalf("elapsed = %v, want exactly the walltime", got)
	}
	if s.FreeNodes() != 2 {
		t.Fatal("nodes not released after kill")
	}
}

func TestFIFOQueueing(t *testing.T) {
	eng := sim.NewEngine(3)
	s := New(eng, 2)
	a := &Job{Name: "a", Nodes: 2, PPN: 2, Walltime: time.Minute, Body: loopBody(20, 20*time.Millisecond, nil)}
	b := &Job{Name: "b", Nodes: 1, PPN: 2, Walltime: time.Minute, Body: loopBody(20, 20*time.Millisecond, nil)}
	s.Submit(a)
	s.Submit(b)
	eng.Run(time.Hour)
	if a.State != Completed || b.State != Completed {
		t.Fatalf("states: %v, %v", a.State, b.State)
	}
	if b.StartedAt < a.EndedAt {
		t.Fatalf("b started at %v before a ended at %v despite full pool", b.StartedAt, a.EndedAt)
	}
}

func TestHangTerminationSavesTime(t *testing.T) {
	eng := sim.NewEngine(4)
	s := New(eng, 8)
	inj := fault.NewInjector(fault.Plan{Kind: fault.ComputationHang, Rank: 3, Iteration: 100})
	j := &Job{
		Name: "buggy", Nodes: 2, PPN: 8, Walltime: 10 * time.Minute,
		Body:    loopBody(5000, 30*time.Millisecond, inj),
		Monitor: &core.Config{C: 6},
	}
	s.Submit(j)
	eng.Run(time.Hour)
	if j.State != HangTerminated {
		t.Fatalf("state = %v, want hang-terminated", j.State)
	}
	if j.HangReport == nil || j.HangReport.Type != core.HangComputation {
		t.Fatalf("report = %+v", j.HangReport)
	}
	if j.Savings() <= 0.5 {
		t.Fatalf("savings = %v, hang at ~9s of a 10min slot should save >50%%", j.Savings())
	}
	if s.FreeNodes() != 8 {
		t.Fatal("nodes not released after hang termination")
	}
	// SU accounting must reflect early termination.
	elapsedHours := (j.EndedAt - j.StartedAt).Hours()
	if math.Abs(j.SUs()-float64(2*8)*elapsedHours) > 1e-9 {
		t.Fatalf("SUs = %v", j.SUs())
	}
}

func TestQueuedJobRunsAfterHangTermination(t *testing.T) {
	eng := sim.NewEngine(5)
	s := New(eng, 1)
	inj := fault.NewInjector(fault.Plan{Kind: fault.ComputationHang, Rank: 0, Iteration: 600})
	buggy := &Job{
		Name: "buggy", Nodes: 1, PPN: 8, Walltime: time.Hour,
		Body:    loopBody(5000, 30*time.Millisecond, inj),
		Monitor: &core.Config{C: 6},
	}
	next := &Job{Name: "next", Nodes: 1, PPN: 2, Walltime: time.Minute,
		Body: loopBody(10, 10*time.Millisecond, nil)}
	s.Submit(buggy)
	s.Submit(next)
	eng.Run(3 * time.Hour)
	if buggy.State != HangTerminated {
		t.Fatalf("buggy state = %v", buggy.State)
	}
	if next.State != Completed {
		t.Fatalf("next state = %v; early termination must free the node for it", next.State)
	}
	if next.StartedAt < buggy.EndedAt {
		t.Fatal("next started before buggy ended")
	}
	// Without ParaStack the node would have been blocked for the whole
	// hour; with it, the queue moved after seconds.
	if next.StartedAt > buggy.StartedAt+5*time.Minute {
		t.Fatalf("next waited until %v", next.StartedAt)
	}
}

func TestSubmitValidation(t *testing.T) {
	eng := sim.NewEngine(6)
	s := New(eng, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized job must panic")
		}
	}()
	s.Submit(&Job{Name: "big", Nodes: 3, PPN: 1, Walltime: time.Minute, Body: func(*mpi.Rank) {}})
}
