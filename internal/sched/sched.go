// Package sched is a miniature batch job scheduler in the spirit of
// Slurm/Torque, running on the simulation engine: FIFO queue, node
// allocation, walltime enforcement, and service-unit (SU) accounting.
//
// Its purpose in this reproduction is the paper's deployment story
// (§2): ParaStack attaches to batch jobs and, on a verified hang,
// terminates the job early instead of letting it burn the rest of its
// allocated walltime — the time-savings experiment of Figure 10.
package sched

import (
	"fmt"
	"time"

	"parastack/internal/core"
	"parastack/internal/mpi"
	"parastack/internal/noise"
	"parastack/internal/sim"
	"parastack/internal/topology"
)

// JobState is a job's lifecycle state.
type JobState int

const (
	// Pending means queued, waiting for nodes.
	Pending JobState = iota
	// Running means allocated and executing.
	Running
	// Completed means the application finished inside its walltime.
	Completed
	// TimedOut means the walltime expired and the scheduler killed it.
	TimedOut
	// HangTerminated means ParaStack detected a hang and the scheduler
	// terminated the job early.
	HangTerminated
)

// String implements fmt.Stringer.
func (s JobState) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Completed:
		return "completed"
	case TimedOut:
		return "timed-out"
	case HangTerminated:
		return "hang-terminated"
	default:
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// Job is one batch submission.
type Job struct {
	Name     string
	Nodes    int
	PPN      int
	Walltime time.Duration
	// CoresPerNode is used for SU accounting (defaults to PPN).
	CoresPerNode int

	// Body is the application each rank runs.
	Body func(*mpi.Rank)
	// Latency configures the job's interconnect (zero value = defaults).
	Latency mpi.Latency
	// Profile optionally applies platform noise to the job's world.
	Profile *noise.Profile
	// EstimatedDuration seeds the noise model's slowdown placement.
	EstimatedDuration time.Duration
	// Monitor, when non-nil, attaches a ParaStack monitor with this
	// configuration.
	Monitor *core.Config

	// OnFinish, when non-nil, runs as soon as the job leaves Running
	// (completed, killed, or hang-terminated) — e.g. to stop the engine
	// once the last interesting job is done.
	OnFinish func(*Job)

	// Results, valid once State leaves Running.
	State       JobState
	SubmittedAt time.Duration
	StartedAt   time.Duration
	EndedAt     time.Duration
	HangReport  *core.Report

	world   *World
	sched   *Scheduler
	killEvt *sim.Event
}

// World aliases the mpi world type for the job API.
type World = mpi.World

// SUs returns the service units charged: nodes × cores × elapsed hours
// (the charging policy cited by the paper).
func (j *Job) SUs() float64 {
	if j.State == Pending || j.State == Running {
		return 0
	}
	cores := j.CoresPerNode
	if cores == 0 {
		cores = j.PPN
	}
	return float64(j.Nodes*cores) * (j.EndedAt - j.StartedAt).Hours()
}

// Scheduler is a FIFO batch scheduler with a fixed node pool.
type Scheduler struct {
	eng        *sim.Engine
	totalNodes int
	freeNodes  int
	queue      []*Job
	all        []*Job
}

// New creates a scheduler managing totalNodes nodes on eng.
func New(eng *sim.Engine, totalNodes int) *Scheduler {
	return &Scheduler{eng: eng, totalNodes: totalNodes, freeNodes: totalNodes}
}

// FreeNodes reports currently unallocated nodes.
func (s *Scheduler) FreeNodes() int { return s.freeNodes }

// Jobs returns every submitted job in submission order.
func (s *Scheduler) Jobs() []*Job { return s.all }

// Submit enqueues a job. Scheduling happens at the current virtual time
// (or as soon as nodes free up).
func (s *Scheduler) Submit(j *Job) {
	if j.Nodes <= 0 || j.PPN <= 0 || j.Walltime <= 0 || j.Body == nil {
		panic("sched: job needs Nodes, PPN, Walltime and Body")
	}
	if j.Nodes > s.totalNodes {
		panic(fmt.Sprintf("sched: job %q wants %d nodes, pool has %d", j.Name, j.Nodes, s.totalNodes))
	}
	j.sched = s
	j.State = Pending
	j.SubmittedAt = time.Duration(s.eng.Now())
	s.queue = append(s.queue, j)
	s.all = append(s.all, j)
	s.eng.After(0, s.trySchedule)
}

// trySchedule starts queued jobs FIFO while nodes are available.
func (s *Scheduler) trySchedule() {
	for len(s.queue) > 0 && s.queue[0].Nodes <= s.freeNodes {
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.start(j)
	}
}

func (s *Scheduler) start(j *Job) {
	s.freeNodes -= j.Nodes
	j.State = Running
	j.StartedAt = time.Duration(s.eng.Now())

	size := j.Nodes * j.PPN
	w := mpi.NewWorld(s.eng, size, j.Latency)
	j.world = w
	if j.Profile != nil {
		j.Profile.Apply(w, s.eng.Rand(), j.PPN, j.EstimatedDuration)
	}
	cluster := topology.New(j.Nodes, j.PPN, int64(len(s.all)))

	if j.Monitor != nil {
		cfg := *j.Monitor
		cfg.OnHang = func(rep *core.Report) {
			j.HangReport = rep
			s.finish(j, HangTerminated)
		}
		m := core.New(w, cluster, cfg)
		m.Start()
	}

	// Walltime enforcement.
	j.killEvt = s.eng.At(sim.Time(j.StartedAt+j.Walltime), func() {
		if j.State == Running {
			s.finish(j, TimedOut)
		}
	})

	// Completion watcher: wraps the body to count finished ranks.
	finished := 0
	w.Launch(func(r *mpi.Rank) {
		j.Body(r)
		finished++
		if finished == size && j.State == Running {
			s.finish(j, Completed)
		}
	})
}

// finish accounts and releases a job. Rank processes of killed jobs
// stay parked (the simulation cannot destroy goroutines), but their
// nodes are returned to the pool, which is all the accounting needs.
func (s *Scheduler) finish(j *Job, st JobState) {
	j.State = st
	j.EndedAt = time.Duration(s.eng.Now())
	if j.killEvt != nil {
		j.killEvt.Cancel()
	}
	s.freeNodes += j.Nodes
	s.eng.After(0, s.trySchedule)
	if j.OnFinish != nil {
		j.OnFinish(j)
	}
}

// Savings returns the fraction of the allocated walltime ParaStack
// saved for a hang-terminated job: (walltime - elapsed) / walltime.
// Zero for jobs that ran their course.
func (j *Job) Savings() float64 {
	if j.State != HangTerminated {
		return 0
	}
	elapsed := j.EndedAt - j.StartedAt
	if elapsed >= j.Walltime {
		return 0
	}
	return float64(j.Walltime-elapsed) / float64(j.Walltime)
}
