// Package timeout implements the baseline detectors ParaStack is
// compared against: the fixed-(I, K) scheme of the paper's Table 1 (a
// hang is reported after K consecutive fixed-interval observations of
// low S'out) and an IO-Watchdog-style activity watchdog.
package timeout

import (
	"time"

	"parastack/internal/detect"
	"parastack/internal/mpi"
	"parastack/internal/sim"
	"parastack/internal/stack"
	"parastack/internal/topology"
)

// Report is a baseline detector's verdict: an alias of the shared
// detect.Report (the baselines fill only DetectedAt — they cannot
// classify a hang or identify faulty processes). The alias is what lets
// FixedIK and Watchdog satisfy detect.Detector with their existing
// Report methods.
type Report = detect.Report

// Config tunes the fixed-(I, K) detector.
type Config struct {
	// C is the number of monitored processes (default 10).
	C int
	// Interval is the fixed sampling interval I.
	Interval time.Duration
	// K is the number of consecutive low observations that report a hang.
	K int
	// Threshold defines "low": S'out <= Threshold (default 0, i.e. all
	// monitored processes inside MPI).
	Threshold float64
	// OnHang overrides the default engine stop.
	OnHang func(*Report)
}

// FixedIK is the paper's strawman: a priori fixed I and K, no model, no
// adaptation. Its false positives on FT (Table 1) are what motivate
// ParaStack.
type FixedIK struct {
	cfg    Config
	w      *mpi.World
	ranks  []int
	report *Report
}

// NewFixedIK attaches the detector to w, monitoring a random set of C
// ranks chosen from cluster.
func NewFixedIK(w *mpi.World, cluster *topology.Cluster, cfg Config) *FixedIK {
	if cfg.C == 0 {
		cfg.C = 10
	}
	if cfg.Interval == 0 {
		cfg.Interval = 400 * time.Millisecond
	}
	if cfg.K == 0 {
		cfg.K = 5
	}
	set := cluster.PickMonitorSet(w.Engine().Rand(), cfg.C, nil)
	return &FixedIK{cfg: cfg, w: w, ranks: set.Ranks}
}

// Report returns the verdict, nil if no hang was reported.
func (d *FixedIK) Report() *Report { return d.report }

// Name identifies the detector as a detect.Detector.
func (d *FixedIK) Name() string { return "fixed-ik" }

// Start spawns the detector process.
func (d *FixedIK) Start() {
	eng := d.w.Engine()
	eng.SpawnNow("timeout-detector", func(p *sim.Proc) {
		consecutive := 0
		for {
			p.Sleep(d.cfg.Interval)
			if d.w.Done() {
				return
			}
			out := 0
			for _, id := range d.ranks {
				if d.w.Rank(id).Stack().State() == stack.OutMPI {
					out++
				}
			}
			sout := float64(out) / float64(len(d.ranks))
			if sout <= d.cfg.Threshold {
				consecutive++
			} else {
				consecutive = 0
			}
			if consecutive >= d.cfg.K {
				d.report = &Report{DetectedAt: time.Duration(eng.Now())}
				if d.cfg.OnHang != nil {
					d.cfg.OnHang(d.report)
				} else {
					eng.Stop()
				}
				return
			}
		}
	})
}

// Watchdog is an IO-Watchdog-flavored baseline: it reports a hang when
// no monitored activity (stack motion anywhere in the job) is seen for
// a full timeout window. Like the real tool it needs a user-chosen
// timeout (default 1 hour) and burns that much allocation before
// firing; unlike ParaStack it cannot see through busy-wait loops, whose
// perpetual polling looks like activity.
type Watchdog struct {
	Timeout time.Duration
	OnHang  func(*Report)

	w      *mpi.World
	report *Report
}

// NewWatchdog attaches a watchdog with the given timeout (0 selects the
// IO-Watchdog default of 1 hour).
func NewWatchdog(w *mpi.World, timeout time.Duration) *Watchdog {
	if timeout == 0 {
		timeout = time.Hour
	}
	return &Watchdog{Timeout: timeout, w: w}
}

// Report returns the verdict, nil if none.
func (d *Watchdog) Report() *Report { return d.report }

// Name identifies the watchdog as a detect.Detector.
func (d *Watchdog) Name() string { return "watchdog" }

// Start spawns the watchdog process; it samples 8 times per window.
func (d *Watchdog) Start() {
	eng := d.w.Engine()
	eng.SpawnNow("io-watchdog", func(p *sim.Proc) {
		last := make([]uint64, d.w.Size())
		for i, r := range d.w.Ranks() {
			last[i] = r.Stack().Version()
		}
		quiet := time.Duration(0)
		step := d.Timeout / 8
		for {
			p.Sleep(step)
			if d.w.Done() {
				return
			}
			moved := false
			for i, r := range d.w.Ranks() {
				if v := r.Stack().Version(); v != last[i] {
					last[i] = v
					moved = true
				}
			}
			if moved {
				quiet = 0
				continue
			}
			quiet += step
			if quiet >= d.Timeout {
				d.report = &Report{DetectedAt: time.Duration(eng.Now())}
				if d.OnHang != nil {
					d.OnHang(d.report)
				} else {
					eng.Stop()
				}
				return
			}
		}
	})
}
