package timeout

import (
	"testing"
	"time"

	"parastack/internal/fault"
	"parastack/internal/mpi"
	"parastack/internal/sim"
	"parastack/internal/topology"
)

// app: compute+allreduce loop with a configurable long-MPI phase to
// provoke false positives. compute is the base computation per
// iteration (plus up to 100ms of jitter).
func app(compute time.Duration, longMPIBytes int, inj *fault.Injector, iters int) func(*mpi.Rank) {
	return func(r *mpi.Rank) {
		eng := r.World().Engine()
		for it := 0; it < iters; it++ {
			r.Call("step", func() {
				d := compute + time.Duration(eng.Rand().Int63n(int64(100*time.Millisecond)))
				r.Compute(d)
				inj.Check(r, it)
			})
			if longMPIBytes > 0 {
				r.Alltoall(longMPIBytes)
			}
			r.Allreduce(8)
		}
	}
}

func setup(seed int64, lat mpi.Latency) (*sim.Engine, *mpi.World, *topology.Cluster) {
	eng := sim.NewEngine(seed)
	w := mpi.NewWorld(eng, 16, lat)
	cl := topology.New(4, 4, seed)
	return eng, w, cl
}

func TestFixedIKDetectsRealHang(t *testing.T) {
	inj := fault.NewInjector(fault.Plan{Kind: fault.ComputationHang, Rank: 3, Iteration: 40})
	eng, w, cl := setup(1, mpi.Latency{})
	// Threshold 0.2 tolerates the faulty (OUT_MPI) rank itself being in
	// the monitored set — the corner case ParaStack solves with two
	// disjoint sets, which this baseline does not have.
	d := NewFixedIK(w, cl, Config{C: 8, Interval: 400 * time.Millisecond, K: 5, Threshold: 0.2})
	w.Launch(app(50*time.Millisecond, 0, inj, 500))
	d.Start()
	eng.Run(time.Hour)
	if d.Report() == nil {
		t.Fatal("fixed-IK missed the hang")
	}
	_, at := inj.Triggered()
	delay := d.Report().DetectedAt - at
	if delay <= 0 || delay > 10*time.Second {
		t.Fatalf("delay = %v", delay)
	}
}

func TestFixedIKNoFalsePositiveOnLivelyApp(t *testing.T) {
	eng, w, cl := setup(2, mpi.Latency{})
	d := NewFixedIK(w, cl, Config{C: 8, Interval: 400 * time.Millisecond, K: 5})
	w.Launch(app(50*time.Millisecond, 0, nil, 300))
	d.Start()
	eng.Run(time.Hour)
	if !w.Done() {
		t.Fatal("app did not finish")
	}
	if d.Report() != nil {
		t.Fatalf("false positive at %v", d.Report().DetectedAt)
	}
}

func TestFixedIKFalsePositiveOnLongCollective(t *testing.T) {
	// A slow interconnect turns each alltoall into a multi-second
	// all-IN_MPI stretch; a (400ms, 5) timeout must false-alarm, and a
	// (800ms, 10) one must not — the Table 1 effect.
	slow := mpi.Latency{CollBytesPerSec: 2e8, Jitter: 0.05}
	eng, w, cl := setup(3, slow)
	fp := NewFixedIK(w, cl, Config{C: 8, Interval: 400 * time.Millisecond, K: 5})
	w.Launch(app(1500*time.Millisecond, 1<<27, nil, 60)) // ~2.7s alltoall per iteration
	fp.Start()
	eng.Run(time.Hour)
	if fp.Report() == nil {
		t.Fatal("expected a false positive from the (400ms, 5) timeout")
	}

	eng2, w2, cl2 := setup(3, slow)
	ok := NewFixedIK(w2, cl2, Config{C: 8, Interval: 800 * time.Millisecond, K: 10})
	w2.Launch(app(1500*time.Millisecond, 1<<27, nil, 60))
	ok.Start()
	eng2.Run(time.Hour)
	if !w2.Done() {
		t.Fatal("app did not finish under (800ms, 10)")
	}
	if ok.Report() != nil {
		t.Fatal("(800ms, 10) should tolerate a 2.6s collective")
	}
}

func TestWatchdogDetectsHangAfterTimeout(t *testing.T) {
	inj := fault.NewInjector(fault.Plan{Kind: fault.CommunicationDeadlock, Rank: 2, Iteration: 20})
	eng, w, _ := setup(4, mpi.Latency{})
	d := NewWatchdog(w, 2*time.Minute)
	w.Launch(app(50*time.Millisecond, 0, inj, 500))
	d.Start()
	eng.Run(3 * time.Hour)
	if d.Report() == nil {
		t.Fatal("watchdog missed the deadlock")
	}
	_, at := inj.Triggered()
	delay := d.Report().DetectedAt - at
	if delay < 2*time.Minute {
		t.Fatalf("watchdog fired after %v, before its own timeout", delay)
	}
}

func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	eng, w, _ := setup(5, mpi.Latency{})
	d := NewWatchdog(w, time.Minute)
	w.Launch(app(50*time.Millisecond, 0, nil, 200))
	d.Start()
	eng.Run(time.Hour)
	if !w.Done() || d.Report() != nil {
		t.Fatal("watchdog misfired on a healthy run")
	}
}

func TestWatchdogBlindToBusyWaitHang(t *testing.T) {
	// A rank stuck in a busy-wait loop keeps flipping its stack, which
	// an activity watchdog reads as life — a documented weakness.
	eng, w, _ := setup(6, mpi.Latency{})
	d := NewWatchdog(w, time.Minute)
	w.Launch(func(r *mpi.Rank) {
		if r.ID() == 0 {
			q := r.Irecv(1, 999) // never satisfied
			for !r.TestFor(q, 5*time.Millisecond) {
				r.Spin(100 * time.Microsecond)
			}
		} else {
			r.Recv(0, 998) // never satisfied either
		}
	})
	d.Start()
	eng.Run(10 * time.Minute)
	if d.Report() != nil {
		t.Fatal("watchdog fired despite busy-wait activity (expected blindness)")
	}
}
