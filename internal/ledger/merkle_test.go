package ledger

import (
	"encoding/json"
	"fmt"
	"testing"
)

// testLeaves builds n deterministic leaves (and their content hashes).
func testLeaves(n int) ([][32]byte, [][32]byte) {
	contents := make([][32]byte, n)
	leaves := make([][32]byte, n)
	for i := range contents {
		contents[i] = contentHash([]byte(fmt.Sprintf("payload-%d", i)))
		leaves[i] = leafHash(contents[i])
	}
	return contents, leaves
}

// Every proof of every leaf must replay to the root, across tree sizes
// covering the empty, single, even, odd, and power-of-two shapes.
func TestMerkleProofRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 64, 65} {
		_, leaves := testLeaves(n)
		root := merkleRoot(leaves)
		for i := 0; i < n; i++ {
			proof := merkleProof(leaves, i)
			if !verifyProof(leaves[i], proof, root) {
				t.Errorf("n=%d leaf=%d: proof does not verify", n, i)
			}
			// The same proof must not verify any other leaf.
			other := leaves[(i+1)%n]
			if n > 1 && verifyProof(other, proof, root) {
				t.Errorf("n=%d leaf=%d: proof verifies the wrong leaf", n, i)
			}
		}
	}
}

func TestMerkleRootEmptyAndSingle(t *testing.T) {
	if merkleRoot(nil) != ([32]byte{}) {
		t.Error("empty batch should have the zero root")
	}
	_, leaves := testLeaves(1)
	if merkleRoot(leaves) != leaves[0] {
		t.Error("a single leaf should be its own root")
	}
	if got := merkleProof(leaves, 0); len(got) != 0 {
		t.Errorf("single-leaf proof should be empty, got %d steps", len(got))
	}
}

// Domain separation: a leaf hash and a node hash over the same bytes
// must differ, so an interior node can never be replayed as a leaf.
func TestMerkleDomainSeparation(t *testing.T) {
	c := contentHash([]byte("x"))
	if leafHash(c) == c {
		t.Error("leafHash must not be the identity")
	}
	l, r := leafHash(c), leafHash(contentHash([]byte("y")))
	parent := nodeHash(l, r)
	if parent == leafHash(parent) {
		t.Error("node and leaf domains collide")
	}
}

// Root sensitivity: reordering or substituting any leaf changes the root.
func TestMerkleRootSensitivity(t *testing.T) {
	_, leaves := testLeaves(5)
	root := merkleRoot(leaves)

	swapped := append([][32]byte(nil), leaves...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if merkleRoot(swapped) == root {
		t.Error("swapping leaves did not change the root")
	}

	for i := range leaves {
		mutated := append([][32]byte(nil), leaves...)
		mutated[i] = leafHash(contentHash([]byte("evil")))
		if merkleRoot(mutated) == root {
			t.Errorf("substituting leaf %d did not change the root", i)
		}
	}
}

// Malformed proof steps (bad hex, truncated hashes) must fail
// verification without panicking.
func TestVerifyProofMalformed(t *testing.T) {
	_, leaves := testLeaves(4)
	root := merkleRoot(leaves)
	good := merkleProof(leaves, 2)

	bad := append([]ProofStep(nil), good...)
	bad[0].Hash = "zz-not-hex"
	if verifyProof(leaves[2], bad, root) {
		t.Error("bad hex verified")
	}
	bad = append([]ProofStep(nil), good...)
	bad[0].Hash = bad[0].Hash[:10] // truncated
	if verifyProof(leaves[2], bad, root) {
		t.Error("truncated hash verified")
	}
	bad = append([]ProofStep(nil), good...)
	bad[len(bad)-1].Left = !bad[len(bad)-1].Left // flipped side
	if verifyProof(leaves[2], bad, root) {
		t.Error("flipped sibling side verified")
	}
	if verifyProof(leaves[2], nil, root) {
		t.Error("empty proof verified a multi-leaf root")
	}
}

func TestParseHash(t *testing.T) {
	h := contentHash([]byte("round-trip"))
	got, ok := parseHash(hexHash(h))
	if !ok || got != h {
		t.Error("hexHash/parseHash round trip failed")
	}
	for _, s := range []string{"", "xyz", "abcd", hexHash(h) + "00"} {
		if _, ok := parseHash(s); ok {
			t.Errorf("parseHash(%q) accepted malformed input", s)
		}
	}
}

// FuzzProof pins the no-panic contract of the proof path against
// adversarial serialized index entries: whatever bytes arrive, parsing
// and verification must return cleanly. Wired into `make fuzz-smoke`.
func FuzzProof(f *testing.F) {
	_, leaves := testLeaves(4)
	root := merkleRoot(leaves)
	goodEntry := indexEntry{
		Schema: SchemaVersion,
		Key:    "w|p|f|seed=1",
		Seq:    1,
		Leaf:   2,
		Hash:   hexHash(contentHash([]byte("payload-2"))),
		Proof:  merkleProof(leaves, 2),
	}
	seed, _ := json.Marshal(goodEntry)
	f.Add(seed)
	f.Add([]byte(`{"schema":"parastack-ledger/v1","proof":[{"h":"zz"}]}`))
	f.Add([]byte(`{"proof":[{"h":"00","left":true},{"h":""}]}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var e indexEntry
		if json.Unmarshal(data, &e) != nil {
			return
		}
		content, ok := parseHash(e.Hash)
		if !ok {
			return
		}
		// Must never panic, whatever the proof contains.
		verifyProof(leafHash(content), e.Proof, root)
	})
}
