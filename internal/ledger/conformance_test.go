package ledger

import (
	"fmt"
	"testing"

	"parastack/internal/results"
)

// forEachStore runs the conformance body once per Store backend — the
// cross-backend suite every implementation must pass. A new backend
// (object store, ...) earns its keep by adding one line here.
func forEachStore(t *testing.T, body func(t *testing.T, store Store)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) {
		s := NewMemStore()
		defer s.Close()
		body(t, s)
	})
	t.Run("dir", func(t *testing.T) {
		s, err := OpenDirStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		body(t, s)
	})
}

// testRecord builds a deterministic keyed record.
func testRecord(i int) results.Record {
	return results.Record{
		Key:     fmt.Sprintf("w%d|tardis|computation|seed=%d", i%3, i),
		Payload: []byte(fmt.Sprintf(`{"key":"w%d|tardis|computation|seed=%d","detected":true,"n":%d}`, i%3, i, i)),
	}
}

// smallOpts forces frequent commits so tests cross batch boundaries.
func smallOpts() Options { return Options{BatchSize: 4} }

// Store-level conformance: Put/Get/Has/List semantics.
func TestStoreConformance(t *testing.T) {
	forEachStore(t, func(t *testing.T, store Store) {
		if _, err := store.Get("nope"); err != ErrNotFound {
			t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
		}
		if ok, err := store.Has("nope"); err != nil || ok {
			t.Fatalf("Has(missing) = %v, %v", ok, err)
		}
		if err := store.Put("a/1", []byte("one")); err != nil {
			t.Fatal(err)
		}
		if err := store.Put("a/2", []byte("two")); err != nil {
			t.Fatal(err)
		}
		if err := store.Put("b/1", []byte("three")); err != nil {
			t.Fatal(err)
		}
		if err := store.Put("a/1", []byte("one-v2")); err != nil {
			t.Fatal(err) // overwrite
		}
		data, err := store.Get("a/1")
		if err != nil || string(data) != "one-v2" {
			t.Fatalf("Get after overwrite = %q, %v", data, err)
		}
		keys, err := store.List("a/")
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != 2 || keys[0] != "a/1" || keys[1] != "a/2" {
			t.Fatalf("List(a/) = %v", keys)
		}
	})
}

// Ledger conformance: append → close → reopen → read back, proofs and
// roots verifying clean, across backends.
func TestLedgerAppendReadVerify(t *testing.T) {
	forEachStore(t, func(t *testing.T, store Store) {
		led, err := Open(store, smallOpts())
		if err != nil {
			t.Fatal(err)
		}
		const n = 10 // BatchSize 4 → two full batches + one partial
		want := make([]results.Record, n)
		for i := range want {
			want[i] = testRecord(i)
			if err := led.Append(want[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := led.Close(); err != nil {
			t.Fatal(err)
		}
		if led.Seq() != 3 {
			t.Fatalf("Seq = %d, want 3 batches", led.Seq())
		}
		root := led.HeadRoot()
		if root == "" {
			t.Fatal("HeadRoot empty after commits")
		}

		// Reopen: records replay in append order, byte-identical.
		led2, err := Open(store, smallOpts())
		if err != nil {
			t.Fatal(err)
		}
		defer led2.Close()
		if led2.HeadRoot() != root {
			t.Fatalf("reopened root %s != %s", led2.HeadRoot(), root)
		}
		got, err := led2.Records()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("Records = %d, want %d", len(got), n)
		}
		for i := range got {
			if got[i].Key != want[i].Key || string(got[i].Payload) != string(want[i].Payload) {
				t.Fatalf("record %d mismatch: %+v", i, got[i])
			}
		}
		for _, r := range want {
			if !led2.Has(r.Key) {
				t.Fatalf("Has(%q) false after reopen", r.Key)
			}
			payload, err := led2.Get(r.Key)
			if err != nil || string(payload) != string(r.Payload) {
				t.Fatalf("Get(%q) = %q, %v", r.Key, payload, err)
			}
		}

		// Full audit: every root, blob, and inclusion proof.
		rep, err := Verify(store, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("Verify problems: %v", rep.Problems)
		}
		if rep.Batches != 3 || rep.Records != n || rep.Proofs == 0 {
			t.Fatalf("Verify counts: %+v", rep)
		}
		if rep.HeadRoot != root {
			t.Fatalf("Verify head root %s != %s", rep.HeadRoot, root)
		}
	})
}

// Append after Close must return the shared results.ErrClosed; Close
// must be idempotent.
func TestLedgerWriteAfterClose(t *testing.T) {
	forEachStore(t, func(t *testing.T, store Store) {
		led, err := Open(store, smallOpts())
		if err != nil {
			t.Fatal(err)
		}
		if err := led.Append(testRecord(0)); err != nil {
			t.Fatal(err)
		}
		if err := led.Close(); err != nil {
			t.Fatal(err)
		}
		if err := led.Append(testRecord(1)); err != results.ErrClosed {
			t.Fatalf("Append after Close = %v, want results.ErrClosed", err)
		}
		if err := led.Close(); err != nil {
			t.Fatalf("second Close = %v, want nil", err)
		}
	})
}

// Identical (key, payload) re-appends are dedup hits — counted, not
// re-stored; a differing payload for the same key is last-wins.
func TestLedgerDedupAndLastWins(t *testing.T) {
	forEachStore(t, func(t *testing.T, store Store) {
		led, err := Open(store, smallOpts())
		if err != nil {
			t.Fatal(err)
		}
		rec := testRecord(0)
		for i := 0; i < 3; i++ {
			if err := led.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		st := led.LedgerStats()
		if st.Appends != 1 || st.DedupHits != 2 {
			t.Fatalf("stats after re-appends: %+v", st)
		}

		// Dedup survives reopen: the index reloads the key map.
		if err := led.Close(); err != nil {
			t.Fatal(err)
		}
		led, err = Open(store, smallOpts())
		if err != nil {
			t.Fatal(err)
		}
		if !led.Has(rec.Key) {
			t.Fatal("Has lost the key across reopen")
		}
		if err := led.Append(rec); err != nil {
			t.Fatal(err)
		}
		if st := led.LedgerStats(); st.DedupHits != 1 || st.Appends != 0 {
			t.Fatalf("stats after reopen re-append: %+v", st)
		}

		// Last-wins: same key, new payload.
		v2 := results.Record{Key: rec.Key, Payload: []byte(`{"v":2}`)}
		if err := led.Append(v2); err != nil {
			t.Fatal(err)
		}
		if err := led.Close(); err != nil {
			t.Fatal(err)
		}
		led, err = Open(store, smallOpts())
		if err != nil {
			t.Fatal(err)
		}
		defer led.Close()
		payload, err := led.Get(rec.Key)
		if err != nil || string(payload) != `{"v":2}` {
			t.Fatalf("Get after rewrite = %q, %v", payload, err)
		}
		rep, err := Verify(store, 0)
		if err != nil || !rep.OK() {
			t.Fatalf("Verify after rewrite: %v, %v", rep.Problems, err)
		}
	})
}

// Flush makes everything appended before it committed and readable
// without closing the ledger.
func TestLedgerFlush(t *testing.T) {
	forEachStore(t, func(t *testing.T, store Store) {
		led, err := Open(store, Options{BatchSize: 1000}) // deadline/flush only
		if err != nil {
			t.Fatal(err)
		}
		defer led.Close()
		for i := 0; i < 3; i++ {
			if err := led.Append(testRecord(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := led.Flush(); err != nil {
			t.Fatal(err)
		}
		recs, err := led.Records()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 3 {
			t.Fatalf("Records after Flush = %d, want 3", len(recs))
		}
	})
}

// Torn tail, window 1: blobs written, no manifest. Open tolerates the
// orphans; Verify counts them without failing.
func TestLedgerTornTailOrphanBlobs(t *testing.T) {
	forEachStore(t, func(t *testing.T, store Store) {
		led, err := Open(store, smallOpts())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if err := led.Append(testRecord(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := led.Close(); err != nil {
			t.Fatal(err)
		}

		// Simulate the crash window: a manifest for seq+1 landed but is
		// torn (unparseable), plus a stray record blob.
		if err := store.Put(batchKey(2), []byte(`{"schema":"parastack-ledg`)); err != nil {
			t.Fatal(err)
		}
		orphan := contentHash([]byte("orphan"))
		if err := store.Put(recordKey(orphan), []byte("orphan")); err != nil {
			t.Fatal(err)
		}

		led, err = Open(store, smallOpts())
		if err != nil {
			t.Fatalf("Open with torn tail: %v", err)
		}
		if led.Seq() != 1 {
			t.Fatalf("Seq = %d, want 1 (torn manifest not adopted)", led.Seq())
		}
		defer led.Close()

		rep, err := Verify(store, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("torn tail should be tolerated, got %v", rep.Problems)
		}
		if rep.Orphans == 0 {
			t.Fatal("orphan blobs past the tip not counted")
		}
	})
}

// Torn tail, window 2: a batch committed fully except HEAD. Open rolls
// it forward — the batch's records reappear and the chain re-heads.
func TestLedgerRollForward(t *testing.T) {
	forEachStore(t, func(t *testing.T, store Store) {
		led, err := Open(store, smallOpts())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ { // two full batches
			if err := led.Append(testRecord(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := led.Close(); err != nil {
			t.Fatal(err)
		}
		if led.Seq() != 2 {
			t.Fatalf("Seq = %d, want 2", led.Seq())
		}
		finalRoot := led.HeadRoot()

		// Rewind HEAD to batch 1 — exactly the state a crash between the
		// batch-2 manifest and its HEAD write leaves behind.
		m1, err := led.manifestAt(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := led.writeHead(1, m1.Root); err != nil {
			t.Fatal(err)
		}

		led2, err := Open(store, smallOpts())
		if err != nil {
			t.Fatal(err)
		}
		defer led2.Close()
		if led2.Seq() != 2 || led2.HeadRoot() != finalRoot {
			t.Fatalf("roll-forward: seq=%d root=%s, want seq=2 root=%s",
				led2.Seq(), led2.HeadRoot(), finalRoot)
		}
		recs, err := led2.Records()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 8 {
			t.Fatalf("Records after roll-forward = %d, want 8", len(recs))
		}
		rep, err := Verify(store, 0)
		if err != nil || !rep.OK() {
			t.Fatalf("Verify after roll-forward: %v, %v", rep.Problems, err)
		}
	})
}
