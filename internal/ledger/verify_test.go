package ledger

import (
	"strings"
	"testing"
)

// buildLedger commits n records into a fresh MemStore and returns the
// store plus key→record-blob-key mapping.
func buildLedger(t *testing.T, n int) (*MemStore, map[string]string) {
	t.Helper()
	store := NewMemStore()
	led, err := Open(store, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	blobs := make(map[string]string, n)
	for i := 0; i < n; i++ {
		rec := testRecord(i)
		if err := led.Append(rec); err != nil {
			t.Fatal(err)
		}
		blobs[rec.Key] = recordKey(contentHash(rec.Payload))
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}
	return store, blobs
}

// The corruption table: flip one bit of every committed record blob, at
// several byte offsets and bit positions, and require Verify to flag
// exactly that record's cell key — damage is localized, never smeared
// across the audit or silently absorbed.
func TestVerifyLocalizesSingleBitFlips(t *testing.T) {
	const n = 9 // crosses batch boundaries at BatchSize 4
	store, blobs := buildLedger(t, n)

	if rep, err := Verify(store, 0); err != nil || !rep.OK() {
		t.Fatalf("baseline not clean: %v, %v", rep.Problems, err)
	}

	flips := []struct {
		byteOff int
		bit     uint
	}{
		{0, 0},  // first byte, low bit
		{0, 7},  // first byte, high bit
		{5, 3},  // mid-payload
		{-1, 0}, // sentinel: last byte (resolved per blob below)
	}
	for key, blobKey := range blobs {
		data, err := store.Get(blobKey)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range flips {
			off := f.byteOff
			if off < 0 {
				off = len(data) - 1
			}
			if err := store.Corrupt(blobKey, off, f.bit); err != nil {
				t.Fatal(err)
			}
			rep, err := Verify(store, 2)
			if err != nil {
				t.Fatal(err)
			}
			if rep.OK() {
				t.Fatalf("bit flip (%q, byte %d, bit %d) not detected", key, off, f.bit)
			}
			if len(rep.Problems) != 1 {
				t.Fatalf("flip should localize to one problem, got %v", rep.Problems)
			}
			p := rep.Problems[0]
			if p.Key != key {
				t.Fatalf("flip in %q blamed on key %q", key, p.Key)
			}
			if !strings.Contains(p.Reason, "corrupted") {
				t.Fatalf("unexpected reason %q", p.Reason)
			}
			if !strings.Contains(p.String(), `key="`+key+`"`) {
				t.Fatalf("Problem.String() %q does not name the cell key", p.String())
			}
			// Undo: the same flip restores the blob, so each table row
			// tests exactly one damaged bit.
			if err := store.Corrupt(blobKey, off, f.bit); err != nil {
				t.Fatal(err)
			}
		}
	}

	if rep, err := Verify(store, 0); err != nil || !rep.OK() {
		t.Fatalf("not clean after undoing all flips: %v, %v", rep.Problems, err)
	}
}

// A deleted record blob is reported as truncation, still naming the key.
func TestVerifyMissingRecord(t *testing.T) {
	store, blobs := buildLedger(t, 5)
	var victim, blobKey string
	for k, b := range blobs {
		victim, blobKey = k, b
		break
	}
	store.mu.Lock()
	delete(store.blobs, blobKey)
	store.mu.Unlock()

	rep, err := Verify(store, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range rep.Problems {
		if p.Key == victim && strings.Contains(p.Reason, "missing") {
			found = true
		}
	}
	if !found {
		t.Fatalf("deleted blob for %q not reported, got %v", victim, rep.Problems)
	}
}

// A corrupted batch manifest is a batch-level problem; a tampered
// manifest with valid JSON but altered entries breaks the root.
func TestVerifyManifestTamper(t *testing.T) {
	store, _ := buildLedger(t, 8) // two batches

	// Flip a bit inside the batch-1 manifest JSON.
	if err := store.Corrupt(batchKey(1), 40, 2); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(store, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("manifest bit flip not detected")
	}
	hit := false
	for _, p := range rep.Problems {
		if p.Seq == 1 {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("manifest damage not attributed to batch 1: %v", rep.Problems)
	}
}

// HEAD missing while batches exist is truncation, not a clean ledger.
func TestVerifyHeadTruncation(t *testing.T) {
	store, _ := buildLedger(t, 4)
	store.mu.Lock()
	delete(store.blobs, headKey)
	store.mu.Unlock()

	rep, err := Verify(store, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("missing HEAD with committed batches passed verification")
	}
}

// An empty store is vacuously clean.
func TestVerifyEmpty(t *testing.T) {
	rep, err := Verify(NewMemStore(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Batches != 0 || rep.Records != 0 {
		t.Fatalf("empty store: %+v", rep)
	}
}
