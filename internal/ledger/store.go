package ledger

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is the raw blob layer under a Ledger: a flat key→bytes map
// with prefix listing. The interface is deliberately minimal — exactly
// what an object store offers — so the Merkle/batching/dedup logic
// above it never knows whether it is talking to memory, a local
// directory, or (later) S3-alikes. Keys are slash-separated paths of
// [A-Za-z0-9._-] segments ("records/<hex>", "batches/00000001");
// the Ledger only ever derives them from hashes and sequence numbers,
// never from user input.
//
// Put must be atomic: a crash mid-Put leaves either the old value or
// the new one, never a torn blob. The ledger's crash-recovery contract
// (Open's roll-forward, Verify's torn-tail tolerance) is built on that
// guarantee. Implementations must be safe for concurrent use.
type Store interface {
	// Put atomically writes key's blob, overwriting any previous value.
	Put(key string, data []byte) error
	// Get returns key's blob. A missing key is (nil, ErrNotFound).
	Get(key string) ([]byte, error)
	// Has reports whether key exists.
	Has(key string) (bool, error)
	// List returns every key with the given prefix, sorted.
	List(prefix string) ([]string, error)
	// Close releases the store. Blobs written before Close survive it
	// (durable backends); a second Close is a no-op returning nil.
	Close() error
}

// ErrNotFound marks a Get for a key the store does not hold. It is a
// distinct sentinel (not io/fs.ErrNotExist) so ledger recovery can
// distinguish "blob genuinely absent" from backend I/O failures.
var ErrNotFound = fmt.Errorf("ledger: key not found")

// MemStore is the in-memory Store: the unit-test and
// ephemeral-pipeline backend. The zero value is not usable; call
// NewMemStore.
type MemStore struct {
	mu     sync.RWMutex
	blobs  map[string][]byte
	closed bool
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{blobs: make(map[string][]byte)}
}

func (m *MemStore) Put(key string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("ledger: memstore is closed")
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.blobs[key] = cp
	return nil
}

func (m *MemStore) Get(key string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.blobs[key]
	if !ok {
		return nil, ErrNotFound
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

func (m *MemStore) Has(key string) (bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.blobs[key]
	return ok, nil
}

func (m *MemStore) List(prefix string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var keys []string
	for k := range m.blobs {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// Corrupt flips one bit of a held blob — the test seam behind the
// corruption table tests ("any single-bit flip is localized to its
// cell key"). It exists on MemStore only; disk-backed corruption is
// exercised by `make ledger-smoke` with dd.
func (m *MemStore) Corrupt(key string, byteOff int, bit uint) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.blobs[key]
	if !ok {
		return ErrNotFound
	}
	if byteOff < 0 || byteOff >= len(data) {
		return fmt.Errorf("ledger: corrupt offset %d out of range (blob is %d bytes)", byteOff, len(data))
	}
	data[byteOff] ^= 1 << (bit % 8)
	return nil
}

// DirStore is the local-disk Store: one file per key under a root
// directory, with atomic writes (temp file in the destination
// directory, fsync, rename). It is what `pssweep -ledger DIR` and
// `parastackd -ledger DIR` open.
type DirStore struct {
	root string

	mu     sync.Mutex
	closed bool
}

// OpenDirStore opens (creating if needed) a directory-backed store
// rooted at dir.
func OpenDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirStore{root: dir}, nil
}

// path maps a store key onto its file. Keys are ledger-generated
// (hashes, zero-padded sequence numbers), so the only separator to
// translate is '/'.
func (d *DirStore) path(key string) string {
	return filepath.Join(d.root, filepath.FromSlash(key))
}

func (d *DirStore) Put(key string, data []byte) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return fmt.Errorf("ledger: dirstore is closed")
	}
	d.mu.Unlock()
	dst := d.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	// Atomic publish: write + fsync a temp file in the destination
	// directory, then rename over the final name. A crash leaves either
	// the old blob or the new one — never a torn file — which is the
	// contract Open's roll-forward recovery depends on.
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".put-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, dst); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

func (d *DirStore) Get(key string) ([]byte, error) {
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	return data, nil
}

func (d *DirStore) Has(key string) (bool, error) {
	_, err := os.Stat(d.path(key))
	if err == nil {
		return true, nil
	}
	if os.IsNotExist(err) {
		return false, nil
	}
	return false, err
}

func (d *DirStore) List(prefix string) ([]string, error) {
	var keys []string
	err := filepath.WalkDir(d.root, func(p string, entry fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil // concurrent removal: treat as absent
			}
			return err
		}
		if entry.IsDir() {
			return nil
		}
		name := entry.Name()
		if strings.HasPrefix(name, ".put-") {
			return nil // abandoned temp file from a crashed Put
		}
		rel, err := filepath.Rel(d.root, p)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(keys)
	return keys, nil
}

func (d *DirStore) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	return nil
}
