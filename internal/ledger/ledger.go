// Package ledger is the tamper-evident results ledger: an append-only
// store of result records, batched into Merkle trees, with a
// content-addressed dedup index keyed by result identity (sweep cell
// keys / campaign fingerprints). It is the durable trust layer under
// fleet-scale sweeps and the parastackd daemon — any torn write,
// truncation, or single-bit flip in a committed record is detectable
// by replaying roots and inclusion proofs (Verify, cmd/psverify), and
// identical cells re-run through the ledger sink are dedup hits
// instead of re-executions.
//
// The subsystem splits interface-first into two layers:
//
//   - Store: raw blobs (Put/Get/Has/List). In-memory and local-disk
//     backends ship here; an object store slots in behind the same
//     five methods.
//   - Ledger: batches, roots, proofs, and the key index — everything
//     that gives the blobs meaning. Ledger implements results.Sink
//     and results.Reader, so it drops into the sweep orchestrator and
//     the detection service anywhere the JSONL log does.
//
// Store layout (all values JSON except record blobs, schema
// "parastack-ledger/v1"; see the EXPERIMENTS.md ledger entry):
//
//	records/<content-hash>   raw record payload (content-addressed)
//	batches/<seq, %08d>      batch manifest: root, prev root, entries
//	index/<key-hash>         per-key entry: batch, leaf, content hash,
//	                         inclusion proof (last write per key wins)
//	HEAD                     latest committed (seq, root)
//
// Batches chain by root (manifest.Prev is the previous batch's root),
// so rewriting any committed batch breaks the chain and replacing the
// tail is evident against an externally noted head root — psverify
// prints it for exactly that purpose.
//
// Commit order is blobs → manifest → index → HEAD. A crash between
// manifest and HEAD is rolled forward by Open (the manifest holds
// everything needed to rebuild index entries); a crash before the
// manifest leaves only unreferenced blobs, which are harmless.
package ledger

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"parastack/internal/results"
)

// SchemaVersion tags every manifest, index entry, and HEAD blob; Open
// and Verify reject blobs written by an incompatible schema.
const SchemaVersion = "parastack-ledger/v1"

// Store keys.
const (
	headKey      = "HEAD"
	recordPrefix = "records/"
	batchPrefix  = "batches/"
	indexPrefix  = "index/"
)

func recordKey(content [32]byte) string { return recordPrefix + hexHash(content) }
func batchKey(seq uint64) string        { return fmt.Sprintf("%s%08d", batchPrefix, seq) }
func indexKey(key string) string        { return indexPrefix + hexHash(contentHash([]byte(key))) }

// manifest is one committed batch: the Merkle root over its entries'
// content hashes, the previous batch's root (the chain link), and the
// ordered entry list.
type manifest struct {
	Schema  string          `json:"schema"`
	Seq     uint64          `json:"seq"`
	Prev    string          `json:"prev,omitempty"`
	Root    string          `json:"root"`
	Entries []manifestEntry `json:"entries"`
}

// manifestEntry is one leaf of a batch.
type manifestEntry struct {
	Key  string `json:"key"`
	Hash string `json:"hash"`
}

// indexEntry locates a key's latest record: which batch holds it, at
// which leaf, under which content hash, with its stored inclusion
// proof. It is the dedup index and the per-record proof store in one.
type indexEntry struct {
	Schema string      `json:"schema"`
	Key    string      `json:"key"`
	Seq    uint64      `json:"seq"`
	Leaf   int         `json:"leaf"`
	Hash   string      `json:"hash"`
	Proof  []ProofStep `json:"proof"`
}

// head is the chain tip.
type head struct {
	Schema string `json:"schema"`
	Seq    uint64 `json:"seq"`
	Root   string `json:"root"`
}

// Options tunes a Ledger. The zero value selects serviceable defaults.
type Options struct {
	// BatchSize commits a batch at this many records (0 = 64).
	BatchSize int
	// BatchDelay commits a partial batch after this long (0 = 50ms) —
	// the size+deadline flush pattern shared with the service batcher.
	BatchDelay time.Duration
	// Depth bounds the intake channel (0 = 256): when commits stall,
	// Append blocks rather than buffering without limit.
	Depth int
}

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.BatchDelay <= 0 {
		o.BatchDelay = 50 * time.Millisecond
	}
	if o.Depth <= 0 {
		o.Depth = 256
	}
	return o
}

// Stats is a point-in-time view of a ledger's activity since Open.
type Stats struct {
	// Appends counts records accepted (committed or pending);
	// DedupHits counts Appends short-circuited because the key already
	// held an identical payload; Batches counts commits this session.
	Appends, DedupHits, Batches uint64
}

// pending is one accepted record on its way into a batch, or — when
// flushDone is non-nil — a drain marker that forces the open batch out
// and signals the waiting Flush.
type pending struct {
	key       string
	content   [32]byte
	payload   []byte
	flushDone chan struct{}
}

// Ledger is the append-only, Merkle-batched results ledger over a
// Store. It implements results.Sink (Append/Close) and results.Reader
// (Records), and is safe for concurrent use.
type Ledger struct {
	store Store
	opts  Options

	in chan pending
	wg sync.WaitGroup

	// closeMu serializes intake against close(in): Append sends while
	// holding the read side, Close takes the write side before closing
	// the channel, so a late Append can never panic on a closed channel.
	closeMu sync.RWMutex

	mu      sync.Mutex
	keys    map[string]string // key → latest content hash (committed + in flight)
	seq     uint64            // last committed batch
	root    string            // last committed root (chain tip)
	stats   Stats
	err     error // sticky commit failure
	closed  bool
	flushed chan struct{} // signaled (replaced) after every commit; Flush waits on it
}

// Open loads (or initializes) the ledger in store: reads HEAD, rolls
// forward any batch that was fully written but not yet headed (the
// crash window between manifest and HEAD), loads the key index, and
// starts the batching committer.
func Open(store Store, opts Options) (*Ledger, error) {
	opts = opts.withDefaults()
	l := &Ledger{
		store:   store,
		opts:    opts,
		in:      make(chan pending, opts.Depth),
		keys:    make(map[string]string),
		flushed: make(chan struct{}),
	}
	if err := l.recover(); err != nil {
		return nil, err
	}
	if err := l.loadIndex(); err != nil {
		return nil, err
	}
	l.wg.Add(1)
	go l.loop()
	return l, nil
}

// recover reads HEAD and rolls forward committed-but-unheaded batches.
func (l *Ledger) recover() error {
	data, err := l.store.Get(headKey)
	switch err {
	case nil:
		var h head
		if uerr := json.Unmarshal(data, &h); uerr != nil {
			return fmt.Errorf("ledger: corrupt HEAD: %w", uerr)
		}
		if h.Schema != SchemaVersion {
			return fmt.Errorf("ledger: HEAD schema %q, want %q", h.Schema, SchemaVersion)
		}
		l.seq, l.root = h.Seq, h.Root
	case ErrNotFound:
		// Fresh (or torn-before-first-HEAD) ledger: seq 0.
	default:
		return err
	}
	// Roll forward: a manifest at seq+1 whose chain link matches the
	// current tip is a batch that committed fully except for its index
	// entries and/or HEAD. Rebuild both from the manifest (idempotent).
	for {
		data, err := l.store.Get(batchKey(l.seq + 1))
		if err == ErrNotFound {
			return nil
		}
		if err != nil {
			return err
		}
		var m manifest
		if json.Unmarshal(data, &m) != nil || m.Schema != SchemaVersion ||
			m.Seq != l.seq+1 || m.Prev != l.root {
			// Orphan or torn manifest past the tip: not part of the
			// committed chain. Leave it; the next commit overwrites it.
			return nil
		}
		if err := l.writeIndexEntries(m); err != nil {
			return err
		}
		if err := l.writeHead(m.Seq, m.Root); err != nil {
			return err
		}
		l.seq, l.root = m.Seq, m.Root
	}
}

// loadIndex builds the in-memory dedup map from the stored index.
// Unreadable entries are skipped, not fatal: the worst outcome is a
// missed dedup (the cell re-runs and re-appends), and Verify — not
// Open — is the auditor that flags them.
func (l *Ledger) loadIndex() error {
	keys, err := l.store.List(indexPrefix)
	if err != nil {
		return err
	}
	for _, k := range keys {
		data, err := l.store.Get(k)
		if err != nil {
			continue
		}
		var e indexEntry
		if json.Unmarshal(data, &e) != nil || e.Schema != SchemaVersion || e.Seq > l.seq {
			continue
		}
		l.keys[e.Key] = e.Hash
	}
	return nil
}

// Append implements results.Sink: accept one record for the next
// batch. An identical (key, payload) pair already present — committed
// or in flight — is a dedup hit: counted, not re-stored. A differing
// payload for an existing key is appended; the index is last-wins,
// matching the JSONL log's resume semantics. Append after Close
// returns results.ErrClosed; a commit failure is sticky and surfaces
// on every subsequent call.
func (l *Ledger) Append(rec results.Record) error {
	content := contentHash(rec.Payload)
	hexContent := hexHash(content)

	l.closeMu.RLock()
	defer l.closeMu.RUnlock()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return results.ErrClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	if l.keys[rec.Key] == hexContent {
		l.stats.DedupHits++
		l.mu.Unlock()
		return nil
	}
	l.keys[rec.Key] = hexContent
	l.stats.Appends++
	l.mu.Unlock()

	payload := make([]byte, len(rec.Payload))
	copy(payload, rec.Payload)
	l.in <- pending{key: rec.Key, content: content, payload: payload}
	return nil
}

// Has reports whether key holds a committed or in-flight record — the
// dedup query a shared-results cache answers before scheduling work.
func (l *Ledger) Has(key string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.keys[key]
	return ok
}

// Get returns the latest committed payload for key. In-flight records
// (appended, not yet committed) are not visible; call Flush first if
// read-your-writes matters.
func (l *Ledger) Get(key string) ([]byte, error) {
	data, err := l.store.Get(indexKey(key))
	if err != nil {
		return nil, err
	}
	var e indexEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("ledger: corrupt index entry for %q: %w", key, err)
	}
	content, ok := parseHash(e.Hash)
	if !ok {
		return nil, fmt.Errorf("ledger: corrupt index hash for %q", key)
	}
	return l.store.Get(recordKey(content))
}

// Records implements results.Reader: every committed record in append
// order (batch by batch, leaf by leaf). A payload whose content hash
// no longer matches its manifest entry is an error — corruption must
// never silently feed a resume.
func (l *Ledger) Records() ([]results.Record, error) {
	l.mu.Lock()
	tip := l.seq
	l.mu.Unlock()
	var out []results.Record
	for seq := uint64(1); seq <= tip; seq++ {
		m, err := l.manifestAt(seq)
		if err != nil {
			return nil, err
		}
		for _, e := range m.Entries {
			content, ok := parseHash(e.Hash)
			if !ok {
				return nil, fmt.Errorf("ledger: batch %d: corrupt hash for key %q", seq, e.Key)
			}
			payload, err := l.store.Get(recordKey(content))
			if err != nil {
				return nil, fmt.Errorf("ledger: batch %d: record for key %q: %w", seq, e.Key, err)
			}
			if contentHash(payload) != content {
				return nil, fmt.Errorf("ledger: batch %d: record for key %q fails its content hash", seq, e.Key)
			}
			out = append(out, results.Record{Key: e.Key, Payload: payload})
		}
	}
	return out, nil
}

func (l *Ledger) manifestAt(seq uint64) (manifest, error) {
	var m manifest
	data, err := l.store.Get(batchKey(seq))
	if err != nil {
		return m, fmt.Errorf("ledger: batch %d: %w", seq, err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("ledger: batch %d: corrupt manifest: %w", seq, err)
	}
	if m.Schema != SchemaVersion {
		return m, fmt.Errorf("ledger: batch %d: schema %q, want %q", seq, m.Schema, SchemaVersion)
	}
	return m, nil
}

// HeadRoot returns the chain tip: the last committed batch's root (""
// while nothing is committed). Noting it externally is what makes
// tail-rewrites evident; psverify prints it on every clean run.
func (l *Ledger) HeadRoot() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.root
}

// Seq returns the last committed batch number.
func (l *Ledger) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// LedgerStats snapshots activity counters since Open.
func (l *Ledger) LedgerStats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Err surfaces a sticky commit failure, if any.
func (l *Ledger) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Flush blocks until every record accepted before the call is
// committed (or a commit error is sticky).
func (l *Ledger) Flush() error {
	// Drain marker: a zero-key pending with nil payload forces the
	// committer to emit the open batch and signal.
	l.closeMu.RLock()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		l.closeMu.RUnlock()
		return l.Err()
	}
	done := make(chan struct{})
	l.mu.Unlock()
	l.in <- pending{payload: nil, flushDone: done}
	l.closeMu.RUnlock()
	<-done
	return l.Err()
}

// Lag implements results.Lagger: records accepted but not yet handed
// to the committer — a lower bound on durability lag (records in the
// committer's open batch are not counted; Flush bounds those too).
func (l *Ledger) Lag() int { return len(l.in) }

// Close implements results.Sink: stop intake, commit the final partial
// batch, and return any sticky commit error. Idempotent.
func (l *Ledger) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		l.wg.Wait()
		return l.Err()
	}
	l.closed = true
	l.mu.Unlock()
	// Wait out in-flight Appends (they hold closeMu.RLock across their
	// channel send), then close intake so the committer drains and exits.
	l.closeMu.Lock()
	close(l.in)
	l.closeMu.Unlock()
	l.wg.Wait()
	return l.Err()
}

// loop is the single committer goroutine: the size+deadline batcher
// (the internal/service/batcher.go pattern — a deadline timer armed
// when a batch opens, flush on size or deadline, whichever wins).
func (l *Ledger) loop() {
	defer l.wg.Done()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	var batch []pending
	emit := func() {
		if len(batch) == 0 {
			return
		}
		l.commit(batch)
		batch = nil
	}
	for {
		select {
		case p, ok := <-l.in:
			if !ok {
				emit()
				return
			}
			if p.flushDone != nil {
				emit()
				close(p.flushDone)
				continue
			}
			if len(batch) == 0 {
				// A batch just opened: arm its flush deadline.
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(l.opts.BatchDelay)
			}
			batch = append(batch, p)
			if len(batch) >= l.opts.BatchSize {
				emit()
			}
		case <-timer.C:
			emit()
		}
	}
}

// commit writes one batch: blobs, manifest, index entries, HEAD — in
// that order, so every crash window is recoverable (see the package
// comment). A failure is sticky: recorded once, and later batches are
// dropped rather than committed onto a broken tip.
func (l *Ledger) commit(batch []pending) {
	l.mu.Lock()
	if l.err != nil {
		l.mu.Unlock()
		return
	}
	seq, prev := l.seq+1, l.root
	l.mu.Unlock()

	fail := func(err error) {
		l.mu.Lock()
		if l.err == nil {
			l.err = fmt.Errorf("ledger: commit batch %d: %w", seq, err)
		}
		l.mu.Unlock()
	}

	m := manifest{Schema: SchemaVersion, Seq: seq, Prev: prev}
	leaves := make([][32]byte, len(batch))
	for i, p := range batch {
		if err := l.store.Put(recordKey(p.content), p.payload); err != nil {
			fail(err)
			return
		}
		m.Entries = append(m.Entries, manifestEntry{Key: p.key, Hash: hexHash(p.content)})
		leaves[i] = leafHash(p.content)
	}
	m.Root = hexHash(merkleRoot(leaves))
	data, err := json.Marshal(m)
	if err != nil {
		fail(err)
		return
	}
	if err := l.store.Put(batchKey(seq), data); err != nil {
		fail(err)
		return
	}
	if err := l.writeIndexEntries(m); err != nil {
		fail(err)
		return
	}
	if err := l.writeHead(seq, m.Root); err != nil {
		fail(err)
		return
	}
	l.mu.Lock()
	l.seq, l.root = seq, m.Root
	l.stats.Batches++
	l.mu.Unlock()
}

// writeIndexEntries stores one index entry (with inclusion proof) per
// manifest entry. Duplicate keys within a batch resolve last-wins, the
// same rule the JSONL log's resume index applies.
func (l *Ledger) writeIndexEntries(m manifest) error {
	leaves := make([][32]byte, len(m.Entries))
	for i, e := range m.Entries {
		content, ok := parseHash(e.Hash)
		if !ok {
			return fmt.Errorf("ledger: batch %d: corrupt entry hash for %q", m.Seq, e.Key)
		}
		leaves[i] = leafHash(content)
	}
	// last-wins: walk forward, later writes overwrite earlier ones.
	for i, e := range m.Entries {
		entry := indexEntry{
			Schema: SchemaVersion,
			Key:    e.Key,
			Seq:    m.Seq,
			Leaf:   i,
			Hash:   e.Hash,
			Proof:  merkleProof(leaves, i),
		}
		data, err := json.Marshal(entry)
		if err != nil {
			return err
		}
		if err := l.store.Put(indexKey(e.Key), data); err != nil {
			return err
		}
	}
	return nil
}

func (l *Ledger) writeHead(seq uint64, root string) error {
	data, err := json.Marshal(head{Schema: SchemaVersion, Seq: seq, Root: root})
	if err != nil {
		return err
	}
	return l.store.Put(headKey, data)
}
