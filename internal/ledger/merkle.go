package ledger

import (
	"crypto/sha256"
	"encoding/hex"
)

// The ledger's Merkle tree is built over the content hashes of a
// batch's record payloads, with domain separation between leaves and
// interior nodes (a leaf hash can never be replayed as a node hash or
// vice versa):
//
//	content  = SHA-256(payload)                  — the blob address
//	leaf     = SHA-256(0x00 || content)
//	node     = SHA-256(0x01 || left || right)
//
// An odd node at any level is promoted to the next level unchanged.
// Building the tree over content hashes rather than payloads means a
// batch manifest (which lists every entry's content hash) is enough to
// recompute the root and every inclusion proof without touching the
// record blobs — verification separates "is the committed set intact"
// (manifest vs. roots) from "are the blobs intact" (blob vs. content
// hash).

const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

// contentHash is the blob address of a payload.
func contentHash(payload []byte) [32]byte {
	return sha256.Sum256(payload)
}

// leafHash domain-separates a content hash into a Merkle leaf.
func leafHash(content [32]byte) [32]byte {
	var buf [33]byte
	buf[0] = leafPrefix
	copy(buf[1:], content[:])
	return sha256.Sum256(buf[:])
}

// nodeHash combines two children into their parent.
func nodeHash(left, right [32]byte) [32]byte {
	var buf [65]byte
	buf[0] = nodePrefix
	copy(buf[1:], left[:])
	copy(buf[33:], right[:])
	return sha256.Sum256(buf[:])
}

// ProofStep is one level of an inclusion proof: the sibling's hash and
// which side it sits on. Steps run leaf-to-root; a level where the
// climbing node was promoted without a sibling contributes no step.
type ProofStep struct {
	// Hash is the hex-encoded sibling hash.
	Hash string `json:"h"`
	// Left reports that the sibling is the left child (the climbing
	// node is the right one).
	Left bool `json:"left,omitempty"`
}

// merkleRoot folds a batch's leaves into its root. Empty batches have
// no root (the ledger never commits one); a single leaf is its own
// root.
func merkleRoot(leaves [][32]byte) [32]byte {
	if len(leaves) == 0 {
		return [32]byte{}
	}
	level := make([][32]byte, len(leaves))
	copy(level, leaves)
	for len(level) > 1 {
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, nodeHash(level[i], level[i+1]))
			} else {
				next = append(next, level[i]) // odd node: promote
			}
		}
		level = next
	}
	return level[0]
}

// merkleProof returns leaf i's inclusion proof: the sibling at every
// level on the way to the root.
func merkleProof(leaves [][32]byte, i int) []ProofStep {
	if i < 0 || i >= len(leaves) {
		return nil
	}
	level := make([][32]byte, len(leaves))
	copy(level, leaves)
	var proof []ProofStep
	for len(level) > 1 {
		sib := i ^ 1
		if sib < len(level) {
			proof = append(proof, ProofStep{
				Hash: hex.EncodeToString(level[sib][:]),
				Left: sib < i,
			})
		}
		next := level[:0]
		for j := 0; j < len(level); j += 2 {
			if j+1 < len(level) {
				next = append(next, nodeHash(level[j], level[j+1]))
			} else {
				next = append(next, level[j])
			}
		}
		level = next
		i /= 2
	}
	return proof
}

// verifyProof replays a proof from a leaf and reports whether it lands
// on root. Malformed steps (bad hex, wrong length) fail verification;
// nothing panics on adversarial input — FuzzProof pins that.
func verifyProof(leaf [32]byte, proof []ProofStep, root [32]byte) bool {
	h := leaf
	for _, step := range proof {
		sib, err := hex.DecodeString(step.Hash)
		if err != nil || len(sib) != 32 {
			return false
		}
		var s [32]byte
		copy(s[:], sib)
		if step.Left {
			h = nodeHash(s, h)
		} else {
			h = nodeHash(h, s)
		}
	}
	return h == root
}

// hexHash renders a hash for manifests and reports.
func hexHash(h [32]byte) string { return hex.EncodeToString(h[:]) }

// parseHash decodes a hex hash, reporting malformed input instead of
// panicking (manifest and index files are attacker-controlled as far
// as verification is concerned).
func parseHash(s string) ([32]byte, bool) {
	var h [32]byte
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != 32 {
		return h, false
	}
	copy(h[:], b)
	return h, true
}
