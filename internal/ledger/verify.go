package ledger

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Problem is one verification finding, localized as tightly as the
// damage allows: a record-level problem names its cell key, a
// batch-level one its sequence number.
type Problem struct {
	// Key is the damaged record's cell key ("" for batch/head-level
	// problems).
	Key string `json:"key,omitempty"`
	// Seq is the batch involved (0 for head-level problems).
	Seq uint64 `json:"seq,omitempty"`
	// Reason says what failed: "record corrupted", "record missing",
	// "root mismatch", "chain broken", "proof invalid", ...
	Reason string `json:"reason"`
}

func (p Problem) String() string {
	s := p.Reason
	if p.Seq != 0 {
		s += fmt.Sprintf(" batch=%d", p.Seq)
	}
	if p.Key != "" {
		s += fmt.Sprintf(" key=%q", p.Key)
	}
	return s
}

// VerifyReport is a full audit's outcome.
type VerifyReport struct {
	// HeadSeq/HeadRoot echo the chain tip the audit verified against.
	HeadSeq  uint64 `json:"head_seq"`
	HeadRoot string `json:"head_root,omitempty"`
	// Batches, Records, Proofs count what was checked.
	Batches int `json:"batches"`
	Records int `json:"records"`
	Proofs  int `json:"proofs"`
	// Orphans counts store blobs past the committed tip (torn tail of
	// a crashed commit) — tolerated, not failures.
	Orphans int `json:"orphans,omitempty"`
	// Problems is every finding, in (seq, key) order.
	Problems []Problem `json:"problems,omitempty"`
}

// OK reports a clean audit.
func (r *VerifyReport) OK() bool { return len(r.Problems) == 0 }

// Verify replays the whole ledger in store: the batch chain against
// HEAD, every batch root against its recomputed Merkle tree, every
// record blob against its content hash, and every stored inclusion
// proof against its batch root. workers bounds the parallel
// record-hashing stage (<=0 = GOMAXPROCS). Verification never mutates
// the store, and a corrupted blob is reported — with its cell key —
// rather than returned as an error, so one damaged record cannot mask
// the rest of the audit.
func Verify(store Store, workers int) (*VerifyReport, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := &VerifyReport{}
	addProblem := func(p Problem) { rep.Problems = append(rep.Problems, p) }

	// HEAD: the chain tip everything is checked against.
	batches, err := store.List(batchPrefix)
	if err != nil {
		return nil, err
	}
	headData, err := store.Get(headKey)
	switch {
	case err == ErrNotFound:
		if len(batches) > 0 {
			addProblem(Problem{Reason: "HEAD missing with committed batches present (truncated)"})
		}
		return rep, nil // empty ledger: vacuously clean
	case err != nil:
		return nil, err
	}
	var h head
	if json.Unmarshal(headData, &h) != nil || h.Schema != SchemaVersion {
		addProblem(Problem{Reason: "HEAD corrupt or wrong schema"})
		return rep, nil
	}
	rep.HeadSeq, rep.HeadRoot = h.Seq, h.Root

	// Walk the chain: recompute each batch's root, check linkage.
	prev := ""
	type recordCheck struct {
		key  string
		seq  uint64
		hash string
	}
	var checks []recordCheck
	for seq := uint64(1); seq <= h.Seq; seq++ {
		data, err := store.Get(batchKey(seq))
		if err == ErrNotFound {
			addProblem(Problem{Seq: seq, Reason: "batch manifest missing (truncated)"})
			prev = "" // linkage beyond a hole is unverifiable; keep scanning roots
			continue
		}
		if err != nil {
			return nil, err
		}
		var m manifest
		if json.Unmarshal(data, &m) != nil || m.Schema != SchemaVersion || m.Seq != seq {
			addProblem(Problem{Seq: seq, Reason: "batch manifest corrupt"})
			prev = ""
			continue
		}
		rep.Batches++
		if prev != "" && m.Prev != prev {
			addProblem(Problem{Seq: seq, Reason: "chain broken (prev root mismatch)"})
		}
		leaves := make([][32]byte, len(m.Entries))
		ok := true
		for i, e := range m.Entries {
			content, valid := parseHash(e.Hash)
			if !valid {
				addProblem(Problem{Seq: seq, Key: e.Key, Reason: "manifest entry hash corrupt"})
				ok = false
				continue
			}
			leaves[i] = leafHash(content)
			checks = append(checks, recordCheck{key: e.Key, seq: seq, hash: e.Hash})
		}
		if ok && hexHash(merkleRoot(leaves)) != m.Root {
			addProblem(Problem{Seq: seq, Reason: "root mismatch (manifest root does not match its entries)"})
		}
		prev = m.Root
	}
	if prev != "" && prev != h.Root {
		addProblem(Problem{Seq: h.Seq, Reason: "HEAD root does not match last batch"})
	}
	for _, b := range batches {
		var seq uint64
		if _, err := fmt.Sscanf(b, batchPrefix+"%d", &seq); err == nil && seq > h.Seq {
			rep.Orphans++
		}
	}

	// Record blobs: hash every committed payload, in parallel.
	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		next = make(chan recordCheck)
	)
	found := make([]Problem, 0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range next {
				content, _ := parseHash(c.hash) // validated above
				payload, err := store.Get(recordKey(content))
				var p *Problem
				switch {
				case err == ErrNotFound:
					p = &Problem{Key: c.key, Seq: c.seq, Reason: "record missing (truncated)"}
				case err != nil:
					p = &Problem{Key: c.key, Seq: c.seq, Reason: "record unreadable: " + err.Error()}
				case contentHash(payload) != content:
					p = &Problem{Key: c.key, Seq: c.seq, Reason: "record corrupted (content hash mismatch)"}
				}
				mu.Lock()
				rep.Records++
				if p != nil {
					found = append(found, *p)
				}
				mu.Unlock()
			}
		}()
	}
	for _, c := range checks {
		next <- c
	}
	close(next)
	wg.Wait()
	rep.Problems = append(rep.Problems, found...)

	// Index entries: every stored inclusion proof must verify against
	// its batch's committed root.
	idxKeys, err := store.List(indexPrefix)
	if err != nil {
		return nil, err
	}
	roots := make(map[uint64][32]byte)
	for seq := uint64(1); seq <= h.Seq; seq++ {
		if data, err := store.Get(batchKey(seq)); err == nil {
			var m manifest
			if json.Unmarshal(data, &m) == nil {
				if r, ok := parseHash(m.Root); ok {
					roots[seq] = r
				}
			}
		}
	}
	for _, ik := range idxKeys {
		data, err := store.Get(ik)
		if err != nil {
			addProblem(Problem{Reason: "index entry unreadable: " + ik})
			continue
		}
		var e indexEntry
		if json.Unmarshal(data, &e) != nil || e.Schema != SchemaVersion {
			addProblem(Problem{Reason: "index entry corrupt: " + ik})
			continue
		}
		if e.Seq > h.Seq {
			rep.Orphans++ // torn tail: index written, HEAD not yet
			continue
		}
		root, ok := roots[e.Seq]
		if !ok {
			addProblem(Problem{Key: e.Key, Seq: e.Seq, Reason: "index references missing batch"})
			continue
		}
		content, ok := parseHash(e.Hash)
		if !ok {
			addProblem(Problem{Key: e.Key, Seq: e.Seq, Reason: "index entry hash corrupt"})
			continue
		}
		rep.Proofs++
		if !verifyProof(leafHash(content), e.Proof, root) {
			addProblem(Problem{Key: e.Key, Seq: e.Seq, Reason: "inclusion proof invalid"})
		}
	}

	sort.Slice(rep.Problems, func(a, b int) bool {
		if rep.Problems[a].Seq != rep.Problems[b].Seq {
			return rep.Problems[a].Seq < rep.Problems[b].Seq
		}
		return rep.Problems[a].Key < rep.Problems[b].Key
	})
	return rep, nil
}
