package obs

import (
	"bufio"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
)

// Sink consumes structured events. Implementations must be safe for
// concurrent Emit calls: a campaign's parallel runs share one sink.
type Sink interface {
	Emit(Event)
}

// MemSink retains every emitted event in memory — the assertion seam
// for tests.
type MemSink struct {
	mu     sync.Mutex
	events []Event
}

// NewMemSink returns an empty in-memory sink.
func NewMemSink() *MemSink { return &MemSink{} }

// Emit implements Sink.
func (s *MemSink) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Events returns a copy of all recorded events in emission order.
func (s *MemSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Kind returns the recorded events of one kind, in order.
func (s *MemSink) Kind(kind string) []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Event
	for _, e := range s.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// CountKind reports how many events of one kind were recorded.
func (s *MemSink) CountKind(kind string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// Kinds returns the distinct event kinds recorded and their counts.
func (s *MemSink) Kinds() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int)
	for _, e := range s.events {
		out[e.Kind]++
	}
	return out
}

// Len reports the number of recorded events.
func (s *MemSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// Reset discards all recorded events.
func (s *MemSink) Reset() {
	s.mu.Lock()
	s.events = nil
	s.mu.Unlock()
}

// JSONLSink serializes events as one JSON object per line:
//
//	{"t_us":1234,"run":7,"kind":"sample","scrout":0.4,"set":0}
//
// t_us is virtual time in microseconds; run is present only when the
// recorder was tagged with SetRun; remaining keys are the event's
// fields. Writes are buffered; call Close (or Flush) to drain.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	buf []byte
}

// NewJSONLSink wraps w. If w is also an io.Closer, Close closes it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// OpenJSONL creates (truncating) a JSONL trace file at path.
func OpenJSONL(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewJSONLSink(f), nil
}

// Emit implements Sink.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.buf[:0]
	b = append(b, `{"t_us":`...)
	b = strconv.AppendInt(b, e.T.Microseconds(), 10)
	if e.RunValid {
		b = append(b, `,"run":`...)
		b = strconv.AppendInt(b, e.Run, 10)
	}
	b = append(b, `,"kind":`...)
	b = strconv.AppendQuote(b, e.Kind)
	for _, f := range e.Fields {
		b = append(b, ',')
		b = strconv.AppendQuote(b, f.Key)
		b = append(b, ':')
		switch f.kind {
		case fieldStr:
			b = strconv.AppendQuote(b, f.str)
		case fieldF64:
			b = strconv.AppendFloat(b, f.f, 'g', -1, 64)
		case fieldBool:
			b = strconv.AppendBool(b, f.num != 0)
		default:
			b = strconv.AppendInt(b, f.num, 10)
		}
	}
	b = append(b, '}', '\n')
	s.buf = b
	s.w.Write(b) // bufio latches the first error; surfaced by Close
}

// Flush drains the write buffer.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// Close flushes and closes the underlying writer when it is closable.
func (s *JSONLSink) Close() error {
	err := s.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Totals aggregates metric snapshots across runs — the campaign-level
// counterpart of a per-run Snapshot. Safe for concurrent use.
type Totals struct {
	mu       sync.Mutex
	runs     int
	counters map[string]int64
}

// NewTotals returns an empty aggregator.
func NewTotals() *Totals { return &Totals{counters: make(map[string]int64)} }

// Add folds one run's snapshot into the totals (counters sum; gauges,
// being instantaneous, are not aggregated).
func (t *Totals) Add(s Snapshot) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.runs++
	for k, v := range s.Counters {
		t.counters[k] += v
	}
}

// Runs reports how many snapshots have been folded in.
func (t *Totals) Runs() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.runs
}

// Counter reads an aggregated counter.
func (t *Totals) Counter(name string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters[name]
}

// Names returns the counter names seen so far, sorted.
func (t *Totals) Names() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.counters))
	for k := range t.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
