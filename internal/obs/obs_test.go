package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestFieldConstructors(t *testing.T) {
	cases := []struct {
		f   Field
		i   int64
		f64 float64
		s   string
	}{
		{Int("n", 42), 42, 42, ""},
		{F64("x", 0.25), 0, 0.25, ""},
		{Str("name", "lu"), 0, 0, "lu"},
		{Bool("on", true), 1, 1, ""},
		{Bool("off", false), 0, 0, ""},
		{Dur("d_us", 1500*time.Microsecond), 1500, 1500, ""},
	}
	for _, c := range cases {
		if got := c.f.IntValue(); got != c.i {
			t.Errorf("%s: IntValue = %d, want %d", c.f.Key, got, c.i)
		}
		if got := c.f.F64Value(); got != c.f64 {
			t.Errorf("%s: F64Value = %g, want %g", c.f.Key, got, c.f64)
		}
		if got := c.f.StrValue(); got != c.s {
			t.Errorf("%s: StrValue = %q, want %q", c.f.Key, got, c.s)
		}
	}
}

func TestDisabledRecorder(t *testing.T) {
	r := Disabled
	if r.Enabled() {
		t.Fatal("Disabled.Enabled() = true")
	}
	r.Count("c", 5)
	r.Gauge("g", 1.5)
	r.Event(time.Second, "kind", Int("n", 1))
	if r.Counter("c") != 0 {
		t.Errorf("Disabled counter counted: %d", r.Counter("c"))
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 {
		t.Errorf("Disabled snapshot non-empty: %+v", s)
	}
}

func TestBasicMetricsOnly(t *testing.T) {
	r := New(nil)
	if r.Enabled() {
		t.Fatal("metrics-only recorder reports Enabled")
	}
	r.Count("c", 2)
	r.Count("c", 3)
	r.Gauge("g", 0.5)
	r.Event(time.Second, "dropped", Int("n", 1)) // no sink: silently dropped
	if got := r.Counter("c"); got != 5 {
		t.Errorf("Counter = %d, want 5", got)
	}
	s := r.Snapshot()
	if s.Counter("c") != 5 || s.Gauge("g") != 0.5 {
		t.Errorf("snapshot = %+v", s)
	}
	// The snapshot is a copy: later mutation must not leak into it.
	r.Count("c", 100)
	r.Gauge("g", 9)
	if s.Counter("c") != 5 || s.Gauge("g") != 0.5 {
		t.Errorf("snapshot aliased live maps: %+v", s)
	}
}

func TestBasicEventsAndMemSink(t *testing.T) {
	sink := NewMemSink()
	r := New(sink)
	if !r.Enabled() {
		t.Fatal("recorder with sink reports disabled")
	}
	r.Event(time.Second, "sample", F64("scrout", 0.4), Int("set", 0))
	r.Event(2*time.Second, "sample", F64("scrout", 0.1), Int("set", 1))
	r.Event(3*time.Second, "doubling", Dur("interval_us", 800*time.Millisecond))

	if sink.Len() != 3 {
		t.Fatalf("Len = %d, want 3", sink.Len())
	}
	if n := sink.CountKind("sample"); n != 2 {
		t.Errorf("CountKind(sample) = %d, want 2", n)
	}
	if kinds := sink.Kinds(); kinds["sample"] != 2 || kinds["doubling"] != 1 {
		t.Errorf("Kinds = %v", kinds)
	}
	ev := sink.Kind("sample")[1]
	if ev.T != 2*time.Second {
		t.Errorf("event T = %v", ev.T)
	}
	if ev.RunValid {
		t.Error("RunValid true without SetRun")
	}
	f, ok := ev.Field("scrout")
	if !ok || f.F64Value() != 0.1 {
		t.Errorf("scrout field = %+v ok=%v", f, ok)
	}
	if _, ok := ev.Field("missing"); ok {
		t.Error("lookup of missing field succeeded")
	}

	sink.Reset()
	if sink.Len() != 0 {
		t.Errorf("Len after Reset = %d", sink.Len())
	}
}

func TestSetRunTagsEvents(t *testing.T) {
	sink := NewMemSink()
	r := New(sink)
	r.SetRun(7)
	r.Event(0, "sample")
	ev := sink.Events()[0]
	if !ev.RunValid || ev.Run != 7 {
		t.Errorf("event run = %d valid=%v, want 7 true", ev.Run, ev.RunValid)
	}
}

func TestJSONLSinkParseable(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	r := New(sink)
	r.SetRun(3)
	r.Event(1500*time.Microsecond, "sample",
		F64("scrout", 0.25), Int("set", 1), Str("bench", "LU \"D\""), Bool("susp", true))
	r.Event(2*time.Second, "doubling", Dur("interval_us", 800*time.Millisecond))
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not valid JSON: %v\n%s", err, lines[0])
	}
	want := map[string]any{
		"t_us": 1500.0, "run": 3.0, "kind": "sample",
		"scrout": 0.25, "set": 1.0, "bench": `LU "D"`, "susp": true,
	}
	for k, v := range want {
		if first[k] != v {
			t.Errorf("line 0 key %q = %v (%T), want %v", k, first[k], first[k], v)
		}
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 1 not valid JSON: %v", err)
	}
	if second["t_us"] != 2_000_000.0 || second["interval_us"] != 800_000.0 {
		t.Errorf("line 1 = %v", second)
	}
}

func TestJSONLSinkOmitsRunWithoutSetRun(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	New(sink).Event(0, "k")
	sink.Flush()
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["run"]; ok {
		t.Errorf(`"run" key present without SetRun: %s`, buf.String())
	}
}

func TestTotals(t *testing.T) {
	tot := NewTotals()
	a := New(nil)
	a.Count("monitor.samples", 10)
	a.Count("engine.spawns", 4)
	b := New(nil)
	b.Count("monitor.samples", 7)
	tot.Add(a.Snapshot())
	tot.Add(b.Snapshot())
	if tot.Runs() != 2 {
		t.Errorf("Runs = %d", tot.Runs())
	}
	if got := tot.Counter("monitor.samples"); got != 17 {
		t.Errorf("samples total = %d, want 17", got)
	}
	if got := tot.Counter("engine.spawns"); got != 4 {
		t.Errorf("spawns total = %d, want 4", got)
	}
	names := tot.Names()
	if len(names) != 2 || names[0] != "engine.spawns" || names[1] != "monitor.samples" {
		t.Errorf("Names = %v", names)
	}
}

// The zero-allocation contract: with events disabled, neither the
// Disabled recorder nor a metrics-only Basic allocates on the hot path,
// even for guarded event calls.
func TestZeroAllocWhenDisabled(t *testing.T) {
	if a := testing.AllocsPerRun(100, func() {
		Disabled.Count("monitor.samples", 1)
		Disabled.Gauge("monitor.q", 0.5)
		if Disabled.Enabled() {
			Disabled.Event(0, "sample", F64("scrout", 0.5))
		}
	}); a != 0 {
		t.Errorf("Disabled recorder: %.1f allocs/op, want 0", a)
	}

	r := New(nil)
	// Warm the maps so steady-state runs measure no map-growth allocs.
	r.Count("monitor.samples", 1)
	r.Gauge("monitor.q", 0.1)
	if a := testing.AllocsPerRun(100, func() {
		r.Count("monitor.samples", 1)
		r.Gauge("monitor.q", 0.5)
		if r.Enabled() {
			r.Event(0, "sample", F64("scrout", 0.5))
		}
	}); a != 0 {
		t.Errorf("metrics-only Basic: %.1f allocs/op, want 0", a)
	}
}
