// Package obs is the observability layer shared by the simulation
// engine, the ParaStack monitor, and the experiment harness: named
// counters and gauges for cheap always-on metrics, plus structured
// events for opt-in tracing.
//
// The design goal is zero allocation on hot paths when event recording
// is disabled. Counters and gauges are plain map operations on constant
// keys (no allocation); structured events carry variadic Fields, so
// instrumented code must guard event construction with Enabled():
//
//	rec.Count(core.CtrSamples, 1)           // always cheap
//	if rec.Enabled() {
//	    rec.Event(now, "sample", obs.F64("scrout", v))
//	}
//
// Two implementations exist: Disabled (drops everything, the zero-cost
// default) and Basic (counts always, forwards events to a Sink when one
// is attached). Sinks are in sink.go: MemSink for tests, JSONLSink for
// trace files, Totals for cross-run aggregation.
package obs

import "time"

// fieldKind discriminates the value stored in a Field.
type fieldKind uint8

const (
	fieldInt fieldKind = iota
	fieldF64
	fieldStr
	fieldBool
)

// Field is one key/value pair of a structured event. Construct Fields
// with Str, Int, F64, Bool, or Dur; the zero value marshals as 0.
type Field struct {
	Key  string
	kind fieldKind
	num  int64
	f    float64
	str  string
}

// Str returns a string-valued field.
func Str(key, v string) Field { return Field{Key: key, kind: fieldStr, str: v} }

// Int returns an integer-valued field.
func Int(key string, v int64) Field { return Field{Key: key, kind: fieldInt, num: v} }

// F64 returns a float-valued field.
func F64(key string, v float64) Field { return Field{Key: key, kind: fieldF64, f: v} }

// Bool returns a boolean-valued field.
func Bool(key string, v bool) Field {
	var n int64
	if v {
		n = 1
	}
	return Field{Key: key, kind: fieldBool, num: n}
}

// Dur returns a duration field encoded as integer microseconds; by
// convention its key ends in "_us".
func Dur(key string, d time.Duration) Field { return Int(key, d.Microseconds()) }

// IntValue returns the field's integer value (booleans are 0/1).
func (f Field) IntValue() int64 { return f.num }

// F64Value returns the field's float value, converting integers.
func (f Field) F64Value() float64 {
	if f.kind == fieldF64 {
		return f.f
	}
	return float64(f.num)
}

// StrValue returns the field's string value ("" for non-strings).
func (f Field) StrValue() string { return f.str }

// Event is one structured trace record on the virtual clock.
type Event struct {
	// T is the virtual time the event was recorded at.
	T time.Duration
	// Kind names the event type ("sample", "doubling", "proc_spawn", …).
	Kind string
	// Run tags the originating run when the recorder was given a run id
	// (RunValid reports whether it is meaningful); campaigns share one
	// sink across many concurrent runs.
	Run      int64
	RunValid bool
	// Fields are the event's key/value payload.
	Fields []Field
}

// Field returns the named field and whether it exists.
func (e Event) Field(key string) (Field, bool) {
	for _, f := range e.Fields {
		if f.Key == key {
			return f, true
		}
	}
	return Field{}, false
}

// Snapshot is a point-in-time copy of a recorder's metrics.
type Snapshot struct {
	Counters map[string]int64
	Gauges   map[string]float64
}

// Counter returns a counter's value (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a gauge's value (0 when absent).
func (s Snapshot) Gauge(name string) float64 { return s.Gauges[name] }

// Recorder is the instrumentation seam. Count and Gauge are always
// cheap (no allocation with constant keys); Event allocates its field
// slice, so callers on hot paths guard it with Enabled.
type Recorder interface {
	// Enabled reports whether structured events are being consumed.
	// Counters and gauges are maintained regardless (except by the
	// Disabled recorder, which drops everything).
	Enabled() bool
	// Count adds delta to the named counter.
	Count(name string, delta int64)
	// Gauge sets the named gauge.
	Gauge(name string, value float64)
	// Event records one structured event.
	Event(t time.Duration, kind string, fields ...Field)
	// Counter reads a counter's current value.
	Counter(name string) int64
	// Snapshot copies all counters and gauges.
	Snapshot() Snapshot
}

// nop is the recorder that drops everything at zero cost.
type nop struct{}

func (nop) Enabled() bool                         { return false }
func (nop) Count(string, int64)                   {}
func (nop) Gauge(string, float64)                 {}
func (nop) Event(time.Duration, string, ...Field) {}
func (nop) Counter(string) int64                  { return 0 }
func (nop) Snapshot() Snapshot                    { return Snapshot{} }

// Disabled is the zero-cost recorder: every operation is a no-op.
var Disabled Recorder = nop{}

// Basic is the standard recorder: counters and gauges are always
// maintained; events are forwarded to the sink when one is attached.
// A Basic recorder is single-goroutine (one per simulated run); only
// the Sink behind it needs to be concurrency-safe.
type Basic struct {
	sink     Sink
	run      int64
	runValid bool
	counters map[string]int64
	gauges   map[string]float64
}

// New returns a recorder forwarding events to sink. A nil sink yields a
// metrics-only recorder: Enabled reports false, counters still count.
func New(sink Sink) *Basic {
	return &Basic{
		sink:     sink,
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
	}
}

// SetRun tags every subsequent event with a run id, so one sink can be
// shared by a whole campaign and the trace remains demultiplexable.
func (b *Basic) SetRun(id int64) { b.run, b.runValid = id, true }

// Enabled reports whether a sink is attached.
func (b *Basic) Enabled() bool { return b.sink != nil }

// Count adds delta to the named counter.
func (b *Basic) Count(name string, delta int64) { b.counters[name] += delta }

// Gauge sets the named gauge.
func (b *Basic) Gauge(name string, value float64) { b.gauges[name] = value }

// Counter reads a counter.
func (b *Basic) Counter(name string) int64 { return b.counters[name] }

// Event forwards one structured event to the sink (dropped if none).
func (b *Basic) Event(t time.Duration, kind string, fields ...Field) {
	if b.sink == nil {
		return
	}
	b.sink.Emit(Event{T: t, Kind: kind, Run: b.run, RunValid: b.runValid, Fields: fields})
}

// Snapshot copies the current counters and gauges.
func (b *Basic) Snapshot() Snapshot {
	s := Snapshot{
		Counters: make(map[string]int64, len(b.counters)),
		Gauges:   make(map[string]float64, len(b.gauges)),
	}
	for k, v := range b.counters {
		s.Counters[k] = v
	}
	for k, v := range b.gauges {
		s.Gauges[k] = v
	}
	return s
}
