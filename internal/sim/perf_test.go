package sim

// Hot-path performance regression suite for the engine: event
// scheduling must reuse pooled Event structs (zero steady-state
// allocation) and the sleep/wake handoff must dispatch processes
// without per-sleep closures. The same scenarios back the
// BENCH_engine.json artifact via internal/bench.

import (
	"testing"
	"time"
)

// TestEventPoolZeroAllocSteadyState pins the free-list behavior: once
// the pool and queue have warmed up, scheduling and firing an event
// allocates nothing.
func TestEventPoolZeroAllocSteadyState(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	avg := testing.AllocsPerRun(200, func() {
		e.At(e.Now()+time.Microsecond, fn)
		e.RunAll()
	})
	if avg != 0 {
		t.Fatalf("schedule+fire allocates %v objects/op in steady state, want 0", avg)
	}
}

// TestSleepZeroAllocSteadyState pins the closure-free dispatch path:
// a process sleeping in steady state costs no allocations (the wake
// event comes from the pool and carries the proc directly).
func TestSleepZeroAllocSteadyState(t *testing.T) {
	e := NewEngine(1)
	stop := false
	e.SpawnNow("p", func(p *Proc) {
		for !stop {
			p.Sleep(time.Microsecond)
		}
	})
	const sleepsPerSlice = 1000
	slice := sleepsPerSlice * time.Microsecond
	limit := slice
	e.Run(limit) // warm up: pool, queue, goroutine handoff
	avg := testing.AllocsPerRun(20, func() {
		limit += slice
		e.Run(limit)
	})
	stop = true
	e.RunAll()
	e.Shutdown()
	if perSleep := avg / sleepsPerSlice; perSleep >= 0.01 {
		t.Fatalf("sleep allocates %v objects/op in steady state, want 0", perSleep)
	}
}

// TestEventPoolRecyclesCanceled ensures canceled events are returned to
// the pool when popped, not leaked.
func TestEventPoolRecyclesCanceled(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 10; i++ {
		e.At(time.Millisecond, func() { t.Error("canceled event fired") }).Cancel()
	}
	e.RunAll()
	if got := len(e.shards[0].free); got != 10 {
		t.Fatalf("free list has %d events after draining canceled queue, want 10", got)
	}
	// Rescheduling must reuse them rather than allocating.
	avg := testing.AllocsPerRun(5, func() {
		e.At(e.Now(), func() {})
		e.RunAll()
	})
	if avg != 0 {
		t.Fatalf("reschedule after cancel allocates %v objects/op, want 0", avg)
	}
}

// TestCancelFromOwnCallbackIsNoop pins the documented safety guarantee
// that recycling happens only after the callback returns.
func TestCancelFromOwnCallbackIsNoop(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	var ev *Event
	ev = e.At(time.Millisecond, func() {
		fired++
		ev.Cancel() // e.g. sched.finish canceling the kill event that fired
	})
	e.At(2*time.Millisecond, func() { fired++ })
	e.RunAll()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (self-cancel must not disturb later events)", fired)
	}
}

// TestHeapOrderRandomized cross-checks the hand-inlined sift-up and
// sift-down against the queue's total order on a randomized workload
// with many equal-time events.
func TestHeapOrderRandomized(t *testing.T) {
	e := NewEngine(99)
	const n = 5000
	type fired struct {
		at  Time
		seq int
	}
	var got []fired
	for i := 0; i < n; i++ {
		i := i
		at := time.Duration(e.Rand().Intn(50)) * time.Millisecond
		e.At(at, func() { got = append(got, fired{e.Now(), i}) })
	}
	e.RunAll()
	if len(got) != n {
		t.Fatalf("fired %d events, want %d", len(got), n)
	}
	for i := 1; i < n; i++ {
		if got[i].at < got[i-1].at {
			t.Fatalf("time went backwards at %d: %v after %v", i, got[i].at, got[i-1].at)
		}
		if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
			t.Fatalf("FIFO violated at %d: seq %d fired after %d", i, got[i-1].seq, got[i].seq)
		}
	}
}

// BenchmarkEventScheduling measures the schedule+fire cycle with a
// warm pool and a deep queue (64 concurrent tickers with staggered
// delays exercises both sift directions).
func BenchmarkEventScheduling(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(time.Duration(1+n%37)*time.Microsecond, tick)
		}
	}
	for i := 0; i < 64 && i < b.N; i++ {
		e.After(time.Microsecond, tick)
	}
	b.ResetTimer()
	e.RunAll()
}

// BenchmarkSleepWakeHandoff measures one Suspend/Wake round trip
// between two processes — the pattern behind every blocking MPI call.
func BenchmarkSleepWakeHandoff(b *testing.B) {
	e := NewEngine(1)
	blocked := e.SpawnNow("blocked", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Suspend()
		}
	})
	e.SpawnNow("waker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			blocked.Wake()
			p.Yield() // let the blocked proc run and re-suspend
		}
	})
	b.ResetTimer()
	e.RunAll()
}
