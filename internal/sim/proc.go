package sim

import (
	"fmt"
	"time"

	"parastack/internal/obs"
)

// ProcState describes what a simulated process is currently doing from
// the scheduler's point of view.
type ProcState int

const (
	// ProcReady means the process has been spawned but not yet started.
	ProcReady ProcState = iota
	// ProcRunning means the process goroutine currently holds control.
	ProcRunning
	// ProcSleeping means the process is parked with a wake event queued.
	ProcSleeping
	// ProcSuspended means the process is parked with no wake event; it
	// will only resume when some other process or event calls Wake.
	ProcSuspended
	// ProcDone means the process body returned.
	ProcDone
)

// String implements fmt.Stringer.
func (s ProcState) String() string {
	switch s {
	case ProcReady:
		return "ready"
	case ProcRunning:
		return "running"
	case ProcSleeping:
		return "sleeping"
	case ProcSuspended:
		return "suspended"
	case ProcDone:
		return "done"
	default:
		return fmt.Sprintf("ProcState(%d)", int(s))
	}
}

// Proc is a simulated process: a goroutine that runs only when the
// engine hands it control, and that advances virtual time by sleeping
// or suspending. All Proc methods that block (Sleep, Suspend) must be
// called from the process's own goroutine.
//
// Every process is homed on one shard: its sleep wakes and spawned
// events live in that shard's queue, and in windowed mode the shard is
// the unit that executes independently between horizon barriers.
type Proc struct {
	ID   int
	Name string

	eng     *Engine
	shard   *shard
	localID uint64 // shard-local spawn index (canonical wake stamps)
	resume  chan struct{}
	state   ProcState
	wake    *Event // pending wake event while sleeping
	now     Time   // the process's own virtual clock

	// penalty accumulates virtual time stolen from this process by
	// external activity (e.g. a monitor stack-tracing it). It is
	// consumed by the next Sleep call. This models ptrace-style
	// suspend/resume overhead without needing to preempt the process.
	penalty time.Duration
}

// State returns the scheduler-visible state of the process.
func (p *Proc) State() ProcState { return p.state }

// Engine returns the engine the process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the process's current virtual time: the time of the event
// that last dispatched it, advanced by any sleeps since. Unlike
// Engine.Now it is exact in windowed mode, so process bodies must use
// it. Outside the process's own execution it reports the time the
// process last ran (or went to sleep toward).
func (p *Proc) Now() Time { return p.now }

// Shard reports the id of the shard the process is homed on.
func (p *Proc) Shard() int { return int(p.shard.id) }

// newProc allocates (or reuses) a Proc homed on shard s. The caller
// must own s's execution context.
func (e *Engine) newProc(name string, s *shard) *Proc {
	e.procMu.Lock()
	var p *Proc
	if n := len(e.freeProcs); n > 0 {
		// Reuse a pooled Proc (and its resume channel) from a previous
		// Reset cycle; its goroutine has exited, so the channel is idle.
		p = e.freeProcs[n-1]
		e.freeProcs[n-1] = nil
		e.freeProcs = e.freeProcs[:n-1]
	} else {
		p = &Proc{resume: make(chan struct{})}
	}
	p.ID = len(e.procs)
	p.Name = name
	p.eng = e
	p.shard = s
	p.state = ProcReady
	p.now = 0
	e.procs = append(e.procs, p)
	e.liveProcs++
	e.procMu.Unlock()
	p.localID = s.procSeq
	s.procSeq++
	s.spawns++
	return p
}

// spawn creates a process homed on shard home, with its start event
// stamped by shard src (the caller's context), and launches its
// goroutine in the parked state.
func (e *Engine) spawn(src, home *shard, name string, start Time, body func(*Proc)) *Proc {
	if !e.inWindow && start < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", start, e.now))
	}
	p := e.newProc(name, home)
	if !e.inWindow && e.rec.Enabled() {
		e.rec.Event(start, EvProcSpawn, obs.Int("proc", int64(p.ID)), obs.Str("name", name))
	}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procExit); !ok {
					panic(r) // real bug: propagate
				}
			}
			p.state = ProcDone
			p.shard.exits++
			e.procMu.Lock()
			e.liveProcs--
			e.procMu.Unlock()
			if !e.inWindow && e.rec.Enabled() {
				e.rec.Event(e.now, EvProcStop, obs.Int("proc", int64(p.ID)), obs.Str("name", p.Name))
			}
			// Hand control back for good: inside a window the exiting
			// goroutine carries the chain forward — its own shard's loop,
			// then further active shards — exactly like a park without a
			// resume (see Engine.runChain).
			if sh := p.shard; sh.horizon > 0 {
				if _, act := sh.runLoop(nil); act == loopDone {
					e.runChain(sh)
				}
			} else {
				p.shard.parked <- struct{}{}
			}
		}()
		<-p.resume // wait for the scheduler to start us
		if e.shutdown {
			panic(procExit{})
		}
		body(p)
	}()
	var ev *Event
	if src == home {
		ev = e.scheduleLocal(home, start)
	} else {
		ev = e.schedulePost(src, home, start)
	}
	ev.proc = p
	return p
}

// Spawn creates a process on the current context shard (shard 0 for
// setup, tests, and system events) that begins executing body at
// virtual time start (which must not be in the past).
func (e *Engine) Spawn(name string, start Time, body func(*Proc)) *Proc {
	return e.spawn(e.ctx, e.ctx, name, start, body)
}

// SpawnOn creates a process homed on the given shard (growing the
// shard table as needed). The MPI world homes each rank on its own
// shard; shard 0 is reserved for system activity. It must be called
// from a single-threaded phase (setup or a system event).
func (e *Engine) SpawnOn(shardID int, name string, start Time, body func(*Proc)) *Proc {
	if shardID < 0 {
		panic("sim: SpawnOn with negative shard")
	}
	return e.spawn(e.ctx, e.shardFor(int32(shardID)), name, start, body)
}

// SpawnNow is Spawn starting at the current virtual time.
func (e *Engine) SpawnNow(name string, body func(*Proc)) *Proc {
	return e.spawn(e.ctx, e.ctx, name, e.now, body)
}

// SpawnNow creates a child process homed on p's own shard, starting at
// p's current time. Mid-run spawns (worker threads) must go through
// the parent so the child lands on the parent's shard in every mode.
func (p *Proc) SpawnNow(name string, body func(*Proc)) *Proc {
	return p.eng.spawn(p.shard, p.shard, name, p.now, body)
}

// dispatch transfers control to p at virtual time t and blocks the
// driving goroutine until p parks again (sleeps, suspends, or
// terminates).
func (e *Engine) dispatch(p *Proc, t Time) {
	if p.state == ProcDone {
		panic("sim: dispatching terminated process " + p.Name)
	}
	p.state = ProcRunning
	p.wake = nil
	p.now = t
	p.resume <- struct{}{}
	<-p.shard.parked
}

// park gives up control and blocks until resumed. Inside a window the
// parking goroutine itself carries the shard's event loop forward
// (chained handoff, see shard.runLoop): it either resumes inline when
// its own wake is the shard's next event, hands control straight to
// the next dispatched process, or — having exhausted the window —
// signals the coordinator. Outside windows control returns to the
// serial driver through the parked channel. During Shutdown the resume
// is a termination order: park unwinds the goroutine with a procExit
// panic so the caller's defers still run.
func (p *Proc) park(state ProcState) {
	p.state = state
	sh := p.shard
	if sh.horizon > 0 {
		t, act := sh.runLoop(p)
		switch act {
		case loopSelf:
			p.state = ProcRunning
			p.wake = nil
			p.now = t
			return
		case loopDone:
			p.eng.runChain(sh)
		}
	} else {
		sh.parked <- struct{}{}
	}
	<-p.resume
	if p.eng.shutdown {
		panic(procExit{})
	}
}

// Sleep advances the process's virtual clock by d plus any accumulated
// external penalty. A nonpositive d with no penalty still yields to the
// scheduler at the current instant, preserving event ordering fairness.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	d += p.penalty
	p.penalty = 0
	p.sleepTo(p.now + d)
}

// SleepUntil parks the process until absolute time t without consuming
// any tracing penalty: the raw wait the MPI collectives use for their
// internal rendezvous, so that penalty is charged against program-order
// sleeps only — an accounting that is independent of execution mode.
func (p *Proc) SleepUntil(t Time) {
	if t < p.now {
		t = p.now
	}
	p.sleepTo(t)
}

func (p *Proc) sleepTo(t Time) {
	s := p.shard
	e := p.eng
	s.sleeps++
	if !e.inWindow && e.traceProcs && e.rec.Enabled() {
		e.rec.Event(e.now, EvProcSleep, obs.Int("proc", int64(p.ID)), obs.Dur("dur_us", t-p.now))
	}
	// Windowed fast path: when the wake would be this shard's very next
	// event and lands inside the current horizon, skip the heap and the
	// goroutine handoff entirely — account for the phantom event and keep
	// running. This is the batching that makes windows fast: a rank's
	// compute/communicate cycle executes back-to-back on a hot stack
	// instead of round-tripping through the scheduler per sleep.
	if s.horizon > 0 && t < s.horizon && (len(s.queue) == 0 || keyBefore(t, s.id, s.seq, s.queue[0])) {
		s.fired++
		s.noteDepth(len(s.queue) + 1)
		s.now = t
		p.now = t
		return
	}
	ev := e.scheduleLocal(s, t)
	ev.proc = p
	p.wake = ev
	p.park(ProcSleeping)
}

// Suspend parks the process indefinitely; it resumes only when another
// party calls Wake (or WakeAt). This is how blocking MPI calls wait for
// a matching event.
func (p *Proc) Suspend() {
	p.park(ProcSuspended)
}

// WakeAt schedules a suspended process to resume at time t, stamped by
// the current context shard. It panics if the process is not suspended:
// waking a sleeping or running process would corrupt the handoff
// protocol, and indicates a logic error in the caller (e.g. completing
// the same MPI request twice). It must be called from a single-threaded
// phase; simulated processes waking each other use WakeAtLocal (same
// shard) or WakePeerAt (cross-shard).
func (p *Proc) WakeAt(t Time) {
	if p.state != ProcSuspended {
		panic(fmt.Sprintf("sim: WakeAt(%s) in state %s", p.Name, p.state))
	}
	// Mark as sleeping-with-event so a second WakeAt panics.
	p.state = ProcSleeping
	ev := p.eng.scheduleCtx(t)
	ev.proc = p
	p.wake = ev
}

// WakeAtLocal schedules a suspended process to resume at time t with
// its home shard's own counter stamp. The caller must be executing on
// p's shard (e.g. a delivery event completing the receive it matches,
// or a thread joining its sibling).
func (p *Proc) WakeAtLocal(t Time) {
	if p.state != ProcSuspended {
		panic(fmt.Sprintf("sim: WakeAt(%s) in state %s", p.Name, p.state))
	}
	p.state = ProcSleeping
	ev := p.eng.scheduleLocal(p.shard, t)
	ev.proc = p
	p.wake = ev
}

// WakePeerAt schedules suspended process q to resume at time t, from
// p's execution context. The wake event carries q's canonical stamp
// (home shard, shard-local id) rather than p's counter: the identity
// of the process that happens to perform a cross-shard wake (say, the
// last rank to arrive at a collective) depends on execution order, so
// the event's queue position must be derived from the woken process
// alone for serial and windowed runs to order it identically. In
// windowed mode t must respect the engine's lookahead when q is on
// another shard.
//
// In a multi-worker window a cross-shard target's state cannot be
// touched from here: q registered itself (under the caller's lock) and
// then parked on its own shard's goroutine, so its state word is still
// in flight. The wake is routed through q's inbox and the
// suspended→sleeping marking is deferred to the window barrier
// (runWindow's drain), where all shard execution has quiesced.
func (p *Proc) WakePeerAt(q *Proc, t Time) {
	e := p.eng
	if e.inWindow && e.workers > 1 && q.shard != p.shard {
		e.scheduleWake(p.shard, q, t)
		return
	}
	if q.state != ProcSuspended {
		panic(fmt.Sprintf("sim: WakeAt(%s) in state %s", q.Name, q.state))
	}
	q.state = ProcSleeping
	q.wake = e.scheduleWake(p.shard, q, t)
}

// Wake resumes a suspended process at the current virtual time (see
// WakeAt for the context contract).
func (p *Proc) Wake() { p.WakeAt(p.eng.now) }

// WakeAllAt schedules every process in procs to resume at time t from
// p's execution context; see Engine.WakeAllAt for ordering and slice
// ownership.
func (p *Proc) WakeAllAt(t Time, procs []*Proc) {
	p.eng.wakeAll(p.shard, t, procs)
}

// Post schedules a payload callback at time t on dst's home shard,
// stamped by p's shard: the deterministic cross-shard message the MPI
// layer uses to deliver sends at their arrival time. fn should be a
// shared method value (not a fresh closure) so posting stays
// allocation-free; it receives the event's time and arg.
func (p *Proc) Post(dst *Proc, t Time, fn func(Time, any), arg any) *Event {
	ev := p.eng.schedulePost(p.shard, dst.shard, t)
	ev.pfn = fn
	ev.parg = arg
	return ev
}

// ChargePenalty steals d of virtual time from the process: its next
// Sleep will take d longer. Used to model the cost of an external
// observer (ptrace attach + stack unwind) suspending the process while
// it executes application code. Charging a process that is blocked
// inside simulated MPI is free, mirroring the paper's observation that
// tracing cost can be overlapped with application idle time.
func (p *Proc) ChargePenalty(d time.Duration) {
	if p.state == ProcSleeping || p.state == ProcRunning {
		p.penalty += d
	}
}

// PendingPenalty reports the accumulated not-yet-consumed penalty.
func (p *Proc) PendingPenalty() time.Duration { return p.penalty }

// Yield lets other events scheduled at the same instant run.
func (p *Proc) Yield() { p.Sleep(0) }
