package sim

import (
	"fmt"
	"time"

	"parastack/internal/obs"
)

// ProcState describes what a simulated process is currently doing from
// the scheduler's point of view.
type ProcState int

const (
	// ProcReady means the process has been spawned but not yet started.
	ProcReady ProcState = iota
	// ProcRunning means the process goroutine currently holds control.
	ProcRunning
	// ProcSleeping means the process is parked with a wake event queued.
	ProcSleeping
	// ProcSuspended means the process is parked with no wake event; it
	// will only resume when some other process or event calls Wake.
	ProcSuspended
	// ProcDone means the process body returned.
	ProcDone
)

// String implements fmt.Stringer.
func (s ProcState) String() string {
	switch s {
	case ProcReady:
		return "ready"
	case ProcRunning:
		return "running"
	case ProcSleeping:
		return "sleeping"
	case ProcSuspended:
		return "suspended"
	case ProcDone:
		return "done"
	default:
		return fmt.Sprintf("ProcState(%d)", int(s))
	}
}

// Proc is a simulated process: a goroutine that runs only when the
// engine hands it control, and that advances virtual time by sleeping
// or suspending. All Proc methods that block (Sleep, Suspend) must be
// called from the process's own goroutine.
type Proc struct {
	ID   int
	Name string

	eng    *Engine
	resume chan struct{}
	state  ProcState
	wake   *Event // pending wake event while sleeping

	// penalty accumulates virtual time stolen from this process by
	// external activity (e.g. a monitor stack-tracing it). It is
	// consumed by the next Sleep call. This models ptrace-style
	// suspend/resume overhead without needing to preempt the process.
	penalty time.Duration
}

// State returns the scheduler-visible state of the process.
func (p *Proc) State() ProcState { return p.state }

// Engine returns the engine the process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time. Convenience for process bodies.
func (p *Proc) Now() Time { return p.eng.now }

// Spawn creates a process that will begin executing body at virtual
// time start (which must not be in the past). The body runs on its own
// goroutine but only ever while the engine has handed it control.
func (e *Engine) Spawn(name string, start Time, body func(*Proc)) *Proc {
	var p *Proc
	if n := len(e.freeProcs); n > 0 {
		// Reuse a pooled Proc (and its resume channel) from a previous
		// Reset cycle; its goroutine has exited, so the channel is idle.
		p = e.freeProcs[n-1]
		e.freeProcs[n-1] = nil
		e.freeProcs = e.freeProcs[:n-1]
		p.ID = len(e.procs)
		p.Name = name
		p.eng = e
		p.state = ProcReady
	} else {
		p = &Proc{
			ID:     len(e.procs),
			Name:   name,
			eng:    e,
			resume: make(chan struct{}),
			state:  ProcReady,
		}
	}
	e.procs = append(e.procs, p)
	e.liveProcs++
	e.rec.Count(CtrSpawns, 1)
	if e.rec.Enabled() {
		e.rec.Event(start, EvProcSpawn, obs.Int("proc", int64(p.ID)), obs.Str("name", name))
	}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procExit); !ok {
					panic(r) // real bug: propagate
				}
			}
			p.state = ProcDone
			e.liveProcs--
			e.rec.Count(CtrProcExits, 1)
			if e.rec.Enabled() {
				e.rec.Event(e.now, EvProcStop, obs.Int("proc", int64(p.ID)), obs.Str("name", p.Name))
			}
			e.parked <- struct{}{} // hand control back for good
		}()
		<-p.resume // wait for the scheduler to start us
		if e.shutdown {
			panic(procExit{})
		}
		body(p)
	}()
	e.atProc(start, p)
	return p
}

// SpawnNow is Spawn starting at the current virtual time.
func (e *Engine) SpawnNow(name string, body func(*Proc)) *Proc {
	return e.Spawn(name, e.now, body)
}

// dispatch transfers control to p and blocks the scheduler until p
// parks again (sleeps, suspends, or terminates).
func (e *Engine) dispatch(p *Proc) {
	if p.state == ProcDone {
		panic("sim: dispatching terminated process " + p.Name)
	}
	p.state = ProcRunning
	p.wake = nil
	p.resume <- struct{}{}
	<-e.parked
}

// park gives control back to the scheduler and blocks until resumed.
// During Shutdown the resume is a termination order: park unwinds the
// goroutine with a procExit panic so the caller's defers still run.
func (p *Proc) park(s ProcState) {
	p.state = s
	p.eng.parked <- struct{}{}
	<-p.resume
	if p.eng.shutdown {
		panic(procExit{})
	}
}

// Sleep advances the process's virtual clock by d plus any accumulated
// external penalty. A nonpositive d with no penalty still yields to the
// scheduler at the current instant, preserving event ordering fairness.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	d += p.penalty
	p.penalty = 0
	e := p.eng
	e.rec.Count(CtrSleeps, 1)
	if e.traceProcs && e.rec.Enabled() {
		e.rec.Event(e.now, EvProcSleep, obs.Int("proc", int64(p.ID)), obs.Dur("dur_us", d))
	}
	p.wake = e.atProc(e.now+d, p)
	p.park(ProcSleeping)
}

// Suspend parks the process indefinitely; it resumes only when another
// party calls Wake (or WakeAt). This is how blocking MPI calls wait for
// a matching event.
func (p *Proc) Suspend() {
	p.park(ProcSuspended)
}

// Wake schedules a suspended process to resume at time t. It panics if
// the process is not suspended: waking a sleeping or running process
// would corrupt the handoff protocol, and indicates a logic error in
// the caller (e.g. completing the same MPI request twice).
func (p *Proc) WakeAt(t Time) {
	if p.state != ProcSuspended {
		panic(fmt.Sprintf("sim: WakeAt(%s) in state %s", p.Name, p.state))
	}
	e := p.eng
	// Mark as sleeping-with-event so a second WakeAt panics.
	p.state = ProcSleeping
	p.wake = e.atProc(t, p)
}

// Wake resumes a suspended process at the current virtual time.
func (p *Proc) Wake() { p.WakeAt(p.eng.now) }

// ChargePenalty steals d of virtual time from the process: its next
// Sleep will take d longer. Used to model the cost of an external
// observer (ptrace attach + stack unwind) suspending the process while
// it executes application code. Charging a process that is blocked
// inside simulated MPI is free, mirroring the paper's observation that
// tracing cost can be overlapped with application idle time.
func (p *Proc) ChargePenalty(d time.Duration) {
	if p.state == ProcSleeping || p.state == ProcRunning {
		p.penalty += d
	}
}

// PendingPenalty reports the accumulated not-yet-consumed penalty.
func (p *Proc) PendingPenalty() time.Duration { return p.penalty }

// Yield lets other events scheduled at the same instant run.
func (p *Proc) Yield() { p.Sleep(0) }
