package sim

// Rng is a tiny splitmix64 random stream. The simulator gives every
// rank its own Rng so that random draws are a function of (seed, rank,
// per-rank draw index) rather than of global execution order — the
// property that lets the windowed parallel executor reproduce the
// serial engine's results bit-for-bit: a rank's jitter sequence is the
// same no matter how its events interleave with other shards'.
//
// It implements the one-method Uniform contract the latency model
// consumes (Float64 in [0,1)), like math/rand.Rand.
type Rng struct {
	state uint64
}

// NewRng returns a stream seeded with s. Streams with distinct seeds
// are statistically independent (splitmix64 is the stream-splitting
// generator of the JDK and of xoshiro seeding).
func NewRng(s uint64) Rng { return Rng{state: s} }

// Seed resets the stream.
func (r *Rng) Seed(s uint64) { r.state = s }

// Uint64 returns the next value of the stream.
func (r *Rng) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// Float64 returns the next value in [0, 1).
func (r *Rng) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *Rng) Intn(n int) int {
	if n <= 0 {
		panic("sim: Rng.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// mix64 is the splitmix64 finalizer: a bijective avalanche of its
// input, so distinct keys give uncorrelated outputs.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 hashes a key tuple into a stream seed. Callers derive
// order-independent random values by keying on stable identities
// (run seed, communicator, collective sequence) instead of drawing
// from a shared stream in execution order.
func Mix64(keys ...uint64) uint64 {
	h := uint64(0x51_7c_c1_b7_27_22_0a_95)
	for _, k := range keys {
		h = mix64(h ^ k)
	}
	return h
}

// UniformFrom returns a single uniform value in [0,1) derived from the
// key tuple — the stateless one-draw analogue of NewRng(...).Float64().
func UniformFrom(keys ...uint64) float64 {
	return float64(Mix64(keys...)>>11) / (1 << 53)
}

// Fixed is a Uniform that always returns the same value: it adapts a
// keyed one-shot draw (UniformFrom) to APIs that take a stream.
type Fixed float64

// Float64 returns the fixed value.
func (f Fixed) Float64() float64 { return float64(f) }

// Uniform is the random-source contract of the latency model: a single
// Float64 method, satisfied by *math/rand.Rand, *Rng, and Fixed.
type Uniform interface {
	Float64() float64
}
