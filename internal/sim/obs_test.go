package sim

import (
	"testing"
	"time"

	"parastack/internal/obs"
)

// A recorder with a sink sees process lifecycle events; TraceProcs
// additionally enables per-sleep events.
func TestEngineLifecycleEvents(t *testing.T) {
	eng := NewEngine(1)
	sink := obs.NewMemSink()
	eng.SetRecorder(obs.New(sink))
	eng.TraceProcs(true)

	eng.Spawn("worker", 0, func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		p.Sleep(5 * time.Millisecond)
	})
	eng.SpawnNow("idler", func(p *Proc) {
		p.Sleep(time.Millisecond)
	})
	eng.RunAll()

	if n := sink.CountKind(EvProcSpawn); n != 2 {
		t.Errorf("proc_spawn events = %d, want 2", n)
	}
	if n := sink.CountKind(EvProcStop); n != 2 {
		t.Errorf("proc_stop events = %d, want 2", n)
	}
	if n := sink.CountKind(EvProcSleep); n != 3 {
		t.Errorf("proc_sleep events = %d, want 3", n)
	}

	spawn := sink.Kind(EvProcSpawn)[0]
	if f, ok := spawn.Field("name"); !ok || f.StrValue() != "worker" {
		t.Errorf("first spawn name field = %+v", f)
	}
	if f, ok := spawn.Field("proc"); !ok || f.IntValue() != 0 {
		t.Errorf("first spawn proc field = %+v", f)
	}

	sleeps := sink.Kind(EvProcSleep)
	if f, _ := sleeps[0].Field("dur_us"); f.IntValue() != 10_000 {
		t.Errorf("first sleep dur_us = %d, want 10000", f.IntValue())
	}

	rec := eng.Recorder()
	if got := rec.Counter(CtrSpawns); got != 2 {
		t.Errorf("%s = %d, want 2", CtrSpawns, got)
	}
	if got := rec.Counter(CtrProcExits); got != 2 {
		t.Errorf("%s = %d, want 2", CtrProcExits, got)
	}
	if got := rec.Counter(CtrSleeps); got != 3 {
		t.Errorf("%s = %d, want 3", CtrSleeps, got)
	}
	if got, fired := rec.Counter(CtrEvents), int64(eng.EventsFired()); got != fired {
		t.Errorf("%s = %d, want EventsFired %d", CtrEvents, got, fired)
	}
}

// Per-sleep events stay off without TraceProcs; counters still count.
func TestTraceProcsGate(t *testing.T) {
	eng := NewEngine(1)
	sink := obs.NewMemSink()
	eng.SetRecorder(obs.New(sink))

	eng.SpawnNow("w", func(p *Proc) { p.Sleep(time.Millisecond) })
	eng.RunAll()

	if n := sink.CountKind(EvProcSleep); n != 0 {
		t.Errorf("proc_sleep events without TraceProcs = %d, want 0", n)
	}
	if got := eng.Recorder().Counter(CtrSleeps); got != 1 {
		t.Errorf("%s = %d, want 1", CtrSleeps, got)
	}
}

// The queue-depth gauge tracks MaxQueueDepth, and depth milestone
// events are emitted sparsely (on ~2x growth), not per event.
func TestQueueDepthObservability(t *testing.T) {
	eng := NewEngine(1)
	sink := obs.NewMemSink()
	eng.SetRecorder(obs.New(sink))

	const n = 100
	for i := 0; i < n; i++ {
		eng.At(time.Duration(i)*time.Millisecond, func() {})
	}
	eng.RunAll()

	if eng.MaxQueueDepth() != n {
		t.Fatalf("MaxQueueDepth = %d, want %d", eng.MaxQueueDepth(), n)
	}
	snap := eng.Recorder().Snapshot()
	if got := snap.Gauge(GaugeQueueDepthMax); got != n {
		t.Errorf("%s = %g, want %d", GaugeQueueDepthMax, got, n)
	}
	depth := sink.CountKind(EvQueueDepth)
	if depth == 0 {
		t.Error("no queue_depth events emitted")
	}
	if depth > 10 { // 2x milestones: ~log2(100) ≈ 7 events
		t.Errorf("queue_depth events = %d, want sparse (≤10)", depth)
	}
}

// A detached (default) recorder must not change behavior, and
// SetRecorder(nil) restores it.
func TestSetRecorderNil(t *testing.T) {
	eng := NewEngine(1)
	eng.SetRecorder(nil)
	if eng.Recorder() != obs.Disabled {
		t.Error("SetRecorder(nil) did not restore obs.Disabled")
	}
	eng.SpawnNow("w", func(p *Proc) { p.Sleep(time.Millisecond) })
	if got := eng.RunAll(); got != time.Millisecond {
		t.Errorf("RunAll = %v", got)
	}
}
