package sim

// runWindowed is the conservative parallel-DES executor. It partitions
// execution into horizon windows: every window picks the globally
// earliest pending event time tmin and a horizon
//
//	H = min(tmin + lookahead, next system event, until+1)
//
// then runs every shard holding events before H independently up to H.
// The lookahead bound (SetLookahead) guarantees no shard can affect
// another before tmin + lookahead, and the system-shard clamp
// guarantees system events — which read cross-shard world state — only
// execute when the whole simulation has reached their instant, exactly
// as in the serial order. Together these make the committed event
// sequence (projected per shard) identical to the serial engine's;
// cross-shard ordering within a window is immaterial because, by
// construction, those events cannot interact.
//
// Determinism does not depend on the worker count: events land in
// queues in possibly different orders, but the (time, source shard,
// source seq) total order makes every heap pop mode- and
// schedule-independent.
func (e *Engine) runWindowed(until Time) Time {
	e.stopped = false
	e.running = true
	defer func() {
		e.running = false
		e.inWindow = false
		e.curH = 0
		e.ctx = e.shards[0]
		e.syncObs()
	}()
	sys := e.shards[0]
	for len(e.heads) > 0 && !e.stopped {
		tmin := e.heads[0].when
		if until > 0 && tmin > until {
			e.now = until
			return e.now
		}
		if e.heads[0].s == sys {
			// A system event holds the global minimum: run exactly it,
			// serially, with the whole world quiesced at or beyond its
			// time. Monitors, detectors, and test callbacks therefore
			// observe the same world state as in a serial run.
			e.runOneStep()
			continue
		}
		sysT := maxTime
		if sys.pos >= 0 {
			sysT = sys.queue[0].when
		}
		h := tmin + e.lookahead
		if sysT < h {
			h = sysT
			e.horizonStalls++
		}
		if until > 0 && until+1 < h {
			h = until + 1
		}
		if h <= tmin {
			// Degenerate window (a system event ties the minimum but a
			// rank event orders first): fall back to one serial step.
			e.runOneStep()
			continue
		}
		e.runWindow(h)
		e.now = h
		if until > 0 && e.now > until {
			e.now = until
		}
	}
	return e.now
}

// runWindow executes one window with horizon h: gathers the shards
// with work before h, runs each to h (on the coordinator alone, or on
// e.workers goroutines), then merges cross-shard inboxes and restores
// the head heap.
func (e *Engine) runWindow(h Time) {
	// Shards of one window cannot interact (every cross-shard effect
	// lands at or beyond h), and event stamps are globally unique, so
	// the order shards execute in is immaterial — the heads-pop order
	// is used as-is.
	e.active = e.active[:0]
	for len(e.heads) > 0 && e.heads[0].when < h {
		s := e.headsPopMin()
		s.active = true
		e.active = append(e.active, s)
	}

	e.inWindow = true
	e.curH = h
	for _, s := range e.active {
		s.horizon = h
	}
	e.winNext.Store(0)
	n := 1
	if e.workers > 1 {
		n = e.workers
		if n > len(e.active) {
			n = len(e.active)
		}
	}
	// winLeft counts release obligations: one per active shard plus one
	// lease per *spawned* starter goroutine. The lease keeps the window
	// open until the starter's last read of e.active, even if every
	// shard it might have claimed was finished by someone else first.
	e.winLeft.Store(int64(len(e.active) + n - 1))
	for w := 1; w < n; w++ {
		go func() {
			e.runChain(nil)
			e.winRelease()
		}()
	}
	e.runChain(nil)
	// Exactly one shardDone call observes the count reach zero and
	// deposits the window token; the channel is buffered so that
	// finisher never blocks, even when it is this goroutine.
	<-e.winDone
	e.inWindow = false
	e.curH = 0

	// Merge inbox deliveries (multi-worker windows route cross-shard
	// events through inboxes rather than foreign heaps). Every entry was
	// lookahead-checked at posting time, so it lands at or beyond h.
	// Wake events deferred their suspended→sleeping marking to this
	// barrier (the target's state word was in flight mid-window; see
	// Proc.WakePeerAt) — all shards have quiesced here, so the waiter is
	// parked and its state is safe to flip.
	for _, s := range e.dirty {
		s.indirty = false
		s.inboxMu.Lock()
		for i, ev := range s.inbox {
			if ev.proc != nil && ev.proc.state == ProcSuspended {
				ev.proc.state = ProcSleeping
				ev.proc.wake = ev
			}
			s.queue.push(ev)
			s.notePush()
			s.inbox[i] = nil
		}
		s.inbox = s.inbox[:0]
		s.inboxMu.Unlock()
		if !s.active && s.pos >= 0 {
			e.headsFix(s)
		} else if !s.active && len(s.queue) > 0 {
			e.headsInsert(s)
		}
	}
	e.dirty = e.dirty[:0]

	for _, s := range e.active {
		s.committed = h
		e.headsRestore(s)
	}
	e.windows++
	e.windowShards += uint64(len(e.active))
}

// runChain drives active shards' event loops until a handoff or the
// cursor is exhausted. One chain starts per worker (the coordinator
// itself runs one); every handoff moves the chain onto the dispatched
// process's goroutine, and every process that exhausts a shard's
// window picks up the next unstarted shard and keeps going. The
// coordinator therefore blocks once per *window*, not once per shard
// activation — within a window, control flows proc-to-proc across
// shard boundaries without ever returning to a driver.
//
// carry is the shard the calling goroutine just exhausted (nil for
// chain starters). It is retired only *after* the next cursor claim:
// the moment the last shard retires, the coordinator may reuse the
// window's state for the next window, so every read of e.active must
// precede the reader's own final retirement — which the claim-then-
// retire order guarantees through the winLeft/winDone release chain.
func (e *Engine) runChain(carry *shard) {
	for {
		i := int(e.winNext.Add(1)) - 1
		var s *shard
		if i < len(e.active) {
			s = e.active[i]
		}
		if carry != nil {
			e.shardDone(carry)
		}
		if s == nil {
			return
		}
		if _, act := s.runLoop(nil); act == loopHanded {
			return
		}
		carry = s
	}
}

// shardDone marks one active shard's window complete; the caller must
// be the goroutine that owned its loop.
func (e *Engine) shardDone(s *shard) {
	s.horizon = 0
	e.winRelease()
}

// winRelease drops one window obligation (a shard completion or a
// starter lease); whoever drops the last one deposits the window
// token for the coordinator.
func (e *Engine) winRelease() {
	if e.winLeft.Add(-1) == 0 {
		e.winDone <- struct{}{}
	}
}
