package sim

import (
	"runtime"
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(30*time.Millisecond, func() { got = append(got, 3) })
	e.At(10*time.Millisecond, func() { got = append(got, 1) })
	e.At(20*time.Millisecond, func() { got = append(got, 2) })
	end := e.RunAll()
	if end != 30*time.Millisecond {
		t.Fatalf("end = %v, want 30ms", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", got)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func() { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("events at equal time fired out of order: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(time.Second, func() { fired = true })
	ev.Cancel()
	e.RunAll()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.At(1*time.Second, func() { fired++ })
	e.At(3*time.Second, func() { fired++ })
	end := e.Run(2 * time.Second)
	if end != 2*time.Second {
		t.Fatalf("end = %v, want 2s", end)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	// Resume.
	end = e.RunAll()
	if end != 3*time.Second || fired != 2 {
		t.Fatalf("after resume end=%v fired=%d", end, fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(500*time.Millisecond, func() {})
	})
	e.RunAll()
}

func TestProcSleep(t *testing.T) {
	e := NewEngine(1)
	var wakeTimes []Time
	e.SpawnNow("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(100 * time.Millisecond)
			wakeTimes = append(wakeTimes, p.Now())
		}
	})
	e.RunAll()
	want := []Time{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond}
	if len(wakeTimes) != 3 {
		t.Fatalf("wakeTimes = %v", wakeTimes)
	}
	for i := range want {
		if wakeTimes[i] != want[i] {
			t.Fatalf("wakeTimes = %v, want %v", wakeTimes, want)
		}
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0", e.LiveProcs())
	}
}

func TestSuspendWake(t *testing.T) {
	e := NewEngine(1)
	var consumer *Proc
	var consumed Time
	consumer = e.SpawnNow("consumer", func(p *Proc) {
		p.Suspend()
		consumed = p.Now()
	})
	e.SpawnNow("producer", func(p *Proc) {
		p.Sleep(250 * time.Millisecond)
		consumer.Wake()
	})
	e.RunAll()
	if consumed != 250*time.Millisecond {
		t.Fatalf("consumer resumed at %v, want 250ms", consumed)
	}
}

func TestWakeAtFuture(t *testing.T) {
	e := NewEngine(1)
	var p1 *Proc
	var resumedAt Time
	p1 = e.SpawnNow("sleeper", func(p *Proc) {
		p.Suspend()
		resumedAt = p.Now()
	})
	e.SpawnNow("waker", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		p1.WakeAt(1 * time.Second)
	})
	e.RunAll()
	if resumedAt != time.Second {
		t.Fatalf("resumed at %v, want 1s", resumedAt)
	}
}

func TestDoubleWakePanics(t *testing.T) {
	e := NewEngine(1)
	p1 := e.SpawnNow("sleeper", func(p *Proc) { p.Suspend() })
	e.SpawnNow("waker", func(p *Proc) {
		p.Sleep(time.Millisecond)
		p1.WakeAt(time.Second)
		defer func() {
			if recover() == nil {
				t.Error("second WakeAt should panic")
			}
		}()
		p1.WakeAt(2 * time.Second)
	})
	e.RunAll()
}

func TestGlobalHangLeavesLiveProcs(t *testing.T) {
	e := NewEngine(1)
	e.SpawnNow("stuck", func(p *Proc) {
		p.Sleep(time.Second)
		p.Suspend() // never woken: a simulated hang
	})
	end := e.RunAll()
	if end != time.Second {
		t.Fatalf("end = %v, want 1s", end)
	}
	if e.LiveProcs() != 1 {
		t.Fatalf("LiveProcs = %d, want 1 (hung process)", e.LiveProcs())
	}
}

func TestPenaltyChargesNextSleep(t *testing.T) {
	e := NewEngine(1)
	var done Time
	p := e.SpawnNow("victim", func(p *Proc) {
		p.Sleep(100 * time.Millisecond)
		p.Sleep(100 * time.Millisecond)
		done = p.Now()
	})
	e.At(50*time.Millisecond, func() { p.ChargePenalty(30 * time.Millisecond) })
	e.RunAll()
	if done != 230*time.Millisecond {
		t.Fatalf("done = %v, want 230ms", done)
	}
}

func TestPenaltyIgnoredWhenSuspended(t *testing.T) {
	e := NewEngine(1)
	var p1 *Proc
	var done Time
	p1 = e.SpawnNow("blocked", func(p *Proc) {
		p.Suspend()
		p.Sleep(100 * time.Millisecond)
		done = p.Now()
	})
	e.At(10*time.Millisecond, func() {
		p1.ChargePenalty(time.Hour) // must be free: process is inside "MPI"
		p1.Wake()
	})
	e.RunAll()
	if done != 110*time.Millisecond {
		t.Fatalf("done = %v, want 110ms", done)
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.At(time.Second, func() { fired++; e.Stop() })
	e.At(2*time.Second, func() { fired++ })
	e.RunAll()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if !e.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestDeterminismAcrossEngines(t *testing.T) {
	trace := func(seed int64) []Time {
		e := NewEngine(seed)
		var out []Time
		for i := 0; i < 4; i++ {
			e.SpawnNow("p", func(p *Proc) {
				for j := 0; j < 20; j++ {
					p.Sleep(time.Duration(e.Rand().Intn(1000)) * time.Millisecond)
					out = append(out, p.Now())
				}
			})
		}
		e.RunAll()
		return out
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := trace(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestManyProcs(t *testing.T) {
	e := NewEngine(7)
	const n = 2048
	completed := 0
	for i := 0; i < n; i++ {
		e.SpawnNow("p", func(p *Proc) {
			for j := 0; j < 5; j++ {
				p.Sleep(time.Duration(1+e.Rand().Intn(50)) * time.Millisecond)
			}
			completed++
		})
	}
	e.RunAll()
	if completed != n {
		t.Fatalf("completed = %d, want %d", completed, n)
	}
}

// Property: for any set of nonnegative delays, a process sleeping
// through them finishes at exactly their sum, and the engine clock
// never moves backwards.
func TestSleepSumProperty(t *testing.T) {
	f := func(delaysMS []uint16) bool {
		e := NewEngine(3)
		var want time.Duration
		for _, d := range delaysMS {
			want += time.Duration(d) * time.Millisecond
		}
		var got Time
		e.SpawnNow("p", func(p *Proc) {
			last := Time(0)
			for _, d := range delaysMS {
				p.Sleep(time.Duration(d) * time.Millisecond)
				if p.Now() < last {
					t.Error("clock moved backwards")
				}
				last = p.Now()
			}
			got = p.Now()
		})
		e.RunAll()
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine(1)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			e.After(time.Microsecond, tick)
		}
	}
	e.After(time.Microsecond, tick)
	b.ResetTimer()
	e.RunAll()
}

func BenchmarkProcContextSwitch(b *testing.B) {
	e := NewEngine(1)
	e.SpawnNow("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	e.RunAll()
}

func TestShutdownReleasesHungProcs(t *testing.T) {
	before := runtime.NumGoroutine()
	e := NewEngine(1)
	const n = 500
	popped := 0
	for i := 0; i < n; i++ {
		e.SpawnNow("stuck", func(p *Proc) {
			defer func() { popped++ }() // body defers must run on shutdown
			if p.ID%2 == 0 {
				p.Suspend() // hangs forever
			} else {
				p.Sleep(time.Hour)
				p.Sleep(time.Hour)
			}
		})
	}
	e.Run(time.Minute)
	if e.LiveProcs() != n {
		t.Fatalf("LiveProcs = %d before shutdown", e.LiveProcs())
	}
	e.Shutdown()
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d after shutdown", e.LiveProcs())
	}
	if popped != n {
		t.Fatalf("only %d/%d body defers ran", popped, n)
	}
	// Goroutines must drain (allow scheduler slack).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+10 && time.Now().Before(deadline) {
		runtime.Gosched()
	}
	if g := runtime.NumGoroutine(); g > before+10 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, g)
	}
}

func TestShutdownAfterCompletionIsNoop(t *testing.T) {
	e := NewEngine(2)
	e.SpawnNow("p", func(p *Proc) { p.Sleep(time.Millisecond) })
	e.RunAll()
	e.Shutdown() // nothing live: must not hang or panic
	if e.LiveProcs() != 0 {
		t.Fatal("LiveProcs nonzero")
	}
}
