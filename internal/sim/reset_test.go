package sim

import (
	"testing"
	"time"
)

// TestWakeAllAtMatchesIndividualWakes pins the bit-identity contract of
// the group wake: dispatch order, virtual timestamps, and the fired
// event tally must be exactly what a WakeAt loop over the same slice
// produces.
func TestWakeAllAtMatchesIndividualWakes(t *testing.T) {
	type obs struct {
		id int
		at Time
	}
	run := func(group bool) (order []obs, fired uint64) {
		e := NewEngine(7)
		const n = 5
		var waiters []*Proc
		for i := 0; i < n; i++ {
			i := i
			p := e.SpawnNow("w", func(p *Proc) {
				p.Suspend()
				order = append(order, obs{i, p.Now()})
			})
			waiters = append(waiters, p)
		}
		e.SpawnNow("releaser", func(p *Proc) {
			p.Sleep(time.Millisecond)
			if group {
				s := e.GetProcSlice(n)
				s = append(s, waiters...)
				e.WakeAllAt(p.Now()+time.Millisecond, s)
			} else {
				for _, w := range waiters {
					w.WakeAt(p.Now() + time.Millisecond)
				}
			}
		})
		e.RunAll()
		return order, e.EventsFired()
	}
	loopOrder, loopFired := run(false)
	groupOrder, groupFired := run(true)
	if len(groupOrder) != len(loopOrder) {
		t.Fatalf("group woke %d procs, loop woke %d", len(groupOrder), len(loopOrder))
	}
	for i := range loopOrder {
		if groupOrder[i] != loopOrder[i] {
			t.Errorf("dispatch %d: group %+v, loop %+v", i, groupOrder[i], loopOrder[i])
		}
	}
	if groupFired != loopFired {
		t.Errorf("events fired: group %d, loop %d", groupFired, loopFired)
	}
}

// TestWakeAllAtSingleHeapInsertion verifies the point of the batch: one
// group wake adds one pending event no matter how many waiters it
// carries.
func TestWakeAllAtSingleHeapInsertion(t *testing.T) {
	e := NewEngine(1)
	const n = 64
	var waiters []*Proc
	for i := 0; i < n; i++ {
		waiters = append(waiters, e.SpawnNow("w", func(p *Proc) { p.Suspend() }))
	}
	e.RunAll() // park everyone
	before := e.PendingEvents()
	s := e.GetProcSlice(n)
	s = append(s, waiters...)
	e.WakeAllAt(e.Now()+time.Millisecond, s)
	if got := e.PendingEvents() - before; got != 1 {
		t.Fatalf("group wake of %d procs queued %d events, want 1", n, got)
	}
	e.RunAll()
	for _, p := range waiters {
		if p.State() != ProcDone {
			t.Fatalf("waiter not released: %v", p.State())
		}
	}
}

// TestWakeAllAtEmptyAndNil: an empty group is a no-op that still
// returns the slice to the pool.
func TestWakeAllAtEmptyAndNil(t *testing.T) {
	e := NewEngine(1)
	if ev := e.WakeAllAt(0, nil); ev != nil {
		t.Fatal("nil slice should schedule nothing")
	}
	s := e.GetProcSlice(4)
	if ev := e.WakeAllAt(0, s); ev != nil {
		t.Fatal("empty slice should schedule nothing")
	}
	if got := e.GetProcSlice(4); cap(got) != 4 {
		t.Fatalf("empty slice was not pooled: got cap %d", cap(got))
	}
}

// TestProcSlicePoolRoundTrip: arrays round-trip through the pool by
// exact capacity, and pooled arrays hold no stale proc pointers.
func TestProcSlicePoolRoundTrip(t *testing.T) {
	e := NewEngine(1)
	p := e.SpawnNow("p", func(p *Proc) {})
	s := e.GetProcSlice(8)
	s = append(s, p, p, p)
	e.PutProcSlice(s)
	got := e.GetProcSlice(8)
	if cap(got) != 8 || len(got) != 0 {
		t.Fatalf("round trip returned len=%d cap=%d, want 0/8", len(got), cap(got))
	}
	if full := got[:cap(got)]; full[0] != nil || full[1] != nil || full[2] != nil {
		t.Fatal("pooled array still references procs")
	}
	e.RunAll()
}

// TestResetMatchesFreshEngine: a Reset engine must be indistinguishable
// from a newly constructed one — same virtual times, same random
// stream, same event tally — even when the prior run ended mid-flight
// with suspended procs, pending events, and a live group wake.
func TestResetMatchesFreshEngine(t *testing.T) {
	scenario := func(e *Engine) (Time, uint64, float64) {
		var waiters []*Proc
		for i := 0; i < 3; i++ {
			waiters = append(waiters, e.SpawnNow("w", func(p *Proc) {
				p.Suspend()
				p.Sleep(time.Duration(1+e.Rand().Intn(5)) * time.Millisecond)
			}))
		}
		e.SpawnNow("m", func(p *Proc) {
			p.Sleep(2 * time.Millisecond)
			s := e.GetProcSlice(len(waiters))
			s = append(s, waiters...)
			e.WakeAllAt(p.Now()+time.Millisecond, s)
		})
		e.RunAll()
		return e.Now(), e.EventsFired(), e.Rand().Float64()
	}

	fresh := NewEngine(42)
	ft, fe, fr := scenario(fresh)

	reused := NewEngine(99)
	// Dirty the engine: park procs, leave a pending event and a pending
	// group wake, then abandon the run.
	a := reused.SpawnNow("a", func(p *Proc) { p.Suspend() })
	b := reused.SpawnNow("b", func(p *Proc) { p.Suspend(); p.Sleep(time.Hour) })
	reused.SpawnNow("c", func(p *Proc) {
		p.Sleep(time.Millisecond)
		s := reused.GetProcSlice(1)
		s = append(s, a)
		reused.WakeAllAt(p.Now()+time.Hour, s)
		b.Wake()
	})
	reused.At(time.Minute, func() {})
	reused.Run(time.Second)

	reused.Reset(42)
	rt, re, rr := scenario(reused)
	if rt != ft || re != fe || rr != fr {
		t.Fatalf("reset engine diverged from fresh: time %v vs %v, events %d vs %d, rand %v vs %v",
			rt, ft, re, fe, rr, fr)
	}
}

// TestResetReusesProcStructs: Proc structs (and their channels) come
// back from the pool instead of being reallocated.
func TestResetReusesProcStructs(t *testing.T) {
	e := NewEngine(1)
	p1 := e.SpawnNow("x", func(p *Proc) {})
	e.RunAll()
	e.Reset(1)
	p2 := e.SpawnNow("y", func(p *Proc) {})
	if p1 != p2 {
		t.Fatal("Reset did not recycle the proc struct")
	}
	if p2.Name != "y" || p2.ID != 0 {
		t.Fatalf("recycled proc not reinitialized: name=%q id=%d", p2.Name, p2.ID)
	}
	e.RunAll()
}
