package sim

import (
	"sync"
)

// wakeSeqBit marks an event sequence number as a canonical wake stamp:
// the event was created by a cross-shard wake, whose *scheduler*
// identity depends on execution order, so it is keyed by the woken
// process's shard-local id instead of by any scheduler's counter. The
// bit keeps canonical stamps disjoint from per-shard counter stamps,
// preserving a total order that is identical in serial and windowed
// execution.
const wakeSeqBit = uint64(1) << 63

// eventBefore is the queue's total order: earlier virtual time first,
// then originating shard, then the origin's sequence stamp. Within one
// shard the (src, seq) pair restores plain scheduling-order FIFO; for
// the single-shard programs of the test suite the order is therefore
// exactly the pre-sharding (when, seq) contract. Because the order is
// total and independent of heap layout, serial and windowed runs pop
// the same shard's events in the same sequence.
func eventBefore(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// keyBefore compares a hypothetical event key against an existing
// event; the windowed inline-sleep fast path uses it to prove that a
// wake would be the shard's next event without materializing it.
func keyBefore(when Time, src int32, seq uint64, b *Event) bool {
	if when != b.when {
		return when < b.when
	}
	if src != b.src {
		return src < b.src
	}
	return seq < b.seq
}

// eventHeap is a binary min-heap ordered by eventBefore. The sift
// operations are hand-inlined rather than going through
// container/heap's interface so the hot path stays monomorphic: no
// `any` boxing on push/pop and no indirect Less/Swap calls.
type eventHeap []*Event

// push inserts ev, sifting it up from the last slot. Parents are moved
// down into the hole instead of swapped pairwise.
func (h *eventHeap) push(ev *Event) {
	q := append(*h, ev)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventBefore(ev, q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].index = i
		i = parent
	}
	q[i] = ev
	ev.index = i
	*h = q
}

// popMin removes and returns the earliest event, re-seating the last
// element by sifting it down from the root.
func (h *eventHeap) popMin() *Event {
	q := *h
	min := q[0]
	min.index = -1
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	q = q[:n]
	*h = q
	if n == 0 {
		return min // fast path: queue drained, nothing to re-seat
	}
	i := 0
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && eventBefore(q[r], q[child]) {
			child = r
		}
		if !eventBefore(q[child], last) {
			break
		}
		q[i] = q[child]
		q[i].index = i
		i = child
	}
	q[i] = last
	last.index = i
	return min
}

// shard is one event queue of the sharded engine. Shard 0 is the
// system shard (monitor, detectors, watchdogs, chaos, test and setup
// callbacks); the MPI world gives every rank its own shard, so a
// shard's queue holds only the events of one logical process group and
// stays a handful of entries deep regardless of world size.
//
// Each shard owns its event free list and slab, its sequence counter,
// and its park channel, so during windowed execution one worker can
// drive a shard without touching any other shard's memory.
type shard struct {
	id  int32
	eng *Engine

	queue eventHeap
	seq   uint64 // counter stamp for events scheduled from this shard
	now   Time   // time of the shard's last dispatched event

	procSeq uint64 // shard-local process numbering (canonical wake stamps)

	free []*Event // recycled events
	slab []Event  // slab backing for new events (batch allocation)

	parked chan struct{} // handoff from this shard's running proc back to its driver

	// Head-heap bookkeeping (engine-owned, coordinator-only).
	pos    int32 // index in Engine.heads; -1 when absent
	active bool  // popped out of heads for the current dispatch/window

	// Windowed-execution state.
	horizon   Time // end (exclusive) of the window being executed; 0 outside
	committed Time // all events before this time have executed
	inbox     []*Event
	inboxMu   sync.Mutex
	indirty   bool // queued on Engine.dirty (guarded by Engine.dirtyMu)

	// Tallies folded into the recorder by Engine.syncObs.
	fired    uint64 // events fired (inline fast-path sleeps included)
	sleeps   uint64
	spawns   uint64
	exits    uint64
	maxDepth int
}

// alloc takes an event from the shard's free list, cutting a fresh one
// from the slab when the list is empty. Slab allocation keeps the
// startup cost of large worlds at ~1 allocation per 64 events instead
// of one each.
func (s *shard) alloc() *Event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return ev
	}
	if len(s.slab) == 0 {
		s.slab = make([]Event, 64)
	}
	ev := &s.slab[0]
	s.slab = s.slab[1:]
	return ev
}

// recycle resets a popped event and returns it to this shard's free
// list. Events are recycled by the shard that fired them, which may
// differ from the shard that allocated them (cross-shard posts); the
// pools drift but never leak. A group-wake event's waiter slice
// returns to the engine's proc-slice pool here.
func (s *shard) recycle(ev *Event) {
	ev.fn = nil
	ev.pfn = nil
	ev.parg = nil
	ev.proc = nil
	if ev.procs != nil {
		s.eng.PutProcSlice(ev.procs)
		ev.procs = nil
	}
	ev.canceled = false
	s.free = append(s.free, ev)
}

// noteDepth updates the shard's depth high-water mark after a push (or
// an inline sleep that stands in for one).
func (s *shard) noteDepth(n int) {
	if n > s.maxDepth {
		s.maxDepth = n
	}
}

// loopAction is how one runLoop invocation ended.
type loopAction int

const (
	// loopDone: the window is exhausted (no more events before the
	// horizon); the calling goroutine is the shard's last runner.
	loopDone loopAction = iota
	// loopHanded: control of the loop was handed to another process's
	// goroutine; the caller must not touch shard state again.
	loopHanded
	// loopSelf: the next event is the calling process's own wake; it
	// resumes inline without a goroutine switch.
	loopSelf
)

// runLoop advances the shard's event loop until the window is
// exhausted, control is handed to a dispatched process, or (when self
// is non-nil) the next event is self's own wake. It runs on whichever
// goroutine currently owns the shard: a window chain starts it (see
// Engine.runChain), and every parking or exiting process continues it
// — a direct proc-to-proc handoff that costs one goroutine switch per
// dispatched event instead of the serial engine's round trip through
// a driver. Callback events run inline on the owning goroutine with
// no switch at all. After a handoff the previous owner touches no
// shard state (the fired event is recycled before the resume send),
// so the invariant "one goroutine owns the shard" holds even with
// parallel workers. The caller must have set s.horizon; whoever gets
// loopDone owns the shard's completion (Engine.shardDone).
func (s *shard) runLoop(self *Proc) (Time, loopAction) {
	for len(s.queue) > 0 {
		ev := s.queue[0]
		if ev.when >= s.horizon {
			break
		}
		s.queue.popMin()
		if ev.canceled {
			s.recycle(ev)
			continue
		}
		s.now = ev.when
		switch {
		case ev.proc == self && self != nil:
			t := ev.when
			s.fired++
			s.recycle(ev)
			return t, loopSelf
		case ev.proc != nil:
			q := ev.proc
			t := ev.when
			s.fired++
			s.recycle(ev)
			if q.state == ProcDone {
				panic("sim: dispatching terminated process " + q.Name)
			}
			q.state = ProcRunning
			q.wake = nil
			q.now = t
			q.resume <- struct{}{}
			return 0, loopHanded
		case ev.procs != nil:
			// Group wakes exist only in serial mode (wakeAll fans out
			// per-waiter whenever the windowed executor is configured).
			panic("sim: group wake event on a windowed shard")
		case ev.pfn != nil:
			s.fired++
			ev.pfn(ev.when, ev.parg)
			s.recycle(ev)
		default:
			s.fired++
			ev.fn()
			s.recycle(ev)
		}
	}
	return 0, loopDone
}

// fire executes one event on this shard, counting each dispatch.
func (s *shard) fire(ev *Event) {
	switch {
	case ev.proc != nil:
		s.fired++
		s.eng.dispatch(ev.proc, ev.when)
	case ev.procs != nil:
		// Group wake: one heap pop releases the whole waiter list. Each
		// dispatch counts as a fired event so the tally stays identical
		// to the one-event-per-waiter formulation the windowed mode uses.
		for _, p := range ev.procs {
			s.fired++
			s.eng.dispatch(p, ev.when)
		}
	case ev.pfn != nil:
		s.fired++
		ev.pfn(ev.when, ev.parg)
	default:
		s.fired++
		ev.fn()
	}
}

// reset returns the shard to its just-constructed state, draining the
// queue and inbox into the free list and zeroing clocks, counters, and
// tallies. Free lists, slabs, and the park channel are retained.
func (s *shard) reset() {
	for len(s.queue) > 0 {
		s.recycle(s.queue.popMin())
	}
	for i, ev := range s.inbox {
		s.recycle(ev)
		s.inbox[i] = nil
	}
	s.inbox = s.inbox[:0]
	s.seq = 0
	s.procSeq = 0
	s.now = 0
	s.pos = -1
	s.active = false
	s.horizon = 0
	s.committed = 0
	s.indirty = false
	s.fired = 0
	s.sleeps = 0
	s.spawns = 0
	s.exits = 0
	s.maxDepth = 0
}

// headEntry is one slot of the engine's min-merge heap: a copy of a
// shard's earliest event key plus the shard itself. Keys are copied
// into the entry (rather than followed through the shard's queue) so
// sift comparisons touch sequential memory instead of chasing event
// pointers — at 131072 shards the merge heap is the hottest comparison
// loop in the serial engine.
type headEntry struct {
	when Time
	src  int32
	seq  uint64
	s    *shard
}

func headBefore(a, b *headEntry) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// headsInsert adds shard s (whose queue must be non-empty) to the
// merge heap keyed by its head event.
func (e *Engine) headsInsert(s *shard) {
	head := s.queue[0]
	h := append(e.heads, headEntry{})
	i := len(h) - 1
	ent := headEntry{when: head.when, src: head.src, seq: head.seq, s: s}
	for i > 0 {
		parent := (i - 1) / 2
		if !headBefore(&ent, &h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].s.pos = int32(i)
		i = parent
	}
	h[i] = ent
	s.pos = int32(i)
	e.heads = h
}

// headsPopMin removes and returns the shard with the earliest head.
func (e *Engine) headsPopMin() *shard {
	h := e.heads
	min := h[0].s
	min.pos = -1
	n := len(h) - 1
	last := h[n]
	h[n] = headEntry{}
	h = h[:n]
	e.heads = h
	if n > 0 {
		i := 0
		for {
			child := 2*i + 1
			if child >= n {
				break
			}
			if r := child + 1; r < n && headBefore(&h[r], &h[child]) {
				child = r
			}
			if !headBefore(&h[child], &last) {
				break
			}
			h[i] = h[child]
			h[i].s.pos = int32(i)
			i = child
		}
		h[i] = last
		last.s.pos = int32(i)
	}
	return min
}

// headsFix re-keys shard s's entry after its head event changed,
// sifting in whichever direction the new key requires. s must be in
// the heap and its queue non-empty.
func (e *Engine) headsFix(s *shard) {
	h := e.heads
	i := int(s.pos)
	head := s.queue[0]
	ent := headEntry{when: head.when, src: head.src, seq: head.seq, s: s}
	// Sift up.
	for i > 0 {
		parent := (i - 1) / 2
		if !headBefore(&ent, &h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].s.pos = int32(i)
		i = parent
	}
	// Sift down.
	n := len(h)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && headBefore(&h[r], &h[child]) {
			child = r
		}
		if !headBefore(&h[child], &ent) {
			break
		}
		h[i] = h[child]
		h[i].s.pos = int32(i)
		i = child
	}
	h[i] = ent
	s.pos = int32(i)
	e.heads = h
}

// headsRestore puts a shard back into the merge heap after a dispatch
// or window (inserting, re-keying, or leaving it out when empty).
func (e *Engine) headsRestore(s *shard) {
	s.active = false
	if len(s.queue) == 0 {
		return
	}
	e.headsInsert(s)
}

// onHeadChanged is called after a push into s's queue from a
// single-threaded context. If the shard sits in the merge heap its key
// may have decreased; if it is absent and not held out as active, it
// must be (re)inserted.
func (e *Engine) onHeadChanged(s *shard, ev *Event) {
	if s.active {
		return // will be restored when its dispatch/window completes
	}
	if s.pos < 0 {
		e.headsInsert(s)
		return
	}
	if s.queue[0] == ev {
		e.headsFix(s)
	}
}
