// Package sim provides a deterministic discrete-event simulation engine
// with goroutine-based simulated processes and a virtual clock.
//
// The engine is the substrate on which the simulated MPI runtime
// (package mpi), the workload skeletons (package workload), and the
// ParaStack monitor (package core) execute. The event queue is sharded:
// shard 0 carries system activity (monitors, detectors, test callbacks)
// and the MPI world gives every rank its own shard, so each queue holds
// one process group's handful of pending events no matter how large the
// world is. A deterministic min-merge over the shard heads yields a
// total event order — (time, source shard, source sequence) — that is
// identical whether the engine runs serially or in windowed
// (conservative parallel-DES) mode; see Engine.SetParallel.
//
// In serial mode exactly one simulated process (or event callback) runs
// at a time; control is handed between the scheduler goroutine and
// process goroutines over per-shard unbuffered channels, so shared
// simulation state needs no further locking and every run is
// reproducible from the engine's random seed. Windowed mode partitions
// execution into horizon windows bounded by the latency model's
// lookahead (SetLookahead); within a window shards execute
// independently — by construction they cannot interact before the
// horizon — and the results remain bit-identical to the serial order.
//
// Virtual time is represented as time.Duration offsets from the start
// of the simulation. Sleeping, blocking on a condition, and waking
// other processes are the only ways time advances; wall-clock time
// never leaks into the simulation.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"parastack/internal/obs"
)

// Counter, gauge, and event names the engine reports through its
// recorder (see Engine.SetRecorder).
const (
	CtrSpawns    = "engine.spawns"     // processes spawned
	CtrProcExits = "engine.proc_exits" // processes terminated
	CtrSleeps    = "engine.sleeps"     // Proc.Sleep calls
	CtrEvents    = "engine.events"     // events fired (synced per Run)

	// Windowed-mode counters: windows executed, the total number of
	// shard activations across windows (occupancy = window_shards /
	// windows), and windows whose horizon was cut short by a pending
	// system-shard event rather than the full lookahead.
	CtrWindows       = "engine.windows"
	CtrWindowShards  = "engine.window_shards"
	CtrHorizonStalls = "engine.horizon_stalls"

	GaugeQueueDepthMax = "engine.queue_depth_max"

	EvProcSpawn  = "proc_spawn"  // fields: proc, name
	EvProcSleep  = "proc_sleep"  // fields: proc, dur_us (TraceProcs only)
	EvProcStop   = "proc_stop"   // fields: proc, name
	EvQueueDepth = "queue_depth" // fields: depth (on ~2x growth)
)

// Time is an absolute instant on the virtual clock, measured as an
// offset from the beginning of the simulation.
type Time = time.Duration

// maxTime is the +infinity sentinel of horizon computations.
const maxTime = Time(math.MaxInt64)

// Event is a scheduled callback. Events with equal times fire in
// scheduling order within their originating shard (FIFO), with the
// originating shard's id breaking cross-shard ties, which keeps runs
// deterministic in both serial and windowed mode.
//
// Fired events are recycled through per-shard free lists, so an
// *Event handle is only valid until its event fires: cancel pending
// events, never handles retained past their firing time (canceling
// from within the event's own callback is still safe).
type Event struct {
	when Time
	src  int32  // originating shard (tie-break)
	seq  uint64 // originating shard's stamp (counter, or canonical wake)
	fn   func()
	proc *Proc // when non-nil, firing dispatches this process directly

	// pfn+parg, when pfn is non-nil, is a payload callback: a shared
	// function pointer plus a boxed argument, so cross-shard posts
	// (message deliveries, request completions) need no per-event
	// closure allocation. The callback receives the event's time.
	pfn  func(Time, any)
	parg any

	// procs, when non-nil, is a group wake: firing dispatches every
	// process in order with a single heap pop. The slice is owned by the
	// engine from WakeAllAt until the event fires (or is drained by
	// Reset), at which point it returns to the proc-slice pool.
	procs []*Proc

	canceled bool
	index    int // heap index, -1 when popped
}

// Cancel prevents a pending event from firing. Canceling an event that
// is currently firing (from within its own callback) is a no-op; see
// the handle-validity note on Event for already-fired events. Cancel
// must be called from the event's own shard (or any single-threaded
// phase); canceling another shard's event mid-window is a data race.
func (ev *Event) Cancel() { ev.canceled = true }

// When returns the virtual time at which the event is scheduled.
func (ev *Event) When() Time { return ev.when }

// Engine is a discrete-event simulator. The zero value is not usable;
// construct one with NewEngine.
type Engine struct {
	now    Time
	shards []*shard
	heads  []headEntry // min-merge over non-empty, non-active shards

	rng  *rand.Rand
	seed int64

	stopped  bool
	running  bool
	shutdown bool

	// ctx is the shard whose event (or setup code) is currently
	// executing in a single-threaded phase; engine-level scheduling
	// APIs (At, After, Spawn, WakeAt) stamp events with it. During
	// windowed shard execution it is not meaningful — window code must
	// use Proc-scoped APIs, which derive the context from the process.
	ctx *shard

	// Windowed-mode configuration and state.
	workers   int  // 0 = serial; >=1 enables windowed execution
	lookahead Time // cross-shard latency lower bound (0 disables windowed)
	inWindow  bool // inside a window's shard-execution phase
	curH      Time // current window horizon (0 outside windows)
	active    []*shard
	dirty     []*shard // shards with pending inbox entries
	dirtyMu   sync.Mutex

	// Window-chain bookkeeping (see runWindow/runChain): the cursor
	// into active, the count of active shards not yet exhausted, and
	// the one-token channel the last finisher signals. Buffered so the
	// finisher never blocks, even when it is the coordinator itself.
	winNext atomic.Int64
	winLeft atomic.Int64
	winDone chan struct{}

	procs     []*Proc
	liveProcs int
	procMu    sync.Mutex // guards procs/freeProcs for mid-window spawns

	// Reuse pools. freeProcs recycles Proc structs (and their resume
	// channels) across Reset cycles; procSlices recycles group-wake
	// waiter backing arrays, keyed on exact capacity so a communicator's
	// waiter list round-trips through the pool without reallocating.
	freeProcs  []*Proc
	procSlices map[int][][]*Proc
	sliceMu    sync.Mutex

	// Windowed-run tallies (coordinator-only).
	windows       uint64
	windowShards  uint64
	horizonStalls uint64

	// Observability (see SetRecorder). rec is never nil.
	rec          obs.Recorder
	traceProcs   bool
	depthEvented int
	// synced copies of the tallies already folded into the recorder.
	eventsSynced                                    uint64
	sleepsSynced                                    uint64
	spawnsSynced                                    uint64
	exitsSynced                                     uint64
	windowsSynced, windowShardsSynced, stallsSynced uint64
}

// NewEngine returns an engine whose random stream is seeded with seed.
// Two engines built with the same seed and driven by the same program
// produce identical event sequences.
func NewEngine(seed int64) *Engine {
	e := &Engine{
		rng:     rand.New(rand.NewSource(seed)),
		seed:    seed,
		rec:     obs.Disabled,
		winDone: make(chan struct{}, 1),
	}
	e.ctx = e.shardFor(0)
	return e
}

// shardFor returns shard id, growing the shard table as needed. Shards
// persist across Reset so their free lists and park channels stay warm
// for the next run.
func (e *Engine) shardFor(id int32) *shard {
	for int(id) >= len(e.shards) {
		s := &shard{
			id:     int32(len(e.shards)),
			eng:    e,
			parked: make(chan struct{}),
			pos:    -1,
		}
		e.shards = append(e.shards, s)
	}
	return e.shards[id]
}

// Shards reports how many shards exist (system shard included).
func (e *Engine) Shards() int { return len(e.shards) }

// SetRecorder attaches an observability recorder. The engine counts
// spawns, process exits, sleeps, and fired events, tracks the maximum
// event-queue depth as a gauge, and — when the recorder consumes
// events — emits proc_spawn/proc_stop events plus queue_depth events
// each time the maximum depth roughly doubles. Per-sleep proc_sleep
// events are additionally gated behind TraceProcs, since they dominate
// trace volume. A nil recorder detaches (restores obs.Disabled).
//
// Recording is pure observation: it never touches the engine's random
// stream or event ordering, so attaching a recorder cannot perturb
// virtual-time results. Structured-event recording is only supported
// in serial mode (windowed workers would race on the sink); counters
// and gauges are folded at window barriers and work in every mode.
func (e *Engine) SetRecorder(r obs.Recorder) {
	if r == nil {
		r = obs.Disabled
	}
	e.rec = r
}

// Recorder returns the attached recorder (obs.Disabled by default).
func (e *Engine) Recorder() obs.Recorder { return e.rec }

// TraceProcs toggles per-sleep proc_sleep trace events (off by
// default; spawn/stop events only need SetRecorder).
func (e *Engine) TraceProcs(on bool) { e.traceProcs = on }

// Now returns the current virtual time: in serial mode the time of the
// last dispatched event, in windowed mode the committed horizon (no
// pending event is earlier than it). Process bodies should prefer
// Proc.Now, which is exact in both modes.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. It must only
// be used from setup code, system-shard (shard 0) events, and tests —
// contexts that execute serially in every mode. Rank-context code uses
// per-rank streams (see Rng) so draws are independent of cross-shard
// execution order.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Seed returns the seed of the engine's current random stream; worlds
// derive per-rank and keyed streams from it.
func (e *Engine) Seed() int64 { return e.seed }

// SetParallel selects windowed (conservative parallel-DES) execution
// with the given worker count; 0 restores serial execution. Windowed
// execution also requires a positive lookahead (SetLookahead) — without
// one Run falls back to the serial loop. workers == 1 runs the windowed
// algorithm on the coordinator goroutine alone: on a single-core host
// that is the fast configuration (the speedup comes from shard-local
// batching, not concurrency), while workers > 1 executes a window's
// shards on that many goroutines.
func (e *Engine) SetParallel(workers int) {
	if e.running {
		panic("sim: SetParallel while running")
	}
	if workers < 0 {
		workers = 0
	}
	e.workers = workers
}

// Parallel reports the configured windowed worker count (0 = serial).
func (e *Engine) Parallel() int { return e.workers }

// SetLookahead declares the minimum virtual-time distance between an
// action on one shard and its earliest possible effect on another —
// for the MPI world, the latency model's jitter-adjusted minimum of
// Base and CollBase. Windowed execution is sound exactly when every
// cross-shard interaction respects it; the engine enforces it with a
// panic on violation, so a too-large value fails loudly rather than
// corrupting results.
func (e *Engine) SetLookahead(d Time) {
	if d < 0 {
		d = 0
	}
	e.lookahead = d
}

// Lookahead returns the declared cross-shard lookahead.
func (e *Engine) Lookahead() Time { return e.lookahead }

// EventsFired reports how many events have executed so far, summed
// over shards. Inline-executed sleeps (the windowed fast path) count
// exactly like the wake events the serial engine fires for them, so
// the tally is mode-independent.
func (e *Engine) EventsFired() uint64 {
	var n uint64
	for _, s := range e.shards {
		n += s.fired
	}
	return n
}

// Procs returns all processes ever spawned on the engine, in spawn order.
func (e *Engine) Procs() []*Proc { return e.procs }

// LiveProcs reports the number of spawned processes that have not yet
// terminated.
func (e *Engine) LiveProcs() int {
	e.procMu.Lock()
	defer e.procMu.Unlock()
	return e.liveProcs
}

// scheduleLocal allocates an event on shard s with s's own counter
// stamp and pushes it. The caller must be executing on s (its window
// worker, its dispatched process, or a single-threaded phase with
// ctx == s). floor is the causality check reference.
func (e *Engine) scheduleLocal(s *shard, t Time) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before shard %d time %v", t, s.id, s.now))
	}
	ev := s.alloc()
	ev.when = t
	ev.src = s.id
	ev.seq = s.seq
	s.seq++
	s.queue.push(ev)
	s.notePush()
	if !e.inWindow {
		e.onHeadChanged(s, ev)
	}
	return ev
}

// schedulePost allocates an event stamped by src's shard counter and
// routes it to dst's shard: the deterministic cross-shard post behind
// message deliveries. Outside window execution (setup, system events,
// serial runs) the event is pushed directly; during a window it goes
// through the target's inbox when other workers may own the target.
func (e *Engine) schedulePost(src, dst *shard, t Time) *Event {
	if src == dst {
		return e.scheduleLocal(src, t)
	}
	ev := src.alloc()
	ev.when = t
	ev.src = src.id
	ev.seq = src.seq
	src.seq++
	e.routeRemote(dst, ev)
	return ev
}

// scheduleWake allocates a canonical wake event for p: stamped with
// p's home shard and p's shard-local id rather than any scheduler
// counter, because cross-shard wakers' identities (who completed the
// collective last) depend on execution order. The canonical stamp
// makes the event's queue position a pure function of mode-independent
// data, so serial and windowed runs order it identically. The event is
// allocated from src — the waker's context — since p's shard may be
// executing concurrently.
func (e *Engine) scheduleWake(src *shard, p *Proc, t Time) *Event {
	s := p.shard
	ev := src.alloc()
	ev.when = t
	ev.src = s.id
	ev.seq = wakeSeqBit | p.localID
	ev.proc = p
	if s == src {
		// Waking a peer on one's own shard is shard-local: no lookahead
		// constraint and no routing indirection.
		if t < s.now {
			panic(fmt.Sprintf("sim: scheduling event at %v before shard %d time %v", t, s.id, s.now))
		}
		s.queue.push(ev)
		s.notePush()
		if !e.inWindow {
			e.onHeadChanged(s, ev)
		}
		return ev
	}
	e.routeRemote(s, ev)
	return ev
}

// routeRemote inserts a stamped event into target's queue, via the
// inbox when the target may be concurrently executing its own window.
func (e *Engine) routeRemote(target *shard, ev *Event) {
	if ev.when < target.committed {
		panic(fmt.Sprintf(
			"sim: lookahead violation: event at %v posted to shard %d committed through %v",
			ev.when, target.id, target.committed))
	}
	if !e.inWindow {
		if ev.when < e.now {
			panic(fmt.Sprintf("sim: scheduling event at %v before now %v", ev.when, e.now))
		}
		target.queue.push(ev)
		target.notePush()
		e.onHeadChanged(target, ev)
		return
	}
	if e.curH > 0 && ev.when < e.curH {
		panic(fmt.Sprintf(
			"sim: lookahead violation: cross-shard event at %v inside window horizon %v",
			ev.when, e.curH))
	}
	if e.workers <= 1 {
		// Single-driver window: the coordinator is the only goroutine
		// touching any queue, so the inbox indirection is unnecessary.
		target.queue.push(ev)
		target.notePush()
		if !target.active {
			e.onHeadChanged(target, ev)
		}
		return
	}
	target.inboxMu.Lock()
	target.inbox = append(target.inbox, ev)
	target.inboxMu.Unlock()
	e.dirtyMu.Lock()
	if !target.indirty {
		target.indirty = true
		e.dirty = append(e.dirty, target)
	}
	e.dirtyMu.Unlock()
}

// notePush records depth bookkeeping after a queue push; the ~2x-growth
// structured depth event is only emitted from single-threaded phases.
func (s *shard) notePush() {
	n := len(s.queue)
	if n > s.maxDepth {
		s.maxDepth = n
		e := s.eng
		if !e.inWindow && e.rec.Enabled() && n >= 2*e.depthEvented {
			e.depthEvented = n
			e.rec.Event(e.now, EvQueueDepth, obs.Int("depth", int64(n)))
		}
	}
}

// GetProcSlice returns an empty process slice with at least the given
// capacity, reusing a pooled backing array when one of that exact
// capacity is available. Callers either hand the slice back through
// PutProcSlice or transfer ownership to the engine via WakeAllAt.
// The pool is mutex-guarded: collectives on different communicators
// may request slices from concurrent windowed workers.
func (e *Engine) GetProcSlice(capacity int) []*Proc {
	if capacity < 1 {
		capacity = 1
	}
	e.sliceMu.Lock()
	defer e.sliceMu.Unlock()
	if l := e.procSlices[capacity]; len(l) > 0 {
		s := l[len(l)-1]
		l[len(l)-1] = nil
		e.procSlices[capacity] = l[:len(l)-1]
		return s
	}
	return make([]*Proc, 0, capacity)
}

// PutProcSlice returns a slice obtained from GetProcSlice (or grown
// from one) to the pool. The slice must not be used afterwards.
func (e *Engine) PutProcSlice(s []*Proc) {
	if cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	for i := range s {
		s[i] = nil // drop proc references so pooled arrays don't pin them
	}
	e.sliceMu.Lock()
	if e.procSlices == nil {
		e.procSlices = make(map[int][][]*Proc)
	}
	e.procSlices[cap(s)] = append(e.procSlices[cap(s)], s[:0])
	e.sliceMu.Unlock()
}

// WakeAllAt schedules every process in procs to resume at time t.
// Serially that is a single queued group event — one heap insertion
// instead of one per waiter, which keeps large collectives O(log queue)
// instead of O(N log queue); in windowed mode each waiter gets a
// canonical per-shard wake event. Processes are dispatched in slice
// order, and each dispatch counts as one fired event, so the wake
// order and the engine's event tally are identical across modes. Every
// process must be suspended; ownership of the slice transfers to the
// engine (a group event returns it to the proc-slice pool after
// firing; the fan-out path returns it immediately). An empty slice
// schedules nothing and returns nil.
//
// It must be called from a single-threaded phase or, in windowed mode,
// from the caller process ctx (see Proc.WakeAllAt, which collectives
// use).
func (e *Engine) WakeAllAt(t Time, procs []*Proc) *Event {
	return e.wakeAll(e.ctx, t, procs)
}

func (e *Engine) wakeAll(src *shard, t Time, procs []*Proc) *Event {
	if len(procs) == 0 {
		if procs != nil {
			e.PutProcSlice(procs)
		}
		return nil
	}
	if e.workers > 0 && e.lookahead > 0 {
		// Windowed: canonical per-waiter wakes, identical order. With
		// multiple window workers a cross-shard waiter's state word may
		// still be in flight (it parks after registering), so marking is
		// deferred to the window barrier; see Proc.WakePeerAt.
		deferCross := e.inWindow && e.workers > 1
		for _, p := range procs {
			if deferCross && p.shard != src {
				e.scheduleWake(src, p, t)
				continue
			}
			if p.state != ProcSuspended {
				panic(fmt.Sprintf("sim: WakeAllAt(%s) in state %s", p.Name, p.state))
			}
			p.state = ProcSleeping
			p.wake = e.scheduleWake(src, p, t)
		}
		e.PutProcSlice(procs)
		return nil
	}
	ev := e.scheduleLocal(src, t)
	ev.procs = procs
	for _, p := range procs {
		if p.state != ProcSuspended {
			panic(fmt.Sprintf("sim: WakeAllAt(%s) in state %s", p.Name, p.state))
		}
		// Mark sleeping-with-event so a concurrent WakeAt panics, exactly
		// as an individual wake would.
		p.state = ProcSleeping
		p.wake = ev
	}
	return ev
}

// At schedules fn to run at absolute virtual time t on the current
// context shard (shard 0 for setup/system code). It must only be
// called from single-threaded phases — setup, tests, system events,
// or any serial run; windowed rank code uses Proc-scoped scheduling.
func (e *Engine) At(t Time, fn func()) *Event {
	ev := e.scheduleCtx(t)
	ev.fn = fn
	return ev
}

// scheduleCtx schedules on the current single-threaded context shard
// with the engine-clock causality check (the pre-sharding contract).
func (e *Engine) scheduleCtx(t Time) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	s := e.ctx
	ev := s.alloc()
	ev.when = t
	ev.src = s.id
	ev.seq = s.seq
	s.seq++
	s.queue.push(ev)
	s.notePush()
	e.onHeadChanged(s, ev)
	return ev
}

// MaxQueueDepth reports the largest per-shard event-queue length seen
// so far (the deepest any single shard's queue has been).
func (e *Engine) MaxQueueDepth() int {
	max := 0
	for _, s := range e.shards {
		if s.maxDepth > max {
			max = s.maxDepth
		}
	}
	return max
}

// syncObs folds engine-side tallies into the recorder; called when a
// Run slice finishes (and after Shutdown) so hot loops stay free of
// per-event recorder work.
func (e *Engine) syncObs() {
	var fired, sleeps, spawns, exits uint64
	for _, s := range e.shards {
		fired += s.fired
		sleeps += s.sleeps
		spawns += s.spawns
		exits += s.exits
	}
	if d := fired - e.eventsSynced; d > 0 {
		e.eventsSynced = fired
		e.rec.Count(CtrEvents, int64(d))
	}
	if d := sleeps - e.sleepsSynced; d > 0 {
		e.sleepsSynced = sleeps
		e.rec.Count(CtrSleeps, int64(d))
	}
	if d := spawns - e.spawnsSynced; d > 0 {
		e.spawnsSynced = spawns
		e.rec.Count(CtrSpawns, int64(d))
	}
	if d := exits - e.exitsSynced; d > 0 {
		e.exitsSynced = exits
		e.rec.Count(CtrProcExits, int64(d))
	}
	if d := e.windows - e.windowsSynced; d > 0 {
		e.windowsSynced = e.windows
		e.rec.Count(CtrWindows, int64(d))
	}
	if d := e.windowShards - e.windowShardsSynced; d > 0 {
		e.windowShardsSynced = e.windowShards
		e.rec.Count(CtrWindowShards, int64(d))
	}
	if d := e.horizonStalls - e.stallsSynced; d > 0 {
		e.stallsSynced = e.horizonStalls
		e.rec.Count(CtrHorizonStalls, int64(d))
	}
	e.rec.Gauge(GaugeQueueDepthMax, float64(e.MaxQueueDepth()))
}

// After schedules fn to run d from now (see At for context rules).
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop halts the run loop after the currently executing event (or, in
// windowed mode, the current window) completes. Pending events remain
// queued; a subsequent Run call resumes from them.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called since the last Run.
func (e *Engine) Stopped() bool { return e.stopped }

// Run executes events in virtual-time order until one of: the queue is
// empty, Stop is called, or the clock passes until (a zero until means
// no limit). It returns the virtual time at which it stopped.
//
// An empty queue with live processes means every process is blocked
// with nobody scheduled to wake it — the simulated equivalent of a
// global hang with no monitor attached. Run simply returns in that
// case; callers can inspect LiveProcs to distinguish it from normal
// completion.
//
// With SetParallel(n>0) and a positive SetLookahead, Run uses the
// windowed conservative executor; results are bit-identical to the
// serial loop.
func (e *Engine) Run(until Time) Time {
	if e.workers > 0 && e.lookahead > 0 {
		return e.runWindowed(until)
	}
	return e.runSerial(until)
}

func (e *Engine) runSerial(until Time) Time {
	e.stopped = false
	e.running = true
	defer func() {
		e.running = false
		e.ctx = e.shards[0]
		e.syncObs()
	}()
	for len(e.heads) > 0 && !e.stopped {
		if until > 0 && e.heads[0].when > until {
			e.now = until
			return e.now
		}
		e.runOneStep()
	}
	return e.now
}

// runOneStep pops and fires the single earliest event in the system:
// the serial loop's body, also used by the windowed executor whenever
// the system shard holds the global minimum.
func (e *Engine) runOneStep() {
	s := e.headsPopMin()
	s.active = true
	next := s.queue.popMin()
	if next.canceled {
		s.recycle(next)
		e.headsRestore(s)
		return
	}
	if next.when > e.now {
		e.now = next.when
	}
	s.now = next.when
	e.ctx = s
	s.fire(next)
	// Recycled only after the callback returns, so a Cancel from
	// within the event's own callback stays a safe no-op.
	s.recycle(next)
	e.headsRestore(s)
}

// RunAll runs with no time limit.
func (e *Engine) RunAll() Time { return e.Run(0) }

// PendingEvents reports the number of queued (possibly canceled)
// events across all shards and inboxes.
func (e *Engine) PendingEvents() int {
	n := 0
	for _, s := range e.shards {
		n += len(s.queue) + len(s.inbox)
	}
	return n
}

// Shutdown terminates every live simulated process, releasing their
// goroutines. Campaigns that run thousands of simulations — many ending
// in hangs whose processes would otherwise stay parked forever — call
// this after each run to keep goroutine and memory usage flat. The
// engine must not be running; after Shutdown it must not be reused
// until Reset.
func (e *Engine) Shutdown() {
	if e.running {
		panic("sim: Shutdown while running")
	}
	e.shutdown = true
	for _, p := range e.procs {
		for p.state == ProcReady || p.state == ProcSleeping || p.state == ProcSuspended {
			// Hand the goroutine control; park/Sleep (or the spawn
			// wrapper, for never-started processes) observes the
			// shutdown flag and unwinds via a procExit panic; the spawn
			// wrapper recovers it and parks back one final time.
			p.resume <- struct{}{}
			<-p.shard.parked
		}
	}
	e.syncObs()
}

// Reset returns the engine to its just-constructed state with a fresh
// random stream seeded with seed, while retaining every warm structure
// (shards, event free lists, processes, group-wake slices). A reset
// engine is indistinguishable from NewEngine(seed) to the simulation —
// virtual time, event sequence numbers, the random stream, and all
// counters restart from zero — which is what lets campaigns reuse one
// engine across seeds instead of reallocating per run. Live processes
// are Shutdown first; the attached recorder is kept (pass a new one via
// SetRecorder for the next run). Parallelism and lookahead revert to
// serial defaults; callers re-apply them per run.
func (e *Engine) Reset(seed int64) {
	if e.running {
		panic("sim: Reset while running")
	}
	e.Shutdown()
	for _, s := range e.shards {
		s.reset()
	}
	e.heads = e.heads[:0]
	for i, p := range e.procs {
		// All processes are Done after Shutdown; their goroutines have
		// exited, so the structs (and resume channels) are reusable.
		p.eng = nil
		p.shard = nil
		p.wake = nil
		p.penalty = 0
		e.freeProcs = append(e.freeProcs, p)
		e.procs[i] = nil
	}
	e.procs = e.procs[:0]
	e.liveProcs = 0
	e.now = 0
	e.stopped = false
	e.shutdown = false
	e.workers = 0
	e.lookahead = 0
	e.inWindow = false
	e.curH = 0
	e.active = e.active[:0]
	e.dirty = e.dirty[:0]
	e.windows = 0
	e.windowShards = 0
	e.horizonStalls = 0
	e.eventsSynced = 0
	e.sleepsSynced = 0
	e.spawnsSynced = 0
	e.exitsSynced = 0
	e.windowsSynced = 0
	e.windowShardsSynced = 0
	e.stallsSynced = 0
	e.depthEvented = 0
	e.ctx = e.shards[0]
	e.seed = seed
	e.rng.Seed(seed)
}

// procExit is the sentinel panic used to unwind a simulated process's
// goroutine during Shutdown. Process bodies' defers run normally.
type procExit struct{}
