// Package sim provides a deterministic discrete-event simulation engine
// with goroutine-based simulated processes and a virtual clock.
//
// The engine is the substrate on which the simulated MPI runtime
// (package mpi), the workload skeletons (package workload), and the
// ParaStack monitor (package core) execute. Exactly one simulated
// process (or event callback) runs at a time; control is handed between
// the scheduler goroutine and process goroutines over unbuffered
// channels, so shared simulation state needs no further locking and
// every run is reproducible from the engine's random seed.
//
// Virtual time is represented as time.Duration offsets from the start
// of the simulation. Sleeping, blocking on a condition, and waking
// other processes are the only ways time advances; wall-clock time
// never leaks into the simulation.
package sim

import (
	"fmt"
	"math/rand"
	"time"

	"parastack/internal/obs"
)

// Counter, gauge, and event names the engine reports through its
// recorder (see Engine.SetRecorder).
const (
	CtrSpawns    = "engine.spawns"     // processes spawned
	CtrProcExits = "engine.proc_exits" // processes terminated
	CtrSleeps    = "engine.sleeps"     // Proc.Sleep calls
	CtrEvents    = "engine.events"     // events fired (synced per Run)

	GaugeQueueDepthMax = "engine.queue_depth_max"

	EvProcSpawn  = "proc_spawn"  // fields: proc, name
	EvProcSleep  = "proc_sleep"  // fields: proc, dur_us (TraceProcs only)
	EvProcStop   = "proc_stop"   // fields: proc, name
	EvQueueDepth = "queue_depth" // fields: depth (on ~2x growth)
)

// Time is an absolute instant on the virtual clock, measured as an
// offset from the beginning of the simulation.
type Time = time.Duration

// Event is a scheduled callback. Events with equal times fire in
// scheduling order (FIFO), which keeps runs deterministic.
//
// Fired events are recycled through the engine's free list, so an
// *Event handle is only valid until its event fires: cancel pending
// events, never handles retained past their firing time (canceling
// from within the event's own callback is still safe).
type Event struct {
	when Time
	seq  uint64
	fn   func()
	proc *Proc // when non-nil, firing dispatches this process directly

	// procs, when non-nil, is a group wake: firing dispatches every
	// process in order with a single heap pop. The slice is owned by the
	// engine from WakeAllAt until the event fires (or is drained by
	// Reset), at which point it returns to the proc-slice pool.
	procs []*Proc

	canceled bool
	index    int // heap index, -1 when popped
}

// Cancel prevents a pending event from firing. Canceling an event that
// is currently firing (from within its own callback) is a no-op; see
// the handle-validity note on Event for already-fired events.
func (ev *Event) Cancel() { ev.canceled = true }

// When returns the virtual time at which the event is scheduled.
func (ev *Event) When() Time { return ev.when }

// eventBefore is the queue's total order: earlier virtual time first,
// scheduling order (seq) breaking ties. Because the order is total,
// every correct heap implementation pops events in the same sequence,
// which is what keeps runs bit-identical across engine versions.
func eventBefore(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// eventHeap is a binary min-heap ordered by eventBefore. The sift
// operations are hand-inlined rather than going through
// container/heap's interface so the hot path stays monomorphic: no
// `any` boxing on push/pop and no indirect Less/Swap calls.
type eventHeap []*Event

// push inserts ev, sifting it up from the last slot. Parents are moved
// down into the hole instead of swapped pairwise.
func (h *eventHeap) push(ev *Event) {
	q := append(*h, ev)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventBefore(ev, q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].index = i
		i = parent
	}
	q[i] = ev
	ev.index = i
	*h = q
}

// popMin removes and returns the earliest event, re-seating the last
// element by sifting it down from the root.
func (h *eventHeap) popMin() *Event {
	q := *h
	min := q[0]
	min.index = -1
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	q = q[:n]
	*h = q
	if n == 0 {
		return min // fast path: queue drained, nothing to re-seat
	}
	i := 0
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && eventBefore(q[r], q[child]) {
			child = r
		}
		if !eventBefore(q[child], last) {
			break
		}
		q[i] = q[child]
		q[i].index = i
		i = child
	}
	q[i] = last
	last.index = i
	return min
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct one with NewEngine.
type Engine struct {
	now      Time
	queue    eventHeap
	free     []*Event // recycled fired events, reused by schedule
	seq      uint64
	rng      *rand.Rand
	parked   chan struct{} // handoff from a running process back to the scheduler
	stopped  bool
	running  bool
	shutdown bool

	procs     []*Proc
	liveProcs int

	// Reuse pools. freeProcs recycles Proc structs (and their resume
	// channels) across Reset cycles; procSlices recycles group-wake
	// waiter backing arrays, keyed on exact capacity so a communicator's
	// waiter list round-trips through the pool without reallocating.
	freeProcs  []*Proc
	procSlices map[int][][]*Proc

	// Stats, useful for tests and benchmarks.
	eventsFired uint64

	// Observability (see SetRecorder). rec is never nil.
	rec          obs.Recorder
	traceProcs   bool
	maxDepth     int
	depthEvented int
	eventsSynced uint64 // eventsFired already folded into CtrEvents
}

// NewEngine returns an engine whose random stream is seeded with seed.
// Two engines built with the same seed and driven by the same program
// produce identical event sequences.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:    rand.New(rand.NewSource(seed)),
		parked: make(chan struct{}),
		rec:    obs.Disabled,
	}
}

// SetRecorder attaches an observability recorder. The engine counts
// spawns, process exits, sleeps, and fired events, tracks the maximum
// event-queue depth as a gauge, and — when the recorder consumes
// events — emits proc_spawn/proc_stop events plus queue_depth events
// each time the maximum depth roughly doubles. Per-sleep proc_sleep
// events are additionally gated behind TraceProcs, since they dominate
// trace volume. A nil recorder detaches (restores obs.Disabled).
//
// Recording is pure observation: it never touches the engine's random
// stream or event ordering, so attaching a recorder cannot perturb
// virtual-time results.
func (e *Engine) SetRecorder(r obs.Recorder) {
	if r == nil {
		r = obs.Disabled
	}
	e.rec = r
}

// Recorder returns the attached recorder (obs.Disabled by default).
func (e *Engine) Recorder() obs.Recorder { return e.rec }

// TraceProcs toggles per-sleep proc_sleep trace events (off by
// default; spawn/stop events only need SetRecorder).
func (e *Engine) TraceProcs(on bool) { e.traceProcs = on }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. It must only
// be used from event callbacks and simulated processes (i.e. while the
// simulation is running or before it starts), never concurrently.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// EventsFired reports how many events have executed so far.
func (e *Engine) EventsFired() uint64 { return e.eventsFired }

// Procs returns all processes ever spawned on the engine, in spawn order.
func (e *Engine) Procs() []*Proc { return e.procs }

// LiveProcs reports the number of spawned processes that have not yet
// terminated.
func (e *Engine) LiveProcs() int { return e.liveProcs }

// schedule allocates (or recycles) an event at absolute virtual time t
// and inserts it into the queue. Scheduling in the past panics: it
// would silently reorder causality.
func (e *Engine) schedule(t Time) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.when = t
	ev.seq = e.seq
	e.seq++
	e.queue.push(ev)
	if n := len(e.queue); n > e.maxDepth {
		e.maxDepth = n
		// Emit depth milestones on ~2x growth only, so the trace stays
		// bounded even for million-event simulations.
		if e.rec.Enabled() && n >= 2*e.depthEvented {
			e.depthEvented = n
			e.rec.Event(e.now, EvQueueDepth, obs.Int("depth", int64(n)))
		}
	}
	return ev
}

// recycle resets a popped event and returns it to the free list. The
// free list never exceeds the maximum number of concurrently pending
// events, so it needs no cap of its own. A group-wake event's waiter
// slice returns to the proc-slice pool here.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	ev.proc = nil
	if ev.procs != nil {
		e.PutProcSlice(ev.procs)
		ev.procs = nil
	}
	ev.canceled = false
	e.free = append(e.free, ev)
}

// GetProcSlice returns an empty process slice with at least the given
// capacity, reusing a pooled backing array when one of that exact
// capacity is available. Callers either hand the slice back through
// PutProcSlice or transfer ownership to the engine via WakeAllAt.
func (e *Engine) GetProcSlice(capacity int) []*Proc {
	if capacity < 1 {
		capacity = 1
	}
	if l := e.procSlices[capacity]; len(l) > 0 {
		s := l[len(l)-1]
		l[len(l)-1] = nil
		e.procSlices[capacity] = l[:len(l)-1]
		return s
	}
	return make([]*Proc, 0, capacity)
}

// PutProcSlice returns a slice obtained from GetProcSlice (or grown
// from one) to the pool. The slice must not be used afterwards.
func (e *Engine) PutProcSlice(s []*Proc) {
	if cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	for i := range s {
		s[i] = nil // drop proc references so pooled arrays don't pin them
	}
	if e.procSlices == nil {
		e.procSlices = make(map[int][][]*Proc)
	}
	e.procSlices[cap(s)] = append(e.procSlices[cap(s)], s[:0])
}

// WakeAllAt schedules every process in procs to resume at time t with a
// single queued event: one heap insertion instead of one per waiter,
// which is what keeps large collectives O(log queue) instead of
// O(N log queue). Processes are dispatched in slice order, and each
// dispatch counts as one fired event, so the wake order and the
// engine's event tally are bit-identical to looping WakeAt over the
// same slice. Every process must be suspended; ownership of the slice
// transfers to the engine (it returns to the proc-slice pool after the
// event fires). An empty slice schedules nothing and returns nil.
func (e *Engine) WakeAllAt(t Time, procs []*Proc) *Event {
	if len(procs) == 0 {
		if procs != nil {
			e.PutProcSlice(procs)
		}
		return nil
	}
	ev := e.schedule(t)
	ev.procs = procs
	for _, p := range procs {
		if p.state != ProcSuspended {
			panic(fmt.Sprintf("sim: WakeAllAt(%s) in state %s", p.Name, p.state))
		}
		// Mark sleeping-with-event so a concurrent WakeAt panics, exactly
		// as an individual wake would.
		p.state = ProcSleeping
		p.wake = ev
	}
	return ev
}

// At schedules fn to run at absolute virtual time t.
func (e *Engine) At(t Time, fn func()) *Event {
	ev := e.schedule(t)
	ev.fn = fn
	return ev
}

// atProc schedules a direct process dispatch at time t. This is the
// allocation-free fast path for Sleep/Wake/Spawn: no callback closure
// is created, the run loop dispatches the process straight from the
// event's proc field.
func (e *Engine) atProc(t Time, p *Proc) *Event {
	ev := e.schedule(t)
	ev.proc = p
	return ev
}

// MaxQueueDepth reports the largest event-queue length seen so far.
func (e *Engine) MaxQueueDepth() int { return e.maxDepth }

// syncObs folds engine-side tallies into the recorder; called when a
// Run slice finishes so hot loops stay free of per-event recorder work.
func (e *Engine) syncObs() {
	if d := e.eventsFired - e.eventsSynced; d > 0 {
		e.eventsSynced = e.eventsFired
		e.rec.Count(CtrEvents, int64(d))
	}
	e.rec.Gauge(GaugeQueueDepthMax, float64(e.maxDepth))
}

// After schedules fn to run d from now.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop halts the run loop after the currently executing event returns.
// Pending events remain queued; a subsequent Run call resumes from them.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called since the last Run.
func (e *Engine) Stopped() bool { return e.stopped }

// Run executes events in virtual-time order until one of: the queue is
// empty, Stop is called, or the clock passes until (a zero until means
// no limit). It returns the virtual time at which it stopped.
//
// An empty queue with live processes means every process is blocked
// with nobody scheduled to wake it — the simulated equivalent of a
// global hang with no monitor attached. Run simply returns in that
// case; callers can inspect LiveProcs to distinguish it from normal
// completion.
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	e.running = true
	defer func() {
		e.running = false
		e.syncObs()
	}()
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if until > 0 && next.when > until {
			e.now = until
			return e.now
		}
		e.queue.popMin()
		if next.canceled {
			e.recycle(next)
			continue
		}
		if next.when > e.now {
			e.now = next.when
		}
		// Fast path: the overwhelmingly common event is a process
		// dispatch (sleep wakeup / suspend resume); it carries the
		// process directly instead of a closure.
		switch {
		case next.proc != nil:
			e.eventsFired++
			e.dispatch(next.proc)
		case next.procs != nil:
			// Group wake: one heap pop releases the whole waiter list.
			// Each dispatch counts as a fired event so the tally stays
			// identical to the one-event-per-waiter formulation.
			for _, p := range next.procs {
				e.eventsFired++
				e.dispatch(p)
			}
		default:
			e.eventsFired++
			next.fn()
		}
		// Recycled only after the callback returns, so a Cancel from
		// within the event's own callback stays a safe no-op.
		e.recycle(next)
	}
	return e.now
}

// RunAll runs with no time limit.
func (e *Engine) RunAll() Time { return e.Run(0) }

// PendingEvents reports the number of queued (possibly canceled) events.
func (e *Engine) PendingEvents() int { return len(e.queue) }

// Shutdown terminates every live simulated process, releasing their
// goroutines. Campaigns that run thousands of simulations — many ending
// in hangs whose processes would otherwise stay parked forever — call
// this after each run to keep goroutine and memory usage flat. The
// engine must not be running; after Shutdown it must not be reused
// until Reset.
func (e *Engine) Shutdown() {
	if e.running {
		panic("sim: Shutdown while running")
	}
	e.shutdown = true
	for _, p := range e.procs {
		for p.state == ProcReady || p.state == ProcSleeping || p.state == ProcSuspended {
			// Hand the goroutine control; park/Sleep (or the spawn
			// wrapper, for never-started processes) observes the
			// shutdown flag and unwinds via a procExit panic; the spawn
			// wrapper recovers it and parks back one final time.
			p.resume <- struct{}{}
			<-e.parked
		}
	}
}

// Reset returns the engine to its just-constructed state with a fresh
// random stream seeded with seed, while retaining every warm free list
// (events, processes, group-wake slices). A reset engine is
// indistinguishable from NewEngine(seed) to the simulation — virtual
// time, event sequence numbers, the random stream, and all counters
// restart from zero — which is what lets campaigns reuse one engine
// across seeds instead of reallocating per run. Live processes are
// Shutdown first; the attached recorder is kept (pass a new one via
// SetRecorder for the next run).
func (e *Engine) Reset(seed int64) {
	if e.running {
		panic("sim: Reset while running")
	}
	e.Shutdown()
	// Drain the queue into the free list without firing anything;
	// recycle returns group-wake slices to their pool.
	for len(e.queue) > 0 {
		e.recycle(e.queue.popMin())
	}
	for i, p := range e.procs {
		// All processes are Done after Shutdown; their goroutines have
		// exited, so the structs (and resume channels) are reusable.
		p.eng = nil
		p.wake = nil
		p.penalty = 0
		e.freeProcs = append(e.freeProcs, p)
		e.procs[i] = nil
	}
	e.procs = e.procs[:0]
	e.liveProcs = 0
	e.now = 0
	e.seq = 0
	e.stopped = false
	e.shutdown = false
	e.eventsFired = 0
	e.eventsSynced = 0
	e.maxDepth = 0
	e.depthEvented = 0
	e.rng.Seed(seed)
}

// procExit is the sentinel panic used to unwind a simulated process's
// goroutine during Shutdown. Process bodies' defers run normally.
type procExit struct{}
