package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEventHeapProperty drives eventHeap with random interleavings of
// push, popMin, and Cancel, and checks every pop against a reference
// model: the earliest (when, src) key among live events, FIFO among
// equals. Sequence stamps are assigned in push order per source shard,
// so the heap's full (when, src, seq) order must coincide with that
// reference — equal-key events must come out in push order, which is
// exactly the documented tie-break contract. Times and sources are
// drawn from tiny ranges to force heavy tie collisions, and the heap's
// index bookkeeping is validated after every operation.
func TestEventHeapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		var h eventHeap
		var model []*Event  // live (non-canceled) events in push order
		seqs := [3]uint64{} // per-source push counters

		checkIndexes := func() {
			t.Helper()
			for i, ev := range h {
				if ev.index != i {
					t.Fatalf("trial %d: heap[%d].index = %d", trial, i, ev.index)
				}
			}
		}
		// refPop removes and returns the model's expected next event.
		refPop := func() *Event {
			best := 0
			for i := 1; i < len(model); i++ {
				ev, b := model[i], model[best]
				if ev.when < b.when || (ev.when == b.when && ev.src < b.src) {
					best = i
				}
			}
			ev := model[best]
			model = append(model[:best], model[best+1:]...)
			return ev
		}
		// pop drains canceled entries (as the engine's event loops do)
		// and requires the first live pop to match the model exactly.
		pop := func() {
			t.Helper()
			var got *Event
			for len(h) > 0 {
				ev := h.popMin()
				if ev.index != -1 {
					t.Fatalf("trial %d: popped event has index %d", trial, ev.index)
				}
				checkIndexes()
				if !ev.canceled {
					got = ev
					break
				}
			}
			if got == nil {
				if len(model) != 0 {
					t.Fatalf("trial %d: heap empty with %d live events in model", trial, len(model))
				}
				return
			}
			want := refPop()
			if got != want {
				t.Fatalf("trial %d: pop = (when=%d src=%d seq=%d), want (when=%d src=%d seq=%d)",
					trial, got.when, got.src, got.seq, want.when, want.src, want.seq)
			}
		}

		for op := 0; op < 300; op++ {
			switch r := rng.Intn(10); {
			case r < 5: // push
				src := int32(rng.Intn(len(seqs)))
				ev := &Event{
					when: Time(rng.Intn(8)),
					src:  src,
					seq:  seqs[src],
				}
				seqs[src]++
				h.push(ev)
				checkIndexes()
				model = append(model, ev)
			case r < 8:
				pop()
			default: // cancel a random live event (lazy removal in the heap)
				if len(model) > 0 {
					i := rng.Intn(len(model))
					model[i].Cancel()
					model = append(model[:i], model[i+1:]...)
				}
			}
		}
		for len(h) > 0 || len(model) > 0 {
			pop()
		}
	}
}

// TestEventHeapPopOrderTotal cross-checks full pop order with no
// interleaving: push a colliding batch, then drain, and require the
// exact stable-sorted sequence — the strongest form of the equal-time
// FIFO tie-break.
func TestEventHeapPopOrderTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var h eventHeap
		n := 1 + rng.Intn(64)
		seqs := [3]uint64{}
		events := make([]*Event, 0, n)
		for i := 0; i < n; i++ {
			src := int32(rng.Intn(len(seqs)))
			ev := &Event{when: Time(rng.Intn(4)), src: src, seq: seqs[src]}
			seqs[src]++
			h.push(ev)
			events = append(events, ev)
		}
		want := append([]*Event(nil), events...)
		sort.SliceStable(want, func(i, j int) bool {
			if want[i].when != want[j].when {
				return want[i].when < want[j].when
			}
			return want[i].src < want[j].src
		})
		for i, w := range want {
			got := h.popMin()
			if got != w {
				t.Fatalf("trial %d: pop %d = (when=%d src=%d seq=%d), want (when=%d src=%d seq=%d)",
					trial, i, got.when, got.src, got.seq, w.when, w.src, w.seq)
			}
		}
		if len(h) != 0 {
			t.Fatalf("trial %d: heap not drained", trial)
		}
	}
}
