package bench

import (
	"testing"
)

// smokeRanks is the reduced sweep `make bench-scale-smoke` runs: big
// enough to exercise the batched-wakeup and pooling paths at two world
// sizes, small enough for CI.
var smokeRanks = []int{64, 256}

// TestScaleSmoke is the CI gate on the scaling pass: events/sec must
// not collapse as the world grows (per-event cost is supposed to be
// independent of N), and the campaign steady state must stay within
// the pooled-allocation budget.
func TestScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling smoke runs full simulations; skipped in -short")
	}
	evps := make([]float64, len(smokeRanks))
	for i, n := range smokeRanks {
		res := measureScale(n, 0)
		if res.EventsPerSec <= 0 {
			t.Fatalf("%s: no events/sec measured (iterations=%d, ns/op=%.0f)",
				res.Name, res.Iterations, res.NsPerOp)
		}
		evps[i] = res.EventsPerSec
		t.Logf("%s: %.0f events/sec, %d allocs/op, %.1fms/op",
			res.Name, res.EventsPerSec, res.AllocsPerOp, res.NsPerOp/1e6)
	}
	// Throughput sanity: a 4x larger world may pay constant-factor costs
	// (cache footprint, monitor trace width) but must stay within the
	// same order of magnitude — a collapse means some per-collective or
	// per-queue cost became super-linear in N.
	for i := 1; i < len(evps); i++ {
		if evps[i] < evps[i-1]/4 {
			t.Errorf("events/sec collapsed with world size: %d ranks: %.0f, %d ranks: %.0f",
				smokeRanks[i-1], evps[i-1], smokeRanks[i], evps[i])
		}
	}
}

// TestFaultyRunAllocCeiling pins the allocation budget of the campaign
// steady state. The pre-pooling baseline was ~115k allocs/op; the
// issue's acceptance bar is a 5x reduction (23k), and the pools
// actually land two orders of magnitude below it — the ceiling is set
// between the two so real regressions (a pool silently bypassed, a
// closure reintroduced on the per-message path) fail loudly while
// harness-level noise does not.
func TestFaultyRunAllocCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations; skipped in -short")
	}
	r := testing.Benchmark(benchFaultyRun)
	const ceiling = 10_000
	if allocs := r.AllocsPerOp(); allocs > ceiling {
		t.Errorf("campaign/faulty_run allocates %d/op, ceiling %d (pre-pooling baseline ~115k)",
			allocs, ceiling)
	} else {
		t.Logf("campaign/faulty_run: %d allocs/op (ceiling %d)", allocs, ceiling)
	}
}
