package bench

import (
	"reflect"
	"testing"

	"parastack/internal/core"
	"parastack/internal/experiment"
	"parastack/internal/fault"
	"parastack/internal/noise"
	"parastack/internal/obs"
)

// TestScaleParallelBitIdentitySmoke is the CI-sized serial-vs-parallel
// equivalence gate on the *scale* workload shape (`make
// bench-scale-smoke`, run under -race). It complements the experiment
// package's full golden-grid gate with the one thing that grid cannot
// see: rank-group sharding. The golden worlds are 32 ranks — one rank
// per shard — whereas 512 ranks exceeds sim's shard budget, so here
// consecutive ranks share shards and the windowed executor runs long
// same-shard event chains. A clean run and a faulty run must both be
// bit-identical across serial, windowed (Parallel=1), and multi-worker
// (Parallel=4) execution.
func TestScaleParallelBitIdentitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations; skipped in -short")
	}
	p := scaleParams(512)
	p.Iters = 10
	serial := experiment.NewRunner()
	windowed := experiment.NewRunner()
	workers := experiment.NewRunner()
	for _, kind := range []fault.Kind{fault.None, fault.ComputationHang} {
		rc := experiment.RunConfig{
			Params:    p,
			Platform:  noise.Tardis(),
			PPN:       8,
			Seed:      1,
			FaultKind: kind,
			Monitor:   &core.Config{},
		}
		want := serial.Run(rc)
		want.Metrics = obs.Snapshot{} // counter totals are mode-dependent by design

		rc.Parallel = 1
		got := windowed.Run(rc)
		got.Metrics = obs.Snapshot{}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("kind=%v: windowed (Parallel=1) diverged from serial at 512 ranks\nserial:   %+v\nwindowed: %+v",
				kind, want, got)
		}

		rc.Parallel = 4
		got = workers.Run(rc)
		got.Metrics = obs.Snapshot{}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("kind=%v: windowed (Parallel=4) diverged from serial at 512 ranks\nserial:  %+v\nworkers: %+v",
				kind, want, got)
		}
	}
}
