// Package bench defines the fixed microbenchmark suite behind the
// BENCH_engine.json performance artifact. Every benchmark pins one
// hot path of the simulation substrate:
//
//   - engine/event_scheduling: schedule+fire cycle through the pooled,
//     monomorphic event heap (64 concurrent tickers).
//   - engine/sleep_wake_handoff: the Suspend/Wake round trip behind
//     every blocking MPI call.
//   - engine/proc_sleep: a single process's Sleep loop (the pattern of
//     compute phases and the monitor's sampling timer).
//   - monitor/sampling_round: one steady-state monitor sampling round —
//     trace the active set, update the model, record the sample — which
//     must be allocation-free.
//   - monitor/sampling_round_history: the same round with KeepHistory
//     on (ring-buffer eviction in steady state).
//   - campaign/faulty_run: one end-to-end faulty CG-style run through
//     the experiment harness, reported in simulated events/sec.
//
// cmd/psbench -bench-json (and `make bench-json`) runs the suite via
// testing.Benchmark and writes the results as JSON, so every PR can
// record the perf trajectory and regressions stay visible. The same
// scenarios are mirrored as Benchmark* functions in internal/sim and
// internal/core for `go test -bench` use.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"parastack/internal/core"
	"parastack/internal/experiment"
	"parastack/internal/fault"
	"parastack/internal/mpi"
	"parastack/internal/noise"
	"parastack/internal/sim"
	"parastack/internal/topology"
	"parastack/internal/workload"
)

// SchemaVersion identifies the BENCH_engine.json layout; bump on
// incompatible changes.
const SchemaVersion = "parastack-bench/v1"

// Result is one benchmark's measurement. EventsPerSec is populated for
// benchmarks whose op maps 1:1 onto simulation events (engine suite)
// or that report total simulated events (campaign suite); it is the
// headline "how fast does the simulator go" number.
type Result struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// Ranks is the simulated world size for scaling benchmarks
	// (BENCH_scale.json); zero for the fixed engine/monitor suite.
	Ranks int `json:"ranks,omitempty"`
	// Parallel is the windowed-executor worker count the run used
	// (experiment.RunConfig.Parallel); zero means the serial engine.
	Parallel int `json:"parallel,omitempty"`
	// JobsPerSec and P99IngestNs are populated by the parastackd
	// service suite (BENCH_service.json): whole-job throughput of a
	// burst of simulation jobs through the daemon pipeline, and the
	// 99th-percentile admission→dispatch latency of those jobs.
	JobsPerSec  float64 `json:"jobs_per_sec,omitempty"`
	P99IngestNs float64 `json:"p99_ingest_ns,omitempty"`
}

// Report is the full artifact written to BENCH_engine.json.
type Report struct {
	Schema     string   `json:"schema"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Benchmarks []Result `json:"benchmarks"`
}

// suite is the fixed benchmark list. Names are stable identifiers:
// downstream tooling diffs BENCH_engine.json across PRs by name.
var suite = []struct {
	name string
	fn   func(*testing.B)
	// eventsPerOp scales ops to simulated events for EventsPerSec
	// (0 = use the benchmark's own events metric, negative = none).
	eventsPerOp float64
}{
	{"engine/event_scheduling", benchEventScheduling, 1},
	{"engine/sleep_wake_handoff", benchSleepWakeHandoff, 2}, // wake + yield per op
	{"engine/proc_sleep", benchProcSleep, 1},
	{"monitor/sampling_round", benchSamplingRound(false), -1},
	{"monitor/sampling_round_history", benchSamplingRound(true), -1},
}

// RunSuite executes every benchmark and assembles the report. The
// micro-benchmarks run through testing.Benchmark (their ops are cheap
// enough that N is always in the thousands); the campaign row is a
// full run per iteration and goes through measureRun so its headline
// events/sec figure is an average over at least minMeasureIters runs.
func RunSuite() Report {
	rep := Report{
		Schema:    SchemaVersion,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, s := range suite {
		r := testing.Benchmark(s.fn)
		res := Result{
			Name:        s.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if s.eventsPerOp > 0 && res.NsPerOp > 0 {
			res.EventsPerSec = s.eventsPerOp * 1e9 / res.NsPerOp
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	rep.Benchmarks = append(rep.Benchmarks, measureCampaign())
	return rep
}

// measureCampaign measures the end-to-end faulty campaign run on the
// Runner-reuse path with the averaged measurement loop.
func measureCampaign() Result {
	p := campaignParams()
	rn := experiment.NewRunner()
	return measureRun("campaign/faulty_run", func(i int) uint64 {
		return campaignRun(rn, p, int64(i+1))
	})
}

// WriteJSON runs the suite and writes the indented JSON artifact.
func WriteJSON(w io.Writer) error {
	rep := RunSuite()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteSummary prints a human-readable table of a report.
func WriteSummary(w io.Writer, rep Report) {
	fmt.Fprintf(w, "%-34s %14s %10s %12s %14s\n",
		"benchmark", "ns/op", "B/op", "allocs/op", "events/sec")
	for _, r := range rep.Benchmarks {
		ev := "-"
		if r.EventsPerSec > 0 {
			ev = fmt.Sprintf("%.0f", r.EventsPerSec)
		}
		fmt.Fprintf(w, "%-34s %14.1f %10d %12d %14s\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, ev)
		if r.JobsPerSec > 0 {
			fmt.Fprintf(w, "%-34s   jobs/sec=%.1f p99_ingest=%v\n",
				"", r.JobsPerSec, time.Duration(r.P99IngestNs).Round(time.Microsecond))
		}
	}
}

// --- engine suite ---

func benchEventScheduling(b *testing.B) {
	e := sim.NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(time.Duration(1+n%37)*time.Microsecond, tick)
		}
	}
	for i := 0; i < 64 && i < b.N; i++ {
		e.After(time.Microsecond, tick)
	}
	b.ResetTimer()
	e.RunAll()
}

func benchSleepWakeHandoff(b *testing.B) {
	e := sim.NewEngine(1)
	blocked := e.SpawnNow("blocked", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Suspend()
		}
	})
	e.SpawnNow("waker", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			blocked.Wake()
			p.Yield()
		}
	})
	b.ResetTimer()
	e.RunAll()
}

func benchProcSleep(b *testing.B) {
	e := sim.NewEngine(1)
	e.SpawnNow("p", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	e.RunAll()
}

// --- monitor suite ---

func benchSamplingRound(keepHistory bool) func(*testing.B) {
	return func(b *testing.B) {
		eng := sim.NewEngine(1)
		w := mpi.NewWorld(eng, 256, mpi.Latency{})
		w.Launch(func(r *mpi.Rank) { r.Proc().Suspend() })
		eng.RunAll() // park every rank
		cluster := topology.New(8, 32, 1)
		m := core.New(w, cluster, core.Config{KeepHistory: keepHistory})
		// Reach steady state: model at capacity, history ring wrapped.
		for i := 0; i < 1024+1; i++ {
			m.SampleOnce()
		}
		b.ResetTimer()
		var s float64
		for i := 0; i < b.N; i++ {
			s = m.SampleOnce()
		}
		_ = s
	}
}

// --- campaign suite ---

// campaignParams is the fixed faulty-run workload of the campaign
// benchmark: a CG-style job small enough to finish in well under a
// second, long enough for the detector to convict the injected hang.
func campaignParams() workload.Params {
	p := workload.MustLookup("CG", "D", 256)
	p.Spec = workload.Spec{Name: "CG", Class: "bench", Procs: 32}
	p.Iters = 400
	p.Compute = 120 * time.Millisecond
	p.HaloBytes = 16 << 10
	return p
}

// campaignRun executes one faulty campaign run on the shared Runner —
// the campaign steady state, where engine and world are reset, not
// rebuilt — and returns its simulated event count.
func campaignRun(rn *experiment.Runner, p workload.Params, seed int64) uint64 {
	res := rn.Run(experiment.RunConfig{
		Params:    p,
		Platform:  noise.Tardis(),
		PPN:       8,
		Seed:      seed,
		FaultKind: fault.ComputationHang,
		Monitor:   &core.Config{},
	})
	return res.Events
}

// benchFaultyRun is the testing.Benchmark form of the campaign run,
// kept for the allocation-ceiling gate (scale_test.go), which needs
// testing.B's allocation accounting rather than wall-clock averaging.
func benchFaultyRun(b *testing.B) {
	p := campaignParams()
	rn := experiment.NewRunner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		campaignRun(rn, p, int64(i+1))
	}
}
