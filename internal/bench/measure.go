package bench

import (
	"runtime"
	"time"
)

// Checked-in events/sec figures must be averages, not single shots.
// Full-run benchmarks take seconds per iteration, so testing.Benchmark
// at its default budget often settles on N=1 and publishes one noisy
// sample; the scale artifact's biggest rows were exactly the ones
// measured worst. measureRun instead keeps iterating until both floors
// below are met, so every figure that lands in BENCH_engine.json or
// BENCH_scale.json averages at least minMeasureIters full runs.
const (
	minMeasureIters = 3
	minMeasureTime  = 2 * time.Second
)

// measureRun measures fn — one full simulation run per call, returning
// the run's simulated event count — until the iteration and wall-time
// floors are both met, and folds the totals into a Result: iterations,
// ns/op averaged over every iteration, per-op allocation deltas from
// runtime.MemStats, and aggregate events/sec (total events over total
// wall time). The iteration index is passed through to fn so runs can
// derive distinct seeds.
func measureRun(name string, fn func(iter int) uint64) Result {
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	var (
		iters   int
		elapsed time.Duration
		events  uint64
	)
	for iters < minMeasureIters || elapsed < minMeasureTime {
		start := time.Now()
		events += fn(iters)
		elapsed += time.Since(start)
		iters++
	}
	runtime.ReadMemStats(&ms1)
	res := Result{
		Name:        name,
		Iterations:  iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		BytesPerOp:  int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(iters),
		AllocsPerOp: int64(ms1.Mallocs-ms0.Mallocs) / int64(iters),
	}
	if elapsed > 0 {
		res.EventsPerSec = float64(events) / elapsed.Seconds()
	}
	return res
}
