// Rank-count scaling suite behind the BENCH_scale.json artifact.
//
// Each benchmark runs one clean CG-style campaign step — halo exchanges
// plus synchronization-like Allreduces with the ParaStack monitor
// attached — at a fixed per-rank workload while the world size sweeps
// 256 → 131072 ranks. Per-rank work is constant, so events_per_sec
// across the sweep is the scaling story: flat means the simulator's
// per-event cost is independent of N (batched collective wakeups keep
// the event queue at O(live timers), not O(N) per collective), while a
// collapse at large N would point at a super-linear hot path.
//
// Every world size is measured twice: on the serial engine and in
// windowed parallel-DES mode (experiment.RunConfig.Parallel = 1 — one
// chain of lookahead windows; see internal/sim). The paired rows are
// the serial-vs-parallel comparison: both modes produce bit-identical
// results (gated by TestSerialParallelBitIdentical and the scale
// smoke), so any events/sec difference is pure executor overhead.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"parastack/internal/core"
	"parastack/internal/experiment"
	"parastack/internal/noise"
	"parastack/internal/workload"
)

// ScaleRankCounts is the world-size sweep of the scaling suite.
var ScaleRankCounts = []int{256, 1024, 4096, 16384, 65536, 131072}

// scaleParams builds the fixed per-rank workload at world size ranks:
// a short CG-style run (30 iterations of 20ms compute + 8KB halos)
// whose simulated-event count grows linearly with ranks.
func scaleParams(ranks int) workload.Params {
	p := workload.MustLookup("CG", "D", 256)
	p.Spec = workload.Spec{Name: "CG", Class: "scale", Procs: ranks}
	p.Iters = 30
	p.Compute = 20 * time.Millisecond
	p.HaloBytes = 8 << 10
	return p
}

// ScaleName is the stable benchmark identifier for a rank count and
// executor mode (workers == 0 is the serial engine).
func ScaleName(ranks, workers int) string {
	name := fmt.Sprintf("scale/clean_run_%d_ranks", ranks)
	if workers > 0 {
		name += "_parallel"
	}
	return name
}

// measureScale measures one (rank count, executor mode) cell of the
// sweep: clean monitored runs through the same Runner reuse path
// campaigns use, averaged by measureRun over at least three runs.
func measureScale(ranks, workers int) Result {
	p := scaleParams(ranks)
	rn := experiment.NewRunner()
	res := measureRun(ScaleName(ranks, workers), func(i int) uint64 {
		r := rn.Run(experiment.RunConfig{
			Params:   p,
			Platform: noise.Tardis(),
			PPN:      8,
			Seed:     int64(i + 1),
			Monitor:  &core.Config{},
			Parallel: workers,
		})
		return r.Events
	})
	res.Ranks = ranks
	res.Parallel = workers
	return res
}

// RunScaleSuite executes the rank-count sweep — serial and windowed
// rows per size — and assembles the report written to BENCH_scale.json.
func RunScaleSuite() Report {
	rep := Report{
		Schema:    SchemaVersion,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, n := range ScaleRankCounts {
		rep.Benchmarks = append(rep.Benchmarks, measureScale(n, 0))
		rep.Benchmarks = append(rep.Benchmarks, measureScale(n, 1))
	}
	return rep
}

// WriteScaleJSON runs the scaling suite and writes the JSON artifact.
func WriteScaleJSON(w io.Writer) error {
	rep := RunScaleSuite()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
