// Rank-count scaling suite behind the BENCH_scale.json artifact.
//
// Each benchmark runs one clean CG-style campaign step — halo exchanges
// plus synchronization-like Allreduces with the ParaStack monitor
// attached — at a fixed per-rank workload while the world size sweeps
// 256 → 16384 ranks. Per-rank work is constant, so events_per_sec
// across the sweep is the scaling story: flat means the simulator's
// per-event cost is independent of N (batched collective wakeups keep
// the event queue at O(live timers), not O(N) per collective), while a
// collapse at large N would point at a super-linear hot path.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"parastack/internal/core"
	"parastack/internal/experiment"
	"parastack/internal/noise"
	"parastack/internal/workload"
)

// ScaleRankCounts is the world-size sweep of the scaling suite.
var ScaleRankCounts = []int{256, 1024, 4096, 16384}

// scaleParams builds the fixed per-rank workload at world size ranks:
// a short CG-style run (30 iterations of 20ms compute + 8KB halos)
// whose simulated-event count grows linearly with ranks.
func scaleParams(ranks int) workload.Params {
	p := workload.MustLookup("CG", "D", 256)
	p.Spec = workload.Spec{Name: "CG", Class: "scale", Procs: ranks}
	p.Iters = 30
	p.Compute = 20 * time.Millisecond
	p.HaloBytes = 8 << 10
	return p
}

// benchScaleRun benchmarks one clean monitored run at the given world
// size, through the same Runner reuse path campaigns use.
func benchScaleRun(ranks int) func(*testing.B) {
	return func(b *testing.B) {
		p := scaleParams(ranks)
		rn := experiment.NewRunner()
		var events uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := rn.Run(experiment.RunConfig{
				Params:   p,
				Platform: noise.Tardis(),
				PPN:      8,
				Seed:     int64(i + 1),
				Monitor:  &core.Config{},
			})
			events += res.Events
		}
		b.StopTimer()
		campaignEvents = float64(events) / float64(b.N)
	}
}

// ScaleName is the stable benchmark identifier for a rank count.
func ScaleName(ranks int) string { return fmt.Sprintf("scale/clean_run_%d_ranks", ranks) }

// measureScale benchmarks one rank count and assembles its Result.
func measureScale(ranks int) Result {
	campaignEvents = 0
	r := testing.Benchmark(benchScaleRun(ranks))
	res := Result{
		Name:        ScaleName(ranks),
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Ranks:       ranks,
	}
	if res.NsPerOp > 0 {
		res.EventsPerSec = campaignEvents * 1e9 / res.NsPerOp
	}
	return res
}

// RunScaleSuite executes the rank-count sweep and assembles the report
// written to BENCH_scale.json.
func RunScaleSuite() Report {
	rep := Report{
		Schema:    SchemaVersion,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, n := range ScaleRankCounts {
		rep.Benchmarks = append(rep.Benchmarks, measureScale(n))
	}
	return rep
}

// WriteScaleJSON runs the scaling suite and writes the JSON artifact.
func WriteScaleJSON(w io.Writer) error {
	rep := RunScaleSuite()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
