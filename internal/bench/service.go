package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"parastack/internal/service"
)

// The parastackd service suite behind BENCH_service.json. Three
// benchmarks pin the daemon's hot paths:
//
//   - service/job_burst: a burst of real CG/D/64 computation-hang
//     simulation jobs submitted through the full pipeline (admission →
//     batcher → shards → worker pool) and awaited. Reports whole-job
//     throughput (jobs/sec), the p99 admission→dispatch ingest latency,
//     and aggregate simulated events/sec.
//   - service/stream_ingest: Scrout samples fed through Feed, the
//     batcher, and a shard into a StreamMonitor — the daemon-side cost
//     of an external feeder. EventsPerSec is samples/sec here.
//   - monitor/stream_ingest: the bare StreamMonitor.Ingest hot loop
//     (model add + refit + streak bookkeeping), isolating detector cost
//     from pipeline cost.
//
// cmd/psbench -bench-service-json (and `make bench-json`) writes the
// artifact; `make service-smoke` exercises the same pipeline through
// the real binary and socket instead.

// serviceBurstJobs sizes the job burst: large enough to keep every
// worker busy and make the batcher flush on size, small enough that the
// suite stays in CI budget.
const serviceBurstJobs = 48

// serviceStreamSamples sizes the stream benchmark's sample volume.
const serviceStreamSamples = 1 << 17

// RunServiceSuite executes the daemon throughput suite and assembles
// the BENCH_service.json report.
func RunServiceSuite() Report {
	rep := Report{
		Schema:    SchemaVersion,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	rep.Benchmarks = append(rep.Benchmarks, benchServiceJobBurst())
	rep.Benchmarks = append(rep.Benchmarks, benchServiceStreamIngest())

	r := testing.Benchmark(benchStreamMonitorIngest)
	res := Result{
		Name:        "monitor/stream_ingest",
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if res.NsPerOp > 0 {
		res.EventsPerSec = 1e9 / res.NsPerOp // one sample per op
	}
	rep.Benchmarks = append(rep.Benchmarks, res)
	return rep
}

// benchServiceJobBurst pushes a burst of real simulation jobs through a
// Service and measures whole-job throughput and ingest latency.
func benchServiceJobBurst() Result {
	svc := service.New(service.Config{})
	defer svc.Close()

	start := time.Now()
	ids := make([]string, 0, serviceBurstJobs)
	for i := 0; i < serviceBurstJobs; i++ {
		id := fmt.Sprintf("bench-%d", i)
		err := svc.Submit(service.JobSpec{
			ID: id, Bench: "CG", Class: "D", Procs: 64,
			Platform: "tardis", Fault: "computation", Seed: int64(i + 1),
		})
		if err != nil {
			// Default queue depths dwarf the burst; an error here is a
			// benchmark bug, not backpressure.
			panic(fmt.Sprintf("bench: submit %s: %v", id, err))
		}
		ids = append(ids, id)
	}
	var events uint64
	var ingest []float64 // ns
	for _, id := range ids {
		v, err := svc.Wait(context.Background(), id)
		if err != nil {
			panic(fmt.Sprintf("bench: wait %s: %v", id, err))
		}
		events += v.Events
		ingest = append(ingest, float64(v.IngestUS)*1e3)
	}
	elapsed := time.Since(start)

	res := Result{
		Name:       "service/job_burst",
		Iterations: serviceBurstJobs,
		NsPerOp:    float64(elapsed.Nanoseconds()) / serviceBurstJobs,
		Ranks:      64,
	}
	if sec := elapsed.Seconds(); sec > 0 {
		res.JobsPerSec = serviceBurstJobs / sec
		res.EventsPerSec = float64(events) / sec
	}
	res.P99IngestNs = percentile(ingest, 0.99)
	return res
}

// benchServiceStreamIngest measures the daemon-side cost of an external
// Scrout feeder: Feed → batcher → shard → StreamMonitor.
func benchServiceStreamIngest() Result {
	svc := service.New(service.Config{
		// The backlog must admit the whole volume; the batcher and shard
		// bounds still apply, so the measured path is the real pipeline.
		StreamBacklog: serviceStreamSamples + 1,
		BatchSize:     256,
		BatchDelay:    time.Millisecond,
	})
	if err := svc.Submit(service.JobSpec{ID: "feeder", Stream: true}); err != nil {
		panic(fmt.Sprintf("bench: stream submit: %v", err))
	}
	// A varied healthy signal: the monitor refits continuously but never
	// verifies, so every sample pays the full ingest path.
	batch := make([]service.StreamSample, 1024)
	start := time.Now()
	sent := 0
	for sent < serviceStreamSamples {
		for i := range batch {
			n := sent + i
			batch[i] = service.StreamSample{TUS: int64(n) * 400, Scrout: float64(1+n%7) / 8}
		}
		for {
			err := svc.Feed("feeder", batch)
			if err == nil {
				break
			}
			if err == service.ErrBusy {
				time.Sleep(50 * time.Microsecond) // real backpressure: retry
				continue
			}
			panic(fmt.Sprintf("bench: feed: %v", err))
		}
		sent += len(batch)
	}
	// Drain processes every queued sample before returning.
	if err := svc.Close(); err != nil {
		panic(fmt.Sprintf("bench: close: %v", err))
	}
	elapsed := time.Since(start)

	res := Result{
		Name:       "service/stream_ingest",
		Iterations: sent,
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(sent),
	}
	if res.NsPerOp > 0 {
		res.EventsPerSec = 1e9 / res.NsPerOp // samples/sec
	}
	return res
}

// benchStreamMonitorIngest is the bare detector hot loop.
func benchStreamMonitorIngest(b *testing.B) {
	sm := service.NewStreamMonitor(0.001, 0)
	// Steady state: model at capacity before measuring.
	for i := 0; i < 2048; i++ {
		sm.Ingest(service.StreamSample{TUS: int64(i), Scrout: float64(1+i%7) / 8})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sm.Ingest(service.StreamSample{TUS: int64(2048 + i), Scrout: float64(1+i%7) / 8})
	}
}

// percentile returns the p-quantile (0..1) of xs by nearest-rank on the
// sorted copy; 0 for an empty slice.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(p * float64(len(s)))
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
