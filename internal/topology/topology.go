// Package topology models the cluster layout ParaStack operates in:
// nodes, processes-per-node, the MPI-rank ↔ process-id mapping rules of
// the paper's §5, and the per-node monitor placement (one monitor per
// node; only nodes hosting currently-monitored ranks are "active").
package topology

import (
	"fmt"
	"math/rand"
	"sort"
)

// Cluster describes an allocation: Nodes compute nodes with PPN
// processes each, ranks assigned block-wise exactly as the paper's
// job-submission mapping implies:
//
//  1. MPI rank increases with process id on the same node, and
//  2. MPI rank increases with node id in the ordered node list,
//
// so monitor i owns ranks [i*ppn, (i+1)*ppn).
type Cluster struct {
	Nodes int
	PPN   int

	// pids simulates the OS process-id table: pids[rank] is the pid of
	// the MPI process hosting that rank. Pids on one node are assigned
	// in increasing order with rank, per mapping rule (1).
	pids []int
}

// New builds a cluster with the given node count and processes per
// node. Pids are synthesized deterministically from seed to exercise
// the sorting logic in RanksOfNode.
func New(nodes, ppn int, seed int64) *Cluster {
	if nodes <= 0 || ppn <= 0 {
		panic("topology: nodes and ppn must be positive")
	}
	c := &Cluster{Nodes: nodes, PPN: ppn, pids: make([]int, nodes*ppn)}
	rng := rand.New(rand.NewSource(seed))
	pid := 1000
	for n := 0; n < nodes; n++ {
		// Each node has its own pid space; pids increase with local rank.
		pid = 1000 + rng.Intn(30000)
		for l := 0; l < ppn; l++ {
			c.pids[n*ppn+l] = pid
			pid += 1 + rng.Intn(3)
		}
	}
	return c
}

// Size returns the total number of ranks.
func (c *Cluster) Size() int { return c.Nodes * c.PPN }

// NodeOf returns the node hosting the given rank.
func (c *Cluster) NodeOf(rank int) int {
	if rank < 0 || rank >= c.Size() {
		panic(fmt.Sprintf("topology: rank %d out of range [0,%d)", rank, c.Size()))
	}
	return rank / c.PPN
}

// RankRange returns the half-open rank interval [lo, hi) hosted on node.
func (c *Cluster) RankRange(node int) (lo, hi int) {
	if node < 0 || node >= c.Nodes {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", node, c.Nodes))
	}
	return node * c.PPN, (node + 1) * c.PPN
}

// PidOf returns the simulated OS pid of a rank's process.
func (c *Cluster) PidOf(rank int) int { return c.pids[rank] }

// RanksOfNode reconstructs the local pid→rank mapping the way the
// paper's monitor does: list the target job's pids on the node (a `ps`
// scan), sort them, and assign ranks in increasing pid order starting
// at node*ppn. It returns rank indexed by sorted position.
func (c *Cluster) RanksOfNode(node int) []int {
	lo, hi := c.RankRange(node)
	type pr struct{ pid, rank int }
	prs := make([]pr, 0, hi-lo)
	for r := lo; r < hi; r++ {
		prs = append(prs, pr{c.pids[r], r})
	}
	sort.Slice(prs, func(i, j int) bool { return prs[i].pid < prs[j].pid })
	out := make([]int, len(prs))
	for i, p := range prs {
		out[i] = lo + i
		// Consistency check: sorting pids must reproduce rank order,
		// because pids were assigned in rank order on the node.
		if p.rank != lo+i {
			panic("topology: pid order does not match rank order")
		}
	}
	return out
}

// MonitorSet is a selection of ranks to observe plus the set of nodes
// whose monitors must be active to observe them.
type MonitorSet struct {
	Ranks []int
	Nodes []int
}

// PickMonitorSet selects c distinct ranks uniformly at random
// (excluding any in excl) and computes the active-node set. If fewer
// than c ranks are available it takes them all.
func (c *Cluster) PickMonitorSet(rng *rand.Rand, count int, excl map[int]bool) MonitorSet {
	avail := make([]int, 0, c.Size())
	for r := 0; r < c.Size(); r++ {
		if !excl[r] {
			avail = append(avail, r)
		}
	}
	rng.Shuffle(len(avail), func(i, j int) { avail[i], avail[j] = avail[j], avail[i] })
	if count > len(avail) {
		count = len(avail)
	}
	ranks := append([]int(nil), avail[:count]...)
	sort.Ints(ranks)
	nodeSet := map[int]bool{}
	for _, r := range ranks {
		nodeSet[c.NodeOf(r)] = true
	}
	nodes := make([]int, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	return MonitorSet{Ranks: ranks, Nodes: nodes}
}

// DisjointMonitorSets returns two disjoint random monitor sets of the
// requested size, the structure ParaStack alternates between to defeat
// the corner case of the faulty process hiding inside the single
// monitored set. If the cluster has fewer than 2*count ranks, the sets
// are as large as availability allows.
func (c *Cluster) DisjointMonitorSets(rng *rand.Rand, count int) (a, b MonitorSet) {
	sets := c.NDisjointMonitorSets(rng, 2, count)
	return sets[0], sets[1]
}

// NDisjointMonitorSets generalizes DisjointMonitorSets to n pairwise
// disjoint sets — the paper notes that being resilient to multiple
// simultaneous faulty processes requires more than two. Later sets may
// be smaller (or empty) when the cluster runs out of ranks.
func (c *Cluster) NDisjointMonitorSets(rng *rand.Rand, n, count int) []MonitorSet {
	if n < 1 {
		n = 1
	}
	out := make([]MonitorSet, 0, n)
	excl := map[int]bool{}
	for i := 0; i < n; i++ {
		s := c.PickMonitorSet(rng, count, excl)
		for _, r := range s.Ranks {
			excl[r] = true
		}
		out = append(out, s)
	}
	return out
}
