package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNodeOfAndRankRange(t *testing.T) {
	c := New(8, 32, 1)
	if c.Size() != 256 {
		t.Fatalf("Size = %d", c.Size())
	}
	if c.NodeOf(0) != 0 || c.NodeOf(31) != 0 || c.NodeOf(32) != 1 || c.NodeOf(255) != 7 {
		t.Fatal("NodeOf mapping wrong")
	}
	lo, hi := c.RankRange(3)
	if lo != 96 || hi != 128 {
		t.Fatalf("RankRange(3) = [%d,%d)", lo, hi)
	}
}

func TestPidsIncreaseWithLocalRank(t *testing.T) {
	c := New(4, 16, 42)
	for n := 0; n < 4; n++ {
		lo, hi := c.RankRange(n)
		for r := lo + 1; r < hi; r++ {
			if c.PidOf(r) <= c.PidOf(r-1) {
				t.Fatalf("pid not increasing with rank on node %d: rank %d pid %d, rank %d pid %d",
					n, r-1, c.PidOf(r-1), r, c.PidOf(r))
			}
		}
	}
}

func TestRanksOfNodeSortRecoversMapping(t *testing.T) {
	c := New(8, 32, 7)
	for n := 0; n < 8; n++ {
		ranks := c.RanksOfNode(n)
		lo, hi := c.RankRange(n)
		if len(ranks) != hi-lo {
			t.Fatalf("node %d: %d ranks", n, len(ranks))
		}
		for i, r := range ranks {
			if r != lo+i {
				t.Fatalf("node %d: position %d mapped to rank %d, want %d", n, i, r, lo+i)
			}
		}
	}
}

func TestPickMonitorSet(t *testing.T) {
	c := New(8, 32, 1)
	rng := rand.New(rand.NewSource(3))
	s := c.PickMonitorSet(rng, 10, nil)
	if len(s.Ranks) != 10 {
		t.Fatalf("got %d ranks", len(s.Ranks))
	}
	seen := map[int]bool{}
	for _, r := range s.Ranks {
		if seen[r] {
			t.Fatalf("duplicate rank %d", r)
		}
		seen[r] = true
		if r < 0 || r >= 256 {
			t.Fatalf("rank %d out of range", r)
		}
	}
	// Active nodes must exactly cover the selected ranks.
	nodeSet := map[int]bool{}
	for _, n := range s.Nodes {
		nodeSet[n] = true
	}
	for _, r := range s.Ranks {
		if !nodeSet[c.NodeOf(r)] {
			t.Fatalf("rank %d's node %d not active", r, c.NodeOf(r))
		}
	}
	if len(s.Nodes) > 10 {
		t.Fatalf("more active nodes (%d) than monitored ranks", len(s.Nodes))
	}
}

func TestDisjointMonitorSets(t *testing.T) {
	c := New(8, 32, 1)
	rng := rand.New(rand.NewSource(5))
	a, b := c.DisjointMonitorSets(rng, 10)
	if len(a.Ranks) != 10 || len(b.Ranks) != 10 {
		t.Fatalf("sizes %d, %d", len(a.Ranks), len(b.Ranks))
	}
	inA := map[int]bool{}
	for _, r := range a.Ranks {
		inA[r] = true
	}
	for _, r := range b.Ranks {
		if inA[r] {
			t.Fatalf("rank %d in both sets", r)
		}
	}
}

func TestDisjointMonitorSetsSmallCluster(t *testing.T) {
	// 12 ranks, two sets of 10 requested: second set gets the remaining 2.
	c := New(3, 4, 1)
	rng := rand.New(rand.NewSource(5))
	a, b := c.DisjointMonitorSets(rng, 10)
	if len(a.Ranks) != 10 || len(b.Ranks) != 2 {
		t.Fatalf("sizes %d, %d; want 10, 2", len(a.Ranks), len(b.Ranks))
	}
}

// Property: NodeOf is consistent with RankRange for arbitrary shapes.
func TestNodeOfProperty(t *testing.T) {
	f := func(nodesRaw, ppnRaw uint8, rankRaw uint16) bool {
		nodes := int(nodesRaw%16) + 1
		ppn := int(ppnRaw%16) + 1
		c := New(nodes, ppn, 1)
		rank := int(rankRaw) % c.Size()
		n := c.NodeOf(rank)
		lo, hi := c.RankRange(n)
		return rank >= lo && rank < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPickMonitorSetUniformish(t *testing.T) {
	// Over many draws every rank should get picked at least once.
	c := New(2, 8, 1)
	rng := rand.New(rand.NewSource(9))
	hits := make([]int, c.Size())
	for i := 0; i < 400; i++ {
		for _, r := range c.PickMonitorSet(rng, 4, nil).Ranks {
			hits[r]++
		}
	}
	for r, h := range hits {
		if h == 0 {
			t.Fatalf("rank %d never selected in 400 draws", r)
		}
	}
}
