package stack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsMPIFrame(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		{"MPI_Send", true},
		{"mpi_send_", true},
		{"PMPI_Allreduce", true},
		{"pmpi_wait", true},
		{"main", false},
		{"solve_rhs", false},
		{"myMPIHelper", false}, // prefix rule: must start with the prefix
		{"", false},
	}
	for _, c := range cases {
		if got := IsMPIFrame(c.name); got != c.want {
			t.Errorf("IsMPIFrame(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestStateInference(t *testing.T) {
	s := New("main", "solver")
	if s.State() != OutMPI {
		t.Fatalf("state = %v, want OUT_MPI", s.State())
	}
	s.Push("compute_rhs")
	if s.State() != OutMPI {
		t.Fatalf("state = %v, want OUT_MPI", s.State())
	}
	s.Push("MPI_Allreduce")
	if s.State() != InMPI {
		t.Fatalf("state = %v, want IN_MPI", s.State())
	}
	// MPI implementations call helpers; a non-MPI frame above an MPI
	// frame must still classify as IN_MPI (the scan looks at all frames).
	s.Push("memcpy_impl")
	if s.State() != InMPI {
		t.Fatalf("state with inner helper = %v, want IN_MPI", s.State())
	}
	s.Pop()
	s.Pop()
	if s.State() != OutMPI {
		t.Fatalf("state after pop = %v, want OUT_MPI", s.State())
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Pop()
}

func TestTopAndSnapshot(t *testing.T) {
	s := New("main")
	s.Push("a")
	s.Push("MPI_Send")
	if s.Top() != "MPI_Send" {
		t.Fatalf("Top = %q", s.Top())
	}
	if s.TopMPI() != "MPI_Send" {
		t.Fatalf("TopMPI = %q", s.TopMPI())
	}
	snap := s.Snapshot()
	want := []string{"main", "a", "MPI_Send"}
	if len(snap) != 3 {
		t.Fatalf("snapshot = %v", snap)
	}
	for i := range want {
		if snap[i] != want[i] {
			t.Fatalf("snapshot = %v, want %v", snap, want)
		}
	}
	// Snapshot must be a copy.
	snap[0] = "clobbered"
	if s.Snapshot()[0] != "main" {
		t.Fatal("Snapshot aliases internal storage")
	}
}

func TestVersionAdvances(t *testing.T) {
	s := New()
	v0 := s.Version()
	s.Push("f")
	if s.Version() == v0 {
		t.Fatal("version did not advance on push")
	}
	v1 := s.Version()
	s.Pop()
	if s.Version() == v1 {
		t.Fatal("version did not advance on pop")
	}
}

func TestEntryCounters(t *testing.T) {
	s := New("main")
	s.Push("MPI_Send")
	s.Pop()
	s.Push("MPI_Test")
	s.Pop()
	s.Push("MPI_Iprobe")
	s.Pop()
	tr := s.Observe()
	if tr.NonPollEntries != 1 {
		t.Fatalf("NonPollEntries = %d, want 1", tr.NonPollEntries)
	}
	if tr.PollEntries != 2 {
		t.Fatalf("PollEntries = %d, want 2", tr.PollEntries)
	}
}

func TestCompareTracesHang(t *testing.T) {
	// A hung process: identical traces.
	s := New("main", "MPI_Allreduce")
	a := s.Observe()
	b := s.Observe()
	if CompareTraces(a, b) != NoProgress {
		t.Fatal("identical traces must be NoProgress")
	}
}

func TestCompareTracesBusyWait(t *testing.T) {
	// A busy-waiting process flips in and out of MPI_Test: polling
	// motion only, still NoProgress (treated as staying inside MPI).
	s := New("main", "hpl_bcast_poll")
	a := s.Observe()
	for i := 0; i < 5; i++ {
		s.Push("MPI_Test")
		s.Pop()
	}
	b := s.Observe()
	if CompareTraces(a, b) != NoProgress {
		t.Fatal("pure polling motion must be NoProgress")
	}
}

func TestCompareTracesSlowdownDifferentMPI(t *testing.T) {
	// Rule 1: passing through different (non-poll) MPI functions.
	s := New("main")
	s.Push("MPI_Send")
	a := s.Observe()
	s.Pop()
	s.Push("MPI_Allreduce")
	b := s.Observe()
	if CompareTraces(a, b) != SlowProgress {
		t.Fatal("different MPI functions must be SlowProgress")
	}
}

func TestCompareTracesSlowdownNonPollEntry(t *testing.T) {
	// Rule 2: stepping in/out of a non-polling MPI function.
	s := New("main", "work")
	a := s.Observe()
	s.Push("MPI_Send")
	s.Pop()
	b := s.Observe()
	if CompareTraces(a, b) != SlowProgress {
		t.Fatal("non-poll entry growth must be SlowProgress")
	}
}

func TestCompareTracesComputeOnlyMotion(t *testing.T) {
	// A faulty process spinning in an infinite *computation* loop moves
	// (version changes) but never touches MPI: NoProgress per the two
	// rules, so it is still reported as a hang. (The paper's rules only
	// exempt processes demonstrably progressing through MPI.)
	s := New("main", "stuck_loop")
	a := s.Observe()
	s.Push("helper")
	s.Pop()
	b := s.Observe()
	if CompareTraces(a, b) != NoProgress {
		t.Fatal("non-MPI motion must not read as SlowProgress")
	}
}

// Property: State() == InMPI iff some frame has an MPI prefix, for
// random push/pop sequences.
func TestStatePropertyRandomWalk(t *testing.T) {
	names := []string{"MPI_Send", "MPI_Test", "compute", "main", "pmpi_x", "helper", "PMPI_Wait", "loop"}
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		depth := 0
		for i := 0; i < int(steps); i++ {
			if depth == 0 || rng.Intn(2) == 0 {
				s.Push(names[rng.Intn(len(names))])
				depth++
			} else {
				s.Pop()
				depth--
			}
			// Recompute ground truth from the snapshot.
			in := false
			for _, n := range s.Snapshot() {
				if IsMPIFrame(n) {
					in = true
					break
				}
			}
			if (s.State() == InMPI) != in {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkObserve(b *testing.B) {
	s := New("main", "solver", "compute_rhs", "MPI_Allreduce")
	for i := 0; i < b.N; i++ {
		_ = s.Observe()
	}
}

func BenchmarkPushPop(b *testing.B) {
	s := New("main")
	for i := 0; i < b.N; i++ {
		s.Push("MPI_Send")
		s.Pop()
	}
}
