// Package stack models the call stacks of simulated MPI processes and
// the IN_MPI / OUT_MPI runtime-state inference that ParaStack performs
// on real stacks via ptrace + libunwind.
//
// The paper (§5) infers a process's state by walking stack frames and
// checking whether any frame name starts with "mpi", "MPI", "pmpi" or
// "PMPI". This package reproduces exactly that inference on simulated
// stacks, plus the bookkeeping (trace signatures, MPI entry counters)
// needed by the transient-slowdown filter of §3.3.
package stack

import "strings"

// State is the runtime state of a process at an instant: executing MPI
// library code or application code.
type State int

const (
	// OutMPI means no stack frame belongs to the MPI library.
	OutMPI State = iota
	// InMPI means at least one stack frame is an MPI call.
	InMPI
)

// String implements fmt.Stringer.
func (s State) String() string {
	if s == InMPI {
		return "IN_MPI"
	}
	return "OUT_MPI"
}

// mpiPrefixes are the frame-name prefixes the paper's implementation
// looks for when classifying a frame as an MPI call.
var mpiPrefixes = []string{"mpi", "MPI", "pmpi", "PMPI"}

// IsMPIFrame reports whether a frame name denotes MPI library code,
// using the same prefix rule as the paper.
func IsMPIFrame(name string) bool {
	for _, p := range mpiPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// pollingFuncs are the non-blocking message-checking MPI functions.
// A process stepping in and out of only these (a busy-waiting loop) is
// treated as staying inside MPI by the transient-slowdown check.
var pollingFuncs = map[string]bool{
	"MPI_Iprobe":   true,
	"MPI_Test":     true,
	"MPI_Testany":  true,
	"MPI_Testsome": true,
	"MPI_Testall":  true,
}

// IsPollingFunc reports whether name is one of the MPI busy-wait
// polling functions (MPI_Iprobe / MPI_Test*).
func IsPollingFunc(name string) bool { return pollingFuncs[name] }

// Frame is a single call-stack entry.
type Frame struct {
	// Name is the function name, e.g. "MPI_Allreduce" or "solve_rhs".
	Name string
	// MPI caches IsMPIFrame(Name).
	MPI bool
}

// Stack is a simulated call stack. It is maintained by the simulated
// MPI runtime and workload code (Push/Pop) and inspected by monitors
// (State, Snapshot, Signature). Stacks are only mutated while their
// owning simulated process holds control, so no locking is needed.
type Stack struct {
	frames []Frame

	mpiDepth int // number of MPI frames currently on the stack

	// version increments on every push or pop; two equal versions imply
	// the process has not moved between two observations.
	version uint64

	// nonPollEntries counts completed or in-progress entries into MPI
	// functions that are not polling functions. The transient-slowdown
	// filter uses its delta between two traces: growth means the process
	// is stepping through "real" MPI calls, i.e. still making progress.
	nonPollEntries uint64

	// pollEntries counts entries into polling MPI functions
	// (MPI_Test & friends); busy-wait loops grow only this counter.
	pollEntries uint64
}

// New returns an empty stack, optionally pre-populated with base frames
// (e.g. "main").
func New(base ...string) *Stack {
	s := &Stack{}
	for _, n := range base {
		s.Push(n)
	}
	return s
}

// Reset returns the stack to the state New(base...) would produce,
// keeping the frame backing array so per-run reuse (mpi.World.Reset)
// does not reallocate. Versions and entry counters restart from zero.
func (s *Stack) Reset(base ...string) {
	s.frames = s.frames[:0]
	s.mpiDepth = 0
	s.version = 0
	s.nonPollEntries = 0
	s.pollEntries = 0
	for _, n := range base {
		s.Push(n)
	}
}

// Push enters a function.
func (s *Stack) Push(name string) {
	mpi := IsMPIFrame(name)
	s.frames = append(s.frames, Frame{Name: name, MPI: mpi})
	if mpi {
		s.mpiDepth++
		if IsPollingFunc(name) {
			s.pollEntries++
		} else {
			s.nonPollEntries++
		}
	}
	s.version++
}

// Pop leaves the innermost function. Popping an empty stack panics —
// it indicates unbalanced instrumentation in the simulated runtime.
func (s *Stack) Pop() {
	n := len(s.frames)
	if n == 0 {
		panic("stack: pop of empty stack")
	}
	if s.frames[n-1].MPI {
		s.mpiDepth--
	}
	s.frames = s.frames[:n-1]
	s.version++
}

// Depth returns the number of frames.
func (s *Stack) Depth() int { return len(s.frames) }

// Top returns the innermost frame name, or "" for an empty stack.
func (s *Stack) Top() string {
	if len(s.frames) == 0 {
		return ""
	}
	return s.frames[len(s.frames)-1].Name
}

// State classifies the process as InMPI if any frame is an MPI call.
// This mirrors the paper's backtrace scan.
func (s *Stack) State() State {
	if s.mpiDepth > 0 {
		return InMPI
	}
	return OutMPI
}

// TopMPI returns the innermost MPI frame name, or "" if none.
func (s *Stack) TopMPI() string {
	for i := len(s.frames) - 1; i >= 0; i-- {
		if s.frames[i].MPI {
			return s.frames[i].Name
		}
	}
	return ""
}

// Snapshot returns a copy of the frame names, outermost first.
func (s *Stack) Snapshot() []string {
	out := make([]string, len(s.frames))
	for i, f := range s.frames {
		out[i] = f.Name
	}
	return out
}

// Version returns the mutation counter.
func (s *Stack) Version() uint64 { return s.version }

// Trace is a point-in-time observation of a process's stack, as taken
// by a monitor. It captures everything the transient-slowdown filter
// needs to compare two observations.
type Trace struct {
	Version        uint64
	State          State
	TopMPI         string
	NonPollEntries uint64
	PollEntries    uint64
}

// Observe captures a Trace of the stack.
func (s *Stack) Observe() Trace {
	return Trace{
		Version:        s.version,
		State:          s.State(),
		TopMPI:         s.TopMPI(),
		NonPollEntries: s.nonPollEntries,
		PollEntries:    s.pollEntries,
	}
}

// ProgressKind classifies what happened between two traces of the same
// process, for the transient-slowdown filter of the paper's §3.3.
type ProgressKind int

const (
	// NoProgress: the process did not move at all, or moved only within
	// busy-wait polling (treated as staying inside MPI).
	NoProgress ProgressKind = iota
	// SlowProgress: the process is stepping through different MPI
	// functions or entering/leaving non-polling MPI calls — the
	// signature of a transient slowdown, not a hang.
	SlowProgress
)

// CompareTraces applies the paper's two rules to a pair of traces
// (earlier, later) of one process. It reports SlowProgress if:
//
//  1. the process passed through different MPI functions
//     (the innermost MPI frame changed), or
//  2. the process stepped in or out of MPI functions other than the
//     polling functions (the non-poll entry counter grew, or it
//     left/entered MPI entirely with a non-poll function involved).
//
// Anything else — identical stacks, or motion confined to MPI_Test-style
// busy-waiting — is NoProgress.
func CompareTraces(earlier, later Trace) ProgressKind {
	if later.TopMPI != earlier.TopMPI && later.TopMPI != "" && earlier.TopMPI != "" &&
		!(IsPollingFunc(later.TopMPI) && IsPollingFunc(earlier.TopMPI)) {
		return SlowProgress
	}
	if later.NonPollEntries != earlier.NonPollEntries {
		return SlowProgress
	}
	return NoProgress
}
