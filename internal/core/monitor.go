// Package core implements the ParaStack monitor: model-based,
// timeout-free hang detection for (simulated) MPI programs, plus hang
// classification and faulty-process identification.
//
// The monitor is a simulated process that samples the runtime state of
// C randomly chosen ranks at randomized intervals, maintains the robust
// Scrout model of internal/model, verifies hangs with the geometric
// significance test of the paper's §3.1, adapts its sampling interval
// with a runs test (§3.1), alternates between two disjoint monitor sets
// to defeat the corner case of §3.3, filters transient slowdowns
// (§3.3), and — on a verified hang — classifies it and pinpoints the
// faulty ranks (§4).
package core

import (
	"math"
	"sort"
	"time"

	"parastack/internal/chaos"
	"parastack/internal/detect"
	"parastack/internal/model"
	"parastack/internal/mpi"
	"parastack/internal/obs"
	"parastack/internal/sim"
	"parastack/internal/stack"
	"parastack/internal/stats"
	"parastack/internal/topology"
)

// Counter, gauge, and event names the monitor reports through its
// recorder (see Config.Recorder). Counters are maintained even without
// a trace sink; events require one.
const (
	CtrSamples       = "monitor.samples"            // Scrout observations
	CtrSuspicions    = "monitor.suspicions"         // suspicion observations
	CtrDoublings     = "monitor.doublings"          // interval doublings
	CtrRotations     = "monitor.rotations"          // monitor-set rotations
	CtrSlowdowns     = "monitor.slowdowns_filtered" // transient slowdowns filtered
	CtrVerifications = "monitor.verifications"      // verified hangs
	CtrTraces        = "monitor.traces"             // stack traces taken
	CtrPhaseSwitches = "monitor.phase_switches"     // NotifyPhase transitions

	// Degradation counters (nonzero only under Config.Chaos).
	CtrProbesLost   = "monitor.probes_lost"          // probes that returned nothing
	CtrProbesStale  = "monitor.probes_stale"         // stale traces delivered late
	CtrQuorumMisses = "monitor.rounds_below_quorum"  // sampling rounds discarded
	CtrQuarantines  = "monitor.quarantines"          // ranks quarantined as unreachable
	CtrAmnesties    = "monitor.quarantine_amnesties" // pool-dry paroles of quarantined ranks
	CtrFailovers    = "monitor.failovers"            // monitors restored from a snapshot

	GaugeInterval  = "monitor.interval_ms" // current sampling interval I
	GaugeQ         = "monitor.q"           // latest fit's q
	GaugeThreshold = "monitor.threshold"   // latest fit's suspicion threshold
	GaugeRecovery  = "monitor.recovery_ms" // restore → first accepted round

	EvSample     = "sample"       // fields: scrout, suspicion, set, n
	EvSuspicion  = "suspicion"    // fields: streak, k, q, threshold
	EvDoubling   = "doubling"     // fields: interval_us
	EvRotation   = "rotation"     // fields: from, to
	EvModelReady = "model_ready"  // fields: n, threshold, q
	EvSlowdown   = "slowdown"     // fields: streak
	EvVerify     = "verification" // fields: type, suspicions, q, threshold, faulty
	EvPhase      = "phase"        // fields: phase
	EvQuorumMiss = "quorum_miss"  // fields: got, need, set
	EvQuarantine = "quarantine"   // fields: rank, replacement, set
	EvFailover   = "failover"     // fields: samples, sets, down_us
)

// ProbeChaos is the seam through which an infrastructure-chaos layer
// perturbs the monitor's own machinery: each probe RPC is given a fate
// (fresh, lost, or stale) and each sampling step an extra delay. It is
// implemented by *chaos.Injector; tests substitute deterministic fakes.
type ProbeChaos interface {
	// ProbeFate decides the outcome of one probe of rank at virtual
	// time now.
	ProbeFate(rank int, now time.Duration) chaos.Fate
	// StepJitter returns extra delay added to the next sampling step.
	StepJitter() time.Duration
}

// HangType classifies a verified hang by the phase the error lives in
// (alias of the detector-neutral internal/detect type).
type HangType = detect.HangType

const (
	// HangComputation means at least one process was persistently
	// outside MPI: the error is in application code on those ranks.
	HangComputation = detect.HangComputation
	// HangCommunication means every process was stuck inside MPI.
	HangCommunication = detect.HangCommunication
)

// Report is the outcome of a verified hang detection. It is an alias of
// detect.Report, the verdict type shared by every detector, which is
// what lets Monitor satisfy detect.Detector with this very method set.
type Report = detect.Report

// Sample is one Scrout observation, retained for analysis and figures.
type Sample struct {
	T         time.Duration
	Scrout    float64
	Suspicion bool
	Set       int
}

// Config tunes the monitor. The zero value selects the paper's
// defaults; only Alpha is meant to be user-tailored (§3.3).
type Config struct {
	// C is the number of monitored processes per set (default 10).
	C int
	// InitialInterval is I's starting value (default 400ms).
	InitialInterval time.Duration
	// Alpha is the hang-test significance level (default 0.001,
	// i.e. 99.9% confidence).
	Alpha float64
	// RunsBatch is how many samples accumulate between randomness
	// checks during interval adaptation (default 16).
	RunsBatch int
	// RunsAlpha is the runs-test significance level (default 0.05).
	RunsAlpha float64
	// SwitchEvery is the number of observations after which the
	// monitor rotates to the next disjoint set (default 30).
	SwitchEvery int
	// NumSets is how many pairwise-disjoint monitor sets to rotate
	// through (default 2, the paper's configuration; more sets buy
	// resilience to multiple simultaneous faulty processes at no extra
	// sampling cost, per §3.3).
	NumSets int
	// TraceCost is the virtual-time cost one stack trace imposes on a
	// traced process that is executing application code (default 3ms,
	// calibrated to the paper's Table 3 ptrace+libunwind measurements).
	TraceCost time.Duration
	// MaxHistory caps the model's sample history (default 1024).
	MaxHistory int
	// SlowdownGap is the spacing between the stack traces compared by
	// the transient-slowdown filter (default 2I clamped to [4s, 8s]:
	// long enough that anything alive — including a rank inside a
	// multi-second FT transpose — demonstrably moves between traces).
	SlowdownGap time.Duration
	// FaultScans and FaultScanGap control faulty-process
	// identification: a rank must be OUT_MPI in all FaultScans scans,
	// spaced FaultScanGap apart, to be reported (defaults 3, 100ms).
	FaultScans   int
	FaultScanGap time.Duration

	// Chaos, when non-nil, perturbs the monitor's own probes and clock
	// (see internal/chaos). The monitor then degrades gracefully:
	// Scrout is computed over the traces that actually arrived, rounds
	// below quorum are discarded, stale traces are rejected by
	// sample-round epoch, and persistently unreachable ranks are
	// quarantined and replaced. When nil (the default) the sampling
	// path is byte-for-byte the chaos-free one.
	Chaos ProbeChaos
	// Quorum is the minimum fraction of a sampling round's probes that
	// must return fresh traces for the round to count (default 0.5);
	// only meaningful with Chaos.
	Quorum float64
	// QuarantineAfter is how many consecutive lost probes of one rank
	// make the monitor quarantine it and re-pick its slot (default 3);
	// only meaningful with Chaos.
	QuarantineAfter int

	// Ablation switches (all false = the paper's system).
	DisableAdaptation     bool // never double I
	DisableSetSwitch      bool // monitor a single set
	DisableSlowdownFilter bool // skip the transient-slowdown check

	// OnHang, when non-nil, replaces the default action (stopping the
	// engine) after a verified hang.
	OnHang func(*Report)

	// KeepHistory retains Scrout samples in Monitor.History, bounded by
	// MaxHistory with oldest samples evicted first (default off to
	// bound memory in long campaigns).
	KeepHistory bool

	// Recorder receives the monitor's counters, gauges, and structured
	// events (nil selects a private metrics-only recorder, so counters
	// like Doublings always work; obs.Disabled drops everything).
	Recorder obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.C == 0 {
		c.C = 10
	}
	if c.InitialInterval == 0 {
		c.InitialInterval = 400 * time.Millisecond
	}
	if c.Alpha == 0 {
		c.Alpha = 0.001
	}
	if c.RunsBatch == 0 {
		c.RunsBatch = 16
	}
	if c.RunsAlpha == 0 {
		c.RunsAlpha = 0.05
	}
	if c.SwitchEvery == 0 {
		c.SwitchEvery = 30
	}
	if c.NumSets == 0 {
		c.NumSets = 2
	}
	if c.TraceCost == 0 {
		c.TraceCost = 3 * time.Millisecond
	}
	if c.MaxHistory == 0 {
		c.MaxHistory = 1024
	}
	if c.FaultScans == 0 {
		c.FaultScans = 3
	}
	if c.FaultScanGap == 0 {
		c.FaultScanGap = 100 * time.Millisecond
	}
	if c.Quorum == 0 {
		c.Quorum = 0.5
	}
	if c.QuarantineAfter == 0 {
		c.QuarantineAfter = 3
	}
	return c
}

// Monitor is a ParaStack instance attached to one simulated world.
type Monitor struct {
	cfg     Config
	w       *mpi.World
	cluster *topology.Cluster

	model *model.Model
	I     time.Duration

	randomOK     bool
	sinceRuns    int
	suspicions   int
	sets         []topology.MonitorSet
	activeSet    int
	sinceSwitch  int
	totalSamples int

	report *Report

	// history is a ring buffer of the most recent MaxHistory samples:
	// once full, the oldest sample (at histStart) is overwritten in
	// place, so steady-state recording is O(1) and allocation-free
	// instead of the copy-shift eviction it replaced.
	history   []Sample
	histStart int

	// traceScratch is reused by slowdownCheck so the steady-state
	// verification path allocates nothing per check.
	traceScratch []stack.Trace

	// Phase support (§6): nil models map means single-phase operation.
	curPhase int
	models   map[int]*model.Model

	// Chaos-degradation state, allocated only when Config.Chaos is set
	// so the chaos-free sampling path stays untouched (and SampleOnce
	// stays allocation-free). epoch numbers sampling rounds; lastTrace/
	// lastEpoch cache each rank's last fresh trace so a stale reply can
	// deliver — and be rejected as — a previous round's observation.
	chaosOn     bool
	epoch       uint64
	lastTrace   []stack.Trace
	lastEpoch   []uint64 // per-rank epoch of lastTrace; 0 = never probed
	failStreak  []int    // consecutive lost probes, reset on any reply
	okScratch   []bool   // slowdownCheck scratch: which first-traces arrived
	quarantined map[int]bool

	// Failover state: set by RestoreMonitor so the first accepted round
	// can report the recovery-time gauge.
	restoredAt       time.Duration
	recoveryRecorded bool

	// Stats observable by experiments (counter-style stats live on the
	// recorder; see Doublings and SlowdownsSeen).
	ModelReadyAt  time.Duration // first time the model could fit (0 if never)
	modelWasReady bool
	rec           obs.Recorder
	proc          *sim.Proc
	stopped       bool
}

// New attaches a monitor to world w laid out as cluster. It does not
// start sampling until Start is called.
func New(w *mpi.World, cluster *topology.Cluster, cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	rec := cfg.Recorder
	if rec == nil {
		rec = obs.New(nil) // metrics only: counters work, events are off
	}
	m := &Monitor{
		cfg:     cfg,
		w:       w,
		cluster: cluster,
		model:   model.New(cfg.MaxHistory),
		I:       cfg.InitialInterval,
		rec:     rec,
	}
	rec.Gauge(GaugeInterval, float64(m.I.Milliseconds()))
	rng := w.Engine().Rand()
	if cfg.DisableSetSwitch {
		one := cluster.PickMonitorSet(rng, cfg.C, nil)
		m.sets = []topology.MonitorSet{one}
	} else {
		m.sets = cluster.NDisjointMonitorSets(rng, cfg.NumSets, cfg.C)
		// Drop sets the cluster was too small to fill.
		kept := m.sets[:0]
		for _, s := range m.sets {
			if len(s.Ranks) > 0 {
				kept = append(kept, s)
			}
		}
		m.sets = kept
	}
	if len(m.sets) == 0 {
		// Tiny or degenerate clusters can leave every disjoint set
		// empty; fall back to a single best-effort set so ActiveRanks
		// and sampleRound never index an empty slice.
		m.sets = []topology.MonitorSet{cluster.PickMonitorSet(rng, cfg.C, nil)}
	}
	if cfg.Chaos != nil {
		m.chaosOn = true
		n := w.Size()
		m.lastTrace = make([]stack.Trace, n)
		m.lastEpoch = make([]uint64, n)
		m.failStreak = make([]int, n)
		m.okScratch = make([]bool, n)
		m.quarantined = make(map[int]bool)
	}
	return m
}

// Interval returns the current maximum sampling interval I.
func (m *Monitor) Interval() time.Duration { return m.I }

// Report returns the hang report, or nil if no hang was verified.
func (m *Monitor) Report() *Report { return m.report }

// Name identifies the monitor as a detect.Detector.
func (m *Monitor) Name() string { return "parastack" }

// History returns retained samples, oldest first (empty unless
// Config.KeepHistory). Once the ring buffer has wrapped, the result is
// a fresh linearized copy; before that it aliases the internal buffer.
func (m *Monitor) History() []Sample {
	if m.histStart == 0 {
		return m.history
	}
	out := make([]Sample, len(m.history))
	n := copy(out, m.history[m.histStart:])
	copy(out[n:], m.history[:m.histStart])
	return out
}

// Model exposes the Scrout model (read-only use intended).
func (m *Monitor) Model() *model.Model { return m.model }

// ActiveRanks returns the ranks of the currently monitored set.
func (m *Monitor) ActiveRanks() []int { return m.sets[m.activeSet].Ranks }

// TotalSamples reports how many Scrout samples the monitor has taken.
func (m *Monitor) TotalSamples() int { return m.totalSamples }

// SampleOnce executes one steady-state sampling round outside the
// simulation loop: trace the active monitor set, fold the Scrout value
// into the model, and record the sample. The monitor's run loop
// performs exactly these steps per wakeup; SampleOnce exposes them so
// benchmarks (internal/bench, cmd/psbench -bench-json) can measure the
// per-sample cost — which must stay allocation-free — directly. A
// round discarded by the chaos-degradation quorum rule contributes
// nothing to the model and returns 0.
func (m *Monitor) SampleOnce() float64 {
	scrout, ok := m.sampleRound()
	if !ok {
		return 0
	}
	m.curModel().Add(scrout)
	m.totalSamples++
	m.record(scrout, false)
	return scrout
}

// Quarantined returns the ranks the monitor has quarantined as
// persistently unreachable, ascending (nil without Config.Chaos).
func (m *Monitor) Quarantined() []int {
	if len(m.quarantined) == 0 {
		return nil
	}
	out := make([]int, 0, len(m.quarantined))
	for r := range m.quarantined {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// Recorder returns the monitor's observability recorder.
func (m *Monitor) Recorder() obs.Recorder { return m.rec }

// Doublings reports how many times the sampling interval I was doubled
// (recorder-backed; formerly a struct field).
func (m *Monitor) Doublings() int { return int(m.rec.Counter(CtrDoublings)) }

// SlowdownsSeen reports how many transient slowdowns the filter caught
// (recorder-backed; formerly a struct field).
func (m *Monitor) SlowdownsSeen() int { return int(m.rec.Counter(CtrSlowdowns)) }

// Stop makes the monitor exit at its next wakeup (used when detaching,
// and by the chaos layer to crash it). A stopped monitor never delivers
// a verdict and fires no further sampling events or counters — the run
// loop re-checks the flag after every sleep, including those inside the
// slowdown filter and the faulty-rank scans. Stop before Start is a
// safe no-op: the spawned process exits on its first wakeup without
// sampling anything.
func (m *Monitor) Stop() { m.stopped = true }

// Start spawns the monitor process on the world's engine. The monitor
// exits when the application completes, a hang is verified (after
// invoking OnHang or stopping the engine), or Stop is called.
func (m *Monitor) Start() {
	m.proc = m.w.Engine().SpawnNow("parastack-monitor", m.run)
}

func (m *Monitor) run(p *sim.Proc) {
	eng := m.w.Engine()
	rng := eng.Rand()
	for !m.stopped {
		// Randomized sampling step: rstep = rand(I) + I/2 ∈ [I/2, 3I/2].
		step := time.Duration(rng.Int63n(int64(m.I))) + m.I/2
		if m.chaosOn {
			step += m.cfg.Chaos.StepJitter()
		}
		p.Sleep(step)
		if m.w.Done() || m.stopped {
			return
		}

		scrout, ok := m.sampleRound()
		if !ok {
			// Degraded round (below quorum): nothing enters the model
			// and the suspicion streak neither grows nor resets — the
			// monitor simply learned nothing this wakeup.
			continue
		}
		m.noteRecovery()
		md := m.curModel()
		md.Add(scrout)
		m.totalSamples++
		m.sinceRuns++

		// Interval adaptation: runs test every RunsBatch samples until
		// the sampling is statistically random.
		if !m.randomOK && !m.cfg.DisableAdaptation && m.sinceRuns >= m.cfg.RunsBatch {
			m.sinceRuns = 0
			res := stats.RunsTest(md.Recent(m.cfg.RunsBatch), m.cfg.RunsAlpha)
			if res.Random {
				m.randomOK = true
			} else {
				m.I *= 2
				m.rec.Count(CtrDoublings, 1)
				m.rec.Gauge(GaugeInterval, float64(m.I.Milliseconds()))
				if m.rec.Enabled() {
					m.rec.Event(time.Duration(eng.Now()), EvDoubling,
						obs.Dur("interval_us", m.I))
				}
				m.halveModels()
			}
		}

		fit, ok := md.Fit()
		if !ok {
			m.record(scrout, false)
			m.rotateSet()
			continue
		}
		m.rec.Gauge(GaugeQ, fit.Q)
		m.rec.Gauge(GaugeThreshold, fit.Threshold)
		if !m.modelWasReady {
			m.modelWasReady = true
			m.ModelReadyAt = time.Duration(eng.Now())
			if m.rec.Enabled() {
				m.rec.Event(m.ModelReadyAt, EvModelReady,
					obs.Int("n", int64(md.N())),
					obs.F64("threshold", fit.Threshold),
					obs.F64("q", fit.Q))
			}
		}

		suspicion := scrout <= fit.Threshold
		m.record(scrout, suspicion)
		if !suspicion {
			m.suspicions = 0
			m.rotateSet()
			continue
		}
		m.suspicions++
		m.rec.Count(CtrSuspicions, 1)
		k := stats.GeometricThreshold(fit.Q, m.cfg.Alpha)
		if m.rec.Enabled() {
			m.rec.Event(time.Duration(eng.Now()), EvSuspicion,
				obs.Int("streak", int64(m.suspicions)),
				obs.Int("k", int64(k)),
				obs.F64("q", fit.Q),
				obs.F64("threshold", fit.Threshold))
		}
		if m.suspicions < k {
			m.rotateSet()
			continue
		}

		// Candidate hang: apply the transient-slowdown filter.
		if !m.cfg.DisableSlowdownFilter {
			slow := m.slowdownCheck(p)
			if m.stopped {
				return // crashed/detached during the check: no verdict
			}
			if slow {
				m.rec.Count(CtrSlowdowns, 1)
				if m.rec.Enabled() {
					m.rec.Event(time.Duration(eng.Now()), EvSlowdown,
						obs.Int("streak", int64(m.suspicions)))
				}
				m.suspicions = 0
				m.rotateSet()
				continue
			}
		}
		if m.w.Done() || m.stopped {
			return
		}

		// Verified hang: classify and identify faulty ranks. DetectedAt
		// is the instant of verification; the faulty-rank scans that
		// follow take additional virtual time and must not shift it.
		rep := &Report{
			DetectedAt: time.Duration(eng.Now()),
			Suspicions: m.suspicions,
			Q:          fit.Q,
			Threshold:  fit.Threshold,
		}
		rep.FaultyRanks = m.identifyFaulty(p)
		if m.stopped {
			return // crashed during the scans: no verdict
		}
		if len(rep.FaultyRanks) > 0 {
			rep.Type = HangComputation
		} else {
			rep.Type = HangCommunication
		}
		m.report = rep
		m.rec.Count(CtrVerifications, 1)
		if m.rec.Enabled() {
			m.rec.Event(rep.DetectedAt, EvVerify,
				obs.Str("type", rep.Type.String()),
				obs.Int("suspicions", int64(rep.Suspicions)),
				obs.F64("q", rep.Q),
				obs.F64("threshold", rep.Threshold),
				obs.Int("faulty", int64(len(rep.FaultyRanks))))
		}
		if m.cfg.OnHang != nil {
			m.cfg.OnHang(rep)
		} else {
			eng.Stop()
		}
		return
	}
}

// record counts and emits the sample, and appends to history when
// enabled. History is bounded by Config.MaxHistory (oldest evicted
// first), so long campaigns with KeepHistory cannot grow without limit;
// eviction overwrites the ring slot in place (O(1), no copy-shift).
func (m *Monitor) record(scrout float64, susp bool) {
	m.rec.Count(CtrSamples, 1)
	if m.rec.Enabled() {
		m.rec.Event(time.Duration(m.w.Engine().Now()), EvSample,
			obs.F64("scrout", scrout),
			obs.Bool("suspicion", susp),
			obs.Int("set", int64(m.activeSet)),
			obs.Int("n", int64(m.curModel().N())))
	}
	if m.cfg.KeepHistory {
		s := Sample{
			T:         time.Duration(m.w.Engine().Now()),
			Scrout:    scrout,
			Suspicion: susp,
			Set:       m.activeSet,
		}
		if len(m.history) < m.cfg.MaxHistory {
			m.history = append(m.history, s)
		} else {
			m.history[m.histStart] = s
			m.histStart++
			if m.histStart == len(m.history) {
				m.histStart = 0
			}
		}
	}
}

// rotateSet advances the observation counter and alternates between the
// two disjoint monitor sets every SwitchEvery observations.
func (m *Monitor) rotateSet() {
	if len(m.sets) < 2 {
		return
	}
	m.sinceSwitch++
	if m.sinceSwitch >= m.cfg.SwitchEvery {
		m.sinceSwitch = 0
		from := m.activeSet
		m.activeSet = (m.activeSet + 1) % len(m.sets)
		m.rec.Count(CtrRotations, 1)
		if m.rec.Enabled() {
			m.rec.Event(time.Duration(m.w.Engine().Now()), EvRotation,
				obs.Int("from", int64(from)),
				obs.Int("to", int64(m.activeSet)))
		}
	}
}

// trace takes one stack trace of a rank, charging the ptrace-style cost
// to processes that are executing application code (tracing a process
// blocked in MPI overlaps with its idle time and is free, matching the
// paper's lightweight-design argument).
func (m *Monitor) trace(rankID int) stack.Trace {
	m.rec.Count(CtrTraces, 1)
	r := m.w.Rank(rankID)
	r.Proc().ChargePenalty(m.cfg.TraceCost)
	return r.Observe()
}

// sampleRound probes the active set once and computes Scrout over the
// traces that actually arrived. ok is false when the round must be
// discarded: fewer fresh traces than Config.Quorum of the set (probe
// loss, stale replies, or a set emptied by quarantine). Without chaos
// every probe is fresh, the quorum is trivially met, and the round is
// exactly the paper's: the fraction of the active set OUT_MPI right
// now.
func (m *Monitor) sampleRound() (float64, bool) {
	m.epoch++
	ranks := m.sets[m.activeSet].Ranks
	if len(ranks) == 0 {
		return 0, false
	}
	if !m.chaosOn {
		out := 0
		for _, id := range ranks {
			if m.trace(id).State == stack.OutMPI {
				out++
			}
		}
		return float64(out) / float64(len(ranks)), true
	}
	out, got := 0, 0
	for _, id := range ranks {
		tr, epoch, ok := m.probeRound(id)
		switch {
		case !ok: // lost: nothing came back
			m.failStreak[id]++
		case epoch != m.epoch: // stale: reachable, but a previous round's state
			m.failStreak[id] = 0
		default:
			m.failStreak[id] = 0
			got++
			if tr.State == stack.OutMPI {
				out++
			}
		}
	}
	// Quarantine after the probe loop: replacing a rank mutates the
	// slice being ranged over, so restart the scan after each one.
	for {
		quarantinedOne := false
		for _, id := range m.sets[m.activeSet].Ranks {
			if !m.quarantined[id] && m.failStreak[id] >= m.cfg.QuarantineAfter {
				m.quarantine(id)
				quarantinedOne = true
				break
			}
		}
		if !quarantinedOne {
			break
		}
	}
	need := int(math.Ceil(m.cfg.Quorum * float64(len(ranks))))
	if need < 1 {
		need = 1
	}
	if got < need {
		m.rec.Count(CtrQuorumMisses, 1)
		if m.rec.Enabled() {
			m.rec.Event(time.Duration(m.w.Engine().Now()), EvQuorumMiss,
				obs.Int("got", int64(got)),
				obs.Int("need", int64(need)),
				obs.Int("set", int64(m.activeSet)))
		}
		return 0, false
	}
	return float64(out) / float64(got), true
}

// probeRound takes one chaos-mediated probe for the current sampling
// round. The returned epoch tags the trace's freshness: a stale reply
// carries the epoch of the round it was actually captured in, and
// sampleRound discards any trace whose epoch is not the current
// round's. A stale reply with nothing cached yet is indistinguishable
// from a loss to the monitor and is treated as one.
func (m *Monitor) probeRound(rankID int) (stack.Trace, uint64, bool) {
	switch m.cfg.Chaos.ProbeFate(rankID, time.Duration(m.w.Engine().Now())) {
	case chaos.FateLost:
		m.rec.Count(CtrProbesLost, 1)
		return stack.Trace{}, 0, false
	case chaos.FateStale:
		m.rec.Count(CtrProbesStale, 1)
		if m.lastEpoch[rankID] > 0 {
			return m.lastTrace[rankID], m.lastEpoch[rankID], true
		}
		return stack.Trace{}, 0, false
	}
	tr := m.trace(rankID)
	m.lastTrace[rankID] = tr
	m.lastEpoch[rankID] = m.epoch
	return tr, m.epoch, true
}

// probeFresh is the probe the verification paths use (slowdown filter,
// faulty-rank scans): they need evidence about a rank's state right
// now, so a stale reply is as useless as a lost one, and neither
// touches the per-rank trace cache.
func (m *Monitor) probeFresh(rankID int) (stack.Trace, bool) {
	if !m.chaosOn {
		return m.trace(rankID), true
	}
	switch m.cfg.Chaos.ProbeFate(rankID, time.Duration(m.w.Engine().Now())) {
	case chaos.FateLost:
		m.rec.Count(CtrProbesLost, 1)
		return stack.Trace{}, false
	case chaos.FateStale:
		m.rec.Count(CtrProbesStale, 1)
		return stack.Trace{}, false
	}
	return m.trace(rankID), true
}

// quarantine gives up on an unreachable rank: it is removed from
// whichever monitor set holds it and a replacement is drawn from the
// ranks not quarantined and not already monitored — the same
// PickMonitorSet machinery that built the sets (§3.3). Quarantine is
// not a life sentence: when the candidate pool runs dry (sustained
// random probe loss quarantines spuriously, and a long run would
// otherwise exile every rank and starve the monitor into permanent
// silence), all previously quarantined ranks are paroled and the pick
// retried. Truly dead ranks re-enter quarantine within QuarantineAfter
// rounds; live ranks that were exiled by bad luck return to service.
// Only when even parole yields no candidate does the set shrink; a
// fully unreachable world then leaves every round below quorum, which
// is the designed blackout behavior (the monitor stays silent rather
// than guessing).
func (m *Monitor) quarantine(id int) {
	m.quarantined[id] = true
	m.failStreak[id] = 0
	m.rec.Count(CtrQuarantines, 1)
	excl := make(map[int]bool, len(m.quarantined)+len(m.sets)*m.cfg.C)
	for r := range m.quarantined {
		excl[r] = true
	}
	for _, s := range m.sets {
		for _, r := range s.Ranks {
			excl[r] = true
		}
	}
	rng := m.w.Engine().Rand()
	for si := range m.sets {
		ranks := m.sets[si].Ranks
		pos := -1
		for i, r := range ranks {
			if r == id {
				pos = i
				break
			}
		}
		if pos < 0 {
			continue
		}
		picked := m.cluster.PickMonitorSet(rng, 1, excl)
		if len(picked.Ranks) == 0 && len(m.quarantined) > 1 {
			// Amnesty: the pool is dry, so parole everyone except the
			// rank being quarantined right now. Quarantined ranks are
			// never current set members, so dropping them from excl
			// cannot collide with the monitored ranks still excluded.
			for r := range m.quarantined {
				if r != id {
					delete(m.quarantined, r)
					delete(excl, r)
				}
			}
			m.rec.Count(CtrAmnesties, 1)
			picked = m.cluster.PickMonitorSet(rng, 1, excl)
		}
		repl := -1
		if len(picked.Ranks) == 1 {
			repl = picked.Ranks[0]
			ranks[pos] = repl
		} else {
			m.sets[si].Ranks = append(ranks[:pos], ranks[pos+1:]...)
		}
		m.refreshNodes(si)
		if m.rec.Enabled() {
			m.rec.Event(time.Duration(m.w.Engine().Now()), EvQuarantine,
				obs.Int("rank", int64(id)),
				obs.Int("replacement", int64(repl)),
				obs.Int("set", int64(si)))
		}
		return // sets are disjoint: a rank lives in at most one
	}
}

// refreshNodes recomputes a set's active-node list after its ranks
// changed.
func (m *Monitor) refreshNodes(si int) {
	seen := map[int]bool{}
	nodes := m.sets[si].Nodes[:0]
	for _, r := range m.sets[si].Ranks {
		n := m.cluster.NodeOf(r)
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	sort.Ints(nodes)
	m.sets[si].Nodes = nodes
}

// noteRecovery reports the failover-recovery gauge — virtual time from
// restore to the first sampling round the restored monitor accepted.
func (m *Monitor) noteRecovery() {
	if m.restoredAt == 0 || m.recoveryRecorded {
		return
	}
	m.recoveryRecorded = true
	d := time.Duration(m.w.Engine().Now()) - m.restoredAt
	m.rec.Gauge(GaugeRecovery, float64(d.Milliseconds()))
}

// slowdownCheck distinguishes a transient slowdown from a hang using
// two stack traces per process (paper §3.3): if any process passes
// through different MPI functions, or steps in/out of non-polling MPI
// functions, the application is slow but alive.
func (m *Monitor) slowdownCheck(p *sim.Proc) bool {
	gap := m.cfg.SlowdownGap
	if gap == 0 {
		// The gap must comfortably exceed both a slowed process's
		// longest stretch between MPI calls and a healthy long
		// collective (an FT-style transpose), so that anything alive
		// demonstrably moves between the two traces. It scales with I
		// but is clamped to [4s, 8s].
		gap = 2 * m.I
		if gap < 4*time.Second {
			gap = 4 * time.Second
		}
		if gap > 8*time.Second {
			gap = 8 * time.Second
		}
	}
	n := m.w.Size()
	if cap(m.traceScratch) < n {
		m.traceScratch = make([]stack.Trace, n)
	}
	first := m.traceScratch[:n]
	if !m.chaosOn {
		for i := 0; i < n; i++ {
			first[i] = m.trace(i)
		}
		p.Sleep(gap)
		if m.w.Done() || m.stopped {
			return true // completed (or detached) while we checked
		}
		for i := 0; i < n; i++ {
			if stack.CompareTraces(first[i], m.trace(i)) == stack.SlowProgress {
				return true
			}
		}
		return false
	}
	// Under chaos either trace of a pair can be missing; a rank only
	// proves liveness when both its probes arrived. Skipped pairs are
	// conservative — they can only push toward the hang verdict, never
	// suppress one.
	arrived := m.okScratch
	for i := 0; i < n; i++ {
		first[i], arrived[i] = m.probeFresh(i)
	}
	p.Sleep(gap)
	if m.w.Done() || m.stopped {
		return true
	}
	for i := 0; i < n; i++ {
		if !arrived[i] {
			continue
		}
		sec, ok := m.probeFresh(i)
		if !ok {
			continue
		}
		if stack.CompareTraces(first[i], sec) == stack.SlowProgress {
			return true
		}
	}
	return false
}

// identifyFaulty scans every rank FaultScans times, FaultScanGap apart,
// and returns the ranks observed OUT_MPI in every scan — the paper's §4
// persistence rule that excludes busy-wait flickers. Under chaos a
// rank's probe can be lost mid-scan; a lost probe is no evidence either
// way, but a rank is only accused if at least one scan actually
// observed it OUT_MPI — the monitor never accuses a rank it could not
// see at all.
func (m *Monitor) identifyFaulty(p *sim.Proc) []int {
	n := m.w.Size()
	persistent := make([]bool, n)
	for i := range persistent {
		persistent[i] = true
	}
	var observed []int
	if m.chaosOn {
		observed = make([]int, n)
	}
	for s := 0; s < m.cfg.FaultScans; s++ {
		if s > 0 {
			p.Sleep(m.cfg.FaultScanGap)
			if m.stopped {
				return nil // crashed mid-scan; run() discards the report
			}
		}
		for i := 0; i < n; i++ {
			if !persistent[i] {
				continue
			}
			if !m.chaosOn {
				if m.trace(i).State != stack.OutMPI {
					persistent[i] = false
				}
				continue
			}
			tr, ok := m.probeFresh(i)
			if !ok {
				continue
			}
			observed[i]++
			if tr.State != stack.OutMPI {
				persistent[i] = false
			}
		}
	}
	var out []int
	for i, stayed := range persistent {
		if stayed && (observed == nil || observed[i] > 0) {
			out = append(out, i)
		}
	}
	return out
}
