// Package core implements the ParaStack monitor: model-based,
// timeout-free hang detection for (simulated) MPI programs, plus hang
// classification and faulty-process identification.
//
// The monitor is a simulated process that samples the runtime state of
// C randomly chosen ranks at randomized intervals, maintains the robust
// Scrout model of internal/model, verifies hangs with the geometric
// significance test of the paper's §3.1, adapts its sampling interval
// with a runs test (§3.1), alternates between two disjoint monitor sets
// to defeat the corner case of §3.3, filters transient slowdowns
// (§3.3), and — on a verified hang — classifies it and pinpoints the
// faulty ranks (§4).
package core

import (
	"time"

	"parastack/internal/detect"
	"parastack/internal/model"
	"parastack/internal/mpi"
	"parastack/internal/obs"
	"parastack/internal/sim"
	"parastack/internal/stack"
	"parastack/internal/stats"
	"parastack/internal/topology"
)

// Counter, gauge, and event names the monitor reports through its
// recorder (see Config.Recorder). Counters are maintained even without
// a trace sink; events require one.
const (
	CtrSamples       = "monitor.samples"            // Scrout observations
	CtrSuspicions    = "monitor.suspicions"         // suspicion observations
	CtrDoublings     = "monitor.doublings"          // interval doublings
	CtrRotations     = "monitor.rotations"          // monitor-set rotations
	CtrSlowdowns     = "monitor.slowdowns_filtered" // transient slowdowns filtered
	CtrVerifications = "monitor.verifications"      // verified hangs
	CtrTraces        = "monitor.traces"             // stack traces taken
	CtrPhaseSwitches = "monitor.phase_switches"     // NotifyPhase transitions

	GaugeInterval  = "monitor.interval_ms" // current sampling interval I
	GaugeQ         = "monitor.q"           // latest fit's q
	GaugeThreshold = "monitor.threshold"   // latest fit's suspicion threshold

	EvSample     = "sample"       // fields: scrout, suspicion, set, n
	EvSuspicion  = "suspicion"    // fields: streak, k, q, threshold
	EvDoubling   = "doubling"     // fields: interval_us
	EvRotation   = "rotation"     // fields: from, to
	EvModelReady = "model_ready"  // fields: n, threshold, q
	EvSlowdown   = "slowdown"     // fields: streak
	EvVerify     = "verification" // fields: type, suspicions, q, threshold, faulty
	EvPhase      = "phase"        // fields: phase
)

// HangType classifies a verified hang by the phase the error lives in
// (alias of the detector-neutral internal/detect type).
type HangType = detect.HangType

const (
	// HangComputation means at least one process was persistently
	// outside MPI: the error is in application code on those ranks.
	HangComputation = detect.HangComputation
	// HangCommunication means every process was stuck inside MPI.
	HangCommunication = detect.HangCommunication
)

// Report is the outcome of a verified hang detection. It is an alias of
// detect.Report, the verdict type shared by every detector, which is
// what lets Monitor satisfy detect.Detector with this very method set.
type Report = detect.Report

// Sample is one Scrout observation, retained for analysis and figures.
type Sample struct {
	T         time.Duration
	Scrout    float64
	Suspicion bool
	Set       int
}

// Config tunes the monitor. The zero value selects the paper's
// defaults; only Alpha is meant to be user-tailored (§3.3).
type Config struct {
	// C is the number of monitored processes per set (default 10).
	C int
	// InitialInterval is I's starting value (default 400ms).
	InitialInterval time.Duration
	// Alpha is the hang-test significance level (default 0.001,
	// i.e. 99.9% confidence).
	Alpha float64
	// RunsBatch is how many samples accumulate between randomness
	// checks during interval adaptation (default 16).
	RunsBatch int
	// RunsAlpha is the runs-test significance level (default 0.05).
	RunsAlpha float64
	// SwitchEvery is the number of observations after which the
	// monitor rotates to the next disjoint set (default 30).
	SwitchEvery int
	// NumSets is how many pairwise-disjoint monitor sets to rotate
	// through (default 2, the paper's configuration; more sets buy
	// resilience to multiple simultaneous faulty processes at no extra
	// sampling cost, per §3.3).
	NumSets int
	// TraceCost is the virtual-time cost one stack trace imposes on a
	// traced process that is executing application code (default 3ms,
	// calibrated to the paper's Table 3 ptrace+libunwind measurements).
	TraceCost time.Duration
	// MaxHistory caps the model's sample history (default 1024).
	MaxHistory int
	// SlowdownGap is the spacing between the stack traces compared by
	// the transient-slowdown filter (default 2I clamped to [4s, 8s]:
	// long enough that anything alive — including a rank inside a
	// multi-second FT transpose — demonstrably moves between traces).
	SlowdownGap time.Duration
	// FaultScans and FaultScanGap control faulty-process
	// identification: a rank must be OUT_MPI in all FaultScans scans,
	// spaced FaultScanGap apart, to be reported (defaults 3, 100ms).
	FaultScans   int
	FaultScanGap time.Duration

	// Ablation switches (all false = the paper's system).
	DisableAdaptation     bool // never double I
	DisableSetSwitch      bool // monitor a single set
	DisableSlowdownFilter bool // skip the transient-slowdown check

	// OnHang, when non-nil, replaces the default action (stopping the
	// engine) after a verified hang.
	OnHang func(*Report)

	// KeepHistory retains Scrout samples in Monitor.History, bounded by
	// MaxHistory with oldest samples evicted first (default off to
	// bound memory in long campaigns).
	KeepHistory bool

	// Recorder receives the monitor's counters, gauges, and structured
	// events (nil selects a private metrics-only recorder, so counters
	// like Doublings always work; obs.Disabled drops everything).
	Recorder obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.C == 0 {
		c.C = 10
	}
	if c.InitialInterval == 0 {
		c.InitialInterval = 400 * time.Millisecond
	}
	if c.Alpha == 0 {
		c.Alpha = 0.001
	}
	if c.RunsBatch == 0 {
		c.RunsBatch = 16
	}
	if c.RunsAlpha == 0 {
		c.RunsAlpha = 0.05
	}
	if c.SwitchEvery == 0 {
		c.SwitchEvery = 30
	}
	if c.NumSets == 0 {
		c.NumSets = 2
	}
	if c.TraceCost == 0 {
		c.TraceCost = 3 * time.Millisecond
	}
	if c.MaxHistory == 0 {
		c.MaxHistory = 1024
	}
	if c.FaultScans == 0 {
		c.FaultScans = 3
	}
	if c.FaultScanGap == 0 {
		c.FaultScanGap = 100 * time.Millisecond
	}
	return c
}

// Monitor is a ParaStack instance attached to one simulated world.
type Monitor struct {
	cfg     Config
	w       *mpi.World
	cluster *topology.Cluster

	model *model.Model
	I     time.Duration

	randomOK     bool
	sinceRuns    int
	suspicions   int
	sets         []topology.MonitorSet
	activeSet    int
	sinceSwitch  int
	totalSamples int

	report *Report

	// history is a ring buffer of the most recent MaxHistory samples:
	// once full, the oldest sample (at histStart) is overwritten in
	// place, so steady-state recording is O(1) and allocation-free
	// instead of the copy-shift eviction it replaced.
	history   []Sample
	histStart int

	// traceScratch is reused by slowdownCheck so the steady-state
	// verification path allocates nothing per check.
	traceScratch []stack.Trace

	// Phase support (§6): nil models map means single-phase operation.
	curPhase int
	models   map[int]*model.Model

	// Stats observable by experiments (counter-style stats live on the
	// recorder; see Doublings and SlowdownsSeen).
	ModelReadyAt  time.Duration // first time the model could fit (0 if never)
	modelWasReady bool
	rec           obs.Recorder
	proc          *sim.Proc
	stopped       bool
}

// New attaches a monitor to world w laid out as cluster. It does not
// start sampling until Start is called.
func New(w *mpi.World, cluster *topology.Cluster, cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	rec := cfg.Recorder
	if rec == nil {
		rec = obs.New(nil) // metrics only: counters work, events are off
	}
	m := &Monitor{
		cfg:     cfg,
		w:       w,
		cluster: cluster,
		model:   model.New(cfg.MaxHistory),
		I:       cfg.InitialInterval,
		rec:     rec,
	}
	rec.Gauge(GaugeInterval, float64(m.I.Milliseconds()))
	rng := w.Engine().Rand()
	if cfg.DisableSetSwitch {
		one := cluster.PickMonitorSet(rng, cfg.C, nil)
		m.sets = []topology.MonitorSet{one}
	} else {
		m.sets = cluster.NDisjointMonitorSets(rng, cfg.NumSets, cfg.C)
		// Drop sets the cluster was too small to fill.
		kept := m.sets[:0]
		for _, s := range m.sets {
			if len(s.Ranks) > 0 {
				kept = append(kept, s)
			}
		}
		m.sets = kept
	}
	if len(m.sets) == 0 {
		// Tiny or degenerate clusters can leave every disjoint set
		// empty; fall back to a single best-effort set so ActiveRanks
		// and sampleScrout never index an empty slice.
		m.sets = []topology.MonitorSet{cluster.PickMonitorSet(rng, cfg.C, nil)}
	}
	return m
}

// Interval returns the current maximum sampling interval I.
func (m *Monitor) Interval() time.Duration { return m.I }

// Report returns the hang report, or nil if no hang was verified.
func (m *Monitor) Report() *Report { return m.report }

// Name identifies the monitor as a detect.Detector.
func (m *Monitor) Name() string { return "parastack" }

// History returns retained samples, oldest first (empty unless
// Config.KeepHistory). Once the ring buffer has wrapped, the result is
// a fresh linearized copy; before that it aliases the internal buffer.
func (m *Monitor) History() []Sample {
	if m.histStart == 0 {
		return m.history
	}
	out := make([]Sample, len(m.history))
	n := copy(out, m.history[m.histStart:])
	copy(out[n:], m.history[:m.histStart])
	return out
}

// Model exposes the Scrout model (read-only use intended).
func (m *Monitor) Model() *model.Model { return m.model }

// ActiveRanks returns the ranks of the currently monitored set.
func (m *Monitor) ActiveRanks() []int { return m.sets[m.activeSet].Ranks }

// TotalSamples reports how many Scrout samples the monitor has taken.
func (m *Monitor) TotalSamples() int { return m.totalSamples }

// SampleOnce executes one steady-state sampling round outside the
// simulation loop: trace the active monitor set, fold the Scrout value
// into the model, and record the sample. The monitor's run loop
// performs exactly these steps per wakeup; SampleOnce exposes them so
// benchmarks (internal/bench, cmd/psbench -bench-json) can measure the
// per-sample cost — which must stay allocation-free — directly.
func (m *Monitor) SampleOnce() float64 {
	scrout := m.sampleScrout()
	m.curModel().Add(scrout)
	m.totalSamples++
	m.record(scrout, false)
	return scrout
}

// Recorder returns the monitor's observability recorder.
func (m *Monitor) Recorder() obs.Recorder { return m.rec }

// Doublings reports how many times the sampling interval I was doubled
// (recorder-backed; formerly a struct field).
func (m *Monitor) Doublings() int { return int(m.rec.Counter(CtrDoublings)) }

// SlowdownsSeen reports how many transient slowdowns the filter caught
// (recorder-backed; formerly a struct field).
func (m *Monitor) SlowdownsSeen() int { return int(m.rec.Counter(CtrSlowdowns)) }

// Stop makes the monitor exit at its next wakeup (used when detaching).
func (m *Monitor) Stop() { m.stopped = true }

// Start spawns the monitor process on the world's engine. The monitor
// exits when the application completes, a hang is verified (after
// invoking OnHang or stopping the engine), or Stop is called.
func (m *Monitor) Start() {
	m.proc = m.w.Engine().SpawnNow("parastack-monitor", m.run)
}

func (m *Monitor) run(p *sim.Proc) {
	eng := m.w.Engine()
	rng := eng.Rand()
	for !m.stopped {
		// Randomized sampling step: rstep = rand(I) + I/2 ∈ [I/2, 3I/2].
		step := time.Duration(rng.Int63n(int64(m.I))) + m.I/2
		p.Sleep(step)
		if m.w.Done() || m.stopped {
			return
		}

		scrout := m.sampleScrout()
		md := m.curModel()
		md.Add(scrout)
		m.totalSamples++
		m.sinceRuns++

		// Interval adaptation: runs test every RunsBatch samples until
		// the sampling is statistically random.
		if !m.randomOK && !m.cfg.DisableAdaptation && m.sinceRuns >= m.cfg.RunsBatch {
			m.sinceRuns = 0
			res := stats.RunsTest(md.Recent(m.cfg.RunsBatch), m.cfg.RunsAlpha)
			if res.Random {
				m.randomOK = true
			} else {
				m.I *= 2
				m.rec.Count(CtrDoublings, 1)
				m.rec.Gauge(GaugeInterval, float64(m.I.Milliseconds()))
				if m.rec.Enabled() {
					m.rec.Event(time.Duration(eng.Now()), EvDoubling,
						obs.Dur("interval_us", m.I))
				}
				m.halveModels()
			}
		}

		fit, ok := md.Fit()
		if !ok {
			m.record(scrout, false)
			m.rotateSet()
			continue
		}
		m.rec.Gauge(GaugeQ, fit.Q)
		m.rec.Gauge(GaugeThreshold, fit.Threshold)
		if !m.modelWasReady {
			m.modelWasReady = true
			m.ModelReadyAt = time.Duration(eng.Now())
			if m.rec.Enabled() {
				m.rec.Event(m.ModelReadyAt, EvModelReady,
					obs.Int("n", int64(md.N())),
					obs.F64("threshold", fit.Threshold),
					obs.F64("q", fit.Q))
			}
		}

		suspicion := scrout <= fit.Threshold
		m.record(scrout, suspicion)
		if !suspicion {
			m.suspicions = 0
			m.rotateSet()
			continue
		}
		m.suspicions++
		m.rec.Count(CtrSuspicions, 1)
		k := stats.GeometricThreshold(fit.Q, m.cfg.Alpha)
		if m.rec.Enabled() {
			m.rec.Event(time.Duration(eng.Now()), EvSuspicion,
				obs.Int("streak", int64(m.suspicions)),
				obs.Int("k", int64(k)),
				obs.F64("q", fit.Q),
				obs.F64("threshold", fit.Threshold))
		}
		if m.suspicions < k {
			m.rotateSet()
			continue
		}

		// Candidate hang: apply the transient-slowdown filter.
		if !m.cfg.DisableSlowdownFilter && m.slowdownCheck(p) {
			m.rec.Count(CtrSlowdowns, 1)
			if m.rec.Enabled() {
				m.rec.Event(time.Duration(eng.Now()), EvSlowdown,
					obs.Int("streak", int64(m.suspicions)))
			}
			m.suspicions = 0
			m.rotateSet()
			continue
		}
		if m.w.Done() {
			return
		}

		// Verified hang: classify and identify faulty ranks. DetectedAt
		// is the instant of verification; the faulty-rank scans that
		// follow take additional virtual time and must not shift it.
		rep := &Report{
			DetectedAt: time.Duration(eng.Now()),
			Suspicions: m.suspicions,
			Q:          fit.Q,
			Threshold:  fit.Threshold,
		}
		rep.FaultyRanks = m.identifyFaulty(p)
		if len(rep.FaultyRanks) > 0 {
			rep.Type = HangComputation
		} else {
			rep.Type = HangCommunication
		}
		m.report = rep
		m.rec.Count(CtrVerifications, 1)
		if m.rec.Enabled() {
			m.rec.Event(rep.DetectedAt, EvVerify,
				obs.Str("type", rep.Type.String()),
				obs.Int("suspicions", int64(rep.Suspicions)),
				obs.F64("q", rep.Q),
				obs.F64("threshold", rep.Threshold),
				obs.Int("faulty", int64(len(rep.FaultyRanks))))
		}
		if m.cfg.OnHang != nil {
			m.cfg.OnHang(rep)
		} else {
			eng.Stop()
		}
		return
	}
}

// record counts and emits the sample, and appends to history when
// enabled. History is bounded by Config.MaxHistory (oldest evicted
// first), so long campaigns with KeepHistory cannot grow without limit;
// eviction overwrites the ring slot in place (O(1), no copy-shift).
func (m *Monitor) record(scrout float64, susp bool) {
	m.rec.Count(CtrSamples, 1)
	if m.rec.Enabled() {
		m.rec.Event(time.Duration(m.w.Engine().Now()), EvSample,
			obs.F64("scrout", scrout),
			obs.Bool("suspicion", susp),
			obs.Int("set", int64(m.activeSet)),
			obs.Int("n", int64(m.curModel().N())))
	}
	if m.cfg.KeepHistory {
		s := Sample{
			T:         time.Duration(m.w.Engine().Now()),
			Scrout:    scrout,
			Suspicion: susp,
			Set:       m.activeSet,
		}
		if len(m.history) < m.cfg.MaxHistory {
			m.history = append(m.history, s)
		} else {
			m.history[m.histStart] = s
			m.histStart++
			if m.histStart == len(m.history) {
				m.histStart = 0
			}
		}
	}
}

// rotateSet advances the observation counter and alternates between the
// two disjoint monitor sets every SwitchEvery observations.
func (m *Monitor) rotateSet() {
	if len(m.sets) < 2 {
		return
	}
	m.sinceSwitch++
	if m.sinceSwitch >= m.cfg.SwitchEvery {
		m.sinceSwitch = 0
		from := m.activeSet
		m.activeSet = (m.activeSet + 1) % len(m.sets)
		m.rec.Count(CtrRotations, 1)
		if m.rec.Enabled() {
			m.rec.Event(time.Duration(m.w.Engine().Now()), EvRotation,
				obs.Int("from", int64(from)),
				obs.Int("to", int64(m.activeSet)))
		}
	}
}

// trace takes one stack trace of a rank, charging the ptrace-style cost
// to processes that are executing application code (tracing a process
// blocked in MPI overlaps with its idle time and is free, matching the
// paper's lightweight-design argument).
func (m *Monitor) trace(rankID int) stack.Trace {
	m.rec.Count(CtrTraces, 1)
	r := m.w.Rank(rankID)
	r.Proc().ChargePenalty(m.cfg.TraceCost)
	return r.Observe()
}

// sampleScrout computes the fraction of the active set's ranks that are
// OUT_MPI right now.
func (m *Monitor) sampleScrout() float64 {
	ranks := m.sets[m.activeSet].Ranks
	if len(ranks) == 0 {
		return 0
	}
	out := 0
	for _, id := range ranks {
		if m.trace(id).State == stack.OutMPI {
			out++
		}
	}
	return float64(out) / float64(len(ranks))
}

// slowdownCheck distinguishes a transient slowdown from a hang using
// two stack traces per process (paper §3.3): if any process passes
// through different MPI functions, or steps in/out of non-polling MPI
// functions, the application is slow but alive.
func (m *Monitor) slowdownCheck(p *sim.Proc) bool {
	gap := m.cfg.SlowdownGap
	if gap == 0 {
		// The gap must comfortably exceed both a slowed process's
		// longest stretch between MPI calls and a healthy long
		// collective (an FT-style transpose), so that anything alive
		// demonstrably moves between the two traces. It scales with I
		// but is clamped to [4s, 8s].
		gap = 2 * m.I
		if gap < 4*time.Second {
			gap = 4 * time.Second
		}
		if gap > 8*time.Second {
			gap = 8 * time.Second
		}
	}
	n := m.w.Size()
	if cap(m.traceScratch) < n {
		m.traceScratch = make([]stack.Trace, n)
	}
	first := m.traceScratch[:n]
	for i := 0; i < n; i++ {
		first[i] = m.trace(i)
	}
	p.Sleep(gap)
	if m.w.Done() {
		return true // completed while we checked: clearly not hung
	}
	for i := 0; i < n; i++ {
		if stack.CompareTraces(first[i], m.trace(i)) == stack.SlowProgress {
			return true
		}
	}
	return false
}

// identifyFaulty scans every rank FaultScans times, FaultScanGap apart,
// and returns the ranks observed OUT_MPI in every scan — the paper's §4
// persistence rule that excludes busy-wait flickers.
func (m *Monitor) identifyFaulty(p *sim.Proc) []int {
	n := m.w.Size()
	persistent := make([]bool, n)
	for i := range persistent {
		persistent[i] = true
	}
	for s := 0; s < m.cfg.FaultScans; s++ {
		if s > 0 {
			p.Sleep(m.cfg.FaultScanGap)
		}
		for i := 0; i < n; i++ {
			if !persistent[i] {
				continue
			}
			if m.trace(i).State != stack.OutMPI {
				persistent[i] = false
			}
		}
	}
	var out []int
	for i, ok := range persistent {
		if ok {
			out = append(out, i)
		}
	}
	return out
}
