package core

import (
	"sort"
	"time"

	"parastack/internal/model"
	"parastack/internal/mpi"
	"parastack/internal/obs"
	"parastack/internal/topology"
)

// Snapshot is a restartable checkpoint of everything a monitor has
// learned: the adapted sampling interval, the per-phase Scrout samples
// the models were fit from, the monitor sets (with any quarantine-era
// replacements), and the rotation position. It deliberately excludes
// the consecutive-suspicion streak: a restored monitor must re-earn
// statistical significance before verifying a hang, so a crash can
// delay a verdict but never manufacture one.
type Snapshot struct {
	// At is the virtual time the snapshot was taken.
	At time.Duration

	I            time.Duration
	RandomOK     bool
	TotalSamples int
	Epoch        uint64

	// CurPhase and Phases carry the §6 multi-phase state: Phases maps
	// phase id → that phase's retained Scrout samples (oldest first).
	// Single-phase monitors checkpoint as {0: samples}.
	CurPhase int
	Phases   map[int][]float64

	Sets        []topology.MonitorSet
	ActiveSet   int
	SinceSwitch int

	// Quarantined lists the ranks given up on as unreachable.
	Quarantined []int

	ModelReadyAt  time.Duration
	ModelWasReady bool
}

// Snapshot checkpoints the monitor's learned state. All slices and
// maps are deep copies: the live monitor can keep mutating (and then
// crash) without corrupting the checkpoint.
func (m *Monitor) Snapshot() Snapshot {
	s := Snapshot{
		At:            time.Duration(m.w.Engine().Now()),
		I:             m.I,
		RandomOK:      m.randomOK,
		TotalSamples:  m.totalSamples,
		Epoch:         m.epoch,
		CurPhase:      m.curPhase,
		ActiveSet:     m.activeSet,
		SinceSwitch:   m.sinceSwitch,
		ModelReadyAt:  m.ModelReadyAt,
		ModelWasReady: m.modelWasReady,
		Phases:        map[int][]float64{},
	}
	if m.models == nil {
		s.Phases[0] = append([]float64(nil), m.model.Samples()...)
	} else {
		for id, md := range m.models {
			s.Phases[id] = append([]float64(nil), md.Samples()...)
		}
	}
	s.Sets = make([]topology.MonitorSet, len(m.sets))
	for i, set := range m.sets {
		s.Sets[i] = topology.MonitorSet{
			Ranks: append([]int(nil), set.Ranks...),
			Nodes: append([]int(nil), set.Nodes...),
		}
	}
	for r := range m.quarantined {
		s.Quarantined = append(s.Quarantined, r)
	}
	sort.Ints(s.Quarantined)
	return s
}

// RestoreMonitor builds a monitor that resumes from snap — the failover
// path after a monitor crash. The learned model samples, adapted
// interval, monitor sets, rotation position, and quarantine list all
// survive; the suspicion streak does not (see Snapshot). The caller
// Starts the result like a fresh monitor. Passing the same Config
// (and in particular the same Recorder) the crashed monitor ran with
// makes the degradation counters accumulate across the failover.
func RestoreMonitor(w *mpi.World, cluster *topology.Cluster, cfg Config, snap Snapshot) *Monitor {
	m := New(w, cluster, cfg)
	m.I = snap.I
	m.rec.Gauge(GaugeInterval, float64(m.I.Milliseconds()))
	m.randomOK = snap.RandomOK
	m.totalSamples = snap.TotalSamples
	m.epoch = snap.Epoch
	m.sinceSwitch = snap.SinceSwitch
	m.ModelReadyAt = snap.ModelReadyAt
	m.modelWasReady = snap.ModelWasReady

	rebuild := func(samples []float64) *model.Model {
		md := model.New(m.cfg.MaxHistory)
		for _, v := range samples {
			md.Add(v)
		}
		return md
	}
	if len(snap.Phases) > 0 {
		m.model = rebuild(snap.Phases[0])
		if len(snap.Phases) > 1 || snap.CurPhase != 0 {
			m.models = map[int]*model.Model{0: m.model}
			for id, samples := range snap.Phases {
				if id != 0 {
					m.models[id] = rebuild(samples)
				}
			}
			if _, ok := m.models[snap.CurPhase]; !ok {
				m.models[snap.CurPhase] = model.New(m.cfg.MaxHistory)
			}
			m.curPhase = snap.CurPhase
		}
	}
	if len(snap.Sets) > 0 {
		m.sets = make([]topology.MonitorSet, len(snap.Sets))
		for i, set := range snap.Sets {
			m.sets[i] = topology.MonitorSet{
				Ranks: append([]int(nil), set.Ranks...),
				Nodes: append([]int(nil), set.Nodes...),
			}
		}
	}
	m.activeSet = snap.ActiveSet
	if m.activeSet >= len(m.sets) {
		m.activeSet = 0
	}
	if len(snap.Quarantined) > 0 {
		if m.quarantined == nil {
			m.quarantined = make(map[int]bool, len(snap.Quarantined))
		}
		for _, r := range snap.Quarantined {
			m.quarantined[r] = true
		}
	}
	m.restoredAt = time.Duration(w.Engine().Now())
	m.rec.Count(CtrFailovers, 1)
	if m.rec.Enabled() {
		m.rec.Event(m.restoredAt, EvFailover,
			obs.Int("samples", int64(m.totalSamples)),
			obs.Int("sets", int64(len(m.sets))),
			obs.Dur("down_us", m.restoredAt-snap.At))
	}
	return m
}
