package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"parastack/internal/fault"
	"parastack/internal/mpi"
	"parastack/internal/obs"
	"parastack/internal/sim"
	"parastack/internal/topology"
)

// perturbScenario is the transient-slowdown setup of
// TestTransientSlowdownFiltered: rank 1 computes 25x slower during a
// 20-second window, which floods the model with suspicions while the
// application is demonstrably alive.
func perturbScenario(cfg Config) *sim.Engine {
	eng := sim.NewEngine(6)
	w := mpi.NewWorld(eng, 8, mpi.Latency{})
	slowFrom, slowTo := 60*time.Second, 80*time.Second
	w.Perturb = func(r *mpi.Rank, d time.Duration) time.Duration {
		now := time.Duration(r.Now())
		if r.ID() == 1 && now >= slowFrom && now < slowTo {
			return 25 * d
		}
		return d
	}
	m := New(w, topology.New(2, 4, 6), cfg)
	app := testApp{iters: 3000, baseCompute: 10 * time.Millisecond, skew: 40 * time.Millisecond, collBytes: 1 << 14}
	w.Launch(app.body)
	m.Start()
	return eng
}

// Each ablation switch must silence exactly the event stream of the
// feature it disables: the event trace is the observable difference
// between the paper's full system and its ablated variants.
func TestAblationSwitchesChangeEventStream(t *testing.T) {
	cases := []struct {
		name string
		kind string
		run  func(ablated bool) *obs.MemSink
	}{
		{
			// Interval adaptation: a 10ms I against a ~45ms cycle is
			// time-correlated, so the runs test must double I — unless
			// DisableAdaptation pins it.
			name: "adaptation",
			kind: EvDoubling,
			run: func(ablated bool) *obs.MemSink {
				sink := obs.NewMemSink()
				cfg := Config{
					C: 4, InitialInterval: 10 * time.Millisecond,
					DisableAdaptation: ablated,
					Recorder:          obs.New(sink),
				}
				app := testApp{iters: 3000, baseCompute: 40 * time.Millisecond, skew: 10 * time.Millisecond, collBytes: 120 << 20}
				eng, _, _ := launch(7, 8, 4, app, cfg)
				eng.Run(60 * time.Second)
				return sink
			},
		},
		{
			// Set rotation: a healthy run rotates every SwitchEvery
			// observations — unless DisableSetSwitch collapses the monitor
			// to a single set.
			name: "setswitch",
			kind: EvRotation,
			run: func(ablated bool) *obs.MemSink {
				sink := obs.NewMemSink()
				cfg := Config{
					C: 4, SwitchEvery: 10,
					DisableSetSwitch: ablated,
					Recorder:         obs.New(sink),
				}
				app := testApp{iters: 600, baseCompute: 10 * time.Millisecond, skew: 60 * time.Millisecond, collBytes: 1 << 14}
				eng, _, _ := launch(1, 8, 4, app, cfg)
				eng.Run(10 * time.Minute)
				return sink
			},
		},
		{
			// Slowdown filter: the perturb scenario drives the suspicion
			// streak to the verification threshold; the filter catches it
			// and emits slowdown events — unless DisableSlowdownFilter
			// skips the check entirely.
			name: "slowdownfilter",
			kind: EvSlowdown,
			run: func(ablated bool) *obs.MemSink {
				sink := obs.NewMemSink()
				cfg := Config{
					C:                     4,
					DisableSlowdownFilter: ablated,
					Recorder:              obs.New(sink),
				}
				perturbScenario(cfg).Run(time.Hour)
				return sink
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			on := tc.run(false)
			if n := on.CountKind(tc.kind); n == 0 {
				t.Errorf("feature enabled: no %q events (kinds: %v)", tc.kind, on.Kinds())
			}
			off := tc.run(true)
			if n := off.CountKind(tc.kind); n != 0 {
				t.Errorf("feature ablated: %d %q events, want 0", n, tc.kind)
			}
		})
	}
}

// A faulty run's -trace output is line-by-line parseable JSON and
// contains the kinds the tooling relies on: sample, doubling, rotation,
// suspicion, verification. The counters must agree with the stream.
func TestFaultyRunTraceIsParseableJSONL(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	inj := fault.NewInjector(fault.Plan{Kind: fault.ComputationHang, Rank: 1, Iteration: 700})
	app := testApp{iters: 3000, baseCompute: 40 * time.Millisecond, skew: 10 * time.Millisecond, collBytes: 120 << 20, inj: inj}
	eng, _, m := launch(7, 8, 4, app, Config{
		C: 4, InitialInterval: 10 * time.Millisecond,
		Recorder: obs.New(sink),
	})
	eng.Run(time.Hour)
	if m.Report() == nil {
		t.Fatal("hang not detected; trace incomplete")
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	kinds := map[string]int{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e map[string]any
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("unparseable trace line: %v\n%s", err, sc.Text())
		}
		if _, ok := e["t_us"].(float64); !ok {
			t.Fatalf("trace line missing t_us: %s", sc.Text())
		}
		kind, _ := e["kind"].(string)
		if kind == "" {
			t.Fatalf("trace line missing kind: %s", sc.Text())
		}
		kinds[kind]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for _, want := range []string{EvSample, EvDoubling, EvRotation, EvSuspicion, EvVerify} {
		if kinds[want] == 0 {
			t.Errorf("trace has no %q events (kinds: %v)", want, kinds)
		}
	}

	// Counters and event stream describe the same run.
	rec := m.Recorder()
	if got := int(rec.Counter(CtrSamples)); got != kinds[EvSample] {
		t.Errorf("%s = %d, but %d sample events", CtrSamples, got, kinds[EvSample])
	}
	if got := m.Doublings(); got != kinds[EvDoubling] {
		t.Errorf("Doublings() = %d, but %d doubling events", got, kinds[EvDoubling])
	}
	if got := int(rec.Counter(CtrRotations)); got != kinds[EvRotation] {
		t.Errorf("%s = %d, but %d rotation events", CtrRotations, got, kinds[EvRotation])
	}
	if got := int(rec.Counter(CtrVerifications)); got != 1 || kinds[EvVerify] != 1 {
		t.Errorf("%s = %d, %d verification events; want 1 and 1", CtrVerifications, got, kinds[EvVerify])
	}
	if got := int(rec.Counter(CtrSamples)); got != m.TotalSamples() {
		t.Errorf("%s = %d, TotalSamples = %d", CtrSamples, got, m.TotalSamples())
	}
}

// KeepHistory retains at most MaxHistory samples, evicting oldest first.
func TestHistoryBoundedByMaxHistory(t *testing.T) {
	const cap = 16
	app := testApp{iters: 400, baseCompute: 10 * time.Millisecond, skew: 40 * time.Millisecond, collBytes: 1 << 12}
	eng, _, m := launch(10, 8, 4, app, Config{C: 4, KeepHistory: true, MaxHistory: cap})
	eng.Run(time.Hour)
	if m.TotalSamples() <= cap {
		t.Fatalf("only %d samples; scenario too short to exercise the bound", m.TotalSamples())
	}
	h := m.History()
	if len(h) != cap {
		t.Fatalf("history length = %d, want %d", len(h), cap)
	}
	for i := 1; i < len(h); i++ {
		if h[i].T <= h[i-1].T {
			t.Fatal("history timestamps not increasing after eviction")
		}
	}
}

// Without a trace sink the monitor's sample hot path must not allocate:
// counters are map ops on constant keys, and the event branch is guarded.
func TestRecordZeroAllocWithoutSink(t *testing.T) {
	eng := sim.NewEngine(1)
	w := mpi.NewWorld(eng, 8, mpi.Latency{})
	m := New(w, topology.New(2, 4, 1), Config{C: 4})
	m.record(0.5, false) // warm the counter map
	if a := testing.AllocsPerRun(200, func() { m.record(0.5, false) }); a != 0 {
		t.Errorf("record: %.1f allocs/op with events disabled, want 0", a)
	}
	_ = eng
}
