package core

import (
	"time"

	"parastack/internal/mpi"
	"parastack/internal/sim"
	"parastack/internal/stack"
)

// SoutPoint is one full-population Sout observation.
type SoutPoint struct {
	T    time.Duration
	Sout float64
}

// ProbeSout attaches a zero-cost observer that samples the exact
// OUT_MPI significance Sout (over all ranks) every interval until the
// application completes or stop is reached (stop <= 0 means no limit).
// This reproduces the measurement behind the paper's Figures 2 and 3
// (1 ms probing of healthy and faulty runs). The returned slice is
// filled in as the simulation runs; read it after the engine stops.
func ProbeSout(w *mpi.World, interval time.Duration, stop time.Duration) *[]SoutPoint {
	out := new([]SoutPoint)
	eng := w.Engine()
	eng.SpawnNow("sout-probe", func(p *sim.Proc) {
		for {
			p.Sleep(interval)
			if w.Done() {
				return
			}
			now := time.Duration(eng.Now())
			if stop > 0 && now > stop {
				return
			}
			outCount := 0
			for _, r := range w.Ranks() {
				if r.Stack().State() == stack.OutMPI {
					outCount++
				}
			}
			*out = append(*out, SoutPoint{
				T:    now,
				Sout: float64(outCount) / float64(w.Size()),
			})
		}
	})
	return out
}
