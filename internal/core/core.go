package core
