package core

// Monitor hot-path performance suite: the steady-state sampling round
// (trace the active set, update the model, record the sample) must be
// allocation-free, with or without KeepHistory. The same scenario backs
// the monitor entries of BENCH_engine.json via internal/bench.

import (
	"testing"

	"parastack/internal/mpi"
	"parastack/internal/sim"
	"parastack/internal/topology"
)

var benchScrout float64

// newSteadyStateMonitor builds a parked 256-rank world with a monitor
// whose model and history are pre-filled to capacity, so measurements
// start in steady state (ring wrapped, model at MaxHistory).
func newSteadyStateMonitor(keepHistory bool) *Monitor {
	eng := sim.NewEngine(1)
	w := mpi.NewWorld(eng, 256, mpi.Latency{})
	w.Launch(func(r *mpi.Rank) { r.Proc().Suspend() })
	eng.RunAll() // park every rank; stacks read as "main" (OUT_MPI)
	cluster := topology.New(8, 32, 1)
	m := New(w, cluster, Config{KeepHistory: keepHistory})
	for i := 0; i < m.cfg.MaxHistory+1; i++ {
		m.SampleOnce()
	}
	return m
}

// TestSamplingRoundZeroAlloc pins the headline hot-path property: one
// steady-state sampling round performs zero allocations.
func TestSamplingRoundZeroAlloc(t *testing.T) {
	for _, keep := range []bool{false, true} {
		m := newSteadyStateMonitor(keep)
		avg := testing.AllocsPerRun(200, func() { benchScrout = m.SampleOnce() })
		if avg != 0 {
			t.Errorf("KeepHistory=%v: sampling round allocates %v objects/op, want 0", keep, avg)
		}
	}
}

// TestModelFitZeroAllocSteadyState pins the scratch-ECDF reuse: once
// warm, refitting the model on every sample allocates nothing.
func TestModelFitZeroAllocSteadyState(t *testing.T) {
	m := newSteadyStateMonitor(false)
	md := m.Model()
	for i := 0; i < 2*1024; i++ { // replace the degenerate all-1.0 history
		md.Add(0.5 + 0.05*float64(i%11))
	}
	if _, ok := md.Fit(); !ok {
		t.Fatal("varied distribution did not fit")
	}
	avg := testing.AllocsPerRun(100, func() { md.Fit() })
	if avg != 0 {
		t.Errorf("model fit allocates %v objects/op in steady state, want 0", avg)
	}
}

func BenchmarkSamplingRound(b *testing.B) {
	m := newSteadyStateMonitor(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchScrout = m.SampleOnce()
	}
}

func BenchmarkSamplingRoundKeepHistory(b *testing.B) {
	m := newSteadyStateMonitor(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchScrout = m.SampleOnce()
	}
}
