package core

import (
	"time"

	"parastack/internal/model"
	"parastack/internal/obs"
)

// Phase support implements the paper's §6 "applications with multiple
// phases": an instrumented application calls NotifyPhase when it moves
// between behavioral phases (e.g. setup → solve → IO), and the monitor
// maintains one Scrout model per phase, sampling each phase into its
// own distribution and judging suspicions against the model of the
// phase that is current at observation time.
//
// Un-instrumented applications never call NotifyPhase and run entirely
// in phase 0 — the paper's default single-model behavior.

// NotifyPhase switches the monitor to the model for phase id, creating
// it on first use. Safe to call from application rank bodies (the
// simulation is single-threaded); switching phases resets the
// consecutive-suspicion streak, since observations from different
// regimes must not chain into one verdict.
func (m *Monitor) NotifyPhase(id int) {
	if id == m.curPhase {
		return
	}
	m.curPhase = id
	m.suspicions = 0
	m.rec.Count(CtrPhaseSwitches, 1)
	if m.rec.Enabled() {
		m.rec.Event(time.Duration(m.w.Engine().Now()), EvPhase, obs.Int("phase", int64(id)))
	}
	if m.models == nil {
		m.models = map[int]*model.Model{0: m.model}
	}
	if _, ok := m.models[id]; !ok {
		m.models[id] = model.New(m.cfg.MaxHistory)
	}
}

// Phase returns the current phase id (0 unless NotifyPhase was used).
func (m *Monitor) Phase() int { return m.curPhase }

// PhaseModel returns the model for a given phase (nil if that phase was
// never entered). Phase 0 always exists.
func (m *Monitor) PhaseModel(id int) *model.Model {
	if id == 0 && m.models == nil {
		return m.model
	}
	return m.models[id]
}

// curModel returns the model observations should feed right now.
func (m *Monitor) curModel() *model.Model {
	if m.models == nil {
		return m.model
	}
	return m.models[m.curPhase]
}

// halveModels applies the interval-doubling history cut to every phase
// model (all were sampled at the old interval).
func (m *Monitor) halveModels() {
	if m.models == nil {
		m.model.Halve()
		return
	}
	for _, md := range m.models {
		md.Halve()
	}
}
