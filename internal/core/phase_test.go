package core

import (
	"testing"
	"time"

	"parastack/internal/fault"
	"parastack/internal/mpi"
	"parastack/internal/sim"
	"parastack/internal/topology"
)

// twoPhaseApp alternates between a compute-dominant phase (high Scrout)
// and a communication-dominant phase (long collectives, Scrout ≈ 0),
// notifying the monitor at each transition.
func twoPhaseApp(m *Monitor, inj *fault.Injector, cycles int) func(*mpi.Rank) {
	return func(r *mpi.Rank) {
		eng := r.World().Engine()
		for c := 0; c < cycles; c++ {
			if r.ID() == 0 {
				m.NotifyPhase(1)
			}
			for it := 0; it < 12; it++ { // compute phase ≈ 12×~80ms
				r.Call("compute_phase", func() {
					r.Compute(60*time.Millisecond +
						time.Duration(eng.Rand().Int63n(int64(40*time.Millisecond))))
					inj.Check(r, c*100+it)
				})
				r.Allreduce(8)
			}
			if r.ID() == 0 {
				m.NotifyPhase(2)
			}
			for it := 0; it < 2; it++ { // IO/transpose phase: ~1.4s inside MPI
				r.Call("pack", func() { r.Compute(30 * time.Millisecond) })
				r.Alltoall(512 << 20) // ≈1.4s on the default fabric
			}
		}
	}
}

func TestPhaseModelsSeparate(t *testing.T) {
	eng := sim.NewEngine(21)
	w := mpi.NewWorld(eng, 16, mpi.Latency{})
	cl := topology.New(4, 4, 21)
	m := New(w, cl, Config{C: 6})
	m.Start()
	w.Launch(twoPhaseApp(m, nil, 30))
	eng.Run(2 * time.Hour)
	if !w.Done() {
		t.Fatal("two-phase app did not complete")
	}
	if m.Report() != nil {
		t.Fatalf("false positive on phased app: %+v", m.Report())
	}
	m1, m2 := m.PhaseModel(1), m.PhaseModel(2)
	if m1 == nil || m2 == nil {
		t.Fatal("phase models missing")
	}
	if m1.N() < 11 {
		t.Fatalf("compute-phase model has only %d samples", m1.N())
	}
	// The communication phase should have a distinctly lower mean
	// Scrout than the compute phase.
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if m2.N() > 4 && mean(m1.Samples()) < mean(m2.Samples())+0.2 {
		t.Fatalf("phase separation failed: compute mean %.2f, comm mean %.2f",
			mean(m1.Samples()), mean(m2.Samples()))
	}
}

func TestPhaseAwareDetectionStillWorks(t *testing.T) {
	eng := sim.NewEngine(22)
	w := mpi.NewWorld(eng, 16, mpi.Latency{})
	cl := topology.New(4, 4, 22)
	m := New(w, cl, Config{C: 6})
	m.Start()
	// Hang in the compute phase of cycle 25 (late enough for the model).
	inj := fault.NewInjector(fault.Plan{Kind: fault.ComputationHang, Rank: 9, Iteration: 25*100 + 5})
	w.Launch(twoPhaseApp(m, inj, 60))
	eng.Run(2 * time.Hour)
	rep := m.Report()
	if rep == nil {
		t.Fatal("hang in phased app not detected")
	}
	if rep.Type != HangComputation || len(rep.FaultyRanks) != 1 || rep.FaultyRanks[0] != 9 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestNotifyPhaseResetsStreakAndIsIdempotent(t *testing.T) {
	eng := sim.NewEngine(23)
	w := mpi.NewWorld(eng, 8, mpi.Latency{})
	cl := topology.New(2, 4, 23)
	m := New(w, cl, Config{C: 4})
	m.suspicions = 7
	m.NotifyPhase(3)
	if m.suspicions != 0 {
		t.Fatal("phase switch must reset the suspicion streak")
	}
	if m.Phase() != 3 {
		t.Fatalf("phase = %d", m.Phase())
	}
	md := m.PhaseModel(3)
	m.NotifyPhase(3) // no-op
	if m.PhaseModel(3) != md {
		t.Fatal("re-notifying the same phase must not rebuild the model")
	}
	if m.PhaseModel(0) == nil {
		t.Fatal("phase 0 model must always exist")
	}
}

func TestSinglePhaseUnchanged(t *testing.T) {
	eng := sim.NewEngine(24)
	w := mpi.NewWorld(eng, 8, mpi.Latency{})
	cl := topology.New(2, 4, 24)
	m := New(w, cl, Config{C: 4})
	if m.Phase() != 0 {
		t.Fatal("default phase must be 0")
	}
	if m.curModel() != m.model {
		t.Fatal("single-phase monitor must use the primary model")
	}
}

func TestMultiSetRotation(t *testing.T) {
	// Three disjoint sets rotate round-robin every SwitchEvery samples.
	eng := sim.NewEngine(31)
	w := mpi.NewWorld(eng, 64, mpi.Latency{})
	cl := topology.New(8, 8, 31)
	m := New(w, cl, Config{C: 8, NumSets: 3, KeepHistory: true, SwitchEvery: 5})
	if len(m.sets) != 3 {
		t.Fatalf("sets = %d, want 3", len(m.sets))
	}
	seen := map[int]bool{}
	for i, s := range m.sets {
		for _, r := range s.Ranks {
			if seen[r] {
				t.Fatalf("rank %d in more than one set", r)
			}
			seen[r] = true
		}
		if len(s.Ranks) != 8 {
			t.Fatalf("set %d has %d ranks", i, len(s.Ranks))
		}
	}
	m.Start()
	w.Launch(func(r *mpi.Rank) {
		for it := 0; it < 400; it++ {
			r.Call("step", func() {
				r.Compute(40*time.Millisecond +
					time.Duration(eng.Rand().Int63n(int64(40*time.Millisecond))))
			})
			r.Allreduce(8)
		}
	})
	eng.Run(time.Hour)
	setsUsed := map[int]bool{}
	for _, s := range m.History() {
		setsUsed[s.Set] = true
	}
	for i := 0; i < 3; i++ {
		if !setsUsed[i] {
			t.Fatalf("set %d never sampled (used: %v)", i, setsUsed)
		}
	}
	if m.Report() != nil {
		t.Fatalf("false positive: %+v", m.Report())
	}
}

func TestMultiSetDetectsTwoFaultyRanks(t *testing.T) {
	// Two ranks hang simultaneously. With three disjoint sets of 8 over
	// 64 ranks, at least one set avoids both faulty ranks, so a zero
	// Scrout is eventually observable regardless of the threshold.
	eng := sim.NewEngine(32)
	w := mpi.NewWorld(eng, 64, mpi.Latency{})
	cl := topology.New(8, 8, 32)
	m := New(w, cl, Config{C: 8, NumSets: 3})
	m.Start()
	w.Launch(func(r *mpi.Rank) {
		for it := 0; it < 3000; it++ {
			r.Call("step", func() {
				r.Compute(40*time.Millisecond +
					time.Duration(eng.Rand().Int63n(int64(40*time.Millisecond))))
				if it == 700 && (r.ID() == 5 || r.ID() == 41) {
					r.Stack().Push("stuck_kernel")
					r.HangForever()
				}
			})
			r.Allreduce(8)
		}
	})
	eng.Run(2 * time.Hour)
	rep := m.Report()
	if rep == nil {
		t.Fatal("double fault not detected")
	}
	if len(rep.FaultyRanks) != 2 || rep.FaultyRanks[0] != 5 || rep.FaultyRanks[1] != 41 {
		t.Fatalf("faulty = %v, want [5 41]", rep.FaultyRanks)
	}
}
