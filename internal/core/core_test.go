package core

import (
	"testing"
	"time"

	"parastack/internal/fault"
	"parastack/internal/mpi"
	"parastack/internal/sim"
	"parastack/internal/topology"
)

// testApp is a configurable iterative solver: per-iteration computation
// skewed across ranks followed by an allreduce, the canonical shape of
// the paper's benchmarks.
type testApp struct {
	iters        int
	baseCompute  time.Duration
	skew         time.Duration // uniform extra compute per rank per iter
	collBytes    int
	inj          *fault.Injector
	busyWaitRing bool // use Irecv+Test busy-wait ring instead of allreduce
}

func (a testApp) body(r *mpi.Rank) {
	eng := r.World().Engine()
	size := r.World().Size()
	for it := 0; it < a.iters; it++ {
		r.Call("solver_step", func() {
			d := a.baseCompute
			if a.skew > 0 {
				d += time.Duration(eng.Rand().Int63n(int64(a.skew)))
			}
			r.Compute(d)
			a.inj.Check(r, it)
		})
		if a.busyWaitRing {
			// Non-blocking ring exchange completed by a busy-wait loop.
			next, prev := (r.ID()+1)%size, (r.ID()+size-1)%size
			q := r.Irecv(prev, it)
			r.Send(next, it, a.collBytes)
			r.Call("ring_poll", func() {
				for !r.Test(q) {
					r.Spin(5 * time.Microsecond)
				}
			})
			r.Allreduce(8)
		} else {
			r.Allreduce(a.collBytes)
		}
	}
}

// launch builds engine, world, cluster and monitor for a test app.
func launch(seed int64, size, ppn int, app testApp, cfg Config) (*sim.Engine, *mpi.World, *Monitor) {
	eng := sim.NewEngine(seed)
	w := mpi.NewWorld(eng, size, mpi.Latency{})
	cl := topology.New(size/ppn, ppn, seed)
	m := New(w, cl, cfg)
	w.Launch(app.body)
	m.Start()
	return eng, w, m
}

func TestHealthyRunNoReport(t *testing.T) {
	app := testApp{iters: 600, baseCompute: 10 * time.Millisecond, skew: 60 * time.Millisecond, collBytes: 1 << 14}
	eng, w, m := launch(1, 8, 4, app, Config{C: 4})
	eng.Run(10 * time.Minute)
	if !w.Done() {
		t.Fatal("healthy app did not complete")
	}
	if m.Report() != nil {
		t.Fatalf("false positive: %+v", m.Report())
	}
	if m.Model().N() < 11 {
		t.Fatalf("model only collected %d samples", m.Model().N())
	}
}

func TestComputationHangDetected(t *testing.T) {
	inj := fault.NewInjector(fault.Plan{Kind: fault.ComputationHang, Rank: 5, Iteration: 300})
	app := testApp{iters: 2000, baseCompute: 10 * time.Millisecond, skew: 60 * time.Millisecond, collBytes: 1 << 14, inj: inj}
	eng, w, m := launch(2, 8, 4, app, Config{C: 4})
	eng.Run(30 * time.Minute)
	if w.Done() {
		t.Fatal("hung app completed")
	}
	rep := m.Report()
	if rep == nil {
		t.Fatal("hang not detected")
	}
	if rep.Type != HangComputation {
		t.Fatalf("type = %v, want computation-error", rep.Type)
	}
	if len(rep.FaultyRanks) != 1 || rep.FaultyRanks[0] != 5 {
		t.Fatalf("faulty ranks = %v, want [5]", rep.FaultyRanks)
	}
	trig, at := inj.Triggered()
	if !trig {
		t.Fatal("fault never triggered")
	}
	delay := rep.DetectedAt - at
	if delay <= 0 {
		t.Fatalf("detected at %v before fault at %v", rep.DetectedAt, at)
	}
	if delay > time.Minute {
		t.Fatalf("response delay %v exceeds a minute", delay)
	}
}

func TestCommunicationDeadlockDetected(t *testing.T) {
	inj := fault.NewInjector(fault.Plan{Kind: fault.CommunicationDeadlock, Rank: 3, Iteration: 250})
	app := testApp{iters: 2000, baseCompute: 10 * time.Millisecond, skew: 60 * time.Millisecond, collBytes: 1 << 14, inj: inj}
	eng, _, m := launch(3, 8, 4, app, Config{C: 4})
	eng.Run(30 * time.Minute)
	rep := m.Report()
	if rep == nil {
		t.Fatal("deadlock not detected")
	}
	if rep.Type != HangCommunication {
		t.Fatalf("type = %v, want communication-error", rep.Type)
	}
	if len(rep.FaultyRanks) != 0 {
		t.Fatalf("faulty ranks = %v, want none", rep.FaultyRanks)
	}
}

func TestBusyWaitWorkloadHangIdentification(t *testing.T) {
	// HPL-style: pollers flip through MPI_Test during the hang and must
	// not be reported as faulty.
	inj := fault.NewInjector(fault.Plan{Kind: fault.ComputationHang, Rank: 2, Iteration: 200})
	app := testApp{
		iters: 2000, baseCompute: 10 * time.Millisecond, skew: 40 * time.Millisecond,
		collBytes: 1 << 12, inj: inj, busyWaitRing: true,
	}
	eng, _, m := launch(4, 8, 4, app, Config{C: 4})
	eng.Run(30 * time.Minute)
	rep := m.Report()
	if rep == nil {
		t.Fatal("hang not detected in busy-wait workload")
	}
	if rep.Type != HangComputation {
		t.Fatalf("type = %v", rep.Type)
	}
	for _, f := range rep.FaultyRanks {
		if f != 2 {
			t.Fatalf("busy-wait poller %d misreported as faulty (got %v)", f, rep.FaultyRanks)
		}
	}
	if len(rep.FaultyRanks) != 1 {
		t.Fatalf("faulty ranks = %v, want [2]", rep.FaultyRanks)
	}
}

func TestNodeFreezeReportsNodeRanks(t *testing.T) {
	inj := fault.NewInjector(fault.Plan{Kind: fault.NodeFreeze, Rank: 5, Iteration: 200, PPN: 4})
	app := testApp{iters: 2000, baseCompute: 10 * time.Millisecond, skew: 60 * time.Millisecond, collBytes: 1 << 14, inj: inj}
	// Seed chosen for reliable detection: freezing half the job keeps
	// Sout moderate, so a minority of seeds sit below the detection
	// margin (true of the pre-sharding engine as well).
	eng, _, m := launch(6, 8, 4, app, Config{C: 4})
	eng.Run(30 * time.Minute)
	rep := m.Report()
	if rep == nil {
		t.Fatal("node freeze not detected")
	}
	want := map[int]bool{4: true, 5: true, 6: true, 7: true}
	if len(rep.FaultyRanks) != 4 {
		t.Fatalf("faulty = %v, want ranks 4-7", rep.FaultyRanks)
	}
	for _, f := range rep.FaultyRanks {
		if !want[f] {
			t.Fatalf("faulty = %v, want ranks 4-7", rep.FaultyRanks)
		}
	}
}

func TestTransientSlowdownFiltered(t *testing.T) {
	// A 20s window during which rank 1's computation runs 25x slower:
	// the model will see persistent low Scrout, but the slowdown filter
	// must catch the slow progress and not report a hang.
	eng := sim.NewEngine(6)
	w := mpi.NewWorld(eng, 8, mpi.Latency{})
	slowFrom, slowTo := 60*time.Second, 80*time.Second
	w.Perturb = func(r *mpi.Rank, d time.Duration) time.Duration {
		now := time.Duration(r.Now())
		if r.ID() == 1 && now >= slowFrom && now < slowTo {
			return 25 * d
		}
		return d
	}
	cl := topology.New(2, 4, 6)
	m := New(w, cl, Config{C: 4})
	app := testApp{iters: 3000, baseCompute: 10 * time.Millisecond, skew: 40 * time.Millisecond, collBytes: 1 << 14}
	w.Launch(app.body)
	m.Start()
	eng.Run(time.Hour)
	if !w.Done() {
		t.Fatal("slowed app did not complete")
	}
	if m.Report() != nil {
		t.Fatalf("transient slowdown misreported as hang: %+v", m.Report())
	}
	if m.SlowdownsSeen() == 0 {
		t.Fatal("filter never engaged; slowdown window too mild for the test to be meaningful")
	}
}

func TestSlowdownFilterDisabledCausesFalsePositive(t *testing.T) {
	// Ablation: same scenario with the filter off must (incorrectly)
	// report a hang — demonstrating why the filter exists.
	eng := sim.NewEngine(6)
	w := mpi.NewWorld(eng, 8, mpi.Latency{})
	slowFrom, slowTo := 60*time.Second, 80*time.Second
	w.Perturb = func(r *mpi.Rank, d time.Duration) time.Duration {
		now := time.Duration(r.Now())
		if r.ID() == 1 && now >= slowFrom && now < slowTo {
			return 25 * d
		}
		return d
	}
	cl := topology.New(2, 4, 6)
	m := New(w, cl, Config{C: 4, DisableSlowdownFilter: true})
	app := testApp{iters: 3000, baseCompute: 10 * time.Millisecond, skew: 40 * time.Millisecond, collBytes: 1 << 14}
	w.Launch(app.body)
	m.Start()
	eng.Run(time.Hour)
	if m.Report() == nil {
		t.Skip("slowdown window did not accumulate enough suspicions at this seed")
	}
}

func TestIntervalAdaptationFromTinyI(t *testing.T) {
	// Start with I = 10ms against an app whose cycle is ~45ms: sampling
	// is time-correlated, the runs test must force I to grow (Table 9's
	// P* configuration), and detection must still work.
	inj := fault.NewInjector(fault.Plan{Kind: fault.ComputationHang, Rank: 1, Iteration: 700})
	app := testApp{iters: 3000, baseCompute: 40 * time.Millisecond, skew: 10 * time.Millisecond, collBytes: 120 << 20, inj: inj}
	eng, _, m := launch(7, 8, 4, app, Config{C: 4, InitialInterval: 10 * time.Millisecond})
	eng.Run(time.Hour)
	if m.Doublings() == 0 {
		t.Fatal("runs test never doubled I despite correlated sampling")
	}
	if m.Interval() <= 10*time.Millisecond {
		t.Fatalf("I = %v, want growth", m.Interval())
	}
	if m.Report() == nil {
		t.Fatal("hang not detected after adaptation")
	}
}

func TestMonitorExitsWhenAppCompletes(t *testing.T) {
	app := testApp{iters: 50, baseCompute: 5 * time.Millisecond, skew: 10 * time.Millisecond, collBytes: 1 << 10}
	eng, w, m := launch(8, 8, 4, app, Config{C: 4})
	end := eng.Run(time.Hour)
	if !w.Done() {
		t.Fatal("app did not complete")
	}
	// Engine must fully drain: monitor exited, so end < the hour cap.
	if end >= time.Hour {
		t.Fatalf("engine still busy at %v; monitor leaked", end)
	}
	if eng.LiveProcs() != 0 {
		t.Fatalf("%d live procs after completion", eng.LiveProcs())
	}
	if m.Report() != nil {
		t.Fatal("unexpected report")
	}
}

func TestOnHangCallbackOverridesStop(t *testing.T) {
	inj := fault.NewInjector(fault.Plan{Kind: fault.ComputationHang, Rank: 0, Iteration: 300})
	var cbReport *Report
	cfg := Config{C: 4, OnHang: func(r *Report) { cbReport = r }}
	app := testApp{iters: 2000, baseCompute: 10 * time.Millisecond, skew: 60 * time.Millisecond, collBytes: 1 << 14, inj: inj}
	eng, _, m := launch(9, 8, 4, app, Config{C: cfg.C, OnHang: cfg.OnHang})
	eng.Run(30 * time.Minute)
	if cbReport == nil {
		t.Fatal("OnHang not invoked")
	}
	if m.Report() != cbReport {
		t.Fatal("Report() disagrees with callback")
	}
	if eng.Stopped() {
		t.Fatal("engine stopped despite OnHang override")
	}
}

func TestHistoryKeptWhenEnabled(t *testing.T) {
	app := testApp{iters: 200, baseCompute: 10 * time.Millisecond, skew: 40 * time.Millisecond, collBytes: 1 << 12}
	eng, _, m := launch(10, 8, 4, app, Config{C: 4, KeepHistory: true})
	eng.Run(time.Hour)
	h := m.History()
	if len(h) < 10 {
		t.Fatalf("history has %d samples", len(h))
	}
	for i := 1; i < len(h); i++ {
		if h[i].T <= h[i-1].T {
			t.Fatal("history timestamps not increasing")
		}
		if h[i].Scrout < 0 || h[i].Scrout > 1 {
			t.Fatalf("scrout out of range: %v", h[i].Scrout)
		}
	}
}

func TestProbeSoutHealthyVariationAndHangFlatline(t *testing.T) {
	// Figure 2/3 mechanics: healthy runs show varying Sout; after a
	// hang, Sout collapses to a persistently tiny value.
	inj := fault.NewInjector(fault.Plan{Kind: fault.ComputationHang, Rank: 2, Iteration: 400})
	app := testApp{iters: 2000, baseCompute: 10 * time.Millisecond, skew: 30 * time.Millisecond, collBytes: 1 << 14, inj: inj}
	eng := sim.NewEngine(11)
	w := mpi.NewWorld(eng, 8, mpi.Latency{})
	pts := ProbeSout(w, time.Millisecond, 0)
	w.Launch(app.body)
	eng.Run(60 * time.Second)

	_, at := inj.Triggered()
	if at == 0 {
		t.Fatal("fault did not trigger")
	}
	var healthyVals, hungVals []float64
	for _, pt := range *pts {
		if pt.T < at {
			healthyVals = append(healthyVals, pt.Sout)
		} else if pt.T > at+2*time.Second {
			hungVals = append(hungVals, pt.Sout)
		}
	}
	if len(healthyVals) < 100 || len(hungVals) < 100 {
		t.Fatalf("not enough probe points: %d healthy, %d hung", len(healthyVals), len(hungVals))
	}
	distinct := map[float64]bool{}
	for _, v := range healthyVals {
		distinct[v] = true
	}
	if len(distinct) < 3 {
		t.Fatalf("healthy Sout shows no variation: %v", distinct)
	}
	for _, v := range hungVals {
		if v > 1.0/8+1e-9 {
			t.Fatalf("post-hang Sout = %v, want <= 1/8 (only the faulty rank out)", v)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.C != 10 || cfg.InitialInterval != 400*time.Millisecond || cfg.Alpha != 0.001 ||
		cfg.RunsBatch != 16 || cfg.SwitchEvery != 30 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestMonitorSetsDisjoint(t *testing.T) {
	eng := sim.NewEngine(12)
	w := mpi.NewWorld(eng, 64, mpi.Latency{})
	cl := topology.New(8, 8, 12)
	m := New(w, cl, Config{})
	inA := map[int]bool{}
	for _, r := range m.sets[0].Ranks {
		inA[r] = true
	}
	if len(m.sets[0].Ranks) != 10 || len(m.sets[1].Ranks) != 10 {
		t.Fatalf("set sizes %d, %d", len(m.sets[0].Ranks), len(m.sets[1].Ranks))
	}
	for _, r := range m.sets[1].Ranks {
		if inA[r] {
			t.Fatalf("rank %d in both monitor sets", r)
		}
	}
}
