package core

// Regression tests for the ring-buffer sample history behind
// Config.KeepHistory: insertion order, in-place eviction at
// MaxHistory, and the KeepHistory on/off switch.

import (
	"testing"

	"parastack/internal/mpi"
	"parastack/internal/sim"
	"parastack/internal/topology"
)

// newHistoryMonitor builds a minimal monitor whose record method can be
// driven directly, with the given history configuration.
func newHistoryMonitor(keep bool, maxHistory int) *Monitor {
	eng := sim.NewEngine(1)
	w := mpi.NewWorld(eng, 4, mpi.Latency{})
	cluster := topology.New(1, 4, 1)
	return New(w, cluster, Config{KeepHistory: keep, MaxHistory: maxHistory})
}

func scrouts(samples []Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s.Scrout
	}
	return out
}

func TestHistoryOrderingBeforeWrap(t *testing.T) {
	m := newHistoryMonitor(true, 8)
	for i := 0; i < 5; i++ {
		m.record(float64(i), false)
	}
	got := scrouts(m.History())
	if len(got) != 5 {
		t.Fatalf("History len = %d, want 5", len(got))
	}
	for i, v := range got {
		if v != float64(i) {
			t.Fatalf("History[%d] = %v, want %v (insertion order)", i, v, i)
		}
	}
}

func TestHistoryEvictionAtMaxHistory(t *testing.T) {
	const max = 8
	m := newHistoryMonitor(true, max)
	// Write 3 full generations plus a partial one: the ring must wrap
	// repeatedly and always retain exactly the last max samples.
	const total = 3*max + 3
	for i := 0; i < total; i++ {
		m.record(float64(i), false)
		if n := len(m.History()); n > max {
			t.Fatalf("after %d records History len = %d, exceeds MaxHistory %d", i+1, n, max)
		}
	}
	got := scrouts(m.History())
	if len(got) != max {
		t.Fatalf("History len = %d, want %d", len(got), max)
	}
	for i, v := range got {
		want := float64(total - max + i)
		if v != want {
			t.Fatalf("History[%d] = %v, want %v (oldest-first after eviction)", i, v, want)
		}
	}
}

func TestHistoryExactBoundaryDoesNotEvict(t *testing.T) {
	const max = 8
	m := newHistoryMonitor(true, max)
	for i := 0; i < max; i++ {
		m.record(float64(i), false)
	}
	got := scrouts(m.History())
	if len(got) != max {
		t.Fatalf("History len = %d, want %d", len(got), max)
	}
	if got[0] != 0 || got[max-1] != float64(max-1) {
		t.Fatalf("filling to exactly MaxHistory must not evict: got %v", got)
	}
}

func TestHistoryDisabledKeepsNothing(t *testing.T) {
	m := newHistoryMonitor(false, 8)
	for i := 0; i < 20; i++ {
		m.record(float64(i), false)
	}
	if n := len(m.History()); n != 0 {
		t.Fatalf("KeepHistory off but History len = %d", n)
	}
	// Samples are still counted even when history is off.
	if got := m.rec.Counter(CtrSamples); got != 20 {
		t.Fatalf("%s = %d, want 20", CtrSamples, got)
	}
}

// TestHistoryWrappedCopyIsStable ensures the linearized copy returned
// after wrapping is detached from the ring: later records must not
// mutate a slice already handed to a caller.
func TestHistoryWrappedCopyIsStable(t *testing.T) {
	const max = 4
	m := newHistoryMonitor(true, max)
	for i := 0; i < max+2; i++ { // wrapped: histStart != 0
		m.record(float64(i), false)
	}
	snap := m.History()
	before := scrouts(snap)
	m.record(99, false)
	after := scrouts(snap)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("History snapshot mutated by later record: %v -> %v", before, after)
		}
	}
}

// TestTinyClusterFallsBackToSingleSet: a cluster too small to fill
// multiple disjoint sets must still leave the monitor with one usable
// set instead of panicking in ActiveRanks/sampleRound.
func TestTinyClusterFallsBackToSingleSet(t *testing.T) {
	eng := sim.NewEngine(1)
	w := mpi.NewWorld(eng, 1, mpi.Latency{})
	cluster := topology.New(1, 1, 1)
	m := New(w, cluster, Config{C: 10, NumSets: 4})
	if len(m.sets) == 0 {
		t.Fatal("monitor has no sets on a tiny cluster")
	}
	ranks := m.ActiveRanks()
	if len(ranks) == 0 {
		t.Fatal("ActiveRanks is empty on a tiny cluster")
	}
	w.Launch(func(r *mpi.Rank) { r.Proc().Suspend() })
	eng.RunAll()
	if got, ok := m.sampleRound(); !ok || got != 1 {
		t.Fatalf("sampleRound = %v,%v, want 1,true (single parked OUT_MPI rank)", got, ok)
	}
	// And a full monitored run on the tiny cluster must not panic.
	eng2 := sim.NewEngine(2)
	w2 := mpi.NewWorld(eng2, 1, mpi.Latency{})
	m2 := New(w2, topology.New(1, 1, 2), Config{})
	m2.Start()
	w2.Launch(func(r *mpi.Rank) {
		for i := 0; i < 50; i++ {
			r.Compute(10 * 1000 * 1000) // 10ms
			r.Barrier()
		}
	})
	eng2.Run(60 * 1000 * 1000 * 1000)
	eng2.Shutdown()
}
