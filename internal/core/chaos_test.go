package core

// Unit tests for the monitor's graceful-degradation machinery under
// chaos: quorum rounds, epoch-based stale-trace rejection, quarantine
// with replacement and amnesty, clock jitter, Stop hardening, and the
// Snapshot/RestoreMonitor failover path. They drive the seams directly
// with a deterministic fake ProbeChaos rather than the probabilistic
// chaos.Injector, so every branch is hit on purpose.

import (
	"testing"
	"time"

	"parastack/internal/chaos"
	"parastack/internal/mpi"
	"parastack/internal/obs"
	"parastack/internal/sim"
	"parastack/internal/topology"
)

// fakeChaos scripts probe fates per rank; the zero value is all-fresh.
type fakeChaos struct {
	fate   func(rank int, now time.Duration) chaos.Fate
	jitter time.Duration
}

func (f *fakeChaos) ProbeFate(rank int, now time.Duration) chaos.Fate {
	if f.fate == nil {
		return chaos.FateOK
	}
	return f.fate(rank, now)
}

func (f *fakeChaos) StepJitter() time.Duration { return f.jitter }

// parkedMonitor builds a parked world (every rank suspended, stacks
// reading OUT_MPI) and a chaos-enabled monitor over it, for driving
// SampleOnce directly.
func parkedMonitor(size, nodes int, cfg Config) (*Monitor, *mpi.World) {
	eng := sim.NewEngine(1)
	w := mpi.NewWorld(eng, size, mpi.Latency{})
	w.Launch(func(r *mpi.Rank) { r.Proc().Suspend() })
	eng.RunAll()
	cluster := topology.New(nodes, size/nodes, 1)
	return New(w, cluster, cfg), w
}

func TestAllFreshChaosRoundMatchesPlain(t *testing.T) {
	m, _ := parkedMonitor(32, 4, Config{Chaos: &fakeChaos{}})
	if got := m.SampleOnce(); got != 1.0 {
		t.Fatalf("all-fresh chaos round Scrout = %v, want 1.0 (all parked ranks OUT_MPI)", got)
	}
	if m.TotalSamples() != 1 {
		t.Fatalf("TotalSamples = %d, want 1", m.TotalSamples())
	}
}

func TestRoundBelowQuorumDiscarded(t *testing.T) {
	fc := &fakeChaos{fate: func(int, time.Duration) chaos.Fate { return chaos.FateLost }}
	m, _ := parkedMonitor(32, 4, Config{Chaos: fc})
	c := len(m.ActiveRanks())
	if got := m.SampleOnce(); got != 0 {
		t.Fatalf("all-lost round returned %v, want 0", got)
	}
	if m.TotalSamples() != 0 {
		t.Fatalf("discarded round entered the model: TotalSamples = %d", m.TotalSamples())
	}
	if n := m.Recorder().Counter(CtrQuorumMisses); n != 1 {
		t.Fatalf("quorum misses = %d, want 1", n)
	}
	if n := m.Recorder().Counter(CtrProbesLost); n != int64(c) {
		t.Fatalf("probes lost = %d, want %d", n, c)
	}
	if n := m.Recorder().Counter(CtrSamples); n != 0 {
		t.Fatalf("sample counter advanced on a discarded round: %d", n)
	}
}

// TestPartialRoundComputesScroutOverArrived: with exactly half the set
// lost, the round meets the default 0.5 quorum and Scrout is computed
// over the traces that arrived, not the full set size.
func TestPartialRoundComputesScroutOverArrived(t *testing.T) {
	var lose map[int]bool
	fc := &fakeChaos{fate: func(r int, _ time.Duration) chaos.Fate {
		if lose[r] {
			return chaos.FateLost
		}
		return chaos.FateOK
	}}
	m, _ := parkedMonitor(32, 4, Config{Chaos: fc})
	ranks := m.ActiveRanks()
	lose = map[int]bool{}
	for _, r := range ranks[:len(ranks)/2] {
		lose[r] = true
	}
	if got := m.SampleOnce(); got != 1.0 {
		t.Fatalf("half-arrived round Scrout = %v, want 1.0 over the arrived half", got)
	}
	if m.TotalSamples() != 1 {
		t.Fatal("round meeting quorum exactly was discarded")
	}
}

// TestStaleTracesRejectedByEpoch: a stale reply delivers the previous
// round's trace, whose epoch tag no longer matches, so an all-stale
// round is discarded even though every probe "returned".
func TestStaleTracesRejectedByEpoch(t *testing.T) {
	stale := false
	fc := &fakeChaos{fate: func(int, time.Duration) chaos.Fate {
		if stale {
			return chaos.FateStale
		}
		return chaos.FateOK
	}}
	m, _ := parkedMonitor(32, 4, Config{Chaos: fc})
	c := len(m.ActiveRanks())
	m.SampleOnce() // fresh round fills the per-rank trace cache
	stale = true
	m.SampleOnce()
	if m.TotalSamples() != 1 {
		t.Fatalf("stale round entered the model: TotalSamples = %d, want 1", m.TotalSamples())
	}
	if n := m.Recorder().Counter(CtrProbesStale); n != int64(c) {
		t.Fatalf("probes stale = %d, want %d", n, c)
	}
	if n := m.Recorder().Counter(CtrQuorumMisses); n != 1 {
		t.Fatalf("quorum misses = %d, want 1", n)
	}
}

// TestStaleWithEmptyCacheTreatedAsLost: stale replies before any fresh
// trace was ever cached deliver nothing and must not panic.
func TestStaleWithEmptyCacheTreatedAsLost(t *testing.T) {
	fc := &fakeChaos{fate: func(int, time.Duration) chaos.Fate { return chaos.FateStale }}
	m, _ := parkedMonitor(32, 4, Config{Chaos: fc})
	if got := m.SampleOnce(); got != 0 {
		t.Fatalf("stale-with-no-cache round returned %v, want 0", got)
	}
	if m.TotalSamples() != 0 {
		t.Fatal("round with no usable trace entered the model")
	}
}

// TestQuarantineReplacesUnreachableRank: a rank that is lost
// QuarantineAfter rounds in a row is quarantined and its slot re-picked
// from the unmonitored ranks; the set keeps its size.
func TestQuarantineReplacesUnreachableRank(t *testing.T) {
	dead := map[int]bool{}
	fc := &fakeChaos{fate: func(r int, _ time.Duration) chaos.Fate {
		if dead[r] {
			return chaos.FateLost
		}
		return chaos.FateOK
	}}
	m, _ := parkedMonitor(32, 4, Config{Chaos: fc})
	victim := m.ActiveRanks()[0]
	size := len(m.ActiveRanks())
	dead[victim] = true
	for i := 0; i < 3; i++ { // default QuarantineAfter
		m.SampleOnce()
	}
	q := m.Quarantined()
	if len(q) != 1 || q[0] != victim {
		t.Fatalf("quarantined = %v, want [%d]", q, victim)
	}
	for _, r := range m.ActiveRanks() {
		if r == victim {
			t.Fatalf("quarantined rank %d still monitored: %v", victim, m.ActiveRanks())
		}
	}
	if len(m.ActiveRanks()) != size {
		t.Fatalf("set size %d after replacement, want %d (world has spare ranks)",
			len(m.ActiveRanks()), size)
	}
	if n := m.Recorder().Counter(CtrQuarantines); n != 1 {
		t.Fatalf("quarantine counter = %d, want 1", n)
	}
}

// TestQuarantineAmnestyWhenPoolExhausted: in a world with no spare
// ranks, the first quarantine shrinks the set; the second finds the
// pool dry and paroles the earlier exile instead of shrinking toward
// silence.
func TestQuarantineAmnestyWhenPoolExhausted(t *testing.T) {
	dead := map[int]bool{}
	fc := &fakeChaos{fate: func(r int, _ time.Duration) chaos.Fate {
		if dead[r] {
			return chaos.FateLost
		}
		return chaos.FateOK
	}}
	// C=4 × NumSets=2 over 8 ranks: every rank is monitored, zero spares.
	m, _ := parkedMonitor(8, 2, Config{C: 4, NumSets: 2, Chaos: fc})
	first := m.ActiveRanks()[0]
	dead[first] = true
	for i := 0; i < 3; i++ {
		m.SampleOnce()
	}
	if len(m.ActiveRanks()) != 3 {
		t.Fatalf("first quarantine in a spare-less world should shrink the set: %v", m.ActiveRanks())
	}
	delete(dead, first) // rank recovers, but stays exiled for now
	second := m.ActiveRanks()[0]
	dead[second] = true
	for i := 0; i < 3; i++ {
		m.SampleOnce()
	}
	if n := m.Recorder().Counter(CtrAmnesties); n != 1 {
		t.Fatalf("amnesty counter = %d, want 1", n)
	}
	q := m.Quarantined()
	if len(q) != 1 || q[0] != second {
		t.Fatalf("quarantined after amnesty = %v, want only [%d]", q, second)
	}
	found := false
	for _, r := range m.ActiveRanks() {
		if r == first {
			found = true
		}
	}
	if !found {
		t.Fatalf("paroled rank %d not returned to service: %v", first, m.ActiveRanks())
	}
}

// TestClockJitterDelaysSampling: positive StepJitter stretches every
// sampling step, so the same wall of virtual time yields fewer samples.
func TestClockJitterDelaysSampling(t *testing.T) {
	samples := func(jitter time.Duration) int {
		app := testApp{iters: 400, baseCompute: 10 * time.Millisecond, skew: 40 * time.Millisecond, collBytes: 1 << 14}
		eng, _, m := launch(5, 8, 4, app, Config{C: 4, Chaos: &fakeChaos{jitter: jitter}})
		eng.Run(20 * time.Second)
		return m.TotalSamples()
	}
	plain, jittered := samples(0), samples(2*time.Second)
	if jittered >= plain {
		t.Fatalf("2s jitter did not slow sampling: %d samples vs %d without", jittered, plain)
	}
	if jittered == 0 {
		t.Fatal("jittered monitor took no samples at all")
	}
}

// TestStopBeforeStartIsSafeNoOp (satellite): a monitor stopped before
// Start must neither sample nor report when the simulation runs.
func TestStopBeforeStartIsSafeNoOp(t *testing.T) {
	app := testApp{iters: 200, baseCompute: 10 * time.Millisecond, skew: 40 * time.Millisecond, collBytes: 1 << 14}
	eng := sim.NewEngine(9)
	w := mpi.NewWorld(eng, 8, mpi.Latency{})
	m := New(w, topology.New(2, 4, 9), Config{C: 4})
	m.Stop()
	w.Launch(app.body)
	m.Start()
	eng.Run(10 * time.Minute)
	if !w.Done() {
		t.Fatal("app did not complete")
	}
	if m.Report() != nil {
		t.Fatalf("stopped monitor reported: %+v", m.Report())
	}
	if n := m.Recorder().Counter(CtrSamples); n != 0 {
		t.Fatalf("stopped monitor took %d samples", n)
	}
}

// TestStopFreezesEventsAndCounters (satellite): after Stop fires
// mid-run, no further sampling events are emitted and the sample
// counter stays where it was.
func TestStopFreezesEventsAndCounters(t *testing.T) {
	sink := obs.NewMemSink()
	app := testApp{iters: 4000, baseCompute: 10 * time.Millisecond, skew: 40 * time.Millisecond, collBytes: 1 << 14}
	eng := sim.NewEngine(9)
	w := mpi.NewWorld(eng, 8, mpi.Latency{})
	m := New(w, topology.New(2, 4, 9), Config{C: 4, Recorder: obs.New(sink)})
	w.Launch(app.body)
	m.Start()
	const stopAt = 30 * time.Second
	var atStop int64
	eng.At(sim.Time(stopAt), func() {
		m.Stop()
		atStop = m.Recorder().Counter(CtrSamples)
	})
	eng.Run(3 * time.Minute)
	if atStop == 0 {
		t.Fatal("monitor took no samples before Stop")
	}
	if n := m.Recorder().Counter(CtrSamples); n != atStop {
		t.Fatalf("sample counter moved after Stop: %d → %d", atStop, n)
	}
	// One grace step: Stop is observed at the monitor's next wakeup, so
	// the last event can land up to one sampling step past stopAt.
	grace := stopAt + 2*m.Interval()
	for _, e := range sink.Kind(EvSample) {
		if e.T > grace {
			t.Fatalf("sample event at %v, after Stop at %v", e.T, stopAt)
		}
	}
	if m.Report() != nil {
		t.Fatalf("stopped monitor delivered a verdict: %+v", m.Report())
	}
}

// TestSnapshotRestoreRoundTrip: a restored monitor carries the learned
// interval, model samples, sets, rotation position, and quarantine
// list — and the snapshot is isolated from the donor's later mutation.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	dead := map[int]bool{}
	fc := &fakeChaos{fate: func(r int, _ time.Duration) chaos.Fate {
		if dead[r] {
			return chaos.FateLost
		}
		return chaos.FateOK
	}}
	cfg := Config{Chaos: fc}
	m, w := parkedMonitor(32, 4, cfg)
	victim := m.ActiveRanks()[0]
	dead[victim] = true
	for i := 0; i < 40; i++ {
		m.SampleOnce()
	}
	m.I = 800 * time.Millisecond // pretend adaptation doubled it

	snap := m.Snapshot()
	wantSamples := m.TotalSamples()
	wantModelN := m.Model().N()
	wantActive := append([]int(nil), m.ActiveRanks()...)

	for i := 0; i < 10; i++ { // donor keeps mutating after the checkpoint
		m.SampleOnce()
	}
	if len(snap.Phases[0]) != wantModelN {
		t.Fatalf("snapshot model mutated by donor: %d samples, want %d", len(snap.Phases[0]), wantModelN)
	}

	r := RestoreMonitor(w, m.cluster, cfg, snap)
	if r.Interval() != 800*time.Millisecond {
		t.Fatalf("restored interval = %v, want 800ms", r.Interval())
	}
	if r.TotalSamples() != wantSamples {
		t.Fatalf("restored TotalSamples = %d, want %d", r.TotalSamples(), wantSamples)
	}
	if r.Model().N() != wantModelN {
		t.Fatalf("restored model has %d samples, want %d", r.Model().N(), wantModelN)
	}
	got := r.ActiveRanks()
	if len(got) != len(wantActive) {
		t.Fatalf("restored active set %v, want %v", got, wantActive)
	}
	for i := range got {
		if got[i] != wantActive[i] {
			t.Fatalf("restored active set %v, want %v", got, wantActive)
		}
	}
	q := r.Quarantined()
	if len(q) != 1 || q[0] != victim {
		t.Fatalf("restored quarantine list %v, want [%d]", q, victim)
	}
	if n := r.Recorder().Counter(CtrFailovers); n != 1 {
		t.Fatalf("failover counter = %d, want 1", n)
	}
	// The restored monitor must keep sampling from where the donor left.
	r.SampleOnce()
	if r.TotalSamples() != wantSamples+1 {
		t.Fatalf("restored monitor did not resume sampling: %d", r.TotalSamples())
	}
}
