package noise

import (
	"testing"
	"time"

	"parastack/internal/mpi"
	"parastack/internal/sim"
)

func TestProfilesByName(t *testing.T) {
	for _, name := range []string{"tardis", "tianhe2", "stampede"} {
		p := ByName(name)
		if p.Name != name {
			t.Fatalf("ByName(%q).Name = %q", name, p.Name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown platform must panic")
		}
	}()
	ByName("summit")
}

func TestSpeedDividesCompute(t *testing.T) {
	eng := sim.NewEngine(1)
	w := mpi.NewWorld(eng, 1, mpi.Latency{})
	p := Profile{Name: "x", Speed: 2, Jitter: 0, NodeImbalance: 0}
	p.Apply(w, eng.Rand(), 1, 0)
	var done sim.Time
	w.Launch(func(r *mpi.Rank) {
		r.Compute(1 * time.Second)
		done = r.Now()
	})
	eng.RunAll()
	if done != 500*time.Millisecond {
		t.Fatalf("compute on 2x machine took %v, want 500ms", done)
	}
}

func TestJitterBounded(t *testing.T) {
	eng := sim.NewEngine(7)
	w := mpi.NewWorld(eng, 1, mpi.Latency{})
	p := Profile{Name: "x", Speed: 1, Jitter: 0.1}
	p.Apply(w, eng.Rand(), 1, 0)
	w.Launch(func(r *mpi.Rank) {
		for i := 0; i < 100; i++ {
			before := r.Now()
			r.Compute(100 * time.Millisecond)
			d := r.Now() - before
			if d < 89*time.Millisecond || d > 111*time.Millisecond {
				t.Fatalf("jittered interval %v outside ±10%% of 100ms", d)
			}
		}
	})
	eng.RunAll()
}

func TestSlowdownWindowAffectsOnlyItsRanksAndWindow(t *testing.T) {
	// Force a slowdown with probability 1 and check the factor applies
	// inside the window to the chosen node's ranks only.
	eng := sim.NewEngine(3)
	w := mpi.NewWorld(eng, 4, mpi.Latency{})
	p := Profile{
		Name: "x", Speed: 1, Jitter: 0,
		SlowdownProb: 1, SlowdownFactor: 10,
		SlowdownMin: 10 * time.Second, SlowdownMax: 10 * time.Second,
	}
	a := p.Apply(w, eng.Rand(), 2, 100*time.Second)
	if !a.HasSlowdown() {
		t.Fatal("slowdown not scheduled with prob 1")
	}
	if a.SlowEnd-a.SlowStart != 10*time.Second {
		t.Fatalf("window length %v, want 10s", a.SlowEnd-a.SlowStart)
	}
	if !a.SlowdownActiveAt(a.SlowStart) || a.SlowdownActiveAt(a.SlowEnd) {
		t.Fatal("SlowdownActiveAt boundaries wrong")
	}

	slowed := map[int]bool{}
	w.Launch(func(r *mpi.Rank) {
		for {
			if r.Now() >= a.SlowStart && r.Now()+20*time.Millisecond <= a.SlowEnd {
				before := r.Now()
				r.Compute(10 * time.Millisecond)
				if r.Now()-before > 50*time.Millisecond {
					slowed[r.ID()] = true
				}
				if r.Now() > a.SlowEnd {
					return
				}
			} else {
				r.Compute(10 * time.Millisecond)
				if r.Now() > a.SlowEnd+time.Second {
					return
				}
			}
		}
	})
	eng.RunAll()
	if len(slowed) == 0 {
		t.Fatal("no rank experienced the slowdown")
	}
	// Affected ranks must be exactly one node (ppn=2): ranks {0,1} or {2,3}.
	for r := range slowed {
		for s := range slowed {
			if r/2 != s/2 {
				t.Fatalf("slowdown spans nodes: ranks %v", slowed)
			}
		}
	}
}

func TestNoSlowdownWhenProbZero(t *testing.T) {
	eng := sim.NewEngine(3)
	w := mpi.NewWorld(eng, 4, mpi.Latency{})
	a := Tardis().Apply(w, eng.Rand(), 2, time.Hour)
	if a.HasSlowdown() {
		t.Fatal("tardis profile scheduled a slowdown")
	}
}
