// Package noise models the timing behaviour of the paper's three
// evaluation platforms — Tardis (16-node AMD cluster), Tianhe-2, and
// Stampede — as perturbations of computation intervals: static per-node
// speed imbalance, per-interval OS jitter, and the rare transient
// whole-application slowdowns observed on Tianhe-2 (§3.3) that a hang
// detector must not mistake for hangs.
package noise

import (
	"fmt"
	"math/rand"
	"time"

	"parastack/internal/mpi"
)

// Profile is a platform timing model.
type Profile struct {
	// Name identifies the platform ("tardis", "tianhe2", "stampede").
	Name string
	// DefaultPPN is the processes-per-node layout the paper used on the
	// platform (Tardis 8×32, Tianhe-2 64×16, Stampede 16 per node); it
	// is what harness runs use when RunConfig.PPN is zero. Zero falls
	// back to 16.
	DefaultPPN int
	// Speed divides every computation interval: >1 is a faster machine.
	Speed float64
	// CommSpeed scales the interconnect relative to the default latency
	// model: >1 is a faster network, <1 slower. Tardis's dated
	// InfiniBand is an order of magnitude behind Tianhe-2's TH-Express,
	// which is what stretches FT's class-D transposes into the
	// multi-second all-ranks-IN_MPI windows of Table 1.
	CommSpeed float64
	// Jitter is the relative half-width of uniform per-interval noise.
	Jitter float64
	// NodeImbalance is the relative half-width of a static per-node
	// speed factor, drawn once per run.
	NodeImbalance float64
	// SlowdownProb is the per-run probability that a transient
	// slowdown strikes somewhere in the run.
	SlowdownProb float64
	// SlowdownFactor multiplies computation for the affected ranks
	// while the slowdown window is active.
	SlowdownFactor float64
	// SlowdownMin/Max bound the window duration.
	SlowdownMin, SlowdownMax time.Duration
}

// Tardis returns the 16-node AMD cluster profile: quiet, no transient
// slowdowns.
func Tardis() Profile {
	return Profile{
		Name:          "tardis",
		DefaultPPN:    32,
		Speed:         1.0,
		CommSpeed:     0.10,
		Jitter:        0.03,
		NodeImbalance: 0.02,
	}
}

// Tianhe2 returns the Tianhe-2 profile: fast nodes, low steady-state
// noise (low utilization), but occasional substantial transient
// slowdowns (paper: fewer than 4 runs in 50). The slowdown factor is
// sized so that a slowed rank still crosses MPI calls within the
// transient-slowdown filter's trace gap — a process stalled for tens of
// seconds inside one computation is indistinguishable from a hang by
// any stack-based filter, the paper's included.
func Tianhe2() Profile {
	return Profile{
		Name:           "tianhe2",
		DefaultPPN:     16,
		Speed:          1.25,
		CommSpeed:      0.90,
		Jitter:         0.02,
		NodeImbalance:  0.015,
		SlowdownProb:   0.06,
		SlowdownFactor: 5,
		SlowdownMin:    4 * time.Second,
		SlowdownMax:    15 * time.Second,
	}
}

// Stampede returns the Stampede profile: higher steady-state system
// noise (high utilization) with rare slowdowns.
func Stampede() Profile {
	return Profile{
		Name:           "stampede",
		DefaultPPN:     16,
		Speed:          1.1,
		CommSpeed:      0.50,
		Jitter:         0.06,
		NodeImbalance:  0.04,
		SlowdownProb:   0.02,
		SlowdownFactor: 4,
		SlowdownMin:    2 * time.Second,
		SlowdownMax:    8 * time.Second,
	}
}

// Lookup returns the named profile, or an error naming the valid
// platforms on an unknown name.
func Lookup(name string) (Profile, error) {
	switch name {
	case "tardis":
		return Tardis(), nil
	case "tianhe2":
		return Tianhe2(), nil
	case "stampede":
		return Stampede(), nil
	default:
		return Profile{}, fmt.Errorf("noise: unknown platform %q (have %v)", name, Names())
	}
}

// Names lists the known platform names.
func Names() []string { return []string{"tardis", "tianhe2", "stampede"} }

// ByName returns the named profile; it panics on an unknown name.
//
// Deprecated: use Lookup, which reports unknown names as an error
// instead of a stack trace.
func ByName(name string) Profile {
	p, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Latency returns the platform's point-to-point and collective latency
// model: the package defaults scaled by CommSpeed (zero or negative
// CommSpeed means 1.0).
func (p Profile) Latency() mpi.Latency {
	cs := p.CommSpeed
	if cs <= 0 {
		cs = 1
	}
	base := mpi.Latency{}.WithDefaults()
	base.Base = time.Duration(float64(base.Base) / cs)
	base.BytesPerSec *= cs
	base.CollBase = time.Duration(float64(base.CollBase) / cs)
	base.CollBytesPerSec *= cs
	return base
}

// Applied is an instantiated noise model bound to one world/run.
type Applied struct {
	Profile Profile

	nodeFactor []float64
	ppn        int

	// Transient slowdown window (zero when none scheduled).
	SlowStart, SlowEnd time.Duration
	slowRanks          map[int]bool
}

// Apply draws per-node factors, optionally schedules one transient
// slowdown inside [0, expectedDur], and installs a Perturb hook on w.
// ppn maps ranks to nodes. The same rng drives all draws, keeping the
// run deterministic.
func (p Profile) Apply(w *mpi.World, rng *rand.Rand, ppn int, expectedDur time.Duration) *Applied {
	if ppn <= 0 {
		ppn = 1
	}
	nodes := (w.Size() + ppn - 1) / ppn
	a := &Applied{Profile: p, ppn: ppn, nodeFactor: make([]float64, nodes)}
	for i := range a.nodeFactor {
		a.nodeFactor[i] = 1 + p.NodeImbalance*(2*rng.Float64()-1)
	}
	if p.SlowdownProb > 0 && rng.Float64() < p.SlowdownProb && expectedDur > 0 {
		dur := p.SlowdownMin + time.Duration(rng.Float64()*float64(p.SlowdownMax-p.SlowdownMin))
		start := time.Duration((0.2 + 0.6*rng.Float64()) * float64(expectedDur))
		a.SlowStart, a.SlowEnd = start, start+dur
		// A transient slowdown affects the ranks of one node: "a few
		// processes stepping through the code slowly".
		node := rng.Intn(nodes)
		a.slowRanks = map[int]bool{}
		for r := node * ppn; r < (node+1)*ppn && r < w.Size(); r++ {
			a.slowRanks[r] = true
		}
	}
	speed := p.Speed
	if speed <= 0 {
		speed = 1
	}
	jitter := p.Jitter
	// Per-interval jitter draws from the rank's own stream, not the
	// setup rng: the hook runs in rank execution context, and only a
	// per-rank stream keeps the draw sequence independent of the order
	// ranks happen to execute in (serial vs. windowed parallel).
	w.Perturb = func(r *mpi.Rank, d time.Duration) time.Duration {
		f := a.nodeFactor[r.ID()/ppn] / speed
		if jitter > 0 {
			f *= 1 + jitter*(2*r.Rand().Float64()-1)
		}
		if a.slowRanks != nil {
			now := r.Now()
			if now >= a.SlowStart && now < a.SlowEnd && a.slowRanks[r.ID()] {
				f *= p.SlowdownFactor
			}
		}
		return time.Duration(float64(d) * f)
	}
	return a
}

// HasSlowdown reports whether a transient slowdown was scheduled.
func (a *Applied) HasSlowdown() bool { return a.slowRanks != nil }

// SlowdownActiveAt reports whether the slowdown window covers t.
func (a *Applied) SlowdownActiveAt(t time.Duration) bool {
	return a.slowRanks != nil && t >= a.SlowStart && t < a.SlowEnd
}
