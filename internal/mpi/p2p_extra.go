package mpi

import "time"

// Ssend performs a synchronous-mode send: it does not complete until
// the matching receive has been posted and the message consumed —
// unlike the eager standard-mode Send. This is the call whose misuse
// creates classic head-to-head deadlocks, so it matters for hang
// studies: two ranks Ssend-ing to each other first block forever.
func (r *Rank) Ssend(dst, tag, bytes int) {
	r.enterMPI("MPI_Ssend")
	defer r.exitMPI()
	// Model: deliver the payload, then wait for an acknowledgement the
	// receiver's matching engine sends when a receive consumes it.
	ackTag := ssendAckBase | tag
	r.startSend(dst, ssendDataBase|tag, bytes)
	q := r.postRecv(r.w.ranks[dst].id, ackTag)
	r.await(q)
	r.retire(q)
	r.release(q)
}

// SsendMatch is the receive counterpart used by ranks receiving from an
// Ssend: it consumes the data message and releases the sender.
func (r *Rank) SsendMatch(src, tag int) int {
	r.enterMPI("MPI_Recv")
	defer r.exitMPI()
	q := r.postRecv(src, ssendDataBase|tag)
	r.await(q)
	r.retire(q)
	r.startSend(src, ssendAckBase|tag, 0)
	got := q.msg.bytes
	r.release(q)
	return got
}

// Tag-space partitions for the synchronous-send protocol. User tags up
// to 2^24 stay clear of them.
const (
	ssendDataBase = 1 << 28
	ssendAckBase  = 1 << 29
)

// Probe blocks until a matching message is deliverable (MPI_Probe),
// without consuming it. The rank is IN_MPI while it waits.
func (r *Rank) Probe(src, tag int) {
	r.enterMPI("MPI_Probe")
	defer r.exitMPI()
	for {
		// Everything in the unexpected queue has arrived (delivery events
		// fire at arrival time), so a match is immediately probe-visible.
		for _, m := range r.unexpected[r.unexpectedHead:] {
			if m != nil && (src == AnySource || src == m.src) &&
				(tag == AnyTag || tag == m.tag) {
				return
			}
		}
		// Nothing queued: poll the progress engine. (A condition-based
		// wakeup would be cleaner but Probe is rare; polling at the
		// test-overhead granularity keeps the state machine simple.)
		r.proc.Sleep(10 * r.w.lat.TestOverhead)
	}
}

// Waitany blocks until at least one of the requests completes and
// returns its index (MPI_Waitany). It panics on an empty slice.
func (r *Rank) Waitany(qs []*Request) int {
	r.enterMPI("MPI_Waitany")
	defer r.exitMPI()
	if len(qs) == 0 {
		panic("mpi: Waitany on no requests")
	}
	for {
		for i, q := range qs {
			if q.done {
				if q.isRecv {
					r.retire(q)
				}
				return i
			}
		}
		// Park until any completion: register as waiter on all pending
		// requests; the first completion wakes us, then we deregister.
		for _, q := range qs {
			if q.waiter != nil && q.waiter != r.proc {
				panic("mpi: request already has a waiter")
			}
			q.waiter = r.proc
		}
		r.proc.Suspend()
		for _, q := range qs {
			if q.waiter == r.proc {
				q.waiter = nil
			}
		}
	}
}

// Barrierize is a convenience for tests: run fn then enter a barrier,
// bounding skew between phases.
func (r *Rank) Barrierize(fn func()) {
	fn()
	r.Barrier()
}

// WaitallTimeout waits for all requests but gives up after d, returning
// false if any request was still pending — a building block for
// user-level timeout recovery schemes (and for exercising half-blocking
// communication styles in tests).
func (r *Rank) WaitallTimeout(qs []*Request, d time.Duration) bool {
	deadline := r.proc.Now() + d
	for _, q := range qs {
		for !q.done {
			if r.proc.Now() >= deadline {
				return false
			}
			step := deadline - r.proc.Now()
			if step > 10*r.w.lat.TestOverhead {
				step = 10 * r.w.lat.TestOverhead
			}
			if !r.TestFor(q, step) && r.proc.Now() >= deadline {
				return false
			}
		}
		if q.isRecv {
			r.retire(q)
		}
	}
	return true
}
