// Package mpi implements a simulated MPI-1 runtime on top of the
// discrete-event engine in internal/sim.
//
// Each MPI rank is a simulated process (goroutine) with a simulated
// call stack (internal/stack). The runtime reproduces the semantics
// that matter to hang detection: blocking point-to-point operations
// with FIFO matching per (source, tag), non-blocking requests completed
// by a progress engine, synchronization-like collectives (Barrier,
// Allreduce, Allgather, Alltoall) where no rank can leave before all
// have entered, and rooted collectives (Bcast, Reduce, Gather, Scatter)
// with their weaker dependence structure. Every MPI call pushes an
// "MPI_*" frame onto the rank's stack for the duration of the call, so
// an external observer sees exactly the IN_MPI / OUT_MPI behaviour the
// paper's stack-trace sampling sees.
//
// Message and collective timing comes from a configurable latency
// model; all timing is virtual, deterministic, and jittered from the
// engine's seeded random source.
package mpi

import (
	"fmt"
	"time"

	"parastack/internal/sim"
	"parastack/internal/stack"
)

// Wildcards for Recv/Iprobe matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// World is a simulated MPI job: a fixed set of ranks sharing one
// engine, one latency model, and one collective-matching space
// (the equivalent of MPI_COMM_WORLD).
type World struct {
	eng   *sim.Engine
	ranks []*Rank
	lat   Latency

	worldComm *Comm
	derived   []*Comm // per-run split communicators, reclaimed by Reset

	// Perturb, when non-nil, rescales every computation interval of
	// every rank; platform noise models hook in here.
	Perturb func(r *Rank, d time.Duration) time.Duration

	started    bool
	finished   int
	finishedAt sim.Time

	// Object pools. Messages and the requests of the internal blocking
	// paths churn once per communication; recycling them (and collective
	// ops) is what keeps a steady-state run allocation-free. All pool
	// traffic happens while the engine holds control of exactly one
	// process, so no locking is needed.
	freeMsgs []*message
	freeReqs []*Request
	freeOps  []*collOp
}

// getMsg pops a pooled message (fields are fully overwritten by the
// caller) or allocates one.
func (w *World) getMsg() *message {
	if n := len(w.freeMsgs); n > 0 {
		m := w.freeMsgs[n-1]
		w.freeMsgs[n-1] = nil
		w.freeMsgs = w.freeMsgs[:n-1]
		return m
	}
	return &message{}
}

// putMsg returns a consumed message to the pool.
func (w *World) putMsg(m *message) { w.freeMsgs = append(w.freeMsgs, m) }

// getReq pops a pooled request, reset except for its cached onComplete
// closure (bound to the struct, still valid), or allocates one.
func (w *World) getReq() *Request {
	if n := len(w.freeReqs); n > 0 {
		q := w.freeReqs[n-1]
		w.freeReqs[n-1] = nil
		w.freeReqs = w.freeReqs[:n-1]
		return q
	}
	return &Request{}
}

// putReq returns a request to the pool. The caller guarantees no
// outside handle to it survives (see Rank.release).
func (w *World) putReq(q *Request) {
	q.rank = nil
	q.isRecv = false
	q.src, q.tag = 0, 0
	q.done = false
	q.msg = nil
	q.waiter = nil
	w.freeReqs = append(w.freeReqs, q)
}

// NewWorld creates a world of size ranks on eng with latency model lat.
// Ranks are created immediately but their bodies start only at Launch.
func NewWorld(eng *sim.Engine, size int, lat Latency) *World {
	if size <= 0 {
		panic("mpi: world size must be positive")
	}
	w := &World{
		eng: eng,
		lat: lat.WithDefaults(),
	}
	w.ranks = make([]*Rank, size)
	all := make([]int, size)
	for i := 0; i < size; i++ {
		w.ranks[i] = &Rank{
			w:     w,
			id:    i,
			name:  fmt.Sprintf("rank-%d", i),
			stack: stack.New("main"),
		}
		all[i] = i
	}
	w.worldComm = newComm(w, all)
	return w
}

// Reset returns the world to its just-constructed state for a fresh run
// on the same (Reset) engine, with a possibly different latency model.
// Rank structs, stacks, queue backing arrays, communicator tables, and
// the message/request/collective pools are all retained, so a reused
// world allocates almost nothing per run. Messages and blocking-path
// requests still sitting in rank queues — a hung run's leftovers,
// including the fault injector's dead receives — return to their pools
// here rather than leaking. The engine must already have been Reset (or
// be fresh): leftover queue state references the old run's requests.
func (w *World) Reset(lat Latency) {
	w.lat = lat.WithDefaults()
	w.Perturb = nil
	w.started = false
	w.finished = 0
	w.finishedAt = 0
	for _, r := range w.ranks {
		for _, q := range r.posted[r.postedHead:] {
			if q != nil {
				// Pool every leftover posted receive: user code that could
				// hold an Irecv handle is gone (the run is over), so reuse
				// is unobservable. Attached messages come back too.
				if q.msg != nil {
					w.putMsg(q.msg)
				}
				w.putReq(q)
			}
		}
		r.posted = r.posted[:0]
		r.postedHead, r.postedHoles = 0, 0
		for _, m := range r.unexpected[r.unexpectedHead:] {
			if m != nil {
				w.putMsg(m)
			}
		}
		r.unexpected = r.unexpected[:0]
		r.unexpectedHead, r.unexpectedHoles = 0, 0
		r.msgSeq = 0
		r.block = blockState{}
		r.threads = nil
		r.hung = false
		r.proc = nil
		r.stack.Reset("main")
	}
	w.worldComm.reset()
	for i, c := range w.derived {
		c.reset() // reclaim in-flight ops before dropping the comm
		w.derived[i] = nil
	}
	w.derived = w.derived[:0]
}

// Engine returns the world's simulation engine.
func (w *World) Engine() *sim.Engine { return w.eng }

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Ranks returns all ranks in rank order.
func (w *World) Ranks() []*Rank { return w.ranks }

// Latency returns the world's latency model.
func (w *World) Latency() Latency { return w.lat }

// Launch starts every rank running body at virtual time 0 (or the
// current time if the engine has already advanced). It may be called
// once per world.
func (w *World) Launch(body func(r *Rank)) {
	if w.started {
		panic("mpi: world already launched")
	}
	w.started = true
	for _, r := range w.ranks {
		r := r
		r.proc = w.eng.SpawnNow(r.name, func(p *sim.Proc) {
			body(r)
			w.finished++
			if w.finished == len(w.ranks) {
				w.finishedAt = w.eng.Now()
			}
		})
	}
}

// Done reports whether every rank's body has returned.
func (w *World) Done() bool { return w.started && w.finished == len(w.ranks) }

// Finished reports how many ranks have completed.
func (w *World) Finished() int { return w.finished }

// FinishedAt returns the virtual time at which the last rank completed
// (zero until Done).
func (w *World) FinishedAt() sim.Time { return w.finishedAt }
