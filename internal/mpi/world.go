// Package mpi implements a simulated MPI-1 runtime on top of the
// discrete-event engine in internal/sim.
//
// Each MPI rank is a simulated process (goroutine) with a simulated
// call stack (internal/stack). The runtime reproduces the semantics
// that matter to hang detection: blocking point-to-point operations
// with FIFO matching per (source, tag), non-blocking requests completed
// by a progress engine, synchronization-like collectives (Barrier,
// Allreduce, Allgather, Alltoall) where no rank can leave before all
// have entered, and rooted collectives (Bcast, Reduce, Gather, Scatter)
// with their weaker dependence structure. Every MPI call pushes an
// "MPI_*" frame onto the rank's stack for the duration of the call, so
// an external observer sees exactly the IN_MPI / OUT_MPI behaviour the
// paper's stack-trace sampling sees.
//
// Message and collective timing comes from a configurable latency
// model; all timing is virtual, deterministic, and jittered from the
// engine's seeded random source.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"parastack/internal/sim"
	"parastack/internal/stack"
)

// Wildcards for Recv/Iprobe matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// World is a simulated MPI job: a fixed set of ranks sharing one
// engine, one latency model, and one collective-matching space
// (the equivalent of MPI_COMM_WORLD).
type World struct {
	eng   *sim.Engine
	ranks []*Rank
	lat   Latency

	worldComm *Comm
	derived   []*Comm // per-run split communicators, reclaimed by Reset

	// Perturb, when non-nil, rescales every computation interval of
	// every rank; platform noise models hook in here.
	Perturb func(r *Rank, d time.Duration) time.Duration

	started    bool
	finished   atomic.Int32 // ranks whose bodies have returned
	finishedAt atomic.Int64 // max completion virtual time (ns), valid once Done

	// deliverFn/completeFn cache the method values passed to
	// sim.Proc.Post so delivery and completion events carry a shared
	// function pointer instead of a fresh closure per message.
	deliverFn  func(sim.Time, any)
	completeFn func(sim.Time, any)

	// Pooled collective ops, shared across communicators. opMu guards
	// the pool: ranks on different shards may enter collectives on
	// different communicators concurrently in a multi-worker window.
	opMu    sync.Mutex
	freeOps []*collOp

	// group is the number of consecutive ranks homed on one engine
	// shard (see shardGroupSize). It is part of the world's identity:
	// event stamps carry shard ids, so serial and windowed runs of the
	// same world use the same grouping by construction.
	group int
}

// maxRankShards bounds the number of rank shards a world creates.
// Below it every rank gets its own shard (maximum windowed
// parallelism); above it consecutive ranks share shards, which keeps
// the shard head-heap small and — more importantly — batches each
// horizon window into long same-shard event chains that the windowed
// executor runs on one hot goroutine chain (see sim shard.runLoop).
const maxRankShards = 256

// shardGroupSize returns the ranks-per-shard grouping for a world of
// the given size: 1 until maxRankShards, then the smallest group that
// keeps the shard count at maxRankShards.
func shardGroupSize(size int) int {
	g := (size + maxRankShards - 1) / maxRankShards
	if g < 1 {
		g = 1
	}
	return g
}

// NewWorld creates a world of size ranks on eng with latency model lat.
// Ranks are created immediately but their bodies start only at Launch.
func NewWorld(eng *sim.Engine, size int, lat Latency) *World {
	if size <= 0 {
		panic("mpi: world size must be positive")
	}
	w := &World{
		eng:   eng,
		lat:   lat.WithDefaults(),
		group: shardGroupSize(size),
	}
	w.deliverFn = w.deliverMsg
	w.completeFn = w.completeReq
	w.ranks = make([]*Rank, size)
	all := make([]int, size)
	for i := 0; i < size; i++ {
		w.ranks[i] = &Rank{
			w:     w,
			id:    i,
			name:  fmt.Sprintf("rank-%d", i),
			stack: stack.New("main"),
		}
		all[i] = i
	}
	w.worldComm = newComm(w, all)
	return w
}

// Reset returns the world to its just-constructed state for a fresh run
// on the same (Reset) engine, with a possibly different latency model.
// Rank structs, stacks, queue backing arrays, communicator tables, and
// the message/request/collective pools are all retained, so a reused
// world allocates almost nothing per run. Messages and blocking-path
// requests still sitting in rank queues — a hung run's leftovers,
// including the fault injector's dead receives — return to their pools
// here rather than leaking. The engine must already have been Reset (or
// be fresh): leftover queue state references the old run's requests.
func (w *World) Reset(lat Latency) {
	w.lat = lat.WithDefaults()
	w.Perturb = nil
	w.started = false
	w.finished.Store(0)
	w.finishedAt.Store(0)
	for _, r := range w.ranks {
		for _, q := range r.posted[r.postedHead:] {
			if q != nil {
				// Pool every leftover posted receive: user code that could
				// hold an Irecv handle is gone (the run is over), so reuse
				// is unobservable. Attached messages come back too.
				if q.msg != nil {
					r.putMsg(q.msg)
				}
				r.putReq(q)
			}
		}
		r.posted = r.posted[:0]
		r.postedHead, r.postedHoles = 0, 0
		for _, m := range r.unexpected[r.unexpectedHead:] {
			if m != nil {
				r.putMsg(m)
			}
		}
		r.unexpected = r.unexpected[:0]
		r.unexpectedHead, r.unexpectedHoles = 0, 0
		r.msgSeq = 0
		for dst := range r.lastArrive {
			delete(r.lastArrive, dst)
		}
		r.block = blockState{}
		r.threads = nil
		r.hung = false
		r.proc = nil
		r.stack.Reset("main")
	}
	w.worldComm.reset()
	for i, c := range w.derived {
		c.reset() // reclaim in-flight ops before dropping the comm
		w.derived[i] = nil
	}
	w.derived = w.derived[:0]
}

// Engine returns the world's simulation engine.
func (w *World) Engine() *sim.Engine { return w.eng }

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Ranks returns all ranks in rank order.
func (w *World) Ranks() []*Rank { return w.ranks }

// Latency returns the world's latency model.
func (w *World) Latency() Latency { return w.lat }

// rankStreamSalt keys per-rank random streams apart from every other
// derivation of the engine seed (collective draws use collSalt).
const rankStreamSalt = 0x726b // "rk"

// Launch starts every rank running body at virtual time 0 (or the
// current time if the engine has already advanced). Ranks are homed on
// engine shards in consecutive groups of shardGroupSize (shard 0 stays
// reserved for system activity), and each gets a fresh private random
// stream derived from the engine's current seed. It may be called once
// per world.
func (w *World) Launch(body func(r *Rank)) {
	if w.started {
		panic("mpi: world already launched")
	}
	w.started = true
	seed := uint64(w.eng.Seed())
	now := w.eng.Now()
	for _, r := range w.ranks {
		r := r
		r.rng.Seed(sim.Mix64(seed, rankStreamSalt, uint64(r.id)))
		r.proc = w.eng.SpawnOn(1+r.id/w.group, r.name, now, func(p *sim.Proc) {
			body(r)
			// Completion bookkeeping must be safe from concurrent window
			// workers; the max over completion times equals the serial
			// engine's "time of the last completion".
			t := int64(p.Now())
			for {
				cur := w.finishedAt.Load()
				if t <= cur || w.finishedAt.CompareAndSwap(cur, t) {
					break
				}
			}
			w.finished.Add(1)
		})
	}
}

// Done reports whether every rank's body has returned.
func (w *World) Done() bool { return w.started && int(w.finished.Load()) == len(w.ranks) }

// Finished reports how many ranks have completed.
func (w *World) Finished() int { return int(w.finished.Load()) }

// FinishedAt returns the virtual time at which the last rank completed
// (zero until Done).
func (w *World) FinishedAt() sim.Time {
	if !w.Done() {
		return 0
	}
	return sim.Time(w.finishedAt.Load())
}
