// Package mpi implements a simulated MPI-1 runtime on top of the
// discrete-event engine in internal/sim.
//
// Each MPI rank is a simulated process (goroutine) with a simulated
// call stack (internal/stack). The runtime reproduces the semantics
// that matter to hang detection: blocking point-to-point operations
// with FIFO matching per (source, tag), non-blocking requests completed
// by a progress engine, synchronization-like collectives (Barrier,
// Allreduce, Allgather, Alltoall) where no rank can leave before all
// have entered, and rooted collectives (Bcast, Reduce, Gather, Scatter)
// with their weaker dependence structure. Every MPI call pushes an
// "MPI_*" frame onto the rank's stack for the duration of the call, so
// an external observer sees exactly the IN_MPI / OUT_MPI behaviour the
// paper's stack-trace sampling sees.
//
// Message and collective timing comes from a configurable latency
// model; all timing is virtual, deterministic, and jittered from the
// engine's seeded random source.
package mpi

import (
	"fmt"
	"time"

	"parastack/internal/sim"
	"parastack/internal/stack"
)

// Wildcards for Recv/Iprobe matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// World is a simulated MPI job: a fixed set of ranks sharing one
// engine, one latency model, and one collective-matching space
// (the equivalent of MPI_COMM_WORLD).
type World struct {
	eng   *sim.Engine
	ranks []*Rank
	lat   Latency

	worldComm *Comm

	// Perturb, when non-nil, rescales every computation interval of
	// every rank; platform noise models hook in here.
	Perturb func(r *Rank, d time.Duration) time.Duration

	started    bool
	finished   int
	finishedAt sim.Time
}

// NewWorld creates a world of size ranks on eng with latency model lat.
// Ranks are created immediately but their bodies start only at Launch.
func NewWorld(eng *sim.Engine, size int, lat Latency) *World {
	if size <= 0 {
		panic("mpi: world size must be positive")
	}
	w := &World{
		eng: eng,
		lat: lat.WithDefaults(),
	}
	w.ranks = make([]*Rank, size)
	all := make([]int, size)
	for i := 0; i < size; i++ {
		w.ranks[i] = &Rank{
			w:     w,
			id:    i,
			stack: stack.New("main"),
		}
		all[i] = i
	}
	w.worldComm = newComm(w, all)
	return w
}

// Engine returns the world's simulation engine.
func (w *World) Engine() *sim.Engine { return w.eng }

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Ranks returns all ranks in rank order.
func (w *World) Ranks() []*Rank { return w.ranks }

// Latency returns the world's latency model.
func (w *World) Latency() Latency { return w.lat }

// Launch starts every rank running body at virtual time 0 (or the
// current time if the engine has already advanced). It may be called
// once per world.
func (w *World) Launch(body func(r *Rank)) {
	if w.started {
		panic("mpi: world already launched")
	}
	w.started = true
	for _, r := range w.ranks {
		r := r
		r.proc = w.eng.SpawnNow(fmt.Sprintf("rank-%d", r.id), func(p *sim.Proc) {
			body(r)
			w.finished++
			if w.finished == len(w.ranks) {
				w.finishedAt = w.eng.Now()
			}
		})
	}
}

// Done reports whether every rank's body has returned.
func (w *World) Done() bool { return w.started && w.finished == len(w.ranks) }

// Finished reports how many ranks have completed.
func (w *World) Finished() int { return w.finished }

// FinishedAt returns the virtual time at which the last rank completed
// (zero until Done).
func (w *World) FinishedAt() sim.Time { return w.finishedAt }
