package mpi

import (
	"testing"
	"time"
)

// TestBlockInfoStructuredRecv checks that a blocked receive exposes its
// peer and tag as structured fields, not just prose.
func TestBlockInfoStructuredRecv(t *testing.T) {
	eng, w := newTestWorld(t, 2)
	w.Launch(func(r *Rank) {
		if r.ID() == 0 {
			r.Recv(1, 7) // never satisfied: rank 1 sends nothing
		}
	})
	eng.RunAll()

	info := w.Rank(0).BlockInfo()
	if info.Kind != BlockedRecv {
		t.Fatalf("rank 0 kind = %v, want BlockedRecv", info.Kind)
	}
	if info.Op != "MPI_Recv" {
		t.Fatalf("Op = %q, want MPI_Recv", info.Op)
	}
	if info.Peer != 1 || info.Tag != 7 {
		t.Fatalf("Peer/Tag = %d/%d, want 1/7", info.Peer, info.Tag)
	}
	if info.Comm != NoComm {
		t.Fatalf("Comm = %d, want NoComm for a receive", info.Comm)
	}
	if len(info.WaitingFor) != 1 || info.WaitingFor[0] != 1 {
		t.Fatalf("WaitingFor = %v, want [1]", info.WaitingFor)
	}

	done := w.Rank(1).BlockInfo()
	if done.Kind != Terminated || done.Peer != NoPeer || done.Comm != NoComm {
		t.Fatalf("rank 1 info = %+v, want Terminated with sentinels", done)
	}
}

// TestBlockInfoDistinguishesBarriers is the regression test for the
// BlockInfo gap: two ranks parked in *different* Barrier instances on
// the *same* communicator used to produce identical structured state
// (same Kind, same Op) and were only distinguishable by prose. With Seq
// exposed they must differ.
func TestBlockInfoDistinguishesBarriers(t *testing.T) {
	eng, w := newTestWorld(t, 2)
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Barrier() // ordinary barrier, seq 0, blocks forever
		case 1:
			r.DesyncCollective(CollBarrier) // orphan barrier, reserved seq
		}
	})
	eng.RunAll()
	if w.Done() {
		t.Fatal("world completed; expected a collective mismatch hang")
	}

	a := w.Rank(0).BlockInfo()
	b := w.Rank(1).BlockInfo()
	for i, info := range []BlockInfo{a, b} {
		if info.Kind != BlockedCollective {
			t.Fatalf("rank %d kind = %v, want BlockedCollective", i, info.Kind)
		}
		if info.Op != "MPI_Barrier" {
			t.Fatalf("rank %d Op = %q, want MPI_Barrier", i, info.Op)
		}
		if info.Comm != 0 {
			t.Fatalf("rank %d Comm = %d, want world comm 0", i, info.Comm)
		}
	}
	// The load-bearing assertion: same op, same comm, different instance.
	if a.Seq == b.Seq {
		t.Fatalf("both barriers report seq %d; different instances must differ", a.Seq)
	}
	if b.Seq < orphanSeqBase {
		t.Fatalf("desynced barrier seq = %d, want >= orphanSeqBase", b.Seq)
	}
	// Each side is waiting for the other — the mutual cross-wait the
	// collective-mismatch classifier keys on.
	if len(a.WaitingFor) != 1 || a.WaitingFor[0] != 1 {
		t.Fatalf("rank 0 WaitingFor = %v, want [1]", a.WaitingFor)
	}
	if len(b.WaitingFor) != 1 || b.WaitingFor[0] != 0 {
		t.Fatalf("rank 1 WaitingFor = %v, want [0]", b.WaitingFor)
	}
}

// TestBlockInfoCommIDs checks that the same collective on different
// communicators is distinguishable by Comm, and that derived-comm IDs
// are deterministic (world = 0, derived count up in creation order).
func TestBlockInfoCommIDs(t *testing.T) {
	eng, w := newTestWorld(t, 4)
	if got := w.worldComm.ID(); got != 0 {
		t.Fatalf("world comm ID = %d, want 0", got)
	}
	var lo, hi *Comm
	w.Launch(func(r *Rank) {
		if r.ID() == 0 {
			lo = w.NewComm([]int{0, 1})
			hi = w.NewComm([]int{2, 3})
		}
		r.Compute(time.Millisecond) // let rank 0 build the comms first
		switch r.ID() {
		case 0:
			lo.Barrier(r) // blocks: rank 1 never joins
		case 2:
			hi.Barrier(r) // blocks: rank 3 never joins
		}
	})
	eng.RunAll()

	if lo.ID() != 1 || hi.ID() != 2 {
		t.Fatalf("derived comm IDs = %d, %d; want 1, 2", lo.ID(), hi.ID())
	}
	a := w.Rank(0).BlockInfo()
	b := w.Rank(2).BlockInfo()
	if a.Kind != BlockedCollective || b.Kind != BlockedCollective {
		t.Fatalf("kinds = %v, %v; want BlockedCollective", a.Kind, b.Kind)
	}
	if a.Op != b.Op || a.Seq != b.Seq {
		t.Fatalf("expected identical op and seq across comms, got %+v vs %+v", a, b)
	}
	if a.Comm == b.Comm {
		t.Fatalf("both barriers report comm %d; different communicators must differ", a.Comm)
	}
	if a.Comm != 1 || b.Comm != 2 {
		t.Fatalf("Comm IDs = %d, %d; want 1, 2", a.Comm, b.Comm)
	}
}

// TestDesyncCollectiveResetReclaims checks that World.Reset reclaims an
// orphan collective op left by DesyncCollective, so injection campaigns
// reusing a world do not leak pooled state.
func TestDesyncCollectiveResetReclaims(t *testing.T) {
	eng, w := newTestWorld(t, 2)
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Barrier()
		case 1:
			r.DesyncCollective(CollAllreduce)
		}
	})
	eng.RunAll()
	if len(w.worldComm.colls) == 0 {
		t.Fatal("expected in-flight collective ops before reset")
	}
	w.Reset(Latency{})
	if len(w.worldComm.colls) != 0 {
		t.Fatalf("reset left %d in-flight ops", len(w.worldComm.colls))
	}
	// The reset world must run a clean job to completion.
	w.Launch(func(r *Rank) { r.Barrier() })
	eng.RunAll()
	if !w.Done() {
		t.Fatal("world did not complete after reset")
	}
}
