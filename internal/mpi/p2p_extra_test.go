package mpi

import (
	"testing"
	"time"

	"parastack/internal/sim"
	"parastack/internal/stack"
)

func TestSsendBlocksUntilMatched(t *testing.T) {
	eng := sim.NewEngine(1)
	w := NewWorld(eng, 2, Latency{})
	var sendDone sim.Time
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Ssend(1, 7, 4096)
			sendDone = r.Now()
		case 1:
			r.Compute(2 * time.Second)
			r.SsendMatch(0, 7)
		}
	})
	eng.RunAll()
	if !w.Done() {
		t.Fatal("ssend exchange did not complete")
	}
	if sendDone < 2*time.Second {
		t.Fatalf("Ssend returned at %v, before the receive at 2s", sendDone)
	}
}

func TestSsendHeadToHeadDeadlock(t *testing.T) {
	// The classic: both ranks synchronous-send first. Neither receive
	// is ever posted, so both block IN_MPI forever.
	eng := sim.NewEngine(2)
	w := NewWorld(eng, 2, Latency{})
	w.Launch(func(r *Rank) {
		peer := 1 - r.ID()
		r.Ssend(peer, 0, 1024)
		r.SsendMatch(peer, 0)
	})
	eng.Run(time.Minute)
	if w.Done() {
		t.Fatal("head-to-head Ssend completed; it must deadlock")
	}
	for _, r := range w.Ranks() {
		if r.Stack().State() != stack.InMPI {
			t.Fatalf("rank %d not IN_MPI during Ssend deadlock", r.ID())
		}
	}
}

func TestProbeBlocksUntilMessage(t *testing.T) {
	eng := sim.NewEngine(3)
	w := NewWorld(eng, 2, Latency{})
	var probedAt sim.Time
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Probe(1, 5)
			probedAt = r.Now()
			r.Recv(1, 5)
		case 1:
			r.Compute(3 * time.Second)
			r.Send(0, 5, 64)
		}
	})
	eng.RunAll()
	if !w.Done() {
		t.Fatal("probe+recv did not complete")
	}
	if probedAt < 3*time.Second {
		t.Fatalf("Probe returned at %v before the message existed", probedAt)
	}
}

func TestWaitanyReturnsFirstCompletion(t *testing.T) {
	eng := sim.NewEngine(4)
	w := NewWorld(eng, 3, Latency{})
	var first int
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			qs := []*Request{r.Irecv(1, 0), r.Irecv(2, 0)}
			first = r.Waitany(qs)
			r.Wait(qs[1-first])
		case 1:
			r.Compute(5 * time.Second) // slow sender
			r.Send(0, 0, 8)
		case 2:
			r.Compute(time.Second) // fast sender
			r.Send(0, 0, 8)
		}
	})
	eng.RunAll()
	if !w.Done() {
		t.Fatal("waitany flow did not complete")
	}
	if first != 1 {
		t.Fatalf("Waitany returned index %d, want 1 (the fast sender's request)", first)
	}
}

func TestWaitanySimultaneousCompletions(t *testing.T) {
	// Two messages arriving at the same instant must not double-wake.
	eng := sim.NewEngine(5)
	w := NewWorld(eng, 3, Latency{Jitter: 1e-9})
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			qs := []*Request{r.Irecv(1, 0), r.Irecv(2, 0)}
			i := r.Waitany(qs)
			r.Wait(qs[1-i])
		default:
			r.Send(0, 0, 8)
		}
	})
	eng.RunAll()
	if !w.Done() {
		t.Fatal("simultaneous completions hung Waitany")
	}
}

func TestWaitallTimeout(t *testing.T) {
	eng := sim.NewEngine(6)
	w := NewWorld(eng, 2, Latency{})
	var timedOut, eventually bool
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			q := r.Irecv(1, 0)
			timedOut = !r.WaitallTimeout([]*Request{q}, 500*time.Millisecond)
			eventually = r.WaitallTimeout([]*Request{q}, time.Minute)
		case 1:
			r.Compute(2 * time.Second)
			r.Send(0, 0, 8)
		}
	})
	eng.RunAll()
	if !timedOut {
		t.Fatal("WaitallTimeout(500ms) should have timed out")
	}
	if !eventually {
		t.Fatal("second WaitallTimeout should have succeeded")
	}
}

func TestBarrierize(t *testing.T) {
	eng := sim.NewEngine(7)
	w := NewWorld(eng, 4, Latency{})
	maxPhase0 := sim.Time(0)
	minPhase1 := sim.Time(1 << 62)
	w.Launch(func(r *Rank) {
		r.Barrierize(func() {
			r.Compute(time.Duration(r.ID()+1) * 100 * time.Millisecond)
			if r.Now() > maxPhase0 {
				maxPhase0 = r.Now()
			}
		})
		if r.Now() < minPhase1 {
			minPhase1 = r.Now()
		}
	})
	eng.RunAll()
	if minPhase1 < maxPhase0 {
		t.Fatalf("barrier violated: phase1 started at %v before phase0 ended at %v",
			minPhase1, maxPhase0)
	}
}
