package mpi

import (
	"testing"
	"time"

	"parastack/internal/sim"
	"parastack/internal/stack"
)

func newTestWorld(t *testing.T, size int) (*sim.Engine, *World) {
	t.Helper()
	eng := sim.NewEngine(1)
	return eng, NewWorld(eng, size, Latency{})
}

func TestSendRecvBlocking(t *testing.T) {
	eng, w := newTestWorld(t, 2)
	var got int
	var recvAt sim.Time
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Compute(10 * time.Millisecond)
			r.Send(1, 7, 1024)
		case 1:
			got = r.Recv(0, 7)
			recvAt = r.Now()
		}
	})
	eng.RunAll()
	if !w.Done() {
		t.Fatal("world did not complete")
	}
	if got != 1024 {
		t.Fatalf("received %d bytes, want 1024", got)
	}
	if recvAt < 10*time.Millisecond {
		t.Fatalf("receive completed at %v, before the send at 10ms", recvAt)
	}
}

func TestRecvBeforeSend(t *testing.T) {
	// Receiver posts first and must block until the sender shows up.
	eng, w := newTestWorld(t, 2)
	var recvAt sim.Time
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Recv(1, 0)
			recvAt = r.Now()
		case 1:
			r.Compute(time.Second)
			r.Send(0, 0, 8)
		}
	})
	eng.RunAll()
	if recvAt < time.Second {
		t.Fatalf("recv returned at %v, want >= 1s", recvAt)
	}
}

func TestMessageOrderingFIFO(t *testing.T) {
	// Messages between one (src, dst) pair with the same tag must be
	// received in send order.
	eng, w := newTestWorld(t, 2)
	var sizes []int
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			for i := 1; i <= 5; i++ {
				r.Send(1, 0, i*100)
			}
		case 1:
			for i := 0; i < 5; i++ {
				sizes = append(sizes, r.Recv(0, 0))
			}
		}
	})
	eng.RunAll()
	for i, s := range sizes {
		if s != (i+1)*100 {
			t.Fatalf("messages reordered: %v", sizes)
		}
	}
}

func TestTagMatching(t *testing.T) {
	eng, w := newTestWorld(t, 2)
	var first, second int
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 5, 500)
			r.Send(1, 9, 900)
		case 1:
			// Receive tag 9 first even though tag 5 was sent earlier.
			first = r.Recv(0, 9)
			second = r.Recv(0, 5)
		}
	})
	eng.RunAll()
	if first != 900 || second != 500 {
		t.Fatalf("tag matching failed: first=%d second=%d", first, second)
	}
}

func TestAnySourceWildcard(t *testing.T) {
	eng, w := newTestWorld(t, 3)
	var got []int
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			for i := 0; i < 2; i++ {
				got = append(got, r.Recv(AnySource, AnyTag))
			}
		default:
			r.Compute(time.Duration(r.ID()) * time.Millisecond)
			r.Send(0, r.ID(), r.ID()*1000)
		}
	})
	eng.RunAll()
	if len(got) != 2 || got[0]+got[1] != 3000 {
		t.Fatalf("wildcard receive got %v", got)
	}
}

func TestIsendIrecvWait(t *testing.T) {
	eng, w := newTestWorld(t, 2)
	var done bool
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			q := r.Isend(1, 3, 64)
			r.Compute(5 * time.Millisecond)
			r.Wait(q)
		case 1:
			q := r.Irecv(0, 3)
			r.Compute(time.Millisecond)
			r.Wait(q)
			done = true
		}
	})
	eng.RunAll()
	if !done {
		t.Fatal("irecv+wait did not complete")
	}
}

func TestBusyWaitTestLoop(t *testing.T) {
	// The paper's third communication style: Irecv + MPI_Test busy loop.
	eng, w := newTestWorld(t, 2)
	tests := 0
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Compute(20 * time.Millisecond)
			r.Send(1, 0, 32)
		case 1:
			q := r.Irecv(0, 0)
			for !r.Test(q) {
				tests++
				r.Spin(time.Millisecond)
			}
		}
	})
	eng.RunAll()
	if !w.Done() {
		t.Fatal("busy-wait loop did not complete")
	}
	if tests < 10 {
		t.Fatalf("expected many test iterations, got %d", tests)
	}
}

func TestIprobe(t *testing.T) {
	eng, w := newTestWorld(t, 2)
	var before, after bool
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			before = r.Iprobe(1, 0)
			r.Compute(2 * time.Second)
			after = r.Iprobe(1, 0)
			r.Recv(1, 0)
		case 1:
			r.Compute(time.Second)
			r.Send(0, 0, 16)
		}
	})
	eng.RunAll()
	if before {
		t.Fatal("Iprobe saw a message before it was sent")
	}
	if !after {
		t.Fatal("Iprobe missed an arrived message")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	eng, w := newTestWorld(t, 8)
	var exits []sim.Time
	w.Launch(func(r *Rank) {
		r.Compute(time.Duration(r.ID()) * 10 * time.Millisecond)
		r.Barrier()
		exits = append(exits, r.Now())
	})
	eng.RunAll()
	if len(exits) != 8 {
		t.Fatalf("exits = %v", exits)
	}
	// Nobody may leave before the slowest rank (70ms) entered.
	for _, e := range exits {
		if e < 70*time.Millisecond {
			t.Fatalf("rank left barrier at %v, before last arrival at 70ms", e)
		}
	}
}

func TestAllreduceStateDuringWait(t *testing.T) {
	// While blocked in a collective, a rank must sample as IN_MPI.
	eng, w := newTestWorld(t, 4)
	w.Launch(func(r *Rank) {
		if r.ID() == 0 {
			r.Compute(time.Second)
		}
		r.Allreduce(8)
	})
	eng.Run(500 * time.Millisecond)
	inMPI := 0
	for _, r := range w.Ranks() {
		if r.InMPI() {
			inMPI++
		}
	}
	if inMPI != 3 {
		t.Fatalf("at t=500ms, %d ranks IN_MPI, want 3 (rank 0 still computing)", inMPI)
	}
	if w.Rank(0).InMPI() {
		t.Fatal("rank 0 should be computing (OUT_MPI)")
	}
	eng.RunAll()
	if !w.Done() {
		t.Fatal("allreduce did not complete")
	}
}

func TestGatherRootWaitsNonRootsLeave(t *testing.T) {
	eng, w := newTestWorld(t, 4)
	var rootDone, fastDone sim.Time
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Gather(0, 64)
			rootDone = r.Now()
		case 3:
			r.Compute(time.Second) // straggler
			r.Gather(0, 64)
		default:
			r.Gather(0, 64)
			if r.ID() == 1 {
				fastDone = r.Now()
			}
		}
	})
	eng.RunAll()
	if rootDone < time.Second {
		t.Fatalf("root finished gather at %v, before straggler entered", rootDone)
	}
	if fastDone >= time.Second {
		t.Fatalf("non-root stuck in gather until %v; gather must not synchronize non-roots", fastDone)
	}
}

func TestBcastNonRootsWaitForRoot(t *testing.T) {
	eng, w := newTestWorld(t, 4)
	var nonRootDone, rootDone sim.Time
	w.Launch(func(r *Rank) {
		if r.ID() == 0 {
			r.Compute(time.Second)
			r.Bcast(0, 1024)
			rootDone = r.Now()
		} else {
			r.Bcast(0, 1024)
			if r.ID() == 1 {
				nonRootDone = r.Now()
			}
		}
	})
	eng.RunAll()
	if nonRootDone < time.Second {
		t.Fatalf("non-root left bcast at %v before root entered at 1s", nonRootDone)
	}
	if rootDone > 1100*time.Millisecond {
		t.Fatalf("root lingered in bcast until %v", rootDone)
	}
}

func TestCollectiveMismatchPanics(t *testing.T) {
	eng, w := newTestWorld(t, 2)
	panicked := make(chan any, 2)
	w.Launch(func(r *Rank) {
		defer func() {
			if p := recover(); p != nil {
				panicked <- p
				// Re-park forever so the engine handoff stays sane.
				r.Proc().Suspend()
			}
		}()
		if r.ID() == 0 {
			r.Barrier()
		} else {
			r.Allreduce(8)
		}
	})
	eng.RunAll()
	select {
	case <-panicked:
	default:
		t.Fatal("mismatched collectives must panic")
	}
}

func TestCommunicationDeadlockLeavesRanksInMPI(t *testing.T) {
	// A missing send: rank 1 waits forever. This is the
	// communication-error hang of the paper — all ranks end IN_MPI.
	eng, w := newTestWorld(t, 4)
	w.Launch(func(r *Rank) {
		if r.ID() == 1 {
			r.Recv(0, 99) // never sent
		}
		r.Barrier()
	})
	end := eng.Run(time.Minute)
	if w.Done() {
		t.Fatal("deadlocked world reported done")
	}
	for _, r := range w.Ranks() {
		if !r.InMPI() {
			t.Fatalf("rank %d is %v during a communication deadlock, want IN_MPI",
				r.ID(), r.Stack().State())
		}
	}
	_ = end
}

func TestComputationHangLeavesFaultyRankOut(t *testing.T) {
	// Rank 2 hangs in user code; everyone else piles into the barrier.
	eng, w := newTestWorld(t, 4)
	w.Launch(func(r *Rank) {
		if r.ID() == 2 {
			r.Call("buggy_kernel", func() {
				r.Compute(5 * time.Millisecond)
				r.HangForever()
			})
		}
		r.Barrier()
	})
	eng.Run(time.Minute)
	for _, r := range w.Ranks() {
		want := stack.InMPI
		if r.ID() == 2 {
			want = stack.OutMPI
		}
		if r.Stack().State() != want {
			t.Fatalf("rank %d state = %v, want %v", r.ID(), r.Stack().State(), want)
		}
	}
	if w.Rank(2).Stack().Top() != "buggy_kernel" {
		t.Fatalf("faulty rank's top frame = %q, want buggy_kernel", w.Rank(2).Stack().Top())
	}
}

func TestAlltoallScalesWithBytes(t *testing.T) {
	run := func(bytes int) sim.Time {
		eng := sim.NewEngine(1)
		w := NewWorld(eng, 16, Latency{Jitter: 0.0001})
		w.Launch(func(r *Rank) { r.Alltoall(bytes) })
		return eng.RunAll()
	}
	small := run(1 << 10)
	large := run(1 << 26)
	if large < 10*small {
		t.Fatalf("alltoall with 64MB (%v) not much slower than 1KB (%v)", large, small)
	}
}

func TestWorldDeterminism(t *testing.T) {
	run := func() sim.Time {
		eng := sim.NewEngine(99)
		w := NewWorld(eng, 32, Latency{})
		w.Launch(func(r *Rank) {
			for i := 0; i < 10; i++ {
				r.Compute(time.Duration(1+eng.Rand().Intn(5)) * time.Millisecond)
				r.SendRecv((r.ID()+1)%32, 0, 4096, (r.ID()+31)%32, 0)
				r.Allreduce(8)
			}
		})
		return eng.RunAll()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different end times: %v vs %v", a, b)
	}
}

func TestPerturbHookScalesCompute(t *testing.T) {
	eng, w := newTestWorld(t, 1)
	w.Perturb = func(r *Rank, d time.Duration) time.Duration { return 3 * d }
	var done sim.Time
	w.Launch(func(r *Rank) {
		r.Compute(100 * time.Millisecond)
		done = r.Now()
	})
	eng.RunAll()
	if done != 300*time.Millisecond {
		t.Fatalf("perturbed compute finished at %v, want 300ms", done)
	}
}

func TestStackInMPIOnlyDuringCalls(t *testing.T) {
	eng, w := newTestWorld(t, 2)
	w.Launch(func(r *Rank) {
		if r.InMPI() {
			t.Error("rank started IN_MPI")
		}
		if r.ID() == 0 {
			r.Send(1, 0, 8)
		} else {
			r.Recv(0, 0)
		}
		if r.InMPI() {
			t.Error("rank still IN_MPI after blocking call returned")
		}
	})
	eng.RunAll()
}

func BenchmarkHaloExchangeRing64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(int64(i))
		w := NewWorld(eng, 64, Latency{})
		w.Launch(func(r *Rank) {
			for it := 0; it < 10; it++ {
				r.Compute(time.Millisecond)
				r.SendRecv((r.ID()+1)%64, 0, 8192, (r.ID()+63)%64, 0)
			}
		})
		eng.RunAll()
	}
}

func BenchmarkAllreduce256(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(int64(i))
		w := NewWorld(eng, 256, Latency{})
		w.Launch(func(r *Rank) {
			for it := 0; it < 5; it++ {
				r.Compute(time.Millisecond)
				r.Allreduce(64)
			}
		})
		eng.RunAll()
	}
}
