package mpi

import (
	"testing"
	"time"

	"parastack/internal/sim"
	"parastack/internal/stack"
)

func TestParallelRegionJoins(t *testing.T) {
	eng := sim.NewEngine(1)
	w := NewWorld(eng, 2, Latency{})
	var joinedAt sim.Time
	w.Launch(func(r *Rank) {
		if r.ID() == 0 {
			r.ParallelRegion(4, func(th *Thread) {
				th.Compute(time.Duration(th.ID()+1) * 100 * time.Millisecond)
			})
			joinedAt = r.Now()
		}
		r.Barrier()
	})
	eng.RunAll()
	if !w.Done() {
		t.Fatal("hybrid world did not complete")
	}
	// Join must wait for the slowest worker (400ms).
	if joinedAt != 400*time.Millisecond {
		t.Fatalf("joined at %v, want 400ms", joinedAt)
	}
}

func TestParallelRegionMasterOutMPI(t *testing.T) {
	eng := sim.NewEngine(2)
	w := NewWorld(eng, 1, Latency{})
	w.Launch(func(r *Rank) {
		r.ParallelRegion(2, func(th *Thread) {
			th.Compute(time.Second)
		})
	})
	eng.Run(500 * time.Millisecond)
	r := w.Rank(0)
	if r.Observe().State != stack.OutMPI {
		t.Fatal("master inside a compute-only parallel region must be OUT_MPI")
	}
	if r.Stack().Top() != "omp_parallel_region" {
		t.Fatalf("master top frame = %q", r.Stack().Top())
	}
	eng.RunAll()
}

func TestThreadDeadlockStallsRank(t *testing.T) {
	// The paper's §1 thread-level local deadlock: one worker never
	// returns, the region never joins, the rank samples OUT_MPI forever
	// while its peers pile into the barrier — a computation-error hang.
	eng := sim.NewEngine(3)
	w := NewWorld(eng, 4, Latency{})
	w.Launch(func(r *Rank) {
		for it := 0; it < 10; it++ {
			r.ParallelRegion(2, func(th *Thread) {
				if r.ID() == 1 && it == 3 && th.ID() == 1 {
					th.HangForever()
				}
				th.Compute(10 * time.Millisecond)
			})
			r.Barrier()
		}
	})
	eng.Run(time.Minute)
	if w.Done() {
		t.Fatal("deadlocked hybrid world completed")
	}
	if got := w.Rank(1).Observe().State; got != stack.OutMPI {
		t.Fatalf("stalled hybrid rank state = %v, want OUT_MPI", got)
	}
	for _, id := range []int{0, 2, 3} {
		if got := w.Rank(id).Observe().State; got != stack.InMPI {
			t.Fatalf("rank %d state = %v, want IN_MPI", id, got)
		}
	}
}

func TestObserveMergesThreadState(t *testing.T) {
	// Direct check of the §6 rule with a synthetic thread stack.
	eng := sim.NewEngine(4)
	w := NewWorld(eng, 1, Latency{})
	r := w.Rank(0)
	th := &Thread{rank: r, id: 0, stk: stack.New("thread_main")}
	r.threads = append(r.threads, th)
	if r.Observe().State != stack.OutMPI {
		t.Fatal("all threads out of MPI must observe OUT_MPI")
	}
	th.stk.Push("MPI_Allreduce")
	tr := r.Observe()
	if tr.State != stack.InMPI {
		t.Fatal("one thread inside MPI must observe IN_MPI")
	}
	if tr.TopMPI != "MPI_Allreduce" {
		t.Fatalf("merged TopMPI = %q", tr.TopMPI)
	}
}

func TestNestedRegionsSequential(t *testing.T) {
	eng := sim.NewEngine(5)
	w := NewWorld(eng, 1, Latency{})
	total := 0
	w.Launch(func(r *Rank) {
		for i := 0; i < 3; i++ {
			r.ParallelRegion(3, func(th *Thread) {
				th.Call("kernel", func() { th.Compute(time.Millisecond) })
				total++
			})
		}
	})
	eng.RunAll()
	if total != 9 {
		t.Fatalf("ran %d thread bodies, want 9", total)
	}
	if eng.LiveProcs() != 0 {
		t.Fatalf("%d leaked procs", eng.LiveProcs())
	}
}
