package mpi

import (
	"time"

	"parastack/internal/sim"
	"parastack/internal/stack"
)

// Rank is one simulated MPI process. All communication methods must be
// called from the rank's own body (the function passed to Launch);
// observer methods (Stack, Proc, InMPI) may be called from anywhere in
// the simulation, e.g. by a monitor process.
type Rank struct {
	w     *World
	id    int
	name  string // cached "rank-N" spawn name, reused across World.Reset
	proc  *sim.Proc
	stack *stack.Stack

	// posted holds receive requests in post order. Retired requests
	// leave nil holes (compacted once they dominate) and postedHead
	// skips the retired prefix, so FIFO matching stays O(live) and
	// retiring the oldest receive — the common case — is O(1) instead
	// of shifting the whole queue. unexpected works the same way.
	posted      []*Request
	postedHead  int
	postedHoles int // nil entries at or after postedHead

	unexpected      []*message // delivered but unmatched messages, in delivery order
	unexpectedHead  int
	unexpectedHoles int

	msgSeq uint64 // per-rank send sequence, for deterministic tie-breaks

	// lastArrive clamps per-destination arrival times monotone so jitter
	// cannot reorder two same-pair messages in flight (MPI's
	// non-overtaking rule). Keyed by destination rank; halo patterns
	// touch a handful of peers, so the map stays tiny.
	lastArrive map[int]sim.Time

	// rng is the rank's private random stream, seeded from
	// (engine seed, rank id) at Launch. Drawing per-rank rather than
	// from the engine's global stream makes every draw a function of the
	// rank's own program order — independent of how rank executions
	// interleave, which is what keeps windowed runs bit-identical to
	// serial ones.
	rng sim.Rng

	// Per-rank object pools (see World.Reset for reclamation). Messages
	// are allocated by the sender and released by the receiver, so pool
	// populations drift between ranks but never leak; requests stay with
	// their owner. Per-rank pools keep pool traffic off any shared lock
	// during windowed execution.
	freeMsgs []*message
	freeReqs []*Request

	block blockState // what the rank last suspended on (see introspect.go)

	threads []*Thread // live worker threads of the current parallel region

	hung bool // set by HangForever; the rank never runs again
}

// message is a point-to-point message in flight or queued.
type message struct {
	src, dst, tag int
	bytes         int
	arriveAt      sim.Time
}

// getMsg pops a pooled message (fields are fully overwritten by the
// caller) or allocates one.
func (r *Rank) getMsg() *message {
	if n := len(r.freeMsgs); n > 0 {
		m := r.freeMsgs[n-1]
		r.freeMsgs[n-1] = nil
		r.freeMsgs = r.freeMsgs[:n-1]
		return m
	}
	return &message{}
}

// putMsg returns a consumed message to this rank's pool.
func (r *Rank) putMsg(m *message) { r.freeMsgs = append(r.freeMsgs, m) }

// getReq pops a pooled request or allocates one.
func (r *Rank) getReq() *Request {
	if n := len(r.freeReqs); n > 0 {
		q := r.freeReqs[n-1]
		r.freeReqs[n-1] = nil
		r.freeReqs = r.freeReqs[:n-1]
		return q
	}
	return &Request{}
}

// putReq returns a request to the rank's pool. The caller guarantees no
// outside handle to it survives (see Rank.release).
func (r *Rank) putReq(q *Request) {
	q.rank = nil
	q.isRecv = false
	q.src, q.tag = 0, 0
	q.done = false
	q.msg = nil
	q.waiter = nil
	r.freeReqs = append(r.freeReqs, q)
}

// Rand returns the rank's private deterministic random stream. Workload
// and noise code must draw per-rank randomness from it (never from
// Engine.Rand) so results do not depend on rank interleaving.
func (r *Rank) Rand() *sim.Rng { return &r.rng }

// ID returns the rank number (0-based).
func (r *Rank) ID() int { return r.id }

// World returns the world the rank belongs to.
func (r *Rank) World() *World { return r.w }

// Proc returns the simulated process backing the rank.
func (r *Rank) Proc() *sim.Proc { return r.proc }

// Stack returns the rank's simulated call stack. Observers may read it;
// only the rank itself mutates it.
func (r *Rank) Stack() *stack.Stack { return r.stack }

// InMPI reports whether the rank is currently inside an MPI call.
func (r *Rank) InMPI() bool { return r.stack.State() == stack.InMPI }

// Hung reports whether HangForever was called on this rank.
func (r *Rank) Hung() bool { return r.hung }

// Now returns current virtual time.
func (r *Rank) Now() sim.Time { return r.proc.Now() }

// Compute advances the rank through d of application computation,
// applying the world's perturbation hook (platform noise, injected
// slowdowns). The rank's stack is left untouched: whatever user frames
// the workload pushed remain visible, so the rank samples as OUT_MPI.
func (r *Rank) Compute(d time.Duration) {
	if r.w.Perturb != nil {
		d = r.w.Perturb(r, d)
	}
	r.proc.Sleep(d)
}

// Call pushes a user stack frame named name, runs fn, and pops the
// frame. Workloads use it to give their phases recognizable stacks.
func (r *Rank) Call(name string, fn func()) {
	r.stack.Push(name)
	defer r.stack.Pop()
	fn()
}

// HangForever parks the rank permanently, simulating a computation
// error (infinite loop, stuck IO, node freeze) at the current stack
// position. The rank never resumes; its stack stays frozen exactly as
// the paper's faulty process would appear to a stack sampler.
func (r *Rank) HangForever() {
	r.hung = true
	r.block = blockState{}
	r.proc.Suspend()                // never woken
	panic("mpi: hung rank resumed") // unreachable unless a bug wakes it
}

// Spin models one iteration of a user-level busy-wait loop body: a tiny
// slice of application code between request tests. It is ordinary
// computation — the rank is OUT_MPI while spinning.
func (r *Rank) Spin(d time.Duration) { r.Compute(d) }

// enterMPI pushes an MPI frame; exitMPI pops it. They are separate
// calls (rather than enterMPI returning a pop func) so the per-call
// `defer r.exitMPI()` stays an open-coded defer with no method-value
// allocation — one heap object per MPI call otherwise, the single
// largest allocation source in large campaigns.
func (r *Rank) enterMPI(name string) { r.stack.Push(name) }

// exitMPI pops the frame pushed by the matching enterMPI.
func (r *Rank) exitMPI() { r.stack.Pop() }
