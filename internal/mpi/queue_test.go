package mpi

import (
	"testing"
	"time"

	"parastack/internal/sim"
)

// TestPostedQueueFIFORewind: FIFO retires advance the head index and a
// fully drained queue rewinds to reuse its backing array, so steady
// traffic never grows the posted list.
func TestPostedQueueFIFORewind(t *testing.T) {
	eng, w := newTestWorld(t, 2)
	const msgs = 200
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			for i := 0; i < msgs; i++ {
				r.Send(1, i, 64)
			}
		case 1:
			for i := 0; i < msgs; i++ {
				r.Recv(0, i)
			}
		}
	})
	eng.RunAll()
	if !w.Done() {
		t.Fatal("world did not complete")
	}
	r1 := w.Rank(1)
	if len(r1.posted) != 0 || r1.postedHead != 0 || r1.postedHoles != 0 {
		t.Fatalf("posted queue not rewound: len=%d head=%d holes=%d",
			len(r1.posted), r1.postedHead, r1.postedHoles)
	}
	if cap(r1.posted) == 0 || cap(r1.posted) > msgs {
		t.Fatalf("posted backing array not reused: cap=%d", cap(r1.posted))
	}
}

// TestPostedQueueOutOfOrderCompaction: many long-lived Irecvs retired
// out of order must trigger compaction rather than letting dead slots
// accumulate, and matching must survive it.
func TestPostedQueueOutOfOrderCompaction(t *testing.T) {
	eng, w := newTestWorld(t, 2)
	const n = 128 // > compactMin so holes force a compaction
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			// Complete the even-tag receives first, then the odd ones.
			for i := 0; i < n; i += 2 {
				r.Send(1, i, 8)
			}
			r.Compute(time.Millisecond)
			for i := 1; i < n; i += 2 {
				r.Send(1, i, 8)
			}
		case 1:
			qs := make([]*Request, n)
			for i := range qs {
				qs[i] = r.Irecv(0, i)
			}
			// Wait in completion order (evens then odds): every even
			// retire but the head leaves a hole.
			for i := 0; i < n; i += 2 {
				r.Wait(qs[i])
			}
			live := len(r.posted) - r.postedHead - r.postedHoles
			if live != n/2 {
				t.Errorf("after even retires: %d live, want %d", live, n/2)
			}
			if dead := r.postedHead + r.postedHoles; dead > len(r.posted)-dead && dead > compactMin {
				t.Errorf("dead entries dominate without compaction: head=%d holes=%d len=%d",
					r.postedHead, r.postedHoles, len(r.posted))
			}
			for i := 1; i < n; i += 2 {
				r.Wait(qs[i])
			}
		}
	})
	eng.RunAll()
	if !w.Done() {
		t.Fatal("world did not complete")
	}
	r1 := w.Rank(1)
	if len(r1.posted) != 0 || r1.postedHead != 0 || r1.postedHoles != 0 {
		t.Fatalf("posted queue not drained: len=%d head=%d holes=%d",
			len(r1.posted), r1.postedHead, r1.postedHoles)
	}
}

// TestUnexpectedQueueConsumeAndRewind: consuming unexpected messages
// out of arrival order leaves holes that are swept, and a drained
// queue rewinds.
func TestUnexpectedQueueConsumeAndRewind(t *testing.T) {
	eng, w := newTestWorld(t, 2)
	const n = 100
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			for i := 0; i < n; i++ {
				r.Send(1, i, 8)
			}
		case 1:
			r.Compute(time.Millisecond) // let everything land unexpected
			// Consume high tags first: each match leaves an interior hole.
			for i := n - 1; i >= 0; i-- {
				r.Recv(0, i)
			}
		}
	})
	eng.RunAll()
	if !w.Done() {
		t.Fatal("world did not complete")
	}
	r1 := w.Rank(1)
	if len(r1.unexpected) != 0 || r1.unexpectedHead != 0 || r1.unexpectedHoles != 0 {
		t.Fatalf("unexpected queue not rewound: len=%d head=%d holes=%d",
			len(r1.unexpected), r1.unexpectedHead, r1.unexpectedHoles)
	}
}

// TestWorldResetReclaimsLeftovers: a run abandoned with posted receives
// and unexpected messages in flight (the deadlock shape) must hand
// everything back to the pools on Reset, and the reused world must
// produce a bit-identical rerun.
func TestWorldResetReclaimsLeftovers(t *testing.T) {
	eng := sim.NewEngine(3)
	w := NewWorld(eng, 4, Latency{})
	body := func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Recv(1, 99) // never sent: hangs with a posted receive
		case 1:
			r.Send(0, 7, 32) // never received: stays unexpected
			r.Recv(0, 99)    // hangs too
		default:
			r.Allreduce(64) // collective that can never complete
		}
	}
	w.Launch(body)
	eng.Run(time.Second)
	if w.Done() {
		t.Fatal("hang scenario unexpectedly completed")
	}

	firstEvents := eng.EventsFired()
	eng.Reset(3)
	w.Reset(Latency{})
	reqs, msgs := 0, 0
	for _, r := range w.Ranks() {
		reqs += len(r.freeReqs)
		msgs += len(r.freeMsgs)
	}
	if reqs == 0 {
		t.Error("Reset reclaimed no posted requests")
	}
	if msgs == 0 {
		t.Error("Reset reclaimed no messages")
	}
	if got := len(w.freeOps); got == 0 {
		t.Error("Reset reclaimed no collective ops")
	}

	w.Launch(body)
	eng.Run(time.Second)
	if w.Done() {
		t.Fatal("rerun unexpectedly completed")
	}
	if eng.EventsFired() != firstEvents {
		t.Fatalf("rerun diverged: %d events vs %d", eng.EventsFired(), firstEvents)
	}
}

// BenchmarkPostedQueueRetire pins the cost of the posted-receive queue
// under a deep backlog: one rank holds many outstanding Irecvs while
// messages drain in FIFO order. With the head-index queue each
// retire is O(1) amortized; the pre-compaction linear delete made this
// quadratic in the backlog.
func BenchmarkPostedQueueRetire(b *testing.B) {
	const backlog = 512
	eng := sim.NewEngine(1)
	w := NewWorld(eng, 2, Latency{})
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0:
			for i := 0; i < b.N; i++ {
				r.Send(1, i%backlog, 8)
			}
		case 1:
			qs := make([]*Request, 0, backlog)
			for i := 0; i < b.N; i++ {
				if len(qs) == backlog {
					for _, q := range qs {
						r.Wait(q)
					}
					qs = qs[:0]
				}
				qs = append(qs, r.Irecv(0, i%backlog))
			}
			for _, q := range qs {
				r.Wait(q)
			}
		}
	})
	b.ResetTimer()
	eng.RunAll()
}
