package mpi

import (
	"testing"
	"time"

	"parastack/internal/sim"
)

func TestSplitGridComms(t *testing.T) {
	// 4×4 grid: row communicators via color=row, key=col.
	eng := sim.NewEngine(1)
	w := NewWorld(eng, 16, Latency{})
	rows := w.Split(func(r int) int { return r / 4 }, func(r int) int { return r % 4 })
	cols := w.Split(func(r int) int { return r % 4 }, func(r int) int { return r / 4 })
	for r := 0; r < 16; r++ {
		if rows[r].Size() != 4 || cols[r].Size() != 4 {
			t.Fatalf("rank %d comm sizes %d, %d", r, rows[r].Size(), cols[r].Size())
		}
		if rows[r].RankOf(w.Rank(r)) != r%4 {
			t.Fatalf("rank %d row-comm rank = %d", r, rows[r].RankOf(w.Rank(r)))
		}
		if cols[r].RankOf(w.Rank(r)) != r/4 {
			t.Fatalf("rank %d col-comm rank = %d", r, cols[r].RankOf(w.Rank(r)))
		}
	}
	// Ranks 0..3 share a row communicator object.
	if rows[0] != rows[3] || rows[0] == rows[4] {
		t.Fatal("row communicator identity wrong")
	}
}

func TestSplitUndefinedColor(t *testing.T) {
	eng := sim.NewEngine(2)
	w := NewWorld(eng, 8, Latency{})
	comms := w.Split(func(r int) int {
		if r%2 == 0 {
			return 0
		}
		return -1 // MPI_UNDEFINED
	}, nil)
	for r := 0; r < 8; r++ {
		if r%2 == 0 && comms[r] == nil {
			t.Fatalf("even rank %d has no comm", r)
		}
		if r%2 == 1 && comms[r] != nil {
			t.Fatalf("odd rank %d unexpectedly in a comm", r)
		}
	}
}

func TestSubCommBarrierOnlySyncsMembers(t *testing.T) {
	eng := sim.NewEngine(3)
	w := NewWorld(eng, 8, Latency{})
	sub := w.NewComm([]int{0, 1, 2, 3})
	var outsiderDone, memberDone sim.Time
	w.Launch(func(r *Rank) {
		switch {
		case r.ID() < 4:
			if r.ID() == 3 {
				r.Compute(time.Second) // straggler inside the sub-comm
			}
			sub.Barrier(r)
			if r.ID() == 0 {
				memberDone = r.Now()
			}
		case r.ID() == 7:
			r.Compute(10 * time.Millisecond)
			outsiderDone = r.Now()
		}
	})
	eng.RunAll()
	if !w.Done() {
		t.Fatal("world did not complete")
	}
	if memberDone < time.Second {
		t.Fatalf("member left sub-barrier at %v before straggler", memberDone)
	}
	if outsiderDone >= time.Second {
		t.Fatal("non-member was blocked by a sub-communicator barrier")
	}
}

func TestConcurrentSubCommCollectives(t *testing.T) {
	// Row communicators run independent collectives at the same time
	// without cross-matching.
	eng := sim.NewEngine(4)
	w := NewWorld(eng, 16, Latency{})
	rows := w.Split(func(r int) int { return r / 4 }, func(r int) int { return r % 4 })
	done := 0
	w.Launch(func(r *Rank) {
		c := rows[r.ID()]
		for it := 0; it < 20; it++ {
			r.Compute(time.Duration(1+r.ID()%5) * time.Millisecond)
			c.Allreduce(r, 64)
			c.Bcast(r, it%4, 1024)
		}
		done++
	})
	eng.RunAll()
	if done != 16 {
		t.Fatalf("completed %d/16", done)
	}
}

func TestCommSendRecvRankTranslation(t *testing.T) {
	eng := sim.NewEngine(5)
	w := NewWorld(eng, 8, Latency{})
	sub := w.NewComm([]int{6, 4, 2}) // comm ranks 0,1,2 → world 6,4,2
	var got int
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 6: // comm rank 0
			sub.Send(r, 2, 9, 512) // to comm rank 2 = world rank 2
		case 2: // comm rank 2
			got = sub.Recv(r, 0, 9) // from comm rank 0 = world rank 6
		}
	})
	eng.RunAll()
	if got != 512 {
		t.Fatalf("recv got %d bytes", got)
	}
}

func TestSubCommHangVisibleInBlockInfo(t *testing.T) {
	// A member missing from a sub-communicator collective leaves the
	// others blocked; BlockInfo names the missing world rank.
	eng := sim.NewEngine(6)
	w := NewWorld(eng, 4, Latency{})
	sub := w.NewComm([]int{0, 1, 2})
	w.Launch(func(r *Rank) {
		switch r.ID() {
		case 0, 1:
			sub.Allreduce(r, 8)
		case 2:
			r.Proc().Suspend() // never arrives (simulated stuck rank)
		case 3:
			// Not a member; finishes immediately.
		}
	})
	eng.Run(time.Minute)
	info := w.Rank(0).BlockInfo()
	if info.Kind != BlockedCollective {
		t.Fatalf("kind = %v", info.Kind)
	}
	if len(info.WaitingFor) != 1 || info.WaitingFor[0] != 2 {
		t.Fatalf("WaitingFor = %v, want [2]", info.WaitingFor)
	}
}

func TestCommMembershipPanics(t *testing.T) {
	eng := sim.NewEngine(7)
	w := NewWorld(eng, 4, Latency{})
	sub := w.NewComm([]int{0, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("RankOf for non-member must panic")
		}
	}()
	sub.RankOf(w.Rank(3))
}

func TestNewCommValidation(t *testing.T) {
	eng := sim.NewEngine(8)
	w := NewWorld(eng, 4, Latency{})
	for _, bad := range [][]int{{}, {0, 0}, {9}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewComm(%v) must panic", bad)
				}
			}()
			w.NewComm(bad)
		}()
	}
}
