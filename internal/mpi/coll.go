package mpi

import (
	"fmt"

	"parastack/internal/sim"
)

// CollKind identifies a collective operation.
type CollKind int

const (
	CollBarrier CollKind = iota
	CollBcast
	CollReduce
	CollAllreduce
	CollGather
	CollAllgather
	CollScatter
	CollAlltoall
)

// String implements fmt.Stringer; values double as MPI frame names.
func (k CollKind) String() string {
	switch k {
	case CollBarrier:
		return "MPI_Barrier"
	case CollBcast:
		return "MPI_Bcast"
	case CollReduce:
		return "MPI_Reduce"
	case CollAllreduce:
		return "MPI_Allreduce"
	case CollGather:
		return "MPI_Gather"
	case CollAllgather:
		return "MPI_Allgather"
	case CollScatter:
		return "MPI_Scatter"
	case CollAlltoall:
		return "MPI_Alltoall"
	default:
		return fmt.Sprintf("CollKind(%d)", int(k))
	}
}

// syncLike reports whether the collective acts as a synchronization
// across all members: no rank can complete before every rank has
// entered. The paper's Figure 6 distinguishes exactly this property
// (MPI_Allgather is synchronization-like, MPI_Gather is not).
func (k CollKind) syncLike() bool {
	switch k {
	case CollBarrier, CollAllreduce, CollAllgather, CollAlltoall:
		return true
	default:
		return false
	}
}

// collOp tracks one in-flight collective on one communicator, matched
// across members by call sequence number (MPI orders collectives by
// call order on the communicator). Indices are communicator ranks.
// All fields are guarded by the communicator's mutex.
//
// The completion protocol is formulated so that every observable value
// is a function of per-member virtual entry times and keyed random
// draws alone — never of the real-time order in which members reach
// the op. Members of one communicator live on different engine shards
// and may enter during the same execution window in any wall order;
// tracking the max entry time (and the root's entry time) makes the
// computed release instants identical no matter who arrives "last" in
// wall time, which is what keeps windowed runs bit-identical to serial
// ones.
type collOp struct {
	kind  CollKind
	root  int // communicator rank
	bytes int

	arrived   int
	maxEnter  sim.Time // max virtual entry time over arrived members
	seen      []bool
	waiters   []*sim.Proc // members suspended inside the op (pooled backing array)
	wranks    []int       // comm ranks of waiters (rooted ops' per-waiter draws)
	rootHere  bool
	rootEnter sim.Time  // root's virtual entry time (rooted ops)
	rootWait  *sim.Proc // root suspended waiting for all (Gather/Reduce)
	left      int       // members that have completed the op
}

// getCollOp pops a pooled collective op (or allocates one) reset for a
// fresh collective of the given shape. The seen slice's backing array
// is reused when large enough.
func (w *World) getCollOp(kind CollKind, root, bytes, size int) *collOp {
	var op *collOp
	w.opMu.Lock()
	if n := len(w.freeOps); n > 0 {
		op = w.freeOps[n-1]
		w.freeOps[n-1] = nil
		w.freeOps = w.freeOps[:n-1]
	}
	w.opMu.Unlock()
	if op == nil {
		return &collOp{kind: kind, root: root, bytes: bytes, seen: make([]bool, size)}
	}
	op.kind, op.root, op.bytes = kind, root, bytes
	op.arrived, op.left = 0, 0
	op.maxEnter, op.rootEnter = 0, 0
	op.rootHere, op.rootWait = false, nil
	op.wranks = op.wranks[:0]
	if cap(op.seen) >= size {
		op.seen = op.seen[:size]
		for i := range op.seen {
			op.seen[i] = false
		}
	} else {
		op.seen = make([]bool, size)
	}
	return op
}

// putCollOp returns a finished (or torn-down) op to the pool. An op
// abandoned mid-flight — a deadlocked or faulted collective reclaimed
// by World.Reset — may still hold a waiter list; its backing array goes
// back to the engine's slice pool so fault campaigns don't leak pooled
// slices.
func (w *World) putCollOp(op *collOp) {
	if op.waiters != nil {
		w.eng.PutProcSlice(op.waiters)
		op.waiters = nil
	}
	op.rootWait = nil
	w.opMu.Lock()
	w.freeOps = append(w.freeOps, op)
	w.opMu.Unlock()
}

// collSalt keys collective latency draws apart from every other
// derivation of the engine seed (rank streams use rankStreamSalt).
const collSalt = 0x636c // "cl"

// collDraw returns the keyed one-shot uniform for a collective latency:
// a pure function of (engine seed, communicator, call sequence, salt),
// so the draw is identical no matter which member happens to evaluate
// it, or in which execution mode. Rooted collectives salt per waiter
// (comm rank + 1); the op-wide draws use salt 0.
func (c *Comm) collDraw(seq, salt uint64) sim.Fixed {
	return sim.Fixed(sim.UniformFrom(uint64(c.w.eng.Seed()), collSalt, uint64(c.id), seq, salt))
}

// collective runs one collective call for member r of communicator c.
// bytes is the per-rank payload size; root is a communicator rank. It
// blocks according to the collective's dependence structure and charges
// the latency model on completion. All internal waits are raw
// (penalty-free) absolute sleeps: tracing penalty is consumed only by
// program-order computation sleeps, an accounting that cannot depend on
// which member a wake happens to route through.
func (c *Comm) collective(r *Rank, kind CollKind, root, bytes int) {
	r.enterMPI(kind.String())
	defer r.exitMPI()

	me := c.RankOf(r)
	w := c.w
	size := c.Size()
	now := r.proc.Now()

	c.mu.Lock()
	seq := c.collSeq[r.ID()]
	c.collSeq[r.ID()]++
	op, ok := c.colls[seq]
	if !ok {
		op = w.getCollOp(kind, root, bytes, size)
		c.colls[seq] = op
	}
	if op.kind != kind || op.root != root {
		c.mu.Unlock()
		panic(fmt.Sprintf("mpi: collective mismatch at seq %d: rank %d called %s(root=%d), expected %s(root=%d)",
			seq, r.id, kind, root, op.kind, op.root))
	}
	if op.seen[me] {
		c.mu.Unlock()
		panic(fmt.Sprintf("mpi: rank %d entered collective seq %d twice", r.id, seq))
	}
	op.seen[me] = true
	op.arrived++
	if bytes > op.bytes {
		op.bytes = bytes
	}
	if now > op.maxEnter {
		op.maxEnter = now
	}

	if op.kind.syncLike() {
		if op.arrived == size {
			// Whole membership is in: the release instant is the latest
			// entry plus one keyed draw — the same value any member would
			// compute. This member fans out the wakes and waits to the
			// same instant itself.
			releaseAt := op.maxEnter + w.lat.collective(c.collDraw(seq, 0), kind, op.bytes, size)
			r.proc.WakeAllAt(releaseAt, op.waiters)
			op.waiters = nil // ownership passed to the engine
			c.mu.Unlock()
			r.proc.SleepUntil(releaseAt)
		} else {
			if op.waiters == nil {
				op.waiters = w.eng.GetProcSlice(size - 1)
			}
			op.waiters = append(op.waiters, r.proc)
			r.block = blockState{kind: BlockedCollective, seq: seq, comm: c, coll: kind}
			c.mu.Unlock()
			r.proc.Suspend()
			r.block = blockState{}
		}
		c.mu.Lock()
		c.finishLocked(seq, op)
		c.mu.Unlock()
		return
	}

	switch kind {
	case CollBcast, CollScatter:
		// Non-roots depend on the root; the root leaves immediately
		// after injecting its payload. A waiter's release instant is
		// max(its entry, the root's entry) plus its own keyed draw —
		// computed identically whether the waiter found the root already
		// present or is released by the root's fan-out below.
		if me == root {
			op.rootHere = true
			op.rootEnter = now
			for i, q := range op.waiters {
				at := q.Now() // waiter's entry time; frozen while it is parked
				if at < now {
					at = now
				}
				at += w.lat.collective(c.collDraw(seq, uint64(op.wranks[i])+1), kind, op.bytes, size)
				r.proc.WakePeerAt(q, at)
			}
			if op.waiters != nil {
				w.eng.PutProcSlice(op.waiters)
				op.waiters = nil
			}
			op.wranks = op.wranks[:0]
			c.mu.Unlock()
			r.proc.Sleep(w.lat.SendOverhead)
		} else if op.rootHere {
			at := now
			if at < op.rootEnter {
				at = op.rootEnter
			}
			at += w.lat.collective(c.collDraw(seq, uint64(me)+1), kind, op.bytes, size)
			c.mu.Unlock()
			r.proc.SleepUntil(at)
		} else {
			if op.waiters == nil {
				op.waiters = w.eng.GetProcSlice(size - 1)
			}
			op.waiters = append(op.waiters, r.proc)
			op.wranks = append(op.wranks, me)
			r.block = blockState{kind: BlockedCollective, seq: seq, comm: c, coll: kind}
			c.mu.Unlock()
			r.proc.Suspend()
			r.block = blockState{}
		}
	case CollGather, CollReduce:
		// The root depends on everyone; non-roots deposit and leave. The
		// root's release is the latest entry plus the op's keyed draw,
		// identical whether the root computes it directly (everyone was
		// in when it arrived) or the final depositor computes it for the
		// suspended root.
		if me == root {
			if op.arrived == size {
				at := op.maxEnter + w.lat.collective(c.collDraw(seq, 0), kind, op.bytes, size)
				c.mu.Unlock()
				r.proc.SleepUntil(at)
			} else {
				op.rootWait = r.proc
				r.block = blockState{kind: BlockedCollective, seq: seq, comm: c, coll: kind}
				c.mu.Unlock()
				r.proc.Suspend()
				r.block = blockState{}
			}
		} else {
			if op.rootWait != nil && op.arrived == size {
				at := op.maxEnter + w.lat.collective(c.collDraw(seq, 0), kind, op.bytes, size)
				r.proc.WakePeerAt(op.rootWait, at)
				op.rootWait = nil
			}
			c.mu.Unlock()
			r.proc.Sleep(w.lat.SendOverhead)
		}
	default:
		c.mu.Unlock()
		panic("mpi: unhandled collective kind " + kind.String())
	}

	c.mu.Lock()
	c.finishLocked(seq, op)
	c.mu.Unlock()
}

// finishLocked records one member's exit from op; the last exit retires
// the op. Callers hold c.mu.
func (c *Comm) finishLocked(seq uint64, op *collOp) {
	op.left++
	if op.left == c.Size() {
		delete(c.colls, seq)
		c.w.putCollOp(op)
	}
}

// World-communicator collectives (the plain MPI_COMM_WORLD calls).

// Barrier blocks until all ranks have entered it.
func (r *Rank) Barrier() { r.w.worldComm.collective(r, CollBarrier, 0, 0) }

// Bcast broadcasts bytes from root; non-roots block until the root has
// entered, the root returns promptly.
func (r *Rank) Bcast(root, bytes int) { r.w.worldComm.collective(r, CollBcast, root, bytes) }

// Reduce reduces bytes to root; the root blocks until all ranks have
// contributed, non-roots return promptly.
func (r *Rank) Reduce(root, bytes int) { r.w.worldComm.collective(r, CollReduce, root, bytes) }

// Allreduce is the synchronization-like reduction: nobody leaves before
// everybody has entered.
func (r *Rank) Allreduce(bytes int) { r.w.worldComm.collective(r, CollAllreduce, 0, bytes) }

// Gather gathers bytes to root (root waits for all, non-roots leave).
func (r *Rank) Gather(root, bytes int) { r.w.worldComm.collective(r, CollGather, root, bytes) }

// Allgather is the synchronization-like gather.
func (r *Rank) Allgather(bytes int) { r.w.worldComm.collective(r, CollAllgather, 0, bytes) }

// Scatter distributes from root (non-roots wait for the root).
func (r *Rank) Scatter(root, bytes int) { r.w.worldComm.collective(r, CollScatter, root, bytes) }

// Alltoall is the synchronization-like total exchange; its latency
// grows superlinearly with the per-rank payload (bisection pressure),
// which is what makes FT-style transposes occupy every rank IN_MPI for
// long stretches at large problem sizes.
func (r *Rank) Alltoall(bytes int) { r.w.worldComm.collective(r, CollAlltoall, 0, bytes) }

// orphanSeqBase is the reserved collective-sequence range for desynced
// (mismatched) collectives: ordinary per-rank call counters start at 0
// and can never reach it, so an orphan op is joinable by nobody and the
// victim blocks forever.
const orphanSeqBase = uint64(1) << 63

// DesyncCollective blocks the rank forever inside an orphan instance of
// the given collective on the world communicator — the simulated
// analogue of a collective mismatch, where one rank calls MPI_Barrier
// while the rest of the job calls MPI_Allreduce. The orphan op is
// registered under a reserved sequence number (orphanSeqBase + rank) no
// ordinary call sequence ever reaches, so no other rank can complete
// it: the victim parks IN_MPI inside its own collective while everyone
// else eventually blocks in a *different* collective on the same
// communicator — exactly the state BlockInfo's Comm/Seq fields and the
// wait-for classifier's collective-mismatch rule exist to expose. It is
// an injection primitive for package fault; real workloads never call
// it. It never returns.
func (r *Rank) DesyncCollective(kind CollKind) {
	c := r.w.worldComm
	r.enterMPI(kind.String()) // never popped: the rank stays IN_MPI forever
	me := c.RankOf(r)
	seq := orphanSeqBase + uint64(r.id)
	op := r.w.getCollOp(kind, 0, 0, c.Size())
	c.mu.Lock()
	c.colls[seq] = op
	op.seen[me] = true
	op.arrived++
	if op.waiters == nil {
		op.waiters = r.w.eng.GetProcSlice(c.Size() - 1)
	}
	op.waiters = append(op.waiters, r.proc)
	r.block = blockState{kind: BlockedCollective, seq: seq, comm: c, coll: kind}
	c.mu.Unlock()
	r.proc.Suspend()                          // never woken; World.Reset reclaims the op
	panic("mpi: desynced collective resumed") // unreachable unless a bug wakes it
}
