package mpi

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"parastack/internal/sim"
)

// Property: for any random traffic schedule where every send has a
// matching receive, the world completes, every message is received
// exactly once, and per-(src,dst,tag) FIFO order holds.
func TestRandomTrafficCompletes(t *testing.T) {
	f := func(seed int64, sizeRaw, msgsRaw uint8) bool {
		size := int(sizeRaw)%6 + 2
		msgs := int(msgsRaw)%40 + 1
		rng := rand.New(rand.NewSource(seed))

		// Plan: msgs messages with random (src, dst, tag, bytes).
		type msg struct{ src, dst, tag, bytes int }
		plan := make([]msg, msgs)
		perRankSends := make([][]msg, size)
		perRankRecvs := make([][]msg, size)
		for i := range plan {
			m := msg{
				src:   rng.Intn(size),
				dst:   rng.Intn(size),
				tag:   rng.Intn(3),
				bytes: 1 + i, // payload identifies send order globally
			}
			for m.dst == m.src {
				m.dst = rng.Intn(size)
			}
			plan[i] = m
			perRankSends[m.src] = append(perRankSends[m.src], m)
			perRankRecvs[m.dst] = append(perRankRecvs[m.dst], m)
		}

		eng := sim.NewEngine(seed)
		w := NewWorld(eng, size, Latency{})
		received := make([][]int, size) // bytes values in receive order per rank
		w.Launch(func(r *Rank) {
			// Interleave: do all sends (eager, non-blocking-ish) first,
			// then post receives in the planned per-rank order. Receives
			// specify src+tag, so matching must respect FIFO per pair.
			for _, m := range perRankSends[r.ID()] {
				r.Compute(time.Duration(1+eng.Rand().Intn(3)) * time.Millisecond)
				r.Send(m.dst, m.tag, m.bytes)
			}
			for _, m := range perRankRecvs[r.ID()] {
				got := r.Recv(m.src, m.tag)
				received[r.ID()] = append(received[r.ID()], got)
			}
		})
		eng.Run(time.Hour)
		if !w.Done() {
			return false
		}
		// Every message delivered exactly once.
		seen := map[int]bool{}
		total := 0
		for _, rs := range received {
			for _, b := range rs {
				if seen[b] {
					return false
				}
				seen[b] = true
				total++
			}
		}
		if total != msgs {
			return false
		}
		// FIFO per (src, dst, tag): among messages with identical
		// (src, dst, tag), receive order must equal send order, which
		// equals ascending bytes (plan order).
		for dst, rs := range received {
			last := map[[2]int]int{}
			// Reconstruct src/tag per received payload.
			byBytes := map[int]msg{}
			for _, m := range perRankRecvs[dst] {
				byBytes[m.bytes] = m
			}
			for _, b := range rs {
				m := byBytes[b]
				key := [2]int{m.src, m.tag}
				if prev, ok := last[key]; ok && b < prev {
					return false
				}
				last[key] = b
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: any sequence of collectives executed identically by all
// ranks completes, regardless of kind mix and skews.
func TestRandomCollectiveSequenceCompletes(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		ops := int(opsRaw)%25 + 1
		rng := rand.New(rand.NewSource(seed))
		kinds := make([]CollKind, ops)
		roots := make([]int, ops)
		size := 2 + int(seed%7+7)%7 // 2..8
		for i := range kinds {
			kinds[i] = CollKind(rng.Intn(8))
			roots[i] = rng.Intn(size)
		}
		eng := sim.NewEngine(seed)
		w := NewWorld(eng, size, Latency{})
		w.Launch(func(r *Rank) {
			for i, k := range kinds {
				r.Compute(time.Duration(eng.Rand().Intn(5)) * time.Millisecond)
				switch k {
				case CollBarrier:
					r.Barrier()
				case CollBcast:
					r.Bcast(roots[i], 128)
				case CollReduce:
					r.Reduce(roots[i], 128)
				case CollAllreduce:
					r.Allreduce(128)
				case CollGather:
					r.Gather(roots[i], 128)
				case CollAllgather:
					r.Allgather(128)
				case CollScatter:
					r.Scatter(roots[i], 128)
				case CollAlltoall:
					r.Alltoall(128)
				}
			}
		})
		eng.Run(time.Hour)
		return w.Done()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
