package mpi

import (
	"fmt"
	"sort"
	"sync"
)

// Comm is a communicator: an ordered subset of the world's ranks with
// its own collective-matching space, like the result of MPI_Comm_split.
// Row and column communicators are how real HPL-style codes run their
// panel broadcasts and pivot reductions; package workload keeps its
// skeletons on explicit point-to-point for fidelity to HPL's own
// userspace collectives, but library users get the real thing here.
type Comm struct {
	w     *World
	id    int         // 0 = world comm; derived comms count up in creation order
	ranks []int       // members as world ranks, in communicator order
	index map[int]int // world rank → comm rank

	// mu guards the collective-matching state below (and every collOp
	// reached through colls): members live on different engine shards
	// and can enter collectives concurrently in a multi-worker window.
	mu      sync.Mutex
	colls   map[uint64]*collOp
	collSeq []uint64 // per member call counter, indexed by world rank
}

// newComm builds a communicator over the given world ranks (order
// defines communicator ranks).
func newComm(w *World, members []int) *Comm {
	if len(members) == 0 {
		panic("mpi: empty communicator")
	}
	c := &Comm{
		w:       w,
		ranks:   append([]int(nil), members...),
		index:   make(map[int]int, len(members)),
		colls:   make(map[uint64]*collOp),
		collSeq: make([]uint64, w.Size()),
	}
	for i, r := range c.ranks {
		if r < 0 || r >= w.Size() {
			panic(fmt.Sprintf("mpi: communicator member %d out of range", r))
		}
		if _, dup := c.index[r]; dup {
			panic(fmt.Sprintf("mpi: rank %d appears twice in communicator", r))
		}
		c.index[r] = i
	}
	if w.worldComm != nil {
		// Derived (split) communicators are per-run objects; track them
		// so World.Reset can reclaim their in-flight collective state
		// (pooled waiter slices, ops) after hung runs.
		c.id = len(w.derived) + 1
		w.derived = append(w.derived, c)
	}
	return c
}

// reset clears the communicator's collective-matching state for a new
// run, returning in-flight ops (a hung run's leftovers) to the pools.
func (c *Comm) reset() {
	for seq, op := range c.colls {
		c.w.putCollOp(op)
		delete(c.colls, seq)
	}
	for i := range c.collSeq {
		c.collSeq[i] = 0
	}
}

// NewComm creates a communicator over the given world ranks.
func (w *World) NewComm(members []int) *Comm { return newComm(w, members) }

// Split implements MPI_Comm_split: ranks with equal color end up in the
// same communicator, ordered by (key, world rank). It returns the
// communicator containing each world rank, indexed by world rank
// (ranks given a negative color — MPI_UNDEFINED — get nil).
func (w *World) Split(color, key func(worldRank int) int) []*Comm {
	type member struct{ rank, key int }
	groups := map[int][]member{}
	for r := 0; r < w.Size(); r++ {
		c := color(r)
		if c < 0 {
			continue
		}
		k := 0
		if key != nil {
			k = key(r)
		}
		groups[c] = append(groups[c], member{r, k})
	}
	out := make([]*Comm, w.Size())
	for _, ms := range groups {
		sort.Slice(ms, func(i, j int) bool {
			if ms[i].key != ms[j].key {
				return ms[i].key < ms[j].key
			}
			return ms[i].rank < ms[j].rank
		})
		ids := make([]int, len(ms))
		for i, m := range ms {
			ids[i] = m.rank
		}
		c := newComm(w, ids)
		for _, id := range ids {
			out[id] = c
		}
	}
	return out
}

// ID returns the communicator's stable identifier: 0 for the world
// communicator, and for derived communicators the 1-based creation
// order — deterministic across World.Reset because workloads recreate
// their splits in program order.
func (c *Comm) ID() int { return c.id }

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.ranks) }

// Members returns the world ranks in communicator order (do not mutate).
func (c *Comm) Members() []int { return c.ranks }

// RankOf returns r's communicator rank; it panics if r is not a member.
func (c *Comm) RankOf(r *Rank) int {
	i, ok := c.index[r.ID()]
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d is not a member of this communicator", r.ID()))
	}
	return i
}

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(commRank int) int { return c.ranks[commRank] }

// Barrier blocks until every member has entered.
func (c *Comm) Barrier(r *Rank) { c.collective(r, CollBarrier, 0, 0) }

// Bcast broadcasts from the member with communicator rank root.
func (c *Comm) Bcast(r *Rank, root, bytes int) { c.collective(r, CollBcast, root, bytes) }

// Reduce reduces to the member with communicator rank root.
func (c *Comm) Reduce(r *Rank, root, bytes int) { c.collective(r, CollReduce, root, bytes) }

// Allreduce is the synchronization-like reduction over the members.
func (c *Comm) Allreduce(r *Rank, bytes int) { c.collective(r, CollAllreduce, 0, bytes) }

// Gather gathers to root.
func (c *Comm) Gather(r *Rank, root, bytes int) { c.collective(r, CollGather, root, bytes) }

// Allgather is the synchronization-like gather.
func (c *Comm) Allgather(r *Rank, bytes int) { c.collective(r, CollAllgather, 0, bytes) }

// Scatter distributes from root.
func (c *Comm) Scatter(r *Rank, root, bytes int) { c.collective(r, CollScatter, root, bytes) }

// Alltoall is the synchronization-like total exchange over the members.
func (c *Comm) Alltoall(r *Rank, bytes int) { c.collective(r, CollAlltoall, 0, bytes) }

// Send/Recv in communicator rank space (tags share the world tag space).
func (c *Comm) Send(r *Rank, dstCommRank, tag, bytes int) {
	r.Send(c.ranks[dstCommRank], tag, bytes)
}

// Recv receives from a communicator rank (AnySource allowed).
func (c *Comm) Recv(r *Rank, srcCommRank, tag int) int {
	src := srcCommRank
	if src != AnySource {
		src = c.ranks[srcCommRank]
	}
	return r.Recv(src, tag)
}
