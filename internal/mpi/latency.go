package mpi

import (
	"math"
	"time"

	"parastack/internal/sim"
)

// Latency models the time cost of simulated communication. All fields
// have sensible InfiniBand-flavoured defaults (see withDefaults); zero
// values are replaced so Latency{} is usable.
type Latency struct {
	// SendOverhead is CPU time a sender spends inside MPI_Send for an
	// eager message (library overhead, buffer copy).
	SendOverhead time.Duration
	// RecvOverhead is CPU time spent completing a receive.
	RecvOverhead time.Duration
	// TestOverhead is CPU time spent inside MPI_Test / MPI_Iprobe
	// (driving the progress engine). Busy-wait loops therefore spend
	// most of their time IN_MPI, matching the paper's observation that
	// polling processes only occasionally sample as OUT_MPI.
	TestOverhead time.Duration
	// Base is the per-message wire latency.
	Base time.Duration
	// BytesPerSec is point-to-point bandwidth.
	BytesPerSec float64
	// CollBase is the per-tree-level latency of a collective.
	CollBase time.Duration
	// CollBytesPerSec is effective collective bandwidth (per rank).
	CollBytesPerSec float64
	// Jitter is the relative spread applied to every latency draw:
	// a value of 0.2 scales each cost by a uniform factor in [0.8, 1.2].
	Jitter float64
}

// WithDefaults fills zero fields with defaults resembling a modern
// InfiniBand cluster. Numbers need only be plausible: experiments
// depend on the shape of Sout dynamics, not on absolute bandwidth.
func (l Latency) WithDefaults() Latency {
	if l.SendOverhead == 0 {
		l.SendOverhead = 2 * time.Microsecond
	}
	if l.RecvOverhead == 0 {
		l.RecvOverhead = 2 * time.Microsecond
	}
	if l.TestOverhead == 0 {
		l.TestOverhead = 50 * time.Microsecond
	}
	if l.Base == 0 {
		l.Base = 3 * time.Microsecond
	}
	if l.BytesPerSec == 0 {
		l.BytesPerSec = 6e9
	}
	if l.CollBase == 0 {
		l.CollBase = 5 * time.Microsecond
	}
	if l.CollBytesPerSec == 0 {
		l.CollBytesPerSec = 3e9
	}
	if l.Jitter == 0 {
		l.Jitter = 0.15
	}
	return l
}

// Lookahead returns a strict lower bound on the virtual-time distance
// between an action of one rank and its earliest possible effect on
// another rank under this model: every cross-rank interaction — a
// point-to-point delivery (≥ Base) or a collective release (≥ one
// CollBase tree level) — pays at least the smaller of the two base
// latencies, derated by the worst-case jitter draw. This is the bound
// that licenses the engine's conservative windowed execution
// (sim.Engine.SetLookahead): rank groups can run independently for one
// lookahead without any possibility of interacting. A model with
// Jitter >= 1 has no usable bound and returns 0, which disables
// windowed execution.
func (l Latency) Lookahead() time.Duration {
	min := l.Base
	if l.CollBase < min {
		min = l.CollBase
	}
	lo := time.Duration(float64(min) * (1 - l.Jitter))
	if lo <= 0 {
		return 0
	}
	// One-nanosecond guard for float truncation in jittered().
	return lo - 1
}

// jittered scales d by a uniform factor in [1-Jitter, 1+Jitter].
func (l Latency) jittered(u sim.Uniform, d time.Duration) time.Duration {
	if l.Jitter <= 0 || d <= 0 {
		return d
	}
	f := 1 + l.Jitter*(2*u.Float64()-1)
	return time.Duration(float64(d) * f)
}

// p2p returns the wire latency of a point-to-point message of the given
// size.
func (l Latency) p2p(u sim.Uniform, bytes int) time.Duration {
	d := l.Base + time.Duration(float64(bytes)/l.BytesPerSec*float64(time.Second))
	return l.jittered(u, d)
}

// collective returns the completion latency of a collective after its
// dependency condition is met: a log-depth tree term plus a bandwidth
// term over the per-rank payload. Alltoall pays an additional factor
// because every rank exchanges with every other.
func (l Latency) collective(u sim.Uniform, kind CollKind, bytes, size int) time.Duration {
	depth := math.Log2(float64(size))
	if depth < 1 {
		depth = 1
	}
	d := time.Duration(depth * float64(l.CollBase))
	bw := time.Duration(float64(bytes) / l.CollBytesPerSec * float64(time.Second))
	switch kind {
	case CollAlltoall:
		// Per-rank payload crosses the bisection; cost grows with size.
		d += bw * time.Duration(int64(depth))
	case CollBarrier:
		// No payload.
	default:
		d += bw
	}
	return l.jittered(u, d)
}
