package mpi

import (
	"fmt"
	"time"

	"parastack/internal/sim"
)

// Request is a non-blocking communication handle, as returned by Isend
// and Irecv and consumed by Wait / Test.
type Request struct {
	rank *Rank

	isRecv   bool
	src, tag int // matching criteria for receives

	done   bool
	msg    *message
	waiter *sim.Proc // proc blocked in Wait on this request
}

// Done reports whether the request has completed. Unlike Test, it does
// not model the cost or the stack footprint of an MPI_Test call; it is
// for assertions and observers.
func (q *Request) Done() bool { return q.done }

// complete marks the request done at the current virtual time and wakes
// a waiter if one is parked in Wait.
func (q *Request) complete() {
	if q.done {
		panic("mpi: request completed twice")
	}
	q.done = true
	if q.waiter != nil {
		p := q.waiter
		q.waiter = nil
		// A Waitany waiter is registered on several requests; a sibling
		// completion at the same instant may already have woken it.
		if p.State() == sim.ProcSuspended {
			p.Wake()
		}
	}
}

// Send performs a blocking standard-mode send. The simulation uses
// eager semantics: the message is buffered and the call returns after
// the sender-side overhead, independent of whether a receive is posted
// (this matches small/medium messages in real MPI implementations, and
// is the style the NPB-like workloads use).
func (r *Rank) Send(dst, tag, bytes int) {
	defer r.enterMPI("MPI_Send")()
	r.startSend(dst, tag, bytes)
	r.proc.Sleep(r.w.lat.SendOverhead)
}

// Isend starts a non-blocking send and returns its request. Eager
// buffering means the request is immediately completable; Wait/Test on
// it still model their call cost.
func (r *Rank) Isend(dst, tag, bytes int) *Request {
	defer r.enterMPI("MPI_Isend")()
	r.startSend(dst, tag, bytes)
	return &Request{rank: r, done: true}
}

// startSend computes the arrival time and delivers the message to the
// destination's matching engine.
func (r *Rank) startSend(dst, tag, bytes int) {
	if dst < 0 || dst >= len(r.w.ranks) {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	m := &message{
		src:      r.id,
		tag:      tag,
		bytes:    bytes,
		arriveAt: r.proc.Now() + r.w.lat.p2p(r.w.eng.Rand(), bytes),
	}
	r.msgSeq++
	r.w.ranks[dst].deliver(m)
}

// deliver runs in the sender's context: match the message against the
// destination's posted receives (in post order), or queue it as
// unexpected.
func (dst *Rank) deliver(m *message) {
	for _, q := range dst.posted {
		if q.msg == nil && q.matches(m) {
			q.attach(m)
			return
		}
	}
	dst.unexpected = append(dst.unexpected, m)
}

// matches reports whether a posted receive accepts a message.
func (q *Request) matches(m *message) bool {
	return (q.src == AnySource || q.src == m.src) &&
		(q.tag == AnyTag || q.tag == m.tag)
}

// attach binds a message to a receive request and schedules completion
// at the message's arrival time (plus receive overhead).
func (q *Request) attach(m *message) {
	q.msg = m
	eng := q.rank.w.eng
	at := m.arriveAt + q.rank.w.lat.RecvOverhead
	if at < eng.Now() {
		at = eng.Now()
	}
	eng.At(at, q.complete)
}

// Irecv posts a non-blocking receive for (src, tag); use AnySource /
// AnyTag as wildcards. Matching follows MPI rules: posted receives
// match in post order; unexpected messages are consumed in delivery
// order per matching criteria.
func (r *Rank) Irecv(src, tag int) *Request {
	defer r.enterMPI("MPI_Irecv")()
	return r.postRecv(src, tag)
}

func (r *Rank) postRecv(src, tag int) *Request {
	q := &Request{rank: r, isRecv: true, src: src, tag: tag}
	// First try the unexpected queue.
	for i, m := range r.unexpected {
		if q.matches(m) {
			r.unexpected = append(r.unexpected[:i], r.unexpected[i+1:]...)
			q.attach(m)
			r.posted = append(r.posted, q)
			return q
		}
	}
	r.posted = append(r.posted, q)
	return q
}

// retire removes a completed request from the posted list.
func (r *Rank) retire(q *Request) {
	for i, p := range r.posted {
		if p == q {
			r.posted = append(r.posted[:i], r.posted[i+1:]...)
			return
		}
	}
}

// Recv performs a blocking receive, returning the payload size of the
// matched message. The rank stays IN_MPI (inside an MPI_Recv frame)
// until the message arrives.
func (r *Rank) Recv(src, tag int) int {
	defer r.enterMPI("MPI_Recv")()
	q := r.postRecv(src, tag)
	r.await(q)
	r.retire(q)
	return q.msg.bytes
}

// Wait blocks until the request completes (MPI_Wait).
func (r *Rank) Wait(q *Request) {
	defer r.enterMPI("MPI_Wait")()
	r.await(q)
	if q.isRecv {
		r.retire(q)
	}
}

// Waitall waits for every request in order.
func (r *Rank) Waitall(qs []*Request) {
	defer r.enterMPI("MPI_Waitall")()
	for _, q := range qs {
		r.await(q)
		if q.isRecv {
			r.retire(q)
		}
	}
}

// await parks the rank until q completes. Must run inside an MPI frame.
func (r *Rank) await(q *Request) {
	if q.rank != r {
		panic("mpi: waiting on another rank's request")
	}
	if !q.done {
		q.waiter = r.proc
		if q.isRecv {
			r.block = blockState{kind: BlockedRecv, req: q}
		}
		r.proc.Suspend()
		r.block = blockState{}
	}
}

// Test models MPI_Test: a cheap, non-blocking completion check that
// momentarily puts the rank IN_MPI (the busy-wait pattern the paper
// calls the third communication style). It retires completed receives.
func (r *Rank) Test(q *Request) bool {
	defer r.enterMPI("MPI_Test")()
	r.proc.Sleep(r.w.lat.TestOverhead)
	if q.done && q.isRecv {
		r.retire(q)
	}
	return q.done
}

// TestFor models a dense polling slice: the rank repeatedly calls
// MPI_Test back-to-back for up to the given duration (one MPI_Test
// frame covering the slice, since the loop spends nearly all its time
// inside the library) and reports whether the request completed. This
// is the cheap way to simulate HPL-style busy-wait loops whose duty
// cycle is dominated by the progress engine, without one simulation
// event per poll iteration.
func (r *Rank) TestFor(q *Request, slice time.Duration) bool {
	defer r.enterMPI("MPI_Test")()
	if q.done {
		if q.isRecv {
			r.retire(q)
		}
		return true
	}
	r.proc.Sleep(slice)
	if q.done && q.isRecv {
		r.retire(q)
	}
	return q.done
}

// Iprobe models MPI_Iprobe: check for a matching deliverable message
// without consuming it. Only messages that have already arrived
// (arrival time passed) are visible, as in a real progress engine.
func (r *Rank) Iprobe(src, tag int) bool {
	defer r.enterMPI("MPI_Iprobe")()
	r.proc.Sleep(r.w.lat.TestOverhead)
	now := r.proc.Now()
	for _, m := range r.unexpected {
		if m.arriveAt <= now &&
			(src == AnySource || src == m.src) &&
			(tag == AnyTag || tag == m.tag) {
			return true
		}
	}
	return false
}

// SendRecv exchanges messages with two peers in one call (the halo
// pattern): send to dst and receive from src, overlapping the two.
func (r *Rank) SendRecv(dst, sendTag, bytes, src, recvTag int) int {
	defer r.enterMPI("MPI_Sendrecv")()
	q := r.postRecv(src, recvTag)
	r.startSend(dst, sendTag, bytes)
	r.proc.Sleep(r.w.lat.SendOverhead)
	r.await(q)
	r.retire(q)
	return q.msg.bytes
}
