package mpi

import (
	"fmt"
	"time"

	"parastack/internal/sim"
)

// Request is a non-blocking communication handle, as returned by Isend
// and Irecv and consumed by Wait / Test.
type Request struct {
	rank *Rank

	isRecv   bool
	src, tag int // matching criteria for receives

	done   bool
	msg    *message
	waiter *sim.Proc // proc blocked in Wait on this request
}

// Done reports whether the request has completed. Unlike Test, it does
// not model the cost or the stack footprint of an MPI_Test call; it is
// for assertions and observers.
func (q *Request) Done() bool { return q.done }

// complete marks the request done at virtual time t and wakes a waiter
// if one is parked in Wait. It always runs on the owning rank's shard
// (the completion event is posted there), so the wake is shard-local.
func (q *Request) complete(t sim.Time) {
	if q.done {
		panic("mpi: request completed twice")
	}
	q.done = true
	if q.waiter != nil {
		p := q.waiter
		q.waiter = nil
		// A Waitany waiter is registered on several requests; a sibling
		// completion at the same instant may already have woken it.
		if p.State() == sim.ProcSuspended {
			p.WakeAtLocal(t)
		}
	}
}

// Send performs a blocking standard-mode send. The simulation uses
// eager semantics: the message is buffered and the call returns after
// the sender-side overhead, independent of whether a receive is posted
// (this matches small/medium messages in real MPI implementations, and
// is the style the NPB-like workloads use).
func (r *Rank) Send(dst, tag, bytes int) {
	r.enterMPI("MPI_Send")
	defer r.exitMPI()
	r.startSend(dst, tag, bytes)
	r.proc.Sleep(r.w.lat.SendOverhead)
}

// Isend starts a non-blocking send and returns its request. Eager
// buffering means the request is immediately completable; Wait/Test on
// it still model their call cost.
func (r *Rank) Isend(dst, tag, bytes int) *Request {
	r.enterMPI("MPI_Isend")
	defer r.exitMPI()
	r.startSend(dst, tag, bytes)
	// Isend handles escape to user code indefinitely, so they never
	// come from (or return to) the request pool.
	return &Request{rank: r, done: true}
}

// startSend draws the wire latency from the sender's private stream,
// clamps the arrival monotone per destination (MPI's non-overtaking
// rule: jitter must not reorder two same-pair messages in flight), and
// posts a delivery event to the destination rank's shard at the arrival
// time. Matching happens at arrival, on the receiver's shard — the
// cross-rank interaction is a timestamped event at now + p2p latency,
// which is exactly the distance the latency model's Lookahead bound
// promises the windowed engine.
func (r *Rank) startSend(dst, tag, bytes int) {
	if dst < 0 || dst >= len(r.w.ranks) {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	m := r.getMsg()
	m.src = r.id
	m.dst = dst
	m.tag = tag
	m.bytes = bytes
	at := r.proc.Now() + r.w.lat.p2p(&r.rng, bytes)
	if r.lastArrive == nil {
		r.lastArrive = make(map[int]sim.Time)
	}
	if last := r.lastArrive[dst]; at < last {
		at = last
	}
	r.lastArrive[dst] = at
	m.arriveAt = at
	r.msgSeq++
	r.proc.Post(r.w.ranks[dst].proc, at, r.w.deliverFn, m)
}

// deliverMsg is the shared delivery-event callback (see World.deliverFn):
// it fires on the destination rank's shard at the message's arrival
// time.
func (w *World) deliverMsg(t sim.Time, arg any) {
	m := arg.(*message)
	w.ranks[m.dst].deliverArrived(t, m)
}

// deliverArrived matches an arrived message against the rank's posted
// receives (in post order), or queues it as unexpected.
func (dst *Rank) deliverArrived(t sim.Time, m *message) {
	for _, q := range dst.posted[dst.postedHead:] {
		if q != nil && q.msg == nil && q.matches(m) {
			q.attach(t, m)
			return
		}
	}
	dst.unexpected = append(dst.unexpected, m)
}

// matches reports whether a posted receive accepts a message.
func (q *Request) matches(m *message) bool {
	return (q.src == AnySource || q.src == m.src) &&
		(q.tag == AnyTag || q.tag == m.tag)
}

// attach binds a message to a receive request and schedules completion
// at the message's arrival time plus receive overhead (or now, if the
// receive was posted after that instant passed). Both call sites — the
// delivery event and the rank's own postRecv — execute on the owning
// rank's shard, so the completion event is shard-local.
func (q *Request) attach(now sim.Time, m *message) {
	q.msg = m
	r := q.rank
	at := m.arriveAt + r.w.lat.RecvOverhead
	if at < now {
		at = now
	}
	r.proc.Post(r.proc, at, r.w.completeFn, q)
}

// completeReq is the shared completion-event callback (see
// World.completeFn).
func (w *World) completeReq(t sim.Time, arg any) {
	arg.(*Request).complete(t)
}

// Irecv posts a non-blocking receive for (src, tag); use AnySource /
// AnyTag as wildcards. Matching follows MPI rules: posted receives
// match in post order; unexpected messages are consumed in delivery
// order per matching criteria.
func (r *Rank) Irecv(src, tag int) *Request {
	r.enterMPI("MPI_Irecv")
	defer r.exitMPI()
	return r.postRecv(src, tag)
}

func (r *Rank) postRecv(src, tag int) *Request {
	q := r.getReq()
	q.rank = r
	q.isRecv = true
	q.src = src
	q.tag = tag
	// First try the unexpected queue.
	for i := r.unexpectedHead; i < len(r.unexpected); i++ {
		m := r.unexpected[i]
		if m != nil && q.matches(m) {
			r.consumeUnexpected(i)
			q.attach(r.proc.Now(), m)
			r.posted = append(r.posted, q)
			return q
		}
	}
	r.posted = append(r.posted, q)
	return q
}

// consumeUnexpected removes the message at index i from the unexpected
// queue, leaving a hole (or advancing the head) instead of shifting the
// tail down, so heavy unexpected traffic stays O(1) amortized.
func (r *Rank) consumeUnexpected(i int) {
	r.unexpected[i] = nil
	if i == r.unexpectedHead {
		r.unexpectedHead++
		for r.unexpectedHead < len(r.unexpected) && r.unexpected[r.unexpectedHead] == nil {
			r.unexpectedHead++
			r.unexpectedHoles--
		}
	} else {
		r.unexpectedHoles++
	}
	if r.unexpectedHead == len(r.unexpected) {
		// Queue fully drained: rewind to reuse the backing array.
		r.unexpected = r.unexpected[:0]
		r.unexpectedHead, r.unexpectedHoles = 0, 0
	} else if dead := r.unexpectedHead + r.unexpectedHoles; dead > compactMin && dead > len(r.unexpected)-dead {
		r.unexpected = compact(r.unexpected, r.unexpectedHead)
		r.unexpectedHead, r.unexpectedHoles = 0, 0
	}
}

// compactMin is the dead-entry threshold below which queues are left
// alone: tiny queues recycle their slots naturally via the head index
// reaching the end (see the len==head fast reset in retire).
const compactMin = 32

// compact slides the live entries of a holey queue down to the front of
// its backing array, nil-ing the vacated tail so pooled objects are not
// pinned. It works for any pointer-element queue.
func compact[T any](q []*T, head int) []*T {
	live := q[:0]
	for _, e := range q[head:] {
		if e != nil {
			live = append(live, e)
		}
	}
	for i := len(live); i < len(q); i++ {
		q[i] = nil
	}
	return live
}

// retire removes a completed request from the posted list. Retiring the
// oldest posted receive — the overwhelmingly common case in FIFO
// workloads — is O(1): the head index advances over it rather than the
// tail shifting down. Out-of-order retires leave holes that are swept
// once they dominate the queue.
func (r *Rank) retire(q *Request) {
	for i := r.postedHead; i < len(r.posted); i++ {
		if r.posted[i] != q {
			continue
		}
		r.posted[i] = nil
		if i == r.postedHead {
			r.postedHead++
			for r.postedHead < len(r.posted) && r.posted[r.postedHead] == nil {
				r.postedHead++
				r.postedHoles--
			}
		} else {
			r.postedHoles++
		}
		if r.postedHead == len(r.posted) {
			// Queue fully drained: rewind to reuse the backing array.
			r.posted = r.posted[:0]
			r.postedHead, r.postedHoles = 0, 0
		} else if dead := r.postedHead + r.postedHoles; dead > compactMin && dead > len(r.posted)-dead {
			r.posted = compact(r.posted, r.postedHead)
			r.postedHead, r.postedHoles = 0, 0
		}
		return
	}
}

// release returns a retired, completed request — and its attached
// message — to the rank's pools. Only the internal blocking paths
// (Recv, SendRecv, Ssend) call it: their requests never escape to user
// code, so no stale handle can observe the reuse. Requests returned by
// Irecv/Isend are never released.
func (r *Rank) release(q *Request) {
	if q.msg != nil {
		r.putMsg(q.msg)
	}
	r.putReq(q)
}

// Recv performs a blocking receive, returning the payload size of the
// matched message. The rank stays IN_MPI (inside an MPI_Recv frame)
// until the message arrives.
func (r *Rank) Recv(src, tag int) int {
	r.enterMPI("MPI_Recv")
	defer r.exitMPI()
	q := r.postRecv(src, tag)
	r.await(q)
	r.retire(q)
	bytes := q.msg.bytes
	r.release(q)
	return bytes
}

// Wait blocks until the request completes (MPI_Wait).
func (r *Rank) Wait(q *Request) {
	r.enterMPI("MPI_Wait")
	defer r.exitMPI()
	r.await(q)
	if q.isRecv {
		r.retire(q)
	}
}

// Waitall waits for every request in order.
func (r *Rank) Waitall(qs []*Request) {
	r.enterMPI("MPI_Waitall")
	defer r.exitMPI()
	for _, q := range qs {
		r.await(q)
		if q.isRecv {
			r.retire(q)
		}
	}
}

// await parks the rank until q completes. Must run inside an MPI frame.
func (r *Rank) await(q *Request) {
	if q.rank != r {
		panic("mpi: waiting on another rank's request")
	}
	if !q.done {
		q.waiter = r.proc
		if q.isRecv {
			r.block = blockState{kind: BlockedRecv, req: q}
		}
		r.proc.Suspend()
		r.block = blockState{}
	}
}

// Test models MPI_Test: a cheap, non-blocking completion check that
// momentarily puts the rank IN_MPI (the busy-wait pattern the paper
// calls the third communication style). It retires completed receives.
func (r *Rank) Test(q *Request) bool {
	r.enterMPI("MPI_Test")
	defer r.exitMPI()
	r.proc.Sleep(r.w.lat.TestOverhead)
	if q.done && q.isRecv {
		r.retire(q)
	}
	return q.done
}

// TestFor models a dense polling slice: the rank repeatedly calls
// MPI_Test back-to-back for up to the given duration (one MPI_Test
// frame covering the slice, since the loop spends nearly all its time
// inside the library) and reports whether the request completed. This
// is the cheap way to simulate HPL-style busy-wait loops whose duty
// cycle is dominated by the progress engine, without one simulation
// event per poll iteration.
func (r *Rank) TestFor(q *Request, slice time.Duration) bool {
	r.enterMPI("MPI_Test")
	defer r.exitMPI()
	if q.done {
		if q.isRecv {
			r.retire(q)
		}
		return true
	}
	r.proc.Sleep(slice)
	if q.done && q.isRecv {
		r.retire(q)
	}
	return q.done
}

// Iprobe models MPI_Iprobe: check for a matching deliverable message
// without consuming it. The unexpected queue holds only messages whose
// delivery event has fired, so everything in it has already arrived,
// as in a real progress engine.
func (r *Rank) Iprobe(src, tag int) bool {
	r.enterMPI("MPI_Iprobe")
	defer r.exitMPI()
	r.proc.Sleep(r.w.lat.TestOverhead)
	for _, m := range r.unexpected[r.unexpectedHead:] {
		if m != nil &&
			(src == AnySource || src == m.src) &&
			(tag == AnyTag || tag == m.tag) {
			return true
		}
	}
	return false
}

// SendRecv exchanges messages with two peers in one call (the halo
// pattern): send to dst and receive from src, overlapping the two.
func (r *Rank) SendRecv(dst, sendTag, bytes, src, recvTag int) int {
	r.enterMPI("MPI_Sendrecv")
	defer r.exitMPI()
	q := r.postRecv(src, recvTag)
	r.startSend(dst, sendTag, bytes)
	r.proc.Sleep(r.w.lat.SendOverhead)
	r.await(q)
	r.retire(q)
	got := q.msg.bytes
	r.release(q)
	return got
}
