package mpi

import (
	"fmt"
	"time"

	"parastack/internal/sim"
	"parastack/internal/stack"
)

// Thread is one worker thread of a hybrid (MPI+OpenMP / MPI+pthreads)
// rank, as discussed in the paper's §6. The simulation implements the
// MPI_THREAD_SINGLE / MPI_THREAD_FUNNELED levels: worker threads
// compute, only the master (the rank body itself) communicates. The
// paper's redefined runtime state — a process is IN_MPI if at least one
// of its threads is inside MPI — is what Rank.Observe reports, so the
// monitor needs no changes for hybrid applications.
type Thread struct {
	rank *Rank
	id   int
	proc *sim.Proc
	stk  *stack.Stack
}

// ID returns the thread index within its rank (0-based; the master is
// not a Thread).
func (t *Thread) ID() int { return t.id }

// Rank returns the owning rank.
func (t *Thread) Rank() *Rank { return t.rank }

// Stack returns the thread's simulated call stack.
func (t *Thread) Stack() *stack.Stack { return t.stk }

// Compute advances the thread through application computation, subject
// to the same platform perturbations as rank-level computation.
func (t *Thread) Compute(d time.Duration) {
	if t.rank.w.Perturb != nil {
		d = t.rank.w.Perturb(t.rank, d)
	}
	t.proc.Sleep(d)
}

// Call pushes a user frame around fn, like Rank.Call.
func (t *Thread) Call(name string, fn func()) {
	t.stk.Push(name)
	defer t.stk.Pop()
	fn()
}

// HangForever parks the thread permanently — the paper's "local
// deadlock within a process due to incorrect thread-level
// synchronization". The enclosing ParallelRegion never joins, so the
// whole rank stalls in application code and samples OUT_MPI.
func (t *Thread) HangForever() {
	t.stk.Push("thread_deadlock")
	t.proc.Suspend()
	panic("mpi: hung thread resumed")
}

// ParallelRegion runs an OpenMP-style fork/join region: n worker
// threads execute body concurrently (in virtual time) while the master
// blocks in application code until all of them return. The master's
// stack shows the region frame, so a sampler sees the rank OUT_MPI for
// the duration — including forever, if a worker deadlocks.
func (r *Rank) ParallelRegion(n int, body func(t *Thread)) {
	if n <= 0 {
		return
	}
	r.stack.Push("omp_parallel_region")
	defer r.stack.Pop()

	remaining := n
	var joinWait *sim.Proc
	for i := 0; i < n; i++ {
		t := &Thread{rank: r, id: i, stk: stack.New("thread_main")}
		r.threads = append(r.threads, t)
		// Spawn through the rank's own proc so workers land on the rank's
		// shard: the whole fork/join region stays shard-local in every
		// execution mode.
		t.proc = r.proc.SpawnNow(fmt.Sprintf("rank-%d-thread-%d", r.id, i), func(p *sim.Proc) {
			t.proc = p
			body(t)
			remaining--
			if remaining == 0 && joinWait != nil {
				joinWait.WakeAtLocal(p.Now())
			}
		})
	}
	if remaining > 0 {
		joinWait = r.proc
		r.proc.Suspend()
	}
	// Retire this region's threads from the live set.
	r.threads = r.threads[:len(r.threads)-n]
}

// Observe captures the rank's merged runtime state for a sampler: the
// paper's §6 rule (IN_MPI if at least one thread is inside MPI, with
// the master thread counted). Counters and versions are summed so the
// transient-slowdown comparison still works on hybrid ranks.
func (r *Rank) Observe() stack.Trace {
	tr := r.stack.Observe()
	for _, t := range r.threads {
		tt := t.stk.Observe()
		tr.Version += tt.Version
		tr.NonPollEntries += tt.NonPollEntries
		tr.PollEntries += tt.PollEntries
		if tt.State == stack.InMPI {
			tr.State = stack.InMPI
			if tr.TopMPI == "" {
				tr.TopMPI = tt.TopMPI
			}
		}
	}
	return tr
}
