package mpi

import (
	"fmt"

	"parastack/internal/sim"
)

// BlockKind says what, if anything, a rank is currently blocked on.
// It powers the progress-dependency analysis of package diagnose (the
// paper's Figure 6 "traditional" faulty-process identification and the
// STAT-style grouping the workflow of Figure 1 hands off to).
type BlockKind int

const (
	// NotBlocked: the rank is computing, sleeping, or polling.
	NotBlocked BlockKind = iota
	// BlockedRecv: suspended in a blocking receive (or Wait on a
	// receive request) with no matching message.
	BlockedRecv
	// BlockedCollective: suspended inside a collective waiting for
	// other ranks to arrive.
	BlockedCollective
	// Terminated: the rank's body returned.
	Terminated
)

// String implements fmt.Stringer.
func (k BlockKind) String() string {
	switch k {
	case NotBlocked:
		return "not-blocked"
	case BlockedRecv:
		return "blocked-recv"
	case BlockedCollective:
		return "blocked-collective"
	case Terminated:
		return "terminated"
	default:
		return fmt.Sprintf("BlockKind(%d)", int(k))
	}
}

// NoPeer and NoComm are the sentinel values BlockInfo uses for its
// structured fields when they do not apply to the blocking state (a
// collective has no point-to-point peer; a receive has no communicator
// sequence). NoPeer is distinct from AnySource: an AnySource receive
// *has* a peer field, it is just a wildcard.
const (
	NoPeer = -2
	NoComm = -1
)

// BlockInfo describes a rank's blocking state at an instant. Beyond the
// human-readable Detail, it exposes the blocked operation's structured
// identity — which MPI call, which peer and tag for a receive, which
// communicator and collective sequence number for a collective — so the
// wait-for analysis of internal/diagnose/waitfor can tell apart states
// that render identically (two ranks parked in *different* Barriers on
// the same communicator differ in Seq; the same Barrier on two derived
// communicators differ in Comm).
type BlockInfo struct {
	Kind BlockKind
	// Op is the MPI call the rank is blocked in ("MPI_Recv",
	// "MPI_Barrier", …); empty when not blocked inside MPI.
	Op string
	// Peer is the source rank of a blocked receive (AnySource for a
	// wildcard receive); NoPeer when the state has no peer.
	Peer int
	// Tag is the blocked receive's tag (AnyTag for a wildcard); 0 and
	// meaningless when Kind is not BlockedRecv.
	Tag int
	// Comm is the communicator ID of the blocking collective (the world
	// communicator is 0, derived communicators count up in creation
	// order); NoComm when the state has no communicator.
	Comm int
	// Seq is the blocking collective's per-communicator call sequence
	// number; two ranks blocked in different collectives on the same
	// communicator always differ here (orphan collectives injected by
	// DesyncCollective live in a reserved high range).
	Seq uint64
	// WaitingFor lists the ranks this rank is directly waiting on:
	// the (known) source of a blocked receive, or the ranks that have
	// not yet arrived at the collective it is stuck in. Empty for
	// AnySource receives and for NotBlocked/Terminated.
	WaitingFor []int
	// Detail is a human-readable description ("MPI_Recv src=3 tag=7",
	// "MPI_Allreduce seq=41 missing 2 ranks").
	Detail string
}

// blockState tracks what the rank most recently suspended on; it is
// maintained by the blocking paths of p2p.go and coll.go.
type blockState struct {
	kind BlockKind
	req  *Request // for BlockedRecv
	seq  uint64   // for BlockedCollective
	comm *Comm    // communicator of the blocking collective
	coll CollKind // kind of the blocking collective (survives op teardown)
}

// BlockInfo reports what the rank is blocked on right now. It is safe
// to call from observers (monitors, diagnosis tools) at any time.
func (r *Rank) BlockInfo() BlockInfo {
	if r.proc.State() == sim.ProcDone {
		return BlockInfo{Kind: Terminated, Peer: NoPeer, Comm: NoComm}
	}
	if r.proc.State() != sim.ProcSuspended {
		return BlockInfo{Kind: NotBlocked, Peer: NoPeer, Comm: NoComm}
	}
	switch r.block.kind {
	case BlockedRecv:
		q := r.block.req
		info := BlockInfo{Kind: BlockedRecv, Op: "MPI_Recv", Peer: NoPeer, Comm: NoComm}
		if q != nil {
			info.Peer = q.src
			info.Tag = q.tag
			if q.src != AnySource {
				info.WaitingFor = []int{q.src}
			}
			info.Detail = fmt.Sprintf("MPI_Recv src=%d tag=%d", q.src, q.tag)
		}
		return info
	case BlockedCollective:
		info := BlockInfo{
			Kind: BlockedCollective,
			Op:   r.block.coll.String(),
			Peer: NoPeer,
			Comm: NoComm,
			Seq:  r.block.seq,
		}
		c := r.block.comm
		if c == nil {
			return info
		}
		info.Comm = c.id
		if op, ok := c.colls[r.block.seq]; ok {
			for commRank, seen := range op.seen {
				if !seen {
					info.WaitingFor = append(info.WaitingFor, c.ranks[commRank])
				}
			}
			info.Detail = fmt.Sprintf("%s seq=%d missing %d ranks",
				op.kind, r.block.seq, len(info.WaitingFor))
		}
		return info
	default:
		// Suspended for another reason (injected hang uses Suspend
		// directly): not blocked inside MPI.
		return BlockInfo{Kind: NotBlocked, Peer: NoPeer, Comm: NoComm, Detail: "suspended outside MPI"}
	}
}
