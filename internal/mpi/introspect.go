package mpi

import (
	"fmt"

	"parastack/internal/sim"
)

// BlockKind says what, if anything, a rank is currently blocked on.
// It powers the progress-dependency analysis of package diagnose (the
// paper's Figure 6 "traditional" faulty-process identification and the
// STAT-style grouping the workflow of Figure 1 hands off to).
type BlockKind int

const (
	// NotBlocked: the rank is computing, sleeping, or polling.
	NotBlocked BlockKind = iota
	// BlockedRecv: suspended in a blocking receive (or Wait on a
	// receive request) with no matching message.
	BlockedRecv
	// BlockedCollective: suspended inside a collective waiting for
	// other ranks to arrive.
	BlockedCollective
	// Terminated: the rank's body returned.
	Terminated
)

// String implements fmt.Stringer.
func (k BlockKind) String() string {
	switch k {
	case NotBlocked:
		return "not-blocked"
	case BlockedRecv:
		return "blocked-recv"
	case BlockedCollective:
		return "blocked-collective"
	case Terminated:
		return "terminated"
	default:
		return fmt.Sprintf("BlockKind(%d)", int(k))
	}
}

// BlockInfo describes a rank's blocking state at an instant.
type BlockInfo struct {
	Kind BlockKind
	// WaitingFor lists the ranks this rank is directly waiting on:
	// the (known) source of a blocked receive, or the ranks that have
	// not yet arrived at the collective it is stuck in. Empty for
	// AnySource receives and for NotBlocked/Terminated.
	WaitingFor []int
	// Detail is a human-readable description ("MPI_Recv src=3 tag=7",
	// "MPI_Allreduce seq=41 missing 2 ranks").
	Detail string
}

// blockState tracks what the rank most recently suspended on; it is
// maintained by the blocking paths of p2p.go and coll.go.
type blockState struct {
	kind BlockKind
	req  *Request // for BlockedRecv
	seq  uint64   // for BlockedCollective
	comm *Comm    // communicator of the blocking collective
}

// BlockInfo reports what the rank is blocked on right now. It is safe
// to call from observers (monitors, diagnosis tools) at any time.
func (r *Rank) BlockInfo() BlockInfo {
	if r.proc.State() == sim.ProcDone {
		return BlockInfo{Kind: Terminated}
	}
	if r.proc.State() != sim.ProcSuspended {
		return BlockInfo{Kind: NotBlocked}
	}
	switch r.block.kind {
	case BlockedRecv:
		q := r.block.req
		info := BlockInfo{Kind: BlockedRecv}
		if q != nil {
			if q.src != AnySource {
				info.WaitingFor = []int{q.src}
			}
			info.Detail = fmt.Sprintf("MPI_Recv src=%d tag=%d", q.src, q.tag)
		}
		return info
	case BlockedCollective:
		info := BlockInfo{Kind: BlockedCollective}
		c := r.block.comm
		if c == nil {
			return info
		}
		if op, ok := c.colls[r.block.seq]; ok {
			for commRank, seen := range op.seen {
				if !seen {
					info.WaitingFor = append(info.WaitingFor, c.ranks[commRank])
				}
			}
			info.Detail = fmt.Sprintf("%s seq=%d missing %d ranks",
				op.kind, r.block.seq, len(info.WaitingFor))
		}
		return info
	default:
		// Suspended for another reason (injected hang uses Suspend
		// directly): not blocked inside MPI.
		return BlockInfo{Kind: NotBlocked, Detail: "suspended outside MPI"}
	}
}
