package chaos_test

import (
	"testing"
	"time"

	"parastack/internal/chaos"
	"parastack/internal/core"
	"parastack/internal/experiment"
	"parastack/internal/fault"
	"parastack/internal/noise"
	"parastack/internal/obs"
	"parastack/internal/workload"
)

// goldenConfig is the exact configuration the pre-PR golden
// fingerprints below were captured with: CG-D-64 on Tardis under the
// default monitor, no chaos.
func goldenConfig(kind fault.Kind, seed int64) experiment.RunConfig {
	return experiment.RunConfig{
		Params:    workload.MustLookup("CG", "D", 64),
		Platform:  noise.Tardis(),
		Seed:      seed,
		FaultKind: kind,
		Monitor:   &core.Config{},
	}
}

// TestChaosDisabledBitIdentical locks the acceptance criterion that a
// chaos-free run is bit-identical to pinned behavior: the fingerprints
// below (verdict, injection/detection/finish times to the microsecond,
// and the engine's total event count) are captured goldens across 3
// fault kinds and a clean run × 4 seeds. Any drift in the monitor's
// RNG consumption, probe sequence, or event scheduling changes these
// numbers. The table was re-pinned when the engine moved to sharded
// queues with per-rank random streams (a documented, seed-stable
// re-derivation of every latency draw); event counts also grew because
// point-to-point messages became explicit delivery events. OS-jitter
// and compute-skew draws now come from the rank-local streams too (a
// requirement for serial/parallel equivalence), which shifted the
// node-freeze seed-1 run below the detection margin — a half-job
// freeze keeps Sout moderate, so a minority of seeds always sit under
// the margin; seed 1 happens to be one of them in this derivation.
func TestChaosDisabledBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("16 full runs")
	}
	golden := []struct {
		kind                             string
		seed                             int64
		detected, falsePositive, done    bool
		injectedUS, detectedUS, finishUS int64
		events                           uint64
	}{
		{"computation-hang", 1, true, false, false, 436284460, 442246025, 0, 78391},
		{"computation-hang", 2, true, false, false, 139188021, 145313239, 0, 25792},
		{"computation-hang", 3, true, false, false, 429397149, 434939772, 0, 77614},
		{"computation-hang", 4, true, false, false, 100928518, 106490342, 0, 18722},
		{"node-freeze", 1, false, false, false, 436092032, 0, 0, 82651},
		{"node-freeze", 2, true, false, false, 139071876, 145313239, 0, 25536},
		{"node-freeze", 3, true, false, false, 429019564, 444821652, 0, 77388},
		{"node-freeze", 4, true, false, false, 100771653, 106752155, 0, 18473},
		{"communication-deadlock", 1, true, false, false, 436284460, 442246025, 0, 78391},
		{"communication-deadlock", 2, true, false, false, 139188021, 145313239, 0, 25792},
		{"communication-deadlock", 3, true, false, false, 429397149, 434939772, 0, 77614},
		{"communication-deadlock", 4, true, false, false, 100928518, 106490342, 0, 18722},
		{"none", 1, false, false, true, 0, 0, 525446741, 94291},
		{"none", 2, false, false, true, 0, 0, 512271159, 94253},
		{"none", 3, false, false, true, 0, 0, 522043123, 94296},
		{"none", 4, false, false, true, 0, 0, 511761910, 94281},
	}
	for _, g := range golden {
		kind, err := fault.Parse(g.kind)
		if err != nil {
			t.Fatal(err)
		}
		res := experiment.Run(goldenConfig(kind, g.seed))
		var detectedUS int64
		if res.Report != nil {
			detectedUS = res.Report.DetectedAt.Microseconds()
		}
		if res.Detected != g.detected || res.FalsePositive != g.falsePositive ||
			res.Completed != g.done ||
			res.InjectedAt.Microseconds() != g.injectedUS ||
			detectedUS != g.detectedUS ||
			res.FinishedAt.Microseconds() != g.finishUS ||
			res.Events != g.events {
			t.Errorf("%s seed %d drifted from pre-chaos behavior:\n  got  detected=%v fp=%v done=%v inj=%dus det=%dus fin=%dus events=%d\n  want detected=%v fp=%v done=%v inj=%dus det=%dus fin=%dus events=%d",
				g.kind, g.seed,
				res.Detected, res.FalsePositive, res.Completed,
				res.InjectedAt.Microseconds(), detectedUS, res.FinishedAt.Microseconds(), res.Events,
				g.detected, g.falsePositive, g.done,
				g.injectedUS, g.detectedUS, g.finishUS, g.events)
		}
	}
}

// mustProfile resolves a named chaos profile or fails the test.
func mustProfile(t *testing.T, name string) *chaos.Profile {
	t.Helper()
	p, err := chaos.Parse(name)
	if err != nil {
		t.Fatal(err)
	}
	if p == nil {
		t.Fatalf("profile %q resolved to nil", name)
	}
	return p
}

// TestDetectionSurvivesProbeLossAndRankDeath is the headline
// robustness claim: with a third of all probes lost AND monitored
// ranks dying mid-run, faulty-run detection still succeeds and clean
// runs still produce zero false positives.
func TestDetectionSurvivesProbeLossAndRankDeath(t *testing.T) {
	prof := &chaos.Profile{
		Name:       "loss+death",
		ProbeLoss:  0.35,
		RankDeaths: 3, RankDeathAfter: 40 * time.Second,
		RankDeathWindow: 120 * time.Second,
	}
	for seed := int64(1); seed <= 4; seed++ {
		rc := goldenConfig(fault.ComputationHang, seed)
		rc.Chaos = prof
		res := experiment.Run(rc)
		if !res.Injected {
			t.Fatalf("seed %d: fault not injected", seed)
		}
		if res.FalsePositive {
			t.Errorf("seed %d: false positive under chaos (report at %v, fault at %v)",
				seed, res.Report.DetectedAt, res.InjectedAt)
		}
		if !res.Detected {
			t.Errorf("seed %d: hang not detected under probe-loss + rank-death chaos", seed)
		}
	}
	for seed := int64(1); seed <= 4; seed++ {
		rc := goldenConfig(fault.None, seed)
		rc.Chaos = prof
		res := experiment.Run(rc)
		if res.FalsePositive {
			t.Errorf("clean seed %d: false positive under chaos: %+v", seed, res.Report)
		}
		if !res.Completed {
			t.Errorf("clean seed %d: run did not complete", seed)
		}
	}
}

// TestEveryProfileShortOfBlackoutKeepsAccuracy sweeps every named
// profile except the total blackout: each must preserve detection on a
// faulty run and stay false-positive-free on a clean run.
func TestEveryProfileShortOfBlackoutKeepsAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("2 runs per profile")
	}
	for _, name := range chaos.Names() {
		if name == "none" || name == "blackout" {
			continue
		}
		prof := mustProfile(t, name)
		rc := goldenConfig(fault.ComputationHang, 2)
		rc.Chaos = prof
		res := experiment.Run(rc)
		if !res.Detected || res.FalsePositive {
			t.Errorf("profile %q: faulty run detected=%v fp=%v, want detected, no FP",
				name, res.Detected, res.FalsePositive)
		}
		rc = goldenConfig(fault.None, 2)
		rc.Chaos = prof
		res = experiment.Run(rc)
		if res.FalsePositive || !res.Completed {
			t.Errorf("profile %q: clean run fp=%v completed=%v, want no FP and completion",
				name, res.FalsePositive, res.Completed)
		}
	}
}

// TestBlackoutStaysSilent: with 100% probe loss the monitor can never
// assemble a quorum, so it must stay silent — no verdict of any kind —
// while the application runs to completion.
func TestBlackoutStaysSilent(t *testing.T) {
	rc := goldenConfig(fault.None, 1)
	rc.Chaos = mustProfile(t, "blackout")
	res := experiment.Run(rc)
	if res.Report != nil || res.FalsePositive {
		t.Fatalf("blackout produced a verdict: %+v", res.Report)
	}
	if !res.Completed {
		t.Fatal("clean run under blackout did not complete")
	}
	if res.Metrics.Counters[core.CtrSamples] != 0 {
		t.Fatalf("blackout monitor accepted %d samples, want 0",
			res.Metrics.Counters[core.CtrSamples])
	}
	if res.Metrics.Counters[core.CtrQuorumMisses] == 0 {
		t.Fatal("blackout recorded no quorum misses")
	}
}

// TestMonitorCrashRestoreConvergesToSameVerdict kills the monitor
// mid-run and restores it from its snapshot: the restored monitor must
// still reach a verdict, and that verdict must agree with the
// crash-free run's (same hang type, same faulty ranks).
func TestMonitorCrashRestoreConvergesToSameVerdict(t *testing.T) {
	// Seeds 1 and 3 inject at ~430s, far after the 90s crash, so the
	// restored monitor owns the whole detection.
	for _, seed := range []int64{1, 3} {
		base := experiment.Run(goldenConfig(fault.ComputationHang, seed))
		if !base.Detected {
			t.Fatalf("seed %d: crash-free run did not detect", seed)
		}
		rc := goldenConfig(fault.ComputationHang, seed)
		rc.Chaos = mustProfile(t, "monitor-crash")
		res := experiment.Run(rc)
		if !res.Detected || res.FalsePositive {
			t.Fatalf("seed %d: killed-and-restored monitor reached no verdict (detected=%v fp=%v)",
				seed, res.Detected, res.FalsePositive)
		}
		if res.Metrics.Counters[core.CtrFailovers] != 1 {
			t.Fatalf("seed %d: failovers = %d, want 1", seed, res.Metrics.Counters[core.CtrFailovers])
		}
		if res.Report.Type != base.Report.Type {
			t.Errorf("seed %d: hang type diverged after failover: %v vs %v",
				seed, res.Report.Type, base.Report.Type)
		}
		if len(res.Report.FaultyRanks) != len(base.Report.FaultyRanks) {
			t.Fatalf("seed %d: faulty ranks diverged after failover: %v vs %v",
				seed, res.Report.FaultyRanks, base.Report.FaultyRanks)
		}
		for i := range res.Report.FaultyRanks {
			if res.Report.FaultyRanks[i] != base.Report.FaultyRanks[i] {
				t.Fatalf("seed %d: faulty ranks diverged after failover: %v vs %v",
					seed, res.Report.FaultyRanks, base.Report.FaultyRanks)
			}
		}
	}
}

// TestChaosCountersExercised is the obs ablation: one clean run under
// the "heavy" mixed profile must light up every degradation counter —
// probes lost, stale deliveries, rounds below quorum, quarantines, and
// the failover — plus the recovery-time gauge.
func TestChaosCountersExercised(t *testing.T) {
	rc := goldenConfig(fault.None, 3)
	rc.Chaos = mustProfile(t, "heavy")
	res := experiment.Run(rc)
	if !res.Completed || res.FalsePositive {
		t.Fatalf("heavy-chaos clean run: completed=%v fp=%v", res.Completed, res.FalsePositive)
	}
	for _, ctr := range []string{
		core.CtrProbesLost,
		core.CtrProbesStale,
		core.CtrQuorumMisses,
		core.CtrQuarantines,
		core.CtrFailovers,
	} {
		if res.Metrics.Counters[ctr] == 0 {
			t.Errorf("counter %s not exercised under heavy chaos", ctr)
		}
	}
	if _, ok := res.Metrics.Gauges[core.GaugeRecovery]; !ok {
		t.Error("recovery gauge not reported after failover")
	}
}

// TestChaosSmoke is the `make chaos-smoke` target: a short clean
// campaign under the aggressive "heavy" profile, run with -race, that
// must end with zero false positives — the detector's own failures
// must never masquerade as application hangs.
func TestChaosSmoke(t *testing.T) {
	rc := goldenConfig(fault.None, 0)
	rc.Chaos = mustProfile(t, "heavy")
	rc.Stats = obs.NewTotals()
	rs := experiment.Campaign(rc, 4, 1)
	m := experiment.Aggregate(rs)
	if m.FalsePositives != 0 {
		t.Fatalf("chaos smoke: %d false positives in a clean campaign", m.FalsePositives)
	}
	for _, r := range rs {
		if !r.Completed {
			t.Errorf("seed %d did not complete under heavy chaos", r.Seed)
		}
	}
	if rc.Stats.Counter(core.CtrProbesLost) == 0 {
		t.Fatal("chaos smoke ran without actually losing probes")
	}
}

// TestChaosCampaignDeterministic: chaos must not break the
// seed-determinism contract campaigns rely on.
func TestChaosCampaignDeterministic(t *testing.T) {
	rc := goldenConfig(fault.ComputationHang, 0)
	rc.Chaos = mustProfile(t, "probe-loss")
	a := experiment.Campaign(rc, 3, 50)
	b := experiment.Campaign(rc, 3, 50)
	for i := range a {
		if a[i].Detected != b[i].Detected || a[i].InjectedAt != b[i].InjectedAt ||
			a[i].Delay != b[i].Delay || a[i].Events != b[i].Events {
			t.Fatalf("run %d diverged under identical chaos: %+v vs %+v", i, a[i], b[i])
		}
	}
}
