package chaos

import (
	"strings"
	"testing"
	"time"
)

func TestParseKnownProfiles(t *testing.T) {
	for _, name := range Names() {
		p, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if name == "none" {
			if p != nil {
				t.Fatal(`Parse("none") returned a profile`)
			}
			continue
		}
		if p == nil || p.Name != name {
			t.Fatalf("Parse(%q) = %+v", name, p)
		}
		if !p.Enabled() {
			t.Fatalf("registry profile %q perturbs nothing", name)
		}
	}
	if p, err := Parse(""); p != nil || err != nil {
		t.Fatalf(`Parse("") = %v, %v, want nil, nil`, p, err)
	}
}

// TestParseUnknownEnumeratesNames: the error for a typo must list every
// accepted profile, so the CLI user never has to read source code.
func TestParseUnknownEnumeratesNames(t *testing.T) {
	_, err := Parse("hvay")
	if err == nil {
		t.Fatal("unknown profile accepted")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention accepted profile %q", err, name)
		}
	}
}

func TestInjectorDeterministicPerSeed(t *testing.T) {
	p := Profile{Name: "t", ProbeLoss: 0.3, ProbeStale: 0.2, RankDeaths: 4,
		RankDeathAfter: 10 * time.Second, RankDeathWindow: 30 * time.Second,
		ClockJitter: 100 * time.Millisecond}
	a, b := NewInjector(p, 42, 64), NewInjector(p, 42, 64)
	other := NewInjector(p, 43, 64)
	differs := false
	for i := 0; i < 1000; i++ {
		now := time.Duration(i) * 50 * time.Millisecond
		rank := i % 64
		fa, fb := a.ProbeFate(rank, now), b.ProbeFate(rank, now)
		if fa != fb {
			t.Fatalf("probe %d: same seed diverged: %v vs %v", i, fa, fb)
		}
		if ja, jb := a.StepJitter(), b.StepJitter(); ja != jb {
			t.Fatalf("jitter %d: same seed diverged: %v vs %v", i, ja, jb)
		}
		if fa != other.ProbeFate(rank, now) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("seeds 42 and 43 produced identical chaos streams")
	}
	da, db := a.DeadRanks(), b.DeadRanks()
	if len(da) != 4 || len(db) != 4 {
		t.Fatalf("dead ranks: %v / %v, want 4 each", da, db)
	}
	for r, at := range da {
		if db[r] != at {
			t.Fatalf("death plans diverged for rank %d: %v vs %v", r, at, db[r])
		}
	}
}

func TestDeadRanksWithinWindow(t *testing.T) {
	p := Profile{RankDeaths: 5, RankDeathAfter: 40 * time.Second, RankDeathWindow: 120 * time.Second}
	in := NewInjector(p, 7, 32)
	dead := in.DeadRanks()
	if len(dead) != 5 {
		t.Fatalf("%d deaths planned, want 5", len(dead))
	}
	for r, at := range dead {
		if r < 0 || r >= 32 {
			t.Errorf("dead rank %d out of world", r)
		}
		if at < 40*time.Second || at >= 160*time.Second {
			t.Errorf("rank %d dies at %v, outside [40s, 160s)", r, at)
		}
		if f := in.ProbeFate(r, at-time.Millisecond); f == FateLost && p.ProbeLoss == 0 {
			t.Errorf("rank %d lost before its death time", r)
		}
		if f := in.ProbeFate(r, at); f != FateLost {
			t.Errorf("rank %d probe at death time = %v, want lost", r, f)
		}
		if f := in.ProbeFate(r, at+time.Hour); f != FateLost {
			t.Errorf("dead rank %d came back: %v", r, f)
		}
	}
}

func TestDeathsCappedAtWorldSize(t *testing.T) {
	in := NewInjector(Profile{RankDeaths: 100, RankDeathAfter: time.Second, RankDeathWindow: time.Second}, 1, 8)
	if n := len(in.DeadRanks()); n != 8 {
		t.Fatalf("%d deaths in an 8-rank world", n)
	}
}

func TestBlackoutLosesEveryProbe(t *testing.T) {
	in := NewInjector(profiles["blackout"], 3, 16)
	for i := 0; i < 500; i++ {
		if f := in.ProbeFate(i%16, time.Duration(i)*time.Millisecond); f != FateLost {
			t.Fatalf("blackout probe %d = %v", i, f)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	in := NewInjector(Profile{ClockJitter: 300 * time.Millisecond}, 5, 8)
	seen := false
	for i := 0; i < 500; i++ {
		j := in.StepJitter()
		if j < 0 || j >= 300*time.Millisecond {
			t.Fatalf("jitter %v outside [0, 300ms)", j)
		}
		if j > 0 {
			seen = true
		}
	}
	if !seen {
		t.Fatal("jitter never positive in 500 draws")
	}
}

// TestNilInjectorIsNoOp mirrors the fault.Injector nil-receiver idiom.
func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if f := in.ProbeFate(3, time.Second); f != FateOK {
		t.Fatalf("nil injector fate = %v", f)
	}
	if j := in.StepJitter(); j != 0 {
		t.Fatalf("nil injector jitter = %v", j)
	}
	if _, _, ok := in.CrashPlan(); ok {
		t.Fatal("nil injector plans a crash")
	}
	if d := in.DeadRanks(); d != nil {
		t.Fatalf("nil injector kills ranks: %v", d)
	}
	if p := in.Profile(); p.Enabled() {
		t.Fatalf("nil injector has a live profile: %+v", p)
	}
}

func TestCrashPlanDefaultsDowntime(t *testing.T) {
	in := NewInjector(Profile{MonitorCrashAt: time.Minute}, 1, 8)
	at, down, ok := in.CrashPlan()
	if !ok || at != time.Minute || down != 10*time.Second {
		t.Fatalf("CrashPlan = %v, %v, %v; want 1m, 10s (defaulted), true", at, down, ok)
	}
}

func TestFateString(t *testing.T) {
	for f, want := range map[Fate]string{FateOK: "ok", FateLost: "lost", FateStale: "stale", Fate(9): "Fate(9)"} {
		if f.String() != want {
			t.Fatalf("Fate(%d).String() = %q, want %q", int(f), f, want)
		}
	}
}
