// Package chaos fault-injects the detector's own machinery. Where
// internal/fault breaks the *application* (the paper's §7 methodology),
// chaos breaks *ParaStack*: probe RPCs get lost or delivered late,
// monitored ranks stop existing mid-run, the sampling clock jitters,
// and the monitor process itself crashes and must be restored from a
// checkpoint. The monitor's graceful-degradation paths (partial
// sampling rounds, quarantine, epoch-stale discard, Snapshot/Restore
// failover) exist to survive exactly these perturbations.
//
// Like the application-fault injector, every decision is derived
// deterministically from the run seed: two runs with the same seed and
// profile experience bit-identical chaos, which is what lets campaign
// tests make exact assertions about degraded behavior.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Fate is the outcome the chaos layer assigns one probe RPC.
type Fate int

const (
	// FateOK delivers a fresh stack trace.
	FateOK Fate = iota
	// FateLost drops the probe: nothing comes back.
	FateLost
	// FateStale delivers a delayed reply: the trace the rank was last
	// successfully probed with, from a previous sampling round.
	FateStale
)

// String implements fmt.Stringer.
func (f Fate) String() string {
	switch f {
	case FateOK:
		return "ok"
	case FateLost:
		return "lost"
	case FateStale:
		return "stale"
	default:
		return fmt.Sprintf("Fate(%d)", int(f))
	}
}

// Profile declares how a run perturbs its own detector. The zero value
// disables everything; named profiles come from Parse.
type Profile struct {
	// Name identifies the profile in sweep grids and logs.
	Name string
	// ProbeLoss is the probability one probe RPC returns nothing.
	ProbeLoss float64
	// ProbeStale is the probability one probe RPC returns a stale
	// trace from a previous sampling round instead of a fresh one.
	ProbeStale float64
	// RankDeaths is how many ranks stop existing mid-run: every probe
	// of a dead rank is lost forever. Death times are drawn uniformly
	// in [RankDeathAfter, RankDeathAfter+RankDeathWindow).
	RankDeaths      int
	RankDeathAfter  time.Duration
	RankDeathWindow time.Duration
	// ClockJitter adds up to this much extra delay to every sampling
	// step, modeling a monitor host under scheduling pressure.
	ClockJitter time.Duration
	// MonitorCrashAt kills the monitor at this virtual time (0 = never);
	// MonitorRestartAfter is the downtime before a snapshot-restored
	// replacement starts.
	MonitorCrashAt      time.Duration
	MonitorRestartAfter time.Duration
}

// Enabled reports whether the profile perturbs anything at all.
func (p Profile) Enabled() bool {
	return p.ProbeLoss > 0 || p.ProbeStale > 0 || p.RankDeaths > 0 ||
		p.ClockJitter > 0 || p.MonitorCrashAt > 0
}

// profiles is the named-profile registry. Each entry stresses one
// degradation path in isolation except "light" and "heavy", which mix;
// "blackout" is the documented out-of-scope extreme (no probe ever
// arrives, so the monitor can never — and must never — verify anything).
var profiles = map[string]Profile{
	"light": {
		Name: "light", ProbeLoss: 0.05, ProbeStale: 0.05,
	},
	"probe-loss": {
		Name: "probe-loss", ProbeLoss: 0.35,
	},
	"stale": {
		Name: "stale", ProbeStale: 0.35,
	},
	"rank-death": {
		Name: "rank-death", RankDeaths: 3,
		RankDeathAfter: 40 * time.Second, RankDeathWindow: 120 * time.Second,
	},
	"jitter": {
		Name: "jitter", ClockJitter: 300 * time.Millisecond,
	},
	"monitor-crash": {
		Name: "monitor-crash", MonitorCrashAt: 90 * time.Second,
		MonitorRestartAfter: 15 * time.Second,
	},
	"heavy": {
		Name: "heavy", ProbeLoss: 0.25, ProbeStale: 0.10,
		RankDeaths: 2, RankDeathAfter: 40 * time.Second, RankDeathWindow: 120 * time.Second,
		ClockJitter:    200 * time.Millisecond,
		MonitorCrashAt: 100 * time.Second, MonitorRestartAfter: 10 * time.Second,
	},
	"blackout": {
		Name: "blackout", ProbeLoss: 1.0,
	},
}

// Names lists the named profiles, sorted ("none" first as the default).
func Names() []string {
	out := make([]string, 0, len(profiles)+1)
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return append([]string{"none"}, out...)
}

// Parse resolves a profile name. "none" and "" yield a nil profile
// (chaos disabled); unknown names produce an error enumerating every
// accepted name.
func Parse(name string) (*Profile, error) {
	if name == "none" || name == "" {
		return nil, nil
	}
	if p, ok := profiles[name]; ok {
		return &p, nil
	}
	return nil, fmt.Errorf("chaos: unknown profile %q (accepted: %s)", name, strings.Join(Names(), ", "))
}

// seedSalt decouples the chaos randomness stream from every other
// consumer of the run seed (engine, topology, fault plan): enabling
// chaos must not shift the application's random sequence, and a
// chaos-free run must be bit-identical to one that never imported this
// package.
const seedSalt = 0x70617261636861 // "paracha"

// Injector drives one run's chaos deterministically. A nil *Injector is
// a valid no-op, mirroring fault.Injector.
type Injector struct {
	prof   Profile
	rng    *rand.Rand
	deadAt map[int]time.Duration
}

// NewInjector materializes a profile for one run of size ranks: rank
// deaths (victims and times) are drawn up front from seed, so they are
// a property of the run, not of probe order.
func NewInjector(p Profile, seed int64, size int) *Injector {
	if p.RankDeaths > 0 {
		if p.RankDeathAfter == 0 {
			p.RankDeathAfter = 30 * time.Second
		}
		if p.RankDeathWindow == 0 {
			p.RankDeathWindow = 60 * time.Second
		}
	}
	if p.MonitorCrashAt > 0 && p.MonitorRestartAfter == 0 {
		p.MonitorRestartAfter = 10 * time.Second
	}
	in := &Injector{prof: p, rng: rand.New(rand.NewSource(seed ^ seedSalt))}
	if n := p.RankDeaths; n > 0 && size > 0 {
		if n > size {
			n = size
		}
		in.deadAt = make(map[int]time.Duration, n)
		for _, r := range in.rng.Perm(size)[:n] {
			in.deadAt[r] = p.RankDeathAfter + time.Duration(in.rng.Int63n(int64(p.RankDeathWindow)))
		}
	}
	return in
}

// Profile returns the (default-filled) profile the injector runs.
func (in *Injector) Profile() Profile {
	if in == nil {
		return Profile{}
	}
	return in.prof
}

// ProbeFate decides the outcome of one probe of rank at virtual time
// now: a dead rank is lost forever, otherwise loss and staleness are
// drawn from the chaos stream.
func (in *Injector) ProbeFate(rank int, now time.Duration) Fate {
	if in == nil {
		return FateOK
	}
	if at, dead := in.deadAt[rank]; dead && now >= at {
		return FateLost
	}
	if in.prof.ProbeLoss <= 0 && in.prof.ProbeStale <= 0 {
		return FateOK
	}
	u := in.rng.Float64()
	if u < in.prof.ProbeLoss {
		return FateLost
	}
	if u < in.prof.ProbeLoss+in.prof.ProbeStale {
		return FateStale
	}
	return FateOK
}

// StepJitter returns the extra delay chaos adds to the next sampling
// step, in [0, ClockJitter).
func (in *Injector) StepJitter() time.Duration {
	if in == nil || in.prof.ClockJitter <= 0 {
		return 0
	}
	return time.Duration(in.rng.Int63n(int64(in.prof.ClockJitter)))
}

// CrashPlan returns when the monitor crashes and how long it stays
// down; ok is false when the profile never crashes it.
func (in *Injector) CrashPlan() (at, downtime time.Duration, ok bool) {
	if in == nil || in.prof.MonitorCrashAt <= 0 {
		return 0, 0, false
	}
	return in.prof.MonitorCrashAt, in.prof.MonitorRestartAfter, true
}

// DeadRanks returns each planned rank death and its time (a copy).
func (in *Injector) DeadRanks() map[int]time.Duration {
	if in == nil || len(in.deadAt) == 0 {
		return nil
	}
	out := make(map[int]time.Duration, len(in.deadAt))
	for r, at := range in.deadAt {
		out[r] = at
	}
	return out
}
