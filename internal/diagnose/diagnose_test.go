package diagnose

import (
	"strings"
	"testing"
	"time"

	"parastack/internal/fault"
	"parastack/internal/mpi"
	"parastack/internal/sim"
)

// hungWorld builds a 16-rank world where rank 5 hangs in computation at
// iteration 3 and everyone else piles into an allreduce, then runs it
// until quiescent.
func hungWorld(t *testing.T, kind fault.Kind) (*sim.Engine, *mpi.World, *fault.Injector) {
	t.Helper()
	eng := sim.NewEngine(1)
	w := mpi.NewWorld(eng, 16, mpi.Latency{})
	inj := fault.NewInjector(fault.Plan{Kind: kind, Rank: 5, Iteration: 3})
	w.Launch(func(r *mpi.Rank) {
		next := (r.ID() + 1) % 16
		prev := (r.ID() + 15) % 16
		for it := 0; it < 50; it++ {
			r.Call("solve", func() {
				r.Compute(10 * time.Millisecond)
				inj.Check(r, it)
			})
			// Local halo, then global sync — the Figure 6 structure.
			r.SendRecv(next, it, 1024, prev, it)
			r.Allreduce(8)
		}
	})
	eng.Run(time.Minute)
	return eng, w, inj
}

func TestGroupByStackComputationHang(t *testing.T) {
	_, w, _ := hungWorld(t, fault.ComputationHang)
	groups := GroupByStack(w)
	if len(groups) < 2 {
		t.Fatalf("expected multiple equivalence classes, got %d", len(groups))
	}
	// The dominant class holds ranks stuck in MPI; the faulty rank is in
	// a singleton class whose stack shows application code.
	if len(groups[0].Ranks) < 10 {
		t.Fatalf("dominant class has only %d ranks", len(groups[0].Ranks))
	}
	var faulty *StackGroup
	for i := range groups {
		for _, r := range groups[i].Ranks {
			if r == 5 {
				faulty = &groups[i]
			}
		}
	}
	if faulty == nil {
		t.Fatal("rank 5 not grouped")
	}
	if len(faulty.Ranks) != 1 {
		t.Fatalf("faulty rank shares a class with %v", faulty.Ranks)
	}
	if !strings.Contains(faulty.Key(), "injected_infinite_loop") {
		t.Fatalf("faulty class stack = %s", faulty.Key())
	}
}

func TestProgressGraphFindsFaultyRank(t *testing.T) {
	_, w, _ := hungWorld(t, fault.ComputationHang)
	g := BuildProgressGraph(w)
	if len(g.Edges) == 0 {
		t.Fatal("no wait edges in a hung world")
	}
	if len(g.LeastProgressed) != 1 || g.LeastProgressed[0] != 5 {
		t.Fatalf("least progressed = %v, want [5]", g.LeastProgressed)
	}
	// Everyone blocked except the hung rank.
	for id, blocked := range g.Blocked {
		if id == 5 && blocked {
			t.Fatal("hung rank reported blocked in MPI")
		}
		if id != 5 && !blocked {
			t.Fatalf("healthy rank %d not blocked", id)
		}
	}
	// All wait chains must terminate at rank 5: its neighbors wait on it
	// directly via the halo exchange.
	direct := false
	for _, e := range g.Edges {
		if e.To == 5 && (e.From == 4 || e.From == 6) {
			direct = true
		}
	}
	if !direct {
		t.Fatalf("no neighbor waits directly on rank 5: %+v", g.Edges)
	}
}

func TestProgressGraphCommunicationDeadlock(t *testing.T) {
	_, w, _ := hungWorld(t, fault.CommunicationDeadlock)
	g := BuildProgressGraph(w)
	if len(g.LeastProgressed) != 0 {
		t.Fatalf("deadlock must have no least-progressed ranks, got %v", g.LeastProgressed)
	}
	for id, blocked := range g.Blocked {
		if !blocked {
			t.Fatalf("rank %d not blocked during deadlock", id)
		}
	}
}

func TestBlockInfoDetails(t *testing.T) {
	_, w, _ := hungWorld(t, fault.ComputationHang)
	// Rank 4 waits for rank 5's halo message.
	info := w.Rank(4).BlockInfo()
	if info.Kind != mpi.BlockedRecv && info.Kind != mpi.BlockedCollective {
		t.Fatalf("rank 4 block kind = %v", info.Kind)
	}
	if info.Detail == "" {
		t.Fatal("empty block detail")
	}
	// The hung rank reports suspended-outside-MPI.
	if got := w.Rank(5).BlockInfo().Kind; got != mpi.NotBlocked {
		t.Fatalf("hung rank block kind = %v, want not-blocked", got)
	}
}

func TestReportRendering(t *testing.T) {
	_, w, _ := hungWorld(t, fault.ComputationHang)
	rep := Report(w)
	if !strings.Contains(rep, "equivalence classes") {
		t.Fatalf("report missing groups: %s", rep)
	}
	if !strings.Contains(rep, "faulty candidates): [5]") {
		t.Fatalf("report missing faulty candidate: %s", rep)
	}

	_, w2, _ := hungWorld(t, fault.CommunicationDeadlock)
	rep2 := Report(w2)
	if !strings.Contains(rep2, "communication-phase error") {
		t.Fatalf("deadlock report wrong: %s", rep2)
	}
}

func TestGroupByStackHealthySnapshot(t *testing.T) {
	// A healthy paused world still groups fine (no panic, sane sizes).
	eng := sim.NewEngine(2)
	w := mpi.NewWorld(eng, 8, mpi.Latency{})
	w.Launch(func(r *mpi.Rank) {
		for it := 0; it < 100; it++ {
			r.Compute(5 * time.Millisecond)
			r.Allreduce(8)
		}
	})
	eng.Run(100 * time.Millisecond) // pause mid-run
	groups := GroupByStack(w)
	total := 0
	for _, g := range groups {
		total += len(g.Ranks)
	}
	if total != 8 {
		t.Fatalf("groups cover %d ranks, want 8", total)
	}
}

// TestPartialDiagnosis (satellite): with partial or empty trace sets —
// the shape a chaos-degraded capture delivers — the diagnosis must
// return Unknown rather than guess, never panic, and never accuse a
// rank it has no evidence against.
func TestPartialDiagnosis(t *testing.T) {
	mpiTrace := []string{"main", "solver_step", "MPI_Allreduce"}
	appTrace := []string{"main", "solver_step"}
	cases := []struct {
		name    string
		size    int
		traces  map[int][]string
		verdict string
		faulty  []int
	}{
		{"nil traces", 8, nil, Unknown, nil},
		{"empty traces", 8, map[int][]string{}, Unknown, nil},
		{"zero world", 0, map[int][]string{0: appTrace}, Unknown, nil},
		{"negative world", -3, nil, Unknown, nil},
		{"below half coverage", 8, map[int][]string{
			0: mpiTrace, 1: mpiTrace, 2: appTrace,
		}, Unknown, nil},
		{"empty call chains do not count as coverage", 4, map[int][]string{
			0: {}, 1: {}, 2: {}, 3: mpiTrace,
		}, Unknown, nil},
		{"out-of-range ranks discarded", 4, map[int][]string{
			-1: appTrace, 7: appTrace, 0: mpiTrace,
		}, Unknown, nil},
		{"all observed in MPI", 4, map[int][]string{
			0: mpiTrace, 1: mpiTrace, 2: mpiTrace, 3: mpiTrace,
		}, CommunicationError, nil},
		{"half coverage suffices", 4, map[int][]string{
			1: mpiTrace, 3: mpiTrace,
		}, CommunicationError, nil},
		{"rank outside MPI accused", 4, map[int][]string{
			0: mpiTrace, 1: appTrace, 2: mpiTrace, 3: mpiTrace,
		}, ComputationError, []int{1}},
		{"multiple faulty, sorted", 4, map[int][]string{
			0: appTrace, 1: mpiTrace, 3: appTrace, 2: mpiTrace,
		}, ComputationError, []int{0, 3}},
		{"phantom rank cannot be accused", 4, map[int][]string{
			9: appTrace, 0: mpiTrace, 1: mpiTrace,
		}, CommunicationError, nil},
	}
	for _, c := range cases {
		verdict, faulty := PartialDiagnosis(c.size, c.traces)
		if verdict != c.verdict {
			t.Errorf("%s: verdict %q, want %q", c.name, verdict, c.verdict)
			continue
		}
		if len(faulty) != len(c.faulty) {
			t.Errorf("%s: faulty %v, want %v", c.name, faulty, c.faulty)
			continue
		}
		for i := range faulty {
			if faulty[i] != c.faulty[i] {
				t.Errorf("%s: faulty %v, want %v", c.name, faulty, c.faulty)
				break
			}
		}
	}
}

// TestPartialDiagnosisQuorumBoundary (satellite) pins the documented
// exactly-half-observed quorum edge across tiny, even, and odd world
// sizes: strictly less than half observed is Unknown, exactly half (or
// the rounded-up majority for odd sizes) classifies.
func TestPartialDiagnosisQuorumBoundary(t *testing.T) {
	mpiTrace := []string{"main", "solver_step", "MPI_Allreduce"}
	fill := func(n int) map[int][]string {
		m := map[int][]string{}
		for i := 0; i < n; i++ {
			m[i] = mpiTrace
		}
		return m
	}
	cases := []struct {
		size, covered int
		verdict       string
	}{
		{1, 0, Unknown},            // a world of 1 needs its single trace
		{1, 1, CommunicationError}, // ... and that trace is full coverage
		{2, 0, Unknown},
		{2, 1, CommunicationError}, // exactly half of an even world classifies
		{2, 2, CommunicationError},
		{3, 1, Unknown}, // odd worlds round the requirement up
		{3, 2, CommunicationError},
		{4, 1, Unknown},
		{4, 2, CommunicationError}, // exactly half again
		{5, 2, Unknown},
		{5, 3, CommunicationError},
	}
	for _, c := range cases {
		verdict, faulty := PartialDiagnosis(c.size, fill(c.covered))
		if verdict != c.verdict {
			t.Errorf("size %d, %d observed: verdict %q, want %q", c.size, c.covered, verdict, c.verdict)
		}
		if len(faulty) != 0 {
			t.Errorf("size %d, %d observed: accused %v from all-in-MPI traces", c.size, c.covered, faulty)
		}
	}
}
