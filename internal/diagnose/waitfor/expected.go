package waitfor

import "parastack/internal/fault"

// ExpectedCause maps an injected fault kind to the cause a correct
// classifier should diagnose — the ground-truth side of the accuracy
// table and the property suite. None has no expected cause (a clean
// run that hangs anyway is, by definition, unexplained).
func ExpectedCause(k fault.Kind) Cause {
	switch k {
	case fault.ComputationHang, fault.NodeFreeze:
		return CauseStragglerChain
	case fault.CommunicationDeadlock:
		return CauseDeadlock
	case fault.LostMessage:
		return CauseLostMessage
	case fault.CollectiveMismatch:
		return CauseCollectiveMismatch
	default:
		return ""
	}
}
