// Package waitfor turns "the job hung" into "the job hung *because*":
// it snapshots every rank's blocked MPI operation at verdict time,
// builds the rank-level wait-for graph, and classifies the hang into a
// named root cause with machine-checkable evidence — a deadlock cycle,
// a straggler chain, an unmatched message pair, or mismatched
// collectives on one communicator.
//
// The paper stops at faulty-*process* identification; this layer is the
// graph-backtracking step ScalAna takes beyond it, using the wait-for
// cycle formalism of static MPI deadlock detection. The split is
// deliberately snapshot-then-analyze: Capture only reads a paused
// world, and Analyze is a pure function of the serializable Snapshot,
// so the classifier can be property-tested against injected ground
// truth and fuzzed on adversarial snapshots without a simulator in the
// loop.
package waitfor

import (
	"parastack/internal/mpi"
)

// RankState is one rank's blocked operation in a snapshot — a
// serializable projection of mpi.BlockInfo. Unobserved ranks (probe
// lost, node dead) carry Observed=false and zeroed state; the analyzer
// never builds evidence from them.
type RankState struct {
	Rank     int           `json:"rank"`
	Observed bool          `json:"observed"`
	Kind     mpi.BlockKind `json:"kind"`
	// Op is the blocking MPI call ("MPI_Recv", "MPI_Barrier", …).
	Op string `json:"op,omitempty"`
	// Peer and Tag identify a blocked receive's wanted message
	// (Peer == mpi.NoPeer when not in a receive).
	Peer int `json:"peer,omitempty"`
	Tag  int `json:"tag,omitempty"`
	// Comm and Seq identify a blocking collective instance
	// (Comm == mpi.NoComm when not in a collective).
	Comm int    `json:"comm,omitempty"`
	Seq  uint64 `json:"seq,omitempty"`
	// WaitingFor are the ranks this rank is directly waiting on.
	WaitingFor []int `json:"waiting_for,omitempty"`
}

// Snapshot is the captured blocking state of a (possibly partially
// observed) world, ready for Analyze. It is plain data: JSON round-trips
// losslessly, which is what the snapshot fuzzer exploits.
type Snapshot struct {
	// Size is the world size; Ranks has exactly Size entries in rank
	// order when produced by Capture (hand-built or fuzzed snapshots may
	// violate this — Analyze validates rather than trusts).
	Size  int         `json:"size"`
	Ranks []RankState `json:"ranks"`
}

// Observed counts the observed ranks in the snapshot.
func (s *Snapshot) Observed() int {
	n := 0
	for _, r := range s.Ranks {
		if r.Observed {
			n++
		}
	}
	return n
}

// Capture snapshots the blocking state of every rank the observer can
// see. observed says whether a rank's state is available (nil means all
// are — the clean-chaos path); under probe loss or rank death the
// caller passes the monitor's actual visibility so the analysis
// degrades honestly instead of trusting state nobody collected.
//
// Capture is strictly read-only on a paused world: it must be called
// only when the engine is not advancing (after a verdict, between
// events), and it mutates nothing — the snapshot-then-analyze contract
// that lets diagnosis run on the same world the experiment will later
// inspect for ground truth.
func Capture(w *mpi.World, observed func(rank int) bool) *Snapshot {
	size := w.Size()
	s := &Snapshot{Size: size, Ranks: make([]RankState, size)}
	for i := 0; i < size; i++ {
		rs := RankState{Rank: i, Peer: mpi.NoPeer, Comm: mpi.NoComm}
		if observed == nil || observed(i) {
			info := w.Rank(i).BlockInfo()
			rs.Observed = true
			rs.Kind = info.Kind
			rs.Op = info.Op
			rs.Peer = info.Peer
			rs.Tag = info.Tag
			rs.Comm = info.Comm
			rs.Seq = info.Seq
			if len(info.WaitingFor) > 0 {
				rs.WaitingFor = append([]int(nil), info.WaitingFor...)
			}
		}
		s.Ranks[i] = rs
	}
	return s
}
