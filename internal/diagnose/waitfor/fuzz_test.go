package waitfor

import (
	"encoding/json"
	"testing"

	"parastack/internal/mpi"
)

// FuzzAnalyze drives the classifier with arbitrary serialized
// snapshots and checks its two hard safety properties:
//
//  1. it never panics, whatever the bytes decode to;
//  2. it never accuses an unobserved (or out-of-range) rank — every
//     rank named anywhere in the diagnosis must appear in the snapshot
//     as an observed, in-range entry.
func FuzzAnalyze(f *testing.F) {
	seed := func(s *Snapshot) {
		b, err := json.Marshal(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(snap(2, recvOn(0, 0, 1), obs(1, mpi.Terminated)))
	seed(snap(3, recvOn(0, 1, 7), recvOn(1, 2, 7), obs(2, mpi.NotBlocked)))
	seed(snap(3,
		collAt(0, 0, 5, "MPI_Allreduce", 2),
		collAt(1, 0, 5, "MPI_Allreduce", 2),
		collAt(2, 0, 1<<62, "MPI_Barrier", 0, 1)))
	seed(snap(3, recvOn(0, 2, 9), collAt(1, 0, 4, "MPI_Allreduce", 0, 2), collAt(2, 0, 4, "MPI_Allreduce", 0)))
	seed(snap(4, recvOn(0, 3, 1), obs(1, mpi.Terminated), obs(2, mpi.Terminated)))
	seed(&Snapshot{Size: 2, Ranks: []RankState{{Rank: -5, Observed: true}, {Rank: 99, Observed: true}}})
	f.Add([]byte(`{"size":9007199254740993,"ranks":[{"rank":1,"observed":true}]}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var s Snapshot
		if err := json.Unmarshal(data, &s); err != nil {
			s = Snapshot{} // still exercise Analyze on the zero value
		}
		d := Analyze(&s) // must not panic
		if d == nil {
			t.Fatal("Analyze returned nil")
		}

		// Reconstruct the set of ranks the classifier was allowed to
		// accuse: observed, in-range entries of the raw snapshot.
		allowed := map[int]bool{}
		for _, rs := range s.Ranks {
			if rs.Observed && rs.Rank >= 0 && rs.Rank < s.Size {
				allowed[rs.Rank] = true
			}
		}
		check := func(what string, rank int) {
			if !allowed[rank] {
				t.Fatalf("%s names rank %d, which was never observed (cause %s)", what, rank, d.Cause)
			}
		}
		for _, c := range d.Culprits {
			check("culprits", c)
		}
		for _, e := range d.Cycle {
			check("cycle", e.From)
			check("cycle", e.To)
		}
		for _, e := range d.Chain {
			check("chain", e.From)
			check("chain", e.To)
		}
		if d.Lost != nil {
			check("lost pair", d.Lost.Receiver)
			check("lost pair", d.Lost.Sender)
		}
		for _, g := range d.Groups {
			for _, r := range g.Ranks {
				check("collective group", r)
			}
		}
		if d.Cause == CauseUnknown &&
			(len(d.Cycle) > 0 || len(d.Chain) > 0 || d.Lost != nil || len(d.Groups) > 0) {
			t.Fatalf("unknown diagnosis carries evidence: %+v", d)
		}
	})
}
