package waitfor

import (
	"fmt"
	"sort"

	"parastack/internal/mpi"
)

// Cause is a named hang root cause. The values are stable strings:
// they appear in sweep JSONL records and the paper's accuracy table.
type Cause string

const (
	// CauseUnknown is the honest non-answer: evidence below quorum,
	// corrupted, or matching no known pattern. Under chaos the
	// classifier must prefer it to a wrong named cause.
	CauseUnknown Cause = "unknown"
	// CauseDeadlock is a wait-for cycle of receive dependencies,
	// reported with the cycle's edges (a self-receive is a 1-cycle).
	CauseDeadlock Cause = "deadlock"
	// CauseStragglerChain is a dependency chain terminating at a rank
	// stuck outside MPI (computing forever): everyone waits,
	// transitively, on a compute-stuck straggler.
	CauseStragglerChain Cause = "straggler-chain"
	// CauseLostMessage is an unmatched receive naming a real peer that
	// has moved past any send: the wanted message will never arrive.
	CauseLostMessage Cause = "lost-message"
	// CauseCollectiveMismatch is two groups of ranks parked in
	// different collective instances on the same communicator, each
	// group waiting on the other.
	CauseCollectiveMismatch Cause = "collective-mismatch"
)

// Edge is one wait-for dependency in reported evidence: From cannot
// progress until To does.
type Edge struct {
	From int    `json:"from"`
	To   int    `json:"to"`
	Why  string `json:"why,omitempty"`
}

// LostPair names both ends of an unmatched message.
type LostPair struct {
	Receiver int `json:"receiver"`
	Sender   int `json:"sender"`
	Tag      int `json:"tag"`
}

// CollGroup is one set of ranks parked in the same collective instance.
type CollGroup struct {
	Comm  int    `json:"comm"`
	Seq   uint64 `json:"seq"`
	Op    string `json:"op,omitempty"`
	Ranks []int  `json:"ranks"`
}

// Diagnosis is a classified hang with its evidence. Exactly the fields
// backing the cause are populated: Cycle for a deadlock, Chain for a
// straggler chain, Lost for a lost message, Groups for a collective
// mismatch. Culprits are the implicated ranks; every rank named
// anywhere in a Diagnosis was observed in the snapshot.
type Diagnosis struct {
	Cause    Cause       `json:"cause"`
	Size     int         `json:"size"`
	Observed int         `json:"observed"`
	Culprits []int       `json:"culprits,omitempty"`
	Cycle    []Edge      `json:"cycle,omitempty"`
	Chain    []Edge      `json:"chain,omitempty"`
	Lost     *LostPair   `json:"lost,omitempty"`
	Groups   []CollGroup `json:"groups,omitempty"`
	Detail   string      `json:"detail,omitempty"`
}

// Analyze classifies a hang from a snapshot. It is a pure function of
// plain data, hardened against adversarial input (the fuzzer's job to
// prove): malformed snapshots — out-of-range or duplicate ranks,
// out-of-range wait targets, nil input — are sanitized, never panicked
// on, and no rank the snapshot does not mark observed is ever accused.
//
// Causes are tested in a fixed precedence order; the first match wins:
//
//  1. below-quorum coverage (strictly less than half observed, the
//     same boundary PartialDiagnosis documents) → unknown;
//  2. collective mismatch — distinct collective instances on one
//     communicator with *mutual* cross-waiting (mutuality keeps
//     root-behind Gather scenarios from misfiring);
//  3. deadlock — a cycle of receive edges;
//  4. straggler chain — someone waits on a rank that is stuck outside
//     MPI (checked before lost-message because the straggler explains
//     every dangling receive pointed at it);
//  5. lost message — a receive naming an observed peer that has moved
//     past any send (into a collective, or terminated);
//  6. unknown.
func Analyze(s *Snapshot) *Diagnosis {
	if s == nil || s.Size <= 0 {
		return &Diagnosis{Cause: CauseUnknown, Detail: "empty snapshot"}
	}
	size := s.Size
	d := &Diagnosis{Cause: CauseUnknown, Size: size}

	// Sanitize: keep the first observed entry per in-range rank, drop
	// out-of-range wait targets. Everything downstream trusts `states`.
	states := make(map[int]RankState, len(s.Ranks))
	for _, rs := range s.Ranks {
		if rs.Rank < 0 || rs.Rank >= size || !rs.Observed {
			continue
		}
		if _, dup := states[rs.Rank]; dup {
			continue
		}
		var waits []int
		for _, w := range rs.WaitingFor {
			if w >= 0 && w < size {
				waits = append(waits, w)
			}
		}
		rs.WaitingFor = waits
		states[rs.Rank] = rs
	}
	d.Observed = len(states)
	if d.Observed == 0 || d.Observed*2 < size {
		d.Detail = fmt.Sprintf("%d/%d ranks observed: below quorum", d.Observed, size)
		return d
	}
	observed := make([]int, 0, len(states))
	for r := range states {
		observed = append(observed, r)
	}
	sort.Ints(observed)

	if diag := classifyMismatch(d, states, observed); diag {
		return d
	}
	if diag := classifyDeadlock(d, states, observed); diag {
		return d
	}
	if diag := classifyStraggler(d, states, observed); diag {
		return d
	}
	if diag := classifyLost(d, states, observed); diag {
		return d
	}
	d.Detail = "no known hang pattern in the observed wait-for graph"
	return d
}

// classifyMismatch looks for ranks split across distinct collective
// instances (different Seq or Op) on the same communicator where the
// groups mutually wait on each other. One-directional waiting is
// normal (a Gather root waits on latecomers); mutual waiting means no
// execution order can ever reconcile the two instances.
func classifyMismatch(d *Diagnosis, states map[int]RankState, observed []int) bool {
	type gkey struct {
		comm int
		seq  uint64
		op   string
	}
	groups := map[gkey][]int{}
	for _, r := range observed {
		rs := states[r]
		if rs.Kind != mpi.BlockedCollective || rs.Comm == mpi.NoComm {
			continue
		}
		k := gkey{rs.Comm, rs.Seq, rs.Op}
		groups[k] = append(groups[k], r)
	}
	byComm := map[int][]gkey{}
	for k := range groups {
		byComm[k.comm] = append(byComm[k.comm], k)
	}
	comms := make([]int, 0, len(byComm))
	for c := range byComm {
		comms = append(comms, c)
	}
	sort.Ints(comms)
	waitSet := func(members []int) map[int]bool {
		set := map[int]bool{}
		for _, r := range members {
			for _, w := range states[r].WaitingFor {
				set[w] = true
			}
		}
		return set
	}
	anyIn := func(members []int, set map[int]bool) bool {
		for _, r := range members {
			if set[r] {
				return true
			}
		}
		return false
	}
	for _, c := range comms {
		keys := byComm[c]
		if len(keys) < 2 {
			continue
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].seq != keys[j].seq {
				return keys[i].seq < keys[j].seq
			}
			return keys[i].op < keys[j].op
		})
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				g1, g2 := groups[keys[i]], groups[keys[j]]
				if !anyIn(g2, waitSet(g1)) || !anyIn(g1, waitSet(g2)) {
					continue
				}
				// Mutual cross-wait found: report every instance on this
				// comm, largest first; culprits are the minority groups.
				for _, k := range keys {
					members := append([]int(nil), groups[k]...)
					sort.Ints(members)
					d.Groups = append(d.Groups, CollGroup{Comm: k.comm, Seq: k.seq, Op: k.op, Ranks: members})
				}
				sort.SliceStable(d.Groups, func(a, b int) bool {
					return len(d.Groups[a].Ranks) > len(d.Groups[b].Ranks)
				})
				for _, g := range d.Groups[1:] {
					d.Culprits = append(d.Culprits, g.Ranks...)
				}
				sort.Ints(d.Culprits)
				d.Cause = CauseCollectiveMismatch
				d.Detail = fmt.Sprintf("ranks split across %d collective instances on comm %d", len(d.Groups), c)
				return true
			}
		}
	}
	return false
}

// classifyDeadlock finds a cycle of receive dependencies. Every
// observed blocked receive with a concrete observed peer contributes
// one edge; since each node has at most one successor the reachable
// structure is a functional graph, and one marked walk per node finds
// a cycle if any exists.
func classifyDeadlock(d *Diagnosis, states map[int]RankState, observed []int) bool {
	succ := map[int]int{}
	for _, r := range observed {
		rs := states[r]
		if rs.Kind != mpi.BlockedRecv || rs.Peer < 0 || rs.Peer >= d.Size {
			continue
		}
		if _, ok := states[rs.Peer]; !ok {
			continue // never accuse (or route evidence through) an unobserved rank
		}
		succ[r] = rs.Peer
	}
	const (
		unseen = 0
		inWalk = 1
		done   = 2
	)
	color := map[int]int{}
	for _, start := range observed {
		if color[start] != unseen {
			continue
		}
		var path []int
		r := start
		for {
			color[r] = inWalk
			path = append(path, r)
			next, ok := succ[r]
			if !ok || color[next] == done {
				break
			}
			if color[next] == inWalk {
				// Cycle: the suffix of path from next onward.
				i := 0
				for path[i] != next {
					i++
				}
				cyc := path[i:]
				for k, from := range cyc {
					to := cyc[(k+1)%len(cyc)]
					d.Cycle = append(d.Cycle, Edge{From: from, To: to,
						Why: fmt.Sprintf("%s src=%d tag=%d", states[from].Op, states[from].Peer, states[from].Tag)})
				}
				d.Culprits = append(d.Culprits, cyc...)
				sort.Ints(d.Culprits)
				d.Cause = CauseDeadlock
				d.Detail = fmt.Sprintf("receive cycle of %d rank(s)", len(cyc))
				return true
			}
			r = next
		}
		for _, p := range path {
			color[p] = done
		}
	}
	return false
}

// classifyStraggler finds observed ranks stuck *outside* MPI that at
// least one observed rank waits on — the compute-stuck stragglers the
// paper's OUT_MPI scan also hunts — and reports a wait chain ending at
// the first one as evidence.
func classifyStraggler(d *Diagnosis, states map[int]RankState, observed []int) bool {
	incoming := map[int][]Edge{}
	for _, r := range observed {
		rs := states[r]
		for _, w := range rs.WaitingFor {
			incoming[w] = append(incoming[w], Edge{From: r, To: w, Why: rs.Op})
		}
	}
	for _, r := range observed {
		if states[r].Kind == mpi.NotBlocked && len(incoming[r]) > 0 {
			d.Culprits = append(d.Culprits, r)
		}
	}
	if len(d.Culprits) == 0 {
		return false
	}
	sort.Ints(d.Culprits)
	// Evidence: one chain of wait edges terminating at the first
	// culprit, extended backward while some new rank waits on the head.
	culprit := d.Culprits[0]
	inChain := map[int]bool{culprit: true}
	head := incoming[culprit][0]
	d.Chain = []Edge{head}
	inChain[head.From] = true
	for len(d.Chain) < d.Size {
		ext, ok := Edge{}, false
		for _, e := range incoming[d.Chain[0].From] {
			if !inChain[e.From] {
				ext, ok = e, true
				break
			}
		}
		if !ok {
			break
		}
		d.Chain = append([]Edge{ext}, d.Chain...)
		inChain[ext.From] = true
	}
	d.Cause = CauseStragglerChain
	d.Detail = fmt.Sprintf("%d rank(s) stuck outside MPI with others waiting on them", len(d.Culprits))
	return true
}

// classifyLost finds a blocked receive naming a concrete observed peer
// that can no longer send: the peer is parked in a collective or has
// terminated, so the wanted message was lost (never sent, in the
// simulated world's eager-send semantics).
func classifyLost(d *Diagnosis, states map[int]RankState, observed []int) bool {
	for _, r := range observed {
		rs := states[r]
		if rs.Kind != mpi.BlockedRecv || rs.Peer < 0 || rs.Peer >= d.Size {
			continue
		}
		peer, ok := states[rs.Peer]
		if !ok {
			continue
		}
		if peer.Kind != mpi.BlockedCollective && peer.Kind != mpi.Terminated {
			continue
		}
		d.Lost = &LostPair{Receiver: r, Sender: rs.Peer, Tag: rs.Tag}
		d.Culprits = []int{r, rs.Peer}
		sort.Ints(d.Culprits)
		d.Cause = CauseLostMessage
		d.Detail = fmt.Sprintf("rank %d waits on tag %d from rank %d, which moved past any send (%s)",
			r, rs.Tag, rs.Peer, peer.Kind)
		return true
	}
	return false
}

// String renders the diagnosis compactly for CLI output.
func (d *Diagnosis) String() string {
	if d == nil {
		return string(CauseUnknown)
	}
	s := string(d.Cause)
	if len(d.Culprits) > 0 {
		s += fmt.Sprintf(" (culprits %v)", d.Culprits)
	}
	if d.Detail != "" {
		s += ": " + d.Detail
	}
	return s
}
