package waitfor

import (
	"testing"

	"parastack/internal/fault"
	"parastack/internal/mpi"
)

// Hand-built snapshot helpers: states default to observed.

func obs(rank int, kind mpi.BlockKind) RankState {
	return RankState{Rank: rank, Observed: true, Kind: kind, Peer: mpi.NoPeer, Comm: mpi.NoComm}
}

func recvOn(rank, peer, tag int) RankState {
	rs := obs(rank, mpi.BlockedRecv)
	rs.Op = "MPI_Recv"
	rs.Peer = peer
	rs.Tag = tag
	if peer >= 0 {
		rs.WaitingFor = []int{peer}
	}
	return rs
}

func collAt(rank, comm int, seq uint64, op string, waiting ...int) RankState {
	rs := obs(rank, mpi.BlockedCollective)
	rs.Op = op
	rs.Comm = comm
	rs.Seq = seq
	rs.WaitingFor = waiting
	return rs
}

func snap(size int, ranks ...RankState) *Snapshot {
	return &Snapshot{Size: size, Ranks: ranks}
}

func TestAnalyzeDegenerateInputs(t *testing.T) {
	for name, s := range map[string]*Snapshot{
		"nil":        nil,
		"zero-size":  snap(0),
		"neg-size":   snap(-3, obs(0, mpi.BlockedRecv)),
		"no-ranks":   snap(8),
		"unobserved": {Size: 2, Ranks: []RankState{{Rank: 0}, {Rank: 1}}},
	} {
		d := Analyze(s)
		if d.Cause != CauseUnknown {
			t.Errorf("%s: cause = %v, want unknown", name, d.Cause)
		}
		if len(d.Culprits) != 0 {
			t.Errorf("%s: culprits = %v, want none", name, d.Culprits)
		}
	}
}

// TestQuorumBoundary pins the coverage threshold: strictly less than
// half observed is unknown; exactly half classifies. Same rule as
// diagnose.PartialDiagnosis.
func TestQuorumBoundary(t *testing.T) {
	// Size 4: 1 observed (below half) → unknown even with a clear self-loop.
	d := Analyze(snap(4, recvOn(0, 0, 1)))
	if d.Cause != CauseUnknown {
		t.Fatalf("1/4 observed: cause = %v, want unknown", d.Cause)
	}
	// Size 4: exactly half observed → the self-loop deadlock is named.
	d = Analyze(snap(4, recvOn(0, 0, 1), obs(1, mpi.Terminated)))
	if d.Cause != CauseDeadlock {
		t.Fatalf("2/4 observed: cause = %v, want deadlock", d.Cause)
	}
	// Size 5: 2 observed (2*2 < 5) → unknown; 3 observed → classifies.
	d = Analyze(snap(5, recvOn(0, 0, 1), obs(1, mpi.Terminated)))
	if d.Cause != CauseUnknown {
		t.Fatalf("2/5 observed: cause = %v, want unknown", d.Cause)
	}
	d = Analyze(snap(5, recvOn(0, 0, 1), obs(1, mpi.Terminated), obs(2, mpi.Terminated)))
	if d.Cause != CauseDeadlock {
		t.Fatalf("3/5 observed: cause = %v, want deadlock", d.Cause)
	}
}

func TestSelfLoopDeadlock(t *testing.T) {
	d := Analyze(snap(2,
		recvOn(0, 0, 0x7fffffff),
		collAt(1, 0, 3, "MPI_Allreduce", 0),
	))
	if d.Cause != CauseDeadlock {
		t.Fatalf("cause = %v, want deadlock", d.Cause)
	}
	if len(d.Cycle) != 1 || d.Cycle[0].From != 0 || d.Cycle[0].To != 0 {
		t.Fatalf("cycle = %+v, want the self-loop 0→0", d.Cycle)
	}
	if len(d.Culprits) != 1 || d.Culprits[0] != 0 {
		t.Fatalf("culprits = %v, want [0]", d.Culprits)
	}
}

func TestMultiCycleReportsOne(t *testing.T) {
	// Two disjoint 2-cycles; the analyzer must report one complete,
	// consistent cycle (deterministically the lowest-ranked one).
	d := Analyze(snap(4,
		recvOn(0, 1, 1), recvOn(1, 0, 1),
		recvOn(2, 3, 2), recvOn(3, 2, 2),
	))
	if d.Cause != CauseDeadlock {
		t.Fatalf("cause = %v, want deadlock", d.Cause)
	}
	if len(d.Cycle) != 2 {
		t.Fatalf("cycle has %d edges, want 2: %+v", len(d.Cycle), d.Cycle)
	}
	if d.Culprits[0] != 0 || d.Culprits[1] != 1 {
		t.Fatalf("culprits = %v, want [0 1]", d.Culprits)
	}
	// The reported cycle must be closed: each edge's To is the next From.
	for i, e := range d.Cycle {
		if next := d.Cycle[(i+1)%len(d.Cycle)]; e.To != next.From {
			t.Fatalf("cycle not closed at edge %d: %+v", i, d.Cycle)
		}
	}
}

func TestLongCycle(t *testing.T) {
	// 0→1→2→3→0 through a chain of receives, plus a disconnected
	// terminated component that must not disturb it.
	d := Analyze(snap(6,
		recvOn(0, 1, 0), recvOn(1, 2, 0), recvOn(2, 3, 0), recvOn(3, 0, 0),
		obs(4, mpi.Terminated), obs(5, mpi.Terminated),
	))
	if d.Cause != CauseDeadlock || len(d.Cycle) != 4 {
		t.Fatalf("diagnosis = %+v, want a 4-cycle deadlock", d)
	}
}

func TestStragglerChain(t *testing.T) {
	// 0 waits on 1, 1 waits on 2, 2 is stuck computing: the chain must
	// terminate at 2 and name only 2 as culprit.
	d := Analyze(snap(3,
		recvOn(0, 1, 7),
		recvOn(1, 2, 7),
		obs(2, mpi.NotBlocked),
	))
	if d.Cause != CauseStragglerChain {
		t.Fatalf("cause = %v, want straggler-chain", d.Cause)
	}
	if len(d.Culprits) != 1 || d.Culprits[0] != 2 {
		t.Fatalf("culprits = %v, want [2]", d.Culprits)
	}
	if len(d.Chain) != 2 {
		t.Fatalf("chain = %+v, want two edges 0→1→2", d.Chain)
	}
	if last := d.Chain[len(d.Chain)-1]; last.To != 2 {
		t.Fatalf("chain ends at %d, want the straggler 2: %+v", last.To, d.Chain)
	}
}

func TestStragglerMultipleCulprits(t *testing.T) {
	// A frozen node: ranks 2 and 3 both stuck computing, both waited on.
	d := Analyze(snap(4,
		collAt(0, 0, 9, "MPI_Allreduce", 2, 3),
		collAt(1, 0, 9, "MPI_Allreduce", 2, 3),
		obs(2, mpi.NotBlocked),
		obs(3, mpi.NotBlocked),
	))
	if d.Cause != CauseStragglerChain {
		t.Fatalf("cause = %v, want straggler-chain", d.Cause)
	}
	if len(d.Culprits) != 2 || d.Culprits[0] != 2 || d.Culprits[1] != 3 {
		t.Fatalf("culprits = %v, want [2 3]", d.Culprits)
	}
}

func TestLostMessage(t *testing.T) {
	d := Analyze(snap(3,
		recvOn(0, 2, 9),
		collAt(1, 0, 4, "MPI_Allreduce", 0, 2),
		collAt(2, 0, 4, "MPI_Allreduce", 0),
	))
	if d.Cause != CauseLostMessage {
		t.Fatalf("cause = %v, want lost-message", d.Cause)
	}
	if d.Lost == nil || d.Lost.Receiver != 0 || d.Lost.Sender != 2 || d.Lost.Tag != 9 {
		t.Fatalf("lost pair = %+v, want receiver 0 / sender 2 / tag 9", d.Lost)
	}
}

func TestLostMessagePeerTerminated(t *testing.T) {
	d := Analyze(snap(2, recvOn(0, 1, 3), obs(1, mpi.Terminated)))
	if d.Cause != CauseLostMessage {
		t.Fatalf("cause = %v, want lost-message", d.Cause)
	}
}

func TestStragglerBeatsLost(t *testing.T) {
	// Both patterns present: rank 0's dangling receive points at the
	// compute-stuck rank 1 — the straggler explains it, so the chain
	// diagnosis must win over lost-message.
	d := Analyze(snap(2, recvOn(0, 1, 3), obs(1, mpi.NotBlocked)))
	if d.Cause != CauseStragglerChain {
		t.Fatalf("cause = %v, want straggler-chain", d.Cause)
	}
}

func TestCollectiveMismatchMutual(t *testing.T) {
	// Rank 2 parked in a Barrier nobody joins; 0 and 1 in an Allreduce
	// missing rank 2. Mutual cross-wait on comm 0 → mismatch, with the
	// minority group accused.
	d := Analyze(snap(3,
		collAt(0, 0, 5, "MPI_Allreduce", 2),
		collAt(1, 0, 5, "MPI_Allreduce", 2),
		collAt(2, 0, 1<<63, "MPI_Barrier", 0, 1),
	))
	if d.Cause != CauseCollectiveMismatch {
		t.Fatalf("cause = %v, want collective-mismatch", d.Cause)
	}
	if len(d.Culprits) != 1 || d.Culprits[0] != 2 {
		t.Fatalf("culprits = %v, want the minority group [2]", d.Culprits)
	}
	if len(d.Groups) != 2 || len(d.Groups[0].Ranks) != 2 {
		t.Fatalf("groups = %+v, want majority-first pair", d.Groups)
	}
}

func TestMismatchRequiresMutuality(t *testing.T) {
	// A Gather whose root lags: non-roots moved on to the next
	// collective and wait on the root; the root waits only on a
	// straggler outside the groups. One-directional → not a mismatch.
	d := Analyze(snap(4,
		collAt(0, 0, 2, "MPI_Gather", 3),       // root, waiting on the straggler
		collAt(1, 0, 3, "MPI_Allreduce", 0, 3), // moved on, waits on root
		collAt(2, 0, 3, "MPI_Allreduce", 0, 3),
		obs(3, mpi.NotBlocked), // the actual straggler
	))
	if d.Cause != CauseStragglerChain {
		t.Fatalf("cause = %v, want straggler-chain (mismatch must not misfire)", d.Cause)
	}
}

func TestMismatchDifferentCommsNoFire(t *testing.T) {
	// Same op, same seq, *different* communicators: not a mismatch (and
	// nothing else matches → unknown).
	d := Analyze(snap(4,
		collAt(0, 1, 0, "MPI_Barrier", 1),
		collAt(1, 1, 0, "MPI_Barrier", 0),
		collAt(2, 2, 0, "MPI_Barrier", 3),
		collAt(3, 2, 0, "MPI_Barrier", 2),
	))
	if d.Cause == CauseCollectiveMismatch {
		t.Fatalf("mismatch fired across different comms: %+v", d)
	}
}

// TestUnobservedNeverAccused: every pattern must refuse to implicate a
// rank the snapshot does not mark observed, even when edges point at it.
func TestUnobservedNeverAccused(t *testing.T) {
	// Straggler pattern with the straggler unobserved.
	d := Analyze(snap(4,
		recvOn(0, 3, 1),
		collAt(1, 0, 2, "MPI_Allreduce", 3),
		collAt(2, 0, 2, "MPI_Allreduce", 3),
		// rank 3 unobserved
	))
	if d.Cause != CauseUnknown {
		t.Fatalf("cause = %v, want unknown with the culprit unobserved", d.Cause)
	}
	// Deadlock pattern where half the cycle is unobserved.
	d = Analyze(snap(4,
		recvOn(0, 3, 1),
		obs(1, mpi.Terminated),
		obs(2, mpi.Terminated),
		// rank 3 (which would close a cycle back to 0) unobserved
	))
	if d.Cause == CauseDeadlock {
		t.Fatalf("deadlock accused through an unobserved rank: %+v", d)
	}
	for _, c := range d.Culprits {
		if c == 3 {
			t.Fatalf("unobserved rank 3 accused: %+v", d)
		}
	}
}

// TestSanitizeAdversarial: duplicate ranks, out-of-range ranks, and
// out-of-range wait targets are dropped, not trusted.
func TestSanitizeAdversarial(t *testing.T) {
	dup := recvOn(0, 0, 1)
	other := obs(0, mpi.Terminated) // duplicate rank 0: first entry wins
	junk := RankState{Rank: -5, Observed: true, Kind: mpi.BlockedRecv, Peer: 0}
	far := RankState{Rank: 99, Observed: true, Kind: mpi.NotBlocked}
	bad := collAt(1, 0, 0, "MPI_Barrier", -7, 42, 0)
	d := Analyze(snap(2, dup, other, junk, far, bad))
	if d.Observed != 2 {
		t.Fatalf("observed = %d, want 2 after sanitizing", d.Observed)
	}
	if d.Cause != CauseDeadlock {
		t.Fatalf("cause = %v, want deadlock from the first rank-0 entry", d.Cause)
	}
	for _, c := range d.Culprits {
		if c < 0 || c >= 2 {
			t.Fatalf("out-of-range culprit %d", c)
		}
	}
}

func TestExpectedCause(t *testing.T) {
	want := map[fault.Kind]Cause{
		fault.None:                  "",
		fault.ComputationHang:       CauseStragglerChain,
		fault.NodeFreeze:            CauseStragglerChain,
		fault.CommunicationDeadlock: CauseDeadlock,
		fault.LostMessage:           CauseLostMessage,
		fault.CollectiveMismatch:    CauseCollectiveMismatch,
	}
	for k, c := range want {
		if got := ExpectedCause(k); got != c {
			t.Errorf("ExpectedCause(%v) = %q, want %q", k, got, c)
		}
	}
}
