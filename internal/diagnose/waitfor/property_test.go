// Property suite: run the full workload × fault × seed grid end to end
// through the experiment harness and assert the diagnosed cause matches
// the injected one, with evidence naming the planned victim. This lives
// in an external test package because it drives internal/experiment,
// which itself imports waitfor.
package waitfor_test

import (
	"fmt"
	"testing"
	"time"

	"parastack/internal/chaos"
	"parastack/internal/core"
	"parastack/internal/diagnose/waitfor"
	"parastack/internal/experiment"
	"parastack/internal/fault"
	"parastack/internal/noise"
	"parastack/internal/workload"
)

// gridParams is a fast 32-rank configuration of a real calibrated
// workload (same shape the experiment harness tests use). Both CG and
// LU calibrations carry ReduceEvery=1, so every iteration ends in a
// global collective — a requirement for the collective-mismatch
// signature to be observable (the healthy majority must reach a
// collective of its own to mutually cross-wait with the orphan).
func gridParams(name string) workload.Params {
	p := workload.MustLookup(name, "D", 256)
	p.Spec = workload.Spec{Name: name, Class: "test", Procs: 32}
	p.Iters = 400
	p.Compute = 120 * time.Millisecond
	p.HaloBytes = 16 << 10
	return p
}

var gridKinds = []fault.Kind{
	fault.ComputationHang,
	fault.NodeFreeze,
	fault.CommunicationDeadlock,
	fault.LostMessage,
	fault.CollectiveMismatch,
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func subset(xs, of []int) bool {
	for _, v := range xs {
		if !contains(of, v) {
			return false
		}
	}
	return true
}

// TestCausePropertyGrid is the tentpole property: for every workload ×
// fault kind × seed cell, the cause diagnosed from the wait-for graph
// at verdict time equals the cause that was injected, and the evidence
// names the planned victim. Chaos is off, so the required accuracy is
// exactly 100% — any mismatch is a classifier bug, not noise.
func TestCausePropertyGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid is not a -short test")
	}
	for _, wl := range []string{"CG", "LU"} {
		for _, kind := range gridKinds {
			for seed := int64(2); seed <= 3; seed++ {
				wl, kind, seed := wl, kind, seed
				t.Run(fmt.Sprintf("%s/%s/seed%d", wl, kind, seed), func(t *testing.T) {
					t.Parallel()
					res := experiment.Run(experiment.RunConfig{
						Params:    gridParams(wl),
						Platform:  noise.Tardis(),
						PPN:       8,
						Seed:      seed,
						FaultKind: kind,
						Monitor:   &core.Config{},
					})
					if !res.Injected {
						t.Fatal("fault not injected")
					}
					if !res.Detected {
						t.Fatal("hang not detected")
					}
					d := res.Diagnosis
					if d == nil {
						t.Fatal("no diagnosis attached to a detected hang")
					}
					want := waitfor.ExpectedCause(kind)
					if d.Cause != want || res.Cause != string(want) {
						t.Fatalf("diagnosed %q (RunResult.Cause %q), injected %s expects %q\nevidence: %s",
							d.Cause, res.Cause, kind, want, d)
					}
					if d.Size != 32 || d.Observed != 32 {
						t.Fatalf("clean-chaos snapshot: observed %d/%d, want full coverage", d.Observed, d.Size)
					}
					if len(res.PlannedFail) == 0 {
						t.Fatal("no planned victim recorded")
					}
					victim := res.PlannedFail[0]

					switch kind {
					case fault.ComputationHang:
						if len(d.Culprits) != 1 || d.Culprits[0] != victim {
							t.Errorf("culprits %v, want exactly the planned victim %v", d.Culprits, res.PlannedFail)
						}
						if len(d.Chain) == 0 || d.Chain[len(d.Chain)-1].To != victim {
							t.Errorf("chain %v does not terminate at victim %d", d.Chain, victim)
						}
					case fault.NodeFreeze:
						if len(d.Culprits) == 0 || !subset(d.Culprits, res.PlannedFail) {
							t.Errorf("culprits %v, want a non-empty subset of the frozen node %v", d.Culprits, res.PlannedFail)
						}
					case fault.CommunicationDeadlock:
						if len(d.Culprits) != 1 || d.Culprits[0] != victim {
							t.Errorf("culprits %v, want exactly the planned victim %v", d.Culprits, res.PlannedFail)
						}
						if len(d.Cycle) == 0 {
							t.Error("deadlock diagnosis carries no cycle evidence")
						}
					case fault.LostMessage:
						if d.Lost == nil {
							t.Fatal("lost-message diagnosis carries no pair")
						}
						if d.Lost.Receiver != victim {
							t.Errorf("lost pair receiver %d, want planned victim %d", d.Lost.Receiver, victim)
						}
						if !contains(d.Culprits, victim) {
							t.Errorf("culprits %v omit the victim %d", d.Culprits, victim)
						}
					case fault.CollectiveMismatch:
						if len(d.Groups) < 2 {
							t.Fatalf("mismatch diagnosis has %d collective group(s), want >= 2", len(d.Groups))
						}
						if !contains(d.Culprits, victim) {
							t.Errorf("culprits %v omit the desynced victim %d", d.Culprits, victim)
						}
					}
				})
			}
		}
	}
}

// TestCauseDegradesUnderChaos is the chaos × diagnosis property
// (satellite: graceful degradation): under the heavy chaos profile the
// classifier may lose coverage and fall back to "unknown", but it must
// never assert a *wrong* named cause — a misdirected root-cause claim
// is worse than no claim.
func TestCauseDegradesUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos grid is not a -short test")
	}
	heavy, err := chaos.Parse("heavy")
	if err != nil {
		t.Fatal(err)
	}
	detected, diagnosed := 0, 0
	for _, kind := range gridKinds {
		for seed := int64(2); seed <= 3; seed++ {
			res := experiment.Run(experiment.RunConfig{
				Params:    gridParams("CG"),
				Platform:  noise.Tardis(),
				PPN:       8,
				Seed:      seed,
				FaultKind: kind,
				Monitor:   &core.Config{},
				Chaos:     heavy,
			})
			if !res.Detected {
				continue // heavy chaos may legitimately blind the detector
			}
			detected++
			if res.Diagnosis == nil {
				continue
			}
			want := string(waitfor.ExpectedCause(kind))
			switch res.Cause {
			case want:
				diagnosed++
			case string(waitfor.CauseUnknown):
				// Honest degradation: fine.
			default:
				t.Errorf("%s seed %d: diagnosed %q under heavy chaos, want %q or unknown\nevidence: %s",
					kind, seed, res.Cause, want, res.Diagnosis)
			}
		}
	}
	if detected == 0 {
		t.Fatal("no run detected under heavy chaos: degradation property never exercised")
	}
	t.Logf("heavy chaos: %d detected, %d correctly diagnosed", detected, diagnosed)
}
