// Package diagnose implements the complementary analyses the paper's
// workflow (Figure 1) hands a detected hang to:
//
//   - STAT-style behavioral grouping: partition ranks into equivalence
//     classes by their current call stack, the first thing a developer
//     looks at after a hang report (Arnold et al., IPDPS'07);
//   - progress-dependency analysis: build the wait-for graph among
//     ranks from their blocking state (Figure 6, middle) and identify
//     the least-progressed ranks — the "traditional" way to find the
//     faulty process, against which ParaStack's simple OUT_MPI scan is
//     contrasted.
//
// Both run on a stopped (or paused) simulation and only read state.
package diagnose

import (
	"fmt"
	"sort"
	"strings"

	"parastack/internal/mpi"
	"parastack/internal/stack"
)

// Verdicts of PartialDiagnosis. Unknown is the honest answer when the
// evidence is too thin to classify a hang: under detector chaos (probe
// loss, dead ranks) a diagnosis may run on a fraction of the world's
// traces, and guessing from a fraction is how healthy ranks get
// accused.
const (
	// Unknown means the trace set cannot support any classification.
	Unknown = "unknown"
	// ComputationError means some observed rank is outside MPI.
	ComputationError = "computation-error"
	// CommunicationError means every observed rank is inside MPI.
	CommunicationError = "communication-error"
)

// PartialDiagnosis classifies a hang from whatever stack traces
// actually arrived: traces maps rank → call chain (outermost first) for
// the subset of the world that answered. It mirrors the paper's §4
// rule — any rank persistently outside MPI makes the error
// computational and that rank a suspect; all-inside-MPI means a
// communication error — but degrades honestly: with no traces, or with
// strictly less than half the world observed, it returns Unknown and
// accuses nobody. The quorum boundary is *exactly half observed
// classifies* (covered*2 >= size): a world of 1 needs its single
// trace, a world of 2 classifies from one trace, and odd sizes round
// the requirement up (2 of 5 is below quorum, 3 of 5 is enough). The
// wait-for classifier (diagnose/waitfor.Analyze) uses this same
// boundary so the two diagnosis layers agree on when evidence is too
// thin. Ranks outside [0, size) and empty call chains are discarded
// rather than trusted, so a corrupted partial capture can never panic
// the diagnosis or put a phantom rank in the accusation list.
func PartialDiagnosis(size int, traces map[int][]string) (verdict string, faulty []int) {
	if size <= 0 {
		return Unknown, nil
	}
	covered := 0
	for rank, frames := range traces {
		if rank < 0 || rank >= size || len(frames) == 0 {
			continue
		}
		covered++
		inMPI := false
		for _, f := range frames {
			if stack.IsMPIFrame(f) {
				inMPI = true
				break
			}
		}
		if !inMPI {
			faulty = append(faulty, rank)
		}
	}
	if covered == 0 || covered*2 < size {
		return Unknown, nil
	}
	if len(faulty) > 0 {
		sort.Ints(faulty)
		return ComputationError, faulty
	}
	return CommunicationError, nil
}

// StackGroup is one behavioral equivalence class: every rank whose
// stack trace renders identically.
type StackGroup struct {
	// Trace is the shared call chain, outermost first.
	Trace []string
	// Ranks are the members, ascending.
	Ranks []int
}

// Key renders the trace as a single string (the grouping key).
func (g StackGroup) Key() string { return strings.Join(g.Trace, ";") }

// GroupByStack partitions all ranks of the world into stack-trace
// equivalence classes, largest class first (ties broken by key). On a
// hung run this typically yields a handful of classes: one giant class
// stuck in the global collective, small classes of the faulty rank's
// neighbors stuck in point-to-point calls, and the faulty rank alone in
// application code.
func GroupByStack(w *mpi.World) []StackGroup {
	byKey := map[string]*StackGroup{}
	for _, r := range w.Ranks() {
		trace := r.Stack().Snapshot()
		key := strings.Join(trace, ";")
		g, ok := byKey[key]
		if !ok {
			g = &StackGroup{Trace: trace}
			byKey[key] = g
		}
		g.Ranks = append(g.Ranks, r.ID())
	}
	out := make([]StackGroup, 0, len(byKey))
	for _, g := range byKey {
		sort.Ints(g.Ranks)
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Ranks) != len(out[j].Ranks) {
			return len(out[i].Ranks) > len(out[j].Ranks)
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}

// WaitEdge is one wait-for dependency: From is blocked until To makes
// progress.
type WaitEdge struct {
	From, To int
	Detail   string
}

// ProgressGraph is the wait-for graph over ranks plus derived results.
type ProgressGraph struct {
	Edges []WaitEdge
	// Blocked[r] reports whether rank r is blocked inside MPI.
	Blocked []bool
	// LeastProgressed are the ranks nobody is certain to be waiting on
	// transitively while they themselves block nobody's progress —
	// concretely: non-blocked, non-terminated ranks that appear as the
	// target of at least one wait chain. These are the faulty-process
	// candidates of the traditional analysis.
	LeastProgressed []int
}

// BuildProgressGraph captures the instantaneous wait-for structure of
// the world. Collective waits produce one edge per missing rank;
// blocked receives produce an edge to their (known) source.
func BuildProgressGraph(w *mpi.World) *ProgressGraph {
	n := w.Size()
	g := &ProgressGraph{Blocked: make([]bool, n)}
	waitedOn := make([]bool, n)
	for _, r := range w.Ranks() {
		info := r.BlockInfo()
		switch info.Kind {
		case mpi.BlockedRecv, mpi.BlockedCollective:
			g.Blocked[r.ID()] = true
			for _, to := range info.WaitingFor {
				g.Edges = append(g.Edges, WaitEdge{From: r.ID(), To: to, Detail: info.Detail})
				waitedOn[to] = true
			}
		}
	}
	for _, r := range w.Ranks() {
		id := r.ID()
		if !g.Blocked[id] && waitedOn[id] && r.BlockInfo().Kind != mpi.Terminated {
			g.LeastProgressed = append(g.LeastProgressed, id)
		}
	}
	return g
}

// Report renders a compact human-readable diagnosis: the stack groups
// and the least-progressed ranks. It is what a user would read after
// ParaStack flags a hang, before attaching a full debugger to the
// handful of implicated ranks.
func Report(w *mpi.World) string {
	var b strings.Builder
	groups := GroupByStack(w)
	fmt.Fprintf(&b, "%d ranks in %d stack equivalence classes:\n", w.Size(), len(groups))
	for i, g := range groups {
		if i >= 8 {
			fmt.Fprintf(&b, "  … %d more classes\n", len(groups)-i)
			break
		}
		fmt.Fprintf(&b, "  [%4d ranks] %s (e.g. rank %d)\n", len(g.Ranks), g.Key(), g.Ranks[0])
	}
	pg := BuildProgressGraph(w)
	fmt.Fprintf(&b, "wait-for graph: %d edges\n", len(pg.Edges))
	if len(pg.LeastProgressed) > 0 {
		fmt.Fprintf(&b, "least-progressed (faulty candidates): %v\n", pg.LeastProgressed)
	} else {
		fmt.Fprintf(&b, "no rank is outside MPI: communication-phase error\n")
	}
	return b.String()
}
