package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// The paper's worked example (§3.1): 16 samples with boundary 0.44375,
// N1 = 7, N0 = 9, R = 4, non-rejection region (4, 14) — so R = 4 must
// reject randomness.
func TestRunsTestPaperExample(t *testing.T) {
	samples := []float64{
		0.2, 0.1, 0.1, 0.2, 0.1, 0.1, 0.0, 0.0,
		0.8, 0.9, 1.0, 0.8, 0.9, 0.1, 0.9, 0.9,
	}
	if got := Mean(samples); math.Abs(got-0.44375) > 1e-12 {
		t.Fatalf("boundary = %v, want 0.44375", got)
	}
	n1, n0, runs := CountRuns(samples, Mean(samples))
	if n1 != 7 || n0 != 9 || runs != 4 {
		t.Fatalf("n1,n0,runs = %d,%d,%d; want 7,9,4", n1, n0, runs)
	}
	res := RunsTest(samples, 0.05)
	if res.Random {
		t.Fatalf("paper example must reject randomness (region [%d,%d])", res.Lo, res.Hi)
	}
	if res.Lo != 5 {
		t.Fatalf("lower bound of region = %d, want 5 (reject at R <= 4)", res.Lo)
	}
}

func TestRunsPMFSumsToOne(t *testing.T) {
	for _, c := range []struct{ n1, n0 int }{{3, 3}, {7, 9}, {10, 10}, {20, 20}, {2, 15}} {
		sum := 0.0
		for r := 2; r <= c.n1+c.n0; r++ {
			p := runsPMF(c.n1, c.n0, r)
			if p < 0 {
				t.Fatalf("negative pmf at n1=%d n0=%d r=%d", c.n1, c.n0, r)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("pmf sum = %v for n1=%d n0=%d, want 1", sum, c.n1, c.n0)
		}
	}
}

func TestRunsTestDegenerateSides(t *testing.T) {
	// All samples on one side of the mean is impossible, but one sample
	// on a side is possible; the paper declares that "not random".
	samples := []float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 10}
	res := RunsTest(samples, 0.05)
	if res.Random {
		t.Fatal("N1 <= 1 must be declared not random")
	}
}

func TestRunsTestAlternatingRejected(t *testing.T) {
	// Perfect alternation has the maximum number of runs: non-random.
	var samples []float64
	for i := 0; i < 20; i++ {
		samples = append(samples, float64(i%2))
	}
	res := RunsTest(samples, 0.05)
	if res.Random {
		t.Fatalf("perfect alternation accepted as random (R=%d region [%d,%d])",
			res.Runs, res.Lo, res.Hi)
	}
}

func TestRunsTestBlockedRejected(t *testing.T) {
	// Two giant blocks: R = 2, non-random.
	var samples []float64
	for i := 0; i < 20; i++ {
		samples = append(samples, float64(i/10))
	}
	res := RunsTest(samples, 0.05)
	if res.Random {
		t.Fatal("two-block sequence accepted as random")
	}
}

func TestRunsTestRandomSequencesMostlyPass(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pass := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		samples := make([]float64, 32)
		for j := range samples {
			samples[j] = rng.Float64()
		}
		if RunsTest(samples, 0.05).Random {
			pass++
		}
	}
	// Expected pass rate ~95%; allow generous slack.
	if pass < trials*85/100 {
		t.Fatalf("only %d/%d random sequences passed", pass, trials)
	}
}

func TestRunsTestNormalApproxLargeSample(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	samples := make([]float64, 200) // n1, n0 > 20 → normal path
	for j := range samples {
		samples[j] = rng.Float64()
	}
	res := RunsTest(samples, 0.05)
	if !res.Random {
		t.Fatalf("large random sequence rejected: R=%d region [%d,%d]", res.Runs, res.Lo, res.Hi)
	}
	// And a pathological large sequence must fail.
	for j := range samples {
		samples[j] = float64(j % 2)
	}
	if RunsTest(samples, 0.05).Random {
		t.Fatal("large alternating sequence accepted")
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.999, 3.090232},
		{0.0005, -3.290527},
	}
	for _, c := range cases {
		if got := normalQuantile(c.p); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("normalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{0.3, 0.1, 0.2, 0.2})
	if e.N() != 4 {
		t.Fatalf("N = %d", e.N())
	}
	cases := []struct{ x, want float64 }{
		{0.05, 0}, {0.1, 0.25}, {0.15, 0.25}, {0.2, 0.75}, {0.3, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := e.F(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("F(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestECDFQuantileInverse(t *testing.T) {
	e := NewECDF([]float64{0.1, 0.2, 0.2, 0.3})
	cases := []struct{ p, want float64 }{
		{0.01, 0.1}, {0.25, 0.1}, {0.26, 0.2}, {0.75, 0.2}, {0.76, 0.3}, {1, 0.3},
	}
	for _, c := range cases {
		if got := e.Quantile(c.p); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

// Property: Quantile(p) is the smallest observed value t with F(t) >= p.
func TestECDFQuantileProperty(t *testing.T) {
	f := func(raw []float64, pRaw float64) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = math.Abs(math.Mod(v, 1000)) // keep finite
			if math.IsNaN(vals[i]) {
				vals[i] = 0
			}
		}
		p := math.Abs(math.Mod(pRaw, 1))
		if p == 0 {
			p = 0.5
		}
		e := NewECDF(vals)
		q := e.Quantile(p)
		if e.F(q) < p-1e-12 {
			return false
		}
		// No smaller observed value satisfies it.
		sort.Float64s(vals)
		for _, v := range vals {
			if v >= q {
				break
			}
			if e.F(v) >= p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestECDFValuesAndBelow(t *testing.T) {
	e := NewECDF([]float64{0.2, 0.1, 0.2, 0.5})
	vals := e.Values()
	want := []float64{0.1, 0.2, 0.5}
	if len(vals) != len(want) {
		t.Fatalf("Values = %v", vals)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("Values = %v, want %v", vals, want)
		}
	}
	if v, ok := e.Below(0.2); !ok || v != 0.1 {
		t.Fatalf("Below(0.2) = %v,%v", v, ok)
	}
	if _, ok := e.Below(0.1); ok {
		t.Fatal("Below(min) should not exist")
	}
}

// The paper's Figure 5 anchor points: with e = 0.3, 0.2, 0.1, 0.05 the
// minimizing (pm, nm) are (0.47, 11), (0.27, 19), (0.12, 42), (0.06, 86).
func TestRequiredSampleSizePaperAnchors(t *testing.T) {
	cases := []struct {
		e, p float64
		n    int
	}{
		{0.3, 0.47, 11},
		{0.2, 0.27, 19},
		{0.1, 0.12, 42},
		{0.05, 0.06, 86},
	}
	for _, c := range cases {
		got := RequiredSampleSize(c.p, c.e)
		// The paper reports 86 for (0.06, 0.05); the exact bound is
		// 86.67, which ceils to 87 — allow off-by-one against the
		// paper's rounding.
		if got < c.n || got > c.n+1 {
			t.Errorf("RequiredSampleSize(%v, %v) = %d, want %d (±1)", c.p, c.e, got, c.n)
		}
	}
}

// Property: the sample-size bound is the max of its terms and
// decreasing in e.
func TestRequiredSampleSizeProperty(t *testing.T) {
	f := func(pRaw, eRaw float64) bool {
		p := 0.01 + math.Abs(math.Mod(pRaw, 0.49))
		e := 0.01 + math.Abs(math.Mod(eRaw, 0.3))
		n := RequiredSampleSize(p, e)
		if float64(n) < 5/p-1 || float64(n) < Z95Sq*p*(1-p)/(e*e)-1 {
			return false
		}
		return RequiredSampleSize(p, e/2) >= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricThreshold(t *testing.T) {
	// Paper: q <= 0.77 ⇒ log_0.77(0.001) = 26.5 ⇒ at most 27 suspicions.
	if got := GeometricThreshold(0.77, 0.001); got != 27 {
		t.Fatalf("GeometricThreshold(0.77, 0.001) = %d, want 27", got)
	}
	if got := GeometricThreshold(0.5, 0.001); got != 10 {
		t.Fatalf("GeometricThreshold(0.5, 0.001) = %d, want 10", got)
	}
	// Threshold must guarantee the tail bound.
	for _, q := range []float64{0.1, 0.3, 0.5, 0.77, 0.9} {
		k := GeometricThreshold(q, 0.001)
		if GeometricTail(q, k) > 0.001+1e-12 {
			t.Errorf("q=%v: tail(k=%d) = %v > alpha", q, k, GeometricTail(q, k))
		}
		if k > 1 && GeometricTail(q, k-1) <= 0.001 {
			t.Errorf("q=%v: k=%d not minimal", q, k)
		}
	}
}

func TestWaldInterval(t *testing.T) {
	lo, hi := WaldInterval(0.5, 100)
	if math.Abs(lo-0.402) > 0.001 || math.Abs(hi-0.598) > 0.001 {
		t.Fatalf("WaldInterval(0.5,100) = [%v, %v]", lo, hi)
	}
	lo, hi = WaldInterval(0.01, 10)
	if lo < 0 || hi > 1 {
		t.Fatal("interval must clamp to [0,1]")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Std-2.138089935) > 1e-6 {
		t.Fatalf("std = %v", s.Std)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0.5, 1.5, 1.6, 2.5, 99}, 0, 1, 3)
	if h[0] != 1 || h[1] != 2 || h[2] != 2 {
		t.Fatalf("histogram = %v", h)
	}
}

func BenchmarkRunsTest16(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 16)
	for i := range samples {
		samples[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunsTest(samples, 0.05)
	}
}

func BenchmarkECDFQuantile(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 512)
	for i := range samples {
		samples[i] = rng.Float64()
	}
	e := NewECDF(samples)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Quantile(0.12)
	}
}
