// Property tests for the significance-test building blocks. They live
// in an external test package so they can also exercise internal/model
// (which imports internal/stats) without an import cycle.
package stats_test

import (
	"math/rand"
	"testing"

	"parastack/internal/model"
	"parastack/internal/stats"
)

// k = ceil(log_q(alpha)) is monotone: demanding higher confidence
// (smaller alpha) can never need fewer consecutive suspicions, and a
// larger suspicion probability q can never need fewer either.
func TestGeometricThresholdMonotone(t *testing.T) {
	qs := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.77, 0.9, 0.99}
	alphas := []float64{1e-6, 1e-5, 1e-4, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5}

	// Non-increasing in alpha at fixed q.
	for _, q := range qs {
		prev := -1
		for i := len(alphas) - 1; i >= 0; i-- { // alpha descending
			k := stats.GeometricThreshold(q, alphas[i])
			if k < 1 {
				t.Fatalf("k(q=%g, alpha=%g) = %d < 1", q, alphas[i], k)
			}
			if prev >= 0 && k < prev {
				t.Errorf("k(q=%g) decreased from %d to %d as alpha shrank to %g",
					q, prev, k, alphas[i])
			}
			prev = k
		}
	}

	// Non-decreasing in q at fixed alpha.
	for _, alpha := range alphas {
		prev := -1
		for _, q := range qs {
			k := stats.GeometricThreshold(q, alpha)
			if prev >= 0 && k < prev {
				t.Errorf("k(alpha=%g) decreased from %d to %d as q grew to %g",
					alpha, prev, k, q)
			}
			prev = k
		}
	}
}

// The returned k is tight: q^k <= alpha but q^(k-1) > alpha.
func TestGeometricThresholdTight(t *testing.T) {
	for _, q := range []float64{0.1, 0.3, 0.5, 0.77, 0.95} {
		for _, alpha := range []float64{1e-5, 0.001, 0.05} {
			k := stats.GeometricThreshold(q, alpha)
			if tail := stats.GeometricTail(q, k); tail > alpha*(1+1e-12) {
				t.Errorf("q=%g alpha=%g: tail(k=%d) = %g > alpha", q, alpha, k, tail)
			}
			if k > 1 {
				if tail := stats.GeometricTail(q, k-1); tail <= alpha*(1-1e-12) {
					t.Errorf("q=%g alpha=%g: k=%d not minimal, tail(k-1) = %g <= alpha",
						q, alpha, k, tail)
				}
			}
		}
	}
}

// Whatever the sample set, a fitted suspicion threshold is an observed
// value: it lies within [min, max] of the samples, the achieved P is a
// valid probability consistent with the ECDF, and q upper-bounds P
// without exceeding QMax.
func TestModelFitThresholdWithinSampleRange(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		m := model.New(0)
		n := 12 + rng.Intn(200)
		lo, span := rng.Float64()*0.4, 0.1+rng.Float64()*0.5
		min, max := 2.0, -1.0
		for i := 0; i < n; i++ {
			// Mix a uniform band with occasional near-zero dips, the shape
			// of real Scrout streams.
			v := lo + rng.Float64()*span
			if rng.Intn(10) == 0 {
				v = rng.Float64() * lo
			}
			if v > 1 {
				v = 1
			}
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			m.Add(v)
		}
		fit, ok := m.Fit()
		if !ok {
			continue // not enough samples for even the coarsest tolerance
		}
		if fit.Threshold < min || fit.Threshold > max {
			t.Fatalf("trial %d: threshold %g outside observed range [%g, %g]",
				trial, fit.Threshold, min, max)
		}
		if fit.P <= 0 || fit.P >= 1 {
			t.Fatalf("trial %d: achieved P = %g not in (0, 1)", trial, fit.P)
		}
		if fit.Q < fit.P || fit.Q > model.QMax {
			t.Fatalf("trial %d: q = %g not in [P=%g, QMax=%g]",
				trial, fit.Q, fit.P, model.QMax)
		}
		// The threshold must actually realize P on the empirical CDF.
		ecdf := stats.NewECDF(m.Samples())
		if got := ecdf.F(fit.Threshold); got != fit.P {
			t.Fatalf("trial %d: Fn(threshold) = %g, fit.P = %g", trial, got, fit.P)
		}
		// And q must be usable by the significance test.
		if k := stats.GeometricThreshold(fit.Q, 0.001); k < 1 || k > 27 {
			t.Fatalf("trial %d: k = %d outside (0, 27] for q = %g", trial, k, fit.Q)
		}
	}
}
