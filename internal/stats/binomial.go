package stats

import "math"

// Z95Sq is 1.96², the squared 95% two-sided normal quantile used by the
// paper's sample-size bound (3.8416 in the text).
const Z95Sq = 1.9599639845400545 * 1.9599639845400545

// RequiredSampleSize returns the paper's rule-of-thumb minimum sample
// size to estimate a Bernoulli probability p within tolerance e at 95%
// confidence:
//
//	n = max(5/p, 5/(1-p), 3.8416·p(1-p)/e²)
//
// The first two terms ensure the normal approximation is valid
// (np > 5 and n(1-p) > 5); the third bounds the CI half-width by e.
// It panics unless 0 < p < 1 and e > 0.
func RequiredSampleSize(p, e float64) int {
	if p <= 0 || p >= 1 {
		panic("stats: RequiredSampleSize needs 0 < p < 1")
	}
	if e <= 0 {
		panic("stats: RequiredSampleSize needs e > 0")
	}
	n := math.Max(5/p, 5/(1-p))
	n = math.Max(n, Z95Sq*p*(1-p)/(e*e))
	return int(math.Ceil(n))
}

// WaldInterval returns the 95% normal-approximation confidence interval
// p̂ ± 1.96·sqrt(p̂(1-p̂)/n), clamped to [0, 1].
func WaldInterval(phat float64, n int) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	half := 1.9599639845400545 * math.Sqrt(phat*(1-phat)/float64(n))
	lo, hi = phat-half, phat+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// GeometricThreshold returns the number k of consecutive suspicions
// needed to reject the "healthy" hypothesis at significance alpha when
// each independent observation is a suspicion with probability q:
//
//	P(Y >= k) = q^k <= alpha  ⇒  k = ceil(log_q(alpha))
//
// It panics unless 0 < q < 1 and 0 < alpha < 1.
func GeometricThreshold(q, alpha float64) int {
	if q <= 0 || q >= 1 {
		panic("stats: GeometricThreshold needs 0 < q < 1")
	}
	if alpha <= 0 || alpha >= 1 {
		panic("stats: GeometricThreshold needs 0 < alpha < 1")
	}
	k := math.Log(alpha) / math.Log(q)
	return int(math.Ceil(k))
}

// GeometricTail returns P(Y >= k) = q^k, the probability of observing
// at least k consecutive suspicions under the healthy hypothesis.
func GeometricTail(q float64, k int) float64 {
	return math.Pow(q, float64(k))
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Sum       float64
}

// Summarize computes descriptive statistics (sample standard deviation,
// n-1 denominator).
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Histogram bins xs into width-sized buckets starting at lo and returns
// the counts; values below lo go into the first bin, values at or above
// lo+width*len(counts) into the last.
func Histogram(xs []float64, lo, width float64, bins int) []int {
	counts := make([]int, bins)
	for _, x := range xs {
		i := int((x - lo) / width)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	return counts
}
