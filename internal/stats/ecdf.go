package stats

import "sort"

// ECDF is an empirical cumulative distribution function over a sample
// set. It supports the two operations ParaStack's model needs:
// evaluating Fn(x) and inverting it (quantiles over observed values).
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from samples (the input slice is not retained).
func NewECDF(samples []float64) *ECDF {
	e := &ECDF{}
	e.Reset(samples)
	return e
}

// Reset reinitializes the ECDF in place from samples, reusing the
// sorted buffer's capacity (the input slice is not retained). Callers
// on hot paths — the monitor refits its model on every sample — use
// this to keep repeated fits allocation-free.
func (e *ECDF) Reset(samples []float64) {
	if cap(e.sorted) < len(samples) {
		e.sorted = make([]float64, len(samples))
	}
	e.sorted = e.sorted[:len(samples)]
	copy(e.sorted, samples)
	sort.Float64s(e.sorted)
}

// N returns the sample count.
func (e *ECDF) N() int { return len(e.sorted) }

// F returns Fn(x) = fraction of samples <= x.
func (e *ECDF) F(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the smallest observed value t with Fn(t) >= p, i.e.
// Fn^{-1}(p). For p <= 0 it returns the minimum; for p > 1 the maximum.
// It panics on an empty ECDF.
func (e *ECDF) Quantile(p float64) float64 {
	n := len(e.sorted)
	if n == 0 {
		panic("stats: quantile of empty ECDF")
	}
	if p <= 0 {
		return e.sorted[0]
	}
	k := int(p * float64(n))
	// Fn(sorted[i]) >= (i+1)/n, so the smallest index with Fn >= p is
	// ceil(p*n) - 1.
	if float64(k) < p*float64(n) {
		k++ // ceil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return e.sorted[k-1]
}

// Values returns distinct observed values in increasing order.
func (e *ECDF) Values() []float64 {
	out := make([]float64, 0, len(e.sorted))
	for i, v := range e.sorted {
		if i == 0 || v != e.sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Below returns the largest observed value strictly below x and whether
// one exists.
func (e *ECDF) Below(x float64) (float64, bool) {
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] >= x })
	if i == 0 {
		return 0, false
	}
	return e.sorted[i-1], true
}
