// Package stats implements the statistical machinery ParaStack relies
// on: the Swed–Eisenhart runs test for randomness (exact for small
// samples, normal approximation for large ones), empirical CDFs with
// quantile inversion, the binomial rule-of-thumb sample-size bound, and
// the geometric significance test that turns consecutive "suspicions"
// into a hang verdict.
package stats

import (
	"math"
)

// RunsResult is the outcome of a runs test on a two-valued sequence.
type RunsResult struct {
	N1   int // count of values >= boundary ("positive")
	N0   int // count of values < boundary ("negative")
	Runs int // number of maximal same-valued stretches

	// Random is the verdict: false means the randomness hypothesis is
	// rejected at the test's significance level (or the test was not
	// applicable, which the paper also treats as "not random" to avoid
	// missing a non-random sampling process).
	Random bool

	// Lo and Hi bound the non-rejection region [Lo, Hi] when the test
	// was applicable; both are 0 otherwise.
	Lo, Hi int
}

// CountRuns codes the samples against the boundary (>= boundary is
// positive) and counts positives, negatives, and runs, exactly as the
// paper's example does.
func CountRuns(samples []float64, boundary float64) (n1, n0, runs int) {
	prev := 0 // 0 = none, 1 = positive, -1 = negative
	for _, s := range samples {
		cur := -1
		if s >= boundary {
			cur = 1
			n1++
		} else {
			n0++
		}
		if cur != prev {
			runs++
			prev = cur
		}
	}
	return n1, n0, runs
}

// Mean returns the arithmetic mean of samples (0 for an empty slice).
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range samples {
		sum += s
	}
	return sum / float64(len(samples))
}

// RunsTest performs a two-tailed runs test for randomness at
// significance level alpha (the paper uses 0.05) on the sample
// sequence, using the sample mean as the coding boundary.
//
// For small samples (N1 <= 20 && N0 <= 20) the exact Swed–Eisenhart
// distribution of the number of runs is used; for larger samples the
// normal approximation. When either side has fewer than two values the
// non-rejection region is unavailable and the sequence is declared
// not random, following the paper's conservative rule.
func RunsTest(samples []float64, alpha float64) RunsResult {
	boundary := Mean(samples)
	n1, n0, runs := CountRuns(samples, boundary)
	res := RunsResult{N1: n1, N0: n0, Runs: runs}
	if n1 <= 1 || n0 <= 1 {
		res.Random = false
		return res
	}
	var lo, hi int
	if n1 <= 20 && n0 <= 20 {
		lo, hi = exactRunsRegion(n1, n0, alpha)
	} else {
		lo, hi = normalRunsRegion(n1, n0, alpha)
	}
	res.Lo, res.Hi = lo, hi
	res.Random = runs >= lo && runs <= hi
	return res
}

// runsPMF returns the exact probability that a random arrangement of
// n1 positives and n0 negatives has exactly r runs.
//
//	P(R = 2k)   = 2·C(n1-1,k-1)·C(n0-1,k-1) / C(n1+n0, n1)
//	P(R = 2k+1) = [C(n1-1,k-1)·C(n0-1,k) + C(n1-1,k)·C(n0-1,k-1)] / C(n1+n0, n1)
func runsPMF(n1, n0, r int) float64 {
	if r < 2 || r > n1+n0 {
		return 0
	}
	denom := lnChoose(n1+n0, n1)
	if r%2 == 0 {
		k := r / 2
		if k-1 > n1-1 || k-1 > n0-1 {
			return 0
		}
		return 2 * math.Exp(lnChoose(n1-1, k-1)+lnChoose(n0-1, k-1)-denom)
	}
	k := (r - 1) / 2
	var p float64
	if k-1 <= n1-1 && k <= n0-1 && k >= 1 {
		p += math.Exp(lnChoose(n1-1, k-1) + lnChoose(n0-1, k) - denom)
	}
	if k <= n1-1 && k-1 <= n0-1 && k >= 1 {
		p += math.Exp(lnChoose(n1-1, k) + lnChoose(n0-1, k-1) - denom)
	}
	return p
}

// exactRunsRegion returns the two-tailed non-rejection region [lo, hi]:
// lo is the smallest r with P(R <= r) > alpha/2, hi the largest r with
// P(R >= r) > alpha/2.
func exactRunsRegion(n1, n0 int, alpha float64) (lo, hi int) {
	maxR := n1 + n0
	// CDF from below.
	cum := 0.0
	lo = 2
	for r := 2; r <= maxR; r++ {
		cum += runsPMF(n1, n0, r)
		if cum > alpha/2 {
			lo = r
			break
		}
	}
	// CDF from above.
	cum = 0.0
	hi = maxR
	for r := maxR; r >= 2; r-- {
		cum += runsPMF(n1, n0, r)
		if cum > alpha/2 {
			hi = r
			break
		}
	}
	return lo, hi
}

// normalRunsRegion uses the large-sample normal approximation:
// mean = 2·n1·n0/n + 1, var = (mean-1)(mean-2)/(n-1).
func normalRunsRegion(n1, n0 int, alpha float64) (lo, hi int) {
	n := float64(n1 + n0)
	mu := 2*float64(n1)*float64(n0)/n + 1
	sigma := math.Sqrt((mu - 1) * (mu - 2) / (n - 1))
	z := normalQuantile(1 - alpha/2)
	lo = int(math.Ceil(mu - z*sigma))
	hi = int(math.Floor(mu + z*sigma))
	if lo < 2 {
		lo = 2
	}
	if hi > n1+n0 {
		hi = n1 + n0
	}
	return lo, hi
}

// lnChoose returns ln(C(n, k)), with C(n, k) = 0 mapped to -Inf.
func lnChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg1, _ := math.Lgamma(float64(n + 1))
	lg2, _ := math.Lgamma(float64(k + 1))
	lg3, _ := math.Lgamma(float64(n - k + 1))
	return lg1 - lg2 - lg3
}

// normalQuantile returns the p-quantile of the standard normal
// distribution using the Acklam rational approximation (relative error
// below 1.15e-9, ample for test thresholds).
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
