package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"parastack/internal/stats"
)

func TestOptimalPMatchesPaperAnchors(t *testing.T) {
	// Figure 5 anchors: e → (pm, nm).
	cases := []struct {
		e, pm float64
		nm    int
	}{
		{0.3, 0.47, 11},
		{0.2, 0.27, 19},
		{0.1, 0.12, 42},
		{0.05, 0.06, 87}, // paper rounds to 86; exact bound ceils to 87
	}
	for _, c := range cases {
		p := optimalP(c.e)
		if math.Abs(p-c.pm) > 0.02 {
			t.Errorf("optimalP(%v) = %v, want ≈%v", c.e, p, c.pm)
		}
		n := stats.RequiredSampleSize(p, c.e)
		if n < c.nm-1 || n > c.nm+1 {
			t.Errorf("n at optimum for e=%v is %d, want ≈%d", c.e, n, c.nm)
		}
	}
}

func TestModelNotReadyWhenEmptyOrTiny(t *testing.T) {
	m := New(0)
	if m.Ready() {
		t.Fatal("empty model ready")
	}
	for i := 0; i < 5; i++ {
		m.Add(float64(i%3) / 10)
	}
	if m.Ready() {
		t.Fatal("5-sample model should not be ready (needs ~11)")
	}
}

func TestModelReadyAfterCoarseLevel(t *testing.T) {
	m := New(0)
	rng := rand.New(rand.NewSource(1))
	// Healthy-looking Scrout samples over {0, 0.1, ..., 1.0}.
	for i := 0; i < 16; i++ {
		m.Add(float64(rng.Intn(11)) / 10)
	}
	fit, ok := m.Fit()
	if !ok {
		t.Fatalf("16 diverse samples should fit at e=0.3; samples=%v", m.Samples())
	}
	if fit.E != 0.3 && fit.E != 0.2 {
		t.Fatalf("fit level = %v, expected a coarse level at n=16", fit.E)
	}
	if fit.Q <= fit.P || fit.Q > QMax {
		t.Fatalf("q = %v must be p+e (p=%v) capped at %v", fit.Q, fit.P, QMax)
	}
}

func TestFitRefinesWithMoreSamples(t *testing.T) {
	m := New(0)
	rng := rand.New(rand.NewSource(2))
	var levels []float64
	for i := 0; i < 300; i++ {
		m.Add(float64(rng.Intn(11)) / 10)
		if f, ok := m.Fit(); ok {
			levels = append(levels, f.E)
		}
	}
	if len(levels) == 0 {
		t.Fatal("model never became ready")
	}
	// Tolerance must (weakly) tighten over time and end at 0.05.
	last := levels[len(levels)-1]
	if last != 0.05 {
		t.Fatalf("final tolerance = %v, want 0.05 with 300 samples", last)
	}
	// The first achieved level must be the coarsest achieved overall.
	if levels[0] < last {
		t.Fatalf("tolerance started finer (%v) than it ended (%v)", levels[0], last)
	}
}

func TestSuspicionThresholdIsLowQuantile(t *testing.T) {
	m := New(0)
	rng := rand.New(rand.NewSource(3))
	// 90% of samples high (0.5..1.0), 10% zero.
	for i := 0; i < 200; i++ {
		if rng.Float64() < 0.1 {
			m.Add(0)
		} else {
			m.Add(0.5 + float64(rng.Intn(6))/10)
		}
	}
	fit, ok := m.Fit()
	if !ok {
		t.Fatal("model not ready")
	}
	if fit.Threshold > 0.11 {
		t.Fatalf("threshold = %v; suspicion should single out the rare zeros", fit.Threshold)
	}
	if fit.P > 0.2 {
		t.Fatalf("achieved p = %v, want ≈0.1", fit.P)
	}
}

func TestDegenerateDistributionNotReady(t *testing.T) {
	// All samples equal: Fn(x)=1 at the only value; no usable suspicion
	// probability exists, the model must refuse to fit.
	m := New(0)
	for i := 0; i < 500; i++ {
		m.Add(0.6)
	}
	if m.Ready() {
		t.Fatal("degenerate model must not be ready")
	}
}

func TestFrequentZerosYieldLargeQ(t *testing.T) {
	// An FT(E)-like distribution where Scrout is very often 0 (long
	// all-to-alls): zero must not be a cheap suspicion — q must be
	// large so that verification needs many consecutive zeros.
	m := New(0)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		if rng.Float64() < 0.45 {
			m.Add(0)
		} else {
			m.Add(0.2 + float64(rng.Intn(9))/10)
		}
	}
	fit, ok := m.Fit()
	if !ok {
		t.Fatal("model not ready")
	}
	if fit.Threshold != 0 {
		t.Fatalf("threshold = %v, want 0", fit.Threshold)
	}
	if fit.Q < 0.4 {
		t.Fatalf("q = %v; with 45%% zeros q must be large", fit.Q)
	}
	k := stats.GeometricThreshold(fit.Q, 0.001)
	if k < 8 {
		t.Fatalf("verification needs only %d consecutive suspicions; too trigger-happy", k)
	}
}

func TestHalveDecimates(t *testing.T) {
	m := New(0)
	for i := 0; i < 10; i++ {
		m.Add(float64(i))
	}
	m.Halve()
	want := []float64{1, 3, 5, 7, 9}
	got := m.Samples()
	if len(got) != len(want) {
		t.Fatalf("halved = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("halved = %v, want %v", got, want)
		}
	}
}

func TestHistoryCap(t *testing.T) {
	m := New(8)
	for i := 0; i < 20; i++ {
		m.Add(float64(i))
	}
	if m.N() != 8 {
		t.Fatalf("N = %d, want 8", m.N())
	}
	if m.Samples()[0] != 12 || m.Samples()[7] != 19 {
		t.Fatalf("cap kept wrong window: %v", m.Samples())
	}
}

func TestRecent(t *testing.T) {
	m := New(0)
	for i := 0; i < 5; i++ {
		m.Add(float64(i))
	}
	r := m.Recent(3)
	if len(r) != 3 || r[0] != 2 || r[2] != 4 {
		t.Fatalf("Recent(3) = %v", r)
	}
	if len(m.Recent(99)) != 5 {
		t.Fatal("Recent with k>n must return all")
	}
}

// Property: whenever the model fits, the threshold is an observed value,
// p equals the empirical probability of suspicion, and n >= MinN.
func TestFitInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 12
		rng := rand.New(rand.NewSource(seed))
		m := New(0)
		for i := 0; i < n; i++ {
			m.Add(float64(rng.Intn(11)) / 10)
		}
		fit, ok := m.Fit()
		if !ok {
			return true
		}
		if m.N() < fit.MinN {
			return false
		}
		// p must equal the fraction of samples <= threshold.
		count := 0
		for _, s := range m.Samples() {
			if s <= fit.Threshold {
				count++
			}
		}
		p := float64(count) / float64(m.N())
		return math.Abs(p-fit.P) < 1e-9 && fit.Q <= QMax && fit.Q > fit.P-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFit256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := New(0)
	for i := 0; i < 256; i++ {
		m.Add(float64(rng.Intn(11)) / 10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Fit()
	}
}
