// Package model implements ParaStack's robust runtime model of the
// Scrout statistic (paper §3.1–3.2): an empirical distribution of
// sampled Scrout values that defines what a "suspicion" is (an unusually
// low Scrout) and a credible upper bound q on the suspicion probability
// at every sample-size level, via the tolerance-error ladder
// e ∈ {0.3, 0.2, 0.1, 0.05}.
package model

import (
	"math"

	"parastack/internal/stats"
)

// ToleranceLevels is the paper's ladder of acceptable estimation errors,
// largest (cheapest) first.
var ToleranceLevels = []float64{0.3, 0.2, 0.1, 0.05}

// Fit is the model's current suspicion definition.
type Fit struct {
	// Threshold t defines a suspicion as Scrout <= t.
	Threshold float64
	// P is the achieved empirical suspicion probability Fn(t) = p_m'.
	P float64
	// E is the tolerance level the fit was accepted at.
	E float64
	// Q = min(P+E, QMax) is the credible (97.5% confidence) upper bound
	// on the true suspicion probability used by the significance test.
	Q float64
	// MinN is the sample size n_m' that justifies this fit.
	MinN int
}

// QMax caps q at the paper's ideal upper bound (p ≤ 0.47 at e = 0.3
// gives q ≤ 0.77). This keeps the geometric verification threshold
// k = ceil(log_q(alpha)) at most 27 for alpha = 0.001, which is what
// lets the monitor alternate between its two disjoint process sets
// every 30 observations and still have time to verify a hang within
// one set's window (§3.3).
const QMax = 0.77

// pMaxCandidate rejects suspicion definitions whose achieved empirical
// probability is so high that q = p + e could not upper-bound the true
// probability within QMax. Distributions denser than this at the bottom
// (e.g. an application that is almost always entirely inside MPI) are
// outside ParaStack's model, like the severe-load-imbalance case the
// paper excludes in §6.
const pMaxCandidate = 0.75

// Model accumulates Scrout samples and produces Fits. The zero value is
// not usable; call New.
type Model struct {
	samples []float64
	maxN    int

	// ecdf is scratch reused by Fit; refitting on every sample is part
	// of the monitor's steady-state hot path and must not allocate.
	ecdf stats.ECDF
}

// New returns a model retaining at most maxHistory samples (oldest
// evicted first). maxHistory <= 0 selects the default of 1024.
func New(maxHistory int) *Model {
	if maxHistory <= 0 {
		maxHistory = 1024
	}
	return &Model{maxN: maxHistory}
}

// Add appends one Scrout sample.
func (m *Model) Add(s float64) {
	if len(m.samples) == m.maxN {
		copy(m.samples, m.samples[1:])
		m.samples = m.samples[:len(m.samples)-1]
	}
	m.samples = append(m.samples, s)
}

// N returns the current sample count.
func (m *Model) N() int { return len(m.samples) }

// Samples returns the retained samples, oldest first (not a copy; do
// not mutate).
func (m *Model) Samples() []float64 { return m.samples }

// Recent returns up to the k most recent samples, oldest first.
func (m *Model) Recent(k int) []float64 {
	if k >= len(m.samples) {
		return m.samples
	}
	return m.samples[len(m.samples)-k:]
}

// Halve decimates the history, keeping every second sample. The paper
// applies this when the sampling interval I is doubled: samples taken
// at mean interval I are twice as dense as samples at 2I, so keeping
// every other one re-normalizes the history to the new interval.
func (m *Model) Halve() {
	out := m.samples[:0]
	for i := 1; i < len(m.samples); i += 2 {
		out = append(out, m.samples[i])
	}
	m.samples = out
}

// optimalP minimizes n(p) = max(5/p, z²·p(1-p)/e²) over p ∈ (0, 0.5] by
// ternary search (the function is unimodal: max of a decreasing and an
// increasing function).
func optimalP(e float64) float64 {
	lo, hi := 1e-4, 0.5
	f := func(p float64) float64 {
		return math.Max(5/p, stats.Z95Sq*p*(1-p)/(e*e))
	}
	for i := 0; i < 80; i++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if f(m1) < f(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	return (lo + hi) / 2
}

// fitAtLevel realizes the tolerance level e on the discrete empirical
// distribution: around the analytic optimum p_m it considers
// t1 = max{X : Fn(X) < p_m} and t2 = min{X : Fn(X) >= p_m} and picks
// the one whose achieved probability needs the smaller sample size
// (paper §3.2). ok is false when no usable candidate exists (e.g. a
// degenerate distribution where every candidate probability is ~1).
func fitAtLevel(ecdf *stats.ECDF, e float64) (Fit, bool) {
	pm := optimalP(e)
	t2 := ecdf.Quantile(pm)
	type cand struct {
		t, p float64
		n    int
	}
	var cands [2]cand // at most t2 and t1; fixed-size to avoid heap churn
	nc := 0
	if p2 := ecdf.F(t2); p2 > 0 && p2 < pMaxCandidate {
		cands[nc] = cand{t2, p2, stats.RequiredSampleSize(p2, e)}
		nc++
	}
	if t1, ok := ecdf.Below(t2); ok {
		if p1 := ecdf.F(t1); p1 > 0 && p1 < pMaxCandidate {
			cands[nc] = cand{t1, p1, stats.RequiredSampleSize(p1, e)}
			nc++
		}
	}
	if nc == 0 {
		return Fit{}, false
	}
	best := cands[0]
	for _, c := range cands[1:nc] {
		if c.n < best.n {
			best = c
		}
	}
	q := best.p + e
	if q > QMax {
		q = QMax
	}
	return Fit{Threshold: best.t, P: best.p, E: e, Q: q, MinN: best.n}, true
}

// Fit returns the finest-tolerance fit the current sample size
// justifies (n >= n_m' at that level), or ok == false if even the
// coarsest level (e = 0.3) is not yet justified — the model-building
// phase of the paper.
func (m *Model) Fit() (Fit, bool) {
	n := len(m.samples)
	if n == 0 {
		return Fit{}, false
	}
	m.ecdf.Reset(m.samples)
	// Try finest tolerance first: 0.05, 0.1, 0.2, 0.3.
	for i := len(ToleranceLevels) - 1; i >= 0; i-- {
		f, ok := fitAtLevel(&m.ecdf, ToleranceLevels[i])
		if ok && n >= f.MinN {
			return f, true
		}
	}
	return Fit{}, false
}

// Ready reports whether enough samples have accumulated for hang
// detection to be active.
func (m *Model) Ready() bool {
	_, ok := m.Fit()
	return ok
}
