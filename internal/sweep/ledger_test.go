package sweep

import (
	"bufio"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"parastack/internal/experiment"
	"parastack/internal/ledger"
	"parastack/internal/noise"
	"parastack/internal/results"
	"parastack/internal/workload"
)

// openTestLedger opens a ledger over a fresh (or existing) DirStore and
// registers both for cleanup.
func openTestLedger(t *testing.T, dir string) *ledger.Ledger {
	t.Helper()
	store, err := ledger.OpenDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	led, err := ledger.Open(store, ledger.Options{BatchSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { led.Close() })
	return led
}

// The ledger sink must hold payloads byte-identical to the JSONL log's
// lines — one marshal point feeds both — and yield the same aggregate.
func TestLedgerSinkBitIdenticalToJSONL(t *testing.T) {
	spec := testSpec()
	ctx := context.Background()

	logPath := filepath.Join(t.TempDir(), "sweep.jsonl")
	fromLog, err := Run(ctx, spec, Options{Run: fakeRun, Workers: 2, Out: logPath})
	if err != nil {
		t.Fatal(err)
	}

	led := openTestLedger(t, filepath.Join(t.TempDir(), "ledger"))
	fromLed, err := Run(ctx, spec, Options{Run: fakeRun, Workers: 2, Sink: led})
	if err != nil {
		t.Fatal(err)
	}
	if err := led.Flush(); err != nil {
		t.Fatal(err)
	}

	if got, want := aggregateJSON(t, fromLed), aggregateJSON(t, fromLog); got != want {
		t.Fatalf("aggregates differ:\nledger: %s\njsonl:  %s", got, want)
	}

	// Byte-for-byte: each JSONL line is exactly the ledger payload for
	// its cell key.
	f, err := os.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := map[string]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines[sc.Text()] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	ledRecs, err := led.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(ledRecs) != fromLog.Total {
		t.Fatalf("ledger holds %d records, want %d", len(ledRecs), fromLog.Total)
	}
	for _, r := range ledRecs {
		if _, ok := lines[string(r.Payload)]; !ok {
			t.Fatalf("ledger payload for %q has no byte-identical JSONL line:\n%s", r.Key, r.Payload)
		}
	}
}

// Kill-and-resume through the ledger: a sweep halted mid-grid and
// resumed from the ledger must aggregate bit-identically to an
// uninterrupted sweep, and a third full resume re-executes nothing —
// the ledger acting as the shared-results cache.
func TestLedgerKillAndResume(t *testing.T) {
	spec := testSpec()
	ctx := context.Background()

	straight, err := Run(ctx, spec, Options{Run: fakeRun, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := aggregateJSON(t, straight)

	dir := filepath.Join(t.TempDir(), "ledger")

	led := openTestLedger(t, dir)
	half, err := Run(ctx, spec, Options{Run: fakeRun, Workers: 2, Sink: led, MaxRuns: straight.Total / 2})
	if err != nil {
		t.Fatal(err)
	}
	if !half.Halted || half.Executed != straight.Total/2 {
		t.Fatalf("halted run: halted=%v executed=%d", half.Halted, half.Executed)
	}
	if err := led.Close(); err != nil { // the "kill": commit and drop the handle
		t.Fatal(err)
	}

	led2 := openTestLedger(t, dir)
	resumed, err := Run(ctx, spec, Options{Run: fakeRun, Workers: 4, Sink: led2, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Complete() {
		t.Fatalf("resumed sweep incomplete: %d/%d", len(resumed.Records), resumed.Total)
	}
	if resumed.Skipped != half.Executed {
		t.Fatalf("resume skipped %d, want %d", resumed.Skipped, half.Executed)
	}
	if got := aggregateJSON(t, resumed); got != want {
		t.Fatalf("resumed aggregate differs:\n got %s\nwant %s", got, want)
	}
	if err := led2.Close(); err != nil {
		t.Fatal(err)
	}

	// Third pass over a complete ledger: pure cache hits, zero
	// executions — the dedup/no-re-execution contract.
	led3 := openTestLedger(t, dir)
	third, err := Run(ctx, spec, Options{Run: fakeRun, Workers: 4, Sink: led3, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if third.Executed != 0 || third.Skipped != third.Total {
		t.Fatalf("third pass executed %d, skipped %d/%d — want all cache hits",
			third.Executed, third.Skipped, third.Total)
	}
	if got := aggregateJSON(t, third); got != want {
		t.Fatalf("third-pass aggregate differs:\n got %s\nwant %s", got, want)
	}
	if err := led3.Close(); err != nil {
		t.Fatal(err)
	}

	// The whole history must audit clean.
	store, err := ledger.OpenDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	rep, err := ledger.Verify(store, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("ledger audit after resume cycle: %v", rep.Problems)
	}
}

// A Sink that cannot replay records cannot resume; the error must say
// so instead of silently re-running everything.
func TestResumeRequiresReader(t *testing.T) {
	_, err := Run(context.Background(), testSpec(), Options{
		Run:    fakeRun,
		Sink:   writeOnlySink{},
		Resume: true,
	})
	if err == nil {
		t.Fatal("Resume with a write-only sink should fail")
	}
}

type writeOnlySink struct{}

func (writeOnlySink) Append(results.Record) error { return nil }
func (writeOnlySink) Close() error                { return nil }

// The orchestrator path (pssweep -grid paper) over a ledger sink:
// campaigns stream into the ledger, a second orchestrator over the same
// ledger replays them without executing.
func TestOrchestratorLedgerSink(t *testing.T) {
	base := experiment.RunConfig{
		Params:   workload.MustLookup("CG", "D", 64),
		Platform: noise.Tardis(),
	}
	ctx := context.Background()
	dir := filepath.Join(t.TempDir(), "ledger")

	led := openTestLedger(t, dir)
	orch, err := NewOrchestrator(ctx, Options{Run: fakeRun, Sink: led})
	if err != nil {
		t.Fatal(err)
	}
	first := orch.Campaign(base, 4, 1)
	if err := orch.Close(); err != nil {
		t.Fatal(err)
	}
	if st := orch.Stats(); st.Executed != 4 {
		t.Fatalf("first orchestrator executed %d, want 4", st.Executed)
	}
	// Close() must NOT close a caller-provided sink. The probe is a
	// well-formed sweep record so later resumes can still replay the
	// ledger.
	probe, err := json.Marshal(Record{Schema: SchemaVersion, Key: "probe", Status: StatusOK})
	if err != nil {
		t.Fatal(err)
	}
	if err := led.Append(results.Record{Key: "probe", Payload: probe}); err != nil {
		t.Fatalf("orchestrator closed the caller's ledger: %v", err)
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}

	led2 := openTestLedger(t, dir)
	orch2, err := NewOrchestrator(ctx, Options{Run: fakeRun, Sink: led2, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	second := orch2.Campaign(base, 4, 1)
	if st := orch2.Stats(); st.Executed != 0 || st.Skipped != 4 {
		t.Fatalf("resumed orchestrator executed %d, skipped %d — want pure replay", st.Executed, st.Skipped)
	}
	for i := range first {
		if first[i].Seed != second[i].Seed || first[i].Detected != second[i].Detected {
			t.Fatalf("replayed campaign result %d differs: %+v vs %+v", i, first[i], second[i])
		}
	}
	if err := orch2.Close(); err != nil {
		t.Fatal(err)
	}
}
