package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"parastack/internal/experiment"
	"parastack/internal/noise"
	"parastack/internal/obs"
	"parastack/internal/workload"
)

// testSpec is a small grid whose cells are cheap under an injected
// executor and quick under the real one.
func testSpec() Spec {
	return Spec{
		Workloads: []workload.Spec{
			{Name: "CG", Class: "D", Procs: 64},
			{Name: "LU", Class: "D", Procs: 64},
		},
		Platforms: []string{"tardis"},
		Faults:    []string{"computation"},
		Seeds:     3,
		Detector:  DetectorSpec{Monitor: true},
	}
}

// fakeRun is a deterministic stand-in executor: the result is a pure
// function of the run configuration.
func fakeRun(rc experiment.RunConfig) experiment.RunResult {
	return experiment.RunResult{
		Spec:       rc.Params.Spec,
		Platform:   rc.Platform.Name,
		Seed:       rc.Seed,
		FaultKind:  rc.FaultKind,
		Injected:   true,
		InjectedAt: time.Duration(rc.Seed) * time.Second,
		Detected:   rc.Seed%2 == 1,
		Delay:      time.Duration(rc.Seed) * 100 * time.Millisecond,
		Completed:  false,
		FinishedAt: time.Duration(rc.Seed) * 10 * time.Second,
	}
}

func aggregateJSON(t *testing.T, o *Outcome) string {
	t.Helper()
	data, err := json.Marshal(o.Aggregate())
	if err != nil {
		t.Fatalf("marshal aggregate: %v", err)
	}
	return string(data)
}

// TestKillAndResume is the determinism contract: a sweep hard-stopped
// mid-grid (MaxRuns, the deterministic crash stand-in) and then
// resumed must produce bit-identical aggregate metrics to an
// uninterrupted sweep.
func TestKillAndResume(t *testing.T) {
	spec := testSpec()
	ctx := context.Background()

	straight, err := Run(ctx, spec, Options{Run: fakeRun, Workers: 4})
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	if !straight.Complete() {
		t.Fatalf("uninterrupted sweep incomplete: %d/%d", len(straight.Records), straight.Total)
	}
	want := aggregateJSON(t, straight)

	log := filepath.Join(t.TempDir(), "sweep.jsonl")
	half, err := Run(ctx, spec, Options{Run: fakeRun, Workers: 2, Out: log, MaxRuns: straight.Total / 2, SyncEvery: 1})
	if err != nil {
		t.Fatalf("halted run: %v", err)
	}
	if !half.Halted {
		t.Fatal("MaxRuns did not halt the sweep")
	}
	if half.Executed != straight.Total/2 {
		t.Fatalf("halted sweep executed %d, want %d", half.Executed, straight.Total/2)
	}

	resumed, err := Resume(ctx, log, spec, Options{Run: fakeRun, Workers: 4})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !resumed.Complete() {
		t.Fatalf("resumed sweep incomplete: %d/%d", len(resumed.Records), resumed.Total)
	}
	if resumed.Skipped != straight.Total/2 {
		t.Fatalf("resume skipped %d, want %d", resumed.Skipped, straight.Total/2)
	}
	if got := aggregateJSON(t, resumed); got != want {
		t.Errorf("resumed aggregate differs from uninterrupted:\n got %s\nwant %s", got, want)
	}

	recs, err := Load(log)
	if err != nil {
		t.Fatalf("load log: %v", err)
	}
	if len(recs) != straight.Total {
		t.Errorf("log holds %d records, want %d", len(recs), straight.Total)
	}
}

// TestKillAndResumeRealRuns repeats the determinism check with the
// real executor, so JSON round-tripping of genuine RunResults is
// covered too.
func TestKillAndResumeRealRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation runs")
	}
	spec := SmokeSpec()
	ctx := context.Background()

	straight, err := Run(ctx, spec, Options{})
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	want := aggregateJSON(t, straight)

	log := filepath.Join(t.TempDir(), "sweep.jsonl")
	if _, err := Run(ctx, spec, Options{Out: log, MaxRuns: 2, SyncEvery: 1}); err != nil {
		t.Fatalf("halted run: %v", err)
	}
	resumed, err := Resume(ctx, log, spec, Options{})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !resumed.Complete() || resumed.Skipped != 2 {
		t.Fatalf("resume: complete=%t skipped=%d", resumed.Complete(), resumed.Skipped)
	}
	if got := aggregateJSON(t, resumed); got != want {
		t.Errorf("resumed aggregate differs from uninterrupted:\n got %s\nwant %s", got, want)
	}
}

// TestRetry exercises the panic-recovery path: a cell that panics once
// is retried and succeeds; a cell that always panics is recorded
// failed without taking the sweep down.
func TestRetry(t *testing.T) {
	spec := testSpec()
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	flakyKey := cells[1].Key()
	doomedKey := cells[3].Key()

	var mu sync.Mutex
	attempts := map[string]int{}
	run := func(rc experiment.RunConfig) experiment.RunResult {
		key := Cell{Workload: workload.Spec{Name: rc.Params.Spec.Name, Class: rc.Params.Spec.Class, Procs: rc.Params.Spec.Procs},
			Platform: rc.Platform.Name, Fault: rc.FaultKind, Seed: rc.Seed}.Key()
		mu.Lock()
		attempts[key]++
		n := attempts[key]
		mu.Unlock()
		if key == doomedKey {
			panic(fmt.Sprintf("doomed cell %s", key))
		}
		if key == flakyKey && n == 1 {
			panic("flaky first attempt")
		}
		return fakeRun(rc)
	}

	rec := obs.New(nil)
	out, err := Run(context.Background(), spec, Options{Run: run, Workers: 1, Retries: 1, Recorder: rec})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !out.Complete() {
		t.Fatalf("sweep incomplete: %d/%d", len(out.Records), out.Total)
	}
	if out.Failed != 1 {
		t.Errorf("failed = %d, want 1", out.Failed)
	}
	// flaky: one retry then success; doomed: initial + 1 retry, failed.
	if out.Retried != 2 {
		t.Errorf("retried = %d, want 2", out.Retried)
	}
	if got := rec.Counter(CtrRunsRetried); got != 2 {
		t.Errorf("counter %s = %d, want 2", CtrRunsRetried, got)
	}
	if got := rec.Counter(CtrRunsFailed); got != 1 {
		t.Errorf("counter %s = %d, want 1", CtrRunsFailed, got)
	}
	if got := rec.Counter(CtrRunsDone); got != int64(out.Total-1) {
		t.Errorf("counter %s = %d, want %d", CtrRunsDone, got, out.Total-1)
	}

	byKey := map[string]Record{}
	for _, r := range out.Records {
		byKey[r.Key] = r
	}
	if r := byKey[flakyKey]; r.Status != StatusOK || r.Attempts != 2 {
		t.Errorf("flaky cell: status=%s attempts=%d, want ok/2", r.Status, r.Attempts)
	}
	if r := byKey[doomedKey]; r.Status != StatusFailed || r.Attempts != 2 || !strings.Contains(r.Error, "doomed") {
		t.Errorf("doomed cell: %+v, want failed/2 with panic message", r)
	}
	if got := len(out.Results()); got != out.Total-1 {
		t.Errorf("Results() = %d runs, want %d (failed cell excluded)", got, out.Total-1)
	}
}

// TestResumeSkipsFailed: failed cells are terminal — resume must not
// re-execute them (deterministic runs would fail again).
func TestResumeSkipsFailed(t *testing.T) {
	spec := testSpec()
	run := func(rc experiment.RunConfig) experiment.RunResult {
		if rc.Seed == 2 {
			panic("always fails")
		}
		return fakeRun(rc)
	}
	log := filepath.Join(t.TempDir(), "sweep.jsonl")
	first, err := Run(context.Background(), spec, Options{Run: run, Retries: -1, Out: log})
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if first.Failed != 2 { // seed 2 of both workloads
		t.Fatalf("first run failed = %d, want 2", first.Failed)
	}
	executed := 0
	resumed, err := Resume(context.Background(), log, spec, Options{
		Run: func(rc experiment.RunConfig) experiment.RunResult { executed++; return fakeRun(rc) },
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if executed != 0 {
		t.Errorf("resume re-executed %d cells of a complete log", executed)
	}
	if resumed.Skipped != resumed.Total || resumed.Failed != 2 {
		t.Errorf("resume: skipped=%d/%d failed=%d, want all skipped, 2 failed", resumed.Skipped, resumed.Total, resumed.Failed)
	}
}

// TestCancellation: a cancelled context stops dispatch, returns the
// context error, and leaves a resumable log.
func TestCancellation(t *testing.T) {
	spec := testSpec()
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	run := func(rc experiment.RunConfig) experiment.RunResult {
		ran++
		if ran == 2 {
			cancel()
		}
		return fakeRun(rc)
	}
	log := filepath.Join(t.TempDir(), "sweep.jsonl")
	out, err := Run(ctx, spec, Options{Run: run, Workers: 1, Out: log})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out.Complete() {
		t.Fatal("cancelled sweep claims completeness")
	}
	resumed, err := Resume(context.Background(), log, spec, Options{Run: fakeRun})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !resumed.Complete() || resumed.Skipped != out.Executed {
		t.Errorf("resume after cancel: complete=%t skipped=%d want skipped=%d",
			resumed.Complete(), resumed.Skipped, out.Executed)
	}
}

// TestLoadTornTail: a truncated final line (hard kill mid-write) is
// dropped; the cell it belonged to is simply re-run on resume.
func TestLoadTornTail(t *testing.T) {
	spec := testSpec()
	log := filepath.Join(t.TempDir(), "sweep.jsonl")
	if _, err := Run(context.Background(), spec, Options{Run: fakeRun, Out: log, SyncEvery: 1}); err != nil {
		t.Fatal(err)
	}
	whole, err := Load(log)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(log)
	if err != nil {
		t.Fatal(err)
	}
	torn := data[:len(data)-25] // cut into the last record
	if err := os.WriteFile(log, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(log)
	if err != nil {
		t.Fatalf("load with torn tail: %v", err)
	}
	if len(recs) != len(whole)-1 {
		t.Fatalf("torn load kept %d records, want %d", len(recs), len(whole)-1)
	}
	resumed, err := Resume(context.Background(), log, spec, Options{Run: fakeRun})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Executed != 1 || !resumed.Complete() {
		t.Errorf("resume after torn tail: executed=%d complete=%t, want 1/true", resumed.Executed, resumed.Complete())
	}

	// Mid-file corruption, by contrast, must be loud.
	bad := append([]byte("{garbage\n"), data...)
	if err := os.WriteFile(log, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(log); err == nil {
		t.Error("Load accepted mid-file corruption")
	}
}

// TestSpecValidation: unknown axis values fail up front.
func TestSpecValidation(t *testing.T) {
	base := testSpec()
	for name, mutate := range map[string]func(*Spec){
		"platform": func(s *Spec) { s.Platforms = []string{"nosuch"} },
		"fault":    func(s *Spec) { s.Faults = []string{"bogus"} },
		"workload": func(s *Spec) { s.Workloads = []workload.Spec{{Name: "ZZ", Class: "D", Procs: 64}} },
		"empty":    func(s *Spec) { s.Workloads = nil },
	} {
		s := base
		mutate(&s)
		if _, err := s.Cells(); err == nil {
			t.Errorf("%s: Cells accepted an invalid spec", name)
		}
	}
}

// TestOrchestratorCampaignResume: the paper-mode seam. A campaign
// interrupted by its MaxRuns budget and re-run through a fresh
// orchestrator over the same log must replay completed runs and
// produce results identical to an uninterrupted campaign.
func TestOrchestratorCampaignResume(t *testing.T) {
	prof, err := noise.Lookup("tardis")
	if err != nil {
		t.Fatal(err)
	}
	base := experiment.RunConfig{
		Params:   workload.MustLookup("CG", "D", 64),
		Platform: prof,
	}
	const n = 6

	mkOpts := func(o Options) Options { o.Run = fakeRun; return o }
	ctx := context.Background()

	straight, err := NewOrchestrator(ctx, mkOpts(Options{}))
	if err != nil {
		t.Fatal(err)
	}
	want := straight.Campaign(base, n, 1)
	if straight.Interrupted() {
		t.Fatal("uninterrupted orchestrator claims interruption")
	}

	log := filepath.Join(t.TempDir(), "campaign.jsonl")
	halted, err := NewOrchestrator(ctx, mkOpts(Options{Out: log, MaxRuns: 3, SyncEvery: 1}))
	if err != nil {
		t.Fatal(err)
	}
	halted.Campaign(base, n, 1)
	if !halted.Interrupted() {
		t.Fatal("MaxRuns did not interrupt the orchestrator")
	}
	if err := halted.Close(); err != nil {
		t.Fatal(err)
	}

	resumed, err := NewOrchestrator(ctx, mkOpts(Options{Out: log, Resume: true}))
	if err != nil {
		t.Fatal(err)
	}
	got := resumed.Campaign(base, n, 1)
	if resumed.Interrupted() {
		t.Fatal("resumed orchestrator claims interruption")
	}
	st := resumed.Stats()
	if st.Skipped != 3 || st.Executed != 3 {
		t.Errorf("resume stats: skipped=%d executed=%d, want 3/3", st.Skipped, st.Executed)
	}
	if err := resumed.Close(); err != nil {
		t.Fatal(err)
	}

	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if string(wantJSON) != string(gotJSON) {
		t.Errorf("resumed campaign differs from uninterrupted:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

// TestFingerprint: identical configurations share a fingerprint;
// changing any outcome-affecting knob changes it; attaching trace
// sinks or recorders does not.
func TestFingerprint(t *testing.T) {
	prof, err := noise.Lookup("tardis")
	if err != nil {
		t.Fatal(err)
	}
	base := experiment.RunConfig{
		Params:   workload.MustLookup("CG", "D", 64),
		Platform: prof,
	}
	fp := Fingerprint(base)
	if Fingerprint(base) != fp {
		t.Fatal("fingerprint unstable across calls")
	}
	withTrace := base
	withTrace.Trace = obs.NewMemSink()
	if Fingerprint(withTrace) != fp {
		t.Error("attaching a trace sink changed the fingerprint")
	}
	changed := base
	changed.PPN = 8
	if Fingerprint(changed) == fp {
		t.Error("changing PPN kept the fingerprint")
	}
	otherWL := base
	otherWL.Params = workload.MustLookup("LU", "D", 64)
	if Fingerprint(otherWL) == fp {
		t.Error("changing workload kept the fingerprint")
	}
}
