package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"parastack/internal/experiment"
	"parastack/internal/results"
)

// ErrClosed is returned by Write/Append on a Log that has been Closed.
// It is a sentinel so callers racing a shutdown can distinguish "the
// log is gone, drop the record or re-route it" from a real I/O failure
// — before the closed flag existed, a late Write hit the closed
// *os.File and surfaced a confusing "file already closed" error after
// up to syncEvery-1 records had already been silently flushed away.
// It aliases the shared results.ErrClosed sentinel, so one errors.Is
// check covers every results sink (the JSONL log, the Merkle ledger).
var ErrClosed = results.ErrClosed

// SchemaVersion tags every results-log record; Load rejects logs
// written by an incompatible schema. The record format is one JSON
// object per line (see Record and the EXPERIMENTS.md "Sweep results
// log" entry for the field-by-field schema).
const SchemaVersion = "parastack-sweep/v1"

// Terminal record statuses.
const (
	// StatusOK marks a run that completed (its Result field is set).
	StatusOK = "ok"
	// StatusFailed marks a run that panicked on every attempt; Error
	// holds the last panic message. Failed cells are terminal: resume
	// does not re-execute them (runs are deterministic, so they would
	// fail again).
	StatusFailed = "failed"
)

// Record is one line of the results log: the terminal outcome of one
// cell. A sweep appends exactly one record per executed cell; on
// resume, the last record for a key wins.
type Record struct {
	// Schema is SchemaVersion.
	Schema string `json:"schema"`
	// Key is the cell's stable identity (Cell.Key, or the campaign
	// fingerprint key for orchestrated campaigns).
	Key string `json:"key"`
	// Index is the cell's position in the expansion order; results are
	// re-assembled in index order so aggregation is order-stable.
	Index int `json:"index"`
	// Status is StatusOK or StatusFailed.
	Status string `json:"status"`
	// Attempts is how many executions the cell took (retries included).
	Attempts int `json:"attempts"`
	// Error is the last panic message of a failed cell.
	Error string `json:"error,omitempty"`
	// Result is the run's full outcome (StatusOK only).
	Result *experiment.RunResult `json:"result,omitempty"`
}

// Log is the durable JSONL results writer. Records are buffered and
// fsync'd in batches (every SyncEvery records and on Close), bounding
// both the syscall rate and the amount of work a crash can lose. Write
// is safe for concurrent use by a sweep's workers.
type Log struct {
	mu        sync.Mutex
	f         *os.File
	bw        *bufio.Writer
	sinceSync int
	every     int
	closed    bool
}

// defaultSyncEvery is the fsync batch size when Options leave it zero.
const defaultSyncEvery = 16

func openLog(path string, truncate bool, syncEvery int) (*Log, error) {
	if syncEvery <= 0 {
		syncEvery = defaultSyncEvery
	}
	flags := os.O_CREATE | os.O_WRONLY
	if truncate {
		flags |= os.O_TRUNC
	} else {
		flags |= os.O_APPEND
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	return &Log{f: f, bw: bufio.NewWriter(f), every: syncEvery}, nil
}

// CreateLog opens (truncating) a fresh results log at path.
func CreateLog(path string, syncEvery int) (*Log, error) {
	return openLog(path, true, syncEvery)
}

// AppendLog opens path for appending (the resume path), creating it if
// absent.
func AppendLog(path string, syncEvery int) (*Log, error) {
	return openLog(path, false, syncEvery)
}

// Write marshals and appends one record, fsyncing if the batch is due.
// It is the legacy entry point, kept as a thin adapter over Append —
// the results.Sink method the sweep machinery now writes through.
// Writing to a closed log returns ErrClosed without touching the file.
func (l *Log) Write(rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return l.Append(results.Record{Key: rec.Key, Payload: data})
}

// Append implements results.Sink: the payload — one already-marshaled
// record — becomes one line of the JSONL log (the key is carried
// inside the payload, so the log ignores rec.Key). Batched fsync and
// the closed-log contract behave exactly as Write always did.
func (l *Log) Append(rec results.Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, err := l.bw.Write(rec.Payload); err != nil {
		return err
	}
	if err := l.bw.WriteByte('\n'); err != nil {
		return err
	}
	l.sinceSync++
	if l.sinceSync >= l.every {
		l.sinceSync = 0
		if err := l.bw.Flush(); err != nil {
			return err
		}
		return l.f.Sync()
	}
	return nil
}

// Close flushes, fsyncs, and closes the log file. A second Close is a
// no-op returning nil, so every exit path of a CLI can close the log
// unconditionally without tracking which path got there first.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	flushErr := l.bw.Flush()
	syncErr := l.f.Sync()
	closeErr := l.f.Close()
	if flushErr != nil {
		return flushErr
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Load reads every record of a results log. A truncated final line
// (the signature of a hard kill mid-write) is tolerated and dropped;
// any other malformed or schema-mismatched line is an error, so silent
// corruption cannot masquerade as completed work.
func Load(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Record
	r := bufio.NewReader(f)
	line := 0
	for {
		data, err := r.ReadBytes('\n')
		complete := err == nil
		if len(bytes.TrimSpace(data)) > 0 {
			line++
			var rec Record
			if uerr := json.Unmarshal(data, &rec); uerr != nil {
				if !complete {
					break // torn tail from a crash: resumable, drop it
				}
				return nil, fmt.Errorf("sweep: %s line %d: %w", path, line, uerr)
			}
			if rec.Schema != SchemaVersion {
				return nil, fmt.Errorf("sweep: %s line %d: schema %q, want %q", path, line, rec.Schema, SchemaVersion)
			}
			out = append(out, rec)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// loadPriorFromReader builds the resume index from any results.Reader
// (the ledger, in practice): each payload is decoded and schema-checked
// exactly as Load checks a JSONL line, and the last record per key
// wins — so resuming against a ledger applies the same semantics as
// resuming against the log it replaces.
func loadPriorFromReader(r results.Reader) (map[string]Record, error) {
	recs, err := r.Records()
	if err != nil {
		return nil, err
	}
	prior := make(map[string]Record, len(recs))
	for i, rr := range recs {
		var rec Record
		if err := json.Unmarshal(rr.Payload, &rec); err != nil {
			return nil, fmt.Errorf("sweep: sink record %d (key %q): %w", i, rr.Key, err)
		}
		if rec.Schema != SchemaVersion {
			return nil, fmt.Errorf("sweep: sink record %d (key %q): schema %q, want %q", i, rr.Key, rec.Schema, SchemaVersion)
		}
		prior[rec.Key] = rec
	}
	return prior, nil
}

// loadPrior builds the resume index: last terminal record per key.
func loadPrior(path string) (map[string]Record, error) {
	recs, err := Load(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]Record{}, nil
		}
		return nil, err
	}
	prior := make(map[string]Record, len(recs))
	for _, r := range recs {
		prior[r.Key] = r
	}
	return prior, nil
}
