package sweep

import (
	"strings"
	"testing"

	"parastack/internal/chaos"
)

// TestChaosAxisExpansion: the chaos axis multiplies the grid like any
// other, chaos-free cells keep the historical key shape (old logs must
// stay resumable), and materialization hands the profile to the run.
func TestChaosAxisExpansion(t *testing.T) {
	spec := testSpec()
	plain, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	spec.Chaos = []string{"none", "heavy"}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*len(plain) {
		t.Fatalf("chaos axis of 2 produced %d cells from %d", len(cells), len(plain))
	}
	for i, c := range plain {
		// "none" cells come first per (workload, platform, fault) point
		// and must key identically to a spec with no chaos axis at all.
		noneIdx := (i/spec.Seeds)*2*spec.Seeds + i%spec.Seeds
		if got := cells[noneIdx]; got.Key() != c.Key() {
			t.Fatalf("cell %d: chaos-free key changed: %q vs %q", i, got.Key(), c.Key())
		}
	}
	sawHeavy := false
	for _, c := range cells {
		switch c.Chaos {
		case "none":
			if strings.Contains(c.Key(), "chaos=") {
				t.Fatalf("chaos-free key mentions chaos: %q", c.Key())
			}
			rc, err := spec.RunConfig(c)
			if err != nil {
				t.Fatal(err)
			}
			if rc.Chaos != nil {
				t.Fatal("none cell materialized a chaos profile")
			}
		case "heavy":
			sawHeavy = true
			if !strings.Contains(c.Key(), "chaos=heavy") {
				t.Fatalf("heavy key lacks chaos segment: %q", c.Key())
			}
			rc, err := spec.RunConfig(c)
			if err != nil {
				t.Fatal(err)
			}
			if rc.Chaos == nil || rc.Chaos.Name != "heavy" {
				t.Fatalf("heavy cell materialized %+v", rc.Chaos)
			}
		}
	}
	if !sawHeavy {
		t.Fatal("no heavy cells in expansion")
	}
}

// TestChaosAxisValidation: typos fail at expansion, not mid-sweep.
func TestChaosAxisValidation(t *testing.T) {
	spec := testSpec()
	spec.Chaos = []string{"hvay"}
	if _, err := spec.Cells(); err == nil {
		t.Fatal("Cells accepted an unknown chaos profile")
	}
}

// TestFingerprintChaos: a disabled/absent chaos profile keeps the
// pre-chaos fingerprint (old campaign logs resume); an enabled one
// changes it (chaotic and clean campaigns never share results).
func TestFingerprintChaos(t *testing.T) {
	spec := testSpec()
	rc, err := spec.RunConfig(Cell{Workload: spec.Workloads[0], Platform: "tardis", Chaos: "none"})
	if err != nil {
		t.Fatal(err)
	}
	fp := Fingerprint(rc)
	disabled := rc
	disabled.Chaos = &chaos.Profile{Name: "noop"}
	if Fingerprint(disabled) != fp {
		t.Error("a no-op chaos profile changed the fingerprint")
	}
	heavy := rc
	if heavy.Chaos, err = chaos.Parse("heavy"); err != nil {
		t.Fatal(err)
	}
	if Fingerprint(heavy) == fp {
		t.Error("enabling chaos kept the fingerprint")
	}
}
