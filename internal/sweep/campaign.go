package sweep

import (
	"context"
	"fmt"
	"hash/fnv"
	"strings"

	"parastack/internal/experiment"
	"parastack/internal/results"
)

// Orchestrator drives ad-hoc campaigns (rather than a declared grid
// Spec) through the sweep machinery: bounded workers, panic
// recovery/retry, a durable results log, and resume. It exists so the
// paper's table generators — which build their RunConfigs imperatively
// — can run as one resumable command (cmd/pssweep -grid paper):
// Orchestrator.Campaign is a drop-in replacement for
// experiment.Campaign that replays completed runs from the log and
// executes only the missing ones.
//
// Campaign cells are keyed by a fingerprint of the run configuration
// (workload calibration, platform profile, detector settings, seed) so
// that two campaigns over the same configuration share results while
// campaigns differing in any knob never collide. Configurations
// carrying ExtraDetectors cannot be fingerprinted (factories are
// opaque functions) and are marked so their keys never match across
// processes.
type Orchestrator struct {
	ctx   context.Context
	opts  Options
	sink  results.Sink
	owned bool // the orchestrator opened the sink and must close it
	prior map[string]Record
	pool  *pool
}

// NewOrchestrator opens (or resumes) the results destination — the
// JSONL log named by opts.Out, or opts.Sink (a ledger) when set — and
// returns an orchestrator ready to serve Campaign calls.
func NewOrchestrator(ctx context.Context, opts Options) (*Orchestrator, error) {
	opts = opts.withDefaults()
	sink, owned, prior, err := opts.openSink()
	if err != nil {
		return nil, err
	}
	return &Orchestrator{ctx: ctx, opts: opts, sink: sink, owned: owned, prior: prior, pool: newPool(opts, sink)}, nil
}

// Campaign runs n seeds (seed0, seed0+1, …) of base and returns results
// in seed order — the experiment.Campaign contract, plus durability:
// completed runs are replayed from the log, fresh ones are executed
// under panic recovery and streamed to it. Failed cells yield a
// placeholder result (identity fields only) so positions stay aligned.
// After cancellation (or an exhausted MaxRuns budget) remaining runs
// are simply missing placeholders too; check Interrupted before
// trusting downstream aggregation.
func (o *Orchestrator) Campaign(base experiment.RunConfig, n int, seed0 int64) []experiment.RunResult {
	group := Fingerprint(base)
	out := make([]experiment.RunResult, n)
	var units []unit
	for i := 0; i < n; i++ {
		seed := seed0 + int64(i)
		key := fmt.Sprintf("%s|seed=%d", group, seed)
		if r, ok := o.prior[key]; ok {
			if r.Result != nil {
				out[i] = *r.Result
			} else {
				out[i] = placeholderResult(base, seed)
			}
			o.pool.noteSkipped(r)
			continue
		}
		rc := base
		rc.Seed = seed
		out[i] = placeholderResult(base, seed) // overwritten on success
		units = append(units, unit{key: key, index: i, rc: rc})
	}
	o.pool.run(o.ctx, units, func(r Record) {
		if r.Status == StatusOK && r.Result != nil {
			out[r.Index] = *r.Result
		}
	})
	return out
}

// Interrupted reports whether the orchestrator stopped early — context
// cancellation or MaxRuns — so callers know the last Campaign results
// may be partial and the sweep should be resumed.
func (o *Orchestrator) Interrupted() bool {
	if o.ctx.Err() != nil {
		return true
	}
	o.pool.mu.Lock()
	defer o.pool.mu.Unlock()
	return o.pool.halted
}

// Stats returns the orchestrator's cumulative progress so far.
func (o *Orchestrator) Stats() Progress {
	p := o.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	return Progress{
		Total: p.total, Done: p.skipped + p.executed,
		Executed: p.executed, Skipped: p.skipped,
		Failed: p.failed, Retried: p.retried,
	}
}

// Err surfaces a results-log write failure, if any occurred.
func (o *Orchestrator) Err() error {
	o.pool.mu.Lock()
	defer o.pool.mu.Unlock()
	return o.pool.logErr
}

// Close flushes and closes the results destination the orchestrator
// opened; a caller-provided Options.Sink stays open (its owner closes
// it — and for a ledger that close is what commits the final batch).
func (o *Orchestrator) Close() error {
	if o.sink == nil || !o.owned {
		return nil
	}
	return o.sink.Close()
}

// placeholderResult carries a run's identity with no outcome, standing
// in for failed or never-executed cells so campaign slices keep their
// seed-order alignment.
func placeholderResult(rc experiment.RunConfig, seed int64) experiment.RunResult {
	return experiment.RunResult{
		Spec:      rc.Params.Spec,
		Platform:  rc.Platform.Name,
		Seed:      seed,
		FaultKind: rc.FaultKind,
	}
}

// Fingerprint derives the stable campaign identity of a run
// configuration: every knob that can change a run's outcome
// participates (workload calibration, platform profile, PPN, fault
// kind and timing, detector configurations, wall limit, probes), while
// observability attachments (Trace, Stats, recorders) and callbacks —
// which never perturb a run — do not. The human-readable prefix keeps
// logs greppable; the hash keeps the key collision-free.
func Fingerprint(rc experiment.RunConfig) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%+v|%+v|ppn=%d|fault=%v|minft=%v|wall=%v|probe=%v|hist=%t",
		rc.Params, rc.Platform, rc.PPN, rc.FaultKind, rc.MinFaultTime,
		rc.WallLimit, rc.ProbeSout, rc.KeepHistory)
	if m := rc.Monitor; m != nil {
		fmt.Fprintf(&b, "|mon=%d,%v,%g,%d,%g,%d,%d,%v,%d,%v,%d,%v,%t,%t,%t,%t",
			m.C, m.InitialInterval, m.Alpha, m.RunsBatch, m.RunsAlpha,
			m.SwitchEvery, m.NumSets, m.TraceCost, m.MaxHistory, m.SlowdownGap,
			m.FaultScans, m.FaultScanGap,
			m.DisableAdaptation, m.DisableSetSwitch, m.DisableSlowdownFilter,
			m.KeepHistory)
	} else {
		b.WriteString("|mon=nil")
	}
	if t := rc.Timeout; t != nil {
		fmt.Fprintf(&b, "|tod=%d,%v,%d,%g", t.C, t.Interval, t.K, t.Threshold)
	} else {
		b.WriteString("|tod=nil")
	}
	fmt.Fprintf(&b, "|wd=%v", rc.Watchdog)
	if rc.Chaos != nil && rc.Chaos.Enabled() {
		// Appended only when chaos is actually on, so every chaos-free
		// configuration keeps the fingerprint it had before the chaos
		// axis existed and old logs stay resumable.
		fmt.Fprintf(&b, "|chaos=%+v", *rc.Chaos)
	}
	if len(rc.ExtraDetectors) > 0 {
		// Factories are opaque: give the key a per-process marker so it
		// can never falsely match a logged record.
		fmt.Fprintf(&b, "|extra=%d,%p", len(rc.ExtraDetectors), rc.ExtraDetectors)
	}
	h := fnv.New64a()
	h.Write([]byte(b.String()))
	return fmt.Sprintf("campaign:%s@%s#%016x", rc.Params.Spec, rc.Platform.Name, h.Sum64())
}
