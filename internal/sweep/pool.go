package sweep

import (
	"sync"

	"parastack/internal/experiment"
)

// Task is one unit of work submitted to a streaming Pool: a stable key
// (for logs and counters) plus the materialized run configuration.
type Task struct {
	// Key identifies the task in records delivered to the submitter's
	// callback (Record.Key).
	Key string
	// Config is the run to execute.
	Config experiment.RunConfig
}

// Pool is the streaming face of the sweep worker pool: where Run and
// Orchestrator.Campaign execute a known work-list, a Pool accepts tasks
// one at a time for as long as it is open. It reuses the same execution
// machinery — per-worker experiment.Runner engine reuse, panic recovery,
// bounded retry, serialized obs counters — which is what lets a
// long-running service (internal/service, cmd/parastackd) multiplex
// thousands of independent jobs over a fixed set of simulator-owning
// workers.
//
// Submit blocks while every worker is busy; that blocking is the pool's
// backpressure signal and callers are expected to propagate it (bounded
// upstream queues, admission rejection) rather than buffer unboundedly.
type Pool struct {
	p     *pool
	tasks chan streamTask

	closeOnce sync.Once
	wg        sync.WaitGroup
}

// streamTask pairs a submitted task with its completion callback.
type streamTask struct {
	u    unit
	done func(Record)
}

// NewPool starts opts.Workers workers (default GOMAXPROCS), each owning
// one experiment.Runner, and returns the open pool. Options.Out/Resume
// are ignored — a streaming pool has no grid to resume; durability is
// the submitter's concern. Options.Retries and Options.Recorder behave
// as in Run.
func NewPool(opts Options) *Pool {
	opts = opts.withDefaults()
	sp := &Pool{
		p:     newPool(opts, nil),
		tasks: make(chan streamTask),
	}
	for w := 0; w < opts.Workers; w++ {
		sp.wg.Add(1)
		go func() {
			defer sp.wg.Done()
			run := opts.Run
			if run == nil {
				// Per-worker Runner: simulator memory is reused across
				// this worker's tasks and never shared between workers.
				run = experiment.NewRunner().Run
			}
			for t := range sp.tasks {
				rec := sp.p.execute(t.u, &run)
				sp.p.mu.Lock()
				sp.p.executed++
				if rec.Status == StatusFailed {
					sp.p.failed++
					sp.p.rec.Count(CtrRunsFailed, 1)
				} else {
					sp.p.rec.Count(CtrRunsDone, 1)
				}
				sp.p.mu.Unlock()
				t.done(rec)
			}
		}()
	}
	return sp
}

// Submit hands one task to the next free worker, blocking until a
// worker accepts it (backpressure). done is invoked from the worker
// goroutine with the task's terminal record — StatusOK with the result,
// or StatusFailed after retries are exhausted — so it must be
// concurrency-safe and cheap. Submit after Close panics (a closed pool
// has no workers left to accept work).
func (sp *Pool) Submit(t Task, done func(Record)) {
	sp.tasks <- streamTask{u: unit{key: t.Key, rc: t.Config}, done: done}
}

// Close stops intake, waits for every in-flight task's callback to
// finish, and releases the workers. Idempotent.
func (sp *Pool) Close() {
	sp.closeOnce.Do(func() { close(sp.tasks) })
	sp.wg.Wait()
}

// Stats returns the pool's cumulative execution counts.
func (sp *Pool) Stats() Progress {
	p := sp.p
	p.mu.Lock()
	defer p.mu.Unlock()
	return Progress{
		Total:    p.total,
		Done:     p.executed,
		Executed: p.executed,
		Failed:   p.failed,
		Retried:  p.retried,
	}
}
