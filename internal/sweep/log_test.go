package sweep

import (
	"errors"
	"path/filepath"
	"testing"
)

func TestLogClosedState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.jsonl")
	l, err := CreateLog(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Write(Record{Schema: SchemaVersion, Key: "a", Status: StatusOK}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Write after Close is the shutdown race; it must be the sentinel,
	// not a raw "file already closed" I/O error.
	if err := l.Write(Record{Schema: SchemaVersion, Key: "b"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("write-after-close error = %v, want ErrClosed", err)
	}
	// Close is idempotent so every CLI exit path can close unconditionally.
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	// The record written before Close survived; the rejected one did not.
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Key != "a" {
		t.Fatalf("log holds %+v, want exactly the pre-close record", recs)
	}
}

func TestLiteralRetries(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, NoRetries},  // literal 0: the user said zero retries
		{-1, NoRetries}, // negative is already "none"
		{1, 1},          // positive passes through
		{5, 5},          //
		{NoRetries, NoRetries},
	}
	for _, c := range cases {
		if got := LiteralRetries(c.in); got != c.want {
			t.Errorf("LiteralRetries(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	// The Options zero value must keep meaning DefaultRetries so
	// zero-struct callers keep the old behavior.
	o := Options{}.withDefaults()
	if o.Retries != DefaultRetries {
		t.Errorf("zero Options retries = %d, want DefaultRetries (%d)", o.Retries, DefaultRetries)
	}
	// And the mapped "literal 0" must come through as none (normalized
	// to an internal 0 — zero re-executions), not as the default.
	o = Options{Retries: LiteralRetries(0)}.withDefaults()
	if o.Retries != 0 {
		t.Errorf("literal-0 retries normalized to %d, want 0", o.Retries)
	}
}
