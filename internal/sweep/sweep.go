package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"

	"parastack/internal/experiment"
	"parastack/internal/obs"
	"parastack/internal/results"
)

// Counter and event names the orchestrator reports through its
// recorder (Options.Recorder).
const (
	CtrRunsDone    = "sweep.runs_done"    // runs completed successfully
	CtrRunsFailed  = "sweep.runs_failed"  // runs that exhausted retries
	CtrRunsRetried = "sweep.runs_retried" // retry attempts after a panic
	CtrRunsSkipped = "sweep.runs_skipped" // cells satisfied from a resumed log

	// EvProgress is the periodic progress event: fields total, done,
	// executed, skipped, failed, retried, eta_ms. Its T field is
	// wall-clock elapsed time (sweeps run outside virtual time).
	EvProgress = "sweep_progress"
)

// Progress is a point-in-time view of a sweep, delivered through
// Options.OnProgress.
type Progress struct {
	// Total is the number of cells in scope so far; Done counts cells
	// with a terminal outcome (executed + skipped-from-log).
	Total, Done int
	// Executed, Skipped, Failed, Retried break Done down.
	Executed, Skipped, Failed, Retried int
	// Elapsed is wall time since the sweep started; ETA extrapolates
	// the remaining cells from the executed ones' mean cost (zero until
	// the first run completes).
	Elapsed, ETA time.Duration
}

// Options tunes a sweep.
type Options struct {
	// Workers bounds the worker pool (default GOMAXPROCS).
	Workers int
	// Retries is how many times a panicking run is re-executed before
	// being recorded as failed (0 = default 1; negative = no retries).
	// The zero-value-selects-default encoding means a literal "zero
	// retries" cannot be spelled as 0 here; callers holding a literal
	// count (CLI flags) convert it with LiteralRetries, which maps 0 to
	// NoRetries.
	Retries int
	// Out is the durable results-log path ("" = in-memory only).
	Out string
	// Sink, when non-nil, receives every terminal record instead of a
	// JSONL log at Out (which is then ignored). Any results.Sink works
	// — the Merkle ledger (internal/ledger) is the canonical one. The
	// sweep flushes records through the sink but never closes a
	// caller-provided sink: the caller owns its lifecycle (and, for a
	// ledger, its final batch commit).
	Sink results.Sink
	// Resume skips cells whose terminal records already exist: loaded
	// from Out (if it exists) instead of truncating it, or — when Sink
	// also implements results.Reader, as the ledger does — from the
	// sink itself, which is what makes a shared ledger a cross-sweep
	// results cache (identical cells dedup instead of re-executing).
	Resume bool
	// SyncEvery is the log's fsync batch size (0 = 16).
	SyncEvery int
	// MaxRuns stops dispatching new runs after this many executions —
	// the deterministic stand-in for a mid-sweep crash used by `make
	// sweep-smoke` and the resume tests (0 = unbounded).
	MaxRuns int
	// Recorder receives the sweep counters and progress events (nil =
	// a private metrics-only recorder). The pool serializes every
	// recorder call under one mutex, so a plain obs.New recorder —
	// which is not itself concurrency-safe — works.
	Recorder obs.Recorder
	// OnProgress, when non-nil, receives throttled progress updates
	// (at most one per ProgressPeriod, plus a final one).
	OnProgress func(Progress)
	// ProgressPeriod throttles OnProgress and EvProgress (0 = 1s).
	ProgressPeriod time.Duration
	// Run overrides the run executor (tests inject panicking runs
	// here). When nil, each worker gets its own experiment.Runner, so
	// consecutive runs on a worker reuse one simulator's memory.
	Run func(experiment.RunConfig) experiment.RunResult
}

// NoRetries is the Options.Retries encoding of "re-execute nothing":
// any negative value works, this one documents intent.
const NoRetries = -1

// DefaultRetries is what Options.Retries = 0 selects.
const DefaultRetries = 1

// LiteralRetries converts a literal retry count — where 0 genuinely
// means zero retries, the natural spelling for a CLI flag — into the
// Options.Retries encoding (whose zero value selects DefaultRetries).
// Negative literals also mean zero retries.
func LiteralRetries(n int) int {
	if n <= 0 {
		return NoRetries
	}
	return n
}

// openSink resolves the options' results destination and resume index:
// a caller-provided Options.Sink (owned=false — the caller closes it),
// or a JSONL log opened at Out (owned=true — the sweep closes it), or
// nil for in-memory-only sweeps. When Resume is set, prior holds the
// last terminal record per key, loaded from whichever source will be
// written.
func (o Options) openSink() (sink results.Sink, owned bool, prior map[string]Record, err error) {
	prior = map[string]Record{}
	if o.Sink != nil {
		if o.Resume {
			r, ok := o.Sink.(results.Reader)
			if !ok {
				return nil, false, nil, fmt.Errorf("sweep: Options.Sink %T does not implement results.Reader, so it cannot resume", o.Sink)
			}
			if prior, err = loadPriorFromReader(r); err != nil {
				return nil, false, nil, err
			}
		}
		return o.Sink, false, prior, nil
	}
	if o.Out == "" {
		return nil, false, prior, nil
	}
	var log *Log
	if o.Resume {
		if prior, err = loadPrior(o.Out); err != nil {
			return nil, false, nil, err
		}
		log, err = AppendLog(o.Out, o.SyncEvery)
	} else {
		log, err = CreateLog(o.Out, o.SyncEvery)
	}
	if err != nil {
		return nil, false, nil, err
	}
	return log, true, prior, nil
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Retries == 0 {
		o.Retries = DefaultRetries
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.ProgressPeriod <= 0 {
		o.ProgressPeriod = time.Second
	}
	if o.Recorder == nil {
		o.Recorder = obs.New(nil) // metrics-only: counters work, events off
	}
	return o
}

// Outcome is what a sweep leaves behind in memory (the durable log
// holds the same records).
type Outcome struct {
	// Spec echoes the grid.
	Spec Spec
	// Records are the terminal records of every completed cell, in
	// cell-index order (cells never executed — cancellation, MaxRuns —
	// are absent).
	Records []Record
	// Total is the grid size; Executed/Skipped/Failed/Retried count
	// what happened to it this invocation.
	Total, Executed, Skipped, Failed, Retried int
	// Halted reports that MaxRuns stopped the sweep early.
	Halted bool
	// Elapsed is the wall time spent.
	Elapsed time.Duration
}

// Results returns the successful runs' outcomes in cell-index order
// (failed cells contribute nothing).
func (o *Outcome) Results() []experiment.RunResult {
	out := make([]experiment.RunResult, 0, len(o.Records))
	for _, r := range o.Records {
		if r.Status == StatusOK && r.Result != nil {
			out = append(out, *r.Result)
		}
	}
	return out
}

// Aggregate computes the paper's campaign metrics over Results. Because
// results are assembled in cell-index order, the aggregation is
// bit-identical whether the sweep ran uninterrupted or was killed and
// resumed any number of times.
func (o *Outcome) Aggregate() experiment.Metrics {
	return experiment.Aggregate(o.Results())
}

// Complete reports whether every cell of the grid has a terminal
// record.
func (o *Outcome) Complete() bool { return len(o.Records) == o.Total }

// unit is one schedulable run: a cell key, its position in the caller's
// result order, and the materialized config.
type unit struct {
	key   string
	index int
	rc    experiment.RunConfig
}

// pool executes units with bounded workers, panic-recovery retry,
// result-sink streaming, and progress reporting. One pool can serve many
// batches (the Orchestrator reuses it across campaigns) so counters,
// the MaxRuns budget, and progress accumulate.
type pool struct {
	opts Options
	sink results.Sink
	rec  obs.Recorder

	mu           sync.Mutex
	total        int // cells in scope (executed + skipped + pending)
	executed     int
	skipped      int
	failed       int
	retried      int
	dispatched   int
	halted       bool
	started      time.Time
	lastProgress time.Time
	logErr       error
}

func newPool(opts Options, sink results.Sink) *pool {
	return &pool{opts: opts, sink: sink, rec: opts.Recorder, started: time.Now()}
}

// writeRecord marshals one terminal record and appends it to sink —
// the single serialization point shared by every backend, which is why
// a ledger-held record is byte-identical to its JSONL line.
func writeRecord(sink results.Sink, rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return sink.Append(results.Record{Key: rec.Key, Payload: data})
}

// noteSkipped accounts for cells satisfied from a resumed log.
func (p *pool) noteSkipped(rec Record) {
	p.mu.Lock()
	p.total++
	p.skipped++
	if rec.Status == StatusFailed {
		p.failed++
	}
	p.rec.Count(CtrRunsSkipped, 1)
	p.mu.Unlock()
}

// run dispatches units to the worker pool and blocks until every
// dispatched unit has a terminal record (delivered through sink, which
// is called with the pool lock held — keep it cheap). It stops feeding
// on context cancellation or an exhausted MaxRuns budget and returns
// ctx.Err() (nil on a clean drain).
func (p *pool) run(ctx context.Context, units []unit, sink func(Record)) error {
	p.mu.Lock()
	p.total += len(units)
	p.mu.Unlock()
	if len(units) == 0 {
		return ctx.Err()
	}
	workers := p.opts.Workers
	if workers > len(units) {
		workers = len(units)
	}
	next := make(chan unit)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run := p.opts.Run
			if run == nil {
				// Per-worker Runner: simulator memory is reused across this
				// worker's runs and never shared between workers.
				run = experiment.NewRunner().Run
			}
			for u := range next {
				rec := p.execute(u, &run)
				p.mu.Lock()
				if p.sink != nil {
					if err := writeRecord(p.sink, rec); err != nil && p.logErr == nil {
						p.logErr = err
					}
				}
				p.executed++
				if rec.Status == StatusFailed {
					p.failed++
					p.rec.Count(CtrRunsFailed, 1)
				} else {
					p.rec.Count(CtrRunsDone, 1)
				}
				sink(rec)
				p.progressLocked(false)
				p.mu.Unlock()
			}
		}()
	}
feed:
	for _, u := range units {
		p.mu.Lock()
		budgetSpent := p.opts.MaxRuns > 0 && p.dispatched >= p.opts.MaxRuns
		if !budgetSpent {
			p.dispatched++
		} else {
			p.halted = true
		}
		p.mu.Unlock()
		if budgetSpent {
			break feed
		}
		select {
		case next <- u:
		case <-ctx.Done():
			// The slot reserved above was never used; give it back so a
			// later batch (Orchestrator) still sees the right budget.
			p.mu.Lock()
			p.dispatched--
			p.mu.Unlock()
			break feed
		}
	}
	close(next)
	wg.Wait()
	p.mu.Lock()
	p.progressLocked(true)
	err := p.logErr
	p.mu.Unlock()
	if err != nil {
		return fmt.Errorf("sweep: results log: %w", err)
	}
	return ctx.Err()
}

// execute runs one unit with panic recovery and bounded retry. run
// points at the worker's executor so a panicked attempt can swap in a
// fresh Runner (a half-run simulator is not safely resettable).
func (p *pool) execute(u unit, run *func(experiment.RunConfig) experiment.RunResult) Record {
	var lastErr string
	for attempt := 1; ; attempt++ {
		res, err := p.runOnce(u.rc, *run)
		if err != nil && p.opts.Run == nil {
			*run = experiment.NewRunner().Run
		}
		if err == nil {
			return Record{Schema: SchemaVersion, Key: u.key, Index: u.index,
				Status: StatusOK, Attempts: attempt, Result: res}
		}
		lastErr = err.Error()
		if attempt > p.opts.Retries {
			return Record{Schema: SchemaVersion, Key: u.key, Index: u.index,
				Status: StatusFailed, Attempts: attempt, Error: lastErr}
		}
		p.mu.Lock()
		p.retried++
		p.rec.Count(CtrRunsRetried, 1)
		p.mu.Unlock()
	}
}

// runOnce executes one run, converting a panic into an error so a bad
// cell cannot take the sweep down.
func (p *pool) runOnce(rc experiment.RunConfig, run func(experiment.RunConfig) experiment.RunResult) (res *experiment.RunResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("run panicked: %v", r)
		}
	}()
	r := run(rc)
	return &r, nil
}

// progressLocked emits a progress update (throttled unless final).
// Callers hold p.mu.
func (p *pool) progressLocked(final bool) {
	now := time.Now()
	if !final && now.Sub(p.lastProgress) < p.opts.ProgressPeriod {
		return
	}
	p.lastProgress = now
	pr := Progress{
		Total:    p.total,
		Done:     p.skipped + p.executed,
		Executed: p.executed,
		Skipped:  p.skipped,
		Failed:   p.failed,
		Retried:  p.retried,
		Elapsed:  now.Sub(p.started),
	}
	if remaining := pr.Total - pr.Done; p.executed > 0 && remaining > 0 {
		pr.ETA = time.Duration(float64(pr.Elapsed) / float64(p.executed) * float64(remaining))
	}
	if p.rec.Enabled() {
		p.rec.Event(pr.Elapsed, EvProgress,
			obs.Int("total", int64(pr.Total)),
			obs.Int("done", int64(pr.Done)),
			obs.Int("executed", int64(pr.Executed)),
			obs.Int("skipped", int64(pr.Skipped)),
			obs.Int("failed", int64(pr.Failed)),
			obs.Int("retried", int64(pr.Retried)),
			obs.Dur("eta_ms", pr.ETA))
	}
	if p.opts.OnProgress != nil {
		p.opts.OnProgress(pr)
	}
}

// Run executes a sweep over spec's grid. Cancellation of ctx stops
// dispatching (runs already in flight finish — a simulated run is not
// interruptible mid-engine), flushes the log, and returns the partial
// Outcome together with ctx.Err(); rerunning with Options.Resume picks
// up exactly where the log left off.
func Run(ctx context.Context, spec Spec, opts Options) (*Outcome, error) {
	start := time.Now()
	opts = opts.withDefaults()
	spec = spec.withDefaults()
	cells, err := spec.Cells()
	if err != nil {
		return nil, err
	}

	sink, owned, prior, err := opts.openSink()
	if err != nil {
		return nil, err
	}
	closeSink := func() error {
		if sink == nil || !owned {
			return nil
		}
		return sink.Close()
	}

	p := newPool(opts, sink)
	final := make([]*Record, len(cells))
	var units []unit
	for _, c := range cells {
		key := c.Key()
		if r, ok := prior[key]; ok {
			r.Index = c.Index // identity is the key; index follows this spec
			rr := r
			final[c.Index] = &rr
			p.noteSkipped(r)
			continue
		}
		rc, err := spec.RunConfig(c)
		if err != nil {
			closeSink()
			return nil, err
		}
		units = append(units, unit{key: key, index: c.Index, rc: rc})
	}

	runErr := p.run(ctx, units, func(r Record) {
		rr := r
		final[r.Index] = &rr
	})
	if cerr := closeSink(); cerr != nil && runErr == nil {
		runErr = cerr
	}

	out := &Outcome{Spec: spec, Total: len(cells), Elapsed: time.Since(start)}
	p.mu.Lock()
	out.Executed, out.Skipped, out.Failed, out.Retried, out.Halted =
		p.executed, p.skipped, p.failed, p.retried, p.halted
	p.mu.Unlock()
	for _, r := range final {
		if r != nil {
			out.Records = append(out.Records, *r)
		}
	}
	return out, runErr
}

// Resume re-runs spec against the results log at path, skipping every
// cell the log already holds; it is Run with Options.Out/Resume set.
func Resume(ctx context.Context, path string, spec Spec, opts Options) (*Outcome, error) {
	opts.Out = path
	opts.Resume = true
	return Run(ctx, spec, opts)
}
