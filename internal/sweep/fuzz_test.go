package sweep

// Robustness of the results-log reader (satellite): Load is the resume
// path's foundation, so it must never panic on a corrupted log and
// must refuse — loudly — anything that is not a torn tail.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// validLine builds one well-formed log line.
func validLine(key string, index int) string {
	return fmt.Sprintf(`{"schema":%q,"key":%q,"index":%d,"status":"ok","attempts":1}`,
		SchemaVersion, key, index)
}

func writeLog(t testing.TB, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "log.jsonl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadCorruptionTable enumerates the corruption shapes the fuzzer
// explores, pinning the intended verdict for each: only a torn final
// line is forgiven.
func TestLoadCorruption(t *testing.T) {
	v0, v1 := validLine("a", 0), validLine("b", 1)
	cases := []struct {
		name    string
		content string
		wantErr bool
		wantN   int
	}{
		{"empty file", "", false, 0},
		{"blank lines only", "\n\n  \n", false, 0},
		{"two valid records", v0 + "\n" + v1 + "\n", false, 2},
		{"torn tail", v0 + "\n" + v1[:len(v1)-9], false, 1},
		{"mid-file garbage", v0 + "\n{garbage\n" + v1 + "\n", true, 0},
		{"garbage first line", "{garbage\n" + v0 + "\n", true, 0},
		{"complete non-JSON last line", v0 + "\nnot json at all\n", true, 0},
		{"schema mismatch", v0 + "\n" + strings.Replace(v1, SchemaVersion, "parastack-sweep/v999", 1) + "\n", true, 0},
		{"missing schema", v0 + "\n" + `{"key":"c","status":"ok"}` + "\n", true, 0},
		{"wrong JSON shape (array)", "[1,2,3]\n", true, 0},
		{"wrong JSON shape (scalar)", "42\n", true, 0},
		{"wrong field type", v0 + "\n" + `{"schema":"` + SchemaVersion + `","key":"c","index":"NaN"}` + "\n", true, 0},
		// encoding/json keeps the last duplicate, so a duplicated schema
		// key whose final value mismatches must be rejected …
		{"duplicate schema key, bad last", `{"schema":%q,"schema":"bogus","key":"a"}`, true, 0},
		// … while a benign duplicate parses like its last value.
		{"duplicate key field", fmt.Sprintf(`{"schema":%q,"key":"a","key":"b","status":"ok"}`, SchemaVersion) + "\n", false, 1},
	}
	for _, c := range cases {
		content := c.content
		if strings.Contains(content, "%q") {
			content = fmt.Sprintf(content, SchemaVersion) + "\n"
		}
		recs, err := Load(writeLog(t, content))
		if c.wantErr {
			if err == nil {
				t.Errorf("%s: Load accepted corruption (%d records)", c.name, len(recs))
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: Load failed: %v", c.name, err)
			continue
		}
		if len(recs) != c.wantN {
			t.Errorf("%s: %d records, want %d", c.name, len(recs), c.wantN)
		}
	}
}

// FuzzLoad hammers the reader with arbitrary bytes (seeded with every
// corruption shape of the table above): whatever the input, Load must
// return cleanly — no panic, no hang — and anything it does accept must
// carry the current schema on every record.
func FuzzLoad(f *testing.F) {
	v0, v1 := validLine("a", 0), validLine("b", 1)
	f.Add([]byte(v0 + "\n" + v1 + "\n"))
	f.Add([]byte(""))
	f.Add([]byte(v0 + "\n" + v1[:len(v1)-9]))
	f.Add([]byte(v0 + "\n{garbage\n" + v1 + "\n"))
	f.Add([]byte(`{"schema":"parastack-sweep/v999","key":"a"}` + "\n"))
	f.Add([]byte(`{"schema":"` + SchemaVersion + `","schema":"x","key":"a"}` + "\n"))
	f.Add([]byte("[1,2,3]\n42\nnull\n"))
	f.Add([]byte(v0 + "\n\x00\xff\xfe\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		recs, err := Load(path)
		if err != nil {
			return // rejected loudly: exactly the contract
		}
		for i, r := range recs {
			if r.Schema != SchemaVersion {
				t.Fatalf("record %d accepted with schema %q", i, r.Schema)
			}
		}
	})
}
