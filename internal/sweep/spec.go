// Package sweep is the resumable, fault-tolerant campaign orchestrator
// behind the paper's evaluation at scale: it expands a grid Spec
// (workloads × platforms × fault kinds × seeds) into a deterministic
// work-list of cells, executes them on a bounded worker pool with
// per-run panic recovery and bounded retry, streams every result to a
// durable schema-versioned JSONL log, and can resume an interrupted
// sweep by skipping the cells the log already holds.
//
// Determinism is the load-bearing property: each cell's run owns its
// engine and derives all randomness from the cell's seed, so killing a
// sweep mid-grid and resuming yields bit-identical aggregate metrics to
// an uninterrupted sweep. Results are always assembled in cell-index
// order regardless of worker scheduling, which keeps floating-point
// aggregation order-stable too.
package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"parastack/internal/chaos"
	"parastack/internal/core"
	"parastack/internal/experiment"
	"parastack/internal/fault"
	"parastack/internal/noise"
	"parastack/internal/timeout"
	"parastack/internal/workload"
)

// DetectorSpec selects which detector(s) a sweep attaches to every run.
// The zero value attaches none (a clean observation sweep, e.g. for
// false-positive studies).
type DetectorSpec struct {
	// Monitor attaches ParaStack with the paper's defaults.
	Monitor bool `json:"monitor"`
	// Alpha overrides the hang-test significance level (0 = default
	// 0.001); only meaningful with Monitor.
	Alpha float64 `json:"alpha,omitempty"`
	// IntervalMS overrides ParaStack's initial sampling interval I0 in
	// milliseconds (0 = default 400).
	IntervalMS int `json:"interval_ms,omitempty"`
	// TimeoutK attaches the fixed-(I,K) baseline when > 0, with
	// TimeoutIntervalMS as I (0 = the baseline's 400ms default).
	TimeoutK          int `json:"timeout_k,omitempty"`
	TimeoutIntervalMS int `json:"timeout_interval_ms,omitempty"`
	// WatchdogSec attaches the activity watchdog when > 0.
	WatchdogSec float64 `json:"watchdog_sec,omitempty"`
}

// Spec declares a sweep grid. It is JSON-serializable so grids can live
// in files (cmd/pssweep -grid FILE); string-keyed fields (platforms,
// faults) are validated against the live registries at expansion time.
type Spec struct {
	// Workloads are the benchmark configurations to sweep.
	Workloads []workload.Spec `json:"workloads"`
	// Platforms are noise-profile names ("tardis", "tianhe2",
	// "stampede").
	Platforms []string `json:"platforms"`
	// Faults are fault-kind names understood by fault.Parse ("none",
	// "computation", "node", "deadlock").
	Faults []string `json:"faults"`
	// Chaos are detector-chaos profile names understood by chaos.Parse
	// ("none", "light", "probe-loss", "heavy", …); empty means ["none"].
	// Each name multiplies the grid like any other axis.
	Chaos []string `json:"chaos,omitempty"`
	// Seeds is how many seeds each (workload, platform, fault) point
	// runs: Seed0, Seed0+1, … (default 1).
	Seeds int `json:"seeds"`
	// Seed0 is the first seed (default 1).
	Seed0 int64 `json:"seed0,omitempty"`
	// Detector configures the detector(s) attached to every run.
	Detector DetectorSpec `json:"detector"`
	// MinFaultSec overrides RunConfig.MinFaultTime, in seconds.
	MinFaultSec float64 `json:"min_fault_sec,omitempty"`
	// WallLimitSec overrides RunConfig.WallLimit, in seconds.
	WallLimitSec float64 `json:"wall_limit_sec,omitempty"`
}

// Cell is one point of an expanded grid: a fully determined run
// identity. Index is the cell's position in the deterministic
// expansion order (workloads, then platforms, faults, chaos, seeds).
type Cell struct {
	Index    int
	Workload workload.Spec
	Platform string
	Fault    fault.Kind
	Chaos    string
	Seed     int64
}

// Key is the cell's stable identity in the results log: resume matches
// completed cells by this string, never by index, so reordering a grid
// cannot mis-attribute results. Chaos-free cells keep the historical
// key shape (no chaos segment), so logs written before the chaos axis
// existed still resume cleanly.
func (c Cell) Key() string {
	if c.Chaos != "" && c.Chaos != "none" {
		return fmt.Sprintf("%s|%s|%s|chaos=%s|seed=%d", c.Workload, c.Platform, c.Fault, c.Chaos, c.Seed)
	}
	return fmt.Sprintf("%s|%s|%s|seed=%d", c.Workload, c.Platform, c.Fault, c.Seed)
}

func (s Spec) withDefaults() Spec {
	if s.Seeds == 0 {
		s.Seeds = 1
	}
	if s.Seed0 == 0 {
		s.Seed0 = 1
	}
	return s
}

// Cells expands the grid into its deterministic work-list, validating
// every axis value (unknown platforms, fault kinds, or uncalibrated
// workloads are reported as errors up front, not as mid-sweep panics).
func (s Spec) Cells() ([]Cell, error) {
	s = s.withDefaults()
	if len(s.Workloads) == 0 || len(s.Platforms) == 0 {
		return nil, fmt.Errorf("sweep: spec needs at least one workload and one platform")
	}
	faults := s.Faults
	if len(faults) == 0 {
		faults = []string{"none"}
	}
	for _, w := range s.Workloads {
		if _, err := workload.Lookup(w.Name, w.Class, w.Procs); err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
	}
	for _, p := range s.Platforms {
		if _, err := noise.Lookup(p); err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
	}
	kinds := make([]fault.Kind, len(faults))
	for i, f := range faults {
		k, err := fault.Parse(f)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		kinds[i] = k
	}
	chaosNames := s.Chaos
	if len(chaosNames) == 0 {
		chaosNames = []string{"none"}
	}
	for _, name := range chaosNames {
		if _, err := chaos.Parse(name); err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
	}
	cells := make([]Cell, 0, len(s.Workloads)*len(s.Platforms)*len(kinds)*len(chaosNames)*s.Seeds)
	for _, w := range s.Workloads {
		for _, p := range s.Platforms {
			for _, k := range kinds {
				for _, ch := range chaosNames {
					for i := 0; i < s.Seeds; i++ {
						cells = append(cells, Cell{
							Index:    len(cells),
							Workload: w,
							Platform: p,
							Fault:    k,
							Chaos:    ch,
							Seed:     s.Seed0 + int64(i),
						})
					}
				}
			}
		}
	}
	return cells, nil
}

// RunConfig materializes one cell into the harness run configuration
// that executes it.
func (s Spec) RunConfig(c Cell) (experiment.RunConfig, error) {
	params, err := workload.Lookup(c.Workload.Name, c.Workload.Class, c.Workload.Procs)
	if err != nil {
		return experiment.RunConfig{}, fmt.Errorf("sweep: %w", err)
	}
	prof, err := noise.Lookup(c.Platform)
	if err != nil {
		return experiment.RunConfig{}, fmt.Errorf("sweep: %w", err)
	}
	rc := experiment.RunConfig{
		Params:    params,
		Platform:  prof,
		Seed:      c.Seed,
		FaultKind: c.Fault,
	}
	chProf, err := chaos.Parse(c.Chaos)
	if err != nil {
		return experiment.RunConfig{}, fmt.Errorf("sweep: %w", err)
	}
	rc.Chaos = chProf
	if s.MinFaultSec > 0 {
		rc.MinFaultTime = time.Duration(s.MinFaultSec * float64(time.Second))
	}
	if s.WallLimitSec > 0 {
		rc.WallLimit = time.Duration(s.WallLimitSec * float64(time.Second))
	}
	d := s.Detector
	if d.Monitor {
		rc.Monitor = &core.Config{
			Alpha:           d.Alpha,
			InitialInterval: time.Duration(d.IntervalMS) * time.Millisecond,
		}
	}
	if d.TimeoutK > 0 {
		rc.Timeout = &timeout.Config{
			Interval: time.Duration(d.TimeoutIntervalMS) * time.Millisecond,
			K:        d.TimeoutK,
		}
	}
	if d.WatchdogSec > 0 {
		rc.Watchdog = time.Duration(d.WatchdogSec * float64(time.Second))
	}
	return rc, nil
}

// LoadSpec reads a JSON Spec from path.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("sweep: parsing %s: %w", path, err)
	}
	return s, nil
}

// SmokeSpec is the tiny 2 workloads × 2 seeds grid behind `make
// sweep-smoke`: small enough to finish in seconds, large enough to
// exercise kill-and-resume.
func SmokeSpec() Spec {
	return Spec{
		Workloads: []workload.Spec{
			{Name: "CG", Class: "D", Procs: 64},
			{Name: "LU", Class: "D", Procs: 64},
		},
		Platforms: []string{"tardis"},
		Faults:    []string{"computation"},
		Seeds:     2,
		Detector:  DetectorSpec{Monitor: true},
	}
}
