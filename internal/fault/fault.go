// Package fault injects hangs into simulated MPI workloads, mirroring
// the paper's methodology (§7, "Fault injection"): suspend a randomly
// selected process inside a random invocation of a user function
// (computation-error hang), freeze a whole node, or break communication
// so that every rank blocks inside MPI (communication-error hang).
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"parastack/internal/mpi"
)

// Kind classifies the injected error.
type Kind int

const (
	// None disables injection (clean run).
	None Kind = iota
	// ComputationHang stops one rank inside application code: the
	// simulated analogue of an infinite loop, stuck IO, or a soft
	// error. The faulty rank stays OUT_MPI forever.
	ComputationHang
	// NodeFreeze stops every rank of the faulty rank's node inside
	// application code (an unresponsive node).
	NodeFreeze
	// CommunicationDeadlock makes the faulty rank block in a receive
	// that can never be matched, so it — and transitively everyone —
	// ends up IN_MPI forever.
	CommunicationDeadlock
	// LostMessage makes the faulty rank wait for a message from a
	// distant peer that was never sent (the simulated analogue of a
	// dropped or corrupted message): the victim blocks in MPI_Recv
	// naming a real peer that has long since moved on.
	LostMessage
	// CollectiveMismatch desynchronizes the faulty rank's collective
	// call sequence: it enters a collective nobody else ever joins, so
	// it and the rest of the job park in *different* collectives on the
	// same communicator.
	CollectiveMismatch
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case ComputationHang:
		return "computation-hang"
	case NodeFreeze:
		return "node-freeze"
	case CommunicationDeadlock:
		return "communication-deadlock"
	case LostMessage:
		return "lost-message"
	case CollectiveMismatch:
		return "collective-mismatch"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// kindNames maps every accepted fault-kind spelling to its Kind: the
// String forms ("computation-hang") and the short CLI spellings the
// commands use ("computation", "node", "deadlock", "none"). "" also
// parses as None but is not advertised by Names.
var kindNames = map[string]Kind{
	"none":                   None,
	"computation":            ComputationHang,
	"computation-hang":       ComputationHang,
	"node":                   NodeFreeze,
	"node-freeze":            NodeFreeze,
	"deadlock":               CommunicationDeadlock,
	"communication-deadlock": CommunicationDeadlock,
	"lost":                   LostMessage,
	"lost-message":           LostMessage,
	"mismatch":               CollectiveMismatch,
	"collective-mismatch":    CollectiveMismatch,
}

// CommPhase reports whether the fault strands its victim *inside* MPI
// (IN_MPI forever). The paper's faulty-rank identification only applies
// to computation-error hangs — victims persistently OUT_MPI — so
// detectors and accuracy metrics use this to know when identification
// is structurally impossible and root-cause analysis must rely on the
// wait-for graph instead.
func (k Kind) CommPhase() bool {
	switch k {
	case CommunicationDeadlock, LostMessage, CollectiveMismatch:
		return true
	default:
		return false
	}
}

// Names lists every accepted fault-kind spelling, sorted.
func Names() []string {
	out := make([]string, 0, len(kindNames))
	for n := range kindNames {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Parse maps a fault-kind name to its Kind; unknown names produce an
// error enumerating every accepted spelling.
func Parse(name string) (Kind, error) {
	if name == "" {
		return None, nil
	}
	if k, ok := kindNames[name]; ok {
		return k, nil
	}
	return None, fmt.Errorf("fault: unknown kind %q (accepted: %s)", name, strings.Join(Names(), ", "))
}

// deadTag is a message tag no workload uses; a receive on it from the
// rank itself can never complete.
const deadTag = 0x7fffffff

// Plan describes one injection: which rank misbehaves, at which solver
// iteration, and how.
type Plan struct {
	Kind      Kind
	Rank      int
	Iteration int
	// PPN is needed by NodeFreeze to identify the victim node's ranks.
	PPN int
}

// NewRandomPlan draws a plan with a uniformly random victim rank and a
// uniformly random trigger iteration in [minIter, iters). The paper
// discards faults landing in the first ~20 seconds (model-building
// phase); callers encode that by passing an appropriate minIter.
func NewRandomPlan(rng *rand.Rand, kind Kind, size, iters, minIter, ppn int) Plan {
	if iters <= 0 {
		iters = 1 // degenerate spec: the only possible trigger is iteration 0
	}
	if minIter >= iters {
		minIter = iters - 1
	}
	if minIter < 0 {
		minIter = 0
	}
	return Plan{
		Kind:      kind,
		Rank:      rng.Intn(size),
		Iteration: minIter + rng.Intn(iters-minIter),
		PPN:       ppn,
	}
}

// Injector is the runtime state of a plan across one simulated run.
// A nil *Injector is a valid no-op, so clean runs need no special
// casing in workload code.
type Injector struct {
	Plan

	// mu guards the trigger record: a node-freeze has several victims,
	// and under the windowed parallel engine they can hit Check from
	// different worker goroutines inside one window. TriggeredAt is
	// min-wins so the recorded instant is the earliest victim in
	// virtual time, independent of execution order.
	mu          sync.Mutex
	triggered   bool
	TriggeredAt time.Duration
}

// NewInjector wraps a plan for one run.
func NewInjector(p Plan) *Injector { return &Injector{Plan: p} }

// Triggered reports whether the fault has fired, and when.
func (in *Injector) Triggered() (bool, time.Duration) {
	if in == nil {
		return false, 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.triggered, in.TriggeredAt
}

// Check is called by workloads from inside a user-function frame at
// iteration boundaries. If the plan matches this rank and iteration the
// fault fires: the method never returns for the victim rank(s) of a
// hang-style fault.
func (in *Injector) Check(r *mpi.Rank, iter int) {
	if in == nil || in.Kind == None {
		return
	}
	if iter != in.Iteration {
		return
	}
	victim := r.ID() == in.Rank
	if in.Kind == NodeFreeze && in.PPN > 0 {
		victim = r.ID()/in.PPN == in.Rank/in.PPN
	}
	if !victim {
		return
	}
	now := time.Duration(r.Now())
	in.mu.Lock()
	if !in.triggered || now < in.TriggeredAt {
		in.triggered = true
		in.TriggeredAt = now
	}
	in.mu.Unlock()
	switch in.Kind {
	case ComputationHang, NodeFreeze:
		// Hang inside an application frame: OUT_MPI forever.
		r.Stack().Push("injected_infinite_loop")
		r.HangForever()
	case CommunicationDeadlock:
		// Block forever inside MPI_Recv on a message nobody sends.
		r.Recv(r.ID(), deadTag)
		panic("fault: dead receive completed")
	case LostMessage:
		// Wait for a message a far-away peer "lost": the peer is real
		// and keeps running, but it never sends on deadTag. The far
		// offset keeps the victim's phantom dependency out of any
		// halo-neighbor receive cycles, so the wait-for graph shows a
		// dangling edge, not a spurious deadlock.
		size := r.World().Size()
		off := size / 2
		if off < 1 {
			off = 1
		}
		r.Recv((r.ID()+off)%size, deadTag)
		panic("fault: lost-message receive completed")
	case CollectiveMismatch:
		// Enter an orphan collective nobody else ever joins.
		r.DesyncCollective(mpi.CollBarrier)
	}
}

// FaultyRanks returns the set of ranks the plan makes faulty.
func (p Plan) FaultyRanks() []int {
	switch p.Kind {
	case NodeFreeze:
		if p.PPN > 0 {
			node := p.Rank / p.PPN
			out := make([]int, 0, p.PPN)
			for r := node * p.PPN; r < (node+1)*p.PPN; r++ {
				out = append(out, r)
			}
			return out
		}
		return []int{p.Rank}
	case None:
		return nil
	default:
		return []int{p.Rank}
	}
}
