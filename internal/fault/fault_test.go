package fault

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"parastack/internal/mpi"
	"parastack/internal/sim"
	"parastack/internal/stack"
)

// runWorkload runs a toy iterative workload of the given size under an
// injector and returns the world after the engine drains (bounded).
func runWorkload(t *testing.T, in *Injector, size, iters int) (*sim.Engine, *mpi.World) {
	t.Helper()
	eng := sim.NewEngine(11)
	w := mpi.NewWorld(eng, size, mpi.Latency{})
	w.Launch(func(r *mpi.Rank) {
		for it := 0; it < iters; it++ {
			r.Call("solver_step", func() {
				r.Compute(10 * time.Millisecond)
				in.Check(r, it)
			})
			r.Allreduce(8)
		}
	})
	eng.Run(time.Hour)
	return eng, w
}

func TestNilInjectorIsNoop(t *testing.T) {
	_, w := runWorkload(t, nil, 4, 5)
	if !w.Done() {
		t.Fatal("clean run did not finish")
	}
}

func TestNoneKindIsNoop(t *testing.T) {
	in := NewInjector(Plan{Kind: None, Rank: 0, Iteration: 1})
	_, w := runWorkload(t, in, 4, 5)
	if !w.Done() {
		t.Fatal("run with Kind None did not finish")
	}
	if trig, _ := in.Triggered(); trig {
		t.Fatal("None plan triggered")
	}
}

func TestComputationHang(t *testing.T) {
	in := NewInjector(Plan{Kind: ComputationHang, Rank: 2, Iteration: 3})
	_, w := runWorkload(t, in, 4, 10)
	if w.Done() {
		t.Fatal("hung run reported done")
	}
	trig, at := in.Triggered()
	if !trig {
		t.Fatal("fault did not trigger")
	}
	if at < 30*time.Millisecond {
		t.Fatalf("triggered at %v, expected after 3 iterations", at)
	}
	for _, r := range w.Ranks() {
		if r.ID() == 2 {
			if r.Stack().State() != stack.OutMPI {
				t.Fatalf("faulty rank state = %v, want OUT_MPI", r.Stack().State())
			}
			if r.Stack().Top() != "injected_infinite_loop" {
				t.Fatalf("faulty rank top frame = %q", r.Stack().Top())
			}
		} else if r.Stack().State() != stack.InMPI {
			t.Fatalf("healthy rank %d state = %v, want IN_MPI (stuck in allreduce)",
				r.ID(), r.Stack().State())
		}
	}
}

func TestCommunicationDeadlock(t *testing.T) {
	in := NewInjector(Plan{Kind: CommunicationDeadlock, Rank: 1, Iteration: 2})
	_, w := runWorkload(t, in, 4, 10)
	if w.Done() {
		t.Fatal("deadlocked run reported done")
	}
	for _, r := range w.Ranks() {
		if r.Stack().State() != stack.InMPI {
			t.Fatalf("rank %d state = %v, want IN_MPI", r.ID(), r.Stack().State())
		}
	}
}

func TestNodeFreeze(t *testing.T) {
	in := NewInjector(Plan{Kind: NodeFreeze, Rank: 5, Iteration: 2, PPN: 4})
	_, w := runWorkload(t, in, 8, 10)
	if w.Done() {
		t.Fatal("frozen run reported done")
	}
	// Node of rank 5 with ppn 4 hosts ranks 4..7.
	for _, r := range w.Ranks() {
		frozen := r.ID() >= 4
		if frozen && r.Stack().State() != stack.OutMPI {
			t.Fatalf("frozen rank %d is %v", r.ID(), r.Stack().State())
		}
		if !frozen && r.Stack().State() != stack.InMPI {
			t.Fatalf("healthy rank %d is %v", r.ID(), r.Stack().State())
		}
	}
	want := []int{4, 5, 6, 7}
	got := in.FaultyRanks()
	if len(got) != len(want) {
		t.Fatalf("FaultyRanks = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FaultyRanks = %v, want %v", got, want)
		}
	}
}

func TestNewRandomPlanBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := NewRandomPlan(rng, ComputationHang, 256, 100, 20, 32)
		if p.Rank < 0 || p.Rank >= 256 {
			t.Fatalf("rank %d out of range", p.Rank)
		}
		if p.Iteration < 20 || p.Iteration >= 100 {
			t.Fatalf("iteration %d outside [20,100)", p.Iteration)
		}
	}
	// Degenerate: minIter beyond iters clamps.
	p := NewRandomPlan(rng, ComputationHang, 4, 3, 10, 1)
	if p.Iteration != 2 {
		t.Fatalf("clamped iteration = %d, want 2", p.Iteration)
	}
}

// TestParseAllSpellings (satellite): every accepted spelling maps to
// its kind, round-tripping through String for the canonical forms.
func TestParseAllSpellings(t *testing.T) {
	cases := []struct {
		name string
		want Kind
	}{
		{"", None},
		{"none", None},
		{"computation", ComputationHang},
		{"computation-hang", ComputationHang},
		{"node", NodeFreeze},
		{"node-freeze", NodeFreeze},
		{"deadlock", CommunicationDeadlock},
		{"communication-deadlock", CommunicationDeadlock},
		{"lost", LostMessage},
		{"lost-message", LostMessage},
		{"mismatch", CollectiveMismatch},
		{"collective-mismatch", CollectiveMismatch},
	}
	for _, c := range cases {
		got, err := Parse(c.name)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.name, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %v, want %v", c.name, got, c.want)
		}
	}
	// The table above and the registry must agree on the accepted set.
	if len(cases)-1 != len(Names()) {
		t.Errorf("test table covers %d spellings, registry has %d: %v", len(cases)-1, len(Names()), Names())
	}
	// Every String form must parse back to its kind.
	for _, k := range []Kind{None, ComputationHang, NodeFreeze, CommunicationDeadlock, LostMessage, CollectiveMismatch} {
		if got, err := Parse(k.String()); err != nil || got != k {
			t.Errorf("Parse(%v.String()) = %v, %v", k, got, err)
		}
	}
}

// TestCommPhase pins the IN_MPI/OUT_MPI split the detectors and
// accuracy metrics rely on.
func TestCommPhase(t *testing.T) {
	inMPI := map[Kind]bool{
		None:                  false,
		ComputationHang:       false,
		NodeFreeze:            false,
		CommunicationDeadlock: true,
		LostMessage:           true,
		CollectiveMismatch:    true,
	}
	for k, want := range inMPI {
		if got := k.CommPhase(); got != want {
			t.Errorf("%v.CommPhase() = %v, want %v", k, got, want)
		}
	}
}

func TestLostMessage(t *testing.T) {
	in := NewInjector(Plan{Kind: LostMessage, Rank: 1, Iteration: 2})
	_, w := runWorkload(t, in, 4, 10)
	if w.Done() {
		t.Fatal("lost-message run reported done")
	}
	info := w.Rank(1).BlockInfo()
	if info.Kind != mpi.BlockedRecv {
		t.Fatalf("victim kind = %v, want BlockedRecv", info.Kind)
	}
	// The phantom peer is victim + size/2 = rank 3, a real rank that
	// keeps running (here: stuck in the collective everyone else is in).
	if info.Peer != 3 {
		t.Fatalf("victim waits on peer %d, want 3", info.Peer)
	}
	peer := w.Rank(3).BlockInfo()
	if peer.Kind != mpi.BlockedCollective {
		t.Fatalf("peer kind = %v, want BlockedCollective (moved on)", peer.Kind)
	}
}

func TestCollectiveMismatch(t *testing.T) {
	in := NewInjector(Plan{Kind: CollectiveMismatch, Rank: 2, Iteration: 3})
	_, w := runWorkload(t, in, 4, 10)
	if w.Done() {
		t.Fatal("mismatched run reported done")
	}
	victim := w.Rank(2).BlockInfo()
	other := w.Rank(0).BlockInfo()
	if victim.Kind != mpi.BlockedCollective || other.Kind != mpi.BlockedCollective {
		t.Fatalf("kinds = %v/%v, want both BlockedCollective", victim.Kind, other.Kind)
	}
	if victim.Comm != other.Comm {
		t.Fatalf("comms differ (%d vs %d), want same comm", victim.Comm, other.Comm)
	}
	if victim.Seq == other.Seq && victim.Op == other.Op {
		t.Fatal("victim and healthy rank report the same collective instance; mismatch is invisible")
	}
	for _, r := range w.Ranks() {
		if r.Stack().State() != stack.InMPI {
			t.Fatalf("rank %d state = %v, want IN_MPI", r.ID(), r.Stack().State())
		}
	}
}

// TestParseUnknownEnumeratesSpellings (satellite): the error for a typo
// must list every accepted spelling.
func TestParseUnknownEnumeratesSpellings(t *testing.T) {
	_, err := Parse("dedlock")
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention accepted spelling %q", err, name)
		}
	}
}
