// Package detect defines the detector-neutral vocabulary shared by
// every hang detector in the repository: the verdict type (Report), the
// hang classification (HangType), and the Detector interface that
// core.Monitor, timeout.FixedIK, and timeout.Watchdog all implement.
//
// It sits below every detector on purpose: core and timeout cannot
// import each other, so the types they must agree on live below both.
// core.Report and timeout.Report are aliases of Report, which is what
// lets the concrete detectors satisfy Detector with their existing
// Report methods unchanged. Its only dependency is diagnose/waitfor,
// whose Diagnosis rides along on Report as the post-verdict root-cause
// annotation.
package detect

import (
	"time"

	"parastack/internal/diagnose/waitfor"
)

// HangType classifies a verified hang by the phase the error lives in.
type HangType int

const (
	// HangComputation means at least one process was persistently
	// outside MPI: the error is in application code on those ranks.
	HangComputation HangType = iota
	// HangCommunication means every process was stuck inside MPI.
	HangCommunication
)

// String implements fmt.Stringer.
func (t HangType) String() string {
	if t == HangComputation {
		return "computation-error"
	}
	return "communication-error"
}

// Report is a detector's verdict. ParaStack (core.Monitor) fills every
// field; the baseline detectors (timeout.FixedIK, timeout.Watchdog)
// only know when they fired and leave the classification fields zero.
type Report struct {
	// DetectedAt is the virtual time of the verification.
	DetectedAt time.Duration
	// Type classifies the hang.
	Type HangType
	// FaultyRanks are the ranks persistently OUT_MPI (empty for a
	// communication-error hang, and always empty for the baselines,
	// which cannot identify faulty processes).
	FaultyRanks []int
	// Suspicions is the length of the consecutive-suspicion streak
	// that triggered verification (ParaStack only).
	Suspicions int
	// Q and Threshold document the model state at detection time
	// (ParaStack only).
	Q, Threshold float64
	// Cause is the root-cause diagnosis the wait-for analysis attaches
	// after the verdict (nil when no diagnosis ran — the detectors
	// themselves never fill it; the experiment harness does, from a
	// snapshot of the paused world).
	Cause *waitfor.Diagnosis
}

// RetryClass is the scheduler-facing classification of a verdict: what
// a supervisor (the batch scheduler, or parastackd's own job
// supervisor) should do with the hung job. It closes the loop the
// diagnosis layer opened — the wait-for analysis says *why* the job
// hung, and the retry class says what that why implies for
// restart-vs-requeue policy.
type RetryClass int

const (
	// RetryNone: nothing to retry — the job completed cleanly.
	RetryNone RetryClass = iota
	// RetryNever: the cause is structural (a deadlock cycle, a
	// collective mismatch) — restarting deterministically reproduces
	// it, so the supervisor should fail fast and surface the diagnosis
	// instead of burning resources on doomed reruns.
	RetryNever
	// RetryTransient: the cause is plausibly transient — a straggler
	// chain (noise-induced stalls are exactly the class "Spontaneous
	// Asynchronicity in MPI-Parallel Applications" shows to be
	// excursions, not errors), a lost message (the canonical dropped
	// network event), or an unknown/infra failure — so a bounded
	// requeue with backoff is worth the attempt.
	RetryTransient
)

// String implements fmt.Stringer with stable wire-safe labels.
func (c RetryClass) String() string {
	switch c {
	case RetryNone:
		return "none"
	case RetryNever:
		return "never"
	default:
		return "transient"
	}
}

// RetryClassForCause maps a wait-for cause label (waitfor.Cause's
// stable strings, as carried on verdicts and sweep records) to its
// retry class. Unrecognized or empty labels — no diagnosis ran, or the
// classifier answered "unknown" — are RetryTransient: when the
// evidence doesn't prove the hang is structural, one bounded retry is
// cheaper than wrongly condemning a job a noise excursion stalled.
func RetryClassForCause(cause string) RetryClass {
	switch waitfor.Cause(cause) {
	case waitfor.CauseDeadlock, waitfor.CauseCollectiveMismatch:
		return RetryNever
	default:
		return RetryTransient
	}
}

// Detector is the uniform surface of a hang detector attached to one
// simulated world: construct it against the world, Start it before
// launching the application, and read Report after the run (nil means
// no hang was reported). Name identifies the detector in results and
// logs ("parastack", "fixed-ik", "watchdog", ...).
type Detector interface {
	Start()
	Report() *Report
	Name() string
}
