package detect_test

import (
	"testing"
	"time"

	"parastack/internal/core"
	"parastack/internal/detect"
	"parastack/internal/mpi"
	"parastack/internal/sim"
	"parastack/internal/timeout"
	"parastack/internal/topology"
)

// newDetectors constructs one of each concrete detector against a
// fresh world, without starting anything.
func newDetectors(t *testing.T) (map[string]detect.Detector, *sim.Engine, *mpi.World) {
	t.Helper()
	eng := sim.NewEngine(7)
	w := mpi.NewWorld(eng, 16, mpi.Latency{})
	cluster := topology.New(4, 4, 7)
	ds := map[string]detect.Detector{
		"parastack": core.New(w, cluster, core.Config{}),
		"fixed-ik":  timeout.NewFixedIK(w, cluster, timeout.Config{}),
		"watchdog":  timeout.NewWatchdog(w, 30*time.Second),
	}
	return ds, eng, w
}

// TestConformance checks the shared Detector contract every concrete
// implementation must honor: a nil verdict before Start (and before any
// hang), and a Name that is non-empty, matches its registry key, and is
// stable across calls and across Start.
func TestConformance(t *testing.T) {
	ds, eng, w := newDetectors(t)
	for want, d := range ds {
		if d.Report() != nil {
			t.Errorf("%s: verdict before Start = %+v, want nil", want, d.Report())
		}
		if d.Name() != want {
			t.Errorf("Name() = %q, want %q", d.Name(), want)
		}
		if d.Name() != d.Name() {
			t.Errorf("%s: Name not stable across calls", want)
		}
	}
	// Start everything, run a short clean workload: still no verdict,
	// and names unchanged.
	for _, d := range ds {
		d.Start()
	}
	w.Launch(func(r *mpi.Rank) {
		for i := 0; i < 3; i++ {
			r.Compute(5 * time.Millisecond)
			r.Allreduce(8)
		}
	})
	eng.Run(2 * time.Second)
	if !w.Done() {
		t.Fatal("clean run did not finish")
	}
	for want, d := range ds {
		if rep := d.Report(); rep != nil {
			t.Errorf("%s: verdict on a clean run = %+v, want nil", want, rep)
		}
		if d.Name() != want {
			t.Errorf("%s: Name changed after Start to %q", want, d.Name())
		}
	}
}

// TestReportSemanticsOnHang checks the Report contract on a real hang:
// every detector fires with a sane DetectedAt, and only ParaStack
// fills the classification fields; nobody fills Cause (diagnosis is
// attached by the harness, not the detectors). Each detector gets its
// own world — a verdict stops the engine, so sharing one would let the
// first verdict mask the others. The hang lands ~30s in, past
// ParaStack's model-building phase, and keeps the victim inside MPI so
// the fixed-(I,K) baseline can see it too.
func TestReportSemanticsOnHang(t *testing.T) {
	for _, name := range []string{"parastack", "fixed-ik", "watchdog"} {
		t.Run(name, func(t *testing.T) {
			ds, eng, w := newDetectors(t)
			d := ds[name]
			d.Start()
			w.Launch(func(r *mpi.Rank) {
				rng := eng.Rand()
				for i := 0; ; i++ {
					r.Call("solver_step", func() {
						r.Compute(10*time.Millisecond + time.Duration(rng.Int63n(int64(60*time.Millisecond))))
						if r.ID() == 3 && i == 600 {
							r.Recv(3, 0x7fffffff) // never matched: IN_MPI forever
						}
					})
					r.Allreduce(1 << 14)
				}
			})
			eng.Run(30 * time.Minute)
			if w.Done() {
				t.Fatal("hung run reported done")
			}
			rep := d.Report()
			if rep == nil {
				t.Fatal("no verdict on a hang")
			}
			if rep.DetectedAt <= 15*time.Second || rep.DetectedAt > 30*time.Minute {
				t.Errorf("DetectedAt = %v, want after the hang and within the run", rep.DetectedAt)
			}
			if rep.Cause != nil {
				t.Errorf("detector filled Cause itself: %+v", rep.Cause)
			}
			switch name {
			case "parastack":
				if rep.Type != detect.HangCommunication {
					t.Errorf("Type = %v, want communication-error", rep.Type)
				}
				if len(rep.FaultyRanks) != 0 {
					t.Errorf("FaultyRanks = %v, want none for a communication hang", rep.FaultyRanks)
				}
				if rep.Suspicions <= 0 {
					t.Errorf("Suspicions = %d, want > 0", rep.Suspicions)
				}
			default:
				// Baselines cannot classify or identify.
				if len(rep.FaultyRanks) != 0 {
					t.Errorf("baseline identified ranks %v, want none", rep.FaultyRanks)
				}
				if rep.Suspicions != 0 || rep.Q != 0 || rep.Threshold != 0 {
					t.Errorf("baseline filled model fields: %+v", rep)
				}
			}
		})
	}
}

// TestHangTypeStrings pins the verdict vocabulary the logs and CLIs
// print.
func TestHangTypeStrings(t *testing.T) {
	if got := detect.HangComputation.String(); got != "computation-error" {
		t.Errorf("HangComputation = %q", got)
	}
	if got := detect.HangCommunication.String(); got != "communication-error" {
		t.Errorf("HangCommunication = %q", got)
	}
}
