package service

import (
	"fmt"
	"time"
)

// RetryClient wraps the framed-JSONL Client with the two resilience
// behaviors every real caller of the daemon ends up hand-rolling:
// reconnect (re-dial a dropped or not-yet-listening daemon) and
// jittered-backoff retry of the wire's "retry later" rejections
// (ErrBusy — ingest saturated — and ErrBacklog — stream backlog full).
// The backoff schedule is the supervisor's own RetryPolicy, so a
// client's retry pacing is as deterministic and table-testable as the
// server's requeue pacing. Like Client, it is not safe for concurrent
// use.
type RetryClient struct {
	network, addr string
	policy        RetryPolicy
	c             *Client
}

// retryableWire reports whether a wire error string is a "retry later"
// backpressure signal rather than a terminal rejection.
func retryableWire(errStr string) bool {
	return errStr == ErrBusy.Error() || errStr == ErrBacklog.Error()
}

// DialRetry connects to a daemon, retrying the dial itself under
// policy — so a client racing a daemon's startup (or restart-recovery)
// waits for the listener instead of failing. policy.MaxAttempts bounds
// the dial attempts; the zero policy tries once.
func DialRetry(network, addr string, policy RetryPolicy) (*RetryClient, error) {
	policy = policy.withDefaults()
	rc := &RetryClient{network: network, addr: addr, policy: policy}
	var err error
	for attempt := 1; ; attempt++ {
		rc.c, err = Dial(network, addr)
		if err == nil {
			return rc, nil
		}
		if attempt >= policy.MaxAttempts {
			return nil, fmt.Errorf("service: dial %s %s: %w", network, addr, err)
		}
		time.Sleep(policy.Delay("dial|"+addr, attempt))
	}
}

// Do sends one request, reconnecting on transport errors and backing
// off on retryable wire rejections, until the policy's attempts run
// out. A submit resent after an ambiguous transport failure may come
// back "duplicate job id" — that means the first send landed, so it is
// reported as success (the response's OK is forced true).
func (rc *RetryClient) Do(req Request) (Response, error) {
	key := req.Op + "|" + req.ID
	resent := false
	var lastErr error
	for attempt := 1; ; attempt++ {
		resp, err := rc.do(req)
		switch {
		case err != nil:
			lastErr = err
			rc.dropConn()
			resent = true
		case retryableWire(resp.Error):
			lastErr = fmt.Errorf("service: %s rejected: %s", req.Op, resp.Error)
		case resent && req.Op == OpSubmit && resp.Error == ErrDuplicate.Error():
			// The retried submit's first send was admitted before the
			// transport failure: the duplicate rejection is the ack.
			resp.OK, resp.Error = true, ""
			return resp, nil
		default:
			return resp, nil
		}
		if attempt >= rc.policy.MaxAttempts {
			if err == nil {
				return resp, nil // surface the wire rejection, not an error
			}
			return Response{}, lastErr
		}
		time.Sleep(rc.policy.Delay(key, attempt))
	}
}

// do performs one attempt, (re)dialing if the connection is gone.
func (rc *RetryClient) do(req Request) (Response, error) {
	if rc.c == nil {
		c, err := Dial(rc.network, rc.addr)
		if err != nil {
			return Response{}, err
		}
		rc.c = c
	}
	return rc.c.Do(req)
}

func (rc *RetryClient) dropConn() {
	if rc.c != nil {
		rc.c.Close()
		rc.c = nil
	}
}

// Close closes the underlying connection, if any.
func (rc *RetryClient) Close() error {
	if rc.c == nil {
		return nil
	}
	return rc.c.Close()
}
