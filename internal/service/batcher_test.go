package service

import (
	"sync"
	"testing"
	"time"

	"parastack/internal/detect"
)

// collectFlush gathers flushed batches for assertions.
type collectFlush struct {
	mu      sync.Mutex
	batches [][]envelope
	notify  chan int // batch size per flush
}

func newCollectFlush() *collectFlush {
	return &collectFlush{notify: make(chan int, 64)}
}

func (c *collectFlush) flush(batch []envelope) {
	c.mu.Lock()
	c.batches = append(c.batches, batch)
	c.mu.Unlock()
	c.notify <- len(batch)
}

func TestBatcherSizeFlush(t *testing.T) {
	c := newCollectFlush()
	b := newBatcher(64, 3, time.Hour, c.flush) // deadline can't win
	defer b.close()
	for i := 0; i < 3; i++ {
		if !b.offer(envelope{}) {
			t.Fatalf("offer %d rejected", i)
		}
	}
	select {
	case n := <-c.notify:
		if n != 3 {
			t.Fatalf("size flush carried %d envelopes, want 3", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("size flush never happened")
	}
}

func TestBatcherDeadlineFlush(t *testing.T) {
	c := newCollectFlush()
	b := newBatcher(64, 1000, 5*time.Millisecond, c.flush) // size can't win
	defer b.close()
	b.offer(envelope{})
	b.offer(envelope{})
	select {
	case n := <-c.notify:
		if n != 2 {
			t.Fatalf("deadline flush carried %d envelopes, want 2", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadline flush never happened")
	}
}

func TestBatcherCloseFlushesRemainder(t *testing.T) {
	c := newCollectFlush()
	b := newBatcher(64, 1000, time.Hour, c.flush)
	b.offer(envelope{})
	b.offer(envelope{})
	b.close()
	select {
	case n := <-c.notify:
		if n != 2 {
			t.Fatalf("close flush carried %d envelopes, want 2", n)
		}
	default:
		t.Fatal("close did not flush the open batch")
	}
}

func TestBatcherOfferRejectsWhenFull(t *testing.T) {
	// A flush that blocks forever pins the loop, so the input channel
	// (depth 2) fills and offers start failing — the backpressure edge.
	block := make(chan struct{})
	defer close(block)
	b := newBatcher(2, 1, time.Hour, func([]envelope) { <-block })
	accepted := 0
	for i := 0; i < 10; i++ {
		if b.offer(envelope{}) {
			accepted++
		}
	}
	if accepted > 4 { // 2 buffered + up to 2 already drawn into the loop
		t.Fatalf("accepted %d offers into a stalled depth-2 batcher", accepted)
	}
	if b.offer(envelope{}) {
		t.Fatal("offer succeeded on a saturated batcher")
	}
}

func TestStreamMonitorFiresOnStreak(t *testing.T) {
	sm := NewStreamMonitor(0, 0)
	// Healthy phase: varied Scrout keeps the streak broken.
	for i := 0; i < 200; i++ {
		if rep := sm.Ingest(StreamSample{TUS: int64(i), Scrout: float64(1+i%5) / 6}); rep != nil {
			t.Fatalf("verdict during healthy phase at sample %d", i)
		}
	}
	// Hang phase: zeros below the threshold must eventually verify.
	var fired *int
	for i := 0; i < 200; i++ {
		if rep := sm.Ingest(StreamSample{TUS: int64(1000 + i), Scrout: 0}); rep != nil {
			fired = &i
			if rep.Type != detect.HangCommunication {
				t.Errorf("stream report type = %v, want communication", rep.Type)
			}
			if rep.Suspicions < 2 {
				t.Errorf("suspicion streak = %d, want a multi-sample streak", rep.Suspicions)
			}
			break
		}
	}
	if fired == nil {
		t.Fatal("200 zero samples never produced a verdict")
	}
	if sm.Report() == nil {
		t.Fatal("Report() nil after a verdict")
	}
	// Post-verdict samples are counted but don't change the report.
	before := sm.Report()
	sm.Ingest(StreamSample{TUS: 9999, Scrout: 1})
	if sm.Report() != before {
		t.Error("post-verdict sample replaced the report")
	}
	if sm.Samples() != 200+*fired+1+1 {
		t.Errorf("Samples() = %d, want %d", sm.Samples(), 200+*fired+2)
	}
}
