package service

import (
	"sync"
	"time"
)

// Breaker states, surfaced in Health and counters.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is one shard's circuit breaker. Simulation dispatch consults
// it before handing a job to the worker pool: after Threshold
// consecutive run failures (panicking workers) the breaker opens and
// the shard's jobs are bounced back to the supervisor as
// transient-infra failures — requeued with backoff instead of fed to a
// poisoned shard, so one bad shard cannot eat the whole pool's
// workers. After Cooldown the breaker goes half-open and admits
// exactly one probe job; the probe's outcome closes the breaker
// (success) or re-opens it for another cooldown (failure).
//
// A breaker is shared between the shard loop (allow) and the pool
// workers' completion callbacks (record), so it carries its own lock.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that trip it (<=0: disabled)
	cooldown  time.Duration // open → half-open delay

	state    int
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
	trips    int64     // cumulative open transitions
}

func newBreakers(n, threshold int, cooldown time.Duration) []*breaker {
	bs := make([]*breaker, n)
	for i := range bs {
		bs[i] = &breaker{threshold: threshold, cooldown: cooldown}
	}
	return bs
}

// allow reports whether a job may be dispatched now. In the half-open
// window the first caller becomes the probe; everyone else keeps
// bouncing until the probe resolves.
func (b *breaker) allow(now time.Time) bool {
	if b == nil || b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// record folds one run outcome in. It returns true when this outcome
// tripped the breaker open (the caller counts trips).
func (b *breaker) record(ok bool, now time.Time) (tripped bool) {
	if b == nil || b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.state = breakerClosed
		b.failures = 0
		b.probing = false
		return false
	}
	switch b.state {
	case breakerHalfOpen:
		// The probe failed: straight back to open for another cooldown.
		b.state = breakerOpen
		b.openedAt = now
		b.probing = false
		b.trips++
		return true
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			b.failures = 0
			b.trips++
			return true
		}
	}
	return false
}

// isOpen reports whether the breaker is currently refusing dispatch
// (open and still cooling down, or half-open with a probe in flight).
func (b *breaker) isOpen(now time.Time) bool {
	if b == nil || b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return now.Sub(b.openedAt) < b.cooldown
	case breakerHalfOpen:
		return b.probing
	default:
		return false
	}
}
