package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// maxFrame bounds one request line (a feed frame carrying a large
// sample batch is the biggest legitimate frame).
const maxFrame = 8 << 20

// defaultWait bounds an OpWait with no explicit timeout.
const defaultWait = time.Minute

// Server speaks the framed-JSONL protocol over a net.Listener on
// behalf of one Service. Connections are handled concurrently; frames
// within a connection are handled sequentially, so one client's
// submits and feeds stay ordered.
type Server struct {
	svc *Service
	ln  net.Listener

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  chan struct{}
	wg    sync.WaitGroup
}

// Serve starts accepting connections on ln. It returns immediately;
// use Shutdown to stop.
func Serve(svc *Service, ln net.Listener) *Server {
	srv := &Server{svc: svc, ln: ln, conns: make(map[net.Conn]struct{}), done: make(chan struct{})}
	srv.wg.Add(1)
	go srv.acceptLoop()
	return srv
}

// Addr returns the listener's address.
func (srv *Server) Addr() net.Addr { return srv.ln.Addr() }

func (srv *Server) acceptLoop() {
	defer srv.wg.Done()
	for {
		conn, err := srv.ln.Accept()
		if err != nil {
			select {
			case <-srv.done:
				return // Shutdown closed the listener
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue // transient accept error
		}
		srv.mu.Lock()
		srv.conns[conn] = struct{}{}
		srv.mu.Unlock()
		srv.wg.Add(1)
		go srv.handle(conn)
	}
}

// Shutdown stops accepting, closes every connection, and waits for the
// handlers to exit. It does not drain the service — callers drain
// first (so clients can collect verdicts), then shut the server down.
func (srv *Server) Shutdown() {
	close(srv.done)
	srv.ln.Close()
	srv.mu.Lock()
	for c := range srv.conns {
		c.Close()
	}
	srv.mu.Unlock()
	srv.wg.Wait()
}

func (srv *Server) handle(conn net.Conn) {
	defer srv.wg.Done()
	defer func() {
		srv.mu.Lock()
		delete(srv.conns, conn)
		srv.mu.Unlock()
		conn.Close()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), maxFrame)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		resp := Response{Op: "?"}
		if err := json.Unmarshal(line, &req); err != nil {
			resp.Error = fmt.Sprintf("bad frame: %v", err)
		} else {
			resp = srv.dispatch(req)
		}
		if err := enc.Encode(resp); err != nil {
			return // client went away
		}
	}
	// Scanner errors (overlong frame, io errors) just end the
	// connection; the protocol has no recovery path mid-stream.
	_ = sc.Err()
}

// dispatch executes one request against the service.
func (srv *Server) dispatch(req Request) Response {
	resp := Response{Op: req.Op, ID: req.ID}
	switch req.Op {
	case OpPing:
		resp.OK = true

	case OpSubmit:
		if req.Job == nil {
			resp.Error = "submit needs a job"
			break
		}
		resp.ID = req.Job.ID
		if err := srv.svc.Submit(*req.Job); err != nil {
			resp.Error = err.Error()
			break
		}
		resp.OK = true

	case OpFeed:
		if err := srv.svc.Feed(req.ID, req.Samples); err != nil {
			resp.Error = err.Error()
			break
		}
		resp.OK = true

	case OpVerdict:
		v, ok, err := srv.svc.Verdict(req.ID)
		if err != nil {
			resp.Error = err.Error()
			break
		}
		resp.OK = true
		if ok {
			resp.Verdict = &v
		} else {
			resp.Pending = true
		}

	case OpWait:
		timeout := defaultWait
		if req.TimeoutMS > 0 {
			timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		v, err := srv.svc.Wait(ctx, req.ID)
		cancel()
		if err != nil {
			resp.Error = err.Error()
			break
		}
		resp.OK = true
		resp.Verdict = &v

	case OpVerdicts:
		resp.OK = true
		resp.Verdicts = srv.svc.Verdicts()
		if resp.Verdicts == nil {
			resp.Verdicts = []Verdict{}
		}

	case OpStats:
		resp.OK = true
		resp.Counters = srv.svc.Counters().Counters

	default:
		resp.Error = fmt.Sprintf("unknown op %q", req.Op)
	}
	return resp
}

// Client is a minimal framed-JSONL client for tests, the smoke target,
// and the daemon's own loopback checks. Not safe for concurrent use.
type Client struct {
	conn net.Conn
	sc   *bufio.Scanner
	enc  *json.Encoder
}

// Dial connects to a daemon at network/addr ("unix", "/run/psd.sock"
// or "tcp", "127.0.0.1:7117").
func Dial(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), maxFrame)
	return &Client{conn: conn, sc: sc, enc: json.NewEncoder(conn)}, nil
}

// Do sends one request and reads its response frame.
func (c *Client) Do(req Request) (Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return Response{}, err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return Response{}, err
		}
		return Response{}, io.EOF
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return Response{}, err
	}
	return resp, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
