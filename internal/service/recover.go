package service

import (
	"fmt"
	"strings"
	"time"

	"parastack/internal/results"
)

// Recover replays an admission journal into a freshly constructed
// service, before it starts taking traffic. Journaled verdicts are
// re-installed verbatim — never re-run — keeping their pre-crash Seqs
// (the service's next Seq advances past them), and re-appended to the
// verdict sink, where the ledger's content dedup makes the replay
// idempotent: a verdict that already reached the sink before the crash
// dedups, one that didn't lands now. Open jobs (admitted, no verdict)
// are re-admitted and re-run; because runs are deterministic, the
// recovered run reaches the same verdict the uninterrupted daemon
// would have. Together that is the exactly-once guarantee: every job
// ever acked yields exactly one verdict, bit-identical to an
// uninterrupted run's.
//
// The reader is typically the same backend the journal writes
// (results.ReadJSONL over the -journal file, or the ledger). Recover
// must be called before any Submit/Feed traffic; calling it on a
// draining service is an error.
func (s *Service) Recover(r results.Reader) (Replay, error) {
	recs, err := r.Records()
	if err != nil {
		return Replay{}, fmt.Errorf("service: recover: reading journal: %w", err)
	}
	// A shared backend (one ledger serving as both journal and verdict
	// sink) also holds "verdict|<id>" sink records; those are excluded
	// by key. Keyless records (the JSONL file sink does not persist
	// keys) pass through — ReplayJournal identifies them by payload.
	jrecs := recs[:0:0]
	for _, rec := range recs {
		if rec.Key == "" || strings.HasPrefix(rec.Key, "journal|") {
			jrecs = append(jrecs, rec)
		}
	}
	rep := ReplayJournal(jrecs)

	// Re-install decided jobs, in Seq order, so Seqs stay increasing
	// along the decision order (the VerdictsPage invariant).
	for _, v := range rep.Decided {
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			return rep, fmt.Errorf("service: recover: service is draining")
		}
		if s.jobs[v.JobID] != nil || s.decided[v.JobID] != nil {
			s.mu.Unlock()
			continue // already present (double recovery): keep the first
		}
		j := &job{spec: JobSpec{ID: v.JobID}, key: v.Key, done: make(chan struct{}), recovered: true}
		s.jobs[v.JobID] = j
		s.resident++
		s.mu.Unlock()
		s.install(j, v, true)
	}

	// Re-admit open jobs: registered under mu (the Submit admission
	// rule), then pushed into the ingest stage with a blocking put —
	// recovery must not drop a journaled job because the replay burst
	// outran the ingest bound. The admit record is already journaled, so
	// this path never re-appends it.
	for _, js := range rep.Open {
		j := &job{spec: js, enq: time.Now(), done: make(chan struct{}), recovered: true}
		if js.Stream {
			j.mon = NewStreamMonitor(js.Alpha, 0)
		} else {
			key, rc, err := js.cell()
			if err != nil {
				// The journaled spec no longer validates (schema drift,
				// hand-edited journal): close it out rather than losing it.
				s.mu.Lock()
				if s.draining || s.jobs[js.ID] != nil || s.decided[js.ID] != nil {
					s.mu.Unlock()
					continue
				}
				s.jobs[js.ID] = j
				s.resident++
				s.mu.Unlock()
				s.decide(j, Verdict{
					JobID:  js.ID,
					Status: VerdictFailed,
					Error:  fmt.Sprintf("service: recovered job spec invalid: %v", err),
				})
				continue
			}
			j.key, j.rc = key, rc
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			return rep, fmt.Errorf("service: recover: service is draining")
		}
		if s.jobs[js.ID] != nil || s.decided[js.ID] != nil {
			s.mu.Unlock()
			continue
		}
		s.jobs[js.ID] = j
		s.resident++
		s.mu.Unlock()
		s.batcher.put(envelope{j: j, enq: j.enq})
		s.armDeadline(j)
		s.count(CtrJobsRecovered, 1)
	}
	return rep, nil
}

// Health is the service's liveness summary, served by GET /healthz.
type Health struct {
	// Status is "ok", "degraded" (an open shard breaker or a lagging
	// journal), or "draining".
	Status string `json:"status"`
	// Resident and Decided count jobs in flight and jobs with verdicts.
	Resident int `json:"resident"`
	Decided  int `json:"decided"`
	// IngestDepth/IngestCap are the batcher input channel's fill and
	// bound — the first backpressure stage.
	IngestDepth int `json:"ingest_depth"`
	IngestCap   int `json:"ingest_cap"`
	// ShardDepths is each shard queue's current fill.
	ShardDepths []int `json:"shard_depths"`
	// OpenBreakers lists shards whose circuit breaker is refusing
	// dispatch right now.
	OpenBreakers []int `json:"open_breakers,omitempty"`
	// JournalLag is the journal backend's count of appended-but-unsynced
	// records (0 when durable or no journal).
	JournalLag int `json:"journal_lag"`
}

// Health snapshots the service's health. Status degrades when any
// shard breaker is open or the journal is lagging durability; a
// draining service reports "draining" (the HTTP layer maps that to
// 503, so load balancers stop routing to a daemon on its way out).
func (s *Service) Health() Health {
	now := time.Now()
	h := Health{
		Status:      "ok",
		IngestCap:   s.cfg.IngestDepth,
		IngestDepth: len(s.batcher.in),
		ShardDepths: make([]int, len(s.shards)),
	}
	for i, q := range s.shards {
		h.ShardDepths[i] = len(q)
	}
	for i, b := range s.breakers {
		if b.isOpen(now) {
			h.OpenBreakers = append(h.OpenBreakers, i)
		}
	}
	if s.journal != nil {
		h.JournalLag = s.journal.lag()
	}
	s.mu.Lock()
	h.Resident = s.resident
	h.Decided = len(s.decided)
	draining := s.draining
	s.mu.Unlock()
	switch {
	case draining:
		h.Status = "draining"
	case len(h.OpenBreakers) > 0 || h.JournalLag > 0:
		h.Status = "degraded"
	}
	return h
}
