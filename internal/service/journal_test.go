package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"parastack/internal/experiment"
	"parastack/internal/ledger"
	"parastack/internal/results"
)

// memSink is an in-memory results.Sink/Reader capturing appends in
// order, with a switchable failure mode.
type memSink struct {
	mu   sync.Mutex
	recs []results.Record
	fail bool
}

func (m *memSink) Append(rec results.Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fail {
		return errors.New("memSink: injected append failure")
	}
	payload := make([]byte, len(rec.Payload))
	copy(payload, rec.Payload)
	m.recs = append(m.recs, results.Record{Key: rec.Key, Payload: payload})
	return nil
}

func (m *memSink) Close() error { return nil }

func (m *memSink) Records() ([]results.Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]results.Record, len(m.recs))
	copy(out, m.recs)
	return out, nil
}

func (m *memSink) setFail(fail bool) {
	m.mu.Lock()
	m.fail = fail
	m.mu.Unlock()
}

// TestJournalBeforeAck pins the ordering invariants: the admit record
// is in the journal before Submit returns success, and a decided job's
// journal verdict record precedes its verdict-sink record.
func TestJournalBeforeAck(t *testing.T) {
	ms := &memSink{}
	s := New(Config{Run: fakeRun, Journal: ms, Sink: ms, BatchDelay: time.Millisecond})
	if err := s.Submit(simJob("j1", 1)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Submit has returned: the admit record must already be durable.
	recs, _ := ms.Records()
	if len(recs) == 0 {
		t.Fatal("Submit acked before the admit record reached the journal")
	}
	var admit JournalRecord
	if err := json.Unmarshal(recs[0].Payload, &admit); err != nil {
		t.Fatalf("admit record: %v", err)
	}
	if admit.Kind != JournalKindAdmit || admit.JobID != "j1" || admit.Job == nil || admit.Job.Seed != 1 {
		t.Fatalf("first journal record = %+v, want admit for j1", admit)
	}
	if recs[0].Key != journalAdmitKey("j1") {
		t.Fatalf("admit key = %q", recs[0].Key)
	}

	if _, err := s.Wait(context.Background(), "j1"); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if err := s.Drain(context.Background()); err != nil { // syncs the post-verdict appends
		t.Fatalf("drain: %v", err)
	}
	recs, _ = ms.Records()
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3 (admit, journal verdict, sink verdict)", len(recs))
	}
	var jv JournalRecord
	if err := json.Unmarshal(recs[1].Payload, &jv); err != nil {
		t.Fatalf("journal verdict record: %v", err)
	}
	if jv.Kind != JournalKindVerdict || jv.Verdict == nil || jv.Verdict.JobID != "j1" {
		t.Fatalf("second record = %+v, want journal verdict for j1", jv)
	}
	if recs[2].Key != "verdict|j1" {
		t.Fatalf("third record key = %q, want the verdict sink's (journal verdict must precede it)", recs[2].Key)
	}
	// The journaled verdict and the sink verdict are byte-identical
	// payload-wise (what makes the recovery re-append dedup in a ledger).
	sunk, _ := json.Marshal(jv.Verdict)
	if !bytes.Equal(sunk, recs[2].Payload) {
		t.Errorf("journaled verdict != sink verdict:\n%s\n%s", sunk, recs[2].Payload)
	}
}

// A failed journal append must withdraw the job: the client's error is
// the truth, no verdict is ever recorded, and the ID is reusable.
func TestJournalAppendFailureWithdrawsJob(t *testing.T) {
	ms := &memSink{}
	ms.setFail(true)
	s := New(Config{Run: fakeRun, Journal: ms, BatchDelay: time.Millisecond})
	defer s.Close()

	err := s.Submit(simJob("j1", 1))
	if !errors.Is(err, ErrJournal) {
		t.Fatalf("submit with failing journal = %v, want ErrJournal", err)
	}
	if pending := s.Pending(); len(pending) != 0 {
		t.Fatalf("withdrawn job still resident: %v", pending)
	}
	if _, _, err := s.Verdict("j1"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("withdrawn job verdict lookup = %v, want ErrUnknownJob", err)
	}
	snap := s.Counters()
	if got := snap.Counter(CtrJournalErrors); got != 1 {
		t.Errorf("journal_errors = %d, want 1", got)
	}
	if got := snap.Counter(CtrJobsAdmitted); got != 0 {
		t.Errorf("jobs_admitted = %d, want 0", got)
	}

	// The journal recovers: the same ID admits cleanly.
	ms.setFail(false)
	if err := s.Submit(simJob("j1", 1)); err != nil {
		t.Fatalf("resubmit after journal recovery: %v", err)
	}
	if _, err := s.Wait(context.Background(), "j1"); err != nil {
		t.Fatalf("wait: %v", err)
	}
}

func journalLine(t *testing.T, kind, id string, js *JobSpec, v *Verdict) results.Record {
	t.Helper()
	payload, err := json.Marshal(JournalRecord{Schema: JournalSchema, Kind: kind, JobID: id, Job: js, Verdict: v})
	if err != nil {
		t.Fatal(err)
	}
	return results.Record{Payload: payload}
}

func TestReplayJournal(t *testing.T) {
	a, b, c := simJob("a", 1), simJob("b", 2), simJob("c", 3)
	recs := []results.Record{
		// Verdict arriving before its admit (concurrent append schedule).
		journalLine(t, JournalKindVerdict, "b", nil, &Verdict{JobID: "b", Seq: 2, Status: VerdictOK}),
		journalLine(t, JournalKindAdmit, "a", &a, nil),
		journalLine(t, JournalKindAdmit, "b", &b, nil),
		journalLine(t, JournalKindAdmit, "a", &a, nil), // duplicate admit: first wins
		journalLine(t, JournalKindAdmit, "c", &c, nil),
		journalLine(t, JournalKindVerdict, "a", nil, &Verdict{JobID: "a", Seq: 9, Status: VerdictFailed}),
		journalLine(t, JournalKindVerdict, "a", nil, &Verdict{JobID: "a", Seq: 1, Status: VerdictOK}), // last verdict wins
		{Payload: []byte("not json at all")},                                                          // skipped
		{Payload: []byte(`{"schema":"other/v9","kind":"admit"}`)},                                     // wrong schema: skipped
		journalLine(t, "mystery", "c", nil, nil),                                                      // unknown kind: skipped
		journalLine(t, JournalKindVerdict, "c", nil, nil),                                             // verdict with no payload: skipped
		journalLine(t, JournalKindAdmit, "d", &a, nil),                                                // job/JobID mismatch: skipped
	}
	rep := ReplayJournal(recs)
	if len(rep.Open) != 1 || rep.Open[0].ID != "c" {
		t.Fatalf("open = %+v, want just c", rep.Open)
	}
	if len(rep.Decided) != 2 {
		t.Fatalf("decided = %+v, want a and b", rep.Decided)
	}
	// Sorted by Seq: a's winning (last) verdict has Seq 1, b's Seq 2.
	if rep.Decided[0].JobID != "a" || rep.Decided[0].Seq != 1 || rep.Decided[0].Status != VerdictOK {
		t.Fatalf("decided[0] = %+v, want a's last verdict (seq 1, ok)", rep.Decided[0])
	}
	if rep.Decided[1].JobID != "b" || rep.Decided[1].Seq != 2 {
		t.Fatalf("decided[1] = %+v, want b (seq 2)", rep.Decided[1])
	}
	if rep.Skipped != 5 {
		t.Fatalf("skipped = %d, want 5", rep.Skipped)
	}
	if got := rep.String(); got != "2 decided, 1 open, 5 skipped" {
		t.Fatalf("String() = %q", got)
	}
	if emptied := ReplayJournal(nil); len(emptied.Open)+len(emptied.Decided)+emptied.Skipped != 0 {
		t.Fatalf("empty journal replay = %+v", emptied)
	}
}

// FuzzJournalReplay pins ReplayJournal's totality: arbitrary journal
// bytes — torn, corrupted, adversarial — never panic, never emit a job
// twice, and never leave a decided job open.
func FuzzJournalReplay(f *testing.F) {
	a := simJob("a", 1)
	admit, _ := json.Marshal(JournalRecord{Schema: JournalSchema, Kind: JournalKindAdmit, JobID: "a", Job: &a})
	verdict, _ := json.Marshal(JournalRecord{Schema: JournalSchema, Kind: JournalKindVerdict, JobID: "a", Verdict: &Verdict{JobID: "a", Seq: 1}})
	f.Add(append(append(append([]byte{}, admit...), '\n'), verdict...))
	f.Add([]byte("{\"schema\":\"parastack-journal/v1\"\nnot json\n\n"))
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []results.Record
		for _, line := range bytes.Split(data, []byte("\n")) {
			recs = append(recs, results.Record{Payload: line})
		}
		rep := ReplayJournal(recs)
		seen := make(map[string]bool)
		for _, js := range rep.Open {
			if js.ID == "" {
				t.Fatal("open job with empty ID")
			}
			if seen[js.ID] {
				t.Fatalf("job %q emitted twice", js.ID)
			}
			seen[js.ID] = true
		}
		for _, v := range rep.Decided {
			if v.JobID == "" {
				t.Fatal("decided verdict with empty job ID")
			}
			if seen[v.JobID] {
				t.Fatalf("job %q both open and decided (or decided twice)", v.JobID)
			}
			seen[v.JobID] = true
		}
		for i := 1; i < len(rep.Decided); i++ {
			if rep.Decided[i-1].Seq > rep.Decided[i].Seq {
				t.Fatal("decided verdicts not sorted by Seq")
			}
		}
	})
}

// TestRecoverExactlyOnce is the crash-recovery acceptance pin, run
// in-process: daemon A decides two jobs and is abandoned (simulated
// crash) with two more in flight; daemon B recovers from A's journal,
// re-installs the decided verdicts without re-running them, re-runs the
// open jobs, and ends with exactly one verdict per job — bit-identical
// (modulo Seq/IngestUS timing) to an uninterrupted daemon C, with the
// shared verdict ledger deduplicating the replayed appends and
// auditing clean.
func TestRecoverExactlyOnce(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "journal.jsonl")
	store := ledger.NewMemStore()
	defer store.Close()
	led, err := ledger.Open(store, ledger.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Daemon A: seeds >= 3 wedge forever — j3 and j4 never decide.
	gate := make(chan struct{})
	defer close(gate)
	wedgeHigh := func(rc experiment.RunConfig) experiment.RunResult {
		if rc.Seed >= 3 {
			<-gate
		}
		return fakeRun(rc)
	}
	jnlA, err := results.OpenJSONL(journalPath, 1)
	if err != nil {
		t.Fatal(err)
	}
	svcA := New(Config{Run: wedgeHigh, Workers: 2, Journal: jnlA, Sink: led, BatchDelay: time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 1; i <= 4; i++ {
		if err := svcA.Submit(simJob(fmt.Sprintf("j%d", i), int64(i))); err != nil {
			t.Fatalf("A submit j%d: %v", i, err)
		}
		if i <= 2 { // decide j1 and j2 in a known order
			if _, err := svcA.Wait(ctx, fmt.Sprintf("j%d", i)); err != nil {
				t.Fatalf("A wait j%d: %v", i, err)
			}
		}
	}
	// "Crash": abandon A without draining. Its journal file handle is
	// closed so B's appends are the only live writes.
	if err := jnlA.Close(); err != nil {
		t.Fatal(err)
	}

	// Daemon B: same journal, same ledger, healthy runner.
	jnlB, err := results.OpenJSONL(journalPath, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer jnlB.Close()
	svcB := New(Config{Run: fakeRun, Workers: 2, Journal: jnlB, Sink: led, BatchDelay: time.Millisecond})
	rep, err := svcB.Recover(jnlB)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(rep.Decided) != 2 || len(rep.Open) != 2 || rep.Skipped != 0 {
		t.Fatalf("replay = %s, want 2 decided, 2 open, 0 skipped", rep)
	}
	for i := 1; i <= 4; i++ {
		if _, err := svcB.Wait(ctx, fmt.Sprintf("j%d", i)); err != nil {
			t.Fatalf("B wait j%d: %v", i, err)
		}
	}
	if err := svcB.Drain(ctx); err != nil {
		t.Fatalf("B drain: %v", err)
	}
	if got := svcB.Counters().Counter(CtrJobsRecovered); got != 2 {
		t.Errorf("jobs_recovered = %d, want 2", got)
	}

	// Reference: daemon C runs the same four jobs uninterrupted.
	svcC := New(Config{Run: fakeRun, Workers: 2, BatchDelay: time.Millisecond})
	for i := 1; i <= 4; i++ {
		if err := svcC.Submit(simJob(fmt.Sprintf("j%d", i), int64(i))); err != nil {
			t.Fatalf("C submit j%d: %v", i, err)
		}
		if _, err := svcC.Wait(ctx, fmt.Sprintf("j%d", i)); err != nil {
			t.Fatalf("C wait j%d: %v", i, err)
		}
	}
	if err := svcC.Drain(ctx); err != nil {
		t.Fatalf("C drain: %v", err)
	}

	// Exactly one verdict per job, bit-identical to the uninterrupted
	// run modulo timing fields (Seq depends on completion order of the
	// recovered pair, IngestUS on wall clock).
	bv, cv := svcB.Verdicts(), svcC.Verdicts()
	if len(bv) != 4 || len(cv) != 4 {
		t.Fatalf("verdicts: B=%d C=%d, want 4 each", len(bv), len(cv))
	}
	norm := func(vs []Verdict) map[string]Verdict {
		out := make(map[string]Verdict, len(vs))
		for _, v := range vs {
			if out[v.JobID] != (Verdict{}) {
				t.Fatalf("duplicate verdict for %s", v.JobID)
			}
			v.Seq, v.IngestUS = 0, 0
			out[v.JobID] = v
		}
		return out
	}
	if nb, nc := norm(bv), norm(cv); !reflect.DeepEqual(nb, nc) {
		t.Fatalf("recovered verdicts diverge from uninterrupted run:\nB: %+v\nC: %+v", nb, nc)
	}
	// Recovered verdicts keep their pre-crash Seqs; new ones continue
	// past them.
	seqOf := func(id string) int64 {
		for _, v := range bv {
			if v.JobID == id {
				return v.Seq
			}
		}
		t.Fatalf("no verdict for %s", id)
		return 0
	}
	if seqOf("j1") != 1 || seqOf("j2") != 2 {
		t.Errorf("recovered seqs = %d, %d, want 1, 2", seqOf("j1"), seqOf("j2"))
	}
	if got := []int64{seqOf("j3"), seqOf("j4")}; !(got[0]+got[1] == 7 && got[0] != got[1]) {
		t.Errorf("re-run seqs = %v, want {3,4}", got)
	}
	// Paging by Seq stays coherent across the recovery boundary.
	page, more := svcB.VerdictsPage(2, 10)
	if len(page) != 2 || more {
		t.Errorf("page after seq 2 = %d verdicts (more=%v), want the 2 re-run jobs", len(page), more)
	}

	// The ledger holds exactly one verdict record per job — the
	// recovery re-appends deduplicated — and audits clean.
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := led.Records()
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(recs))
	for _, r := range recs {
		keys = append(keys, r.Key)
	}
	sort.Strings(keys)
	want := []string{"verdict|j1", "verdict|j2", "verdict|j3", "verdict|j4"}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("ledger verdict keys = %v, want %v", keys, want)
	}
	if st := led.LedgerStats(); st.DedupHits < 2 {
		t.Errorf("dedup hits = %d, want >= 2 (the replayed j1, j2 appends)", st.DedupHits)
	}
	audit, err := ledger.Verify(store, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !audit.OK() {
		t.Fatalf("ledger audit after recovery: %v", audit.Problems)
	}
}
