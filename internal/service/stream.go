package service

import (
	"time"

	"parastack/internal/detect"
	"parastack/internal/model"
	"parastack/internal/stats"
)

// StreamSample is one externally observed Scrout value: the fraction of
// sampled processes executing outside MPI at virtual (or wall) time T.
type StreamSample struct {
	// TUS is the sample's timestamp in microseconds (monotone per job).
	TUS int64 `json:"t_us"`
	// Scrout is the observed statistic, in [0, 1] times the sampled set
	// size (the monitor's convention: a count-like fraction).
	Scrout float64 `json:"scrout"`
}

// StreamMonitor runs ParaStack's statistical hang test over an
// externally fed Scrout sample stream — the daemon's detector for jobs
// whose application runs outside the simulator (Scrout collectors on a
// real cluster, replayed traces). It reuses the robust runtime model of
// internal/model and the geometric significance test of internal/stats
// exactly as core.Monitor does in its sampling loop:
//
//	add sample → refit model → suspicion if Scrout ≤ threshold →
//	verify when the suspicion streak reaches k = ceil(log_q(alpha)).
//
// What it deliberately does not reproduce are the probe-plane features
// that need a live world: interval adaptation (the feeder owns its
// sampling cadence), monitor-set rotation, the transient-slowdown
// filter, and faulty-rank identification — so a stream verdict is
// always a communication-type report with no faulty ranks. A
// StreamMonitor is not safe for concurrent use; the service serializes
// each job's samples through its shard.
type StreamMonitor struct {
	m      *model.Model
	alpha  float64
	streak int
	n      int
	report *detect.Report
}

// NewStreamMonitor returns a stream detector with significance level
// alpha (0 = the paper's 0.001) and a model history bound of
// maxHistory samples (0 = 1024).
func NewStreamMonitor(alpha float64, maxHistory int) *StreamMonitor {
	if alpha == 0 {
		alpha = 0.001
	}
	return &StreamMonitor{m: model.New(maxHistory), alpha: alpha}
}

// Ingest folds one sample into the model and returns the verdict if
// this sample completed a significant suspicion streak (nil otherwise).
// Samples arriving after a verdict are counted but change nothing.
func (sm *StreamMonitor) Ingest(s StreamSample) *detect.Report {
	sm.n++
	if sm.report != nil {
		return sm.report
	}
	sm.m.Add(s.Scrout)
	fit, ok := sm.m.Fit()
	if !ok {
		// Model-building phase: no suspicion definition yet.
		return nil
	}
	if s.Scrout > fit.Threshold {
		sm.streak = 0
		return nil
	}
	sm.streak++
	if sm.streak < stats.GeometricThreshold(fit.Q, sm.alpha) {
		return nil
	}
	sm.report = &detect.Report{
		DetectedAt: time.Duration(s.TUS) * time.Microsecond,
		Type:       detect.HangCommunication,
		Suspicions: sm.streak,
		Q:          fit.Q,
		Threshold:  fit.Threshold,
	}
	return sm.report
}

// Report returns the verdict, nil if no hang has been verified.
func (sm *StreamMonitor) Report() *detect.Report { return sm.report }

// Samples reports how many samples have been ingested.
func (sm *StreamMonitor) Samples() int { return sm.n }

// Name identifies the detector in verdicts and logs.
func (sm *StreamMonitor) Name() string { return "parastack-stream" }
