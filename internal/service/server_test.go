package service

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testCtx returns a context bounded by the test's remaining time.
func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// startServer spins up a Service on fakeRun behind a loopback TCP
// listener and returns a connected client.
func startServer(t *testing.T, cfg Config) (*Service, *Server, *Client) {
	t.Helper()
	if cfg.Run == nil {
		cfg.Run = fakeRun
	}
	svc := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(svc, ln)
	cl, err := Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		srv.Shutdown()
		svc.Close()
	})
	return svc, srv, cl
}

func TestServerRoundTrip(t *testing.T) {
	_, _, cl := startServer(t, Config{BatchDelay: time.Millisecond})

	if resp, err := cl.Do(Request{Op: OpPing}); err != nil || !resp.OK {
		t.Fatalf("ping: %+v err=%v", resp, err)
	}

	js := simJob("wire1", 7)
	resp, err := cl.Do(Request{Op: OpSubmit, Job: &js})
	if err != nil || !resp.OK || resp.ID != "wire1" {
		t.Fatalf("submit: %+v err=%v", resp, err)
	}
	// Duplicate over the wire comes back as an error frame, not a break.
	if resp, _ := cl.Do(Request{Op: OpSubmit, Job: &js}); resp.OK || resp.Error == "" {
		t.Fatalf("duplicate submit response = %+v, want error", resp)
	}

	resp, err = cl.Do(Request{Op: OpWait, ID: "wire1", TimeoutMS: 30000})
	if err != nil || !resp.OK || resp.Verdict == nil {
		t.Fatalf("wait: %+v err=%v", resp, err)
	}
	if resp.Verdict.JobID != "wire1" || resp.Verdict.Status != VerdictOK {
		t.Fatalf("verdict = %+v", resp.Verdict)
	}

	resp, err = cl.Do(Request{Op: OpVerdict, ID: "wire1"})
	if err != nil || !resp.OK || resp.Verdict == nil {
		t.Fatalf("verdict op: %+v err=%v", resp, err)
	}
	if resp, _ := cl.Do(Request{Op: OpVerdict, ID: "nope"}); resp.OK {
		t.Fatalf("verdict for unknown id = %+v, want error", resp)
	}

	resp, err = cl.Do(Request{Op: OpVerdicts})
	if err != nil || !resp.OK || len(resp.Verdicts) != 1 {
		t.Fatalf("verdicts: %+v err=%v", resp, err)
	}

	resp, err = cl.Do(Request{Op: OpStats})
	if err != nil || !resp.OK || resp.Counters[CtrJobsAdmitted] != 1 {
		t.Fatalf("stats: %+v err=%v", resp, err)
	}

	if resp, _ := cl.Do(Request{Op: "frobnicate"}); resp.OK || !strings.Contains(resp.Error, "unknown op") {
		t.Fatalf("unknown op response = %+v", resp)
	}
}

func TestServerStreamOverWire(t *testing.T) {
	_, _, cl := startServer(t, Config{BatchDelay: time.Millisecond})

	js := JobSpec{ID: "feed", Stream: true}
	if resp, err := cl.Do(Request{Op: OpSubmit, Job: &js}); err != nil || !resp.OK {
		t.Fatalf("submit: %+v err=%v", resp, err)
	}
	var healthy, hang []StreamSample
	for i := 0; i < 200; i++ {
		healthy = append(healthy, StreamSample{TUS: int64(i) * 400_000, Scrout: float64(1+i%5) / 6})
	}
	for i := 0; i < 100; i++ {
		hang = append(hang, StreamSample{TUS: int64(200+i) * 400_000, Scrout: 0})
	}
	if resp, err := cl.Do(Request{Op: OpFeed, ID: "feed", Samples: healthy}); err != nil || !resp.OK {
		t.Fatalf("feed healthy: %+v err=%v", resp, err)
	}
	if resp, err := cl.Do(Request{Op: OpFeed, ID: "feed", Samples: hang}); err != nil || !resp.OK {
		t.Fatalf("feed hang: %+v err=%v", resp, err)
	}
	resp, err := cl.Do(Request{Op: OpWait, ID: "feed", TimeoutMS: 30000})
	if err != nil || !resp.OK || resp.Verdict == nil || resp.Verdict.Report == nil {
		t.Fatalf("wait: %+v err=%v", resp, err)
	}
}

func TestServerMalformedFrame(t *testing.T) {
	_, srv, _ := startServer(t, Config{})
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatalf("decode error frame: %v", err)
	}
	if resp.OK || !strings.Contains(resp.Error, "bad frame") {
		t.Fatalf("malformed frame response = %+v", resp)
	}
}

func TestHTTPSurface(t *testing.T) {
	svc := New(Config{Run: fakeRun, BatchDelay: time.Millisecond})
	defer svc.Close()
	h := Handler(svc)

	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/jobs", strings.NewReader(body)))
		return rec
	}
	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		return rec
	}

	if rec := post(`{"id":"h1","bench":"CG","class":"D","procs":64,"platform":"tardis","fault":"computation","seed":1}`); rec.Code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d %s", rec.Code, rec.Body)
	}
	if rec := post(`{"id":"h1","bench":"CG","class":"D","procs":64,"platform":"tardis","seed":2}`); rec.Code != http.StatusConflict {
		t.Fatalf("duplicate POST /jobs = %d, want 409", rec.Code)
	}
	if rec := post(`{"id":"bad","bench":"NOPE","class":"D","procs":64,"platform":"tardis"}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid POST /jobs = %d, want 400", rec.Code)
	}
	if rec := post(`{garbage`); rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage POST /jobs = %d, want 400", rec.Code)
	}

	if _, err := svc.Wait(testCtx(t), "h1"); err != nil {
		t.Fatal(err)
	}
	rec := get("/verdicts?id=h1")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /verdicts?id=h1 = %d %s", rec.Code, rec.Body)
	}
	var v Verdict
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil || v.JobID != "h1" {
		t.Fatalf("verdict body = %s err=%v", rec.Body, err)
	}
	if rec := get("/verdicts?id=ghost"); rec.Code != http.StatusNotFound {
		t.Fatalf("GET unknown verdict = %d, want 404", rec.Code)
	}
	if rec := get("/verdicts"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"h1"`) {
		t.Fatalf("GET /verdicts = %d %s", rec.Code, rec.Body)
	}
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("GET /healthz = %d", rec.Code)
	}
	if rec := get("/metrics"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), CtrJobsAdmitted+" 1") {
		t.Fatalf("GET /metrics = %d %s", rec.Code, rec.Body)
	}
}
