package service

import (
	"fmt"
	"hash/fnv"
	"time"

	"parastack/internal/detect"
	"parastack/internal/sweep"
)

// RetryPolicy bounds and paces the supervisor's requeue loop (and,
// reused client-side, the RetryClient's ErrBusy/ErrBacklog retries).
// The zero value means "one attempt, no requeue" — supervision is
// opt-in per deployment. Delay is exponential with a deterministic,
// seeded jitter: same (Seed, key, attempt) → same delay, which is what
// makes retry schedules reproducible in tests and across a
// crash-recovery replay.
type RetryPolicy struct {
	// MaxAttempts is the total number of executions a job may consume,
	// initial dispatch included (<= 1: never requeue).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; attempt n
	// waits BaseDelay·2^(n-1), capped at MaxDelay (0 = 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (0 = 5s).
	MaxDelay time.Duration
	// JitterFrac scatters each delay uniformly within ±JitterFrac of
	// its nominal value (0 = 0.2; negative = no jitter).
	JitterFrac float64
	// Seed drives the jitter; a fixed seed pins the whole schedule.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.JitterFrac == 0 {
		p.JitterFrac = 0.2
	}
	if p.JitterFrac < 0 {
		p.JitterFrac = 0
	}
	return p
}

// Delay returns the backoff before attempt+1, given that attempt
// attempts (1-based) have already run for key. It is a pure function
// of (policy, key, attempt): exponential growth from BaseDelay, capped
// at MaxDelay, scattered by a jitter drawn from an FNV-64 hash of
// (Seed, key, attempt) — deterministic, so table tests can pin exact
// durations and two replicas never agree on a thundering herd.
func (p RetryPolicy) Delay(key string, attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.JitterFrac > 0 {
		// Uniform in [-JitterFrac, +JitterFrac), seeded and key-mixed.
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|%s|%d", p.Seed, key, attempt)
		u := float64(h.Sum64()>>11) / float64(1<<53) // [0, 1)
		d = time.Duration(float64(d) * (1 + p.JitterFrac*(2*u-1)))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// DrainTimeoutError reports a Drain that hit its hard deadline with
// jobs still undecided. The stragglers were flushed to the admission
// journal as open entries, so a restart with the same journal recovers
// and re-runs them; the caller should exit nonzero.
type DrainTimeoutError struct {
	// Stragglers are the still-open job IDs, sorted.
	Stragglers []string
	// Cause is the context error that expired the drain.
	Cause error
}

func (e *DrainTimeoutError) Error() string {
	return fmt.Sprintf("service: drain deadline expired with %d undecided job(s) (journaled as open, recoverable on restart): %v",
		len(e.Stragglers), e.Cause)
}

// Unwrap exposes the context error, so errors.Is(err,
// context.DeadlineExceeded) keeps working.
func (e *DrainTimeoutError) Unwrap() error { return e.Cause }

// dispatch hands one simulation job to the worker pool — unless the
// shard's circuit breaker refuses, in which case the job bounces
// straight back to the supervisor as a transient infrastructure
// failure (requeued with backoff while the breaker cools, failed fast
// once its attempts run out). The breaker sees only real run outcomes:
// a bounce is not a failure, so a tripped breaker cannot feed itself.
func (s *Service) dispatch(shard int, j *job) {
	if !s.breakers[shard].allow(time.Now()) {
		s.complete(j, sweep.Record{
			Status: sweep.StatusFailed,
			Error:  fmt.Sprintf("service: shard %d circuit open", shard),
		})
		return
	}
	s.pool.Submit(sweep.Task{Key: j.key, Config: j.rc}, func(rec sweep.Record) {
		if s.breakers[shard].record(rec.Status == sweep.StatusOK, time.Now()) {
			s.count(CtrBreakerTrips, 1)
		}
		s.complete(j, rec)
	})
}

// complete is the supervisor's decision point for one finished attempt:
// map the outcome to a retry class, requeue transient failures while
// attempts remain, and decide everything else. The class comes from the
// run itself (experiment.RunResult.RetryClass — the wait-for cause
// feeding back into scheduling policy); a panicked worker or an open
// circuit has no result and is transient infrastructure by definition.
func (s *Service) complete(j *job, rec sweep.Record) {
	v := Verdict{JobID: j.spec.ID, Key: j.key, Status: VerdictFailed, Error: rec.Error}
	class := detect.RetryTransient
	if rec.Status == sweep.StatusOK && rec.Result != nil {
		v = verdictFromResult(j.spec.ID, j.key, rec.Result)
		class = rec.Result.RetryClass()
	}
	if class == detect.RetryTransient && s.requeue(j, v) {
		return
	}
	s.decide(j, v)
}

// requeue schedules one more attempt for j after its deterministic
// backoff, recording v as the latest outcome (the final answer if the
// drain or a deadline cuts the retry loop short). It refuses — and the
// caller must decide v instead — when attempts are exhausted, the
// service is draining, or the job is already decided.
func (s *Service) requeue(j *job, v Verdict) bool {
	p := s.cfg.Retry
	s.mu.Lock()
	j.attempt++
	if s.draining || j.isDecided() || j.attempt >= p.MaxAttempts {
		j.last, j.hasLast = v, true
		s.mu.Unlock()
		return false
	}
	j.last, j.hasLast = v, true
	delay := p.Delay(j.spec.ID, j.attempt)
	j.retryTimer = time.AfterFunc(delay, func() { s.refire(j) })
	s.mu.Unlock()
	if v.Report != nil {
		// A hang verdict whose cause says "plausibly transient": the
		// scheduler-style requeue the diagnosis layer was built for.
		s.count(CtrJobRequeues, 1)
	} else {
		s.count(CtrJobRetries, 1)
	}
	return true
}

// refire re-enters a requeued job into the ingest pipeline when its
// backoff expires. Offers happen under mu (the Submit rule: Drain
// flips draining under the same lock before closing the batcher, so a
// refire can never hit a closed ingest channel); a saturated ingest
// stage re-arms the timer without consuming an attempt — backpressure
// delays a retry, it doesn't spend it.
func (s *Service) refire(j *job) {
	s.mu.Lock()
	j.retryTimer = nil
	if j.isDecided() {
		s.mu.Unlock()
		return
	}
	if s.draining {
		last := j.last
		s.mu.Unlock()
		s.decide(j, last)
		return
	}
	if !s.batcher.offer(envelope{j: j, enq: time.Now()}) {
		j.retryTimer = time.AfterFunc(s.cfg.Retry.BaseDelay, func() { s.refire(j) })
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

// expire enforces the per-job deadline: a job still undecided when its
// deadline fires is failed in place. The attempt that may still be
// running on a pool worker finishes into a no-op (decide is
// idempotent), so one wedged run can no longer hold its client — or
// the drain path — hostage.
func (s *Service) expire(j *job) {
	if j.isDecided() {
		return
	}
	s.count(CtrDeadlineExpired, 1)
	s.decide(j, Verdict{
		JobID:  j.spec.ID,
		Key:    j.key,
		Status: VerdictFailed,
		Error:  fmt.Sprintf("service: job deadline (%s) exceeded", s.cfg.JobDeadline),
	})
}
