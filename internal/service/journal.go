package service

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"parastack/internal/results"
)

// The admission journal is the daemon's crash-safety spine: every
// accepted job is appended to it *before* the client sees success
// (journal-before-ack), and every verdict is appended *before* it is
// streamed to the verdict sink — so at any kill point the journal
// holds a superset of what the client was told and a record of every
// verdict that may have reached the sink. Recovery (Service.Recover)
// replays it: jobs with a verdict record are re-installed without
// re-execution, jobs without one are re-admitted and re-run.
//
// The journal writes through the results.Sink narrow waist, so the
// plain JSONL file sink (results.OpenJSONL — parastackd's -journal
// flag) and the tamper-evident Merkle ledger (internal/ledger) are
// both valid backends. Replay is pure and order-insensitive: records
// are paired by job ID, so a verdict that raced ahead of its admit in
// a concurrent append schedule still closes the right entry.
const (
	// JournalSchema tags every journal record; replay skips (and
	// counts) records from an incompatible schema instead of guessing.
	JournalSchema = "parastack-journal/v1"

	// JournalKindAdmit marks an admission record (Job is set).
	JournalKindAdmit = "admit"
	// JournalKindVerdict marks a close-out record (Verdict is set).
	JournalKindVerdict = "verdict"
)

// Journal record keys, for sinks that index by key (the ledger). The
// prefixes keep journal records disjoint from the "verdict|<id>" keys
// of the verdict sink, so one ledger can safely serve as both.
func journalAdmitKey(id string) string   { return "journal|admit|" + id }
func journalVerdictKey(id string) string { return "journal|verdict|" + id }

// JournalRecord is one line of the admission journal.
type JournalRecord struct {
	Schema string `json:"schema"`
	Kind   string `json:"kind"`
	JobID  string `json:"job_id"`
	// Job is the admitted spec (admit records only) — everything
	// recovery needs to rebuild and re-run the job.
	Job *JobSpec `json:"job,omitempty"`
	// Verdict is the final answer (verdict records only). Recovery
	// re-installs it verbatim and re-appends it to the verdict sink,
	// where the ledger's content dedup makes the replay idempotent.
	Verdict *Verdict `json:"verdict,omitempty"`
}

// journal serializes journal records into a results.Sink. Appends are
// serialized by an internal mutex so admit/verdict interleavings from
// concurrent workers land whole.
type journal struct {
	mu   sync.Mutex
	sink results.Sink
}

func (jl *journal) append(key string, rec JournalRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.sink.Append(results.Record{Key: key, Payload: payload})
}

// admit journals one accepted job.
func (jl *journal) admit(js JobSpec) error {
	return jl.append(journalAdmitKey(js.ID), JournalRecord{
		Schema: JournalSchema, Kind: JournalKindAdmit, JobID: js.ID, Job: &js,
	})
}

// verdict journals one decided job.
func (jl *journal) verdict(v Verdict) error {
	return jl.append(journalVerdictKey(v.JobID), JournalRecord{
		Schema: JournalSchema, Kind: JournalKindVerdict, JobID: v.JobID, Verdict: &v,
	})
}

// flush forces the journal durable if the backend supports it (the
// drain-deadline path: stragglers must be recoverable before a forced
// exit).
func (jl *journal) flush() error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if f, ok := jl.sink.(results.Flusher); ok {
		return f.Flush()
	}
	return nil
}

// lag reports the backend's durability lag, 0 when unknown.
func (jl *journal) lag() int {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if lg, ok := jl.sink.(results.Lagger); ok {
		return lg.Lag()
	}
	return 0
}

// Replay is the outcome of reading a journal back: the decided jobs
// (verdict present — re-install, never re-run) and the open jobs
// (admitted, no verdict — re-admit and re-run). It is what
// Service.Recover consumes.
type Replay struct {
	// Open holds every admitted-but-unverdicted job spec, in first-admit
	// order. Each job ID appears at most once.
	Open []JobSpec
	// Decided holds every journaled verdict, ordered by Seq (ties by
	// journal order). Each job ID appears at most once; a later verdict
	// record for the same ID wins (last-wins, the sweep-log rule).
	Decided []Verdict
	// Skipped counts records that could not be decoded or carried an
	// unknown schema/kind — tolerated (a torn or corrupted journal must
	// never block recovery of the readable rest) but surfaced.
	Skipped int
}

// ReplayJournal pairs a journal's records into the recovery work-list.
// It is pure and total: arbitrary (including corrupted or truncated)
// payloads never panic, no job ID is ever emitted twice, and no ID
// appears both Open and Decided — the properties FuzzJournalReplay
// pins.
func ReplayJournal(recs []results.Record) Replay {
	var rep Replay
	admits := make(map[string]int)  // id → index into rep.Open
	decided := make(map[string]int) // id → index into rep.Decided
	var order []string              // decided ids in first-verdict order
	verdicts := make(map[string]Verdict)
	for _, rr := range recs {
		var jr JournalRecord
		if err := json.Unmarshal(rr.Payload, &jr); err != nil {
			rep.Skipped++
			continue
		}
		if jr.Schema != JournalSchema || jr.JobID == "" {
			rep.Skipped++
			continue
		}
		switch jr.Kind {
		case JournalKindAdmit:
			if jr.Job == nil || jr.Job.ID != jr.JobID {
				rep.Skipped++
				continue
			}
			if _, dup := admits[jr.JobID]; dup {
				continue // duplicate admit (ledger replays, retried appends): first wins
			}
			admits[jr.JobID] = len(rep.Open)
			rep.Open = append(rep.Open, *jr.Job)
		case JournalKindVerdict:
			if jr.Verdict == nil || jr.Verdict.JobID != jr.JobID {
				rep.Skipped++
				continue
			}
			if _, seen := decided[jr.JobID]; !seen {
				decided[jr.JobID] = len(order)
				order = append(order, jr.JobID)
			}
			verdicts[jr.JobID] = *jr.Verdict // last verdict wins
		default:
			rep.Skipped++
		}
	}
	// Decided jobs leave the open set.
	open := rep.Open[:0]
	for _, js := range rep.Open {
		if _, done := decided[js.ID]; !done {
			open = append(open, js)
		}
	}
	rep.Open = open
	rep.Decided = make([]Verdict, 0, len(order))
	for _, id := range order {
		rep.Decided = append(rep.Decided, verdicts[id])
	}
	// Seq order is the decision order of the pre-crash daemon; sort by
	// it (stable, so journal order breaks ties for seq-less verdicts).
	sort.SliceStable(rep.Decided, func(a, b int) bool {
		return rep.Decided[a].Seq < rep.Decided[b].Seq
	})
	return rep
}

// String summarizes a replay for boot logs.
func (r Replay) String() string {
	return fmt.Sprintf("%d decided, %d open, %d skipped", len(r.Decided), len(r.Open), r.Skipped)
}
