// Package service turns the ParaStack library into a long-running,
// multi-tenant hang-detection daemon: many logical jobs — each a
// (workload, platform, fault, seed) simulation or an external Scrout
// feeder — multiplexed over one sharded worker pool.
//
// The pipeline is:
//
//	Submit/Feed ──► admission (validate, quota) ──► batcher
//	    (size+deadline flush) ──► router ──► per-shard bounded
//	    queues ──► shard loops ──► sweep.Pool workers
//	    (per-worker experiment.Runner) / StreamMonitor feeds ──►
//	    verdict store ──► Verdict / Verdicts queries
//
// Every stage is bounded, and saturation propagates backwards: busy
// workers stall the shard loops, full shard queues stall the router,
// a full batcher input rejects admission (ErrBusy). Jobs beyond the
// residency quota are rejected up front (ErrQuota), and each stream
// job's unprocessed samples are capped (ErrBacklog). A job's identity
// is sharded by FNV hash, so one job's envelopes are always processed
// in order by a single shard.
//
// Determinism carries through from the library: a simulation job's
// verdict is bit-identical to the same configuration run through
// experiment.Run in-process, because admission materializes the same
// RunConfig a grid sweep would and the pool's per-worker Runners are
// pinned bit-identical to fresh runs.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"time"

	"parastack/internal/experiment"
	"parastack/internal/obs"
	"parastack/internal/results"
	"parastack/internal/sweep"
)

// Counter names the service reports through its recorder.
const (
	CtrJobsAdmitted   = "service.jobs_admitted"    // jobs past admission
	CtrJobsRejected   = "service.jobs_rejected"    // submissions refused (quota, busy, invalid, duplicate)
	CtrJobsCompleted  = "service.jobs_completed"   // verdicts reached (ok)
	CtrJobsFailed     = "service.jobs_failed"      // verdicts reached (run panicked)
	CtrBatchesFlushed = "service.batches_flushed"  // ingest batches flushed (size or deadline)
	CtrSamplesIn      = "service.samples_ingested" // stream samples accepted
	CtrSamplesDropped = "service.samples_rejected" // stream samples refused (backlog, busy)
	CtrVerdictsServed = "service.verdicts_served"  // verdict query responses
	CtrSinkAppends    = "service.sink_appends"     // verdicts appended to the results sink
	CtrSinkErrors     = "service.sink_errors"      // results-sink append failures (verdict still served)

	// Supervision counters (journal, recovery, retries, breakers).
	CtrJobsRecovered   = "service.jobs_recovered"   // open jobs re-admitted by a journal replay
	CtrJobRetries      = "service.retries"          // transient-infra re-dispatches scheduled (panic, circuit open)
	CtrJobRequeues     = "service.requeues"         // cause-driven requeues of transient hang verdicts
	CtrBreakerTrips    = "service.breaker_trips"    // shard circuit breakers tripped open
	CtrJournalAppends  = "service.journal_appends"  // admission/verdict journal records written
	CtrJournalErrors   = "service.journal_errors"   // journal append failures
	CtrDeadlineExpired = "service.deadline_expired" // jobs failed by the per-job deadline
)

// Admission errors. The server maps these onto wire error strings;
// clients distinguish "retry later" (ErrBusy, ErrBacklog) from "fix
// your request" (validation, ErrQuota while full, duplicates).
var (
	// ErrQuota rejects a submission that would exceed Config.MaxJobs
	// resident jobs.
	ErrQuota = errors.New("service: job quota exhausted")
	// ErrBusy rejects an envelope because the ingest stage is
	// saturated — the backpressure signal of a slow consumer.
	ErrBusy = errors.New("service: ingest saturated, retry later")
	// ErrBacklog rejects stream samples because the job's bounded
	// sample queue is full.
	ErrBacklog = errors.New("service: stream backlog full, retry later")
	// ErrDraining rejects intake on a service that is shutting down.
	ErrDraining = errors.New("service: draining")
	// ErrUnknownJob rejects samples or queries for a job never admitted.
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrDuplicate rejects a submission reusing a resident job ID.
	ErrDuplicate = errors.New("service: duplicate job id")
	// ErrNotStream rejects samples fed to a simulation job.
	ErrNotStream = errors.New("service: job is not a stream job")
	// ErrJournal rejects a submission whose admission record could not
	// be journaled — the journal-before-ack invariant forbids telling
	// the client "accepted" when a crash right now would lose the job.
	// The job is withdrawn from the pipeline; the client may retry.
	ErrJournal = errors.New("service: admission journal append failed")
)

// Config tunes a Service. The zero value selects serviceable defaults.
type Config struct {
	// Workers bounds the simulation worker pool (0 = GOMAXPROCS).
	Workers int
	// Shards is the number of routing shards, each with its own bounded
	// queue and loop (0 = min(Workers, 4)).
	Shards int
	// MaxJobs is the residency quota: jobs admitted but not yet
	// decided (0 = 1024).
	MaxJobs int
	// IngestDepth bounds the batcher's input channel (0 = 256).
	IngestDepth int
	// ShardDepth bounds each shard's queue (0 = 64).
	ShardDepth int
	// StreamBacklog caps one stream job's unprocessed samples (0 = 4096).
	StreamBacklog int
	// BatchSize flushes an ingest batch at this many envelopes (0 = 16).
	BatchSize int
	// BatchDelay flushes a partial batch after this long (0 = 2ms).
	BatchDelay time.Duration
	// Retries is re-execution of panicking runs, in the sweep.Options
	// encoding (0 = default 1, negative = none; see
	// sweep.LiteralRetries).
	Retries int
	// Recorder receives the service counters (nil = a private
	// metrics-only recorder). Access is serialized by the service.
	Recorder obs.Recorder
	// Run overrides the run executor (tests inject fakes; nil = each
	// pool worker owns an experiment.Runner).
	Run func(experiment.RunConfig) experiment.RunResult
	// Sink, when non-nil, receives every decided verdict as one JSON
	// record keyed "verdict|<job id>" — a ledger here makes the
	// daemon's verdict history tamper-evident and psverify-auditable.
	// Append failures are counted (CtrSinkErrors) but never block or
	// fail the verdict itself; the sink's lifecycle belongs to the
	// caller (close it after Drain).
	Sink results.Sink

	// Journal, when non-nil, is the durable admission journal: every
	// accepted job is appended before the client sees success
	// (journal-before-ack; a failed append withdraws the job and
	// returns ErrJournal), and every verdict is appended before it
	// reaches Sink. Recover replays a Reader over the same records to
	// survive a crash with exactly-once verdicts. Use results.OpenJSONL
	// for a plain file journal or a ledger.Ledger for a tamper-evident
	// one; the sink's lifecycle belongs to the caller (close after
	// Drain).
	Journal results.Sink
	// Retry is the supervisor's requeue policy for transient outcomes —
	// panicked workers, open shard circuits, and hang verdicts whose
	// wait-for cause is plausibly transient (straggler chains, lost
	// messages, unknown). Structural causes (deadlock, collective
	// mismatch) are never requeued. The zero value never requeues.
	Retry RetryPolicy
	// JobDeadline, when positive, bounds each simulation job's
	// admission-to-verdict time; on expiry the job is failed in place
	// ("job deadline exceeded") even if its run is still wedged on a
	// worker. Stream jobs — externally paced by their feeders — are
	// exempt.
	JobDeadline time.Duration
	// BreakerThreshold is the consecutive-run-failure count that trips
	// one shard's circuit breaker open (0 = 5, negative = breakers
	// disabled).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before
	// admitting a half-open probe (0 = 5s).
	BreakerCooldown time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Shards <= 0 {
		c.Shards = c.Workers
		if c.Shards > 4 {
			c.Shards = 4
		}
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.IngestDepth <= 0 {
		c.IngestDepth = 256
	}
	if c.ShardDepth <= 0 {
		c.ShardDepth = 64
	}
	if c.StreamBacklog <= 0 {
		c.StreamBacklog = 4096
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.BatchDelay <= 0 {
		c.BatchDelay = 2 * time.Millisecond
	}
	if c.Recorder == nil {
		c.Recorder = obs.New(nil)
	}
	c.Retry = c.Retry.withDefaults()
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	return c
}

// job is one resident job's state.
type job struct {
	spec JobSpec
	key  string
	rc   experiment.RunConfig

	mon     *StreamMonitor // stream jobs only
	pending int            // unprocessed stream samples (guarded by Service.mu)

	enq        time.Time
	dispatched time.Time

	// Supervision state, guarded by Service.mu.
	attempt    int         // finished dispatch attempts
	last       Verdict     // latest attempt's outcome (final if retries are cut short)
	hasLast    bool        // last is meaningful
	retryTimer *time.Timer // pending backoff requeue, nil otherwise
	deadline   *time.Timer // per-job deadline, nil when unbounded
	recovered  bool        // re-admitted by Recover (admit already journaled)
	withdrawn  bool        // journal-before-ack failed: skip dispatch, record no verdict

	done    chan struct{} // closed when the verdict lands
	verdict Verdict
}

// Service is the multi-tenant detection engine. Construct with New,
// feed with Submit/Feed, query with Verdict/Verdicts, and shut down
// with Drain (graceful) or Close.
type Service struct {
	cfg      Config
	pool     *sweep.Pool
	batcher  *batcher
	shards   []chan envelope
	shardWG  sync.WaitGroup
	breakers []*breaker
	journal  *journal // nil when Config.Journal is nil

	mu       sync.Mutex
	jobs     map[string]*job // resident (undecided) jobs
	decided  map[string]*job // jobs with a verdict
	order    []string        // decision order of decided jobs
	nextSeq  int64           // next verdict Seq (monotone; recovery advances it)
	resident int
	draining bool

	recMu sync.Mutex
	rec   obs.Recorder
}

// New starts a service: the worker pool, the shard loops, and the
// ingest batcher.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:     cfg,
		jobs:    make(map[string]*job),
		decided: make(map[string]*job),
		nextSeq: 1,
		rec:     cfg.Recorder,
	}
	if cfg.Journal != nil {
		s.journal = &journal{sink: cfg.Journal}
	}
	s.pool = sweep.NewPool(sweep.Options{
		Workers:  cfg.Workers,
		Retries:  cfg.Retries,
		Recorder: obs.New(nil), // pool counters are internal; service counters are the surface
		Run:      cfg.Run,
	})
	s.breakers = newBreakers(cfg.Shards, cfg.BreakerThreshold, cfg.BreakerCooldown)
	s.shards = make([]chan envelope, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = make(chan envelope, cfg.ShardDepth)
		s.shardWG.Add(1)
		go s.shardLoop(i, s.shards[i])
	}
	s.batcher = newBatcher(cfg.IngestDepth, cfg.BatchSize, cfg.BatchDelay, s.route)
	return s
}

// count serializes recorder access (obs.Basic is single-goroutine).
func (s *Service) count(name string, delta int64) {
	s.recMu.Lock()
	s.rec.Count(name, delta)
	s.recMu.Unlock()
}

// Counters snapshots the service's observability counters.
func (s *Service) Counters() obs.Snapshot {
	s.recMu.Lock()
	defer s.recMu.Unlock()
	return s.rec.Snapshot()
}

// Submit validates and admits one job. On return the job is resident
// AND — when a journal is configured — durably journaled: it WILL
// receive a verdict (success, failure, or — for stream jobs — a
// drain-time close-out), and a daemon crash before that verdict leaves
// an open journal entry Recover re-runs. Errors mean the job was not
// admitted (an ErrJournal submission is withdrawn before dispatch).
func (s *Service) Submit(js JobSpec) error {
	if js.ID == "" {
		s.count(CtrJobsRejected, 1)
		return fmt.Errorf("service: job needs an id")
	}
	j := &job{spec: js, enq: time.Now(), done: make(chan struct{})}
	if js.Stream {
		j.mon = NewStreamMonitor(js.Alpha, 0)
	} else {
		key, rc, err := js.cell()
		if err != nil {
			s.count(CtrJobsRejected, 1)
			return err
		}
		j.key, j.rc = key, rc
	}

	// Admission is atomic under mu — including the batcher offer — so
	// Drain (which flips draining under the same mu before closing the
	// batcher) can never close the ingest channel between an admission
	// check and its offer.
	s.mu.Lock()
	switch {
	case s.draining:
		s.mu.Unlock()
		s.count(CtrJobsRejected, 1)
		return ErrDraining
	case s.jobs[js.ID] != nil || s.decided[js.ID] != nil:
		s.mu.Unlock()
		s.count(CtrJobsRejected, 1)
		return ErrDuplicate
	case s.resident >= s.cfg.MaxJobs:
		s.mu.Unlock()
		s.count(CtrJobsRejected, 1)
		return ErrQuota
	}
	if !s.batcher.offer(envelope{j: j, enq: j.enq}) {
		s.mu.Unlock()
		s.count(CtrJobsRejected, 1)
		return ErrBusy
	}
	s.jobs[js.ID] = j
	s.resident++
	s.mu.Unlock()

	// Journal-before-ack: the admit record must be durable before the
	// client hears "accepted". On append failure the job is withdrawn —
	// pulled back out of residency and skipped by its shard — so the
	// rejection the client sees is the truth.
	if s.journal != nil {
		if err := s.journal.admit(js); err != nil {
			s.mu.Lock()
			j.withdrawn = true
			delete(s.jobs, js.ID)
			s.resident--
			s.mu.Unlock()
			s.count(CtrJournalErrors, 1)
			s.count(CtrJobsRejected, 1)
			return fmt.Errorf("%w: %v", ErrJournal, err)
		}
		s.count(CtrJournalAppends, 1)
	}
	s.armDeadline(j)
	s.count(CtrJobsAdmitted, 1)
	return nil
}

// armDeadline starts j's per-job deadline timer (simulation jobs only;
// stream jobs are externally paced).
func (s *Service) armDeadline(j *job) {
	if s.cfg.JobDeadline <= 0 || j.mon != nil {
		return
	}
	s.mu.Lock()
	if !j.isDecided() && !j.withdrawn {
		j.deadline = time.AfterFunc(s.cfg.JobDeadline, func() { s.expire(j) })
	}
	s.mu.Unlock()
}

// Feed ingests Scrout samples for a resident stream job. Samples are
// processed asynchronously, in order, by the job's shard; the per-job
// backlog is bounded by Config.StreamBacklog.
func (s *Service) Feed(jobID string, samples []StreamSample) error {
	if len(samples) == 0 {
		return nil
	}
	s.mu.Lock()
	j := s.jobs[jobID]
	if j == nil {
		decidedJob := s.decided[jobID]
		s.mu.Unlock()
		s.count(CtrSamplesDropped, int64(len(samples)))
		if decidedJob != nil {
			return fmt.Errorf("service: job %q already decided", jobID)
		}
		return ErrUnknownJob
	}
	if j.mon == nil {
		s.mu.Unlock()
		s.count(CtrSamplesDropped, int64(len(samples)))
		return ErrNotStream
	}
	if s.draining {
		s.mu.Unlock()
		s.count(CtrSamplesDropped, int64(len(samples)))
		return ErrDraining
	}
	if j.pending+len(samples) > s.cfg.StreamBacklog {
		s.mu.Unlock()
		s.count(CtrSamplesDropped, int64(len(samples)))
		return ErrBacklog
	}
	if !s.batcher.offer(envelope{j: j, samples: samples, enq: time.Now()}) {
		s.mu.Unlock()
		s.count(CtrSamplesDropped, int64(len(samples)))
		return ErrBusy
	}
	j.pending += len(samples)
	s.mu.Unlock()
	s.count(CtrSamplesIn, int64(len(samples)))
	return nil
}

// route is the batcher's flush: fan one batch out to the shard queues.
// It runs on the single batcher goroutine and may block on a full
// shard queue — that stall backs up into the batcher input, which is
// what turns a slow consumer into admission-time ErrBusy.
func (s *Service) route(batch []envelope) {
	s.count(CtrBatchesFlushed, 1)
	for _, e := range batch {
		s.shards[shardOf(e.j.spec.ID, len(s.shards))] <- e
	}
}

// shardOf maps a job ID onto its shard by FNV-1a hash.
func shardOf(id string, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32()) % shards
}

// shardLoop drains one shard queue: dispatching simulation jobs to the
// worker pool (blocking while all workers are busy — the pool's
// backpressure) and feeding stream samples to their monitors. Each
// dispatch goes through the shard's circuit breaker and, on
// completion, the supervisor's retry policy (supervisor.go).
func (s *Service) shardLoop(idx int, q chan envelope) {
	defer s.shardWG.Done()
	for e := range q {
		j := e.j
		s.mu.Lock()
		skip := j.withdrawn || j.isDecided()
		if !skip && e.samples == nil {
			j.dispatched = time.Now()
		}
		s.mu.Unlock()
		if skip {
			continue
		}
		if e.samples != nil {
			s.feedShard(j, e.samples)
			continue
		}
		if j.mon != nil {
			// Stream job: attached, now fed by later envelopes.
			continue
		}
		s.dispatch(idx, j)
	}
}

// feedShard runs one sample batch through a stream job's monitor and
// decides the job if the significance test fires.
func (s *Service) feedShard(j *job, samples []StreamSample) {
	var fired bool
	for _, smp := range samples {
		if j.mon.Ingest(smp) != nil {
			fired = true
		}
	}
	s.mu.Lock()
	j.pending -= len(samples)
	s.mu.Unlock()
	if fired && !j.isDecided() {
		s.decide(j, Verdict{
			JobID:   j.spec.ID,
			Status:  VerdictOK,
			Report:  j.mon.Report(),
			Samples: j.mon.Samples(),
		})
	}
}

// isDecided reports whether the job's verdict has landed.
func (j *job) isDecided() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// decide records a job's verdict, moves it out of residency, wakes
// waiters, journals the close-out, and streams the verdict to the
// results sink (if one is configured) — in that order: a verdict that
// reached the sink is always also in the journal, which is what makes
// a crash between the two recoverable exactly-once. Seq — the
// /verdicts pagination cursor — is assigned here, under the same lock
// that fixes the decision order, so cursors and decision order can
// never disagree. install carries a recovery verdict's journaled Seq
// through unchanged.
func (s *Service) decide(j *job, v Verdict) { s.install(j, v, false) }

func (s *Service) install(j *job, v Verdict, keepSeq bool) {
	s.mu.Lock()
	if j.isDecided() || j.withdrawn {
		s.mu.Unlock()
		return
	}
	if !keepSeq {
		if !j.dispatched.IsZero() {
			v.IngestUS = j.dispatched.Sub(j.enq).Microseconds()
		}
		v.Seq = s.nextSeq
	}
	if v.Seq >= s.nextSeq {
		s.nextSeq = v.Seq + 1
	}
	if j.retryTimer != nil {
		j.retryTimer.Stop()
		j.retryTimer = nil
	}
	if j.deadline != nil {
		j.deadline.Stop()
		j.deadline = nil
	}
	j.verdict = v
	delete(s.jobs, j.spec.ID)
	s.decided[j.spec.ID] = j
	s.order = append(s.order, j.spec.ID)
	s.resident--
	close(j.done)
	s.mu.Unlock()
	if v.Status == VerdictFailed {
		s.count(CtrJobsFailed, 1)
	} else {
		s.count(CtrJobsCompleted, 1)
	}
	// Journal the verdict before the sink sees it (see the ordering
	// argument above). A journal append failure is counted but does not
	// block the verdict: the job stays open in the journal and a
	// post-crash recovery re-runs it to the same (deterministic) answer.
	if s.journal != nil && !keepSeq {
		if err := s.journal.verdict(v); err != nil {
			s.count(CtrJournalErrors, 1)
		} else {
			s.count(CtrJournalAppends, 1)
		}
	}
	if s.cfg.Sink != nil {
		if err := s.appendVerdict(v); err != nil {
			s.count(CtrSinkErrors, 1)
		} else {
			s.count(CtrSinkAppends, 1)
		}
	}
}

// appendVerdict writes one verdict through the results sink, keyed so
// that a restarted daemon appending the same job id lands on the same
// ledger key (last record wins, the sweep-log rule).
func (s *Service) appendVerdict(v Verdict) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return s.cfg.Sink.Append(results.Record{Key: "verdict|" + v.JobID, Payload: payload})
}

// Verdict returns the job's verdict. ok is false while the job is
// still in flight; err is ErrUnknownJob for an ID never admitted.
func (s *Service) Verdict(jobID string) (Verdict, bool, error) {
	s.mu.Lock()
	j, decided := s.decided[jobID]
	_, resident := s.jobs[jobID]
	s.mu.Unlock()
	if decided {
		s.count(CtrVerdictsServed, 1)
		return j.verdict, true, nil
	}
	if resident {
		return Verdict{}, false, nil
	}
	return Verdict{}, false, ErrUnknownJob
}

// Wait blocks until the job's verdict lands or the context ends.
func (s *Service) Wait(ctx context.Context, jobID string) (Verdict, error) {
	s.mu.Lock()
	j := s.decided[jobID]
	if j == nil {
		j = s.jobs[jobID]
	}
	s.mu.Unlock()
	if j == nil {
		return Verdict{}, ErrUnknownJob
	}
	select {
	case <-j.done:
		s.count(CtrVerdictsServed, 1)
		return j.verdict, nil
	case <-ctx.Done():
		return Verdict{}, ctx.Err()
	}
}

// Verdicts returns every decided job's verdict in decision order —
// unbounded, for in-process callers (drain summaries, tests). The
// HTTP surface never serves this directly: it pages through
// VerdictsPage so a long-running daemon cannot OOM a scraper.
func (s *Service) Verdicts() []Verdict {
	s.mu.Lock()
	out := make([]Verdict, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.decided[id].verdict)
	}
	s.mu.Unlock()
	s.count(CtrVerdictsServed, int64(len(out)))
	return out
}

// Pagination bounds for VerdictsPage and GET /verdicts.
const (
	// DefaultVerdictsLimit is the page size when the client names none.
	DefaultVerdictsLimit = 1000
	// MaxVerdictsLimit caps any client-requested page size.
	MaxVerdictsLimit = 10000
)

// VerdictsPage returns up to limit decided verdicts with Seq > after,
// in decision order, plus whether more remain. Seq is assigned at
// decision time and is strictly increasing along the decision order —
// dense in an uninterrupted run, possibly sparse after a crash
// recovery (recovered verdicts keep their pre-crash Seqs) — so a
// scraper pages with after = the last verdict's Seq regardless. limit
// outside (0, MaxVerdictsLimit] selects DefaultVerdictsLimit or the
// cap respectively.
func (s *Service) VerdictsPage(after int64, limit int) ([]Verdict, bool) {
	if limit <= 0 {
		limit = DefaultVerdictsLimit
	}
	if limit > MaxVerdictsLimit {
		limit = MaxVerdictsLimit
	}
	s.mu.Lock()
	// Seqs increase along s.order (recovery installs its replayed
	// verdicts in Seq order before any new decision), so the first
	// verdict with Seq > after is found by binary search.
	start := sort.Search(len(s.order), func(i int) bool {
		return s.decided[s.order[i]].verdict.Seq > after
	})
	end := start + limit
	if end > len(s.order) {
		end = len(s.order)
	}
	out := make([]Verdict, 0, end-start)
	for _, id := range s.order[start:end] {
		out = append(out, s.decided[id].verdict)
	}
	more := end < len(s.order)
	s.mu.Unlock()
	s.count(CtrVerdictsServed, int64(len(out)))
	return out, more
}

// Pending returns the IDs of resident (undecided) jobs, sorted.
func (s *Service) Pending() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Drain performs a graceful shutdown: stop admitting, flush the
// batcher, drain every shard queue, wait for every in-flight run,
// finalize retry-parked jobs with their latest outcome, and close out
// still-undecided stream jobs with a no-hang verdict — so after Drain
// returns nil, every job ever admitted has a queryable verdict. The
// context is the hard drain deadline: on expiry the pipeline keeps
// draining in the background, but the still-undecided jobs are flushed
// to the admission journal as open entries (recoverable on restart)
// and Drain returns a *DrainTimeoutError naming them — the caller
// should exit nonzero.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.batcher.close()
		for _, q := range s.shards {
			close(q)
		}
		s.shardWG.Wait()
		s.pool.Close()
		// Finalize jobs parked on a retry backoff: no more attempts are
		// coming, so their latest outcome is the final answer.
		s.mu.Lock()
		var parked []*job
		for _, j := range s.jobs {
			if j.hasLast && j.mon == nil {
				if j.retryTimer != nil {
					j.retryTimer.Stop()
					j.retryTimer = nil
				}
				parked = append(parked, j)
			}
		}
		s.mu.Unlock()
		sort.Slice(parked, func(a, b int) bool { return parked[a].spec.ID < parked[b].spec.ID })
		for _, j := range parked {
			s.decide(j, j.last)
		}
		// Close out stream jobs that never fired: their feeders are
		// gone; "no hang observed over N samples" is the final answer.
		s.mu.Lock()
		var leftover []*job
		for _, j := range s.jobs {
			if j.mon != nil {
				leftover = append(leftover, j)
			}
		}
		s.mu.Unlock()
		sort.Slice(leftover, func(a, b int) bool { return leftover[a].spec.ID < leftover[b].spec.ID })
		for _, j := range leftover {
			s.decide(j, Verdict{
				JobID:     j.spec.ID,
				Status:    VerdictOK,
				Completed: true,
				Report:    j.mon.Report(),
				Samples:   j.mon.Samples(),
			})
		}
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Hard deadline: the stragglers' admit records are already in
		// the journal (journal-before-ack) with no verdict, i.e. open.
		// Force the journal durable so a restart recovers them, and name
		// them in the error.
		stragglers := s.Pending()
		if s.journal != nil {
			_ = s.journal.flush()
		}
		return &DrainTimeoutError{Stragglers: stragglers, Cause: ctx.Err()}
	}
}

// Close is Drain with no deadline.
func (s *Service) Close() error { return s.Drain(context.Background()) }
