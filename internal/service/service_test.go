package service

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"parastack/internal/core"
	"parastack/internal/experiment"
	"parastack/internal/fault"
	"parastack/internal/noise"
	"parastack/internal/workload"
)

// fakeRun returns instantly-completed results carrying the seed, so
// lifecycle tests don't pay for real simulations.
func fakeRun(rc experiment.RunConfig) experiment.RunResult {
	return experiment.RunResult{
		Spec:      rc.Params.Spec,
		Platform:  rc.Platform.Name,
		Seed:      rc.Seed,
		Completed: true,
	}
}

// simJob returns a valid simulation JobSpec.
func simJob(id string, seed int64) JobSpec {
	return JobSpec{ID: id, Bench: "CG", Class: "D", Procs: 64,
		Platform: "tardis", Fault: "computation", Seed: seed}
}

func TestSubmitValidationAndDuplicates(t *testing.T) {
	s := New(Config{Run: fakeRun})
	defer s.Close()

	if err := s.Submit(JobSpec{}); err == nil {
		t.Fatal("empty job admitted")
	}
	if err := s.Submit(JobSpec{ID: "bad", Bench: "NOPE", Class: "D", Procs: 64, Platform: "tardis"}); err == nil {
		t.Fatal("unknown workload admitted")
	}
	if err := s.Submit(JobSpec{ID: "bad2", Bench: "CG", Class: "D", Procs: 64, Platform: "nowhere"}); err == nil {
		t.Fatal("unknown platform admitted")
	}
	if err := s.Submit(JobSpec{ID: "bad3", Bench: "CG", Class: "D", Procs: 64, Platform: "tardis", Fault: "gremlins"}); err == nil {
		t.Fatal("unknown fault admitted")
	}
	if err := s.Submit(simJob("j1", 1)); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	if err := s.Submit(simJob("j1", 2)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate id error = %v, want ErrDuplicate", err)
	}
	if _, err := s.Wait(context.Background(), "j1"); err != nil {
		t.Fatalf("wait: %v", err)
	}
	// A decided job's ID stays taken: verdicts are immutable history.
	if err := s.Submit(simJob("j1", 3)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("resubmit after verdict error = %v, want ErrDuplicate", err)
	}
	snap := s.Counters()
	if got := snap.Counter(CtrJobsRejected); got != 6 {
		t.Errorf("jobs_rejected = %d, want 6", got)
	}
	if got := snap.Counter(CtrJobsAdmitted); got != 1 {
		t.Errorf("jobs_admitted = %d, want 1", got)
	}
}

func TestQuotaReject(t *testing.T) {
	// One worker stuck on a gated run; quota 2 fills with the running
	// job plus one queued job, and the third submission must bounce.
	gate := make(chan struct{})
	var once sync.Once
	slow := func(rc experiment.RunConfig) experiment.RunResult {
		<-gate
		return fakeRun(rc)
	}
	defer func() { once.Do(func() { close(gate) }) }()

	s := New(Config{Run: slow, Workers: 1, MaxJobs: 2, BatchSize: 1})
	defer s.Close()

	if err := s.Submit(simJob("q1", 1)); err != nil {
		t.Fatalf("q1: %v", err)
	}
	if err := s.Submit(simJob("q2", 2)); err != nil {
		t.Fatalf("q2: %v", err)
	}
	if err := s.Submit(simJob("q3", 3)); !errors.Is(err, ErrQuota) {
		t.Fatalf("over-quota error = %v, want ErrQuota", err)
	}
	once.Do(func() { close(gate) })
	for _, id := range []string{"q1", "q2"} {
		if _, err := s.Wait(context.Background(), id); err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
	}
	// Quota slots were released by the verdicts: admission works again.
	if err := s.Submit(simJob("q4", 4)); err != nil {
		t.Fatalf("post-release submit: %v", err)
	}
}

func TestBackpressureSlowConsumer(t *testing.T) {
	// Every stage is made tiny and the single worker never finishes, so
	// a burst must fill worker → shard queue → batcher input and turn
	// into ErrBusy at admission instead of unbounded buffering.
	gate := make(chan struct{})
	var once sync.Once
	stuck := func(rc experiment.RunConfig) experiment.RunResult {
		<-gate
		return fakeRun(rc)
	}
	defer func() { once.Do(func() { close(gate) }) }()

	s := New(Config{
		Run: stuck, Workers: 1, Shards: 1, MaxJobs: 100,
		IngestDepth: 2, ShardDepth: 1, BatchSize: 1, BatchDelay: time.Millisecond,
	})
	defer s.Close()

	var busy bool
	for i := 0; i < 50 && !busy; i++ {
		err := s.Submit(simJob(fmt.Sprintf("bp%d", i), int64(i)))
		switch {
		case err == nil:
		case errors.Is(err, ErrBusy):
			busy = true
		default:
			t.Fatalf("submit %d: %v", i, err)
		}
		// Give the batcher a beat to move envelopes downstream so the
		// stall point is genuinely the saturated pipeline, not a race
		// on the input channel.
		time.Sleep(time.Millisecond)
	}
	if !busy {
		t.Fatal("50 submissions into a 1-worker stuck pipeline never saw ErrBusy")
	}
	if s.Counters().Counter(CtrJobsRejected) == 0 {
		t.Error("jobs_rejected counter not incremented")
	}
	once.Do(func() { close(gate) })
}

func TestDrainDeliversAllVerdicts(t *testing.T) {
	slow := func(rc experiment.RunConfig) experiment.RunResult {
		time.Sleep(5 * time.Millisecond)
		return fakeRun(rc)
	}
	s := New(Config{Run: slow, Workers: 2, BatchDelay: time.Millisecond})

	const n = 20
	for i := 0; i < n; i++ {
		if err := s.Submit(simJob(fmt.Sprintf("d%d", i), int64(i))); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// A stream job that never fires must be closed out by the drain too.
	if err := s.Submit(JobSpec{ID: "stream", Stream: true}); err != nil {
		t.Fatalf("stream submit: %v", err)
	}
	if err := s.Feed("stream", []StreamSample{{TUS: 1, Scrout: 0.5}}); err != nil {
		t.Fatalf("feed: %v", err)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := s.Submit(simJob("late", 99)); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit error = %v, want ErrDraining", err)
	}
	vs := s.Verdicts()
	if len(vs) != n+1 {
		t.Fatalf("verdicts after drain = %d, want %d", len(vs), n+1)
	}
	if pending := s.Pending(); len(pending) != 0 {
		t.Fatalf("pending jobs after drain: %v", pending)
	}
	sv, ok, err := s.Verdict("stream")
	if err != nil || !ok {
		t.Fatalf("stream verdict: ok=%v err=%v", ok, err)
	}
	if !sv.Completed || sv.Report != nil || sv.Samples != 1 {
		t.Fatalf("stream close-out verdict = %+v, want completed no-hang with 1 sample", sv)
	}
	// Drain is idempotent.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

func TestStreamJobDetectsHang(t *testing.T) {
	s := New(Config{Run: fakeRun, BatchDelay: time.Millisecond})
	defer s.Close()

	if err := s.Submit(JobSpec{ID: "feeder", Stream: true}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Healthy phase: alternating Scrout builds a model with a low
	// threshold; hang phase: a long streak of zeros must verify.
	var healthy []StreamSample
	for i := 0; i < 200; i++ {
		healthy = append(healthy, StreamSample{TUS: int64(i) * 400_000, Scrout: float64(1+i%5) / 6})
	}
	if err := s.Feed("feeder", healthy); err != nil {
		t.Fatalf("feed healthy: %v", err)
	}
	var hang []StreamSample
	for i := 0; i < 100; i++ {
		hang = append(hang, StreamSample{TUS: int64(200+i) * 400_000, Scrout: 0})
	}
	if err := s.Feed("feeder", hang); err != nil {
		t.Fatalf("feed hang: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := s.Wait(ctx, "feeder")
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if v.Report == nil {
		t.Fatal("stream job delivered no report for an all-zero Scrout streak")
	}
	if v.Report.Type != core.HangCommunication {
		t.Errorf("stream report type = %v, want communication (no probe plane)", v.Report.Type)
	}
	if v.Completed {
		t.Error("hang verdict marked Completed")
	}
	// Samples fed to a decided job are rejected, not buffered.
	if err := s.Feed("feeder", healthy[:1]); err == nil {
		t.Error("feed after verdict succeeded, want rejection")
	}
}

func TestStreamBacklogBound(t *testing.T) {
	s := New(Config{Run: fakeRun, StreamBacklog: 10, BatchDelay: time.Hour, BatchSize: 1 << 20, IngestDepth: 1 << 10})
	defer s.Close()
	if err := s.Submit(JobSpec{ID: "f", Stream: true}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	// BatchDelay=1h and huge BatchSize pin samples in the ingest stage,
	// so pending never drains and the per-job bound must trip.
	batch := make([]StreamSample, 6)
	if err := s.Feed("f", batch); err != nil {
		t.Fatalf("first feed: %v", err)
	}
	if err := s.Feed("f", batch); !errors.Is(err, ErrBacklog) {
		t.Fatalf("over-backlog feed error = %v, want ErrBacklog", err)
	}
	if err := s.Feed("unknown", batch); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown-job feed error = %v, want ErrUnknownJob", err)
	}
	if err := s.Feed("f", nil); err != nil {
		t.Fatalf("empty feed: %v", err)
	}
}

func TestFeedToSimulationJobRejected(t *testing.T) {
	gate := make(chan struct{})
	stuck := func(rc experiment.RunConfig) experiment.RunResult { <-gate; return fakeRun(rc) }
	s := New(Config{Run: stuck, Workers: 1})
	defer s.Close()
	defer close(gate) // before Close: the drain waits for the gated run
	if err := s.Submit(simJob("sim", 1)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := s.Feed("sim", []StreamSample{{TUS: 1, Scrout: 0}}); !errors.Is(err, ErrNotStream) {
		t.Fatalf("feed to sim job error = %v, want ErrNotStream", err)
	}
}

// TestManyJobsSmoke is the race-enabled lifecycle smoke: many
// concurrent submitters and queriers against small queues, then a
// drain that must account for every admitted job exactly once.
func TestManyJobsSmoke(t *testing.T) {
	s := New(Config{
		Run:        fakeRun,
		Workers:    4,
		Shards:     3,
		BatchSize:  4,
		BatchDelay: time.Millisecond,
		ShardDepth: 8,
	})

	const clients, each = 8, 25
	var wg sync.WaitGroup
	var mu sync.Mutex
	admitted := make(map[string]bool)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				id := fmt.Sprintf("c%d-%d", c, i)
				err := s.Submit(simJob(id, int64(c*each+i)))
				if err == nil {
					mu.Lock()
					admitted[id] = true
					mu.Unlock()
				} else if !errors.Is(err, ErrBusy) && !errors.Is(err, ErrQuota) {
					t.Errorf("submit %s: %v", id, err)
				}
				if i%7 == 0 {
					s.Verdicts() // concurrent queries must be safe
				}
			}
		}(c)
	}
	wg.Wait()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	vs := s.Verdicts()
	if len(vs) != len(admitted) {
		t.Fatalf("verdicts = %d, admitted = %d", len(vs), len(admitted))
	}
	seen := make(map[string]bool)
	for _, v := range vs {
		if seen[v.JobID] {
			t.Fatalf("duplicate verdict for %s", v.JobID)
		}
		seen[v.JobID] = true
		if !admitted[v.JobID] {
			t.Fatalf("verdict for never-admitted job %s", v.JobID)
		}
		if v.Status != VerdictOK || !v.Completed {
			t.Errorf("job %s verdict = %+v, want completed ok", v.JobID, v)
		}
	}
	snap := s.Counters()
	if got := snap.Counter(CtrJobsCompleted); got != int64(len(admitted)) {
		t.Errorf("jobs_completed = %d, want %d", got, len(admitted))
	}
	if snap.Counter(CtrBatchesFlushed) == 0 {
		t.Error("batches_flushed = 0")
	}
}

// TestVerdictBitIdenticalToInProcessRun is the acceptance pin: a
// daemon-served simulation job's verdict — report, cause, and
// diagnosis — must be bit-identical to the same (workload, platform,
// fault, seed) configuration run through in-process experiment.Run.
func TestVerdictBitIdenticalToInProcessRun(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	const seed = 3
	s := New(Config{Workers: 2}) // real runs: per-worker experiment.Runner
	defer s.Close()
	if err := s.Submit(simJob("bit", seed)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	v, err := s.Wait(ctx, "bit")
	if err != nil {
		t.Fatalf("wait: %v", err)
	}

	params := workload.MustLookup("CG", "D", 64)
	prof, err := noise.Lookup("tardis")
	if err != nil {
		t.Fatal(err)
	}
	direct := experiment.Run(experiment.RunConfig{
		Params:    params,
		Platform:  prof,
		Seed:      seed,
		FaultKind: fault.ComputationHang,
		Monitor:   &core.Config{},
	})

	if direct.Report == nil {
		t.Fatal("direct run reported nothing; pick a hanging configuration")
	}
	if !reflect.DeepEqual(v.Report, direct.Report) {
		t.Errorf("daemon report = %+v\ndirect report = %+v", v.Report, direct.Report)
	}
	if v.Cause != direct.Cause {
		t.Errorf("daemon cause = %q, direct cause = %q", v.Cause, direct.Cause)
	}
	if !reflect.DeepEqual(v.Diagnosis, direct.Diagnosis) {
		t.Errorf("daemon diagnosis = %+v\ndirect diagnosis = %+v", v.Diagnosis, direct.Diagnosis)
	}
	if v.Detected != direct.Detected || v.FalsePositive != direct.FalsePositive || v.Delay != direct.Delay {
		t.Errorf("daemon judgement (%v,%v,%v) != direct (%v,%v,%v)",
			v.Detected, v.FalsePositive, v.Delay, direct.Detected, direct.FalsePositive, direct.Delay)
	}
}

func TestRunPanicYieldsFailedVerdict(t *testing.T) {
	boom := func(rc experiment.RunConfig) experiment.RunResult { panic("boom") }
	s := New(Config{Run: boom, Retries: -1})
	defer s.Close()
	if err := s.Submit(simJob("p", 1)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	v, err := s.Wait(context.Background(), "p")
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if v.Status != VerdictFailed || v.Error == "" {
		t.Fatalf("verdict = %+v, want failed with error", v)
	}
	if got := s.Counters().Counter(CtrJobsFailed); got != 1 {
		t.Errorf("jobs_failed = %d, want 1", got)
	}
}
