package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
)

// Handler returns the daemon's HTTP surface — the query-side twin of
// the framed-JSONL socket, for humans and dashboards:
//
//	GET  /verdicts                 first page of decided verdicts (JSON array)
//	GET  /verdicts?after=N&limit=M verdicts with seq > N, at most M of them
//	GET  /verdicts?id=j1           one verdict (404 unknown, 202 pending)
//	POST /jobs                     submit a JobSpec (JSON body)
//	GET  /healthz                  health JSON: ok|degraded|draining, queue
//	                               depths, open breakers, journal lag
//	                               (503 while draining)
//	GET  /metrics                  service counters, one "name value" per line
//
// The list form is always bounded: with no limit it serves at most
// DefaultVerdictsLimit (1000) verdicts, and limit is capped at
// MaxVerdictsLimit — a long-running daemon holding millions of
// verdicts can no longer OOM a naive scraper. Each verdict carries a
// dense "seq" cursor; page by passing the last seq as after until a
// short page comes back. When more verdicts remain past the page the
// response carries the X-More: true header.
//
// Stream feeding stays on the socket: sample streams are long-lived
// and ordered, which a request-per-batch HTTP surface handles poorly.
func Handler(svc *Service) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/verdicts", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		if id := r.URL.Query().Get("id"); id != "" {
			v, ok, err := svc.Verdict(id)
			switch {
			case err != nil:
				http.Error(w, err.Error(), http.StatusNotFound)
			case !ok:
				w.WriteHeader(http.StatusAccepted)
				fmt.Fprintln(w, `{"pending":true}`)
			default:
				writeJSON(w, v)
			}
			return
		}
		var after int64
		if s := r.URL.Query().Get("after"); s != "" {
			n, err := strconv.ParseInt(s, 10, 64)
			if err != nil || n < 0 {
				http.Error(w, "after must be a non-negative verdict seq", http.StatusBadRequest)
				return
			}
			after = n
		}
		var limit int
		if s := r.URL.Query().Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n <= 0 {
				http.Error(w, "limit must be a positive integer", http.StatusBadRequest)
				return
			}
			limit = n
		}
		page, more := svc.VerdictsPage(after, limit)
		if more {
			w.Header().Set("X-More", "true")
		}
		writeJSON(w, page)
	})

	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var js JobSpec
		if err := json.NewDecoder(r.Body).Decode(&js); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := svc.Submit(js); err != nil {
			status := http.StatusBadRequest
			switch {
			case err == ErrQuota || err == ErrBusy || err == ErrDraining:
				status = http.StatusServiceUnavailable
			case err == ErrDuplicate:
				status = http.StatusConflict
			case errors.Is(err, ErrJournal):
				status = http.StatusInternalServerError
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, "{\"accepted\":%q}\n", js.ID)
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := svc.Health()
		// "draining" is 503 so load balancers stop routing to a daemon
		// on its way out; "degraded" (open breakers, lagging journal) is
		// still 200 — serving, but worth a look.
		if h.Status == "draining" {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(h)
			return
		}
		writeJSON(w, h)
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := svc.Counters()
		names := make([]string, 0, len(snap.Counters))
		for n := range snap.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(w, "%s %d\n", n, snap.Counters[n])
		}
	})

	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
