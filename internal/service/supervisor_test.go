package service

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"parastack/internal/detect"
	"parastack/internal/diagnose/waitfor"
	"parastack/internal/experiment"
	"parastack/internal/results"
)

// The backoff schedule is a pure function of (policy, key, attempt):
// these exact durations are pinned so any change to the hash mix or
// the growth curve is a visible, deliberate diff.
func TestRetryPolicyDelayDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second, JitterFrac: 0.2, Seed: 42}
	cases := []struct {
		key     string
		attempt int
		want    time.Duration
	}{
		{"job-a", 1, 50129688},
		{"job-a", 2, 100259370},
		{"job-a", 3, 200518745},
		{"job-a", 4, 401037462},
		{"job-a", 5, 802074943},
		{"job-a", 6, 1002593607}, // capped at MaxDelay, then jittered
		{"job-b", 1, 49295437},
		{"job-b", 2, 98590881},
		{"job-b", 3, 197181757},
		{"job-b", 4, 394363468},
		{"job-b", 5, 788726916},
		{"job-b", 6, 985908717},
	}
	for _, c := range cases {
		if got := p.Delay(c.key, c.attempt); got != c.want {
			t.Errorf("Delay(%q, %d) = %d, want %d", c.key, c.attempt, got, c.want)
		}
		if again := p.Delay(c.key, c.attempt); again != c.want {
			t.Errorf("Delay(%q, %d) second call = %d, not deterministic", c.key, c.attempt, again)
		}
	}
	// Jitter disabled: pure exponential doubling, capped.
	q := RetryPolicy{JitterFrac: -1, MaxDelay: 300 * time.Millisecond}
	for i, want := range []time.Duration{50, 100, 200, 300, 300} {
		if got := q.Delay("x", i+1); got != want*time.Millisecond {
			t.Errorf("no-jitter Delay attempt %d = %v, want %v", i+1, got, want*time.Millisecond)
		}
	}
	if got := q.Delay("x", -3); got != 50*time.Millisecond {
		t.Errorf("Delay with attempt<1 = %v, want BaseDelay", got)
	}
}

// The cause → retry-class mapping is policy, pinned by table: the
// structural causes fail fast, everything else is worth another try.
func TestRetryClassForCause(t *testing.T) {
	cases := []struct {
		cause string
		want  detect.RetryClass
	}{
		{string(waitfor.CauseDeadlock), detect.RetryNever},
		{string(waitfor.CauseCollectiveMismatch), detect.RetryNever},
		{string(waitfor.CauseStragglerChain), detect.RetryTransient},
		{string(waitfor.CauseLostMessage), detect.RetryTransient},
		{string(waitfor.CauseUnknown), detect.RetryTransient},
		{"", detect.RetryTransient},
	}
	for _, c := range cases {
		if got := detect.RetryClassForCause(c.cause); got != c.want {
			t.Errorf("RetryClassForCause(%q) = %v, want %v", c.cause, got, c.want)
		}
	}
	for class, want := range map[detect.RetryClass]string{
		detect.RetryNone: "none", detect.RetryNever: "never", detect.RetryTransient: "transient",
	} {
		if class.String() != want {
			t.Errorf("RetryClass(%d).String() = %q, want %q", class, class.String(), want)
		}
	}
}

// retryPolicyFast is a requeue policy quick enough for tests.
func retryPolicyFast(max int) RetryPolicy {
	return RetryPolicy{MaxAttempts: max, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, JitterFrac: -1}
}

// A panicking run is transient infrastructure: the supervisor requeues
// it until it succeeds or attempts run out.
func TestTransientFailureRetriedUntilSuccess(t *testing.T) {
	var calls atomic.Int64
	flaky := func(rc experiment.RunConfig) experiment.RunResult {
		if calls.Add(1) < 3 {
			panic("transient worker failure")
		}
		return fakeRun(rc)
	}
	s := New(Config{Run: flaky, Retries: -1, Retry: retryPolicyFast(3), BreakerThreshold: -1, BatchDelay: time.Millisecond})
	defer s.Close()
	if err := s.Submit(simJob("flaky", 1)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	v, err := s.Wait(context.Background(), "flaky")
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if v.Status != VerdictOK || !v.Completed {
		t.Fatalf("verdict after retries = %+v, want completed ok", v)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("run attempts = %d, want 3", got)
	}
	snap := s.Counters()
	if got := snap.Counter(CtrJobRetries); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	if got := snap.Counter(CtrJobsFailed); got != 0 {
		t.Errorf("jobs_failed = %d, want 0", got)
	}
}

// Attempts are bounded: a persistently failing run ends as a failed
// verdict once MaxAttempts is consumed.
func TestRetriesExhaustedYieldFailedVerdict(t *testing.T) {
	var calls atomic.Int64
	boom := func(rc experiment.RunConfig) experiment.RunResult {
		calls.Add(1)
		panic("always broken")
	}
	s := New(Config{Run: boom, Retries: -1, Retry: retryPolicyFast(3), BreakerThreshold: -1, BatchDelay: time.Millisecond})
	defer s.Close()
	if err := s.Submit(simJob("doomed", 1)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	v, err := s.Wait(context.Background(), "doomed")
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if v.Status != VerdictFailed || v.Error == "" {
		t.Fatalf("verdict = %+v, want failed", v)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("run attempts = %d, want MaxAttempts=3", got)
	}
}

// hangResult fabricates a hang verdict with the given wait-for cause.
func hangResult(cause string) experiment.RunResult {
	return experiment.RunResult{
		Report: &detect.Report{Suspicions: 7},
		Cause:  cause,
	}
}

// Structural hangs (deadlock, collective mismatch) are never requeued:
// re-running a program that cannot proceed wastes a slot to learn
// nothing.
func TestStructuralHangFailsFast(t *testing.T) {
	var calls atomic.Int64
	deadlock := func(rc experiment.RunConfig) experiment.RunResult {
		calls.Add(1)
		return hangResult(string(waitfor.CauseDeadlock))
	}
	s := New(Config{Run: deadlock, Retry: retryPolicyFast(5), BreakerThreshold: -1, BatchDelay: time.Millisecond})
	defer s.Close()
	if err := s.Submit(simJob("dl", 1)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	v, err := s.Wait(context.Background(), "dl")
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if v.Report == nil || v.Cause != string(waitfor.CauseDeadlock) {
		t.Fatalf("verdict = %+v, want the deadlock report", v)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("run attempts = %d, want 1 (deadlock is fail-fast)", got)
	}
	if got := s.Counters().Counter(CtrJobRequeues); got != 0 {
		t.Errorf("requeues = %d, want 0", got)
	}
}

// A straggler-chain hang is plausibly noise-induced: the supervisor
// requeues it, and a clean second run supersedes the hang verdict.
func TestTransientHangRequeued(t *testing.T) {
	var calls atomic.Int64
	stragglerOnce := func(rc experiment.RunConfig) experiment.RunResult {
		if calls.Add(1) == 1 {
			return hangResult(string(waitfor.CauseStragglerChain))
		}
		return fakeRun(rc)
	}
	s := New(Config{Run: stragglerOnce, Retry: retryPolicyFast(3), BreakerThreshold: -1, BatchDelay: time.Millisecond})
	defer s.Close()
	if err := s.Submit(simJob("strag", 1)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	v, err := s.Wait(context.Background(), "strag")
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if !v.Completed || v.Report != nil {
		t.Fatalf("verdict = %+v, want the clean re-run's", v)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("run attempts = %d, want 2", got)
	}
	if got := s.Counters().Counter(CtrJobRequeues); got != 1 {
		t.Errorf("requeues = %d, want 1", got)
	}
}

// If attempts run out while the last outcome is still a transient hang,
// that hang verdict — not a synthetic failure — is the final answer.
func TestTransientHangKeptWhenAttemptsExhausted(t *testing.T) {
	straggler := func(rc experiment.RunConfig) experiment.RunResult {
		return hangResult(string(waitfor.CauseStragglerChain))
	}
	s := New(Config{Run: straggler, Retry: retryPolicyFast(2), BreakerThreshold: -1, BatchDelay: time.Millisecond})
	defer s.Close()
	if err := s.Submit(simJob("strag2", 1)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	v, err := s.Wait(context.Background(), "strag2")
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if v.Status != VerdictOK || v.Report == nil || v.Cause != string(waitfor.CauseStragglerChain) {
		t.Fatalf("verdict = %+v, want the persistent straggler hang report", v)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := &breaker{threshold: 3, cooldown: 50 * time.Millisecond}
	t0 := time.Unix(100, 0)
	if !b.allow(t0) {
		t.Fatal("fresh breaker refused dispatch")
	}
	// Two failures: still closed.
	for i := 0; i < 2; i++ {
		if b.record(false, t0) {
			t.Fatalf("breaker tripped after %d failures, threshold 3", i+1)
		}
	}
	// A success resets the consecutive count.
	b.record(true, t0)
	for i := 0; i < 2; i++ {
		if b.record(false, t0) {
			t.Fatal("breaker tripped early after reset")
		}
	}
	if !b.record(false, t0) {
		t.Fatal("third consecutive failure did not trip the breaker")
	}
	if b.allow(t0) || !b.isOpen(t0) {
		t.Fatal("open breaker allowed dispatch inside cooldown")
	}
	// Cooldown elapsed: half-open admits exactly one probe.
	t1 := t0.Add(60 * time.Millisecond)
	if !b.allow(t1) {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.allow(t1) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Probe fails: straight back to open, counted as a trip.
	if !b.record(false, t1) {
		t.Fatal("failed probe did not re-trip the breaker")
	}
	if b.allow(t1.Add(10 * time.Millisecond)) {
		t.Fatal("re-opened breaker allowed dispatch inside the new cooldown")
	}
	// Next probe succeeds: closed again.
	t2 := t1.Add(60 * time.Millisecond)
	if !b.allow(t2) {
		t.Fatal("second half-open probe refused")
	}
	b.record(true, t2)
	if !b.allow(t2) || b.isOpen(t2) {
		t.Fatal("breaker not closed after successful probe")
	}
	// Disabled breaker is always a pass-through.
	var off *breaker
	if !off.allow(t0) || off.record(false, t0) || off.isOpen(t0) {
		t.Fatal("nil breaker interfered")
	}
}

// End-to-end breaker: consecutive panics trip the single shard's
// breaker, subsequent jobs bounce (requeue, then fail fast with the
// circuit-open error), and the trip is counted.
func TestBreakerTripsAndBouncesJobs(t *testing.T) {
	boom := func(rc experiment.RunConfig) experiment.RunResult { panic("poisoned shard") }
	s := New(Config{
		Run: boom, Retries: -1, Workers: 1, Shards: 1,
		Retry:            RetryPolicy{MaxAttempts: 1},
		BreakerThreshold: 2, BreakerCooldown: time.Hour,
		BatchDelay: time.Millisecond,
	})
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Two failures trip the breaker (MaxAttempts 1: no requeue noise).
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("trip%d", i)
		if err := s.Submit(simJob(id, int64(i))); err != nil {
			t.Fatalf("submit %s: %v", id, err)
		}
		if _, err := s.Wait(ctx, id); err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
	}
	if got := s.Counters().Counter(CtrBreakerTrips); got != 1 {
		t.Fatalf("breaker_trips = %d, want 1", got)
	}
	if h := s.Health(); h.Status != "degraded" || len(h.OpenBreakers) != 1 {
		t.Fatalf("health with open breaker = %+v, want degraded with shard 0 open", h)
	}
	// The next job never reaches the (would-be panicking) run: it
	// bounces off the open circuit and fails fast.
	if err := s.Submit(simJob("bounced", 9)); err != nil {
		t.Fatalf("submit bounced: %v", err)
	}
	v, err := s.Wait(ctx, "bounced")
	if err != nil {
		t.Fatalf("wait bounced: %v", err)
	}
	if v.Status != VerdictFailed || !strings.Contains(v.Error, "circuit open") {
		t.Fatalf("bounced verdict = %+v, want circuit-open failure", v)
	}
}

// The per-job deadline fails a wedged job in place.
func TestJobDeadline(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	wedged := func(rc experiment.RunConfig) experiment.RunResult { <-gate; return fakeRun(rc) }
	s := New(Config{Run: wedged, Workers: 1, JobDeadline: 30 * time.Millisecond, BatchDelay: time.Millisecond})
	if err := s.Submit(simJob("wedge", 1)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := s.Wait(ctx, "wedge")
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if v.Status != VerdictFailed || !strings.Contains(v.Error, "deadline") {
		t.Fatalf("verdict = %+v, want deadline failure", v)
	}
	if got := s.Counters().Counter(CtrDeadlineExpired); got != 1 {
		t.Errorf("deadline_expired = %d, want 1", got)
	}
}

// A drain that hits its hard deadline journals the stragglers as open
// (their admits are already there, no verdict closes them) and returns
// a DrainTimeoutError naming them — the recoverable-nonzero-exit path.
func TestDrainDeadlineJournalsStragglers(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	wedged := func(rc experiment.RunConfig) experiment.RunResult { <-gate; return fakeRun(rc) }
	journalPath := filepath.Join(t.TempDir(), "journal.jsonl")
	jnl, err := results.OpenJSONL(journalPath, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl.Close()
	s := New(Config{Run: wedged, Workers: 1, Journal: jnl, BatchDelay: time.Millisecond})
	if err := s.Submit(simJob("stuck", 1)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err = s.Drain(ctx)
	var dte *DrainTimeoutError
	if !errors.As(err, &dte) {
		t.Fatalf("drain past deadline = %v, want DrainTimeoutError", err)
	}
	if len(dte.Stragglers) != 1 || dte.Stragglers[0] != "stuck" {
		t.Fatalf("stragglers = %v, want [stuck]", dte.Stragglers)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("DrainTimeoutError does not unwrap to the context error")
	}
	// The journal replays the straggler as open: a restart re-runs it.
	recs, err := results.ReadJSONL(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	rep := ReplayJournal(recs)
	if len(rep.Open) != 1 || rep.Open[0].ID != "stuck" || len(rep.Decided) != 0 {
		t.Fatalf("journal replay = %s, want the straggler open", rep)
	}
	if h := s.Health(); h.Status != "draining" {
		t.Errorf("health during drain = %q, want draining", h.Status)
	}
}
