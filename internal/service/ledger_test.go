package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"parastack/internal/ledger"
)

// Every decided verdict must land in the configured results sink,
// keyed "verdict|<job id>", and the resulting ledger must audit clean.
func TestVerdictSinkFeedsLedger(t *testing.T) {
	store := ledger.NewMemStore()
	defer store.Close()
	led, err := ledger.Open(store, ledger.Options{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}

	svc := New(Config{Run: fakeRun, Sink: led, BatchDelay: time.Millisecond})
	const n = 5
	for i := 0; i < n; i++ {
		if err := svc.Submit(simJob(jobID(i), int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < n; i++ {
		if _, err := svc.Wait(ctx, jobID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	// The daemon's shutdown order: sink closes after Drain, committing
	// the final batch.
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}

	snap := svc.Counters()
	if got := snap.Counters[CtrSinkAppends]; got != n {
		t.Fatalf("%s = %d, want %d", CtrSinkAppends, got, n)
	}
	if got := snap.Counters[CtrSinkErrors]; got != 0 {
		t.Fatalf("%s = %d, want 0", CtrSinkErrors, got)
	}

	recs, err := led.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("ledger holds %d verdicts, want %d", len(recs), n)
	}
	seen := map[string]bool{}
	for _, r := range recs {
		var v Verdict
		if err := json.Unmarshal(r.Payload, &v); err != nil {
			t.Fatalf("verdict payload for %q: %v", r.Key, err)
		}
		if r.Key != "verdict|"+v.JobID {
			t.Fatalf("record key %q does not match verdict job %q", r.Key, v.JobID)
		}
		if v.Seq == 0 {
			t.Fatalf("verdict %q has no pagination seq", v.JobID)
		}
		seen[v.JobID] = true
	}
	if len(seen) != n {
		t.Fatalf("distinct verdicts in ledger = %d, want %d", len(seen), n)
	}

	rep, err := ledger.Verify(store, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("verdict ledger audit: %v", rep.Problems)
	}
}

func jobID(i int) string { return "job-" + string(rune('a'+i)) }

// A failing sink must never block or fail the verdict itself — only
// the error counter moves.
func TestVerdictSinkFailureDoesNotBlockVerdict(t *testing.T) {
	store := ledger.NewMemStore()
	led, err := ledger.Open(store, ledger.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := led.Close(); err != nil { // closed sink: every Append fails
		t.Fatal(err)
	}

	svc := New(Config{Run: fakeRun, Sink: led, BatchDelay: time.Millisecond})
	defer svc.Close()
	if err := svc.Submit(simJob("j1", 1)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	v, err := svc.Wait(ctx, "j1")
	if err != nil {
		t.Fatalf("verdict blocked by failing sink: %v", err)
	}
	if v.Status != VerdictOK {
		t.Fatalf("verdict status = %q", v.Status)
	}
	if got := svc.Counters().Counters[CtrSinkErrors]; got != 1 {
		t.Fatalf("%s = %d, want 1", CtrSinkErrors, got)
	}
}

// VerdictsPage windows the decision order with a dense seq cursor.
func TestVerdictsPage(t *testing.T) {
	svc := New(Config{Run: fakeRun, BatchDelay: time.Millisecond})
	defer svc.Close()
	const n = 7
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < n; i++ {
		if err := svc.Submit(simJob(jobID(i), int64(i+1))); err != nil {
			t.Fatal(err)
		}
		// Await each verdict before the next submit so decision order —
		// and therefore seq — is deterministic.
		if _, err := svc.Wait(ctx, jobID(i)); err != nil {
			t.Fatal(err)
		}
	}

	var got []Verdict
	var after int64
	pages := 0
	for {
		page, more := svc.VerdictsPage(after, 3)
		got = append(got, page...)
		pages++
		if !more {
			break
		}
		after = page[len(page)-1].Seq
	}
	if len(got) != n || pages != 3 {
		t.Fatalf("paged %d verdicts in %d pages, want %d in 3", len(got), pages, n)
	}
	for i, v := range got {
		if v.Seq != int64(i+1) {
			t.Fatalf("verdict %d seq = %d, want dense %d", i, v.Seq, i+1)
		}
	}

	// Defaults and caps.
	page, more := svc.VerdictsPage(0, 0)
	if len(page) != n || more {
		t.Fatalf("default limit page = %d verdicts, more=%v", len(page), more)
	}
	if page, _ := svc.VerdictsPage(int64(n), 3); len(page) != 0 {
		t.Fatalf("page past the end = %d verdicts", len(page))
	}
	if page, _ := svc.VerdictsPage(int64(n)+100, 3); len(page) != 0 {
		t.Fatalf("page far past the end = %d verdicts", len(page))
	}
}

// GET /verdicts honors after/limit, flags truncation with X-More, and
// rejects malformed cursors.
func TestHTTPVerdictsPagination(t *testing.T) {
	svc := New(Config{Run: fakeRun, BatchDelay: time.Millisecond})
	defer svc.Close()
	h := Handler(svc)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const n = 5
	for i := 0; i < n; i++ {
		if err := svc.Submit(simJob(jobID(i), int64(i+1))); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Wait(ctx, jobID(i)); err != nil {
			t.Fatal(err)
		}
	}
	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		return rec
	}

	rec := get("/verdicts?limit=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /verdicts?limit=2 = %d", rec.Code)
	}
	if rec.Header().Get("X-More") != "true" {
		t.Fatal("truncated page missing X-More header")
	}
	var page []Verdict
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil || len(page) != 2 {
		t.Fatalf("page body = %s (err %v)", rec.Body, err)
	}

	rec = get("/verdicts?after=2&limit=100")
	if rec.Header().Get("X-More") != "" {
		t.Fatal("final page carries X-More")
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil || len(page) != n-2 {
		t.Fatalf("after=2 body = %s (err %v)", rec.Body, err)
	}
	if page[0].Seq != 3 {
		t.Fatalf("after=2 first seq = %d, want 3", page[0].Seq)
	}

	for _, bad := range []string{"/verdicts?after=-1", "/verdicts?after=x", "/verdicts?limit=0", "/verdicts?limit=-3", "/verdicts?limit=x"} {
		if rec := get(bad); rec.Code != http.StatusBadRequest {
			t.Fatalf("GET %s = %d, want 400", bad, rec.Code)
		}
	}
}
