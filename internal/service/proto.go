package service

// Wire protocol of the framed-JSONL socket: each frame is one JSON
// object on one line, requests flowing client→daemon and exactly one
// response frame per request flowing back, in order. The protocol is
// deliberately dumb — no multiplexing, no binary framing — because the
// batching, sharding, and backpressure all live behind the Service
// admission calls, and a line-oriented protocol can be driven with nc
// for debugging.
//
// Ops:
//
//	{"op":"submit","job":{...JobSpec...}}
//	{"op":"feed","id":"j1","samples":[{"t_us":400000,"scrout":0.4},...]}
//	{"op":"verdict","id":"j1"}            → verdict or pending
//	{"op":"wait","id":"j1","timeout_ms":30000}
//	{"op":"verdicts"}                     → every decided verdict
//	{"op":"stats"}                        → service counters
//	{"op":"ping"}
//
// Responses carry ok plus op-specific payloads; an error response is
// {"ok":false,"error":"..."} with the request's op echoed.
const (
	OpSubmit   = "submit"
	OpFeed     = "feed"
	OpVerdict  = "verdict"
	OpWait     = "wait"
	OpVerdicts = "verdicts"
	OpStats    = "stats"
	OpPing     = "ping"
)

// Request is one client frame.
type Request struct {
	Op string `json:"op"`
	// Job is the submission payload (OpSubmit).
	Job *JobSpec `json:"job,omitempty"`
	// ID addresses a job (OpFeed, OpVerdict, OpWait).
	ID string `json:"id,omitempty"`
	// Samples is the OpFeed payload.
	Samples []StreamSample `json:"samples,omitempty"`
	// TimeoutMS bounds an OpWait (0 = the server's default).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// Response is one daemon frame.
type Response struct {
	OK    bool   `json:"ok"`
	Op    string `json:"op"`
	ID    string `json:"id,omitempty"`
	Error string `json:"error,omitempty"`
	// Pending marks an OpVerdict reply for a job still in flight.
	Pending bool `json:"pending,omitempty"`
	// Verdict answers OpVerdict/OpWait; Verdicts answers OpVerdicts.
	Verdict  *Verdict  `json:"verdict,omitempty"`
	Verdicts []Verdict `json:"verdicts,omitempty"`
	// Counters answers OpStats.
	Counters map[string]int64 `json:"counters,omitempty"`
}
