package service

import (
	"sync"
	"time"
)

// batcher coalesces ingest envelopes into batches flushed by size or
// deadline, whichever comes first — the channel-based batcher pattern
// (an accumulating goroutine selecting between the input channel and a
// deadline timer; the timer is armed when a batch opens and drained
// when a size flush wins). Batching decouples the admission path from
// the routing path: Submit/Feed return as soon as the envelope is
// accepted into the bounded input channel, and the per-shard routing
// work is paid once per batch rather than once per envelope.
//
// The input channel's bound is the service's first backpressure stage:
// when routing stalls (full shard queues, busy workers), the channel
// fills and admission starts rejecting rather than buffering without
// limit.
type batcher struct {
	in    chan envelope
	size  int
	delay time.Duration
	flush func([]envelope)

	wg sync.WaitGroup
}

// envelope is one admitted ingest item: a job admission (samples nil)
// or a stream-sample payload for an already-admitted job.
type envelope struct {
	j       *job
	samples []StreamSample
	enq     time.Time
}

// newBatcher starts the accumulator goroutine. flush is called from
// that single goroutine, with batches in admission order.
func newBatcher(depth, size int, delay time.Duration, flush func([]envelope)) *batcher {
	b := &batcher{
		in:    make(chan envelope, depth),
		size:  size,
		delay: delay,
		flush: flush,
	}
	b.wg.Add(1)
	go b.loop()
	return b
}

// offer attempts to admit one envelope without blocking; false means
// the ingest stage is saturated (backpressure).
func (b *batcher) offer(e envelope) bool {
	select {
	case b.in <- e:
		return true
	default:
		return false
	}
}

// put admits one envelope, blocking while the ingest stage is
// saturated. Recovery uses it to re-admit a journal's open jobs — a
// replay larger than the ingest bound must wait its turn, not fail.
// The caller must guarantee the batcher is not closed.
func (b *batcher) put(e envelope) {
	b.in <- e
}

// close stops intake and flushes whatever is pending. The caller must
// guarantee no offer calls race or follow close.
func (b *batcher) close() {
	close(b.in)
	b.wg.Wait()
}

func (b *batcher) loop() {
	defer b.wg.Done()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	var batch []envelope
	emit := func() {
		if len(batch) == 0 {
			return
		}
		b.flush(batch)
		batch = nil
	}
	for {
		select {
		case e, ok := <-b.in:
			if !ok {
				emit()
				return
			}
			if len(batch) == 0 {
				// A batch just opened: arm its flush deadline.
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(b.delay)
			}
			batch = append(batch, e)
			if len(batch) >= b.size {
				emit()
			}
		case <-timer.C:
			emit()
		}
	}
}
