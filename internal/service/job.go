package service

import (
	"fmt"
	"time"

	"parastack/internal/detect"
	"parastack/internal/diagnose/waitfor"
	"parastack/internal/experiment"
	"parastack/internal/sweep"
	"parastack/internal/workload"
)

// JobSpec is the wire-level description of one logical job. Two kinds
// exist:
//
//   - simulation jobs (Stream false): the daemon executes the
//     (workload, platform, fault, seed) run itself, exactly as
//     experiment.Run would, and the verdict is bit-identical to an
//     in-process run of the same configuration;
//   - stream jobs (Stream true): an external feeder pushes Scrout
//     samples (see StreamSample) and the daemon runs the paper's
//     significance test over them (see StreamMonitor).
//
// String-keyed fields (Platform, Fault, Chaos) are validated against
// the live registries at admission time, so a bad job is rejected on
// submit, never mid-run.
type JobSpec struct {
	// ID is the caller-chosen job identity; it must be nonempty and
	// unique among resident jobs.
	ID string `json:"id"`

	// Stream marks an external-feeder job; every simulation field below
	// except Alpha/IntervalMS is then ignored.
	Stream bool `json:"stream,omitempty"`

	// Bench, Class, Procs select the calibrated workload (as in
	// cmd/parastack: LU/D/256, CG/D/64, ...).
	Bench string `json:"bench,omitempty"`
	Class string `json:"class,omitempty"`
	Procs int    `json:"procs,omitempty"`
	// Platform is a noise-profile name ("tardis", "tianhe2",
	// "stampede").
	Platform string `json:"platform,omitempty"`
	// Fault is a fault-kind name understood by fault.Parse ("" = none).
	Fault string `json:"fault,omitempty"`
	// Chaos is a detector-chaos profile name ("" = none).
	Chaos string `json:"chaos,omitempty"`
	// Seed drives all randomness in the run.
	Seed int64 `json:"seed"`

	// Alpha overrides the hang-test significance level (0 = 0.001).
	Alpha float64 `json:"alpha,omitempty"`
	// IntervalMS overrides the initial sampling interval I0 (0 = 400).
	IntervalMS int `json:"interval_ms,omitempty"`
	// MinFaultSec and WallLimitSec override the run bounds as in a
	// sweep spec (0 = harness defaults).
	MinFaultSec  float64 `json:"min_fault_sec,omitempty"`
	WallLimitSec float64 `json:"wall_limit_sec,omitempty"`
}

// cell materializes a simulation job into its sweep cell and run
// configuration, reusing the sweep's validation and materialization so
// a daemon-served job is configured exactly like the same cell of a
// grid sweep (and therefore like a direct experiment.Run).
func (js JobSpec) cell() (string, experiment.RunConfig, error) {
	if js.Stream {
		return "", experiment.RunConfig{}, fmt.Errorf("service: stream job has no run configuration")
	}
	fault := js.Fault
	if fault == "" {
		fault = "none"
	}
	chaos := js.Chaos
	if chaos == "" {
		chaos = "none"
	}
	spec := sweep.Spec{
		Workloads: []workload.Spec{{Name: js.Bench, Class: js.Class, Procs: js.Procs}},
		Platforms: []string{js.Platform},
		Faults:    []string{fault},
		Chaos:     []string{chaos},
		Seeds:     1,
		Seed0:     js.Seed,
		Detector: sweep.DetectorSpec{
			Monitor:    true,
			Alpha:      js.Alpha,
			IntervalMS: js.IntervalMS,
		},
		MinFaultSec:  js.MinFaultSec,
		WallLimitSec: js.WallLimitSec,
	}
	cells, err := spec.Cells()
	if err != nil {
		return "", experiment.RunConfig{}, err
	}
	rc, err := spec.RunConfig(cells[0])
	if err != nil {
		return "", experiment.RunConfig{}, err
	}
	return cells[0].Key(), rc, nil
}

// Verdict statuses.
const (
	// VerdictOK marks a job that ran to a decision (hang report or
	// clean completion).
	VerdictOK = "ok"
	// VerdictFailed marks a simulation job whose run panicked on every
	// attempt; Error holds the last panic message.
	VerdictFailed = "failed"
)

// Verdict is the daemon's answer for one job: the detector's report
// (nil when no hang was reported), the root-cause diagnosis, and the
// derived quality fields — the same information experiment.RunResult
// carries, minus the bulky observability payloads.
type Verdict struct {
	JobID string `json:"job_id"`
	// Seq is the verdict's position in decision order (1, 2, 3, …),
	// assigned when the verdict lands. It is the pagination cursor of
	// GET /verdicts?after=<seq>&limit=<n>: pass the last verdict's Seq
	// as after to fetch the next page.
	Seq int64 `json:"seq,omitempty"`
	// Key is the sweep cell key of a simulation job ("" for stream
	// jobs) — the same identity a grid sweep would log it under.
	Key    string `json:"key,omitempty"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`

	// Completed reports that the simulated application finished (no
	// hang); stream jobs report Completed when drained without a
	// verdict.
	Completed bool `json:"completed"`
	// Report is the detector's verdict, nil when no hang was reported.
	Report *detect.Report `json:"report,omitempty"`
	// Cause and Diagnosis carry the wait-for root-cause analysis of a
	// hung simulation ("" / nil when no diagnosis ran).
	Cause     string             `json:"cause,omitempty"`
	Diagnosis *waitfor.Diagnosis `json:"diagnosis,omitempty"`

	// Detected / FalsePositive / Delay are the harness's judgement of
	// the report against the injected fault (simulation jobs only).
	Detected      bool          `json:"detected,omitempty"`
	FalsePositive bool          `json:"false_positive,omitempty"`
	Delay         time.Duration `json:"delay_ns,omitempty"`

	// Events is the simulated event count (simulation jobs only);
	// Samples is the number of Scrout samples ingested (stream jobs).
	Events  uint64 `json:"events,omitempty"`
	Samples int    `json:"samples,omitempty"`

	// IngestUS is how long the job sat in the ingest pipeline —
	// admission to worker dispatch (simulation) or admission to monitor
	// attach (stream) — in microseconds. The service benchmark's p99
	// ingest latency is the p99 of this field.
	IngestUS int64 `json:"ingest_us,omitempty"`
}

// verdictFromResult projects a run's outcome into the wire verdict.
func verdictFromResult(jobID, key string, res *experiment.RunResult) Verdict {
	return Verdict{
		JobID:         jobID,
		Key:           key,
		Status:        VerdictOK,
		Completed:     res.Completed,
		Report:        res.Report,
		Cause:         res.Cause,
		Diagnosis:     res.Diagnosis,
		Detected:      res.Detected,
		FalsePositive: res.FalsePositive,
		Delay:         res.Delay,
		Events:        res.Events,
	}
}
