package workload

import (
	"math"

	"parastack/internal/fault"
	"parastack/internal/mpi"
)

// hpcgBody is the HPCG skeleton: a preconditioned CG iteration with
// multiple distinct phases — sparse matrix-vector product with halo
// exchange, a symmetric Gauss-Seidel multigrid preconditioner walking
// Levels grids, and two dot-product allreduces. All phases are
// iterative (the property the paper relies on when noting HPCG still
// fits ParaStack's single model despite being multi-phase).
func (p Params) hpcgBody(inj *fault.Injector) func(*mpi.Rank) {
	size := p.Procs
	levels := p.Levels
	if levels <= 0 {
		levels = 3
	}
	// Preconditioner level weights: 2^-l normalized to the 0.45 budget.
	sum := 0.0
	for l := 0; l < levels; l++ {
		sum += math.Pow(0.5, float64(l))
	}
	return func(r *mpi.Rank) {
		next := (r.ID() + 1) % size
		prev := (r.ID() + size - 1) % size
		for it := 0; it < p.Iters; it++ {
			tag := it * (4*levels + 8)
			r.Call("spmv", func() {
				r.Compute(p.chunk(r, 0.35))
				inj.Check(r, it)
			})
			exchange(r, next, prev, tag, p.HaloBytes)
			for l := 0; l < levels; l++ {
				r.Call("mg_sym_gs", func() {
					r.Compute(p.chunk(r, 0.45*math.Pow(0.5, float64(l))/sum))
				})
				exchange(r, next, prev, tag+4+4*l, p.HaloBytes>>(2*l))
			}
			r.Call("dot_rtz", func() { r.Compute(p.chunk(r, 0.1)) })
			r.Allreduce(8)
			r.Call("waxpby", func() { r.Compute(p.chunk(r, 0.1)) })
			r.Allreduce(8)
		}
	}
}
