// Package workload provides synthetic skeletons of the paper's eight
// evaluation programs — NPB BT, CG, FT, LU, MG, SP, plus HPL and HPCG —
// running on the simulated MPI runtime.
//
// Each skeleton reproduces the communication structure and solver-loop
// cycle shape of the original (halo exchanges, wavefront pipelines,
// large transposes, busy-wait panel broadcasts, multigrid level walks),
// with per-iteration computation calibrated so that clean-run durations
// match the times the paper reports (Table 6) on the corresponding
// simulated platform. Hang detection depends on exactly these shapes —
// how Sout cycles, how long all-ranks-in-MPI stretches last, which
// communication styles appear — not on the numerical content, which is
// therefore omitted.
package workload

import (
	"fmt"
	"time"

	"parastack/internal/fault"
	"parastack/internal/mpi"
)

// Spec identifies a benchmark configuration.
type Spec struct {
	// Name is one of BT, CG, FT, LU, MG, SP, HPL, HPCG.
	Name string
	// Class is the input size: NPB class ("D", "E"), HPL matrix width
	// ("8e4", "2e5", "2.5e5", "3e5", "3.5e5"), or HPCG local domain
	// ("64").
	Class string
	// Procs is the number of MPI ranks.
	Procs int
}

func (s Spec) String() string {
	return fmt.Sprintf("%s(%s)@%d", s.Name, s.Class, s.Procs)
}

// Params is a fully calibrated workload: Spec plus the iteration count
// and per-iteration budgets the skeleton body consumes. Compute values
// are normalized to the Tardis platform (platform profiles divide them
// by their Speed).
type Params struct {
	Spec

	// Iters is the solver iteration (or HPL panel) count.
	Iters int
	// Compute is the mean per-rank computation per iteration.
	Compute time.Duration
	// Skew is the relative half-width of per-rank per-iteration compute
	// imbalance (application-inherent, on top of platform noise).
	Skew float64
	// HaloBytes is the point-to-point halo message size.
	HaloBytes int
	// CollBytes is the payload of the dominant collective (the FT
	// transpose, residual allgathers, etc.).
	CollBytes int
	// ReduceEvery makes the skeleton perform a global residual/norm
	// allreduce every so many iterations (0 = never). The per-iteration
	// sync point is what concentrates probability mass at low Scrout
	// values and so shapes detection delay.
	ReduceEvery int
	// Levels is the multigrid depth (MG, HPCG).
	Levels int
}

// EstimatedDuration is a rough clean runtime on Tardis, used to place
// fault iterations, slowdown windows, and batch time slots. HPL's
// per-panel cost decays as (1-k/K)², so its total is K·c0/3.
func (p Params) EstimatedDuration() time.Duration {
	total := float64(p.Iters) * float64(p.Compute)
	if p.Name == "HPL" {
		total /= 3
	}
	return time.Duration(total * 1.15)
}

// Names lists the supported benchmark names.
func Names() []string {
	return []string{"BT", "CG", "FT", "LU", "MG", "SP", "HPL", "HPCG"}
}

// Lookup returns calibrated parameters for a (name, class, procs)
// combination. Calibration anchors are the paper's Table 2 input sizes
// and Table 4/6 clean-run durations; combinations the paper did not run
// are extrapolated (compute scales with per-rank data volume).
func Lookup(name, class string, procs int) (Params, error) {
	s := Spec{Name: name, Class: class, Procs: procs}
	key := fmt.Sprintf("%s/%s", name, class)
	// Class E FT at small scale (Table 1/9's configuration) has its own
	// calibration: 8× the class-D per-rank volume.
	if name == "FT" && class == "E" && procs <= 256 {
		key = "FT/E256"
	}
	base, ok := calibration[key]
	if !ok {
		return Params{}, fmt.Errorf("workload: no calibration for %s (have %v)", key, calibrated())
	}
	p := base
	p.Spec = s
	// Per-rank data volume shrinks as the same class spreads over more
	// ranks; the calibration table is anchored at anchorProcs. HPCG is
	// weakly scaled (fixed local domain), so its budgets are
	// scale-independent.
	anchor := anchorProcs[key]
	if anchor == 0 {
		anchor = 256
	}
	if procs != anchor && name != "HPCG" {
		f := float64(anchor) / float64(procs)
		p.Compute = time.Duration(float64(p.Compute) * f)
		p.HaloBytes = int(float64(p.HaloBytes) * f)
		p.CollBytes = int(float64(p.CollBytes) * f)
		if p.HaloBytes < 1024 {
			p.HaloBytes = 1024
		}
		if p.CollBytes < 4096 {
			p.CollBytes = 4096
		}
	}
	return p, nil
}

// MustLookup is Lookup that panics on error (for tables of known-good
// configurations).
func MustLookup(name, class string, procs int) Params {
	p, err := Lookup(name, class, procs)
	if err != nil {
		panic(err)
	}
	return p
}

// anchorProcs is the rank count each calibration entry is tuned at.
var anchorProcs = map[string]int{
	"BT/D": 256, "BT/E": 1024,
	"CG/D": 256, "CG/E": 1024,
	"FT/D": 256, "FT/E256": 256, "FT/E": 1024,
	"LU/D": 256, "LU/E": 1024,
	"MG/E": 256,
	"SP/D": 256, "SP/E": 1024,
	"HPL/8e4": 256, "HPL/2e5": 1024, "HPL/2.5e5": 4096, "HPL/3e5": 8192, "HPL/3.5e5": 16384,
	"HPCG/64": 256,
}

// calibration holds per-iteration budgets, normalized to Tardis and the
// anchor rank count. Durations reproduce the paper's Table 6 clean-run
// times (Compute values are net of the ≈7% the per-iteration sync waits
// add); FT's CollBytes is sized so that the all-to-all transpose
// occupies every rank IN_MPI for ≈2.75s on Tardis's slow interconnect
// (the stretch behind Table 1's false positives) but well under 2.4s on
// Tianhe-2's fast one.
var calibration = map[string]Params{
	// BT: 3 ADI sweep phases per iteration, 4-neighbor halos.
	//   D@256 Tardis ≈ 336s; E@1024 TH2 ≈ 487s.
	"BT/D": {Iters: 200, Compute: 1550 * time.Millisecond, Skew: 0.08, HaloBytes: 200 << 10, ReduceEvery: 1},
	"BT/E": {Iters: 200, Compute: 2830 * time.Millisecond, Skew: 0.08, HaloBytes: 220 << 10, ReduceEvery: 1},
	// CG: ring halo + 3 tiny allreduces per iteration.
	//   D@256 Tardis ≈ 132s; E@1024 TH2 ≈ 177s.
	"CG/D": {Iters: 120, Compute: 995 * time.Millisecond, Skew: 0.07, HaloBytes: 150 << 10, ReduceEvery: 1},
	"CG/E": {Iters: 120, Compute: 1700 * time.Millisecond, Skew: 0.07, HaloBytes: 200 << 10, ReduceEvery: 1},
	// FT: local FFT + one monolithic all-to-all transpose per iteration.
	//   D@256: 25 × (4.0s + transpose). 103MB/rank → ≈2.75s on Tardis,
	//   inside the (2.4s, 3.2s) window Table 1 requires: a (400ms,5)
	//   timeout always false-alarms, (800ms,5)/(400ms,10) almost never.
	//   E256 is class E kept at 256 ranks (Table 1/9): 8× D volume.
	//   E@1024: per-rank volume 2× D@256; TH2 total ≈ 100s.
	"FT/D":    {Iters: 25, Compute: 4000 * time.Millisecond, Skew: 0.05, HaloBytes: 64 << 10, CollBytes: 103 << 20, ReduceEvery: 1},
	"FT/E256": {Iters: 25, Compute: 26400 * time.Millisecond, Skew: 0.05, HaloBytes: 64 << 10, CollBytes: 824 << 20, ReduceEvery: 1},
	"FT/E":    {Iters: 25, Compute: 3700 * time.Millisecond, Skew: 0.05, HaloBytes: 64 << 10, CollBytes: 256 << 20, ReduceEvery: 1},
	// LU: pipelined lower/upper wavefront sweeps (SSOR).
	//   D@256 Tardis ≈ 247s; E@1024 TH2 ≈ 328s.
	"LU/D": {Iters: 250, Compute: 915 * time.Millisecond, Skew: 0.06, HaloBytes: 40 << 10, ReduceEvery: 1},
	"LU/E": {Iters: 250, Compute: 1515 * time.Millisecond, Skew: 0.06, HaloBytes: 48 << 10, ReduceEvery: 1},
	// MG: V-cycles over Levels grids, halos shrinking per level.
	//   E@256 Tardis ≈ 347s.
	"MG/E": {Iters: 30, Compute: 10720 * time.Millisecond, Skew: 0.07, HaloBytes: 256 << 10, ReduceEvery: 1, Levels: 6},
	// SP: like BT with lighter per-iteration work, more iterations.
	//   D@256 Tardis ≈ 511s; E@1024 TH2 ≈ 454s.
	"SP/D": {Iters: 320, Compute: 1470 * time.Millisecond, Skew: 0.08, HaloBytes: 160 << 10, ReduceEvery: 1},
	"SP/E": {Iters: 320, Compute: 1630 * time.Millisecond, Skew: 0.08, HaloBytes: 180 << 10, ReduceEvery: 1},
	// HPL: Compute is the initial (k=0) trailing-update cost c0; the
	// per-panel cost decays as (1-k/K)², so the total is ≈ K·c0/3.
	//   8e4@256 Tardis: 160 panels, c0 ≈ 3·277/160; total ≈ 277s.
	"HPL/8e4":   {Iters: 160, Compute: 5140 * time.Millisecond, Skew: 0.05, HaloBytes: 96 << 10, ReduceEvery: 16},
	"HPL/2e5":   {Iters: 160, Compute: 8500 * time.Millisecond, Skew: 0.05, HaloBytes: 128 << 10, ReduceEvery: 16},
	"HPL/2.5e5": {Iters: 160, Compute: 10300 * time.Millisecond, Skew: 0.05, HaloBytes: 128 << 10, ReduceEvery: 16},
	"HPL/3e5":   {Iters: 160, Compute: 11000 * time.Millisecond, Skew: 0.05, HaloBytes: 128 << 10, ReduceEvery: 16},
	"HPL/3.5e5": {Iters: 160, Compute: 12000 * time.Millisecond, Skew: 0.05, HaloBytes: 128 << 10, ReduceEvery: 16},
	// HPCG: weakly scaled (fixed 64³ local domain): per-iteration cost
	// is scale-independent. 350 × 0.80s ≈ 280s at every scale.
	"HPCG/64": {Iters: 350, Compute: 740 * time.Millisecond, Skew: 0.06, HaloBytes: 128 << 10, ReduceEvery: 1, Levels: 3},
}

func calibrated() []string {
	out := make([]string, 0, len(calibration))
	for k := range calibration {
		out = append(out, k)
	}
	return out
}

// Body returns the rank body implementing the skeleton, wired to the
// given fault injector (nil for clean runs).
func (p Params) Body(inj *fault.Injector) func(*mpi.Rank) {
	switch p.Name {
	case "BT", "SP":
		return p.adiBody(inj)
	case "CG":
		return p.cgBody(inj)
	case "FT":
		return p.ftBody(inj)
	case "LU":
		return p.luBody(inj)
	case "MG":
		return p.mgBody(inj)
	case "HPL":
		return p.hplBody(inj)
	case "HPCG":
		return p.hpcgBody(inj)
	default:
		panic("workload: unknown benchmark " + p.Name)
	}
}

func init() {
	// Guard against accidental edits breaking anchors.
	for k := range calibration {
		if _, ok := anchorProcs[k]; !ok {
			panic("workload: calibration entry missing anchor: " + k)
		}
	}
}
