package workload

import (
	"testing"
	"testing/quick"
	"time"

	"parastack/internal/fault"
	"parastack/internal/mpi"
	"parastack/internal/noise"
	"parastack/internal/sim"
)

func TestLookupPaperConfigurations(t *testing.T) {
	combos := []struct {
		name, class string
		procs       int
	}{
		{"BT", "D", 256}, {"BT", "E", 1024},
		{"CG", "D", 256}, {"CG", "E", 1024},
		{"FT", "D", 256}, {"FT", "E", 256}, {"FT", "E", 1024},
		{"LU", "D", 256}, {"LU", "E", 1024},
		{"MG", "E", 256},
		{"SP", "D", 256}, {"SP", "E", 1024},
		{"HPL", "8e4", 256}, {"HPL", "2e5", 1024}, {"HPL", "2.5e5", 4096},
		{"HPL", "3e5", 8192}, {"HPL", "3.5e5", 16384},
		{"HPCG", "64", 256}, {"HPCG", "64", 1024},
	}
	for _, c := range combos {
		p, err := Lookup(c.name, c.class, c.procs)
		if err != nil {
			t.Errorf("Lookup(%s,%s,%d): %v", c.name, c.class, c.procs, err)
			continue
		}
		if p.Iters <= 0 || p.Compute <= 0 {
			t.Errorf("%v: bad params %+v", p.Spec, p)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("LINPACK", "D", 256); err == nil {
		t.Fatal("unknown benchmark must error")
	}
	if _, err := Lookup("BT", "Z", 256); err == nil {
		t.Fatal("unknown class must error")
	}
}

func TestHPCGWeaklyScaled(t *testing.T) {
	a := MustLookup("HPCG", "64", 256)
	b := MustLookup("HPCG", "64", 4096)
	if a.Compute != b.Compute {
		t.Fatalf("HPCG compute must be scale-independent: %v vs %v", a.Compute, b.Compute)
	}
}

func TestStrongScalingShrinksPerRankWork(t *testing.T) {
	a := MustLookup("BT", "E", 1024)
	b := MustLookup("BT", "E", 4096)
	if b.Compute >= a.Compute {
		t.Fatalf("per-rank compute must shrink with scale: %v → %v", a.Compute, b.Compute)
	}
}

func TestGrid2DProperty(t *testing.T) {
	f := func(raw uint16) bool {
		p := int(raw)%4096 + 1
		r, c := grid2D(p)
		return r*c == p && r <= c && r >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	if r, c := grid2D(256); r != 16 || c != 16 {
		t.Fatalf("grid2D(256) = %d×%d", r, c)
	}
}

// small returns a scaled-down Params for fast structural tests.
func small(name string) Params {
	p := Params{
		Spec:        Spec{Name: name, Class: "test", Procs: 16},
		Iters:       6,
		Compute:     30 * time.Millisecond,
		Skew:        0.1,
		HaloBytes:   8 << 10,
		CollBytes:   64 << 10,
		ReduceEvery: 1,
		Levels:      3,
	}
	return p
}

func TestAllBodiesComplete(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			eng := sim.NewEngine(5)
			w := mpi.NewWorld(eng, 16, mpi.Latency{})
			w.Launch(small(name).Body(nil))
			eng.Run(time.Hour)
			if !w.Done() {
				t.Fatalf("%s did not complete (finished %d/16)", name, w.Finished())
			}
		})
	}
}

func TestAllBodiesHangOnComputationFault(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			inj := fault.NewInjector(fault.Plan{Kind: fault.ComputationHang, Rank: 7, Iteration: 2})
			eng := sim.NewEngine(6)
			w := mpi.NewWorld(eng, 16, mpi.Latency{})
			w.Launch(small(name).Body(inj))
			eng.Run(time.Hour)
			if w.Done() {
				t.Fatalf("%s completed despite injected hang", name)
			}
			if trig, _ := inj.Triggered(); !trig {
				t.Fatalf("%s never reached the fault site", name)
			}
			// The faulty rank must be OUT_MPI; at least half the others
			// should have piled into MPI by now.
			if w.Rank(7).InMPI() {
				t.Fatalf("%s: faulty rank is IN_MPI", name)
			}
			in := 0
			for _, r := range w.Ranks() {
				if r.InMPI() {
					in++
				}
			}
			if in < 8 {
				t.Fatalf("%s: only %d/16 ranks blocked in MPI after hang", name, in)
			}
		})
	}
}

func TestDeterministicCompletion(t *testing.T) {
	run := func() sim.Time {
		eng := sim.NewEngine(77)
		w := mpi.NewWorld(eng, 16, mpi.Latency{})
		w.Launch(small("LU").Body(nil))
		eng.Run(time.Hour)
		return w.FinishedAt()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic completion: %v vs %v", a, b)
	}
}

// Calibration checks: clean-run durations on the matching platform must
// land near the paper's Table 6 values.
func TestCalibrationFT(t *testing.T) {
	p := MustLookup("FT", "D", 256)
	prof := noise.Tardis()
	eng := sim.NewEngine(1)
	w := mpi.NewWorld(eng, 256, prof.Latency())
	prof.Apply(w, eng.Rand(), 32, p.EstimatedDuration())
	w.Launch(p.Body(nil))
	eng.Run(2 * time.Hour)
	if !w.Done() {
		t.Fatal("FT did not complete")
	}
	got := w.FinishedAt().Seconds()
	if got < 150 || got > 210 {
		t.Fatalf("FT(D)@256 tardis took %.1fs, paper reports ≈179s", got)
	}
}

func TestCalibrationLU(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run")
	}
	p := MustLookup("LU", "D", 256)
	prof := noise.Tardis()
	eng := sim.NewEngine(2)
	w := mpi.NewWorld(eng, 256, prof.Latency())
	prof.Apply(w, eng.Rand(), 32, p.EstimatedDuration())
	w.Launch(p.Body(nil))
	eng.Run(2 * time.Hour)
	got := w.FinishedAt().Seconds()
	if got < 210 || got > 290 {
		t.Fatalf("LU(D)@256 tardis took %.1fs, paper reports ≈247s", got)
	}
}

func TestCalibrationBTTianhe2(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run")
	}
	p := MustLookup("BT", "E", 1024)
	prof := noise.Tianhe2()
	prof.SlowdownProb = 0 // keep the calibration check clean
	eng := sim.NewEngine(3)
	w := mpi.NewWorld(eng, 1024, prof.Latency())
	prof.Apply(w, eng.Rand(), 16, p.EstimatedDuration())
	w.Launch(p.Body(nil))
	eng.Run(2 * time.Hour)
	got := w.FinishedAt().Seconds()
	if got < 420 || got > 560 {
		t.Fatalf("BT(E)@1024 tianhe2 took %.1fs, paper reports ≈487s", got)
	}
}

// The Table 1 mechanism: FT(D)'s transpose must hold every rank IN_MPI
// for >2.4s on Tardis (which false-alarms a 400ms×5 timeout) but well
// under 2.4s on Tianhe-2.
func TestFTTransposeStretch(t *testing.T) {
	stretch := func(prof noise.Profile) time.Duration {
		p := MustLookup("FT", "D", 256)
		p.Iters = 6 // a few cycles suffice
		eng := sim.NewEngine(4)
		w := mpi.NewWorld(eng, 256, prof.Latency())
		prof.SlowdownProb = 0
		prof.Apply(w, eng.Rand(), 32, p.EstimatedDuration())
		var inAll []time.Duration // timestamps where every rank is IN_MPI
		eng.SpawnNow("probe", func(pr *sim.Proc) {
			for !w.Done() {
				pr.Sleep(50 * time.Millisecond)
				all := true
				for _, r := range w.Ranks() {
					if !r.InMPI() {
						all = false
						break
					}
				}
				if all {
					inAll = append(inAll, time.Duration(eng.Now()))
				}
			}
		})
		w.Launch(p.Body(nil))
		eng.Run(2 * time.Hour)
		var best, cur time.Duration
		for i := 1; i < len(inAll); i++ {
			if inAll[i]-inAll[i-1] <= 60*time.Millisecond {
				cur += inAll[i] - inAll[i-1]
			} else {
				cur = 0
			}
			if cur > best {
				best = cur
			}
		}
		return best
	}
	tardis := stretch(noise.Tardis())
	th2 := stretch(noise.Tianhe2())
	if tardis < 2500*time.Millisecond {
		t.Fatalf("tardis all-IN stretch = %v, want > 2.5s", tardis)
	}
	if th2 > 2400*time.Millisecond {
		t.Fatalf("tianhe2 all-IN stretch = %v, want < 2.4s", th2)
	}
}

func TestHPLPanelDecay(t *testing.T) {
	// Panel compute must shrink over panels: measure iteration boundary
	// times of rank 0 via a custom body wrapper.
	p := small("HPL")
	p.Iters = 12
	p.Compute = 200 * time.Millisecond
	p.Skew = 0
	eng := sim.NewEngine(9)
	w := mpi.NewWorld(eng, 16, mpi.Latency{})
	w.Launch(p.Body(nil))
	eng.Run(time.Hour)
	if !w.Done() {
		t.Fatal("HPL did not complete")
	}
	// Total should be ≈ K·c0/3 plus overheads, clearly less than K·c0.
	total := w.FinishedAt()
	if total > time.Duration(p.Iters)*p.Compute {
		t.Fatalf("HPL total %v exceeds undecayed bound", total)
	}
	if total < time.Duration(p.Iters)*p.Compute/6 {
		t.Fatalf("HPL total %v suspiciously small", total)
	}
}

func TestEstimatedDuration(t *testing.T) {
	p := MustLookup("CG", "D", 256)
	est := p.EstimatedDuration()
	if est < 100*time.Second || est > 200*time.Second {
		t.Fatalf("CG estimate %v out of range", est)
	}
}
