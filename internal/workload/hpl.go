package workload

import (
	"time"

	"parastack/internal/fault"
	"parastack/internal/mpi"
)

// busyWait completes a request HPL-style: a busy-wait loop of dense
// MPI_Test polling slices separated by tiny application-code gaps (the
// paper's third communication style). The polling slice grows
// geometrically so that a rank stuck here during a hang flips state
// only a bounded number of times per second — keeping simulation event
// counts finite — while still spending the overwhelming share of its
// time IN_MPI, as real polling loops do. In healthy runs broadcasts
// arrive within a few slices, so the duty cycle there stays lively.
func busyWait(r *mpi.Rank, q *mpi.Request) {
	slice := 2 * time.Millisecond
	const maxSlice = 100 * time.Millisecond
	for !r.TestFor(q, slice) {
		r.Spin(100 * time.Microsecond)
		if slice < maxSlice {
			slice *= 2
		}
	}
}

// hplBody is the High-Performance Linpack skeleton. Per panel k:
//
//   - the owner column factorizes the panel (a pivot chain down the
//     column),
//   - the panel is broadcast along each process row by a pipelined ring
//     whose receivers poll with busy-wait loops (HPL's own collectives
//     are implemented this way, which is why a few non-faulty HPL
//     processes can be found OUT_MPI during a hang),
//   - everyone applies the trailing update, whose cost decays as
//     (1-k/K)² — HPL's characteristic shrinking iterations.
func (p Params) hplBody(inj *fault.Injector) func(*mpi.Rank) {
	rows, cols := grid2D(p.Procs)
	K := p.Iters
	return func(r *mpi.Rank) {
		row, col := r.ID()/cols, r.ID()%cols
		rankOf := func(rw, cl int) int { return rw*cols + cl }
		for k := 0; k < K; k++ {
			remaining := 1 - float64(k)/float64(K)
			scale := remaining * remaining
			ownerCol := k % cols

			if col == ownerCol {
				r.Call("panel_factor", func() {
					// Pivot chain down the owner column. The chain is
					// serial, so each link carries 1/rows of the panel
					// budget: the whole column spends ≈0.15·c0·scale on
					// the panel, like the real pipelined factorization.
					if row > 0 {
						r.Recv(rankOf(row-1, col), k*4+1)
					}
					r.Compute(time.Duration(float64(p.chunk(r, 0.15)) * scale / float64(rows)))
					if row < rows-1 {
						r.Send(rankOf(row+1, col), k*4+1, 4096)
					}
					inj.Check(r, k)
				})
			}

			// Ring broadcast of the panel along the process row,
			// receivers polling via busy-wait.
			if cols > 1 {
				right := (col + 1) % cols
				left := (col + cols - 1) % cols
				if col == ownerCol {
					r.Send(rankOf(row, right), k*4+2, p.HaloBytes)
				} else {
					q := r.Irecv(rankOf(row, left), k*4+2)
					r.Call("hpl_bcast_poll", func() { busyWait(r, q) })
					if right != ownerCol {
						r.Send(rankOf(row, right), k*4+2, p.HaloBytes)
					}
				}
			}

			r.Call("trailing_update", func() {
				r.Compute(time.Duration(float64(p.chunk(r, 0.85)) * scale))
				if col != ownerCol {
					inj.Check(r, k)
				}
			})

			if p.ReduceEvery > 0 && (k+1)%p.ReduceEvery == 0 {
				r.Allreduce(8) // norm check
			}
		}
	}
}
