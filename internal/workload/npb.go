package workload

import (
	"math"
	"time"

	"parastack/internal/fault"
	"parastack/internal/mpi"
)

// grid2D returns the near-square process grid (rows <= cols) the NPB
// skeletons lay ranks on, row-major.
func grid2D(p int) (rows, cols int) {
	r := int(math.Sqrt(float64(p)))
	for r > 1 && p%r != 0 {
		r--
	}
	if r < 1 {
		r = 1
	}
	return r, p / r
}

// chunk draws one computation slice: frac of the per-iteration budget,
// skewed per rank per call by the application-inherent imbalance.
func (p Params) chunk(r *mpi.Rank, frac float64) time.Duration {
	d := float64(p.Compute) * frac
	if p.Skew > 0 {
		// Rank-local stream: chunk draws happen in rank execution
		// context, so a shared stream would make the sequence depend on
		// scheduling order (serial vs. windowed parallel).
		d *= 1 + p.Skew*(2*r.Rand().Float64()-1)
	}
	return time.Duration(d)
}

// exchange performs a bidirectional halo swap with a neighbor pair
// (both directions of one dimension), using distinct tags per phase.
func exchange(r *mpi.Rank, plus, minus, tag, bytes int) {
	r.SendRecv(plus, tag, bytes, minus, tag)
	r.SendRecv(minus, tag+1, bytes, plus, tag+1)
}

// adiBody is the BT/SP skeleton: per iteration, three ADI sweep phases
// (x, y, z line solves), each a computation slice followed by halo
// exchanges along one grid dimension, plus a periodic residual
// allreduce. BT and SP differ only in calibration (heavier iterations
// vs. more of them).
func (p Params) adiBody(inj *fault.Injector) func(*mpi.Rank) {
	rows, cols := grid2D(p.Procs)
	return func(r *mpi.Rank) {
		row, col := r.ID()/cols, r.ID()%cols
		east := row*cols + (col+1)%cols
		west := row*cols + (col+cols-1)%cols
		north := ((row+rows-1)%rows)*cols + col
		south := ((row+1)%rows)*cols + col
		for it := 0; it < p.Iters; it++ {
			r.Call("compute_rhs", func() {
				r.Compute(p.chunk(r, 0.25))
				inj.Check(r, it)
			})
			r.Call("x_solve", func() { r.Compute(p.chunk(r, 0.25)) })
			exchange(r, east, west, it*8, p.HaloBytes)
			r.Call("y_solve", func() { r.Compute(p.chunk(r, 0.25)) })
			exchange(r, north, south, it*8+2, p.HaloBytes)
			r.Call("z_solve", func() { r.Compute(p.chunk(r, 0.25)) })
			exchange(r, east, west, it*8+4, p.HaloBytes)
			if p.ReduceEvery > 0 && (it+1)%p.ReduceEvery == 0 {
				r.Allreduce(64)
			}
		}
	}
}

// cgBody is the CG skeleton: per iteration a sparse matrix-vector
// product with ring halo exchange, then dot products realized as tiny
// allreduces — the high-frequency global synchronization that makes CG
// sensitive to any rank stalling.
func (p Params) cgBody(inj *fault.Injector) func(*mpi.Rank) {
	size := p.Procs
	return func(r *mpi.Rank) {
		next := (r.ID() + 1) % size
		prev := (r.ID() + size - 1) % size
		for it := 0; it < p.Iters; it++ {
			r.Call("spmv", func() {
				r.Compute(p.chunk(r, 0.7))
				inj.Check(r, it)
			})
			exchange(r, next, prev, it*4, p.HaloBytes)
			r.Call("dot_r", func() { r.Compute(p.chunk(r, 0.1)) })
			r.Allreduce(8)
			r.Call("axpy", func() { r.Compute(p.chunk(r, 0.2)) })
			r.Allreduce(8)
		}
	}
}

// ftBody is the FT skeleton: a long local FFT computation followed by a
// monolithic all-to-all transpose whose duration scales with the
// per-rank volume — at class D on a slow interconnect the transpose
// holds every rank IN_MPI for several seconds, the stretch that defeats
// fixed timeouts (Table 1).
func (p Params) ftBody(inj *fault.Injector) func(*mpi.Rank) {
	return func(r *mpi.Rank) {
		for it := 0; it < p.Iters; it++ {
			r.Call("fft_local", func() {
				r.Compute(p.chunk(r, 0.85))
				inj.Check(r, it)
			})
			r.Alltoall(p.CollBytes)
			r.Call("fft_post", func() { r.Compute(p.chunk(r, 0.15)) })
			if p.ReduceEvery > 0 && (it+1)%p.ReduceEvery == 0 {
				r.Allreduce(16) // checksum
			}
		}
	}
}

// luBody is the LU (SSOR) skeleton: per iteration a lower and an upper
// sweep, each a computation slice bounded by wavefront-flavored halo
// exchanges, with a periodic residual allreduce.
func (p Params) luBody(inj *fault.Injector) func(*mpi.Rank) {
	rows, cols := grid2D(p.Procs)
	return func(r *mpi.Rank) {
		row, col := r.ID()/cols, r.ID()%cols
		east := row*cols + (col+1)%cols
		west := row*cols + (col+cols-1)%cols
		north := ((row+rows-1)%rows)*cols + col
		south := ((row+1)%rows)*cols + col
		for it := 0; it < p.Iters; it++ {
			r.Call("jacld_blts", func() {
				r.Compute(p.chunk(r, 0.45))
				inj.Check(r, it)
			})
			exchange(r, south, north, it*8, p.HaloBytes)
			r.Call("jacu_buts", func() { r.Compute(p.chunk(r, 0.45)) })
			exchange(r, east, west, it*8+2, p.HaloBytes)
			r.Call("rhs_update", func() { r.Compute(p.chunk(r, 0.10)) })
			if p.ReduceEvery > 0 && (it+1)%p.ReduceEvery == 0 {
				r.Allreduce(40)
			}
		}
	}
}

// mgBody is the MG skeleton: V-cycles walking Levels grids down and up,
// with halo exchanges shrinking geometrically per level and a global
// reduction at the coarsest grid.
func (p Params) mgBody(inj *fault.Injector) func(*mpi.Rank) {
	size := p.Procs
	levels := p.Levels
	if levels <= 0 {
		levels = 6
	}
	// Per-level weights 2^-l, normalized over down+up passes.
	weights := make([]float64, levels)
	sum := 0.0
	for l := range weights {
		weights[l] = math.Pow(0.5, float64(l))
		sum += 2 * weights[l]
	}
	return func(r *mpi.Rank) {
		next := (r.ID() + 1) % size
		prev := (r.ID() + size - 1) % size
		for it := 0; it < p.Iters; it++ {
			tag := it * (4*levels + 4)
			for l := 0; l < levels; l++ { // restriction
				r.Call("smooth_down", func() {
					r.Compute(p.chunk(r, weights[l]/sum))
					if l == 0 {
						inj.Check(r, it)
					}
				})
				exchange(r, next, prev, tag+4*l, p.HaloBytes>>(2*l))
			}
			r.Allreduce(8)                     // coarsest-grid solve
			for l := levels - 1; l >= 0; l-- { // prolongation
				r.Call("smooth_up", func() { r.Compute(p.chunk(r, weights[l]/sum)) })
			}
			if p.ReduceEvery > 0 && (it+1)%p.ReduceEvery == 0 {
				r.Allreduce(8)
			}
		}
	}
}
