package results

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	l, err := OpenJSONL(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{`{"a":1}`, `{"b":2}`, `{"c":3}`}
	for _, p := range want {
		if err := l.Append(Record{Key: "k", Payload: []byte(p)}); err != nil {
			t.Fatal(err)
		}
	}
	// Reads its own (already synced — syncEvery 1) writes.
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) {
		t.Fatalf("records = %d, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if string(r.Payload) != want[i] {
			t.Errorf("record %d = %q, want %q", i, r.Payload, want[i])
		}
		if r.Key != "" {
			t.Errorf("record %d key = %q, want empty (keys are not persisted)", i, r.Key)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := l.Append(Record{Payload: []byte("x")}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
	// Reopen appends rather than truncating.
	l2, err := OpenJSONL(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.Append(Record{Payload: []byte(`{"d":4}`)}); err != nil {
		t.Fatal(err)
	}
	recs, err = l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want)+1 {
		t.Fatalf("records after reopen+append = %d, want %d", len(recs), len(want)+1)
	}
}

func TestJSONLLagAndFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	l, err := OpenJSONL(path, 100) // large sync batch: appends stay lagged
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 3; i++ {
		if err := l.Append(Record{Payload: []byte(`{}`)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Lag(); got != 3 {
		t.Fatalf("lag = %d, want 3", got)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := l.Lag(); got != 0 {
		t.Fatalf("lag after flush = %d, want 0", got)
	}
	// Records syncs pending appends first, so a lagging sink still
	// reads its own writes.
	if err := l.Append(Record{Payload: []byte(`{}`)}); err != nil {
		t.Fatal(err)
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("records = %d, want 4", len(recs))
	}
	if got := l.Lag(); got != 0 {
		t.Fatalf("lag after Records = %d, want 0", got)
	}
}

func TestReadJSONLTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	// A hard kill mid-write leaves a final line with no newline; it must
	// be dropped, not returned or erred on.
	if err := os.WriteFile(path, []byte("{\"a\":1}\n\n{\"b\":2}\n{\"torn\":"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2 (torn final line dropped, empty line skipped)", len(recs))
	}
	if string(recs[1].Payload) != `{"b":2}` {
		t.Fatalf("record 1 = %q", recs[1].Payload)
	}
}

func TestReadJSONLMissingFile(t *testing.T) {
	recs, err := ReadJSONL(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil || recs != nil {
		t.Fatalf("missing file = (%v, %v), want (nil, nil)", recs, err)
	}
}
