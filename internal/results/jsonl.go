package results

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"sync"
)

// JSONL is the plain-file Sink/Reader: one payload per line, appended
// in arrival order, fsync'd every SyncEvery appends and on Flush/Close.
// It is the results-sink twin of the sweep's log (internal/sweep.Log)
// with two additions the service journal needs: it implements Reader —
// Records re-reads the file, tolerating a torn final line from a hard
// kill — and it reports Lag, the number of appended records not yet
// covered by an fsync (the crash-loss window a health probe surfaces).
//
// Keys are not persisted: the payload is written verbatim, so any
// identity a reader needs must ride inside the payload (the journal's
// records carry their kind and job id; the sweep log carries its cell
// key). Records therefore returns each line with an empty Key.
type JSONL struct {
	mu        sync.Mutex
	path      string
	f         *os.File
	bw        *bufio.Writer
	sinceSync int
	every     int
	closed    bool
}

// OpenJSONL opens (creating if absent, appending otherwise) a JSONL
// sink at path. syncEvery is the fsync batch size; <= 0 selects 1 —
// fsync on every append — because the primary consumer is the service
// admission journal, whose journal-before-ack invariant is only as
// strong as the sync policy.
func OpenJSONL(path string, syncEvery int) (*JSONL, error) {
	if syncEvery <= 0 {
		syncEvery = 1
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &JSONL{path: path, f: f, bw: bufio.NewWriter(f), every: syncEvery}, nil
}

// Append implements Sink: the payload becomes one line. The line is
// flushed and fsync'd when the sync batch is due.
func (l *JSONL) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, err := l.bw.Write(rec.Payload); err != nil {
		return err
	}
	if err := l.bw.WriteByte('\n'); err != nil {
		return err
	}
	l.sinceSync++
	if l.sinceSync >= l.every {
		return l.syncLocked()
	}
	return nil
}

// Flush forces buffered records to disk (fsync included) without
// closing the sink.
func (l *JSONL) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *JSONL) syncLocked() error {
	l.sinceSync = 0
	if err := l.bw.Flush(); err != nil {
		return err
	}
	return l.f.Sync()
}

// Lag reports how many appended records are not yet covered by an
// fsync — the most a crash right now could lose.
func (l *JSONL) Lag() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinceSync
}

// Close flushes, fsyncs, and closes the file. A second Close is a
// no-op returning nil.
func (l *JSONL) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	flushErr := l.bw.Flush()
	syncErr := l.f.Sync()
	closeErr := l.f.Close()
	if flushErr != nil {
		return flushErr
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Records implements Reader: every complete line, in file order, as a
// Record with an empty Key. Buffered-but-unflushed appends are synced
// first so a sink reads its own writes. A torn final line — no
// trailing newline, the signature of a hard kill mid-write — is
// dropped, matching the sweep log's crash-recovery rule; empty lines
// are skipped.
func (l *JSONL) Records() ([]Record, error) {
	l.mu.Lock()
	if !l.closed && l.sinceSync > 0 {
		if err := l.syncLocked(); err != nil {
			l.mu.Unlock()
			return nil, err
		}
	}
	path := l.path
	l.mu.Unlock()
	return ReadJSONL(path)
}

// ReadJSONL reads a JSONL file written by a JSONL sink (or any other
// line-per-record writer) into Records, without needing the sink open.
// A missing file is an empty result, not an error — a first boot with
// a journal path configured has nothing to replay.
func ReadJSONL(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	var out []Record
	r := bufio.NewReader(f)
	for {
		data, err := r.ReadBytes('\n')
		complete := err == nil
		line := bytes.TrimSpace(data)
		if len(line) > 0 && complete {
			payload := make([]byte, len(line))
			copy(payload, line)
			out = append(out, Record{Payload: payload})
		}
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}
