package results

import (
	"errors"
	"testing"
)

// memSink is the minimal conforming Sink: the contract tests below are
// the executable spec every real sink (sweep.Log, ledger.Ledger) also
// passes in its own package.
type memSink struct {
	recs   []Record
	closed bool
}

func (m *memSink) Append(rec Record) error {
	if m.closed {
		return ErrClosed
	}
	m.recs = append(m.recs, rec)
	return nil
}

func (m *memSink) Close() error { m.closed = true; return nil }

func (m *memSink) Records() ([]Record, error) { return m.recs, nil }

func TestSinkContract(t *testing.T) {
	var s memSink
	if err := s.Append(Record{Key: "a", Payload: []byte("1")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	err := s.Append(Record{Key: "b"})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}

	// The sink doubles as a Reader — the resume path's requirement.
	var r Reader = &s
	recs, err := r.Records()
	if err != nil || len(recs) != 1 || recs[0].Key != "a" {
		t.Fatalf("Records = %v, %v", recs, err)
	}
}
