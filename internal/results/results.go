// Package results defines the unified results-sink API: the small,
// dependency-free contract every durable results consumer in the
// repository satisfies. The sweep's JSONL log (internal/sweep.Log),
// the tamper-evident Merkle ledger (internal/ledger.Ledger), and any
// future backend (an object store, a network forwarder) all implement
// Sink, so the sweep orchestrator and the detection service write
// terminal records through one interface instead of a concrete log
// type.
//
// The package is a deliberate leaf: it imports only the standard
// library, so any layer — sweep, service, ledger, a CLI — can depend
// on it without cycles. Besides the contract it ships one minimal
// implementation, the plain-file JSONL sink (see jsonl.go), which the
// detection service uses as its default admission-journal backend.
package results

import "errors"

// ErrClosed is the shared write-after-close sentinel: Append on any
// closed Sink returns an error satisfying errors.Is(err, ErrClosed).
// Callers racing a shutdown use it to distinguish "the sink is gone,
// drop or re-route the record" from a real I/O failure. sweep.ErrClosed
// aliases this value, so legacy comparisons keep working.
var ErrClosed = errors.New("results: sink is closed")

// Record is one terminal result in transit: a stable cell key plus the
// serialized record (one JSON object, no trailing newline). The payload
// is opaque to sinks — a JSONL log writes it verbatim as a line, a
// ledger content-addresses and Merkle-commits it — which is what keeps
// every backend bit-identical at the record level.
type Record struct {
	// Key is the record's stable identity: a sweep cell key, a campaign
	// fingerprint key, or a service verdict key. Sinks that deduplicate
	// or index (the ledger) do so by this string; sinks that don't (the
	// JSONL log) ignore it.
	Key string
	// Payload is the serialized record. Sinks must not retain or
	// mutate it after Append returns.
	Payload []byte
}

// Sink consumes terminal result records. Implementations must be safe
// for concurrent Append calls (sweep workers write from many
// goroutines), must make Append after Close return ErrClosed, and must
// make a second Close a no-op returning nil so every exit path of a
// CLI can close unconditionally.
type Sink interface {
	// Append durably accepts one record. Implementations may buffer
	// and batch; Close flushes whatever is pending.
	Append(Record) error
	// Close flushes buffered records and releases the sink.
	Close() error
}

// Reader yields previously written records. A Sink that also
// implements Reader supports resume: the sweep loads its prior records
// through it and skips completed cells (last record per key wins, the
// same contract as the JSONL log), and the detection service replays
// its admission journal through it on a crash-recovery boot.
type Reader interface {
	// Records returns every record in append order.
	Records() ([]Record, error)
}

// Flusher is the optional durability hook a Sink may offer: Flush
// forces buffered records onto stable storage without closing the
// sink. The service's drain-deadline path uses it to pin straggler
// admissions down before a forced exit; callers must tolerate sinks
// that don't implement it (their Append is then assumed durable or
// best-effort by construction).
type Flusher interface {
	Flush() error
}

// Lagger is the optional health hook a Sink may offer: Lag reports how
// many accepted records are not yet durable — the crash-loss window.
// The daemon's /healthz surfaces it as journal lag.
type Lagger interface {
	Lag() int
}
